// Extensions: the paper's §V discussion items, implemented and measured
// on one synthetic deployment:
//
//   - redundant assignment (occlusion hedging): track each object from up
//     to 2 cameras when the latency budget allows;
//
//   - quality-aware scheduling: trade latency for larger (easier to
//     classify) views via a lambda knob;
//
//   - alternative objective: minimize total load (energy) instead of the
//     maximum latency;
//
//   - centralized-processing extension: pick the minimum set of uploading
//     cameras that covers every object.
//
//     go run ./examples/extensions
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mvs/internal/core"
	"mvs/internal/profile"
)

func main() {
	classes := []profile.DeviceClass{
		profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier, profile.JetsonXavier,
	}
	fleet := make([]core.CameraSpec, len(classes))
	for i, c := range classes {
		fleet[i] = core.CameraSpec{Index: i, Profile: profile.Derived(c)}
	}

	rng := rand.New(rand.NewSource(11))
	sizes := []int{64, 128, 256}
	var objects []core.ObjectSpec
	for i := 0; i < 40; i++ {
		k := 1 + rng.Intn(len(fleet))
		coverage := rng.Perm(len(fleet))[:k]
		sz := make(map[int]int, k)
		for _, c := range coverage {
			sz[c] = sizes[rng.Intn(len(sizes))]
		}
		objects = append(objects, core.ObjectSpec{ID: i + 1, Coverage: coverage, Size: sz})
	}

	base, err := core.Central(fleet, objects, core.CentralOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline BALB:           system latency %v\n", base.System().Round(1e6))

	// 1. Redundancy: second trackers within a 15%% latency budget.
	red, extra, err := core.CentralRedundant(fleet, objects, 2, 1.15)
	if err != nil {
		log.Fatal(err)
	}
	redundant := 0
	for _, cams := range extra {
		redundant += len(cams)
	}
	fmt.Printf("redundant (R=2, 15%% slack): %d/%d objects double-tracked, system %v\n",
		redundant, len(objects), red.System().Round(1e6))

	// 2. Quality-aware lambda sweep.
	fmt.Println("\nquality-latency tradeoff (lambda sweep):")
	for _, lambda := range []float64{0, 0.25, 0.5, 1} {
		sol, err := core.CentralQualityAware(fleet, objects, core.QualityOptions{Lambda: lambda})
		if err != nil {
			log.Fatal(err)
		}
		mean, err := core.MeanAssignedSize(objects, sol.Assign)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  lambda=%.2f  mean view size %5.1fpx  system latency %v\n",
			lambda, mean, sol.System().Round(1e6))
	}

	// 3. Total-load (energy) objective.
	minSum, err := core.MinTotalLoad(fleet, objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nobjective comparison:\n")
	fmt.Printf("  BALB (min-max):      max %v   total %v\n",
		base.System().Round(1e6), core.TotalLoad(base.Latencies).Round(1e6))
	fmt.Printf("  MinTotalLoad:        max %v   total %v\n",
		minSum.System().Round(1e6), core.TotalLoad(minSum.Latencies).Round(1e6))

	// 4. Centralized processing: minimum uploading cover.
	chosen, err := core.MinUploadCover(fleet, objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncentralized extension: %d/%d cameras suffice to cover all %d objects: %v\n",
		len(chosen), len(fleet), len(objects), chosen)
}
