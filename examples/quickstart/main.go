// Quickstart: the smallest end-to-end use of the framework.
//
// It builds a two-camera world with overlapping views, trains the
// cross-camera association model on the first half of the footage, then
// runs the full BALB pipeline on the second half and prints the speedup
// over full-frame processing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"mvs/internal/assoc"
	"mvs/internal/geom"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
	"mvs/internal/scene"
)

func main() {
	// 1. A world: one road, two cameras facing each other across it.
	road := scene.MustPath(geom.Point{X: 5, Y: -40}, geom.Point{X: 5, Y: 40})
	camNorth := &scene.Camera{
		Name: "north", Pos: geom.Point{X: 0, Y: 50}, Height: 8, Yaw: -math.Pi / 2,
		Pitch: 0.4, Focal: 800, ImageW: 1280, ImageH: 704, MaxRange: 62,
	}
	camSouth := &scene.Camera{
		Name: "south", Pos: geom.Point{X: 0, Y: -50}, Height: 8, Yaw: math.Pi / 2,
		Pitch: 0.4, Focal: 800, ImageW: 1280, ImageH: 704, MaxRange: 62,
	}
	world := &scene.World{
		Routes:  []scene.Route{{Path: road, Speed: 8, Arrivals: scene.Poisson{RatePerSec: 0.4}}},
		Cameras: []*scene.Camera{camSouth, camNorth},
		FPS:     10,
		Seed:    1,
	}

	// 2. Two minutes of footage; first half trains the association model.
	trace, err := world.Run(1200)
	if err != nil {
		log.Fatal(err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. A heterogeneous pair of edge devices.
	profiles := []*profile.Profile{
		profile.Derived(profile.JetsonXavier),
		profile.Derived(profile.JetsonNano),
	}

	// 4. Run full-frame processing and BALB, compare.
	full, err := pipeline.Run(test, profiles, model, pipeline.NewConfig(pipeline.Full, 7))
	if err != nil {
		log.Fatal(err)
	}
	balb, err := pipeline.Run(test, profiles, model, pipeline.NewConfig(pipeline.BALB, 7))
	if err != nil {
		log.Fatal(err)
	}
	speedup, err := metrics.Speedup(full.MeanSlowest, balb.MeanSlowest)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("full-frame processing: %v/frame, recall %.3f\n",
		full.MeanSlowest.Round(100_000), full.Recall)
	fmt.Printf("BALB scheduling:       %v/frame, recall %.3f\n",
		balb.MeanSlowest.Round(100_000), balb.Recall)
	fmt.Printf("speedup: %.2fx\n", speedup)
}
