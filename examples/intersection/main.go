// Intersection: the paper's flagship scenario (S1) — five heterogeneous
// cameras around a signalized intersection with platooned traffic — run
// under every scheduling algorithm, reproducing the Fig. 12/13 story:
// BALB keeps near-full recall at a fraction of the latency, and beats
// static partitioning because it reacts to traffic-light load swings.
//
//	go run ./examples/intersection
package main

import (
	"fmt"
	"log"

	"mvs/internal/experiments"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
)

func main() {
	fmt.Println("preparing S1 (5 cameras, 2 min of traffic)... this takes a moment")
	setup, err := experiments.Prepare("S1", 42, 1200)
	if err != nil {
		log.Fatal(err)
	}

	// Show the traffic-light induced workload swings first (Fig. 2).
	fig2 := experiments.Fig2(setup)
	fmt.Println("\nper-camera object counts (one sample / 2 s):")
	for ci, series := range fig2.Counts {
		n := len(series)
		if n > 25 {
			series = series[:25]
		}
		fmt.Printf("  %-12s %v...\n", fig2.CameraNames[ci], series)
	}

	reports, err := experiments.RunModes(setup, 10, experiments.Options{})
	if err != nil {
		log.Fatal(err)
	}
	full := reports[pipeline.Full]
	fmt.Println("\nalgorithm   recall   slowest-camera latency   speedup")
	for _, mode := range experiments.Modes() {
		r := reports[mode]
		speedup, err := metrics.Speedup(full.MeanSlowest, r.MeanSlowest)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %.3f    %8v               %5.2fx\n",
			r.Mode, r.Recall, r.MeanSlowest.Round(100_000), speedup)
	}

	balb := reports[pipeline.BALB]
	sp := reports[pipeline.StaticPartition]
	gain, err := metrics.Speedup(sp.MeanSlowest, balb.MeanSlowest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBALB vs static partitioning: %.2fx lower latency — the dynamic,\n", gain)
	fmt.Println("load-aware assignment absorbs the phase-shifted platoons that a")
	fmt.Println("fixed spatial split cannot.")
}
