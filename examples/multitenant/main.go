// Multitenant: two pipeline engines sharing one pool of GPU executors.
//
// It registers two tenants — one light (a quiet residential scenario),
// one heavy (a busy intersection) — against a single consolidated
// serving pool (docs/SERVING.md). Each tenant runs an ordinary
// pipeline engine; the only change from a standalone run is the
// Serve handle in its config, which defers GPU pricing to the shared
// pool. The pool packs both tenants' inspection work into shared
// batches, schedules them by weighted fair queueing, and sheds the
// heavy tenant first when an epoch runs over its SLO.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"time"

	"mvs/internal/pipeline"
	"mvs/internal/profile"
	"mvs/internal/serve"
	"mvs/internal/workload"
)

func main() {
	// 1. Two tenants' footage: S3 is a sparse residential street, S1 a
	// dense intersection. Each tenant owns its cameras and trace.
	light, err := workload.ByName("S3", 7)
	if err != nil {
		log.Fatal(err)
	}
	heavy, err := workload.ByName("S1", 7)
	if err != nil {
		log.Fatal(err)
	}
	lightTrace, err := light.World.Run(300)
	if err != nil {
		log.Fatal(err)
	}
	heavyTrace, err := heavy.World.Run(300)
	if err != nil {
		log.Fatal(err)
	}

	// 2. One shared pool: four modeled Xavier-class executors serve both
	// tenants, consolidating their work into shared batches.
	pool, err := serve.NewPool(serve.Config{
		Executors:   4,
		Profile:     profile.Derived(profile.JetsonXavier),
		Consolidate: true,
		DefaultSLO:  150 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. One spec per tenant. serve.Run registers each tenant, wires
	// its engine to the pool, and drives both to completion.
	results, err := serve.Run(pool, []serve.TenantSpec{
		{
			ID:       "light",
			Source:   pipeline.NewTraceSource(lightTrace),
			Profiles: light.Profiles(),
			Config:   pipeline.NewConfig(pipeline.Independent, 7),
		},
		{
			ID:       "heavy",
			Source:   pipeline.NewTraceSource(heavyTrace),
			Profiles: heavy.Profiles(),
			Config:   pipeline.NewConfig(pipeline.Independent, 7),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range results {
		fmt.Printf("tenant %-5s: %d frames, recall %.3f, p99 %v, %d tasks shed, %d SLO violations\n",
			r.ID, r.Report.Frames, r.Report.Recall,
			r.Report.P99Slowest.Round(100_000),
			r.Report.ExecShedTasks, r.Report.ExecSLOViolations)
	}
	st := pool.Stats()
	fmt.Printf("pool: %d batches, %d cross-tenant, occupancy %.2f\n",
		st.Batches, st.SharedBatches, st.MeanOccupancy)
}
