// Sparse residential (S2), deployed for real: this example starts the
// central scheduler and two camera nodes as separate components talking
// over loopback TCP — the same binaries-level architecture as the
// paper's Jetson testbed, in one process for convenience.
//
//	go run ./examples/sparseresidential
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/cluster"
	"mvs/internal/node"
	"mvs/internal/scene"
	"mvs/internal/workload"
)

func main() {
	const (
		seed   = 42
		frames = 1200
	)
	scenario := workload.S2(seed)
	fmt.Println("generating S2 world and training the association model...")
	trace, err := scenario.World.Run(frames)
	if err != nil {
		log.Fatal(err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		log.Fatal(err)
	}

	// Central scheduler on a loopback socket.
	sched, err := cluster.NewScheduler(model, scenario.Profiles(), 0)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := sched.Serve(ln); err != nil {
			log.Println("scheduler:", err)
		}
	}()
	defer func() {
		sched.Close()
		ln.Close()
	}()
	fmt.Println("central scheduler listening on", ln.Addr())

	// One node per camera (Xavier at the west end, Nano at the east).
	var wg sync.WaitGroup
	stats := make([]node.Stats, len(scenario.World.Cameras))
	errs := make([]error, len(scenario.World.Cameras))
	for cam := range scenario.World.Cameras {
		wg.Add(1)
		go func(cam int) {
			defer wg.Done()
			stats[cam], errs[cam] = runNode(ln.Addr().String(), cam, scenario, test)
		}(cam)
	}
	wg.Wait()
	for cam, err := range errs {
		if err != nil {
			log.Fatalf("camera %d: %v", cam, err)
		}
	}

	fmt.Println("\ndeployment summary:")
	for cam, st := range stats {
		fmt.Printf("  camera %d (%s, %s): %v/frame, %d objects, %d tracks + %d shadows\n",
			cam, scenario.World.Cameras[cam].Name, scenario.Devices[cam],
			st.MeanLatency.Round(100_000), st.DetectedObjects, st.ActiveTracks, st.Shadows)
	}
	fmt.Println("\nnote how the Nano runs far below its 470 ms full-frame cost: shared")
	fmt.Println("objects are tracked by the Xavier, and the Nano only inspects what")
	fmt.Println("the masks make it responsible for.")
}

func runNode(addr string, cam int, scenario *workload.Scenario, test *scene.Trace) (node.Stats, error) {
	sc := scenario.World.Cameras[cam]
	client, err := cluster.Dial(addr, cam, 5*time.Second, sc.ImageW, sc.ImageH)
	if err != nil {
		return node.Stats{}, err
	}
	defer client.Close()
	ack := client.Ack()

	rt, err := node.New(node.Config{
		Camera:     cam,
		Frame:      sc.Frame(),
		Profile:    scenario.Profiles()[cam],
		GridCols:   ack.GridCols,
		GridRows:   ack.GridRows,
		Coverage:   ack.Coverage,
		NumCameras: len(scenario.World.Cameras),
		Seed:       7,
	})
	if err != nil {
		return node.Stats{}, err
	}
	const horizon = 10
	for fi := range test.Frames {
		obs := test.Frames[fi].PerCamera[cam]
		if fi%horizon == 0 {
			reports, err := rt.KeyFrame(obs)
			if err != nil {
				return node.Stats{}, err
			}
			a, err := client.KeyFrame(fi, reports, 15*time.Second)
			if err != nil {
				return node.Stats{}, err
			}
			if err := rt.ApplyAssignment(a); err != nil {
				return node.Stats{}, err
			}
		} else if _, err := rt.RegularFrame(obs); err != nil {
			return node.Stats{}, err
		}
	}
	return rt.Stats(), nil
}
