// Heterogeneous fleet: a pure-scheduling study of the BALB central stage
// on synthetic MVS instances. It shows the two properties the paper's
// algorithm is built around:
//
//  1. load-and-resource awareness — on a mixed Nano/TX2/Xavier fleet,
//     BALB shifts shared objects toward fast devices, while a static
//     capacity split and independent tracking both leave the Nano as a
//     long pole; and
//
//  2. batch awareness — disabling the incomplete-batch rule (the
//     DESIGN.md ablation) inflates the number of GPU launches and the
//     system latency.
//
//     go run ./examples/heterofleet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mvs/internal/core"
	"mvs/internal/profile"
)

func makeFleet() []core.CameraSpec {
	classes := []profile.DeviceClass{
		profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier,
	}
	fleet := make([]core.CameraSpec, len(classes))
	for i, c := range classes {
		fleet[i] = core.CameraSpec{Index: i, Profile: profile.Derived(c)}
	}
	return fleet
}

// makeObjects builds a workload where 60% of objects are visible
// everywhere (a dense overlap region) and the rest are pinned to one
// camera.
func makeObjects(n int, rng *rand.Rand) []core.ObjectSpec {
	sizes := []int{64, 128, 256}
	objects := make([]core.ObjectSpec, n)
	for i := range objects {
		size := sizes[rng.Intn(len(sizes))]
		var coverage []int
		if rng.Float64() < 0.6 {
			coverage = []int{0, 1, 2}
		} else {
			coverage = []int{rng.Intn(3)}
		}
		sz := make(map[int]int, len(coverage))
		for _, c := range coverage {
			sz[c] = size
		}
		objects[i] = core.ObjectSpec{ID: i + 1, Coverage: coverage, Size: sz}
	}
	return objects
}

func main() {
	fleet := makeFleet()
	rng := rand.New(rand.NewSource(3))
	objects := makeObjects(30, rng)

	balb, err := core.Central(fleet, objects, core.CentralOptions{})
	if err != nil {
		log.Fatal(err)
	}
	noBatch, err := core.Central(fleet, objects, core.CentralOptions{DisableBatching: true})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := core.StaticPartition(fleet, objects)
	if err != nil {
		log.Fatal(err)
	}
	indLat, err := core.IndependentLatencies(fleet, objects, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("30 objects, 60% in the shared region, fleet = nano + tx2 + xavier")
	fmt.Println("\nper-camera scheduled latency (includes key-frame full inspection):")
	names := []string{"nano  ", "tx2   ", "xavier"}
	fmt.Printf("%-22s", "algorithm")
	for _, n := range names {
		fmt.Printf("  %s", n)
	}
	fmt.Println("  system (max)")
	printRow := func(name string, lat []int64, sys int64) {
		fmt.Printf("%-22s", name)
		for _, l := range lat {
			fmt.Printf("  %4dms", l)
		}
		fmt.Printf("  %4dms\n", sys)
	}
	toMs := func(sol *core.Solution) ([]int64, int64) {
		out := make([]int64, len(sol.Latencies))
		for i, l := range sol.Latencies {
			out[i] = l.Milliseconds()
		}
		return out, sol.System().Milliseconds()
	}
	l, s := toMs(balb)
	printRow("BALB", l, s)
	l, s = toMs(noBatch)
	printRow("BALB (no batching)", l, s)
	l, s = toMs(sp)
	printRow("static partition", l, s)
	ind := make([]int64, len(indLat))
	var indMax int64
	for i, d := range indLat {
		ind[i] = d.Milliseconds()
		if ind[i] > indMax {
			indMax = ind[i]
		}
	}
	printRow("independent", ind, indMax)

	// Count where the shared objects went under BALB.
	counts := make([]int, 3)
	for i := range objects {
		if len(objects[i].Coverage) == 3 {
			counts[balb.Assign[objects[i].ID]]++
		}
	}
	fmt.Printf("\nBALB placed the shared objects as nano=%d tx2=%d xavier=%d —\n",
		counts[0], counts[1], counts[2])
	fmt.Println("the fast devices absorb the overlap region, so the Nano's frame")
	fmt.Println("time stays close to its unavoidable exclusive workload.")
}
