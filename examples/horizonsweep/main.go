// Horizon sweep: reproduces the paper's Fig. 14 tradeoff — longer
// scheduling horizons amortize the expensive key-frame full inspections
// over more frames (lower latency), but let tracking and association
// errors accumulate (lower recall). T = 10 is the paper's chosen sweet
// spot.
//
//	go run ./examples/horizonsweep
package main

import (
	"fmt"
	"log"
	"strings"

	"mvs/internal/experiments"
)

func main() {
	fmt.Println("preparing S1... this takes a moment")
	setup, err := experiments.Prepare("S1", 42, 1200)
	if err != nil {
		log.Fatal(err)
	}
	points, err := experiments.Fig14(setup, []int{2, 5, 10, 20, 30, 50}, experiments.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n  T   recall   latency    (bars: latency)")
	maxLat := points[0].MeanSlowest
	for _, p := range points {
		if p.MeanSlowest > maxLat {
			maxLat = p.MeanSlowest
		}
	}
	for _, p := range points {
		bar := int(40 * float64(p.MeanSlowest) / float64(maxLat))
		fmt.Printf("%4d   %.3f   %8v  %s\n",
			p.Horizon, p.Recall, p.MeanSlowest.Round(100_000), strings.Repeat("#", bar))
	}
	fmt.Println("\nexpected: latency falls with T while recall decays; T=10 balances both")
}
