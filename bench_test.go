// Package mvs's root benchmarks regenerate the paper's evaluation: one
// benchmark per table and figure (see DESIGN.md's experiment index),
// plus ablation benches for the design choices the paper calls out.
// Paper-relevant quantities (recall, speedup, optimality gap) are
// attached to the benchmark output via b.ReportMetric, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.
package mvs

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"mvs/internal/assoc"
	"mvs/internal/core"
	"mvs/internal/experiments"
	"mvs/internal/geom"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/shard"
	"mvs/internal/workload"
)

// benchFrames keeps benchmark setups affordable; the mvexp command runs
// the full-length versions.
const benchFrames = 600

var (
	setupOnce sync.Once
	setupS1   *experiments.Setup
	setupS2   *experiments.Setup
	setupS3   *experiments.Setup
	setupErr  error
)

func benchSetups(b *testing.B) (*experiments.Setup, *experiments.Setup, *experiments.Setup) {
	b.Helper()
	setupOnce.Do(func() {
		setupS1, setupErr = experiments.Prepare("S1", 42, benchFrames)
		if setupErr != nil {
			return
		}
		setupS2, setupErr = experiments.Prepare("S2", 42, benchFrames)
		if setupErr != nil {
			return
		}
		setupS3, setupErr = experiments.Prepare("S3", 42, benchFrames)
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
	return setupS1, setupS2, setupS3
}

// BenchmarkFig2WorkloadVariation regenerates the per-camera workload
// series of Fig. 2 and reports the cross-camera workload spread.
func BenchmarkFig2WorkloadVariation(b *testing.B) {
	s1, _, _ := benchSetups(b)
	var spread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.Fig2(s1)
		min, max := 1e18, 0.0
		for _, series := range res.Counts {
			sum := 0
			for _, v := range series {
				sum += v
			}
			mean := float64(sum) / float64(len(series))
			if mean < min {
				min = mean
			}
			if mean > max {
				max = mean
			}
		}
		spread = max - min
	}
	b.ReportMetric(spread, "workload-spread")
}

// BenchmarkFig10Classification runs the association-classifier
// comparison on S2 and reports KNN's precision.
func BenchmarkFig10Classification(b *testing.B) {
	_, s2, _ := benchSetups(b)
	var knnPrecision float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig10(s2)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Model == "knn" {
				knnPrecision = r.Precision
			}
		}
	}
	b.ReportMetric(knnPrecision, "knn-precision")
}

// BenchmarkFig11Regression runs the association-regressor comparison on
// S2 and reports the homography-to-KNN MAE ratio (the paper's headline:
// homography is far worse).
func BenchmarkFig11Regression(b *testing.B) {
	_, s2, _ := benchSetups(b)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11(s2)
		if err != nil {
			b.Fatal(err)
		}
		var knn, hom float64
		for _, r := range rows {
			switch r.Model {
			case "knn":
				knn = r.MAE
			case "homography":
				hom = r.MAE
			}
		}
		if knn > 0 {
			ratio = hom / knn
		}
	}
	b.ReportMetric(ratio, "homography/knn-mae")
}

// BenchmarkFig12Recall runs the full BALB pipeline on S1 and reports the
// attained object recall.
func BenchmarkFig12Recall(b *testing.B) {
	s1, _, _ := benchSetups(b)
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := pipeline.Run(s1.Test, s1.Scenario.Profiles(), s1.Model,
			pipeline.NewConfig(pipeline.BALB, 42))
		if err != nil {
			b.Fatal(err)
		}
		recall = rep.Recall
	}
	b.ReportMetric(recall, "recall")
}

// BenchmarkFig13Latency runs Full and BALB on every scenario and reports
// the per-scenario speedups (the paper's 2.45x-6.85x headline).
func BenchmarkFig13Latency(b *testing.B) {
	s1, s2, s3 := benchSetups(b)
	setups := map[string]*experiments.Setup{"S1": s1, "S2": s2, "S3": s3}
	for name, s := range setups {
		s := s
		b.Run(name, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				full, err := pipeline.Run(s.Test, s.Scenario.Profiles(), s.Model,
					pipeline.NewConfig(pipeline.Full, 42))
				if err != nil {
					b.Fatal(err)
				}
				balb, err := pipeline.Run(s.Test, s.Scenario.Profiles(), s.Model,
					pipeline.NewConfig(pipeline.BALB, 42))
				if err != nil {
					b.Fatal(err)
				}
				speedup = float64(full.MeanSlowest) / float64(balb.MeanSlowest)
			}
			b.ReportMetric(speedup, "speedup-x")
		})
		_ = name
	}
}

// BenchmarkFig13VsStaticPartition reports BALB's latency advantage over
// the SP baseline (the paper's average 1.88x).
func BenchmarkFig13VsStaticPartition(b *testing.B) {
	s1, _, _ := benchSetups(b)
	var gain float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := pipeline.Run(s1.Test, s1.Scenario.Profiles(), s1.Model,
			pipeline.NewConfig(pipeline.StaticPartition, 42))
		if err != nil {
			b.Fatal(err)
		}
		balb, err := pipeline.Run(s1.Test, s1.Scenario.Profiles(), s1.Model,
			pipeline.NewConfig(pipeline.BALB, 42))
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(sp.MeanSlowest) / float64(balb.MeanSlowest)
	}
	b.ReportMetric(gain, "balb-vs-sp-x")
}

// BenchmarkFig14Horizon runs one point of the horizon sweep (T=20) and
// reports BALB's and BALB-Cen's recall there.
func BenchmarkFig14Horizon(b *testing.B) {
	s1, _, _ := benchSetups(b)
	var balbRecall, cenRecall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := experiments.Fig14(s1, []int{20}, experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		balbRecall = points[0].Recall
		cenRecall = points[0].CenRecall
	}
	b.ReportMetric(balbRecall, "balb-recall")
	b.ReportMetric(cenRecall, "cen-recall")
}

// BenchmarkTable2Overhead runs BALB on S1 and reports the total measured
// per-frame framework overhead in microseconds.
func BenchmarkTable2Overhead(b *testing.B) {
	s1, _, _ := benchSetups(b)
	var overheadUS float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err := experiments.TableII(s1)
		if err != nil {
			b.Fatal(err)
		}
		overheadUS = float64(row.Total.Microseconds())
	}
	b.ReportMetric(overheadUS, "overhead-us/frame")
}

// --- Ablation and micro benches (DESIGN.md section 5) ---

// randomInstance builds a synthetic MVS instance.
func randomInstance(rng *rand.Rand, m, n int) ([]core.CameraSpec, []core.ObjectSpec) {
	classes := []profile.DeviceClass{profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier}
	cams := make([]core.CameraSpec, m)
	for i := range cams {
		cams[i] = core.CameraSpec{Index: i, Profile: profile.Derived(classes[i%3])}
	}
	sizes := []int{64, 128, 256, 512}
	objects := make([]core.ObjectSpec, n)
	for i := range objects {
		k := 1 + rng.Intn(m)
		perm := rng.Perm(m)[:k]
		sz := make(map[int]int, k)
		for _, c := range perm {
			sz[c] = sizes[rng.Intn(4)]
		}
		objects[i] = core.ObjectSpec{ID: i + 1, Coverage: perm, Size: sz}
	}
	return cams, objects
}

// BenchmarkAblationBatchAwareness compares BALB with and without the
// incomplete-batch rule and reports the latency inflation of turning
// batching off.
func BenchmarkAblationBatchAwareness(b *testing.B) {
	// Batch-heavy instance: many same-size objects in a shared region,
	// where the incomplete-batch rule does its work.
	cams := []core.CameraSpec{
		{Index: 0, Profile: profile.Derived(profile.JetsonXavier)},
		{Index: 1, Profile: profile.Derived(profile.JetsonTX2)},
		{Index: 2, Profile: profile.Derived(profile.JetsonNano)},
	}
	objects := make([]core.ObjectSpec, 60)
	for i := range objects {
		objects[i] = core.ObjectSpec{
			ID:       i + 1,
			Coverage: []int{0, 1, 2},
			Size:     map[int]int{0: 64, 1: 64, 2: 64},
		}
	}
	var maxInflation, busyInflation float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		with, err := core.Central(cams, objects, core.CentralOptions{})
		if err != nil {
			b.Fatal(err)
		}
		without, err := core.Central(cams, objects, core.CentralOptions{DisableBatching: true})
		if err != nil {
			b.Fatal(err)
		}
		// Two views of the cost: the min-max objective (system latency as
		// scheduled, one GPU launch per object without batching) and the
		// total GPU busy time across cameras. Batching's headline effect
		// is on busy time — serialized per-object launches pay the full
		// batch latency each.
		// Strip the constant key-frame full-inspection term so the
		// comparison isolates the partial-inspection work.
		sumOf := func(s *core.Solution) float64 {
			var sum float64
			for i, l := range s.Latencies {
				sum += float64(l - cams[i].Profile.FullFrame)
			}
			return sum
		}
		maxInflation = float64(without.System()) / float64(with.System())
		busyInflation = sumOf(without) / sumOf(with)
	}
	b.ReportMetric(maxInflation, "no-batching-maxlat-x")
	b.ReportMetric(busyInflation, "no-batching-busytime-x")
}

// BenchmarkAblationOptimalityGap measures BALB's system latency against
// the brute-force optimum on small instances.
func BenchmarkAblationOptimalityGap(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	var gap float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var worst float64 = 1
		for trial := 0; trial < 10; trial++ {
			cams, objects := randomInstance(rng, 3, 6)
			opt, err := core.BruteForce(cams, objects, 0)
			if err != nil {
				b.Fatal(err)
			}
			balb, err := core.Central(cams, objects, core.CentralOptions{})
			if err != nil {
				b.Fatal(err)
			}
			if r := float64(balb.System()) / float64(opt.System()); r > worst {
				worst = r
			}
		}
		gap = worst
	}
	b.ReportMetric(gap, "worst-balb/opt")
}

// BenchmarkCentralStage measures the central-stage scheduling cost at the
// paper's scale (5 cameras, 100 objects) — the Table II "central stage"
// component.
func BenchmarkCentralStage(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	cams, objects := randomInstance(rng, 5, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Central(cams, objects, core.CentralOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCentralReassign measures the cost of the central stage's
// fault response: when a quarter of the cameras drop, the scheduler
// re-runs core.Central over the healthy subset (objects filtered to
// surviving coverage). This is the recompute the health tracker
// triggers at the next key frame after an outage, so its cost bounds
// how cheaply the system absorbs a camera loss at 4/8/16 cameras.
func BenchmarkCentralReassign(b *testing.B) {
	for _, m := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("cams=%d", m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(11))
			cams, objects := randomInstance(rng, m, 25*m)
			// First quarter of the roster goes dark; rebuild the instance
			// the central stage actually sees.
			deadBelow := m / 4
			alive := cams[deadBelow:]
			surviving := make([]core.ObjectSpec, 0, len(objects))
			orphaned := 0
			for _, o := range objects {
				cover := make([]int, 0, len(o.Coverage))
				sz := make(map[int]int, len(o.Coverage))
				for _, c := range o.Coverage {
					if c >= deadBelow {
						cover = append(cover, c-deadBelow)
						sz[c-deadBelow] = o.Size[c]
					}
				}
				if len(cover) == 0 {
					orphaned++ // no live camera sees it: nothing to schedule
					continue
				}
				surviving = append(surviving, core.ObjectSpec{ID: o.ID, Coverage: cover, Size: sz})
			}
			reindexed := make([]core.CameraSpec, len(alive))
			for i, c := range alive {
				reindexed[i] = core.CameraSpec{Index: i, Profile: c.Profile}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Central(reindexed, surviving, core.CentralOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(orphaned), "orphaned-objects")
		})
	}
}

// BenchmarkCrossCameraAssociation measures one association round on the
// prepared S1 setup (5 cameras), using a mid-trace frame's boxes.
func BenchmarkCrossCameraAssociation(b *testing.B) {
	s1, _, _ := benchSetups(b)
	frame := &s1.Test.Frames[len(s1.Test.Frames)/2]
	perCam := make([][]geom.Rect, len(frame.PerCamera))
	for ci, obs := range frame.PerCamera {
		for _, o := range obs {
			perCam[ci] = append(perCam[ci], o.Box)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s1.Model.Associate(perCam, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	s4Once  sync.Once
	setupS4 *experiments.Setup
	s4Err   error
)

// benchS4 caches the 8-camera S4 setup shared by the scale and
// parallelism benchmarks.
func benchS4(b *testing.B) *experiments.Setup {
	b.Helper()
	s4Once.Do(func() {
		setupS4, s4Err = experiments.Prepare("S4", 42, 400)
	})
	if s4Err != nil {
		b.Fatal(s4Err)
	}
	return setupS4
}

// BenchmarkScaleS4EightCameras runs the full BALB pipeline on the
// 8-camera S4 scale scenario and reports recall and speedup — evidence
// the framework holds up beyond the paper's 5-camera testbed.
func BenchmarkScaleS4EightCameras(b *testing.B) {
	setup := benchS4(b)
	var recall, speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full, err := pipeline.Run(setup.Test, setup.Scenario.Profiles(), setup.Model,
			pipeline.NewConfig(pipeline.Full, 42))
		if err != nil {
			b.Fatal(err)
		}
		balb, err := pipeline.Run(setup.Test, setup.Scenario.Profiles(), setup.Model,
			pipeline.NewConfig(pipeline.BALB, 42))
		if err != nil {
			b.Fatal(err)
		}
		recall = balb.Recall
		speedup = float64(full.MeanSlowest) / float64(balb.MeanSlowest)
	}
	b.ReportMetric(recall, "recall")
	b.ReportMetric(speedup, "speedup-x")
}

// --- Parallel-execution benches (docs/CONCURRENCY.md) ---

// workerCounts returns the deduplicated, ordered worker bounds worth
// benchmarking for a scenario with cams cameras: sequential, the
// hardware width, and one worker per camera.
func workerCounts(cams int) []int {
	candidates := []int{1, runtime.GOMAXPROCS(0), cams}
	var out []int
	for _, c := range candidates {
		dup := false
		for _, o := range out {
			if o == c {
				dup = true
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// BenchmarkPipelineWorkers compares sequential (workers-1) against
// fanned-out BALB pipeline runs on every scenario, S1 through the
// 8-camera S4. The modelled results are identical across sub-benches
// (the determinism contract); only wall-clock time may differ, and only
// on multi-core hosts — EXPERIMENTS.md records measured speedups.
func BenchmarkPipelineWorkers(b *testing.B) {
	s1, s2, s3 := benchSetups(b)
	scenarios := []struct {
		name string
		s    *experiments.Setup
	}{{"S1", s1}, {"S2", s2}, {"S3", s3}, {"S4", benchS4(b)}}
	for _, sc := range scenarios {
		for _, w := range workerCounts(len(sc.s.Test.Cameras)) {
			b.Run(fmt.Sprintf("%s/workers-%d", sc.name, w), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := pipeline.Run(sc.s.Test, sc.s.Scenario.Profiles(), sc.s.Model,
						pipeline.Config{Sched: pipeline.Sched{Mode: pipeline.BALB, Workers: w}, Sim: pipeline.Sim{Seed: 42}}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkRunModes compares the sequential experiment harness
// (all five scheduling modes back to back) against the concurrent
// fan-out on the S1 setup.
func BenchmarkRunModes(b *testing.B) {
	s1, _, _ := benchSetups(b)
	for _, w := range workerCounts(len(experiments.Modes())) {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunModes(s1, 10, experiments.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Central-stage scaling benches (docs/SCALING.md) ---

// corridorWorld chains n cameras along a straight road (the S4 idiom at
// arbitrary width): adjacent cameras overlap, so the trained model holds
// O(n) useful pairs out of the n*(n-1) directed pairs the association
// layer enumerates. Traffic arrives on per-segment routes (one pair per
// adjacent camera pair) rather than one end-to-end route, so every
// camera sees vehicles from the first frames even on a short trace —
// a full-corridor route would leave the far half of a 32-camera world
// empty for the first ~two minutes.
func corridorWorld(seed int64, n int) *scene.World {
	length := 40.0*float64(n) + 40
	camX := func(i int) float64 { return -length/2 + 40 + float64(i)*40 }
	cams := make([]*scene.Camera, n)
	var routes []scene.Route
	for i := range cams {
		x := camX(i)
		y, yaw := 16.0, -0.35
		if i%2 == 1 {
			y, yaw = -16.0, 0.35
		}
		cams[i] = &scene.Camera{
			Name: fmt.Sprintf("corridor-%d", i), Pos: geom.Point{X: x, Y: y},
			Height: 8, Yaw: yaw, Pitch: 0.4, Focal: 560,
			ImageW: 1280, ImageH: 704, MaxRange: 68,
		}
		if i+1 < n {
			a, bx := camX(i)-20, camX(i+1)+20
			east := scene.MustPath(geom.Point{X: a, Y: 4}, geom.Point{X: bx, Y: 4})
			west := scene.MustPath(geom.Point{X: bx, Y: -4}, geom.Point{X: a, Y: -4})
			routes = append(routes,
				scene.Route{Path: east, Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.3}},
				scene.Route{Path: west, Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.3}},
			)
		}
	}
	return &scene.World{
		Routes:  routes,
		Cameras: cams,
		FPS:     10,
		Seed:    seed,
	}
}

// corridorFixture is a per-width cached corridor world: the training
// half, a trained model, and one mid-trace frame's boxes.
type corridorFixture struct {
	train *scene.Trace
	model *assoc.Model
	boxes [][]geom.Rect
	err   error
}

var (
	corridorMu       sync.Mutex
	corridorFixtures = map[int]*corridorFixture{}
)

// benchCorridor builds (once per width) the corridor fixture used by the
// central-stage scaling benches.
func benchCorridor(b *testing.B, cams int) *corridorFixture {
	b.Helper()
	corridorMu.Lock()
	fx, ok := corridorFixtures[cams]
	if !ok {
		fx = &corridorFixture{}
		corridorFixtures[cams] = fx
		fx.err = func() error {
			trace, err := corridorWorld(9, cams).Run(240)
			if err != nil {
				return err
			}
			train, test := trace.SplitTrain()
			model, err := assoc.Train(train, assoc.Factories{})
			if err != nil {
				return err
			}
			frame := &test.Frames[len(test.Frames)/2]
			boxes := make([][]geom.Rect, cams)
			for ci, obs := range frame.PerCamera {
				for _, o := range obs {
					boxes[ci] = append(boxes[ci], o.Box)
				}
			}
			fx.train, fx.model, fx.boxes = train, model, boxes
			return nil
		}()
	}
	corridorMu.Unlock()
	if fx.err != nil {
		b.Fatal(fx.err)
	}
	return fx
}

// BenchmarkTrainWorkers measures association-model training — the
// N*(N-1) directed-pair fan-out — across corridor widths and worker
// bounds. The trained model is bit-identical at every width (the
// determinism contract); docs/SCALING.md records the measured table.
func BenchmarkTrainWorkers(b *testing.B) {
	for _, cams := range []int{4, 8, 16, 32} {
		for _, w := range []int{1, 4, 8} {
			cams, w := cams, w
			b.Run(fmt.Sprintf("cams=%d/workers=%d", cams, w), func(b *testing.B) {
				fx := benchCorridor(b, cams)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := assoc.Train(fx.train, assoc.Factories{Workers: w}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAssociateWorkers measures one cross-camera association round
// — the N*(N-1)/2 unordered-pair Hungarian fan-out — across corridor
// widths and worker bounds, on a mid-trace frame's boxes.
func BenchmarkAssociateWorkers(b *testing.B) {
	for _, cams := range []int{4, 8, 16, 32} {
		for _, w := range []int{1, 4, 8} {
			cams, w := cams, w
			b.Run(fmt.Sprintf("cams=%d/workers=%d", cams, w), func(b *testing.B) {
				fx := benchCorridor(b, cams)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := fx.model.AssociateWorkers(fx.boxes, 0.1, w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// shardFixture caches the 64-camera corridor fleet shared by the
// sharding benches: test trace, trained model, profiles, and the
// model-derived coverage graph.
type shardFixture struct {
	test     *scene.Trace
	model    *assoc.Model
	profiles []*profile.Profile
	graph    *shard.Graph
	err      error
}

var (
	shardFixOnce sync.Once
	shardFix     shardFixture
)

func benchShardFixture(b *testing.B) *shardFixture {
	b.Helper()
	shardFixOnce.Do(func() {
		shardFix.err = func() error {
			s, err := workload.Corridor(64, 9)
			if err != nil {
				return err
			}
			trace, err := s.World.Run(300)
			if err != nil {
				return err
			}
			train, test := trace.SplitTrain()
			model, err := assoc.Train(train, assoc.Factories{})
			if err != nil {
				return err
			}
			rects := make([]geom.Rect, len(s.World.Cameras))
			for i, c := range s.World.Cameras {
				rects[i] = c.Frame()
			}
			adj, err := model.OverlapAdjacency(rects, 16, 9, 0)
			if err != nil {
				return err
			}
			g, err := shard.FromAdjacency(adj)
			if err != nil {
				return err
			}
			shardFix.test, shardFix.model, shardFix.profiles, shardFix.graph = test, model, s.Profiles(), g
			return nil
		}()
	})
	if shardFix.err != nil {
		b.Fatal(shardFix.err)
	}
	return &shardFix
}

// BenchmarkShardedCentralRound prices the sharded central stage on a
// 64-camera corridor: one sub-bench per -shard-max bound (global = no
// sharding), each running the full BALB pipeline and reporting the
// measured central-stage cost per frame plus recall. The docs/SCALING.md
// §3 table records the measured numbers; expected shape is central cost
// falling roughly as 1/shards (k shards of 64/k cameras price
// k·(64/k)² = 64²/k pair work), with recall holding.
func BenchmarkShardedCentralRound(b *testing.B) {
	for _, maxShard := range []int{0, 16, 8, 4} {
		name := "global"
		if maxShard > 0 {
			name = fmt.Sprintf("max=%d", maxShard)
		}
		maxShard := maxShard
		b.Run(name, func(b *testing.B) {
			fx := benchShardFixture(b)
			var m *shard.Map
			if maxShard > 0 {
				var err error
				m, err = shard.Partition(fx.graph, maxShard)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(m.NumShards()), "shards")
			}
			var centralUS, recall float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := pipeline.Run(fx.test, fx.profiles, fx.model,
					pipeline.Config{Sched: pipeline.Sched{Mode: pipeline.BALB, Shards: m}, Sim: pipeline.Sim{Seed: 42}})
				if err != nil {
					b.Fatal(err)
				}
				centralUS = float64(rep.CentralPerFrame.Microseconds())
				recall = rep.Recall
			}
			b.ReportMetric(centralUS, "central-us/frame")
			b.ReportMetric(recall, "recall")
		})
	}
}

// engineFixture caches the 16-camera corridor run shared by the
// streaming-engine benches: test trace, trained model, and profiles.
type engineFixture struct {
	test     *scene.Trace
	model    *assoc.Model
	profiles []*profile.Profile
	err      error
}

var (
	engineFixOnce sync.Once
	engineFix     engineFixture
)

func benchEngineFixture(b *testing.B) *engineFixture {
	b.Helper()
	engineFixOnce.Do(func() {
		engineFix.err = func() error {
			s, err := workload.Corridor(16, 9)
			if err != nil {
				return err
			}
			trace, err := s.World.Run(300)
			if err != nil {
				return err
			}
			train, test := trace.SplitTrain()
			model, err := assoc.Train(train, assoc.Factories{})
			if err != nil {
				return err
			}
			engineFix.test, engineFix.model, engineFix.profiles = test, model, s.Profiles()
			return nil
		}()
	})
	if engineFix.err != nil {
		b.Fatal(engineFix.err)
	}
	return &engineFix
}

// BenchmarkEngineStream prices the streaming engine against the batch
// wrapper on a 16-camera corridor — the API-redesign acceptance point:
// the per-frame cost of NewEngine+Step must stay within ~10% of
// pipeline.Run. Both sub-benches produce bit-identical modeled reports
// (TestEngineMatchesRun); only the ns/frame metric should differ, and
// barely (docs/STREAMING.md records the measured numbers).
func BenchmarkEngineStream(b *testing.B) {
	fx := benchEngineFixture(b)
	cfg := pipeline.NewConfig(pipeline.BALB, 42)
	frames := float64(len(fx.test.Frames))
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.Run(fx.test, fx.profiles, fx.model, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*frames), "ns/frame")
	})
	b.Run("stream", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, err := pipeline.NewEngine(pipeline.NewTraceSource(fx.test), fx.profiles, fx.model, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Run(); err != nil {
				b.Fatal(err)
			}
			if _, err := eng.Report(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*frames), "ns/frame")
	})
}

// BenchmarkIngestSource prices the live-ingest admission path — Offer
// into the per-camera bounded queues, min-head assembly, Next — on
// corridor fleets of 8 and 32 cameras (docs/STREAMING.md §6). The 1x
// sub-benches offer exactly one frame per camera per Next, so nothing
// sheds and the number is the pure assembly cost; the 4x sub-benches
// offer four, overflowing the default 16-part queues so every Offer
// beyond saturation exercises the drop-oldest shed policy. Shedding
// must not make admission slower — the shed path is a queue-head drop,
// not a scan — so ns/frame should hold roughly flat across loads.
func BenchmarkIngestSource(b *testing.B) {
	for _, cams := range []int{8, 32} {
		s, err := workload.Corridor(cams, 9)
		if err != nil {
			b.Fatal(err)
		}
		trace, err := s.World.Run(240)
		if err != nil {
			b.Fatal(err)
		}
		_, test := trace.SplitTrain()
		for _, load := range []int{1, 4} {
			load := load
			b.Run(fmt.Sprintf("cams=%d/load=%dx", cams, load), func(b *testing.B) {
				steps := len(test.Frames) / load
				var shed float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src, err := pipeline.NewIngestSource(test.Cameras, pipeline.IngestConfig{})
					if err != nil {
						b.Fatal(err)
					}
					next := 0
					for step := 0; step < steps; step++ {
						for l := 0; l < load; l++ {
							f := &test.Frames[next]
							next++
							for ci := range test.Cameras {
								p := pipeline.FramePart{Cam: ci, Frame: f.Index, Obs: f.PerCamera[ci]}
								if ci == 0 {
									p.Objects = f.Objects
								}
								if err := src.Offer(p); err != nil {
									b.Fatal(err)
								}
							}
						}
						if _, err := src.Next(); err != nil {
							b.Fatal(err)
						}
					}
					shed = float64(src.Counters().Shed)
					src.Close()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*float64(steps*load)), "ns/frame")
				b.ReportMetric(shed, "shed-parts")
			})
		}
	}
}

// BenchmarkCentralStageScaling measures how the central stage scales
// with object count at 8 cameras (complexity O(N log N + M N)).
func BenchmarkCentralStageScaling(b *testing.B) {
	for _, n := range []int{50, 200, 800} {
		n := n
		b.Run(fmt.Sprintf("objects-%d", n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(n)))
			cams, objects := randomInstance(rng, 8, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Central(cams, objects, core.CentralOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
