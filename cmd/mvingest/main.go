// Command mvingest pushes a scenario's evaluation frames to a live
// ingest listener (mvsim -ingest-addr, or mvnode -ingest-addr for one
// camera) as length-prefixed frame parts over TCP. It regenerates the
// same deterministic world the listener evaluates against — so a
// well-paced push reproduces the in-process run — and exists to drive
// the overload and chaos paths: -rate 0 offers frames as fast as the
// socket accepts (forcing the listener's admission queues to shed),
// -burst clusters frames between pacing sleeps, and -faults dials
// through the fault injector so drops, resets, and partitions hit the
// wire (docs/STREAMING.md §6, docs/FAULTS.md).
//
// Usage:
//
//	mvsim -ingest-addr :7100 -scenario S2 &
//	mvingest -addr localhost:7100 -scenario S2 -seed 42 [-camera N]
//	         [-rate 100ms] [-burst 1] [-faults seed=7,drop=0.05]
//
// Ground-truth object states ride on camera 0's part of each frame
// (the listener needs them once per frame for recall scoring); with
// -camera N only that camera's parts are pushed, and the truth rides
// along when N is camera 0 or the push targets a single-camera
// listener (mvnode). After the last frame mvingest sends one EOS part
// per camera, which lets the listener finish with a clean end-of-stream
// instead of a watchdog stall.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"mvs/internal/faults"
	"mvs/internal/pipeline"
	"mvs/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:7100", "ingest listener address (mvsim/mvnode -ingest-addr)")
		scenario   = flag.String("scenario", "S1", "scenario: S1, S2, or S3")
		seed       = flag.Int64("seed", 42, "shared simulation seed")
		frames     = flag.Int("frames", 1200, "trace length (first half is the model's training split; the second half is pushed)")
		camera     = flag.Int("camera", -1, "push only this camera's parts (-1 = all cameras)")
		rate       = flag.Duration("rate", 0, "pacing sleep between frame bursts (0 = push as fast as possible)")
		burst      = flag.Int("burst", 1, "frames pushed back-to-back between pacing sleeps")
		faultsSpec = flag.String("faults", "", "dial through the fault injector, e.g. seed=7,drop=0.05,cut=40 (see docs/FAULTS.md)")
		timeout    = flag.Duration("timeout", 10*time.Second, "dial timeout")
	)
	flag.Parse()

	if err := run(*addr, *scenario, *seed, *frames, *camera, *rate, *burst, *faultsSpec, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "mvingest:", err)
		os.Exit(1)
	}
}

func run(addr, scenario string, seed int64, frames, camera int, rate time.Duration, burst int, faultsSpec string, timeout time.Duration) error {
	if burst < 1 {
		burst = 1
	}
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}
	if camera >= len(s.World.Cameras) {
		return fmt.Errorf("camera %d out of range: %s has %d cameras", camera, scenario, len(s.World.Cameras))
	}
	fmt.Fprintf(os.Stderr, "regenerating %s (seed %d, %d frames)...\n", scenario, seed, frames)
	trace, err := s.World.Run(frames)
	if err != nil {
		return err
	}
	// The listener evaluates on the test half; the training half only
	// ever feeds the association model.
	_, test := trace.SplitTrain()

	dial := faults.DialFunc(func(addr string, timeout time.Duration) (net.Conn, error) {
		return net.DialTimeout("tcp", addr, timeout)
	})
	if faultsSpec != "" {
		fcfg, err := faults.ParseSpec(faultsSpec)
		if err != nil {
			return err
		}
		dial = faults.New(fcfg).Dialer(nil)
		fmt.Fprintf(os.Stderr, "fault injection armed: %s\n", faultsSpec)
	}
	conn, err := dial(addr, timeout)
	if err != nil {
		return err
	}
	defer conn.Close()

	// Truth objects ride on the first pushed camera's part of each frame;
	// the listener records them once per frame index, first part wins.
	truthCam := 0
	if camera >= 0 {
		truthCam = camera
	}
	pushed, parts := 0, 0
	for fi, frame := range test.Frames {
		for cam, obs := range frame.PerCamera {
			if camera >= 0 && cam != camera {
				continue
			}
			p := pipeline.FramePart{Cam: cam, Frame: fi, Obs: obs}
			if cam == truthCam {
				p.Objects = frame.Objects
			}
			if camera >= 0 {
				p.Cam = 0 // a single-camera listener's roster is just this camera
			}
			if err := pipeline.EncodeFramePart(conn, p); err != nil {
				return fmt.Errorf("frame %d camera %d: %w", fi, cam, err)
			}
			parts++
		}
		pushed++
		if rate > 0 && pushed%burst == 0 {
			time.Sleep(rate)
		}
	}
	// One EOS per pushed camera roster slot: the listener drains its
	// queues and ends the stream cleanly.
	numCams := len(s.World.Cameras)
	if camera >= 0 {
		numCams = 1
	}
	for cam := 0; cam < numCams; cam++ {
		if err := pipeline.EncodeFramePart(conn, pipeline.FramePart{Cam: cam, EOS: true}); err != nil {
			return fmt.Errorf("eos camera %d: %w", cam, err)
		}
	}
	fmt.Fprintf(os.Stderr, "pushed %d frames (%d parts) to %s\n", pushed, parts, addr)
	return nil
}
