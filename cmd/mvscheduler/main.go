// Command mvscheduler runs the central scheduler for a distributed
// deployment: camera nodes (cmd/mvnode) connect over TCP, upload their
// detections at key frames, and receive BALB assignments.
//
// The scheduler and all nodes regenerate the same deterministic world
// from (scenario, seed), so the association model is trained here
// without shipping any data.
//
// Usage:
//
//	mvscheduler [-listen :7001] [-scenario S2] [-seed 42] [-frames 1200]
//	            [-workers N] [-metrics-addr :8080] [-metrics-jsonl rounds.jsonl]
//
// -workers bounds the goroutines used for association-model training
// and for each scheduling round's per-pair association fan-out
// (0 = GOMAXPROCS, 1 = sequential); assignments are bit-identical at
// every value (docs/SCALING.md). With -metrics-addr the scheduler
// serves its latest scheduling-round snapshot as JSON at /metricsz;
// -metrics-jsonl appends one snapshot per round to a file (see
// docs/OBSERVABILITY.md). SIGINT/SIGTERM shut the scheduler down
// cleanly, flushing the metrics log.
//
// Resilience (docs/FAULTS.md): -round-timeout bounds how long a round
// waits for stragglers before scheduling with the reports received so
// far; -lease stops silent cameras from blocking the barrier (pair with
// mvnode -heartbeat-every); -faults wraps the listener in a
// deterministic fault injector for chaos runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/cluster"
	"mvs/internal/faults"
	"mvs/internal/metrics"
	"mvs/internal/workload"
)

func main() {
	var (
		listen       = flag.String("listen", ":7001", "listen address")
		scenario     = flag.String("scenario", "S2", "scenario: S1, S2, or S3")
		seed         = flag.Int64("seed", 42, "shared simulation seed")
		frames       = flag.Int("frames", 1200, "trace length used for model training")
		workers      = flag.Int("workers", 0, "training/association worker bound (0 = GOMAXPROCS, 1 = sequential)")
		roundTimeout = flag.Duration("round-timeout", 30*time.Second, "schedule an incomplete round after this long (0 = wait forever)")
		lease        = flag.Duration("lease", 0, "treat a camera silent for this long as dead for round barriers (0 = off)")
		faultsSpec   = flag.String("faults", "", "inject connection faults on accepted connections, e.g. seed=7,reset=0.02 (see docs/FAULTS.md)")
		metricsAddr  = flag.String("metrics-addr", "", "serve live /metricsz snapshots on this address (e.g. :8080)")
		metricsLog   = flag.String("metrics-jsonl", "", "append per-round metrics snapshots to this JSONL file")
	)
	flag.Parse()

	if err := run(*listen, *scenario, *seed, *frames, *workers, *roundTimeout, *lease, *faultsSpec, *metricsAddr, *metricsLog); err != nil {
		fmt.Fprintln(os.Stderr, "mvscheduler:", err)
		os.Exit(1)
	}
}

func run(listen, scenario string, seed int64, frames, workers int, roundTimeout, lease time.Duration, faultsSpec, metricsAddr, metricsLog string) error {
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}
	log.Printf("generating %s trace (%d frames) and training association model...", scenario, frames)
	trace, err := s.World.Run(frames)
	if err != nil {
		return err
	}
	train, _ := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{Workers: workers})
	if err != nil {
		return err
	}

	export, err := metrics.OpenExport(metricsAddr, metricsLog)
	if err != nil {
		return err
	}
	sched, err := cluster.NewScheduler(model, s.Profiles(), 0,
		cluster.WithLogger(log.Default()), cluster.WithSink(export.Sink),
		cluster.WithWorkers(workers),
		cluster.WithRoundTimeout(roundTimeout), cluster.WithLease(lease))
	if err != nil {
		_ = export.Close()
		return err
	}
	if export.Addr != "" {
		log.Printf("serving live metrics at http://%s/metricsz", export.Addr)
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		_ = export.Close()
		return err
	}
	if faultsSpec != "" {
		fcfg, err := faults.ParseSpec(faultsSpec)
		if err != nil {
			_ = export.Close()
			ln.Close()
			return err
		}
		ln = faults.New(fcfg).Listener(ln)
		log.Printf("fault injection armed: %s", faultsSpec)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Printf("shutting down...")
		sched.Close() // also closes ln, unblocking Serve
	}()

	log.Printf("central scheduler for %s (%d cameras) listening on %s",
		scenario, len(s.Devices), ln.Addr())
	serveErr := sched.Serve(ln)
	if err := export.Close(); err != nil && serveErr == nil {
		serveErr = err
	}
	return serveErr
}
