// Command mvscheduler runs the central scheduler for a distributed
// deployment: camera nodes (cmd/mvnode) connect over TCP, upload their
// detections at key frames, and receive BALB assignments.
//
// The scheduler and all nodes regenerate the same deterministic world
// from (scenario, seed), so the association model is trained here
// without shipping any data.
//
// Usage:
//
//	mvscheduler [-listen :7001] [-scenario S2] [-seed 42] [-frames 1200]
//	            [-workers N] [-metrics-addr :8080] [-metrics-jsonl rounds.jsonl]
//	            [-record rundir]
//
// -workers bounds the goroutines used for association-model training
// and for each scheduling round's per-pair association fan-out
// (0 = GOMAXPROCS, 1 = sequential); assignments are bit-identical at
// every value (docs/SCALING.md). With -metrics-addr the scheduler
// serves its latest scheduling-round snapshot as JSON at /metricsz;
// -metrics-jsonl appends one snapshot per round to a file (see
// docs/OBSERVABILITY.md). SIGINT/SIGTERM shut the scheduler down
// cleanly, flushing the metrics log.
//
// Resilience (docs/FAULTS.md): -round-timeout bounds how long a round
// waits for stragglers before scheduling with the reports received so
// far; -lease stops silent cameras from blocking the barrier (pair with
// mvnode -heartbeat-every); -faults wraps the listener in a
// deterministic fault injector for chaos runs; -adapt arms the
// degradation control loop (docs/FAULTS.md §10) — when scheduled round
// latency breaches the SLO or leases declare cameras dead, assignments
// carry a degradation level that nodes translate into capped
// inspection sizes and a stretched key-frame cadence.
//
// Scaling (docs/SCALING.md §3): -shard-max N partitions the fleet into
// overlap groups of at most N cameras from the trained model's coverage
// graph and runs one independent scheduling round loop per shard
// (cluster.ShardedScheduler); -shards gives the partition explicitly,
// e.g. "0,1,2|3,4,5". Nodes need no flag — shard-scoped assignments
// carry their roster on the wire. docs/ARCHITECTURE.md has the full
// picture.
//
// -record <dir> captures every scheduling round's snapshot and
// decision record into a run store for post-incident audit
// (capture-only — camera outages are node-side, so -cam-faults here
// only stamps the deployment's fault spec into the manifest; pass the
// same spec to the nodes to arm it). See docs/STREAMING.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/cliconf"
	"mvs/internal/cluster"
	"mvs/internal/faults"
	"mvs/internal/geom"
	"mvs/internal/metrics"
	"mvs/internal/scene"
	"mvs/internal/shard"
	"mvs/internal/store"
	"mvs/internal/workload"
)

func main() {
	var (
		listen       = flag.String("listen", ":7001", "listen address")
		scenario     = flag.String("scenario", "S2", "scenario: S1, S2, or S3")
		seed         = flag.Int64("seed", 42, "shared simulation seed")
		frames       = flag.Int("frames", 1200, "trace length used for model training")
		roundTimeout = flag.Duration("round-timeout", 30*time.Second, "schedule an incomplete round after this long (0 = wait forever)")
		lease        = flag.Duration("lease", 0, "treat a camera silent for this long as dead for round barriers (0 = off)")
		faultsSpec   = flag.String("faults", "", "inject connection faults on accepted connections, e.g. seed=7,reset=0.02 (see docs/FAULTS.md)")
		shardMax     = flag.Int("shard-max", 0, "partition the fleet into overlap groups of at most N cameras and run one round loop per shard (0 = one global round)")
		shardSpec    = flag.String("shards", "", "explicit shard partition, e.g. 0,1,2|3,4,5 (overrides -shard-max)")
	)
	shared := cliconf.Register(flag.CommandLine, "training/association")
	flag.Parse()

	if err := run(*listen, *scenario, *seed, *frames, *roundTimeout, *lease, *faultsSpec, *shardMax, *shardSpec, shared); err != nil {
		fmt.Fprintln(os.Stderr, "mvscheduler:", err)
		os.Exit(1)
	}
}

// service is the part of cluster.Scheduler and cluster.ShardedScheduler
// the command drives.
type service interface {
	Serve(net.Listener) error
	Close()
}

// shardMap resolves the sharding flags against the trained model: an
// explicit -shards spec wins, then -shard-max partitions the coverage
// graph, and with neither the scheduler runs the legacy global round
// (nil map).
func shardMap(spec string, maxShard int, s *workload.Scenario, model *assoc.Model) (*shard.Map, error) {
	if spec == "" && maxShard <= 0 {
		return nil, nil
	}
	rects := make([]geom.Rect, len(s.World.Cameras))
	for i, c := range s.World.Cameras {
		rects[i] = c.Frame()
	}
	adj, err := model.OverlapAdjacency(rects, 16, 9, 0)
	if err != nil {
		return nil, err
	}
	g, err := shard.FromAdjacency(adj)
	if err != nil {
		return nil, err
	}
	if spec != "" {
		return shard.ParseSpec(spec, model.NumCameras(), g)
	}
	return shard.Partition(g, maxShard)
}

func run(listen, scenario string, seed int64, frames int, roundTimeout, lease time.Duration, faultsSpec string, shardMax int, shardSpec string, shared *cliconf.Shared) error {
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}
	log.Printf("generating %s trace (%d frames) and training association model...", scenario, frames)
	trace, err := s.World.Run(frames)
	if err != nil {
		return err
	}
	train, _ := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{Workers: shared.Workers})
	if err != nil {
		return err
	}

	export, err := shared.OpenExport()
	if err != nil {
		return err
	}
	var rec *store.Writer
	if shared.Record != "" {
		roster, err := scene.MarshalCameras(s.World.Cameras)
		if err != nil {
			_ = export.Close()
			return err
		}
		rec, err = shared.OpenRecorder(store.Manifest{
			Label: "mvscheduler", Scenario: scenario, Seed: seed,
			TraceFrames: frames, Mode: "cluster", Cameras: roster,
		})
		if err != nil {
			_ = export.Close()
			return err
		}
		log.Printf("recording scheduling rounds into %s", shared.Record)
	}
	sink := export.Sink
	if rec != nil {
		sink = metrics.Multi(sink, rec)
	}
	opts := []cluster.Option{
		cluster.WithLogger(log.Default()), cluster.WithSink(sink),
		cluster.WithWorkers(shared.Workers),
		cluster.WithRoundTimeout(roundTimeout), cluster.WithLease(lease),
	}
	if rec != nil {
		opts = append(opts, cluster.WithRounds(rec))
	}
	adaptPol, err := shared.AdaptPolicy()
	if err != nil {
		if rec != nil {
			_ = rec.Close()
		}
		_ = export.Close()
		return err
	}
	if adaptPol.Enabled() {
		// Under a ShardedScheduler every option applies per shard, so
		// each shard gets its own independent controller.
		opts = append(opts, cluster.WithAdapt(adaptPol))
		log.Printf("degradation control loop armed: %s", adaptPol.Spec())
	}
	closeAll := func(serveErr error) error {
		if rec != nil {
			if err := rec.Close(); err != nil && serveErr == nil {
				serveErr = err
			}
		}
		if err := export.Close(); err != nil && serveErr == nil {
			serveErr = err
		}
		return serveErr
	}
	m, err := shardMap(shardSpec, shardMax, s, model)
	if err != nil {
		return closeAll(err)
	}
	var sched service
	if m != nil {
		log.Printf("sharded scheduling: %s", m.String())
		sched, err = cluster.NewShardedScheduler(model, s.Profiles(), 0, m, opts...)
	} else {
		sched, err = cluster.NewScheduler(model, s.Profiles(), 0, opts...)
	}
	if err != nil {
		return closeAll(err)
	}
	if export.Addr != "" {
		log.Printf("serving live metrics at http://%s/metricsz", export.Addr)
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return closeAll(err)
	}
	if faultsSpec != "" {
		fcfg, err := faults.ParseSpec(faultsSpec)
		if err != nil {
			ln.Close()
			return closeAll(err)
		}
		ln = faults.New(fcfg).Listener(ln)
		log.Printf("fault injection armed: %s", faultsSpec)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		log.Printf("shutting down...")
		sched.Close() // also closes ln, unblocking Serve
	}()

	log.Printf("central scheduler for %s (%d cameras) listening on %s",
		scenario, len(s.Devices), ln.Addr())
	return closeAll(sched.Serve(ln))
}
