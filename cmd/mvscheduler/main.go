// Command mvscheduler runs the central scheduler for a distributed
// deployment: camera nodes (cmd/mvnode) connect over TCP, upload their
// detections at key frames, and receive BALB assignments.
//
// The scheduler and all nodes regenerate the same deterministic world
// from (scenario, seed), so the association model is trained here
// without shipping any data.
//
// Usage:
//
//	mvscheduler [-listen :7001] [-scenario S2] [-seed 42] [-frames 1200]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"mvs/internal/assoc"
	"mvs/internal/cluster"
	"mvs/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", ":7001", "listen address")
		scenario = flag.String("scenario", "S2", "scenario: S1, S2, or S3")
		seed     = flag.Int64("seed", 42, "shared simulation seed")
		frames   = flag.Int("frames", 1200, "trace length used for model training")
	)
	flag.Parse()

	if err := run(*listen, *scenario, *seed, *frames); err != nil {
		fmt.Fprintln(os.Stderr, "mvscheduler:", err)
		os.Exit(1)
	}
}

func run(listen, scenario string, seed int64, frames int) error {
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}
	log.Printf("generating %s trace (%d frames) and training association model...", scenario, frames)
	trace, err := s.World.Run(frames)
	if err != nil {
		return err
	}
	train, _ := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		return err
	}

	sched, err := cluster.NewScheduler(model, s.Profiles(), 0)
	if err != nil {
		return err
	}
	sched.SetLogger(log.Default())

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	log.Printf("central scheduler for %s (%d cameras) listening on %s",
		scenario, len(s.Devices), ln.Addr())
	return sched.Serve(ln)
}
