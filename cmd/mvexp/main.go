// Command mvexp regenerates every table and figure of the paper's
// evaluation section on the simulated testbed.
//
// Usage:
//
//	mvexp [-exp all|fig2|table1|fig10|fig11|fig12|fig13|fig14|table2]
//	      [-scenario S1|S2|S3|all] [-frames N] [-seed N] [-workers N]
//	      [-metrics-addr :8080] [-metrics-jsonl run.jsonl]
//	      [-cam-faults seed=7,rate=0.1] [-health-k K] [-record rundir]
//
// Beyond the paper's figures, -exp sweep, -exp occlusion, -exp chaos,
// -exp shard, -exp shed, -exp adapt, and -exp tenants run the
// extrapolated studies (arrival-rate sensitivity, redundancy-2 hedging,
// graceful degradation under camera outages, the 64-camera shard-count
// scaling sweep, the ingest-overload shed-policy sweep, the
// degradation-control-loop sweep — controller on vs shed-only across
// offered loads, on the eight-camera S4 by default, tunable with
// -adapt — and the multi-tenant consolidated-serving sweep of
// docs/SERVING.md, scaling 1-16 tenants over a shared executor pool
// against a dedicated-slice baseline); all seven are excluded from
// "all".
//
// -workers bounds the concurrency of independent experiment points
// (modes, sweep points), the per-camera fan-out inside each pipeline
// run, its central stage's per-pair association fan-out, and the
// per-pair training fan-out of experiments that retrain models
// (0 = GOMAXPROCS, 1 = fully sequential). Results are identical for
// every value (see docs/CONCURRENCY.md and docs/SCALING.md).
//
// Output is plain text, one table per experiment, with the paper's
// qualitative expectations noted next to each.
//
// -cam-faults applies a shared camera-outage schedule to the mode
// comparison (figs 12/13, table2), so every algorithm is scored under
// the identical incident; -health-k arms their failover. -record <dir>
// captures the mode runs' snapshots and round decisions into a run
// store for audit (capture-only: mvreplay needs an mvsim recording;
// see docs/STREAMING.md). Both require a single -scenario.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mvs/internal/adapt"
	"mvs/internal/cliconf"
	"mvs/internal/experiments"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/scene"
	"mvs/internal/store"
	"mvs/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, fig2, table1, fig10, fig11, fig12, fig13, fig14, table2, sweep, occlusion, chaos, shard, shed, adapt, tenants")
		scenario = flag.String("scenario", "all", "scenario: S1, S2, S3, or all")
		frames   = flag.Int("frames", 1200, "trace length in frames (10 FPS)")
		seed     = flag.Int64("seed", 42, "simulation seed")
		csvDir   = flag.String("csv", "", "also write machine-readable CSVs into this directory")
	)
	shared := cliconf.Register(flag.CommandLine, "experiment/camera")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mvexp:", err)
			os.Exit(1)
		}
		csvOut = *csvDir
	}
	export, err := shared.OpenExport()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvexp:", err)
		os.Exit(1)
	}
	opts := experiments.Options{
		Workers: shared.Workers, CamFaults: shared.CamFaults, HealthK: shared.HealthK,
	}
	if shared.ExportEnabled() {
		opts.Sink = export.Sink
	}
	rec, err := openRecorder(shared, *exp, *scenario, *seed, *frames)
	if err != nil {
		_ = export.Close()
		fmt.Fprintln(os.Stderr, "mvexp:", err)
		os.Exit(1)
	}
	if rec != nil {
		if opts.Sink != nil {
			opts.Sink = metrics.Multi(opts.Sink, rec)
		} else {
			opts.Sink = rec
		}
		opts.Rounds = rec
	}
	adaptPol, err := shared.AdaptPolicy()
	if err != nil {
		_ = export.Close()
		fmt.Fprintln(os.Stderr, "mvexp:", err)
		os.Exit(1)
	}
	runErr := run(*exp, *scenario, *frames, *seed, adaptPol, opts)
	if rec != nil {
		if err := rec.Close(); err != nil && runErr == nil {
			runErr = err
		}
	}
	if err := export.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "mvexp:", runErr)
		os.Exit(1)
	}
}

// openRecorder opens the -record capture store: experiment snapshots
// and round decisions under a manifest naming the incident, no frame
// log (the simulator regenerates frames from (scenario, seed)).
func openRecorder(shared *cliconf.Shared, exp, scenario string, seed int64, frames int) (*store.Writer, error) {
	if shared.Record == "" {
		return nil, nil
	}
	if scenario == "all" {
		return nil, fmt.Errorf("-record needs a single -scenario (the manifest pins one camera roster)")
	}
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return nil, err
	}
	roster, err := scene.MarshalCameras(s.World.Cameras)
	if err != nil {
		return nil, err
	}
	return shared.OpenRecorder(store.Manifest{
		Label: "mvexp/" + exp, Scenario: scenario, Seed: seed,
		TraceFrames: frames, Mode: "modes", Horizon: 10, Cameras: roster,
	})
}

func scenarioNames(scenario string) ([]string, error) {
	switch scenario {
	case "all":
		return []string{"S1", "S2", "S3"}, nil
	case "S1", "S2", "S3":
		return []string{scenario}, nil
	default:
		return nil, fmt.Errorf("unknown scenario %q", scenario)
	}
}

func run(exp, scenario string, frames int, seed int64, adaptPol adapt.Policy, opts experiments.Options) error {
	// The adapt sweep targets the eight-camera S4 scale scenario by
	// default (the others run if named explicitly), so it resolves its
	// scenario before the S1-S3 name check.
	if exp == "adapt" {
		names := []string{"S4"}
		if scenario != "all" {
			names = []string{scenario}
		}
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "preparing %s (%d frames, seed %d)...\n", name, frames, seed)
			s, err := experiments.Prepare(name, seed, frames)
			if err != nil {
				return err
			}
			if err := printAdaptSweep(s, adaptPol, opts); err != nil {
				return err
			}
		}
		return nil
	}

	// The tenant sweep replays one scenario's trace per tenant (S1
	// unless a single -scenario names another, S4 included), so like
	// adapt it resolves its scenario before the S1-S3 name check.
	if exp == "tenants" {
		name := "S1"
		if scenario != "all" {
			name = scenario
		}
		return printTenantSweep(name, seed, frames, opts)
	}

	names, err := scenarioNames(scenario)
	if err != nil {
		return err
	}

	wantAll := exp == "all"
	want := func(name string) bool { return wantAll || exp == name }
	known := map[string]bool{
		"fig2": true, "table1": true, "fig10": true, "fig11": true,
		"fig12": true, "fig13": true, "fig14": true, "table2": true,
		"sweep": true, "occlusion": true, "chaos": true, "shard": true,
		"shed": true, "adapt": true, "tenants": true,
	}
	if !wantAll && !known[exp] {
		return fmt.Errorf("unknown experiment %q", exp)
	}

	// The arrival-rate sweep and the occlusion study rebuild worlds, so
	// they only run when asked for explicitly.
	if exp == "sweep" {
		for _, name := range names {
			if err := printArrivalSweep(name, seed, frames, opts); err != nil {
				return err
			}
		}
		return nil
	}
	if exp == "occlusion" {
		for _, name := range names {
			if err := printOcclusion(name, seed, frames); err != nil {
				return err
			}
		}
		return nil
	}
	// The shard sweep builds its own 64-camera corridor fleet rather
	// than using an S* scenario, so it too only runs when asked for.
	if exp == "shard" {
		return printShardSweep(seed, frames, opts)
	}
	if exp == "chaos" {
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "preparing %s (%d frames, seed %d)...\n", name, frames, seed)
			s, err := experiments.Prepare(name, seed, frames)
			if err != nil {
				return err
			}
			if err := printChaos(s, opts); err != nil {
				return err
			}
		}
		return nil
	}
	if exp == "shed" {
		for _, name := range names {
			fmt.Fprintf(os.Stderr, "preparing %s (%d frames, seed %d)...\n", name, frames, seed)
			s, err := experiments.Prepare(name, seed, frames)
			if err != nil {
				return err
			}
			if err := printShedSweep(s, opts); err != nil {
				return err
			}
		}
		return nil
	}

	if want("table1") {
		printTableI(seed)
	}

	// Setups are expensive (trace + model training); prepare lazily and
	// cache per scenario.
	setups := make(map[string]*experiments.Setup)
	prepare := func(name string) (*experiments.Setup, error) {
		if s, ok := setups[name]; ok {
			return s, nil
		}
		fmt.Fprintf(os.Stderr, "preparing %s (%d frames, seed %d)...\n", name, frames, seed)
		s, err := experiments.Prepare(name, seed, frames)
		if err != nil {
			return nil, err
		}
		setups[name] = s
		return s, nil
	}

	for _, name := range names {
		needSetup := want("fig2") || want("fig10") || want("fig11") ||
			want("fig12") || want("fig13") || want("table2") ||
			(want("fig14") && name == "S1")
		if !needSetup {
			continue
		}
		s, err := prepare(name)
		if err != nil {
			return err
		}

		if want("fig2") {
			printFig2(s)
		}
		if want("fig10") {
			if err := printFig10(s); err != nil {
				return err
			}
		}
		if want("fig11") {
			if err := printFig11(s); err != nil {
				return err
			}
		}
		if want("fig12") || want("fig13") || want("table2") {
			reports, err := experiments.RunModes(s, 10, opts)
			if err != nil {
				return err
			}
			if want("fig12") {
				printFig12(s, reports)
			}
			if want("fig13") {
				printFig13(s, reports)
			}
			if want("table2") {
				printTableII(s, reports[pipeline.BALB])
			}
		}
		if want("fig14") && name == "S1" {
			if err := printFig14(s, opts); err != nil {
				return err
			}
		}
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// csvOut, when non-empty, is the directory machine-readable copies of the
// experiment tables are written into.
var csvOut string

// writeCSV emits one experiment's rows as <csvOut>/<name>.csv; it is a
// no-op unless -csv was given. Errors are reported but non-fatal: the
// textual output remains the primary artifact.
func writeCSV(name string, headerRow []string, rows [][]string) {
	if csvOut == "" {
		return
	}
	path := filepath.Join(csvOut, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvexp: csv:", err)
		return
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(headerRow); err != nil {
		fmt.Fprintln(os.Stderr, "mvexp: csv:", err)
		return
	}
	if err := w.WriteAll(rows); err != nil {
		fmt.Fprintln(os.Stderr, "mvexp: csv:", err)
	}
}

func printTableI(seed int64) {
	header("Table I: hardware configuration per scenario")
	for _, row := range experiments.TableI(seed) {
		devs := make([]string, len(row.Devices))
		for i, d := range row.Devices {
			devs[i] = d.String()
		}
		fmt.Printf("%-4s %s\n", row.Scenario, strings.Join(devs, ", "))
	}
}

func printFig2(s *experiments.Setup) {
	header(fmt.Sprintf("Fig 2 (%s): per-camera object workload, sampled every 2 s", s.Scenario.Name))
	res := experiments.Fig2(s)
	for ci, series := range res.Counts {
		min, max, sum := series[0], series[0], 0
		for _, v := range series {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
			sum += v
		}
		fmt.Printf("%-14s mean=%5.1f  min=%2d  max=%2d  series=%v\n",
			res.CameraNames[ci], float64(sum)/float64(len(series)), min, max, head(series, 30))
	}
	fmt.Println("expected shape: large temporal variation, phase-shifted across cameras")
}

func head(xs []int, n int) []int {
	if len(xs) <= n {
		return xs
	}
	return xs[:n]
}

func printFig10(s *experiments.Setup) error {
	header(fmt.Sprintf("Fig 10 (%s): association classifier comparison", s.Scenario.Name))
	rows, err := experiments.Fig10(s)
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-10s precision=%.3f recall=%.3f\n", r.Model, r.Precision, r.Recall)
		csvRows = append(csvRows, []string{s.Scenario.Name, r.Model,
			strconv.FormatFloat(r.Precision, 'f', 4, 64),
			strconv.FormatFloat(r.Recall, 'f', 4, 64)})
	}
	writeCSV("fig10_"+s.Scenario.Name, []string{"scenario", "model", "precision", "recall"}, csvRows)
	fmt.Println("expected shape: KNN best or near-best precision (precision > recall in importance)")
	return nil
}

func printFig11(s *experiments.Setup) error {
	header(fmt.Sprintf("Fig 11 (%s): association regressor comparison (MAE, px)", s.Scenario.Name))
	rows, err := experiments.Fig11(s)
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-12s mae=%.1f\n", r.Model, r.MAE)
		csvRows = append(csvRows, []string{s.Scenario.Name, r.Model,
			strconv.FormatFloat(r.MAE, 'f', 2, 64)})
	}
	writeCSV("fig11_"+s.Scenario.Name, []string{"scenario", "model", "mae_px"}, csvRows)
	fmt.Println("expected shape: KNN lowest, homography clearly worst")
	return nil
}

func printFig12(s *experiments.Setup, reports map[pipeline.Mode]*pipeline.Report) {
	header(fmt.Sprintf("Fig 12 (%s): object recall per algorithm", s.Scenario.Name))
	var csvRows [][]string
	for _, mode := range experiments.Modes() {
		r := reports[mode]
		fmt.Printf("%-9s recall=%.3f (tp=%d fn=%d)\n", r.Mode, r.Recall, r.TP, r.FN)
		csvRows = append(csvRows, []string{s.Scenario.Name, r.Mode.String(),
			strconv.FormatFloat(r.Recall, 'f', 4, 64),
			strconv.Itoa(r.TP), strconv.Itoa(r.FN)})
	}
	writeCSV("fig12_"+s.Scenario.Name, []string{"scenario", "algorithm", "recall", "tp", "fn"}, csvRows)
	fmt.Println("expected shape: Full ~= BALB-Ind >= BALB > BALB-Cen; SP hurt most by association errors")
}

func printFig13(s *experiments.Setup, reports map[pipeline.Mode]*pipeline.Report) {
	header(fmt.Sprintf("Fig 13 (%s): per-frame inference latency (slowest camera)", s.Scenario.Name))
	full := reports[pipeline.Full]
	var csvRows [][]string
	for _, mode := range experiments.Modes() {
		r := reports[mode]
		speedup, err := metrics.Speedup(full.MeanSlowest, r.MeanSlowest)
		if err != nil {
			speedup = 0
		}
		fmt.Printf("%-9s latency=%8v speedup_vs_full=%.2fx\n",
			r.Mode, r.MeanSlowest.Round(100*1000), speedup)
		csvRows = append(csvRows, []string{s.Scenario.Name, r.Mode.String(),
			strconv.FormatInt(r.MeanSlowest.Microseconds(), 10),
			strconv.FormatFloat(speedup, 'f', 3, 64)})
	}
	writeCSV("fig13_"+s.Scenario.Name, []string{"scenario", "algorithm", "latency_us", "speedup_vs_full"}, csvRows)
	fmt.Println("expected shape: BALB fastest; speedup largest in S1/S2, smallest in S3; BALB beats SP")
}

func printFig14(s *experiments.Setup, opts experiments.Options) error {
	header("Fig 14 (S1): scheduling-horizon length sweep (BALB)")
	points, err := experiments.Fig14(s, nil, opts)
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, p := range points {
		fmt.Printf("T=%-3d recall=%.3f cen_recall=%.3f latency=%8v\n",
			p.Horizon, p.Recall, p.CenRecall, p.MeanSlowest.Round(100*1000))
		csvRows = append(csvRows, []string{strconv.Itoa(p.Horizon),
			strconv.FormatFloat(p.Recall, 'f', 4, 64),
			strconv.FormatFloat(p.CenRecall, 'f', 4, 64),
			strconv.FormatInt(p.MeanSlowest.Microseconds(), 10)})
	}
	writeCSV("fig14_S1", []string{"horizon", "balb_recall", "cen_recall", "latency_us"}, csvRows)
	fmt.Println("expected shape: longer horizons faster but lower recall (sharply so")
	fmt.Println("without the distributed stage); T=10 a good tradeoff")
	return nil
}

func printArrivalSweep(name string, seed int64, frames int, opts experiments.Options) error {
	header(fmt.Sprintf("Arrival-rate sweep (%s): distributed-stage contribution vs churn", name))
	points, err := experiments.ArrivalSweep(name, seed, frames, nil, opts)
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Printf("rate x%.1f  balb_recall=%.3f cen_recall=%.3f gap=%+.3f latency=%8v\n",
			p.RateScale, p.BALBRecall, p.CenRecall, p.BALBRecall-p.CenRecall,
			p.BALBLatency.Round(100*1000))
	}
	fmt.Println("expected shape: a persistent BALB-over-Cen recall gap at every rate.")
	fmt.Println("The gap is roughly rate-invariant: the fraction of object-frames in")
	fmt.Println("the 'arrived since the last key frame' state is ~(T/2)/lifetime,")
	fmt.Println("independent of arrival rate — it grows with horizon length instead")
	fmt.Println("(see Fig 14's cen_recall column).")
	return nil
}

func printOcclusion(name string, seed int64, frames int) error {
	header(fmt.Sprintf("Occlusion study (%s): redundancy-2 vs single-tracker BALB", name))
	res, err := experiments.OcclusionStudy(name, seed, frames, 0.6)
	if err != nil {
		return err
	}
	fmt.Printf("BALB (R=1): recall=%.3f latency=%8v\n",
		res.BALBRecall, res.BALBLatency.Round(100*1000))
	fmt.Printf("BALB (R=2): recall=%.3f latency=%8v\n",
		res.RedundantRecall, res.RedundantLatency.Round(100*1000))
	fmt.Println("expected shape: redundancy recovers occlusion-lost recall at a")
	fmt.Println("bounded latency cost (the paper's §V occlusion-hedging proposal)")
	return nil
}

func printChaos(s *experiments.Setup, opts experiments.Options) error {
	header(fmt.Sprintf("Chaos sweep (%s): BALB under camera outages, failover vs off", s.Scenario.Name))
	points, err := experiments.ChaosSweep(s, nil, 0, opts)
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, p := range points {
		fmt.Printf("rate=%.2f outage=%-5d recall fo=%.3f off=%.3f (gap %+.3f)  p99 fo=%8v off=%8v  reassigned=%d orphaned=%d\n",
			p.Rate, p.OutageFrames, p.FailoverRecall, p.NoFailoverRecall,
			p.FailoverRecall-p.NoFailoverRecall,
			p.FailoverP99.Round(100*1000), p.NoFailoverP99.Round(100*1000),
			p.Reassignments, p.Orphaned)
		csvRows = append(csvRows, []string{s.Scenario.Name,
			strconv.FormatFloat(p.Rate, 'f', 3, 64),
			strconv.Itoa(p.OutageFrames),
			strconv.FormatFloat(p.FailoverRecall, 'f', 4, 64),
			strconv.FormatFloat(p.NoFailoverRecall, 'f', 4, 64),
			strconv.FormatInt(p.FailoverP99.Microseconds(), 10),
			strconv.FormatInt(p.NoFailoverP99.Microseconds(), 10),
			strconv.Itoa(p.Reassignments), strconv.Itoa(p.Orphaned)})
	}
	writeCSV("chaos_"+s.Scenario.Name, []string{"scenario", "rate", "outage_frames",
		"failover_recall", "nofailover_recall", "failover_p99_us", "nofailover_p99_us",
		"reassignments", "orphaned"}, csvRows)
	fmt.Println("expected shape: failover recall above the off arm at every rate;")
	fmt.Println("both arms degrade gracefully (recall falls with outage rate, no cliff)")
	return nil
}

func printShardSweep(seed int64, frames int, opts experiments.Options) error {
	header("Shard sweep (C64): global vs sharded central-round cost, 64-camera corridor")
	points, err := experiments.ShardSweep(64, seed, frames, nil, opts)
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, p := range points {
		label := "global"
		if p.MaxShard > 0 {
			label = fmt.Sprintf("max=%d", p.MaxShard)
		}
		fmt.Printf("%-8s shards=%-3d central/frame=%10v  recall=%.3f latency=%8v\n",
			label, p.Shards, p.CentralPerFrame.Round(1000), p.Recall,
			p.MeanSlowest.Round(100*1000))
		csvRows = append(csvRows, []string{strconv.Itoa(p.MaxShard), strconv.Itoa(p.Shards),
			strconv.FormatInt(p.CentralPerFrame.Microseconds(), 10),
			strconv.FormatFloat(p.Recall, 'f', 4, 64),
			strconv.FormatInt(p.MeanSlowest.Microseconds(), 10)})
	}
	writeCSV("shard_C64", []string{"max_shard", "shards", "central_us_per_frame",
		"recall", "latency_us"}, csvRows)
	fmt.Println("expected shape: central cost falls roughly linearly in the shard count")
	fmt.Println("(k shards of N/k cameras price k·(N/k)² = N²/k pair work); recall holds")
	return nil
}

func printShedSweep(s *experiments.Setup, opts experiments.Options) error {
	header(fmt.Sprintf("Shed sweep (%s): recall and P99 latency vs offered load per admission policy", s.Scenario.Name))
	points, err := experiments.ShedSweep(s, nil, opts)
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, p := range points {
		survived := p.Offered - p.Shed
		fmt.Printf("%-12s load=%dx  offered=%-5d survived=%-5d shed=%-5d recall=%.3f p99=%8v\n",
			p.Policy, p.Load, p.Offered, survived, p.Shed, p.Recall, p.P99Slowest.Round(100*1000))
		csvRows = append(csvRows, []string{p.Policy, strconv.Itoa(p.Load),
			strconv.Itoa(p.Offered), strconv.Itoa(survived), strconv.Itoa(p.Shed),
			strconv.FormatFloat(p.Recall, 'f', 4, 64),
			strconv.FormatInt(p.P99Slowest.Microseconds(), 10)})
	}
	writeCSV("shed_"+s.Scenario.Name, []string{"policy", "load", "offered_parts",
		"survived_parts", "shed_parts", "recall", "p99_us"}, csvRows)
	fmt.Println("expected shape: at load 1x nothing sheds and every policy matches the")
	fmt.Println("offline run; past the queue bound shed grows with load while recall on")
	fmt.Println("surviving frames holds — the policies differ in which frames survive")
	return nil
}

func printTenantSweep(name string, seed int64, frames int, opts experiments.Options) error {
	header(fmt.Sprintf("Tenant sweep (%s): consolidated vs dedicated serving, shared 4-executor pool", name))
	points, err := experiments.TenantSweep(name, seed, frames, 0, 0, nil, opts)
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, p := range points {
		con, ded := p.Consolidated, p.Dedicated
		fmt.Printf("tenants=%-3d p99 con=%8v ded=%8v  slo_viol con=%-4d ded=%-4d  shed con=%-5d ded=%-5d  shared=%-4d occ con=%.2f ded=%.2f  thr con=%7.1f ded=%7.1f img/s\n",
			p.Tenants, con.WorstP99.Round(100*1000), ded.WorstP99.Round(100*1000),
			con.SLOViolations, ded.SLOViolations, con.ShedTasks, ded.ShedTasks,
			con.SharedBatches, con.MeanOccupancy, ded.MeanOccupancy,
			con.Throughput, ded.Throughput)
		csvRows = append(csvRows, []string{name, strconv.Itoa(p.Tenants),
			strconv.FormatInt(con.WorstP99.Microseconds(), 10),
			strconv.FormatInt(ded.WorstP99.Microseconds(), 10),
			strconv.Itoa(con.SLOViolations), strconv.Itoa(ded.SLOViolations),
			strconv.Itoa(con.ShedTasks), strconv.Itoa(ded.ShedTasks),
			strconv.Itoa(con.SharedBatches),
			strconv.FormatFloat(con.MeanOccupancy, 'f', 3, 64),
			strconv.FormatFloat(ded.MeanOccupancy, 'f', 3, 64),
			strconv.FormatFloat(con.Throughput, 'f', 1, 64),
			strconv.FormatFloat(ded.Throughput, 'f', 1, 64)})
	}
	writeCSV("tenants_"+name, []string{"scenario", "tenants",
		"con_p99_us", "ded_p99_us", "con_slo_viol", "ded_slo_viol",
		"con_shed", "ded_shed", "shared_batches", "con_occupancy",
		"ded_occupancy", "con_img_per_s", "ded_img_per_s"}, csvRows)
	fmt.Println("expected shape: consolidation packs cross-tenant work into fuller")
	fmt.Println("batches, so at every tenant count its worst per-tenant P99 and SLO")
	fmt.Println("violations sit at or below the dedicated baseline's, decisively so")
	fmt.Println("once the dedicated slices saturate (see docs/SERVING.md)")
	return nil
}

func printAdaptSweep(s *experiments.Setup, pol adapt.Policy, opts experiments.Options) error {
	header(fmt.Sprintf("Adapt sweep (%s): degradation control loop vs shed-only under offered load", s.Scenario.Name))
	points, err := experiments.AdaptSweep(s, pol, nil, opts)
	if err != nil {
		return err
	}
	total := len(s.Test.Frames)
	var csvRows [][]string
	for _, p := range points {
		// Effective recall scores the whole offered trace: a shed frame
		// is a total miss, so recall is scaled by assembly coverage.
		onEff := p.OnRecall * float64(p.OnFrames) / float64(total)
		offEff := p.OffRecall * float64(p.OffFrames) / float64(total)
		fmt.Printf("load=%dx  eff_recall on=%.3f off=%.3f (gap %+.3f)  frames on=%-4d off=%-4d  p99 on=%8v off=%8v  shed on=%-5d off=%-5d  level=%d transitions=%d slo_viol=%d\n",
			p.Load, onEff, offEff, onEff-offEff,
			p.OnFrames, p.OffFrames,
			p.OnP99.Round(100*1000), p.OffP99.Round(100*1000),
			p.OnShed, p.OffShed, p.FinalLevel, p.Transitions, p.SLOViolations)
		csvRows = append(csvRows, []string{s.Scenario.Name, strconv.Itoa(p.Load),
			strconv.FormatFloat(onEff, 'f', 4, 64),
			strconv.FormatFloat(offEff, 'f', 4, 64),
			strconv.FormatFloat(p.OnRecall, 'f', 4, 64),
			strconv.FormatFloat(p.OffRecall, 'f', 4, 64),
			strconv.Itoa(p.OnFrames), strconv.Itoa(p.OffFrames),
			strconv.FormatInt(p.OnP99.Microseconds(), 10),
			strconv.FormatInt(p.OffP99.Microseconds(), 10),
			strconv.Itoa(p.OnShed), strconv.Itoa(p.OffShed),
			strconv.Itoa(p.FinalLevel), strconv.Itoa(p.Transitions),
			strconv.Itoa(p.SLOViolations)})
	}
	writeCSV("adapt_"+s.Scenario.Name, []string{"scenario", "load",
		"on_eff_recall", "off_eff_recall", "on_recall", "off_recall",
		"on_frames", "off_frames", "on_p99_us", "off_p99_us",
		"on_shed", "off_shed", "final_level", "transitions", "slo_violations"}, csvRows)
	fmt.Println("expected shape: at load 1x the arms are identical (the controller never")
	fmt.Println("engages); under overload the ladder outruns the offered load — fewer")
	fmt.Println("shed frames, higher effective recall than shed-only — with P99 inside")
	fmt.Println("the SLO")
	return nil
}

func printTableII(s *experiments.Setup, balb *pipeline.Report) {
	header(fmt.Sprintf("Table II (%s): per-frame framework overhead (BALB)", s.Scenario.Name))
	fmt.Printf("central=%v tracking=%v distributed=%v batching=%v total=%v\n",
		balb.CentralPerFrame.Round(10_000),
		balb.TrackingPerFrame.Round(10_000),
		balb.DistributedPerFrame.Round(1_000),
		balb.BatchingPerFrame.Round(1_000),
		balb.OverheadTotal().Round(10_000))
	fmt.Println("expected shape: total overhead well below the GPU time the scheduler saves")
}
