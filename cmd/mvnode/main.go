// Command mvnode runs one camera node of a distributed deployment: it
// regenerates its camera's observations from the shared (scenario, seed)
// pair, connects to the central scheduler, and executes the BALB camera
// loop — full-frame inspection and detection upload at key frames,
// tracking-based sliced batched inspection plus the distributed stage on
// regular frames.
//
// Start one mvscheduler and one mvnode per camera:
//
//	mvscheduler -scenario S2 -seed 42 &
//	mvnode -addr localhost:7001 -camera 0 -scenario S2 -seed 42
//	mvnode -addr localhost:7001 -camera 1 -scenario S2 -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"mvs/internal/cluster"
	"mvs/internal/metrics"
	"mvs/internal/node"
	"mvs/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:7001", "scheduler address")
		camera      = flag.Int("camera", 0, "this node's camera index")
		scenario    = flag.String("scenario", "S2", "scenario: S1, S2, or S3")
		seed        = flag.Int64("seed", 42, "shared simulation seed")
		frames      = flag.Int("frames", 1200, "trace length (first half is the model's training split)")
		horizon     = flag.Int("horizon", 10, "frames per scheduling horizon (T)")
		rate        = flag.Duration("rate", 0, "real-time pacing per frame (0 = as fast as possible)")
		metricsAddr = flag.String("metrics-addr", "", "serve live /metricsz snapshots on this address (e.g. :8081)")
		metricsLog  = flag.String("metrics-jsonl", "", "append per-frame metrics snapshots to this JSONL file")
	)
	flag.Parse()

	export, err := metrics.OpenExport(*metricsAddr, *metricsLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvnode:", err)
		os.Exit(1)
	}
	runErr := run(*addr, *camera, *scenario, *seed, *frames, *horizon, *rate, export)
	if err := export.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "mvnode:", runErr)
		os.Exit(1)
	}
}

func run(addr string, camera int, scenario string, seed int64, frames, horizon int, rate time.Duration, export *metrics.Export) error {
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}
	if camera < 0 || camera >= len(s.World.Cameras) {
		return fmt.Errorf("camera %d out of range: %s has %d cameras", camera, scenario, len(s.World.Cameras))
	}
	log.Printf("camera %d (%s, %s): regenerating world...",
		camera, s.World.Cameras[camera].Name, s.Devices[camera])
	trace, err := s.World.Run(frames)
	if err != nil {
		return err
	}
	// Evaluate on the second half; the first half trained the
	// scheduler's association model.
	_, test := trace.SplitTrain()

	cam := s.World.Cameras[camera]
	client, err := cluster.Dial(addr, camera, 10*time.Second, cam.ImageW, cam.ImageH)
	if err != nil {
		return err
	}
	defer client.Close()
	ack := client.Ack()
	if ack == nil {
		return fmt.Errorf("scheduler sent no registration ack payload")
	}
	log.Printf("registered: %dx%d mask grid, %d cells",
		ack.GridCols, ack.GridRows, len(ack.Coverage))

	if export.Addr != "" {
		log.Printf("serving live metrics at http://%s/metricsz", export.Addr)
	}
	rt, err := node.New(node.Config{
		Camera:     camera,
		Frame:      cam.Frame(),
		Profile:    s.Profiles()[camera],
		GridCols:   ack.GridCols,
		GridRows:   ack.GridRows,
		Coverage:   ack.Coverage,
		NumCameras: len(s.World.Cameras),
		Seed:       seed,
		Sink:       export.Sink,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	for fi := range test.Frames {
		obs := test.Frames[fi].PerCamera[camera]
		if fi%horizon == 0 {
			reports, err := rt.KeyFrame(obs)
			if err != nil {
				return err
			}
			assignment, err := client.KeyFrame(fi, reports, 30*time.Second)
			if err != nil {
				return err
			}
			if err := rt.ApplyAssignment(assignment); err != nil {
				return err
			}
		} else {
			if _, err := rt.RegularFrame(obs); err != nil {
				return err
			}
		}
		if rate > 0 {
			time.Sleep(rate)
		}
	}

	st := rt.Stats()
	log.Printf("done in %v wall time", time.Since(start).Round(time.Millisecond))
	fmt.Printf("camera %d summary:\n", camera)
	fmt.Printf("  frames:            %d\n", st.Frames)
	fmt.Printf("  mean inference:    %v/frame\n", st.MeanLatency.Round(100_000))
	fmt.Printf("  distinct objects:  %d detected\n", st.DetectedObjects)
	fmt.Printf("  final tracks:      %d active, %d shadows\n", st.ActiveTracks, st.Shadows)
	// Uplink usage vs the testbed's 20 Mbps budget: key-frame uploads are
	// tiny compared to streaming video, which is the point of onboard
	// processing.
	secs := float64(st.Frames) / 10.0
	upKbps := float64(client.BytesSent()) * 8 / 1000 / secs
	fmt.Printf("  network:           %d B up, %d B down (%.1f kbit/s uplink)\n",
		client.BytesSent(), client.BytesReceived(), upKbps)
	return nil
}
