// Command mvnode runs one camera node of a distributed deployment: it
// regenerates its camera's observations from the shared (scenario, seed)
// pair, connects to the central scheduler, and executes the BALB camera
// loop — full-frame inspection and detection upload at key frames,
// tracking-based sliced batched inspection plus the distributed stage on
// regular frames.
//
// Start one mvscheduler and one mvnode per camera:
//
//	mvscheduler -scenario S2 -seed 42 &
//	mvnode -addr localhost:7001 -camera 0 -scenario S2 -seed 42
//	mvnode -addr localhost:7001 -camera 1 -scenario S2 -seed 42
//
// The node is fault tolerant (docs/FAULTS.md): the scheduler connection
// reconnects with capped exponential backoff, a round whose assignment
// never arrives puts the node in degraded mode — it keeps inspecting all
// of its own tracks under the last-known priority order and masks — and
// the next successful round rejoins. -faults injects deterministic
// connection faults for chaos runs; -cam-faults injects data-plane
// camera outages (the node skips the frame loop while "down", which a
// lease-armed scheduler observes as silence and reports as a dead
// camera to the surviving nodes). When the scheduler runs -adapt, its
// assignments carry a degradation level: the node caps its inspection
// input sizes at adapt.SizeCapFor(level) and stretches its key-frame
// cadence by adapt.StretchFor(level) (docs/FAULTS.md §10).
//
// Sharded deployments (mvscheduler -shard-max / -shards) need no node
// flag: the scheduler routes the node to its shard's round loop at the
// hello handshake, and shard-scoped assignments carry their camera
// roster, from which the node builds a scoped ownership policy
// (docs/SCALING.md §3, docs/ARCHITECTURE.md).
//
// -record <dir> captures the node's per-frame snapshots into a run
// store labelled with its camera index (capture-only; see
// docs/STREAMING.md). -workers is accepted for flag-matrix parity with
// the other binaries — the node's frame loop is inherently sequential.
//
// -ingest-addr replaces the regenerated observations with a live feed:
// the node listens for this camera's frame parts (push with mvingest
// -camera N), sheds under overload per -shed-policy, and degrades with
// a typed stall error if the feed goes silent past -deadline
// (docs/STREAMING.md §6).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"mvs/internal/adapt"
	"mvs/internal/cliconf"
	"mvs/internal/cluster"
	"mvs/internal/faults"
	"mvs/internal/metrics"
	"mvs/internal/node"
	"mvs/internal/pipeline"
	"mvs/internal/scene"
	"mvs/internal/store"
	"mvs/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:7001", "scheduler address")
		camera     = flag.Int("camera", 0, "this node's camera index")
		scenario   = flag.String("scenario", "S2", "scenario: S1, S2, or S3")
		seed       = flag.Int64("seed", 42, "shared simulation seed")
		frames     = flag.Int("frames", 1200, "trace length (first half is the model's training split)")
		horizon    = flag.Int("horizon", 10, "frames per scheduling horizon (T)")
		rate       = flag.Duration("rate", 0, "real-time pacing per frame (0 = as fast as possible)")
		deadline   = flag.Duration("deadline", 30*time.Second, "how long a key frame waits for its assignment before degrading")
		retries    = flag.Int("retries", 4, "connection attempts per operation before degrading")
		hbEvery    = flag.Int("heartbeat-every", 0, "send a liveness ping every N regular frames (0 = off; pair with mvscheduler -lease)")
		faultsSpec = flag.String("faults", "", "inject connection faults, e.g. seed=7,drop=0.05,cut=40 (see docs/FAULTS.md)")
	)
	shared := cliconf.Register(flag.CommandLine, "(matrix parity; unused)")
	flag.Parse()

	export, err := shared.OpenExport()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvnode:", err)
		os.Exit(1)
	}
	runErr := run(runConfig{
		addr: *addr, camera: *camera, scenario: *scenario, seed: *seed,
		frames: *frames, horizon: *horizon, rate: *rate,
		deadline: *deadline, retries: *retries, hbEvery: *hbEvery,
		faultsSpec: *faultsSpec, shared: shared, export: export,
	})
	if err := export.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "mvnode:", runErr)
		os.Exit(1)
	}
}

type runConfig struct {
	addr       string
	camera     int
	scenario   string
	seed       int64
	frames     int
	horizon    int
	rate       time.Duration
	deadline   time.Duration
	retries    int
	hbEvery    int
	faultsSpec string
	shared     *cliconf.Shared
	export     *metrics.Export
}

func run(cfg runConfig) error {
	s, err := workload.ByName(cfg.scenario, cfg.seed)
	if err != nil {
		return err
	}
	if cfg.camera < 0 || cfg.camera >= len(s.World.Cameras) {
		return fmt.Errorf("camera %d out of range: %s has %d cameras", cfg.camera, cfg.scenario, len(s.World.Cameras))
	}
	log.Printf("camera %d (%s, %s): regenerating world...",
		cfg.camera, s.World.Cameras[cfg.camera].Name, s.Devices[cfg.camera])
	trace, err := s.World.Run(cfg.frames)
	if err != nil {
		return err
	}
	// Evaluate on the second half; the first half trained the
	// scheduler's association model.
	_, test := trace.SplitTrain()

	camModel, err := cfg.shared.FaultModel(len(s.World.Cameras), len(test.Frames))
	if err != nil {
		return err
	}
	if camModel != nil {
		down := 0
		for fi := range test.Frames {
			if camModel.Down(cfg.camera, fi) {
				down++
			}
		}
		log.Printf("camera-fault injection armed: %d/%d frames down for camera %d",
			down, len(test.Frames), cfg.camera)
	}

	// -record: capture this node's per-frame snapshots durably. The node
	// never records frames — the world regenerates from (scenario, seed).
	sink := cfg.export.Sink
	var rec *store.Writer
	if cfg.shared.Record != "" {
		roster, err := scene.MarshalCameras(s.World.Cameras)
		if err != nil {
			return err
		}
		rec, err = cfg.shared.OpenRecorder(store.Manifest{
			Label: fmt.Sprintf("mvnode/cam%d", cfg.camera), Scenario: cfg.scenario,
			Seed: cfg.seed, TraceFrames: cfg.frames, Mode: "node",
			Horizon: cfg.horizon, Cameras: roster,
		})
		if err != nil {
			return err
		}
		defer rec.Close() // idempotent; the success path closes explicitly
		sink = metrics.Multi(sink, rec)
		log.Printf("recording node snapshots into %s", cfg.shared.Record)
	}

	var dial cluster.DialFunc
	if cfg.faultsSpec != "" {
		fcfg, err := faults.ParseSpec(cfg.faultsSpec)
		if err != nil {
			return err
		}
		inj := faults.New(fcfg)
		dial = cluster.DialFunc(inj.Dialer(nil))
		log.Printf("fault injection armed: %s", cfg.faultsSpec)
	}

	cam := s.World.Cameras[cfg.camera]
	client := cluster.NewReconnectClient(cluster.ReconnectConfig{
		Addr: cfg.addr, Camera: cfg.camera,
		FrameW: cam.ImageW, FrameH: cam.ImageH,
		DialTimeout: 10 * time.Second,
		Backoff:     cluster.Backoff{Seed: cfg.seed + int64(cfg.camera)},
		MaxAttempts: cfg.retries,
		Dial:        dial,
		Logger:      log.Default(),
	})
	defer client.Close()

	rcfg := node.Config{
		Camera:     cfg.camera,
		Frame:      cam.Frame(),
		Profile:    s.Profiles()[cfg.camera],
		NumCameras: len(s.World.Cameras),
		Seed:       cfg.seed,
		Sink:       sink,
	}
	degradedFromStart := false
	if err := client.Connect(); err != nil {
		// The scheduler is unreachable right now: run the whole trace
		// degraded (maskless — masks only arrive with registration) and
		// let later key frames rejoin if it comes back.
		log.Printf("scheduler unreachable (%v); starting degraded", err)
		degradedFromStart = true
	} else if ack := client.Ack(); ack != nil {
		rcfg.GridCols = ack.GridCols
		rcfg.GridRows = ack.GridRows
		rcfg.Coverage = ack.Coverage
		log.Printf("registered: %dx%d mask grid, %d cells",
			ack.GridCols, ack.GridRows, len(ack.Coverage))
	} else {
		return fmt.Errorf("scheduler sent no registration ack payload")
	}

	if cfg.export.Addr != "" {
		log.Printf("serving live metrics at http://%s/metricsz", cfg.export.Addr)
	}
	rt, err := node.New(rcfg)
	if err != nil {
		return err
	}
	if degradedFromStart {
		rt.EnterDegraded()
	}

	// -ingest-addr: this camera's observations arrive live over TCP
	// instead of regenerating from the trace. The watchdog reuses the
	// -deadline budget: a feed silent that long fails the run with a
	// typed stall error rather than hanging the frame loop.
	if cfg.shared.IngestAddr != "" && cfg.shared.CamFaults != "" {
		return fmt.Errorf("-cam-faults schedules are trace-indexed and cannot be combined with -ingest-addr")
	}
	ingest, err := cfg.shared.OpenIngest([]*scene.Camera{cam}, cfg.deadline)
	if err != nil {
		return err
	}
	if ingest != nil {
		defer ingest.Close()
		log.Printf("listening for camera %d frame parts on %s (policy %s)",
			cfg.camera, cfg.shared.IngestAddr, cfg.shared.ShedPolicy)
	}
	nextObs := func(fi int) ([]scene.Observation, bool, error) {
		if ingest != nil {
			frame, err := ingest.Next()
			if err == io.EOF {
				return nil, false, nil
			}
			if err != nil {
				var stalled *pipeline.StallError
				if errors.As(err, &stalled) {
					return nil, false, fmt.Errorf("live feed degraded: %w", err)
				}
				return nil, false, err
			}
			return frame.PerCamera[0], true, nil
		}
		if fi >= len(test.Frames) {
			return nil, false, nil
		}
		return test.Frames[fi].PerCamera[cfg.camera], true, nil
	}

	start := time.Now()
	for fi := 0; ; fi++ {
		obs, ok, err := nextObs(fi)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if camModel != nil && camModel.Down(cfg.camera, fi) {
			// Camera outage: no capture, no inference, no upload, no
			// heartbeat. A lease-armed scheduler sees the silence, declares
			// this camera dead, and the survivors take over its objects.
			rt.OutageFrame()
			if cfg.rate > 0 {
				time.Sleep(cfg.rate)
			}
			continue
		}
		// The adapt level from the last assignment stretches the key-frame
		// cadence to horizon*StretchFor(level) frames, staying on the
		// horizon grid so the node re-syncs with the scheduler's rounds
		// (level 0 — and always without mvscheduler -adapt — keeps the
		// plain every-horizon cadence).
		isKey := fi%cfg.horizon == 0
		if stretch := adapt.StretchFor(rt.AdaptLevel()); isKey && stretch > 1 {
			isKey = (fi/cfg.horizon)%stretch == 0
		}
		if isKey {
			reports, err := rt.KeyFrame(obs)
			if err != nil {
				return err
			}
			assignment, err := client.KeyFrame(fi, reports, cfg.deadline)
			if err != nil {
				if !rt.Degraded() {
					log.Printf("round %d got no assignment (%v); entering degraded mode", fi, err)
				}
				rt.EnterDegraded()
			} else {
				if rt.Degraded() {
					log.Printf("round %d: assignment received, rejoining cluster", fi)
				}
				rt.NoteReconnects(client.Reconnects())
				if err := rt.ApplyAssignment(assignment); err != nil {
					return err
				}
			}
		} else {
			if _, err := rt.RegularFrame(obs); err != nil {
				return err
			}
			if cfg.hbEvery > 0 && fi%cfg.hbEvery == 0 {
				// Keep the liveness lease fresh between key frames; a
				// failed ping already triggered reconnect attempts, so the
				// error itself is not actionable here.
				_ = client.Ping(0)
			}
		}
		if cfg.rate > 0 {
			time.Sleep(cfg.rate)
		}
	}
	rt.NoteReconnects(client.Reconnects())

	st := rt.Stats()
	log.Printf("done in %v wall time", time.Since(start).Round(time.Millisecond))
	fmt.Printf("camera %d summary:\n", cfg.camera)
	fmt.Printf("  frames:            %d\n", st.Frames)
	fmt.Printf("  mean inference:    %v/frame\n", st.MeanLatency.Round(100_000))
	fmt.Printf("  distinct objects:  %d detected\n", st.DetectedObjects)
	fmt.Printf("  final tracks:      %d active, %d shadows\n", st.ActiveTracks, st.Shadows)
	if st.DegradedFrames > 0 || st.Reconnects > 0 || st.OutageFrames > 0 {
		fmt.Printf("  resilience:        %d degraded frames, %d reconnects, %d outage frames, %d takeovers\n",
			st.DegradedFrames, st.Reconnects, st.OutageFrames, st.Reassignments)
	}
	// Uplink usage vs the testbed's 20 Mbps budget: key-frame uploads are
	// tiny compared to streaming video, which is the point of onboard
	// processing.
	secs := float64(st.Frames) / 10.0
	upKbps := float64(client.BytesSent()) * 8 / 1000 / secs
	fmt.Printf("  network:           %d B up, %d B down (%.1f kbit/s uplink)\n",
		client.BytesSent(), client.BytesReceived(), upKbps)
	if rec != nil {
		return rec.Close()
	}
	return nil
}
