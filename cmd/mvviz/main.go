// Command mvviz renders a scenario and its headline results as SVG
// files: the deployment map, the Fig. 2 workload chart, and the Fig. 13
// latency bars.
//
// Usage:
//
//	mvviz [-scenario S1] [-frames N] [-seed N] [-out dir] [-latency]
//
// The latency chart requires running the pipeline under every algorithm,
// so it is opt-in.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mvs/internal/experiments"
	"mvs/internal/viz"
	"mvs/internal/workload"
)

func main() {
	var (
		scenario = flag.String("scenario", "S1", "scenario: S1, S2, or S3")
		frames   = flag.Int("frames", 1200, "trace length in frames")
		seed     = flag.Int64("seed", 42, "simulation seed")
		outDir   = flag.String("out", ".", "output directory for SVG files")
		latency  = flag.Bool("latency", false, "also render the Fig. 13 latency bars (runs the pipeline)")
	)
	flag.Parse()

	if err := run(*scenario, *frames, *seed, *outDir, *latency); err != nil {
		fmt.Fprintln(os.Stderr, "mvviz:", err)
		os.Exit(1)
	}
}

func run(scenario string, frames int, seed int64, outDir string, latency bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}

	// 1. Deployment map (no simulation needed).
	if err := writeSVG(filepath.Join(outDir, scenario+"_map.svg"), func(f *os.File) error {
		return viz.WorldMap(f, s.World)
	}); err != nil {
		return err
	}

	// 2. Workload chart.
	fmt.Fprintf(os.Stderr, "simulating %s (%d frames)...\n", scenario, frames)
	setup, err := experiments.Prepare(scenario, seed, frames)
	if err != nil {
		return err
	}
	fig2 := experiments.Fig2(setup)
	if err := writeSVG(filepath.Join(outDir, scenario+"_workload.svg"), func(f *os.File) error {
		return viz.WorkloadChart(f, fig2.CameraNames, fig2.Counts, fig2.SampleEverySec)
	}); err != nil {
		return err
	}

	// 3. Latency bars (optional: needs five pipeline runs).
	if latency {
		fmt.Fprintln(os.Stderr, "running all scheduling algorithms...")
		reports, err := experiments.RunModes(setup, 10, experiments.Options{})
		if err != nil {
			return err
		}
		var labels []string
		var lats []time.Duration
		for _, mode := range experiments.Modes() {
			labels = append(labels, mode.String())
			lats = append(lats, reports[mode].MeanSlowest)
		}
		if err := writeSVG(filepath.Join(outDir, scenario+"_latency.svg"), func(f *os.File) error {
			return viz.LatencyBars(f, labels, lats)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeSVG(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := render(f); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "wrote", path)
	return nil
}
