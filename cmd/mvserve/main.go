// Command mvserve runs the multi-tenant consolidated serving layer of
// docs/SERVING.md: N independent pipeline engines — one per tenant,
// all replaying the same simulated scenario under per-tenant detector
// seeds — submit their GPU work to one shared pool of modeled
// executors, which packs cross-tenant requests into shared batches,
// schedules tenants by weighted fair queueing, and sheds per-tenant
// load when a tenant runs over its latency SLO.
//
// Usage:
//
//	mvserve [-tenants N] [-executors N] [-scenario S1|S2|S3|S4]
//	        [-frames N] [-seed N] [-slo D] [-period D]
//	        [-consolidate=false] [-fault-tenant I]
//	        [-workers N] [-metrics-addr :8080] [-metrics-jsonl run.jsonl]
//	        [-cam-faults seed=7,rate=0.1] [-health-k K] [-adapt slo=150ms]
//
// -consolidate=false seals batches at tenant boundaries instead — the
// dedicated-slice baseline of `mvexp -exp tenants` — at the same
// aggregate capacity. -cam-faults injects a camera-outage schedule; by
// default every tenant replays it, -fault-tenant I confines it to
// tenant I so the blast radius of one tenant's outage can be observed
// (the others must stay clean). -adapt arms each tenant's own
// degradation controller, coupling pool-level shedding to per-tenant
// quality levels. Output is one row per tenant plus a pool summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mvs/internal/cliconf"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
	"mvs/internal/serve"
	"mvs/internal/workload"
)

func main() {
	var (
		tenants     = flag.Int("tenants", 4, "number of tenant engines sharing the pool")
		executors   = flag.Int("executors", 4, "modeled GPU executors in the shared pool")
		scenario    = flag.String("scenario", "S1", "scenario every tenant replays: S1, S2, S3, S4")
		frames      = flag.Int("frames", 240, "trace length in frames (10 FPS)")
		seed        = flag.Int64("seed", 42, "simulation seed (tenant i detects with seed+31*i)")
		slo         = flag.Duration("slo", 150*time.Millisecond, "per-tenant frame latency SLO")
		period      = flag.Duration("period", serve.DefaultPeriod, "pool epoch period (modeled frame interval)")
		consolidate = flag.Bool("consolidate", true, "pack cross-tenant work into shared batches (false = dedicated-slice baseline)")
		faultTenant = flag.Int("fault-tenant", -1, "apply -cam-faults to this tenant index only (-1 = every tenant)")
	)
	shared := cliconf.RegisterCore(flag.CommandLine, "per-camera")
	flag.Parse()

	if err := run(*tenants, *executors, *scenario, *frames, *seed,
		*slo, *period, *consolidate, *faultTenant, shared); err != nil {
		fmt.Fprintln(os.Stderr, "mvserve:", err)
		os.Exit(1)
	}
}

func run(tenants, executors int, scenario string, frames int, seed int64,
	slo, period time.Duration, consolidate bool, faultTenant int, shared *cliconf.Shared) error {
	if tenants < 1 {
		return fmt.Errorf("-tenants must be >= 1, got %d", tenants)
	}
	if faultTenant >= tenants {
		return fmt.Errorf("-fault-tenant %d out of range (tenants 0..%d)", faultTenant, tenants-1)
	}
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "mvserve: generating %s trace (%d frames, seed %d)...\n", scenario, frames, seed)
	trace, err := s.World.Run(frames)
	if err != nil {
		return err
	}
	adaptPol, err := shared.AdaptPolicy()
	if err != nil {
		return err
	}
	faults, err := shared.FaultModel(len(trace.Cameras), frames)
	if err != nil {
		return err
	}
	export, err := shared.OpenExport()
	if err != nil {
		return err
	}
	var sink metrics.Sink
	if shared.ExportEnabled() {
		sink = export.Sink
	}

	pool, err := serve.NewPool(serve.Config{
		Executors:   executors,
		Profile:     profile.Derived(profile.JetsonXavier),
		Period:      period,
		Consolidate: consolidate,
		DefaultSLO:  slo,
	})
	if err != nil {
		_ = export.Close()
		return err
	}
	specs := make([]serve.TenantSpec, tenants)
	for i := range specs {
		cfg := pipeline.NewConfig(pipeline.Independent, seed+int64(i)*31)
		cfg.Sched.Workers = shared.Workers
		cfg.Adapt.Policy = adaptPol
		cfg.Obs.Sink = sink
		if faults != nil && (faultTenant < 0 || faultTenant == i) {
			cfg.Fault = pipeline.Fault{CamFaults: faults, HealthK: shared.HealthK}
		}
		specs[i] = serve.TenantSpec{
			ID:       fmt.Sprintf("t%d", i),
			SLO:      slo,
			Source:   pipeline.NewTraceSource(trace),
			Profiles: s.Profiles(),
			Config:   cfg,
		}
	}

	results, runErr := serve.Run(pool, specs)
	if err := export.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		return runErr
	}

	mode := "consolidated"
	if !consolidate {
		mode = "dedicated"
	}
	fmt.Printf("%d tenants on %d shared executors (%s, period %v, SLO %v)\n\n",
		tenants, executors, mode, period, slo)
	fmt.Printf("%-6s %-7s %-7s %-9s %-9s %-6s %-9s %-7s\n",
		"tenant", "frames", "recall", "mean", "p99", "shed", "slo_viol", "outage")
	for _, r := range results {
		rep := r.Report
		fmt.Printf("%-6s %-7d %-7.3f %-9v %-9v %-6d %-9d %-7d\n",
			r.ID, rep.Frames, rep.Recall,
			rep.MeanSlowest.Round(100*time.Microsecond),
			rep.P99Slowest.Round(100*time.Microsecond),
			rep.ExecShedTasks, rep.ExecSLOViolations, rep.OutageFrames)
	}
	st := pool.Stats()
	fmt.Printf("\npool: %d epochs, %d batches (%d cross-tenant, occupancy %.2f), %d full frames, %d images, %d tasks shed, %d SLO violations\n",
		st.Epochs, st.Batches, st.SharedBatches, st.MeanOccupancy,
		st.FullFrames, st.Images, st.ShedTasks, st.SLOViolations)
	return nil
}
