// Command mvsim runs one scheduling algorithm over one scenario
// end-to-end (in-process) and prints the evaluation summary.
//
// Usage:
//
//	mvsim [-scenario S1|S2|S3] [-mode full|ind|cen|balb|sp]
//	      [-frames N] [-horizon T] [-seed N] [-workers N]
//	      [-metrics-addr :8080] [-metrics-jsonl run.jsonl]
//	      [-cam-faults seed=7,rate=0.1] [-health-k K]
//
// -workers bounds the per-camera parallelism inside the pipeline and
// the central stage's per-pair association fan-out at key frames
// (0 = GOMAXPROCS, 1 = sequential); results are identical for every
// value (see docs/CONCURRENCY.md and docs/SCALING.md). -metrics-addr serves the latest
// per-frame snapshot at /metricsz while the run is in flight;
// -metrics-jsonl appends every snapshot to a file
// (see docs/OBSERVABILITY.md). -cam-faults injects a deterministic
// camera-outage schedule (syntax in docs/FAULTS.md) and -health-k
// tunes the silence threshold for declaring a camera dead (0 disables
// failover — the ablation).
package main

import (
	"flag"
	"fmt"
	"os"

	"mvs/internal/camfault"
	"mvs/internal/experiments"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/workload"
)

func parseMode(s string) (pipeline.Mode, error) {
	switch s {
	case "full":
		return pipeline.Full, nil
	case "ind":
		return pipeline.Independent, nil
	case "cen":
		return pipeline.CentralOnly, nil
	case "balb":
		return pipeline.BALB, nil
	case "sp":
		return pipeline.StaticPartition, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want full, ind, cen, balb, sp)", s)
	}
}

func main() {
	var (
		scenario    = flag.String("scenario", "S1", "scenario: S1, S2, or S3")
		modeName    = flag.String("mode", "balb", "scheduler: full, ind, cen, balb, sp")
		frames      = flag.Int("frames", 1200, "trace length in frames (10 FPS)")
		horizon     = flag.Int("horizon", 10, "frames per scheduling horizon (T)")
		seed        = flag.Int64("seed", 42, "simulation seed")
		workers     = flag.Int("workers", 0, "per-camera worker bound (0 = GOMAXPROCS, 1 = sequential)")
		saveTrace   = flag.String("save-trace", "", "write the generated trace as JSON and exit")
		metricsAddr = flag.String("metrics-addr", "", "serve live /metricsz snapshots on this address (e.g. :8080)")
		metricsLog  = flag.String("metrics-jsonl", "", "append per-frame metrics snapshots to this JSONL file")
		camFaults   = flag.String("cam-faults", "", "camera-fault schedule, e.g. seed=7,rate=0.1,mean=20,boot=2,down=1:100-200 (see docs/FAULTS.md)")
		healthK     = flag.Int("health-k", 3, "frames of silence before a camera is declared dead (0 disables failover)")
	)
	flag.Parse()

	if *saveTrace != "" {
		if err := dumpTrace(*scenario, *frames, *seed, *saveTrace); err != nil {
			fmt.Fprintln(os.Stderr, "mvsim:", err)
			os.Exit(1)
		}
		return
	}
	export, err := metrics.OpenExport(*metricsAddr, *metricsLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvsim:", err)
		os.Exit(1)
	}
	var sink metrics.Sink
	if *metricsAddr != "" || *metricsLog != "" {
		sink = export.Sink
	}
	runErr := run(*scenario, *modeName, *frames, *horizon, *seed, *workers, sink, *camFaults, *healthK)
	if err := export.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "mvsim:", runErr)
		os.Exit(1)
	}
}

// dumpTrace archives a generated workload for external analysis or
// replay.
func dumpTrace(scenario string, frames int, seed int64, path string) error {
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}
	trace, err := s.World.Run(frames)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d frames (%d cameras) to %s\n",
		len(trace.Frames), len(trace.Cameras), path)
	return f.Close()
}

func run(scenario, modeName string, frames, horizon int, seed int64, workers int, sink metrics.Sink, camFaults string, healthK int) error {
	mode, err := parseMode(modeName)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "preparing %s (%d frames)...\n", scenario, frames)
	setup, err := experiments.Prepare(scenario, seed, frames)
	if err != nil {
		return err
	}
	popts := pipeline.Options{
		Mode: mode, Horizon: horizon, Seed: seed, Workers: workers, Sink: sink,
	}
	if camFaults != "" {
		cfg, err := camfault.ParseSpec(camFaults)
		if err != nil {
			return err
		}
		model, err := camfault.Generate(cfg, len(setup.Test.Cameras), len(setup.Test.Frames))
		if err != nil {
			return err
		}
		popts.CamFaults = model
		popts.HealthK = healthK
		fmt.Fprintf(os.Stderr, "injecting camera faults: %d/%d camera-frames down, health-k=%d\n",
			model.DownFrames(), len(setup.Test.Cameras)*len(setup.Test.Frames), healthK)
	}
	rep, err := pipeline.Run(setup.Test, setup.Scenario.Profiles(), setup.Model, popts)
	if err != nil {
		return err
	}

	fmt.Printf("scenario:          %s (%s)\n", setup.Scenario.Name, setup.Scenario.Description)
	fmt.Printf("algorithm:         %v\n", rep.Mode)
	fmt.Printf("frames evaluated:  %d (horizon T=%d)\n", rep.Frames, rep.Horizon)
	fmt.Printf("object recall:     %.3f (tp=%d fn=%d)\n", rep.Recall, rep.TP, rep.FN)
	fmt.Printf("slowest-camera latency: %v (p95 %v, max %v per frame)\n",
		rep.MeanSlowest.Round(100_000), rep.P95Slowest.Round(100_000), rep.MaxSlowest.Round(100_000))
	for i, m := range rep.PerCameraMean {
		fmt.Printf("  camera %d (%s, %s): mean %v\n",
			i, setup.Test.Cameras[i].Name, setup.Scenario.Devices[i], m.Round(100_000))
	}
	fmt.Printf("framework overhead/frame: central=%v tracking=%v distributed=%v batching=%v\n",
		rep.CentralPerFrame.Round(10_000), rep.TrackingPerFrame.Round(10_000),
		rep.DistributedPerFrame.Round(1_000), rep.BatchingPerFrame.Round(1_000))
	if camFaults != "" {
		fmt.Printf("camera faults:     outage=%d frames, reassigned=%d, orphaned=%d (p99 latency %v)\n",
			rep.OutageFrames, rep.Reassignments, rep.OrphanedObjects, rep.P99Slowest.Round(100_000))
	}

	if mode != pipeline.Full {
		fullRep, err := pipeline.Run(setup.Test, setup.Scenario.Profiles(), setup.Model, pipeline.Options{
			Mode: pipeline.Full, Horizon: horizon, Seed: seed, Workers: workers,
		})
		if err != nil {
			return err
		}
		speedup, err := metrics.Speedup(fullRep.MeanSlowest, rep.MeanSlowest)
		if err != nil {
			return err
		}
		fmt.Printf("speedup vs full-frame: %.2fx\n", speedup)
	}
	return nil
}
