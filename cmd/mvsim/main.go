// Command mvsim runs one scheduling algorithm over one scenario
// end-to-end (in-process) and prints the evaluation summary.
//
// Usage:
//
//	mvsim [-scenario S1|S2|S3] [-mode full|ind|cen|balb|sp]
//	      [-frames N] [-horizon T] [-seed N] [-workers N]
//	      [-metrics-addr :8080] [-metrics-jsonl run.jsonl]
//	      [-cam-faults seed=7,rate=0.1] [-health-k K]
//	      [-record rundir]
//
// -workers bounds the per-camera parallelism inside the pipeline and
// the central stage's per-pair association fan-out at key frames
// (0 = GOMAXPROCS, 1 = sequential); results are identical for every
// value (see docs/CONCURRENCY.md and docs/SCALING.md). -metrics-addr serves the latest
// per-frame snapshot at /metricsz while the run is in flight;
// -metrics-jsonl appends every snapshot to a file
// (see docs/OBSERVABILITY.md). -cam-faults injects a deterministic
// camera-outage schedule (syntax in docs/FAULTS.md) and -health-k
// tunes the silence threshold for declaring a camera dead (0 disables
// failover — the ablation).
//
// -record <dir> streams the run into a durable run store: the frame
// log, the per-frame snapshots, the scheduling-round decisions, and a
// manifest that pins scenario, seed, mode, and fault schedule. A
// recorded run replays bit-identically with mvreplay — including under
// a different scheduler (docs/STREAMING.md). -store-fsync,
// -store-keep-segments, and -store-keep-duration tune the store's
// durability and retention
// (docs/STREAMING.md §5); -pace throttles the trace to one frame per
// interval so a run spans wall time (CI's crash-injection step SIGKILLs
// a paced recording mid-run and recovers it with mvreplay -recover).
//
// -adapt arms the degradation control loop (docs/FAULTS.md §10): under
// modeled-latency overload, queue pressure, or camera outages the
// engine climbs a degradation ladder — stretching the key-frame
// cadence and capping inspection input sizes — and recovers with
// hysteresis when the pressure clears. The controller is deterministic
// in the modeled state, so a recorded adapt run still verifies
// byte-identically under mvreplay -verify.
//
// -ingest-addr replaces the generated trace with a live TCP listener:
// frame parts pushed by mvingest are assembled into engine frames, with
// per-camera bounded queues shedding under overload per -shed-policy
// and a watchdog that turns a stalled feed into a typed error instead
// of a hang (docs/STREAMING.md §6).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"mvs/internal/cliconf"
	"mvs/internal/experiments"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/scene"
	"mvs/internal/store"
	"mvs/internal/workload"
)

func main() {
	var (
		scenario  = flag.String("scenario", "S1", "scenario: S1, S2, or S3")
		modeName  = flag.String("mode", "balb", "scheduler: full, ind, cen, balb, sp")
		frames    = flag.Int("frames", 1200, "trace length in frames (10 FPS)")
		horizon   = flag.Int("horizon", 10, "frames per scheduling horizon (T)")
		seed      = flag.Int64("seed", 42, "simulation seed")
		saveTrace = flag.String("save-trace", "", "write the generated trace as JSON and exit")
		pace      = flag.Duration("pace", 0, "throttle the trace to one frame per interval (e.g. 5ms), so the run spans wall time")
		stall     = flag.Duration("ingest-stall", 30*time.Second, "live-ingest watchdog deadline: fail the run if no frame assembles for this long (0 disables)")
	)
	shared := cliconf.Register(flag.CommandLine, "per-camera")
	flag.Parse()

	if *saveTrace != "" {
		if err := dumpTrace(*scenario, *frames, *seed, *saveTrace); err != nil {
			fmt.Fprintln(os.Stderr, "mvsim:", err)
			os.Exit(1)
		}
		return
	}
	export, err := shared.OpenExport()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvsim:", err)
		os.Exit(1)
	}
	runErr := run(*scenario, *modeName, *frames, *horizon, *seed, *pace, *stall, shared, export)
	if err := export.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "mvsim:", runErr)
		os.Exit(1)
	}
}

// dumpTrace archives a generated workload for external analysis or
// replay.
func dumpTrace(scenario string, frames int, seed int64, path string) error {
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		return err
	}
	trace, err := s.World.Run(frames)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d frames (%d cameras) to %s\n",
		len(trace.Frames), len(trace.Cameras), path)
	return f.Close()
}

func run(scenario, modeName string, frames, horizon int, seed int64, pace, stall time.Duration, shared *cliconf.Shared, export *metrics.Export) error {
	mode, err := cliconf.ParseMode(modeName)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "preparing %s (%d frames)...\n", scenario, frames)
	setup, err := experiments.Prepare(scenario, seed, frames)
	if err != nil {
		return err
	}
	cfg := pipeline.NewConfig(mode, seed)
	cfg.Sched.Horizon = horizon
	cfg.Sched.Workers = shared.Workers
	if shared.ExportEnabled() {
		cfg.Obs.Sink = export.Sink
	}
	adaptPol, err := shared.AdaptPolicy()
	if err != nil {
		return err
	}
	if adaptPol.Enabled() {
		cfg.Adapt.Policy = adaptPol
		fmt.Fprintf(os.Stderr, "degradation control loop armed: %s\n", adaptPol.Spec())
	}

	if shared.IngestAddr != "" && shared.CamFaults != "" {
		return fmt.Errorf("-cam-faults schedules are trace-indexed and cannot be combined with -ingest-addr (use mvingest -faults for live network chaos)")
	}
	faults, err := shared.FaultModel(len(setup.Test.Cameras), len(setup.Test.Frames))
	if err != nil {
		return err
	}
	if faults != nil {
		cfg.Fault.CamFaults = faults
		cfg.Fault.HealthK = shared.HealthK
		fmt.Fprintf(os.Stderr, "injecting camera faults: %d/%d camera-frames down, health-k=%d\n",
			faults.DownFrames(), len(setup.Test.Cameras)*len(setup.Test.Frames), shared.HealthK)
	}

	// Source selection: the generated trace by default (optionally paced
	// across wall time), or a live TCP ingest listener.
	var src pipeline.Source = pipeline.NewTraceSource(setup.Test)
	if pace > 0 {
		src = &pacedSource{Source: src, interval: pace}
	}
	ingest, err := shared.OpenIngest(setup.Test.Cameras, stall)
	if err != nil {
		return err
	}
	if ingest != nil {
		defer ingest.Close()
		src = ingest
		// The store tee will wrap src, hiding the concrete type from the
		// engine's IngestMeter auto-detection — set it explicitly.
		cfg.Obs.Ingest = ingest
		fmt.Fprintf(os.Stderr, "listening for live frame parts on %s (policy %s, stall %v)...\n",
			shared.IngestAddr, shared.ShedPolicy, stall)
	}

	// -record: tee the frame stream into a durable run store and persist
	// snapshots + round decisions next to it, under a manifest that lets
	// mvreplay regenerate the model and fault schedule.
	var rec *store.Writer
	if shared.Record != "" {
		roster, err := scene.MarshalCameras(setup.Test.Cameras)
		if err != nil {
			return err
		}
		rec, err = shared.OpenRecorder(store.Manifest{
			Scenario: scenario, Seed: seed, TraceFrames: frames,
			Mode: mode.String(), Horizon: horizon, Cameras: roster,
		})
		if err != nil {
			return err
		}
		src = rec.Tee(src)
		cfg.Obs.Rounds = rec
		if cfg.Obs.Sink != nil {
			cfg.Obs.Sink = metrics.Multi(cfg.Obs.Sink, rec)
		} else {
			cfg.Obs.Sink = rec
		}
	}

	eng, err := pipeline.NewEngine(src, setup.Scenario.Profiles(), setup.Model, cfg)
	if err != nil {
		return err
	}
	if err := eng.Run(); err != nil {
		var stalled *pipeline.StallError
		if errors.As(err, &stalled) && rec != nil {
			rec.Close() // seal what was captured before the stall
		}
		return err
	}
	rep, err := eng.Report()
	if err != nil {
		return err
	}
	if rec != nil {
		if err := rec.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "recorded %d frames into %s (replay with: mvreplay -run %s)\n",
			rep.Frames, shared.Record, shared.Record)
	}

	fmt.Printf("scenario:          %s (%s)\n", setup.Scenario.Name, setup.Scenario.Description)
	fmt.Printf("algorithm:         %v\n", rep.Mode)
	if ingest != nil {
		c := ingest.Counters()
		fmt.Printf("live ingest:       %d parts admitted, %d shed (%s policy)\n",
			c.Ingested, c.Shed, shared.ShedPolicy)
	}
	fmt.Printf("frames evaluated:  %d (horizon T=%d)\n", rep.Frames, rep.Horizon)
	fmt.Printf("object recall:     %.3f (tp=%d fn=%d)\n", rep.Recall, rep.TP, rep.FN)
	fmt.Printf("slowest-camera latency: %v (p95 %v, max %v per frame)\n",
		rep.MeanSlowest.Round(100_000), rep.P95Slowest.Round(100_000), rep.MaxSlowest.Round(100_000))
	for i, m := range rep.PerCameraMean {
		fmt.Printf("  camera %d (%s, %s): mean %v\n",
			i, setup.Test.Cameras[i].Name, setup.Scenario.Devices[i], m.Round(100_000))
	}
	fmt.Printf("framework overhead/frame: central=%v tracking=%v distributed=%v batching=%v\n",
		rep.CentralPerFrame.Round(10_000), rep.TrackingPerFrame.Round(10_000),
		rep.DistributedPerFrame.Round(1_000), rep.BatchingPerFrame.Round(1_000))
	if faults != nil {
		fmt.Printf("camera faults:     outage=%d frames, reassigned=%d, orphaned=%d (p99 latency %v)\n",
			rep.OutageFrames, rep.Reassignments, rep.OrphanedObjects, rep.P99Slowest.Round(100_000))
	}

	if mode != pipeline.Full && ingest == nil {
		fullCfg := pipeline.NewConfig(pipeline.Full, seed)
		fullCfg.Sched.Horizon = horizon
		fullCfg.Sched.Workers = shared.Workers
		fullRep, err := pipeline.Run(setup.Test, setup.Scenario.Profiles(), setup.Model, fullCfg)
		if err != nil {
			return err
		}
		speedup, err := metrics.Speedup(fullRep.MeanSlowest, rep.MeanSlowest)
		if err != nil {
			return err
		}
		fmt.Printf("speedup vs full-frame: %.2fx\n", speedup)
	}
	return nil
}

// pacedSource throttles a frame source to one frame per interval of
// wall time, so an otherwise-instant simulated run spans long enough to
// be interrupted (CI's crash-injection step kills a paced recording
// mid-run).
type pacedSource struct {
	pipeline.Source
	interval time.Duration
}

func (p *pacedSource) Next() (*scene.FrameTruth, error) {
	time.Sleep(p.interval)
	return p.Source.Next()
}
