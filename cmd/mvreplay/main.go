// Command mvreplay re-drives the streaming engine from a run recorded
// with mvsim -record: the frame log replaces the simulator, the
// manifest regenerates the association model and fault schedule from
// (scenario, seed), and the engine reproduces the recorded run's
// modeled results bit-identically (docs/STREAMING.md).
//
// Usage:
//
//	mvreplay -run rundir [-mode full|ind|cen|balb|sp] [-verify] [-recover]
//	         [-workers N] [-metrics-addr :8080] [-metrics-jsonl out.jsonl]
//
// With no -mode the run replays under its recorded scheduler. -mode
// re-runs the recorded incident — same frames, same faults — under a
// different scheduler, which is how a production anomaly becomes an
// offline A/B experiment. -verify replays under the recorded
// configuration and byte-compares the replayed snapshot stream against
// the recorded one, exiting non-zero on any divergence (the
// determinism check CI runs); it cannot be combined with -mode, and it
// refuses runs whose snapshots are not a pure function of the frame
// log (live-ingest recordings, retention-windowed frame logs).
// -recover first repairs a crashed recording via store.Recover —
// truncating torn tails to the last CRC-valid record and rebuilding
// the frame index — so a SIGKILLed run replays (and -verify passes) on
// its recovered prefix (docs/STREAMING.md §5).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"mvs/internal/adapt"
	"mvs/internal/assoc"
	"mvs/internal/camfault"
	"mvs/internal/cliconf"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/store"
	"mvs/internal/workload"
)

func main() {
	var (
		runDir      = flag.String("run", "", "run-store directory recorded with mvsim -record (required)")
		modeName    = flag.String("mode", "", "re-run under this scheduler instead of the recorded one: full, ind, cen, balb, sp")
		verify      = flag.Bool("verify", false, "replay under the recorded configuration and byte-compare the snapshot stream")
		recoverRun  = flag.Bool("recover", false, "repair a crashed recording first (store.Recover): truncate torn tails, rebuild the frame index")
		workers     = flag.Int("workers", 0, "per-camera/training worker bound (0 = GOMAXPROCS, 1 = sequential)")
		metricsAddr = flag.String("metrics-addr", "", "serve live /metricsz snapshots on this address (e.g. :8080)")
		metricsLog  = flag.String("metrics-jsonl", "", "append the replay's metrics snapshots to this JSONL file")
	)
	flag.Parse()

	if *runDir == "" {
		fmt.Fprintln(os.Stderr, "mvreplay: -run is required")
		flag.Usage()
		os.Exit(2)
	}
	if *verify && *modeName != "" {
		fmt.Fprintln(os.Stderr, "mvreplay: -verify replays the recorded configuration; it cannot be combined with -mode")
		os.Exit(2)
	}
	export, err := metrics.OpenExport(*metricsAddr, *metricsLog)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mvreplay:", err)
		os.Exit(1)
	}
	var sink metrics.Sink
	if *metricsAddr != "" || *metricsLog != "" {
		sink = export.Sink
	}
	runErr := replay(*runDir, *modeName, *verify, *recoverRun, *workers, sink)
	if err := export.Close(); err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "mvreplay:", runErr)
		os.Exit(1)
	}
}

func replay(dir, modeName string, verify, recoverRun bool, workers int, sink metrics.Sink) error {
	if recoverRun {
		rec, err := store.Recover(dir)
		if err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		fmt.Fprintf(os.Stderr, "recovered %s: %d frames, %d snapshots, %d rounds (%d torn bytes truncated, %d unverifiable frames dropped)\n",
			dir, rec.Frames, rec.Snapshots, rec.Rounds, rec.TruncatedBytes, rec.DroppedFrames)
	}
	run, err := store.Open(dir)
	if err != nil {
		return err
	}
	man := run.Manifest()
	if !run.HasFrames() {
		return fmt.Errorf("%s recorded no frames (capture-only run, e.g. from mvexp or mvscheduler -record); only mvsim recordings replay", dir)
	}
	if verify {
		// Byte-identity only holds when the recorded snapshots are a pure
		// function of the frame log: live-ingest counters and retention
		// windows break that (docs/STREAMING.md §5).
		if man.Ingest != "" {
			return fmt.Errorf("-verify refuses live-ingest recordings (%s was fed by -ingest-addr %s): snapshot ingest counters reflect arrival timing; replay without -verify instead", dir, man.Ingest)
		}
		if man.KeepSegments > 0 {
			return fmt.Errorf("-verify refuses retention-windowed recordings (%s kept %d segments): the snapshot log spans the full run but only the window replays", dir, man.KeepSegments)
		}
		if man.KeepDuration != "" {
			return fmt.Errorf("-verify refuses retention-windowed recordings (%s kept %s of segments): the snapshot log spans the full run but only the window replays", dir, man.KeepDuration)
		}
	}

	// The manifest regenerates everything the frame log does not carry:
	// the association model trains on the same (scenario, seed) world the
	// recording ran against, and the fault schedule re-derives from its
	// spec — both deterministic.
	fmt.Fprintf(os.Stderr, "regenerating %s (seed %d) and training the association model...\n",
		man.Scenario, man.Seed)
	s, err := workload.ByName(man.Scenario, man.Seed)
	if err != nil {
		return fmt.Errorf("manifest scenario: %w", err)
	}
	if len(s.World.Cameras) != len(run.Cameras()) {
		return fmt.Errorf("manifest roster has %d cameras but %s/%d regenerates %d — run and scenario disagree",
			len(run.Cameras()), man.Scenario, man.Seed, len(s.World.Cameras))
	}
	trace, err := s.World.Run(man.TraceFrames)
	if err != nil {
		return err
	}
	train, _ := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{Workers: workers})
	if err != nil {
		return err
	}

	mode, err := cliconf.ParseMode(man.Mode)
	if err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	if modeName != "" {
		if mode, err = cliconf.ParseMode(modeName); err != nil {
			return err
		}
	}
	cfg := pipeline.NewConfig(mode, man.Seed)
	cfg.Sched.Horizon = man.Horizon
	cfg.Sched.Workers = workers
	if man.CamFaults != "" {
		fcfg, err := camfault.ParseSpec(man.CamFaults)
		if err != nil {
			return fmt.Errorf("manifest fault spec: %w", err)
		}
		faults, err := camfault.Generate(fcfg, len(run.Cameras()), run.NumFrames())
		if err != nil {
			return err
		}
		cfg.Fault.CamFaults = faults
		cfg.Fault.HealthK = man.HealthK
	}
	if man.Adapt != "" {
		// Regenerate the adapt controller from its recorded spec: the
		// controller is a pure function of the modeled window state, so
		// the replay walks the identical degradation ladder.
		pol, err := adapt.ParseSpec(man.Adapt)
		if err != nil {
			return fmt.Errorf("manifest adapt spec: %w", err)
		}
		cfg.Adapt.Policy = pol
	}

	var verifyLog bytes.Buffer
	if verify {
		vs := metrics.NewJSONLSink(&verifyLog)
		if sink != nil {
			sink = metrics.Multi(sink, vs)
		} else {
			sink = metrics.Sink(vs)
		}
	}
	cfg.Obs.Sink = sink

	src, err := run.Source()
	if err != nil {
		return err
	}
	eng, err := pipeline.NewEngine(src, s.Profiles(), model, cfg)
	if err != nil {
		return err
	}
	if err := eng.Run(); err != nil {
		return err
	}
	rep, err := eng.Report()
	if err != nil {
		return err
	}

	fmt.Printf("run:               %s (%s, seed %d)\n", dir, man.Scenario, man.Seed)
	fmt.Printf("recorded mode:     %s", man.Mode)
	if modeName != "" {
		fmt.Printf("   replayed as: %v", rep.Mode)
	}
	fmt.Println()
	fmt.Printf("frames replayed:   %d (horizon T=%d)\n", rep.Frames, rep.Horizon)
	fmt.Printf("object recall:     %.3f (tp=%d fn=%d)\n", rep.Recall, rep.TP, rep.FN)
	fmt.Printf("slowest-camera latency: %v (p95 %v, p99 %v per frame)\n",
		rep.MeanSlowest.Round(100_000), rep.P95Slowest.Round(100_000), rep.P99Slowest.Round(100_000))
	if man.CamFaults != "" {
		fmt.Printf("camera faults:     outage=%d frames, reassigned=%d, orphaned=%d\n",
			rep.OutageFrames, rep.Reassignments, rep.OrphanedObjects)
	}

	if verify {
		want, err := run.SnapshotsRaw()
		if err != nil {
			return err
		}
		if len(want) == 0 {
			return fmt.Errorf("recorded run has no snapshot log to verify against")
		}
		if !bytes.Equal(want, verifyLog.Bytes()) {
			return fmt.Errorf("replay DIVERGED: snapshot stream is not byte-identical to the recording (%d vs %d bytes)",
				verifyLog.Len(), len(want))
		}
		fmt.Printf("verify:            OK — %d snapshot bytes byte-identical to the recording\n", len(want))
	}
	return nil
}
