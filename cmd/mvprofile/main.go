// Command mvprofile reproduces the offline profiling stage: it
// "measures" each device class's YOLO latency profile (200 noisy runs per
// configuration, as the paper does on each Jetson board) and prints the
// tables the BALB scheduler consumes.
//
// Usage:
//
//	mvprofile [-runs N] [-noise F] [-seed N] [-exact]
package main

import (
	"flag"
	"fmt"
	"os"

	"mvs/internal/profile"
)

func main() {
	var (
		runs  = flag.Int("runs", 200, "timed runs per configuration")
		noise = flag.Float64("noise", 0.05, "relative std-dev of one timing measurement")
		seed  = flag.Int64("seed", 1, "measurement noise seed")
		exact = flag.Bool("exact", false, "print ground-truth profiles instead of measuring")
	)
	flag.Parse()

	classes := []profile.DeviceClass{
		profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier,
	}
	profiler := &profile.Profiler{Runs: *runs, NoiseFrac: *noise, Seed: *seed}
	for _, class := range classes {
		var p *profile.Profile
		if *exact {
			p = profile.Derived(class)
		} else {
			var err error
			p, err = profiler.Measure(class, nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mvprofile:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("device: %s\n", p.Class)
		fmt.Printf("  full frame (1280x704): %v\n", p.FullFrame.Round(100_000))
		for _, s := range p.Sizes {
			fmt.Printf("  size %3d: batch limit %2d, batch latency %v\n",
				s, p.BatchLimit[s], p.BatchLatency[s].Round(10_000))
		}
	}
}
