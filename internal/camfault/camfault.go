// Package camfault models deterministic camera-level (data-plane)
// faults: per-camera outage schedules — hard failure windows, randomly
// arriving outages with a recovery boot delay, and single-frame drops —
// precomputed from a seed so every run replays the identical schedule.
//
// Where internal/faults breaks the *network* (connections, dials),
// camfault breaks the *sensor*: a camera that is down produces no
// observations and runs no inspection. The pipeline injects a Model via
// pipeline.Config.Fault.CamFaults; cmd/mvnode uses one to stop its frame
// loop during outages. The companion Tracker is the health model both
// BALB stages consult: a camera silent for K consecutive frames is
// marked unhealthy, the central stage reschedules over the healthy
// subset, and the distributed stage's ownership rules skip it
// (docs/FAULTS.md, "Data-plane failure model").
//
// Determinism: every schedule is generated up front by Generate, one
// PRNG per camera seeded from (Config.Seed, camera index), so the
// schedule is a pure function of the configuration — independent of
// worker counts, wall-clock time, and query order. Model is immutable
// after Generate and safe for concurrent readers.
package camfault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// Window is a half-open frame interval [Start, End) during which a
// camera is down.
type Window struct {
	Start, End int
}

// Config describes a fault schedule. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision.
	Seed int64
	// Rate is the target long-run fraction of camera-frames lost to
	// randomly arriving outages, in [0, 1). Together with MeanOutage it
	// fixes the up-state hazard: outages arrive so that the stationary
	// downtime fraction matches Rate.
	Rate float64
	// MeanOutage is the mean outage length in frames (geometric;
	// default 20). Small values give flapping cameras, large values
	// sustained failures.
	MeanOutage int
	// BootDelay extends every outage by a fixed recovery boot time in
	// frames — a restarted camera is not instantly useful.
	BootDelay int
	// DropRate is the per-frame probability of an isolated single-frame
	// glitch (the frame is lost, the camera stays up), in [0, 1].
	DropRate float64
	// Outages adds explicit per-camera windows (camera index -> down
	// intervals) on top of the generated schedule — for scripted hard
	// failures and flapping scenarios in tests and flags.
	Outages map[int][]Window
}

// ParseSpec parses the -cam-faults flag syntax: comma-separated
// key=value pairs. Keys: seed, rate, mean, boot, drop, down. Explicit
// windows use down=<cam>:<start>-<end>, several joined by '+':
//
//	seed=7,rate=0.1,mean=20,boot=3,drop=0.01,down=1:100-200+3:50-80
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("camfault: bad field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "rate":
			cfg.Rate, err = parseRate(val)
		case "mean":
			cfg.MeanOutage, err = strconv.Atoi(val)
		case "boot":
			cfg.BootDelay, err = strconv.Atoi(val)
		case "drop":
			cfg.DropRate, err = parseRate(val)
		case "down":
			err = parseDown(val, &cfg)
		default:
			return cfg, fmt.Errorf("camfault: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("camfault: field %q: %w", field, err)
		}
	}
	return cfg, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v out of [0,1]", r)
	}
	return r, nil
}

func parseDown(val string, cfg *Config) error {
	for _, w := range strings.Split(val, "+") {
		camStr, rangeStr, ok := strings.Cut(w, ":")
		if !ok {
			return fmt.Errorf("window %q (want cam:start-end)", w)
		}
		cam, err := strconv.Atoi(camStr)
		if err != nil {
			return err
		}
		lo, hi, ok := strings.Cut(rangeStr, "-")
		if !ok {
			return fmt.Errorf("window %q (want cam:start-end)", w)
		}
		start, err := strconv.Atoi(lo)
		if err != nil {
			return err
		}
		end, err := strconv.Atoi(hi)
		if err != nil {
			return err
		}
		if start < 0 || end <= start {
			return fmt.Errorf("window %q is empty or negative", w)
		}
		if cfg.Outages == nil {
			cfg.Outages = make(map[int][]Window)
		}
		cfg.Outages[cam] = append(cfg.Outages[cam], Window{Start: start, End: end})
	}
	return nil
}

// Model is a precomputed fault schedule: for every (camera, frame),
// whether the camera is down. Immutable; safe for concurrent readers.
type Model struct {
	down       [][]bool
	downFrames int
}

// Generate expands a Config into the schedule for numCams cameras over
// numFrames frames. The same (cfg, numCams, numFrames) always yields
// the identical schedule.
func Generate(cfg Config, numCams, numFrames int) (*Model, error) {
	if numCams <= 0 || numFrames <= 0 {
		return nil, fmt.Errorf("camfault: need positive cameras (%d) and frames (%d)", numCams, numFrames)
	}
	if cfg.Rate < 0 || cfg.Rate >= 1 {
		if cfg.Rate != 0 {
			return nil, fmt.Errorf("camfault: rate %v out of [0,1)", cfg.Rate)
		}
	}
	if cfg.DropRate < 0 || cfg.DropRate > 1 {
		return nil, fmt.Errorf("camfault: drop rate %v out of [0,1]", cfg.DropRate)
	}
	mean := cfg.MeanOutage
	if mean <= 0 {
		mean = 20
	}
	boot := cfg.BootDelay
	if boot < 0 {
		boot = 0
	}
	for cam := range cfg.Outages {
		if cam < 0 || cam >= numCams {
			return nil, fmt.Errorf("camfault: explicit window for camera %d out of range [0,%d)", cam, numCams)
		}
	}

	// Up-state hazard p so the two-state chain's stationary downtime is
	// Rate: downtime = E[down]/(E[up]+E[down]) with E[down] = mean+boot
	// and E[up] = 1/p.
	var hazard float64
	if cfg.Rate > 0 {
		hazard = cfg.Rate / (float64(mean+boot) * (1 - cfg.Rate))
	}

	m := &Model{down: make([][]bool, numCams)}
	for cam := 0; cam < numCams; cam++ {
		row := make([]bool, numFrames)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(cam)*1_000_003))
		for f := 0; f < numFrames; {
			if hazard > 0 && rng.Float64() < hazard {
				length := sampleOutage(rng, mean) + boot
				for j := 0; j < length && f+j < numFrames; j++ {
					row[f+j] = true
				}
				f += length
				continue
			}
			if cfg.DropRate > 0 && rng.Float64() < cfg.DropRate {
				row[f] = true
			}
			f++
		}
		for _, w := range cfg.Outages[cam] {
			for f := w.Start; f < w.End && f < numFrames; f++ {
				row[f] = true
			}
		}
		for _, d := range row {
			if d {
				m.downFrames++
			}
		}
		m.down[cam] = row
	}
	return m, nil
}

// sampleOutage draws a geometric outage length with the given mean
// (>= 1 frame), capped at 100x the mean so a pathological draw cannot
// dominate a schedule.
func sampleOutage(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / float64(mean)
	length := 1
	for length < 100*mean && rng.Float64() > p {
		length++
	}
	return length
}

// Down reports whether cam is down at frame. Out-of-range queries
// return false (the schedule says nothing about them).
func (m *Model) Down(cam, frame int) bool {
	if m == nil || cam < 0 || cam >= len(m.down) {
		return false
	}
	if frame < 0 || frame >= len(m.down[cam]) {
		return false
	}
	return m.down[cam][frame]
}

// NumCameras returns the roster size the schedule was generated for.
func (m *Model) NumCameras() int { return len(m.down) }

// NumFrames returns the schedule length in frames.
func (m *Model) NumFrames() int {
	if len(m.down) == 0 {
		return 0
	}
	return len(m.down[0])
}

// DownFrames returns the total number of camera-frames the schedule
// marks down.
func (m *Model) DownFrames() int { return m.downFrames }

// Tracker is the camera-health model: a camera silent for K consecutive
// frames is unhealthy (dead) until it produces a frame again. K <= 0
// disables tracking — every camera always reads healthy. Not safe for
// concurrent use; callers observe cameras in the sequential section
// between frame fan-outs.
type Tracker struct {
	k      int
	silent []int
}

// NewTracker builds a health tracker for numCams cameras with the given
// silence threshold K.
func NewTracker(numCams, k int) *Tracker {
	return &Tracker{k: k, silent: make([]int, numCams)}
}

// Observe records whether cam produced a frame this tick: produced
// resets the silence counter, silence increments it.
func (t *Tracker) Observe(cam int, produced bool) {
	if cam < 0 || cam >= len(t.silent) {
		return
	}
	if produced {
		t.silent[cam] = 0
	} else {
		t.silent[cam]++
	}
}

// Healthy reports whether cam is currently healthy. Unknown cameras and
// disabled trackers (K <= 0) are healthy.
func (t *Tracker) Healthy(cam int) bool {
	if t.k <= 0 || cam < 0 || cam >= len(t.silent) {
		return true
	}
	return t.silent[cam] < t.k
}

// DeadMask fills dst (allocating when nil or mis-sized) with the
// per-camera dead flags — the mask shape core.DistributedPolicy.SetDead
// consumes — and reports whether any camera is dead.
func (t *Tracker) DeadMask(dst []bool) ([]bool, bool) {
	if len(dst) != len(t.silent) {
		dst = make([]bool, len(t.silent))
	}
	any := false
	for cam := range t.silent {
		dead := !t.Healthy(cam)
		dst[cam] = dead
		any = any || dead
	}
	return dst, any
}
