package camfault

import (
	"reflect"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,rate=0.1,mean=25,boot=3,drop=0.01,down=1:100-200+3:50-80")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, Rate: 0.1, MeanOutage: 25, BootDelay: 3, DropRate: 0.01,
		Outages: map[int][]Window{
			1: {{Start: 100, End: 200}},
			3: {{Start: 50, End: 80}},
		},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("cfg = %+v, want %+v", cfg, want)
	}
	if cfg, err := ParseSpec("  "); err != nil || !reflect.DeepEqual(cfg, Config{}) {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"rate",          // no '='
		"rate=2",        // out of range
		"drop=-0.1",     // out of range
		"bogus=1",       // unknown key
		"down=1",        // no range
		"down=1:5",      // no end
		"down=1:9-9",    // empty window
		"down=x:1-2",    // bad camera
		"seed=notanint", // bad int
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestGenerateExplicitWindows(t *testing.T) {
	m, err := Generate(Config{Outages: map[int][]Window{
		0: {{Start: 2, End: 5}},
		2: {{Start: 8, End: 100}}, // clamped to the trace
	}}, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 10; f++ {
		if got, want := m.Down(0, f), f >= 2 && f < 5; got != want {
			t.Errorf("Down(0,%d) = %v, want %v", f, got, want)
		}
		if m.Down(1, f) {
			t.Errorf("Down(1,%d) = true for camera with no faults", f)
		}
		if got, want := m.Down(2, f), f >= 8; got != want {
			t.Errorf("Down(2,%d) = %v, want %v", f, got, want)
		}
	}
	if m.DownFrames() != 3+2 {
		t.Fatalf("DownFrames = %d, want 5", m.DownFrames())
	}
	// Out-of-range queries are not faults.
	if m.Down(-1, 0) || m.Down(3, 0) || m.Down(0, -1) || m.Down(0, 10) {
		t.Fatal("out-of-range query reported down")
	}
	if (*Model)(nil).Down(0, 0) {
		t.Fatal("nil model reported down")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Rate: 0.15, MeanOutage: 8, BootDelay: 2, DropRate: 0.02}
	a, err := Generate(cfg, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different schedules")
	}
	c, err := Generate(Config{Seed: 12, Rate: 0.15, MeanOutage: 8, BootDelay: 2, DropRate: 0.02}, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.down, c.down) {
		t.Fatal("different seeds generated identical schedules")
	}
	// Per-camera seeding: camera k's schedule does not depend on how many
	// other cameras exist.
	d, err := Generate(cfg, 2, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.down[0], d.down[0]) || !reflect.DeepEqual(a.down[1], d.down[1]) {
		t.Fatal("camera schedule depends on roster size")
	}
}

func TestGenerateRateTargets(t *testing.T) {
	// Long horizon: the realized downtime should be in the right
	// neighbourhood of the configured rate (it is a random schedule, so
	// allow a wide band; determinism makes the check stable).
	m, err := Generate(Config{Seed: 3, Rate: 0.10, MeanOutage: 20, BootDelay: 2}, 8, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(m.DownFrames()) / float64(8*20_000)
	if frac < 0.05 || frac > 0.20 {
		t.Fatalf("realized downtime %.3f far from target 0.10", frac)
	}
	// Rate 0 with no windows: nothing is down.
	z, err := Generate(Config{Seed: 3}, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if z.DownFrames() != 0 {
		t.Fatalf("zero config lost %d frames", z.DownFrames())
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{}, 0, 10); err == nil {
		t.Error("accepted zero cameras")
	}
	if _, err := Generate(Config{}, 2, 0); err == nil {
		t.Error("accepted zero frames")
	}
	if _, err := Generate(Config{Rate: 1.0}, 2, 10); err == nil {
		t.Error("accepted rate 1.0 (always down)")
	}
	if _, err := Generate(Config{DropRate: 1.5}, 2, 10); err == nil {
		t.Error("accepted drop rate > 1")
	}
	if _, err := Generate(Config{Outages: map[int][]Window{5: {{0, 1}}}}, 2, 10); err == nil {
		t.Error("accepted explicit window for out-of-range camera")
	}
}

func TestTracker(t *testing.T) {
	tr := NewTracker(2, 3)
	if !tr.Healthy(0) || !tr.Healthy(1) {
		t.Fatal("fresh tracker not healthy")
	}
	tr.Observe(0, false)
	tr.Observe(0, false)
	if !tr.Healthy(0) {
		t.Fatal("unhealthy before K silent frames")
	}
	tr.Observe(0, false)
	if tr.Healthy(0) {
		t.Fatal("healthy after K silent frames")
	}
	mask, any := tr.DeadMask(nil)
	if !any || !reflect.DeepEqual(mask, []bool{true, false}) {
		t.Fatalf("DeadMask = %v, %v", mask, any)
	}
	// Recovery: one produced frame resets.
	tr.Observe(0, true)
	if !tr.Healthy(0) {
		t.Fatal("not healthy after recovery")
	}
	mask, any = tr.DeadMask(mask)
	if any || mask[0] {
		t.Fatalf("DeadMask after recovery = %v, %v", mask, any)
	}
	// Out-of-range observations are ignored, unknown cameras healthy.
	tr.Observe(9, false)
	if !tr.Healthy(9) {
		t.Fatal("unknown camera unhealthy")
	}
}

func TestTrackerDisabled(t *testing.T) {
	tr := NewTracker(2, 0)
	for i := 0; i < 10; i++ {
		tr.Observe(0, false)
	}
	if !tr.Healthy(0) {
		t.Fatal("disabled tracker marked a camera unhealthy")
	}
	if _, any := tr.DeadMask(nil); any {
		t.Fatal("disabled tracker produced a dead camera")
	}
}
