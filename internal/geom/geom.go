// Package geom provides the 2D geometric primitives used throughout the
// multi-view scheduling framework: points, axis-aligned rectangles
// (bounding boxes), intersection-over-union, target-size quantization,
// convex polygons (camera fields of view), and pixel-cell grids.
//
// All pixel coordinates are float64 so that the same types serve both the
// world plane (metres) and the image plane (pixels). Rectangles are
// half-open in spirit but treated as closed regions for area computations;
// a rectangle with non-positive width or height is empty.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2D point, either in world coordinates (metres) or image
// coordinates (pixels), depending on context.
type Point struct {
	X, Y float64
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Norm returns the Euclidean norm of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle identified by its min (top-left) and
// max (bottom-right) corners. It represents object bounding boxes and
// partial-frame inspection regions.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// RectFromCenter builds a rectangle of the given width and height centred
// at c.
func RectFromCenter(c Point, w, h float64) Rect {
	return Rect{
		MinX: c.X - w/2, MinY: c.Y - h/2,
		MaxX: c.X + w/2, MaxY: c.Y + h/2,
	}
}

// RectFromCorners builds the smallest rectangle containing both points.
func RectFromCorners(a, b Point) Rect {
	return Rect{
		MinX: math.Min(a.X, b.X), MinY: math.Min(a.Y, b.Y),
		MaxX: math.Max(a.X, b.X), MaxY: math.Max(a.Y, b.Y),
	}
}

// W returns the rectangle width (0 if empty).
func (r Rect) W() float64 {
	if r.MaxX <= r.MinX {
		return 0
	}
	return r.MaxX - r.MinX
}

// H returns the rectangle height (0 if empty).
func (r Rect) H() float64 {
	if r.MaxY <= r.MinY {
		return 0
	}
	return r.MaxY - r.MinY
}

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.MaxX <= r.MinX || r.MaxY <= r.MinY }

// Area returns the rectangle area (0 if empty).
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the rectangle center.
func (r Rect) Center() Point {
	return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2}
}

// LongSide returns the longer of width and height.
func (r Rect) LongSide() float64 { return math.Max(r.W(), r.H()) }

// Translate returns the rectangle shifted by d.
func (r Rect) Translate(d Point) Rect {
	return Rect{r.MinX + d.X, r.MinY + d.Y, r.MaxX + d.X, r.MaxY + d.Y}
}

// Inflate grows the rectangle by m on every side (shrinks when m < 0).
func (r Rect) Inflate(m float64) Rect {
	return Rect{r.MinX - m, r.MinY - m, r.MaxX + m, r.MaxY + m}
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		MinX: math.Max(r.MinX, s.MinX), MinY: math.Max(r.MinY, s.MinY),
		MaxX: math.Min(r.MaxX, s.MaxX), MaxY: math.Min(r.MaxY, s.MaxY),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s. If one is
// empty the other is returned.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		MinX: math.Min(r.MinX, s.MinX), MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX), MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// Contains reports whether p lies inside (or on the boundary of) r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely within r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.MinX >= r.MinX && s.MinY >= r.MinY && s.MaxX <= r.MaxX && s.MaxY <= r.MaxY
}

// Overlaps reports whether r and s share positive area.
func (r Rect) Overlaps(s Rect) bool { return !r.Intersect(s).Empty() }

// Clamp returns r clipped to the bounds rectangle.
func (r Rect) Clamp(bounds Rect) Rect { return r.Intersect(bounds) }

// IoU returns the intersection-over-union of r and s in [0, 1]. Two empty
// rectangles have IoU 0.
func (r Rect) IoU(s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f]", r.MinX, r.MinY, r.W(), r.H())
}

// MAE returns the mean absolute error between the four coordinates of r
// and s, the metric the paper uses to compare cross-camera regression
// models (Fig. 11).
func (r Rect) MAE(s Rect) float64 {
	return (math.Abs(r.MinX-s.MinX) + math.Abs(r.MinY-s.MinY) +
		math.Abs(r.MaxX-s.MaxX) + math.Abs(r.MaxY-s.MaxY)) / 4
}

// Vec4 returns the rectangle as a coordinate vector
// [MinX, MinY, MaxX, MaxY], the feature layout used by the association
// models.
func (r Rect) Vec4() []float64 { return []float64{r.MinX, r.MinY, r.MaxX, r.MaxY} }

// RectFromVec4 reconstructs a rectangle from a 4-vector as produced by
// Vec4. It panics if v does not have exactly four elements.
func RectFromVec4(v []float64) Rect {
	if len(v) != 4 {
		panic(fmt.Sprintf("geom: RectFromVec4 needs 4 values, got %d", len(v)))
	}
	return Rect{v[0], v[1], v[2], v[3]}
}

// StandardSizes is the quantized target-size set S used by the paper's
// testbed: partial regions are expanded to the nearest of these square
// sizes (pixels) so that same-size regions can share a GPU batch. Regions
// larger than the maximum are downsampled to it.
var StandardSizes = []int{64, 128, 256, 512}

// QuantizeSize returns the smallest standard size that is >= long, or the
// largest standard size when long exceeds it (the paper downsamples very
// large regions, since large objects are easy to detect). sizes must be
// sorted ascending; pass nil to use StandardSizes.
func QuantizeSize(long float64, sizes []int) int {
	if len(sizes) == 0 {
		sizes = StandardSizes
	}
	for _, s := range sizes {
		if long <= float64(s) {
			return s
		}
	}
	return sizes[len(sizes)-1]
}

// QuantizeRect expands r to a square whose side is the quantized target
// size for r's longer side, centred on r's center, clamped to bounds.
// The returned size is the quantized side length.
func QuantizeRect(r Rect, bounds Rect, sizes []int) (Rect, int) {
	s := QuantizeSize(r.LongSide(), sizes)
	q := RectFromCenter(r.Center(), float64(s), float64(s))
	// Shift into bounds rather than clipping, so the region keeps its full
	// quantized size whenever the frame is large enough.
	if q.MinX < bounds.MinX {
		q = q.Translate(Point{bounds.MinX - q.MinX, 0})
	}
	if q.MinY < bounds.MinY {
		q = q.Translate(Point{0, bounds.MinY - q.MinY})
	}
	if q.MaxX > bounds.MaxX {
		q = q.Translate(Point{bounds.MaxX - q.MaxX, 0})
	}
	if q.MaxY > bounds.MaxY {
		q = q.Translate(Point{0, bounds.MaxY - q.MaxY})
	}
	return q.Clamp(bounds), s
}

// Polygon is a convex polygon with vertices in counter-clockwise order,
// used to model a camera's field of view on the world ground plane.
type Polygon struct {
	Vertices []Point
}

// Contains reports whether p lies inside the convex polygon (boundary
// inclusive). Vertices must be in counter-clockwise order.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[(i+1)%n]
		// Cross product of (b-a) x (p-a): negative means p is to the right
		// of edge ab, i.e. outside a CCW polygon.
		cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
		if cross < -1e-9 {
			return false
		}
	}
	return true
}

// Bounds returns the axis-aligned bounding rectangle of the polygon.
func (pg Polygon) Bounds() Rect {
	if len(pg.Vertices) == 0 {
		return Rect{}
	}
	b := Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
	for _, v := range pg.Vertices {
		b.MinX = math.Min(b.MinX, v.X)
		b.MinY = math.Min(b.MinY, v.Y)
		b.MaxX = math.Max(b.MaxX, v.X)
		b.MaxY = math.Max(b.MaxY, v.Y)
	}
	return b
}

// Area returns the polygon area via the shoelace formula.
func (pg Polygon) Area() float64 {
	n := len(pg.Vertices)
	if n < 3 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		a := pg.Vertices[i]
		b := pg.Vertices[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	return math.Abs(sum) / 2
}

// Grid divides a rectangular frame into Cols x Rows equal pixel cells. The
// distributed BALB stage precomputes, for every cell of every camera,
// which camera has responsibility for new objects appearing there
// (Fig. 8 in the paper).
type Grid struct {
	Frame Rect
	Cols  int
	Rows  int
}

// NewGrid builds a grid over frame with the given cell counts. It panics
// if cols or rows is not positive, or the frame is empty — a grid over
// nothing is a programming error, not a runtime condition.
func NewGrid(frame Rect, cols, rows int) Grid {
	if cols <= 0 || rows <= 0 {
		panic(fmt.Sprintf("geom: NewGrid cols=%d rows=%d must be positive", cols, rows))
	}
	if frame.Empty() {
		panic("geom: NewGrid on empty frame")
	}
	return Grid{Frame: frame, Cols: cols, Rows: rows}
}

// NumCells returns Cols*Rows.
func (g Grid) NumCells() int { return g.Cols * g.Rows }

// CellIndex returns the flat index of the cell containing p, clamping
// points on or beyond the frame border into the nearest edge cell, and
// whether p was inside the frame.
func (g Grid) CellIndex(p Point) (int, bool) {
	inside := g.Frame.Contains(p)
	cx := int((p.X - g.Frame.MinX) / g.Frame.W() * float64(g.Cols))
	cy := int((p.Y - g.Frame.MinY) / g.Frame.H() * float64(g.Rows))
	cx = clampInt(cx, 0, g.Cols-1)
	cy = clampInt(cy, 0, g.Rows-1)
	return cy*g.Cols + cx, inside
}

// CellRect returns the rectangle of the cell with flat index idx. It
// panics on an out-of-range index.
func (g Grid) CellRect(idx int) Rect {
	if idx < 0 || idx >= g.NumCells() {
		panic(fmt.Sprintf("geom: cell index %d out of range [0,%d)", idx, g.NumCells()))
	}
	cw := g.Frame.W() / float64(g.Cols)
	ch := g.Frame.H() / float64(g.Rows)
	cx := idx % g.Cols
	cy := idx / g.Cols
	return Rect{
		MinX: g.Frame.MinX + float64(cx)*cw,
		MinY: g.Frame.MinY + float64(cy)*ch,
		MaxX: g.Frame.MinX + float64(cx+1)*cw,
		MaxY: g.Frame.MinY + float64(cy+1)*ch,
	}
}

// CellCenter returns the center point of the cell with flat index idx.
func (g Grid) CellCenter(idx int) Point { return g.CellRect(idx).Center() }

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
