package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Point{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Errorf("Dist self = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{2, -1}) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{0, 0, 10, 20}
	if r.W() != 10 || r.H() != 20 || r.Area() != 200 {
		t.Fatalf("dims wrong: %v %v %v", r.W(), r.H(), r.Area())
	}
	if r.Center() != (Point{5, 10}) {
		t.Fatalf("center = %v", r.Center())
	}
	if r.LongSide() != 20 {
		t.Fatalf("long side = %v", r.LongSide())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported empty")
	}
	if !(Rect{5, 5, 5, 9}).Empty() {
		t.Fatal("zero-width rect not empty")
	}
	if (Rect{5, 5, 5, 9}).Area() != 0 {
		t.Fatal("empty rect area != 0")
	}
}

func TestRectFromCenterAndCorners(t *testing.T) {
	r := RectFromCenter(Point{5, 5}, 4, 6)
	want := Rect{3, 2, 7, 8}
	if r != want {
		t.Fatalf("RectFromCenter = %v want %v", r, want)
	}
	c := RectFromCorners(Point{7, 8}, Point{3, 2})
	if c != want {
		t.Fatalf("RectFromCorners = %v want %v", c, want)
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{5, 5, 15, 15}
	inter := a.Intersect(b)
	if inter != (Rect{5, 5, 10, 10}) {
		t.Fatalf("Intersect = %v", inter)
	}
	if got := a.Union(b); got != (Rect{0, 0, 15, 15}) {
		t.Fatalf("Union = %v", got)
	}
	disjoint := Rect{20, 20, 30, 30}
	if !a.Intersect(disjoint).Empty() {
		t.Fatal("disjoint intersect not empty")
	}
	if a.Overlaps(disjoint) {
		t.Fatal("disjoint rects report overlap")
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("Union with empty = %v", got)
	}
	if got := (Rect{}).Union(a); got != a {
		t.Fatalf("empty Union a = %v", got)
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) || !r.Contains(Point{5, 5}) {
		t.Fatal("boundary/interior containment failed")
	}
	if r.Contains(Point{-0.01, 5}) || r.Contains(Point{5, 10.01}) {
		t.Fatal("exterior point contained")
	}
	if !r.ContainsRect(Rect{1, 1, 9, 9}) {
		t.Fatal("inner rect not contained")
	}
	if r.ContainsRect(Rect{1, 1, 11, 9}) {
		t.Fatal("overhanging rect contained")
	}
	if !r.ContainsRect(Rect{}) {
		t.Fatal("empty rect should be contained everywhere")
	}
}

func TestIoU(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	if got := a.IoU(a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self IoU = %v", got)
	}
	b := Rect{5, 0, 15, 10}
	// inter = 50, union = 150.
	if got := a.IoU(b); math.Abs(got-50.0/150.0) > 1e-12 {
		t.Fatalf("IoU = %v", got)
	}
	if got := a.IoU(Rect{20, 20, 30, 30}); got != 0 {
		t.Fatalf("disjoint IoU = %v", got)
	}
	if got := (Rect{}).IoU(Rect{}); got != 0 {
		t.Fatalf("empty IoU = %v", got)
	}
}

// boundedRect maps arbitrary float inputs into a rectangle with coordinates
// in a pixel-scale range, so property tests exercise realistic geometry
// without floating-point overflow.
func boundedRect(x, y, w, h float64) Rect {
	bx := math.Mod(math.Abs(x), 2000)
	by := math.Mod(math.Abs(y), 2000)
	bw := math.Mod(math.Abs(w), 2000)
	bh := math.Mod(math.Abs(h), 2000)
	if math.IsNaN(bx) || math.IsNaN(by) || math.IsNaN(bw) || math.IsNaN(bh) {
		return Rect{0, 0, 1, 1}
	}
	return Rect{bx, by, bx + bw, by + bh}
}

func TestIoUProperties(t *testing.T) {
	// IoU is symmetric and within [0, 1] for arbitrary rectangles.
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := boundedRect(ax, ay, aw, ah)
		b := boundedRect(bx, by, bw, bh)
		u, v := a.IoU(b), b.IoU(a)
		return u >= 0 && u <= 1+1e-9 && math.Abs(u-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersectionCommutesAndShrinks(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := boundedRect(ax, ay, aw, ah)
		b := boundedRect(bx, by, bw, bh)
		i1, i2 := a.Intersect(b), b.Intersect(a)
		return i1 == i2 && i1.Area() <= a.Area()+1e-9 && i1.Area() <= b.Area()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateInflate(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if got := r.Translate(Point{3, -2}); got != (Rect{3, -2, 13, 8}) {
		t.Fatalf("Translate = %v", got)
	}
	if got := r.Inflate(2); got != (Rect{-2, -2, 12, 12}) {
		t.Fatalf("Inflate = %v", got)
	}
	if got := r.Inflate(-4); got != (Rect{4, 4, 6, 6}) {
		t.Fatalf("deflate = %v", got)
	}
}

func TestMAE(t *testing.T) {
	a := Rect{0, 0, 10, 10}
	b := Rect{1, 1, 11, 11}
	if got := a.MAE(b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("MAE = %v", got)
	}
	if got := a.MAE(a); got != 0 {
		t.Fatalf("self MAE = %v", got)
	}
}

func TestVec4RoundTrip(t *testing.T) {
	r := Rect{1.5, 2.5, 3.5, 4.5}
	if got := RectFromVec4(r.Vec4()); got != r {
		t.Fatalf("roundtrip = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RectFromVec4 with wrong length did not panic")
		}
	}()
	RectFromVec4([]float64{1, 2, 3})
}

func TestQuantizeSize(t *testing.T) {
	cases := []struct {
		long float64
		want int
	}{
		{1, 64}, {64, 64}, {64.1, 128}, {128, 128},
		{200, 256}, {256, 256}, {300, 512}, {512, 512},
		{10000, 512}, // oversize regions are downsampled to the max
	}
	for _, c := range cases {
		if got := QuantizeSize(c.long, nil); got != c.want {
			t.Errorf("QuantizeSize(%v) = %d want %d", c.long, got, c.want)
		}
	}
	if got := QuantizeSize(5, []int{8, 16}); got != 8 {
		t.Errorf("custom sizes = %d", got)
	}
}

func TestQuantizeRect(t *testing.T) {
	bounds := Rect{0, 0, 1280, 704}
	r := Rect{100, 100, 180, 140} // long side 80 -> 128
	q, s := QuantizeRect(r, bounds, nil)
	if s != 128 {
		t.Fatalf("size = %d", s)
	}
	if math.Abs(q.W()-128) > 1e-9 || math.Abs(q.H()-128) > 1e-9 {
		t.Fatalf("quantized rect %v not 128x128", q)
	}
	if q.Center() != r.Center() {
		t.Fatalf("center moved: %v vs %v", q.Center(), r.Center())
	}
	if !bounds.ContainsRect(q) {
		t.Fatalf("quantized rect %v escapes bounds", q)
	}
}

func TestQuantizeRectShiftsIntoBounds(t *testing.T) {
	bounds := Rect{0, 0, 1280, 704}
	// A small object at the very corner: expanded region must be shifted,
	// not clipped, preserving the full quantized size.
	r := Rect{0, 0, 30, 30}
	q, s := QuantizeRect(r, bounds, nil)
	if s != 64 {
		t.Fatalf("size = %d", s)
	}
	if math.Abs(q.W()-64) > 1e-9 || math.Abs(q.H()-64) > 1e-9 {
		t.Fatalf("corner region %v lost size", q)
	}
	if !bounds.ContainsRect(q) {
		t.Fatalf("corner region %v escapes bounds", q)
	}
}

func TestQuantizeRectProperty(t *testing.T) {
	bounds := Rect{0, 0, 1280, 704}
	f := func(cx, cy, w, h float64) bool {
		cx = math.Mod(math.Abs(cx), 1280)
		cy = math.Mod(math.Abs(cy), 704)
		w = math.Mod(math.Abs(w), 600) + 1
		h = math.Mod(math.Abs(h), 600) + 1
		r := RectFromCenter(Point{cx, cy}, w, h).Clamp(bounds)
		if r.Empty() {
			return true
		}
		q, s := QuantizeRect(r, bounds, nil)
		if !bounds.ContainsRect(q) {
			return false
		}
		// The quantized side never exceeds the standard maximum and the
		// region never exceeds the quantized square.
		return s <= 512 && q.W() <= float64(s)+1e-9 && q.H() <= float64(s)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPolygonContains(t *testing.T) {
	// CCW unit square.
	sq := Polygon{Vertices: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}}
	if !sq.Contains(Point{5, 5}) || !sq.Contains(Point{0, 0}) || !sq.Contains(Point{10, 5}) {
		t.Fatal("interior/boundary not contained")
	}
	if sq.Contains(Point{10.1, 5}) || sq.Contains(Point{-1, -1}) {
		t.Fatal("exterior contained")
	}
	tri := Polygon{Vertices: []Point{{0, 0}, {10, 0}, {5, 10}}}
	if !tri.Contains(Point{5, 1}) || tri.Contains(Point{0, 10}) {
		t.Fatal("triangle containment wrong")
	}
	if (Polygon{}).Contains(Point{0, 0}) {
		t.Fatal("degenerate polygon contains point")
	}
}

func TestPolygonBoundsArea(t *testing.T) {
	sq := Polygon{Vertices: []Point{{1, 2}, {11, 2}, {11, 12}, {1, 12}}}
	if got := sq.Bounds(); got != (Rect{1, 2, 11, 12}) {
		t.Fatalf("Bounds = %v", got)
	}
	if got := sq.Area(); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Area = %v", got)
	}
	tri := Polygon{Vertices: []Point{{0, 0}, {10, 0}, {0, 10}}}
	if got := tri.Area(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("triangle area = %v", got)
	}
	if (Polygon{}).Area() != 0 {
		t.Fatal("degenerate polygon area != 0")
	}
	if !(Polygon{}).Bounds().Empty() {
		t.Fatal("degenerate polygon bounds not empty")
	}
}

func TestGridCells(t *testing.T) {
	g := NewGrid(Rect{0, 0, 100, 50}, 10, 5)
	if g.NumCells() != 50 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
	idx, inside := g.CellIndex(Point{5, 15})
	if !inside || idx != 10 { // row 1 (y in [10,20)), col 0
		t.Fatalf("CellIndex(5,15) = %d inside=%v", idx, inside)
	}
	idx, inside = g.CellIndex(Point{99.9, 49.9})
	if !inside || idx != 49 {
		t.Fatalf("CellIndex(99.9,49.9) = %d inside=%v", idx, inside)
	}
	// Outside points clamp to edge cells but report inside=false.
	idx, inside = g.CellIndex(Point{-5, -5})
	if inside || idx != 0 {
		t.Fatalf("CellIndex(-5,-5) = %d inside=%v", idx, inside)
	}
	r := g.CellRect(0)
	if r != (Rect{0, 0, 10, 10}) {
		t.Fatalf("CellRect(0) = %v", r)
	}
	if got := g.CellCenter(0); got != (Point{5, 5}) {
		t.Fatalf("CellCenter(0) = %v", got)
	}
}

func TestGridCellRoundTrip(t *testing.T) {
	g := NewGrid(Rect{0, 0, 1280, 704}, 16, 9)
	for i := 0; i < g.NumCells(); i++ {
		idx, inside := g.CellIndex(g.CellCenter(i))
		if !inside || idx != i {
			t.Fatalf("cell %d center maps to %d inside=%v", i, idx, inside)
		}
	}
}

func TestGridPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero cols", func() { NewGrid(Rect{0, 0, 1, 1}, 0, 1) })
	mustPanic("empty frame", func() { NewGrid(Rect{}, 1, 1) })
	g := NewGrid(Rect{0, 0, 10, 10}, 2, 2)
	mustPanic("bad cell", func() { g.CellRect(4) })
	mustPanic("negative cell", func() { g.CellRect(-1) })
}

func TestClampInt(t *testing.T) {
	if clampInt(5, 0, 3) != 3 || clampInt(-1, 0, 3) != 0 || clampInt(2, 0, 3) != 2 {
		t.Fatal("clampInt wrong")
	}
}
