package core

import (
	"testing"

	"mvs/internal/profile"
)

// fuzzObjects decodes an arbitrary byte stream into a slice of
// ObjectSpecs — deliberately without sanitizing, so malformed coverage
// sets (empty, duplicate cameras, out-of-range indices, negative or
// missing sizes) all occur. The decoding is deterministic, so any
// crasher reproduces from its corpus entry.
func fuzzObjects(data []byte, numCams int) []ObjectSpec {
	var objects []ObjectSpec
	id := 0
	for len(data) > 0 {
		n := int(data[0] % 5) // coverage entries for this object (0..4)
		data = data[1:]
		o := ObjectSpec{ID: id, Size: map[int]int{}}
		for j := 0; j < n && len(data) >= 2; j++ {
			// Spread camera indices around [-2, numCams+2) so both valid
			// and out-of-range values appear; do not deduplicate.
			cam := int(data[0])%(numCams+4) - 2
			size := int(int8(data[1])) * 8 // negatives and zero included
			data = data[2:]
			o.Coverage = append(o.Coverage, cam)
			if size != 0 {
				o.Size[cam] = size
			}
		}
		objects = append(objects, o)
		id++
	}
	return objects
}

func FuzzObjectSpecValidate(f *testing.F) {
	f.Add(uint8(2), []byte{1, 0, 8})             // one valid object
	f.Add(uint8(2), []byte{2, 0, 8, 0, 8})       // duplicate camera
	f.Add(uint8(2), []byte{1, 7, 8})             // out-of-range camera
	f.Add(uint8(2), []byte{1, 0, 0})             // missing size
	f.Add(uint8(2), []byte{0})                   // empty coverage
	f.Add(uint8(0), []byte{1, 0, 8})             // zero-camera roster
	f.Add(uint8(6), []byte{3, 1, 8, 2, 16, 255}) // truncated entry
	f.Fuzz(func(t *testing.T, camsRaw uint8, data []byte) {
		numCams := int(camsRaw % 9)
		for _, o := range fuzzObjects(data, numCams) {
			err := o.Validate(numCams)
			if err != nil {
				continue
			}
			// Validate accepted: the invariants it promises must hold.
			if len(o.Coverage) == 0 {
				t.Fatalf("accepted empty coverage: %+v", o)
			}
			seen := map[int]bool{}
			for _, c := range o.Coverage {
				if c < 0 || c >= numCams {
					t.Fatalf("accepted out-of-range camera %d (roster %d): %+v", c, numCams, o)
				}
				if seen[c] {
					t.Fatalf("accepted duplicate camera %d: %+v", c, o)
				}
				seen[c] = true
				if o.Size[c] <= 0 {
					t.Fatalf("accepted non-positive size on camera %d: %+v", c, o)
				}
			}
		}
	})
}

func FuzzCheckFeasible(f *testing.F) {
	f.Add(uint8(3), []byte{1, 0, 8}, []byte{0, 0})
	f.Add(uint8(3), []byte{1, 0, 8}, []byte{})           // unassigned
	f.Add(uint8(3), []byte{1, 0, 8}, []byte{0, 2})       // outside coverage
	f.Add(uint8(3), []byte{2, 0, 8, 1, 8}, []byte{0, 1}) // covered
	f.Fuzz(func(t *testing.T, camsRaw uint8, objData, assignData []byte) {
		numCams := int(camsRaw%8) + 1
		objects := fuzzObjects(objData, numCams)
		a := Assignment{}
		for len(assignData) >= 2 {
			id := int(assignData[0] % 16)
			cam := int(assignData[1])%(numCams+2) - 1
			assignData = assignData[2:]
			a[id] = cam
		}
		err := CheckFeasible(objects, a)
		if err != nil {
			return
		}
		// Feasible: every object must be assigned within its coverage.
		for i := range objects {
			cam, ok := a[objects[i].ID]
			if !ok {
				t.Fatalf("feasible but object %d unassigned", objects[i].ID)
			}
			covered := false
			for _, c := range objects[i].Coverage {
				covered = covered || c == cam
			}
			if !covered {
				t.Fatalf("feasible but object %d on camera %d outside %v",
					objects[i].ID, cam, objects[i].Coverage)
			}
		}
	})
}

func FuzzValidateInstance(f *testing.F) {
	f.Add(uint8(2), false, []byte{1, 0, 8})
	f.Add(uint8(0), false, []byte{})        // empty roster
	f.Add(uint8(2), true, []byte{1, 0, 8})  // nil profile
	f.Add(uint8(4), false, []byte{2, 9, 8}) // bad object
	f.Fuzz(func(t *testing.T, camsRaw uint8, nilProfile bool, objData []byte) {
		numCams := int(camsRaw % 7)
		cams := make([]CameraSpec, numCams)
		classes := []profile.DeviceClass{profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier}
		for i := range cams {
			cams[i] = CameraSpec{Index: i, Profile: profile.Derived(classes[i%len(classes)])}
		}
		if nilProfile && numCams > 0 {
			cams[numCams-1].Profile = nil
		}
		objects := fuzzObjects(objData, numCams)
		err := validateInstance(cams, objects)
		if err != nil {
			return
		}
		// Accepted: the roster is non-empty with usable profiles, and
		// every object individually validates.
		if numCams == 0 {
			t.Fatal("accepted empty roster")
		}
		for i, c := range cams {
			if c.Profile == nil {
				t.Fatalf("accepted nil profile on camera %d", i)
			}
		}
		for i := range objects {
			if verr := objects[i].Validate(numCams); verr != nil {
				t.Fatalf("instance accepted but object %d invalid: %v", i, verr)
			}
		}
	})
}
