// Package core implements the paper's primary contribution: the
// multi-view scheduling (MVS) problem and the batch-aware
// latency-balanced (BALB) algorithm that approximately solves it.
//
// The MVS problem: given cameras with heterogeneous latency profiles and
// objects with per-camera coverage sets and target sizes, find a feasible
// object-to-camera assignment minimizing the *maximum* per-frame
// processing latency across cameras (Definition 3). The problem is
// strongly NP-hard (Claim 1, by reduction from bin packing); BALB is the
// paper's polynomial-time two-stage heuristic.
//
// This package is pure scheduling: it knows nothing about pixels,
// detectors, or sockets. The pipeline package wires it to the rest of the
// system.
package core

import (
	"fmt"
	"sort"
	"time"

	"mvs/internal/gpu"
	"mvs/internal/profile"
)

// CameraSpec describes one camera to the scheduler.
type CameraSpec struct {
	// Index is the camera's position in the deployment roster.
	Index int
	// Profile is the offline-measured latency profile.
	Profile *profile.Profile
}

// ObjectSpec describes one physical object to the scheduler.
type ObjectSpec struct {
	// ID is a scheduler-unique object identifier.
	ID int
	// Coverage lists the cameras that can see the object (C_j).
	Coverage []int
	// Size maps camera index -> quantized target size s_ij. Every camera
	// in Coverage must have an entry.
	Size map[int]int
}

// Validate checks that the object is well-formed against a camera roster
// of the given length.
func (o *ObjectSpec) Validate(numCams int) error {
	if len(o.Coverage) == 0 {
		return fmt.Errorf("core: object %d has empty coverage set", o.ID)
	}
	seen := make(map[int]bool, len(o.Coverage))
	for _, c := range o.Coverage {
		if c < 0 || c >= numCams {
			return fmt.Errorf("core: object %d covers camera %d out of range [0,%d)", o.ID, c, numCams)
		}
		if seen[c] {
			return fmt.Errorf("core: object %d lists camera %d twice", o.ID, c)
		}
		seen[c] = true
		if o.Size[c] <= 0 {
			return fmt.Errorf("core: object %d has no target size on camera %d", o.ID, c)
		}
	}
	return nil
}

// Assignment maps object ID -> the camera index responsible for tracking
// it. BALB assigns each object to exactly one camera (the minimal
// feasible choice, since extra trackers only add latency).
type Assignment map[int]int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// CheckFeasible verifies the two feasibility conditions of Definition 2:
// every object is tracked by a camera that can see it, and no object is
// assigned to a camera outside its coverage set.
func CheckFeasible(objects []ObjectSpec, a Assignment) error {
	for i := range objects {
		o := &objects[i]
		cam, ok := a[o.ID]
		if !ok {
			return fmt.Errorf("core: object %d unassigned", o.ID)
		}
		covered := false
		for _, c := range o.Coverage {
			if c == cam {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("core: object %d assigned to camera %d outside coverage %v", o.ID, cam, o.Coverage)
		}
	}
	return nil
}

// CameraLatencies computes, for each camera, the scheduled per-frame
// latency of a feasible assignment: the optimal batch sequence's cost
// (greedy same-size packing, each batch charged t_i^s), plus the
// full-frame inspection time when includeFull is set (key-frame
// accounting, as in Algorithm 1's initialization).
func CameraLatencies(cams []CameraSpec, objects []ObjectSpec, a Assignment, includeFull bool) ([]time.Duration, error) {
	counts := make([]map[int]int, len(cams))
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i := range objects {
		o := &objects[i]
		cam, ok := a[o.ID]
		if !ok {
			return nil, fmt.Errorf("core: object %d unassigned", o.ID)
		}
		if cam < 0 || cam >= len(cams) {
			return nil, fmt.Errorf("core: object %d assigned to camera %d out of range", o.ID, cam)
		}
		size, ok := o.Size[cam]
		if !ok {
			return nil, fmt.Errorf("core: object %d has no size on camera %d", o.ID, cam)
		}
		counts[cam][size]++
	}
	out := make([]time.Duration, len(cams))
	for i, cam := range cams {
		lat, err := gpu.ScheduledLatency(counts[i], cam.Profile)
		if err != nil {
			return nil, fmt.Errorf("core: camera %d: %w", i, err)
		}
		out[i] = lat
		if includeFull {
			out[i] += cam.Profile.FullFrame
		}
	}
	return out, nil
}

// SystemLatency returns the maximum over per-camera latencies — the MVS
// objective L = max_i L_i.
func SystemLatency(lat []time.Duration) time.Duration {
	var max time.Duration
	for _, l := range lat {
		if l > max {
			max = l
		}
	}
	return max
}

// Solution is a scheduling outcome: the assignment, the per-camera
// scheduled latencies it implies, and the latency-derived camera priority
// order the distributed stage uses.
type Solution struct {
	// Assign is the object-to-camera assignment.
	Assign Assignment
	// Latencies are the scheduled per-camera latencies (with full-frame
	// time included, matching Algorithm 1's accounting).
	Latencies []time.Duration
	// Priority lists camera indices from highest to lowest distributed-
	// stage priority (i.e. ascending assigned latency; ties by index).
	Priority []int
}

// System returns the solution's system latency.
func (s *Solution) System() time.Duration { return SystemLatency(s.Latencies) }

// priorityFromLatencies orders cameras by ascending latency (ties by
// index): lightest-loaded camera first, as the distributed stage
// requires.
func priorityFromLatencies(lat []time.Duration) []int {
	idx := make([]int, len(lat))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return lat[idx[a]] < lat[idx[b]] })
	return idx
}

// BruteForce solves MVS exactly by enumerating all feasible single-camera
// assignments. It is exponential (prod |C_j|) and intended only for small
// instances in tests and optimality-gap experiments. It returns an error
// if the instance exceeds maxStates (default 5e6 when 0).
func BruteForce(cams []CameraSpec, objects []ObjectSpec, maxStates int) (*Solution, error) {
	if err := validateInstance(cams, objects); err != nil {
		return nil, err
	}
	if maxStates <= 0 {
		maxStates = 5_000_000
	}
	states := 1
	for i := range objects {
		states *= len(objects[i].Coverage)
		if states > maxStates {
			return nil, fmt.Errorf("core: brute force would enumerate > %d states", maxStates)
		}
	}

	best := Assignment(nil)
	var bestLat time.Duration
	cur := make(Assignment, len(objects))
	var recurse func(k int) error
	recurse = func(k int) error {
		if k == len(objects) {
			lat, err := CameraLatencies(cams, objects, cur, true)
			if err != nil {
				return err
			}
			sys := SystemLatency(lat)
			if best == nil || sys < bestLat {
				best = cur.Clone()
				bestLat = sys
			}
			return nil
		}
		o := &objects[k]
		for _, c := range o.Coverage {
			cur[o.ID] = c
			if err := recurse(k + 1); err != nil {
				return err
			}
		}
		delete(cur, o.ID)
		return nil
	}
	if err := recurse(0); err != nil {
		return nil, err
	}
	if best == nil {
		// No objects: empty assignment.
		best = Assignment{}
	}
	lat, err := CameraLatencies(cams, objects, best, true)
	if err != nil {
		return nil, err
	}
	return &Solution{Assign: best, Latencies: lat, Priority: priorityFromLatencies(lat)}, nil
}

// validateInstance checks the camera roster and every object.
func validateInstance(cams []CameraSpec, objects []ObjectSpec) error {
	if len(cams) == 0 {
		return fmt.Errorf("core: no cameras")
	}
	for i, c := range cams {
		if c.Profile == nil {
			return fmt.Errorf("core: camera %d has nil profile", i)
		}
		if err := c.Profile.Validate(); err != nil {
			return fmt.Errorf("core: camera %d: %w", i, err)
		}
	}
	for i := range objects {
		if err := objects[i].Validate(len(cams)); err != nil {
			return err
		}
	}
	return nil
}
