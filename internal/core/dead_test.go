package core

import (
	"errors"
	"testing"
)

func TestNewDistributedPolicyEmptyTyped(t *testing.T) {
	if _, err := NewDistributedPolicy(nil); !errors.Is(err, ErrEmptyPriority) {
		t.Fatalf("err = %v, want ErrEmptyPriority", err)
	}
	if _, err := NewDistributedPolicy([]int{}); !errors.Is(err, ErrEmptyPriority) {
		t.Fatalf("err = %v, want ErrEmptyPriority", err)
	}
}

func TestOwnerDeadCameras(t *testing.T) {
	mk := func(dead []bool) *DistributedPolicy {
		p, err := NewDistributedPolicy([]int{2, 0, 1}) // cam 2 highest priority
		if err != nil {
			t.Fatal(err)
		}
		p.SetDead(dead)
		return p
	}
	tests := []struct {
		name      string
		dead      []bool
		cover     []int
		wantOwner int
		wantOK    bool
	}{
		{"all alive", nil, []int{0, 1, 2}, 2, true},
		{"owner dead, next takes over", []bool{false, false, true}, []int{0, 1, 2}, 0, true},
		{"two dead", []bool{true, false, true}, []int{0, 1, 2}, 1, true},
		{"fully dead coverage", []bool{true, true, true}, []int{0, 1, 2}, 0, false},
		{"empty coverage", nil, nil, 0, false},
		{"only out-of-range coverage", nil, []int{-1, 9}, 0, false},
		{"dead outside coverage is irrelevant", []bool{false, true, false}, []int{0, 2}, 2, true},
		{"short mask treats missing as alive", []bool{true}, []int{0, 1}, 1, true},
		{"long mask extra entries ignored", []bool{false, false, true, true, true}, []int{0, 1, 2}, 0, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := mk(tc.dead)
			owner, ok := p.Owner(tc.cover)
			if owner != tc.wantOwner || ok != tc.wantOK {
				t.Fatalf("Owner(%v) = (%d, %v), want (%d, %v)",
					tc.cover, owner, ok, tc.wantOwner, tc.wantOK)
			}
		})
	}
}

func TestSetDeadClearAndShouldTrack(t *testing.T) {
	p, err := NewDistributedPolicy([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	p.SetDead([]bool{false, false, true})
	if !p.Dead(2) || p.Dead(0) {
		t.Fatal("dead mask not applied")
	}
	if p.Dead(-1) || p.Dead(9) {
		t.Fatal("out-of-range camera reported dead")
	}
	// Failover: with cam 2 dead, the next-priority covering camera tracks.
	if p.ShouldTrack(2, []int{1, 2}) {
		t.Fatal("dead camera should not track")
	}
	if !p.ShouldTrack(1, []int{1, 2}) {
		t.Fatal("surviving camera should take over")
	}
	// Clearing with nil (and with an all-false mask) restores ownership.
	p.SetDead(nil)
	if p.Dead(2) || !p.ShouldTrack(2, []int{1, 2}) {
		t.Fatal("nil mask did not clear dead marks")
	}
	p.SetDead([]bool{true, false, false})
	p.SetDead([]bool{false, false, false})
	if p.Dead(0) {
		t.Fatal("all-false mask did not clear dead marks")
	}
}
