package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mvs/internal/profile"
)

func cams(classes ...profile.DeviceClass) []CameraSpec {
	out := make([]CameraSpec, len(classes))
	for i, c := range classes {
		out[i] = CameraSpec{Index: i, Profile: profile.Derived(c)}
	}
	return out
}

// obj builds an object with the same target size on every covering
// camera.
func obj(id, size int, coverage ...int) ObjectSpec {
	sizes := make(map[int]int, len(coverage))
	for _, c := range coverage {
		sizes[c] = size
	}
	return ObjectSpec{ID: id, Coverage: coverage, Size: sizes}
}

func TestObjectSpecValidate(t *testing.T) {
	good := obj(1, 64, 0, 1)
	if err := good.Validate(2); err != nil {
		t.Fatal(err)
	}
	if err := (&ObjectSpec{ID: 1}).Validate(2); err == nil {
		t.Fatal("empty coverage accepted")
	}
	bad := obj(1, 64, 0, 5)
	if err := bad.Validate(2); err == nil {
		t.Fatal("out-of-range camera accepted")
	}
	dup := ObjectSpec{ID: 1, Coverage: []int{0, 0}, Size: map[int]int{0: 64}}
	if err := dup.Validate(2); err == nil {
		t.Fatal("duplicate coverage accepted")
	}
	noSize := ObjectSpec{ID: 1, Coverage: []int{0}, Size: map[int]int{}}
	if err := noSize.Validate(2); err == nil {
		t.Fatal("missing size accepted")
	}
}

func TestCheckFeasible(t *testing.T) {
	objects := []ObjectSpec{obj(1, 64, 0), obj(2, 64, 0, 1)}
	if err := CheckFeasible(objects, Assignment{1: 0, 2: 1}); err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(objects, Assignment{1: 0}); err == nil {
		t.Fatal("unassigned object accepted")
	}
	if err := CheckFeasible(objects, Assignment{1: 1, 2: 1}); err == nil {
		t.Fatal("out-of-coverage assignment accepted")
	}
}

func TestCameraLatenciesHandComputed(t *testing.T) {
	cs := cams(profile.JetsonXavier)
	p := cs[0].Profile
	// 17 objects of size 64 on one Xavier: ceil(17/16)=2 batches.
	objects := make([]ObjectSpec, 17)
	a := Assignment{}
	for i := range objects {
		objects[i] = obj(i+1, 64, 0)
		a[i+1] = 0
	}
	lat, err := CameraLatencies(cs, objects, a, false)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * p.BatchLatency[64]
	if lat[0] != want {
		t.Fatalf("lat = %v want %v", lat[0], want)
	}
	latFull, err := CameraLatencies(cs, objects, a, true)
	if err != nil {
		t.Fatal(err)
	}
	if latFull[0] != want+p.FullFrame {
		t.Fatalf("latFull = %v", latFull[0])
	}
}

func TestSystemLatency(t *testing.T) {
	if SystemLatency(nil) != 0 {
		t.Fatal("empty != 0")
	}
	if got := SystemLatency([]time.Duration{3, 9, 5}); got != 9 {
		t.Fatalf("max = %v", got)
	}
}

func TestCentralSingleCameraObjects(t *testing.T) {
	// Objects visible to only one camera have deterministic assignments.
	cs := cams(profile.JetsonXavier, profile.JetsonNano)
	objects := []ObjectSpec{obj(1, 64, 0), obj(2, 128, 1), obj(3, 64, 0)}
	sol, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[1] != 0 || sol.Assign[3] != 0 || sol.Assign[2] != 1 {
		t.Fatalf("assign = %v", sol.Assign)
	}
	if err := CheckFeasible(objects, sol.Assign); err != nil {
		t.Fatal(err)
	}
}

func TestCentralPrefersIncompleteBatch(t *testing.T) {
	// Camera 0 (Xavier) gets a single-camera object of size 512 opening a
	// batch with capacity 2. A shared object of size 512 should join that
	// incomplete batch rather than open a new one on camera 1.
	cs := cams(profile.JetsonXavier, profile.JetsonXavier)
	objects := []ObjectSpec{
		obj(1, 512, 0),    // forced to cam 0, opens 512-batch (limit 2)
		obj(2, 512, 0, 1), // shared: should join cam 0's batch
	}
	sol, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[2] != 0 {
		t.Fatalf("shared object not batched: assign = %v", sol.Assign)
	}
	// Latency of cam 0: full + one 512 batch; cam 1: just full.
	p := cs[0].Profile
	if sol.Latencies[0] != p.FullFrame+p.BatchLatency[512] {
		t.Fatalf("lat0 = %v", sol.Latencies[0])
	}
	if sol.Latencies[1] != p.FullFrame {
		t.Fatalf("lat1 = %v", sol.Latencies[1])
	}
}

func TestCentralOpensNewBatchOnLeastLoaded(t *testing.T) {
	// Complete batches everywhere: the next shared object must go to the
	// camera with minimum L_i + t_i^s — here the idle Xavier, not the
	// loaded one.
	cs := cams(profile.JetsonXavier, profile.JetsonXavier)
	objects := []ObjectSpec{
		obj(1, 512, 0), obj(2, 512, 0), // fill cam 0's 512 batch (limit 2)
		obj(3, 512, 0, 1), // must open a new batch: cam 1 cheaper
	}
	sol, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[3] != 1 {
		t.Fatalf("assign = %v", sol.Assign)
	}
}

func TestCentralAccountsHeterogeneity(t *testing.T) {
	// A shared object must open its first batch on the Xavier, not the
	// Nano, because min L_i + t_i^s picks the fast device.
	cs := cams(profile.JetsonNano, profile.JetsonXavier)
	objects := []ObjectSpec{obj(1, 256, 0, 1)}
	sol, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[1] != 1 {
		t.Fatalf("assign = %v", sol.Assign)
	}
}

func TestCentralOrdersByCoverageFlexibility(t *testing.T) {
	// Single-camera objects load camera 0 first; flexible objects then
	// avoid it. If flexible objects were assigned first they might land
	// on camera 0 and overload it.
	cs := cams(profile.JetsonXavier, profile.JetsonXavier)
	var objects []ObjectSpec
	id := 1
	for i := 0; i < 16; i++ { // fill one 64-batch on cam 0 exactly
		objects = append(objects, obj(id, 64, 0))
		id++
	}
	shared := obj(id, 64, 0, 1)
	objects = append([]ObjectSpec{shared}, objects...) // shared listed first
	sol, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The shared object is processed last (|C|=2) and by then cam 0's
	// batch is complete, so it opens on cam 1.
	if sol.Assign[shared.ID] != 1 {
		t.Fatalf("assign = %v", sol.Assign)
	}
}

func TestCentralBalancesLoad(t *testing.T) {
	// Many shared objects across 3 identical cameras: latencies must end
	// up close to each other.
	cs := cams(profile.JetsonTX2, profile.JetsonTX2, profile.JetsonTX2)
	var objects []ObjectSpec
	for i := 0; i < 30; i++ {
		objects = append(objects, obj(i+1, 128, 0, 1, 2))
	}
	sol, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	min, max := sol.Latencies[0], sol.Latencies[0]
	for _, l := range sol.Latencies {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	p := cs[0].Profile
	if max-min > 2*p.BatchLatency[128] {
		t.Fatalf("imbalance %v vs batch %v (lat=%v)", max-min, p.BatchLatency[128], sol.Latencies)
	}
}

func TestCentralEmptyObjects(t *testing.T) {
	cs := cams(profile.JetsonNano)
	sol, err := Central(cs, nil, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Assign) != 0 {
		t.Fatalf("assign = %v", sol.Assign)
	}
	if sol.Latencies[0] != cs[0].Profile.FullFrame {
		t.Fatalf("lat = %v", sol.Latencies)
	}
}

func TestCentralInstanceValidation(t *testing.T) {
	if _, err := Central(nil, nil, CentralOptions{}); err == nil {
		t.Fatal("no cameras accepted")
	}
	cs := cams(profile.JetsonNano)
	if _, err := Central(cs, []ObjectSpec{obj(1, 64, 3)}, CentralOptions{}); err == nil {
		t.Fatal("bad coverage accepted")
	}
	if _, err := Central([]CameraSpec{{}}, nil, CentralOptions{}); err == nil {
		t.Fatal("nil profile accepted")
	}
}

func TestCentralFeasibilityProperty(t *testing.T) {
	// Random instances: Central always returns a feasible assignment and
	// latencies consistent with CameraLatencies.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classes := []profile.DeviceClass{profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier}
		m := 2 + rng.Intn(4)
		cs := make([]CameraSpec, m)
		for i := range cs {
			cs[i] = CameraSpec{Index: i, Profile: profile.Derived(classes[rng.Intn(3)])}
		}
		n := rng.Intn(25)
		sizes := []int{64, 128, 256, 512}
		objects := make([]ObjectSpec, n)
		for i := range objects {
			k := 1 + rng.Intn(m)
			perm := rng.Perm(m)[:k]
			sz := make(map[int]int, k)
			for _, c := range perm {
				sz[c] = sizes[rng.Intn(4)]
			}
			objects[i] = ObjectSpec{ID: i + 1, Coverage: perm, Size: sz}
		}
		sol, err := Central(cs, objects, CentralOptions{})
		if err != nil {
			return false
		}
		if CheckFeasible(objects, sol.Assign) != nil {
			return false
		}
		lat, err := CameraLatencies(cs, objects, sol.Assign, true)
		if err != nil {
			return false
		}
		for i := range lat {
			if lat[i] != sol.Latencies[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCentralNearOptimalOnSmallInstances(t *testing.T) {
	// Against brute force on small random instances, BALB's system
	// latency must stay within 1.6x of optimal (it is a heuristic, but a
	// good one; the paper's evaluation relies on it being near-balanced).
	rng := rand.New(rand.NewSource(99))
	sizes := []int{64, 128, 256, 512}
	worst := 1.0
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(2)
		classes := []profile.DeviceClass{profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier}
		cs := make([]CameraSpec, m)
		for i := range cs {
			cs[i] = CameraSpec{Index: i, Profile: profile.Derived(classes[rng.Intn(3)])}
		}
		n := 1 + rng.Intn(7)
		objects := make([]ObjectSpec, n)
		for i := range objects {
			k := 1 + rng.Intn(m)
			perm := rng.Perm(m)[:k]
			sz := make(map[int]int, k)
			for _, c := range perm {
				sz[c] = sizes[rng.Intn(4)]
			}
			objects[i] = ObjectSpec{ID: i + 1, Coverage: perm, Size: sz}
		}
		opt, err := BruteForce(cs, objects, 0)
		if err != nil {
			t.Fatal(err)
		}
		balb, err := Central(cs, objects, CentralOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if balb.System() < opt.System() {
			t.Fatalf("trial %d: BALB %v beat optimal %v", trial, balb.System(), opt.System())
		}
		ratio := float64(balb.System()) / float64(opt.System())
		if ratio > worst {
			worst = ratio
		}
		if ratio > 1.6 {
			t.Fatalf("trial %d: BALB/OPT = %.3f", trial, ratio)
		}
	}
	t.Logf("worst BALB/OPT ratio over 40 instances: %.3f", worst)
}

func TestBruteForceStateLimit(t *testing.T) {
	cs := cams(profile.JetsonXavier, profile.JetsonXavier)
	objects := make([]ObjectSpec, 30)
	for i := range objects {
		objects[i] = obj(i+1, 64, 0, 1)
	}
	if _, err := BruteForce(cs, objects, 1000); err == nil {
		t.Fatal("state explosion not detected")
	}
}

func TestBruteForceEmpty(t *testing.T) {
	cs := cams(profile.JetsonXavier)
	sol, err := BruteForce(cs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Assign) != 0 {
		t.Fatalf("assign = %v", sol.Assign)
	}
}

func TestBatchingAblation(t *testing.T) {
	// With batching disabled, BALB charges one batch per object, so 16
	// size-64 objects on one Xavier cost 16 batch latencies instead of 1.
	cs := cams(profile.JetsonXavier)
	var objects []ObjectSpec
	for i := 0; i < 16; i++ {
		objects = append(objects, obj(i+1, 64, 0))
	}
	withBatch, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	noBatch, err := Central(cs, objects, CentralOptions{DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	// Note: reported latencies use the internal accounting, which charges
	// per opened batch.
	p := cs[0].Profile
	if withBatch.Latencies[0] != p.FullFrame+p.BatchLatency[64] {
		t.Fatalf("batched lat = %v", withBatch.Latencies[0])
	}
	if noBatch.Latencies[0] != p.FullFrame+16*p.BatchLatency[64] {
		t.Fatalf("unbatched lat = %v", noBatch.Latencies[0])
	}
}

func TestPriorityFromLatencies(t *testing.T) {
	got := priorityFromLatencies([]time.Duration{30, 10, 20})
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("priority = %v", got)
		}
	}
	// Ties break by index (stable).
	got = priorityFromLatencies([]time.Duration{10, 10})
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("tie priority = %v", got)
	}
}

func TestDistributedPolicy(t *testing.T) {
	p, err := NewDistributedPolicy([]int{2, 0, 1}) // cam 2 highest priority
	if err != nil {
		t.Fatal(err)
	}
	owner, ok := p.Owner([]int{0, 1, 2})
	if !ok || owner != 2 {
		t.Fatalf("owner = %d %v", owner, ok)
	}
	owner, ok = p.Owner([]int{0, 1})
	if !ok || owner != 0 {
		t.Fatalf("owner = %d %v", owner, ok)
	}
	if _, ok := p.Owner(nil); ok {
		t.Fatal("empty coverage had an owner")
	}
	if !p.ShouldTrack(2, []int{1, 2}) {
		t.Fatal("highest-priority camera should track")
	}
	if p.ShouldTrack(1, []int{1, 2}) {
		t.Fatal("lower-priority camera should not track")
	}
	r, err := p.Rank(2)
	if err != nil || r != 0 {
		t.Fatalf("rank = %d %v", r, err)
	}
	if _, err := p.Rank(9); err == nil {
		t.Fatal("unknown camera accepted")
	}
}

func TestNewDistributedPolicyValidation(t *testing.T) {
	if _, err := NewDistributedPolicy(nil); err == nil {
		t.Fatal("empty priority accepted")
	}
	if _, err := NewDistributedPolicy([]int{0, 0}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if _, err := NewDistributedPolicy([]int{0, 5}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestDistributedConsistencyProperty(t *testing.T) {
	// Every camera computing ShouldTrack over the same coverage set must
	// agree there is exactly one tracker — the zero-communication
	// guarantee.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(5)
		perm := rng.Perm(m)
		p, err := NewDistributedPolicy(perm)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(m)
		cover := rng.Perm(m)[:k]
		trackers := 0
		for cam := 0; cam < m; cam++ {
			if p.ShouldTrack(cam, cover) {
				trackers++
			}
		}
		return trackers == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIndependentLatencies(t *testing.T) {
	cs := cams(profile.JetsonXavier, profile.JetsonXavier)
	objects := []ObjectSpec{obj(1, 512, 0, 1), obj(2, 512, 0)}
	lat, err := IndependentLatencies(cs, objects, false)
	if err != nil {
		t.Fatal(err)
	}
	p := cs[0].Profile
	// Cam 0 sees both (1 batch of 2 at limit 2); cam 1 sees one.
	if lat[0] != p.BatchLatency[512] || lat[1] != p.BatchLatency[512] {
		t.Fatalf("lat = %v", lat)
	}
	// Independent tracking is never cheaper than BALB system-wide.
	sol, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	indFull, err := IndependentLatencies(cs, objects, true)
	if err != nil {
		t.Fatal(err)
	}
	if SystemLatency(indFull) < sol.System() {
		t.Fatalf("independent %v beat BALB %v", SystemLatency(indFull), sol.System())
	}
}

func TestCapacityWeights(t *testing.T) {
	cs := cams(profile.JetsonNano, profile.JetsonXavier)
	w, err := CapacityWeights(cs)
	if err != nil {
		t.Fatal(err)
	}
	if w[1] <= w[0] {
		t.Fatalf("Xavier weight %v not above Nano %v", w[1], w[0])
	}
	if s := w[0] + w[1]; s < 0.999 || s > 1.001 {
		t.Fatalf("weights sum %v", s)
	}
	if _, err := CapacityWeights(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestWeightedPartitionProportions(t *testing.T) {
	// 1000 units covered by cameras {0,1} with weights 0.75/0.25 split
	// roughly 3:1.
	units := make([][]int, 1000)
	for i := range units {
		units[i] = []int{0, 1}
	}
	owners, err := WeightedPartition(units, []float64{0.75, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, o := range owners {
		if o == 0 {
			count++
		}
	}
	if count < 740 || count > 760 {
		t.Fatalf("camera 0 got %d / 1000", count)
	}
}

func TestWeightedPartitionRespectsCoverage(t *testing.T) {
	units := [][]int{{1}, {0, 1}, {0}}
	owners, err := WeightedPartition(units, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if owners[0] != 1 || owners[2] != 0 {
		t.Fatalf("owners = %v", owners)
	}
	if _, err := WeightedPartition([][]int{{}}, []float64{1}); err == nil {
		t.Fatal("empty coverage accepted")
	}
	if _, err := WeightedPartition([][]int{{7}}, []float64{1}); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestWeightedPartitionDeterministic(t *testing.T) {
	units := [][]int{{0, 1}, {0, 1}, {1, 0}, {0, 1}}
	w := []float64{0.6, 0.4}
	a, err := WeightedPartition(units, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WeightedPartition(units, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic")
		}
	}
	// Units {1,0} and {0,1} share a signature.
	if a[1] == a[2] && a[1] == a[3] && a[0] == a[1] {
		t.Fatalf("no splitting happened: %v", a)
	}
}

func TestStaticPartitionIgnoresLoad(t *testing.T) {
	// SP on a Nano+Xavier pair sends ~weighted share of shared objects to
	// each, even when the Xavier is the only sensible choice for latency.
	cs := cams(profile.JetsonNano, profile.JetsonXavier)
	var objects []ObjectSpec
	for i := 0; i < 20; i++ {
		objects = append(objects, obj(i+1, 256, 0, 1))
	}
	sp, err := StaticPartition(cs, objects)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(objects, sp.Assign); err != nil {
		t.Fatal(err)
	}
	nanoCount := 0
	for _, c := range sp.Assign {
		if c == 0 {
			nanoCount++
		}
	}
	if nanoCount == 0 {
		t.Fatal("SP sent nothing to the Nano — too clever for a static policy")
	}
	// BALB should beat SP here: the Nano's share inflates the max.
	balb, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if balb.System() > sp.System() {
		t.Fatalf("BALB %v worse than SP %v", balb.System(), sp.System())
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{1: 0, 2: 1}
	b := a.Clone()
	b[1] = 9
	if a[1] != 0 {
		t.Fatal("clone aliases")
	}
}

func BenchmarkCentral100Objects5Cams(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	classes := []profile.DeviceClass{profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier}
	cs := make([]CameraSpec, 5)
	for i := range cs {
		cs[i] = CameraSpec{Index: i, Profile: profile.Derived(classes[i%3])}
	}
	sizes := []int{64, 128, 256, 512}
	objects := make([]ObjectSpec, 100)
	for i := range objects {
		k := 1 + rng.Intn(5)
		perm := rng.Perm(5)[:k]
		sz := make(map[int]int, k)
		for _, c := range perm {
			sz[c] = sizes[rng.Intn(4)]
		}
		objects[i] = ObjectSpec{ID: i + 1, Coverage: perm, Size: sz}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Central(cs, objects, CentralOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
