package core

import "testing"

func TestNewScopedPolicyRoster(t *testing.T) {
	// Roster {5, 2, 7}: camera 5 highest priority.
	p, err := NewScopedPolicy([]int{5, 2, 7})
	if err != nil {
		t.Fatal(err)
	}
	if owner, ok := p.Owner([]int{2, 5, 7}); !ok || owner != 5 {
		t.Fatalf("Owner = %d,%v want 5,true", owner, ok)
	}
	// Non-roster cameras (0, 3) and out-of-range (9) are skipped.
	if owner, ok := p.Owner([]int{0, 3, 9, 7}); !ok || owner != 7 {
		t.Fatalf("Owner = %d,%v want 7,true", owner, ok)
	}
	if _, ok := p.Owner([]int{0, 3}); ok {
		t.Fatal("cover with only non-roster cameras must orphan")
	}
	// Dead failover stays inside the roster.
	mask := make([]bool, 8)
	mask[5] = true
	p.SetDead(mask)
	if owner, ok := p.Owner([]int{2, 5, 7}); !ok || owner != 2 {
		t.Fatalf("after dead 5: Owner = %d,%v want 2,true", owner, ok)
	}
	if !p.Dead(5) || p.Dead(2) {
		t.Fatal("Dead mask wrong")
	}
}

func TestNewScopedPolicyRejects(t *testing.T) {
	if _, err := NewScopedPolicy(nil); err != ErrEmptyPriority {
		t.Fatalf("empty: err = %v", err)
	}
	if _, err := NewScopedPolicy([]int{1, -2}); err == nil {
		t.Fatal("negative entry must fail")
	}
	if _, err := NewScopedPolicy([]int{3, 3}); err == nil {
		t.Fatal("duplicate entry must fail")
	}
}

// shardedFixture: 6 cameras, shards {0,1,2} and {3,4,5}, priorities
// 2>0>1 and 4>5>3.
func shardedFixture(t *testing.T) *ShardedPolicy {
	t.Helper()
	p, err := NewShardedPolicy(
		[]int{0, 0, 0, 1, 1, 1},
		[][]int{{2, 0, 1}, {4, 5, 3}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestShardedPolicySingleShardCover(t *testing.T) {
	p := shardedFixture(t)
	// Cover inside shard 0: scoped decision.
	if owner, ok := p.Owner([]int{0, 1}); !ok || owner != 0 {
		t.Fatalf("Owner = %d,%v want 0,true", owner, ok)
	}
	// Cover inside shard 1.
	if owner, ok := p.Owner([]int{3, 5}); !ok || owner != 5 {
		t.Fatalf("Owner = %d,%v want 5,true", owner, ok)
	}
	if !p.ShouldTrack(5, []int{3, 5}) || p.ShouldTrack(3, []int{3, 5}) {
		t.Fatal("ShouldTrack disagrees with Owner")
	}
}

func TestShardedPolicyBoundaryLowerShardOwns(t *testing.T) {
	p := shardedFixture(t)
	// Straddling cover {1, 4}: shard 0 is the lowest covering shard,
	// so its scoped owner (camera 1) wins even though camera 4 tops
	// shard 1's priority.
	if owner, ok := p.Owner([]int{1, 4}); !ok || owner != 1 {
		t.Fatalf("Owner = %d,%v want 1,true", owner, ok)
	}
}

func TestShardedPolicyDeadFailover(t *testing.T) {
	p := shardedFixture(t)
	mask := make([]bool, 6)
	mask[1] = true
	p.SetDead(mask)
	if !p.Dead(1) || p.Dead(4) {
		t.Fatal("Dead mask wrong")
	}
	// Shard 0's only covering camera is dead: ownership falls through
	// to shard 1 — cross-shard failover at the boundary.
	if owner, ok := p.Owner([]int{1, 4}); !ok || owner != 4 {
		t.Fatalf("Owner = %d,%v want 4,true", owner, ok)
	}
	// Everything covering dead: orphaned.
	if _, ok := p.Owner([]int{1}); ok {
		t.Fatal("all-dead cover must orphan")
	}
	p.SetDead(nil)
	if owner, ok := p.Owner([]int{1, 4}); !ok || owner != 1 {
		t.Fatalf("after clear: Owner = %d,%v want 1,true", owner, ok)
	}
}

func TestShardedPolicyMatchesGlobalRestriction(t *testing.T) {
	// With shard priorities that are restrictions of one global order,
	// single-shard covers must decide identically under both policies.
	global, err := NewDistributedPolicy([]int{2, 4, 0, 5, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	sharded := shardedFixture(t) // restrictions: {2,0,1}, {4,5,3}
	covers := [][]int{{0}, {0, 1}, {0, 2}, {1, 2}, {0, 1, 2}, {3}, {3, 4}, {4, 5}, {3, 5}, {3, 4, 5}}
	for _, cover := range covers {
		go1, ok1 := global.Owner(cover)
		go2, ok2 := sharded.Owner(cover)
		if go1 != go2 || ok1 != ok2 {
			t.Fatalf("cover %v: global %d,%v sharded %d,%v", cover, go1, ok1, go2, ok2)
		}
	}
}

func TestNewShardedPolicyRejects(t *testing.T) {
	if _, err := NewShardedPolicy(nil, nil); err != ErrEmptyPriority {
		t.Fatalf("empty: err = %v", err)
	}
	// Camera listed in the wrong shard.
	if _, err := NewShardedPolicy([]int{0, 1}, [][]int{{0, 1}, {}}); err == nil {
		t.Fatal("wrong-shard listing must fail")
	}
	// Missing camera.
	if _, err := NewShardedPolicy([]int{0, 0}, [][]int{{0}}); err == nil {
		t.Fatal("missing camera must fail")
	}
	// Out-of-range camera.
	if _, err := NewShardedPolicy([]int{0}, [][]int{{0, 7}}); err == nil {
		t.Fatal("out-of-range camera must fail")
	}
	// shardOf points past priorities.
	if _, err := NewShardedPolicy([]int{0, 3}, [][]int{{0, 1}}); err == nil {
		t.Fatal("unknown shard mapping must fail")
	}
}
