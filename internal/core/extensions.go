package core

import (
	"fmt"
	"sort"
	"time"
)

// This file implements the extensions the paper sketches in its
// "Limitations and Discussion" section (§V):
//
//   - CentralRedundant: assign each object to up to R cameras to hedge
//     against dynamic occlusions and imperfect association ("we may
//     allocate multiple cameras to track the same object");
//   - CentralQualityAware: trade latency for tracking quality by
//     preferring cameras where the object appears larger ("assigning an
//     object to a camera that is closer ... might help improve
//     classification accuracy");
//   - MinTotalLoad: the alternative formulation minimizing cumulative
//     processed workload instead of the maximum ("an alternative
//     formulation might simply minimize the cumulative processed
//     workload");
//   - MinUploadCover: the centralized-processing extension — pick the
//     minimum set of cameras whose uploads cover all objects ("uploading
//     the minimum number of views that offers complete coverage").

// CentralRedundant runs the central BALB stage, then adds up to
// redundancy-1 extra trackers per object, chosen among the remaining
// covering cameras in ascending marginal-latency order, subject to not
// raising the system latency above slack x the base solution's. The
// returned Extra maps object ID -> additional camera indices.
//
// redundancy <= 1 degenerates to Central. slack <= 1 permits only free
// additions (joining incomplete batches).
func CentralRedundant(cams []CameraSpec, objects []ObjectSpec, redundancy int, slack float64) (*Solution, map[int][]int, error) {
	base, err := Central(cams, objects, CentralOptions{})
	if err != nil {
		return nil, nil, err
	}
	if redundancy <= 1 || len(objects) == 0 {
		return base, map[int][]int{}, nil
	}
	if slack < 1 {
		slack = 1
	}
	budget := time.Duration(float64(base.System()) * slack)

	// Track batch occupancy implied by the base assignment, per camera
	// and size, so extra trackers keep exploiting incomplete batches.
	counts := make([]map[int]int, len(cams))
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i := range objects {
		o := &objects[i]
		cam := base.Assign[o.ID]
		counts[cam][o.Size[cam]]++
	}
	lat := append([]time.Duration(nil), base.Latencies...)

	// marginal returns the latency increase of adding one size-s region
	// to camera c.
	marginal := func(c, size int) (time.Duration, error) {
		limit, err := cams[c].Profile.BatchLimitFor(size)
		if err != nil {
			return 0, err
		}
		if counts[c][size]%limit != 0 {
			return 0, nil // joins an incomplete batch
		}
		return cams[c].Profile.BatchLatencyFor(size)
	}

	extra := make(map[int][]int, len(objects))
	// Objects with the fewest existing trackers and largest coverage
	// benefit most; iterate in ID order for determinism.
	order := make([]int, len(objects))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return objects[order[a]].ID < objects[order[b]].ID })
	for _, oi := range order {
		o := &objects[oi]
		assigned := base.Assign[o.ID]
		for added := 0; added < redundancy-1; added++ {
			bestCam := -1
			var bestCost time.Duration
			for _, c := range o.Coverage {
				if c == assigned || contains(extra[o.ID], c) {
					continue
				}
				cost, err := marginal(c, o.Size[c])
				if err != nil {
					return nil, nil, fmt.Errorf("core: redundant: %w", err)
				}
				if lat[c]+cost > budget {
					continue
				}
				if bestCam == -1 || cost < bestCost ||
					(cost == bestCost && lat[c] < lat[bestCam]) {
					bestCam = c
					bestCost = cost
				}
			}
			if bestCam == -1 {
				break
			}
			extra[o.ID] = append(extra[o.ID], bestCam)
			lat[bestCam] += bestCost
			counts[bestCam][o.Size[bestCam]]++
		}
	}

	sol := &Solution{
		Assign:    base.Assign,
		Latencies: lat,
		Priority:  priorityFromLatencies(lat),
	}
	return sol, extra, nil
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// QualityOptions tunes CentralQualityAware.
type QualityOptions struct {
	// Lambda in [0, 1] weighs quality against latency: 0 is pure BALB,
	// 1 considers only quality (largest view).
	Lambda float64
}

// CentralQualityAware is a quality-latency tradeoff variant of the
// central stage: when opening a new batch, cameras are scored by a convex
// combination of normalized post-assignment latency and (negated)
// normalized view size, so objects lean toward cameras where they appear
// larger — which classify more reliably — at a bounded latency cost.
func CentralQualityAware(cams []CameraSpec, objects []ObjectSpec, opts QualityOptions) (*Solution, error) {
	if err := validateInstance(cams, objects); err != nil {
		return nil, err
	}
	if opts.Lambda < 0 || opts.Lambda > 1 {
		return nil, fmt.Errorf("core: lambda %v out of [0,1]", opts.Lambda)
	}

	lat := make([]time.Duration, len(cams))
	for i, c := range cams {
		lat[i] = c.Profile.FullFrame
	}
	assign := make(Assignment, len(objects))

	order := make([]int, len(objects))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		oa, ob := &objects[order[a]], &objects[order[b]]
		if len(oa.Coverage) != len(ob.Coverage) {
			return len(oa.Coverage) < len(ob.Coverage)
		}
		return oa.ID < ob.ID
	})

	for _, oi := range order {
		o := &objects[oi]
		// Normalizers across this object's options.
		var maxLat time.Duration
		maxSize := 0
		for _, c := range o.Coverage {
			t, err := cams[c].Profile.BatchLatencyFor(o.Size[c])
			if err != nil {
				return nil, fmt.Errorf("core: quality-aware: %w", err)
			}
			if lat[c]+t > maxLat {
				maxLat = lat[c] + t
			}
			if o.Size[c] > maxSize {
				maxSize = o.Size[c]
			}
		}
		bestCam := -1
		bestScore := 0.0
		for _, c := range o.Coverage {
			t, err := cams[c].Profile.BatchLatencyFor(o.Size[c])
			if err != nil {
				return nil, err
			}
			latScore := float64(lat[c]+t) / float64(maxLat) // lower better
			qualScore := 1 - float64(o.Size[c])/float64(maxSize)
			score := (1-opts.Lambda)*latScore + opts.Lambda*qualScore
			if bestCam == -1 || score < bestScore ||
				(score == bestScore && c < bestCam) {
				bestCam = c
				bestScore = score
			}
		}
		t, err := cams[bestCam].Profile.BatchLatencyFor(o.Size[bestCam])
		if err != nil {
			return nil, err
		}
		assign[o.ID] = bestCam
		lat[bestCam] += t
	}

	// Re-price with proper batch packing for the reported latencies.
	priced, err := CameraLatencies(cams, objects, assign, true)
	if err != nil {
		return nil, err
	}
	return &Solution{Assign: assign, Latencies: priced, Priority: priorityFromLatencies(priced)}, nil
}

// MeanAssignedSize returns the mean target size of objects on their
// assigned cameras — the quality proxy CentralQualityAware optimizes
// (larger view = more pixels on target = better classification, per the
// paper's §V).
func MeanAssignedSize(objects []ObjectSpec, a Assignment) (float64, error) {
	if len(objects) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range objects {
		o := &objects[i]
		cam, ok := a[o.ID]
		if !ok {
			return 0, fmt.Errorf("core: object %d unassigned", o.ID)
		}
		sum += float64(o.Size[cam])
	}
	return sum / float64(len(objects)), nil
}

// MinTotalLoad solves the alternative formulation that minimizes the
// *cumulative* scheduled latency across cameras rather than the maximum:
// each object goes to its cheapest marginal camera, processing order by
// descending size to pack batches well. This matches §V's "minimize the
// cumulative processed workload" variant (e.g. for energy).
func MinTotalLoad(cams []CameraSpec, objects []ObjectSpec) (*Solution, error) {
	if err := validateInstance(cams, objects); err != nil {
		return nil, err
	}
	counts := make([]map[int]int, len(cams))
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	assign := make(Assignment, len(objects))

	order := make([]int, len(objects))
	for i := range order {
		order[i] = i
	}
	maxSize := func(o *ObjectSpec) int {
		m := 0
		for _, c := range o.Coverage {
			if o.Size[c] > m {
				m = o.Size[c]
			}
		}
		return m
	}
	// Deterministic objects first (as in Algorithm 1): once the forced
	// batches exist, flexible objects can ride them for free. Within a
	// coverage class, larger sizes go first so they anchor the batches.
	sort.SliceStable(order, func(a, b int) bool {
		oa, ob := &objects[order[a]], &objects[order[b]]
		if len(oa.Coverage) != len(ob.Coverage) {
			return len(oa.Coverage) < len(ob.Coverage)
		}
		sa, sb := maxSize(oa), maxSize(ob)
		if sa != sb {
			return sa > sb
		}
		return oa.ID < ob.ID
	})

	for _, oi := range order {
		o := &objects[oi]
		bestCam := -1
		var bestCost time.Duration
		for _, c := range o.Coverage {
			size := o.Size[c]
			limit, err := cams[c].Profile.BatchLimitFor(size)
			if err != nil {
				return nil, fmt.Errorf("core: min-total-load: %w", err)
			}
			var cost time.Duration
			if counts[c][size]%limit != 0 {
				cost = 0 // rides an incomplete batch
			} else {
				cost, err = cams[c].Profile.BatchLatencyFor(size)
				if err != nil {
					return nil, err
				}
			}
			if bestCam == -1 || cost < bestCost || (cost == bestCost && c < bestCam) {
				bestCam = c
				bestCost = cost
			}
		}
		assign[o.ID] = bestCam
		counts[bestCam][o.Size[bestCam]]++
	}

	lat, err := CameraLatencies(cams, objects, assign, true)
	if err != nil {
		return nil, err
	}
	return &Solution{Assign: assign, Latencies: lat, Priority: priorityFromLatencies(lat)}, nil
}

// TotalLoad returns the sum of per-camera latencies of a solution — the
// MinTotalLoad objective.
func TotalLoad(lat []time.Duration) time.Duration {
	var sum time.Duration
	for _, l := range lat {
		sum += l
	}
	return sum
}

// MinUploadCover implements the centralized-processing extension: choose
// the minimum-cardinality set of cameras whose coverage includes every
// object, so only those cameras upload their frames (greedy set cover,
// ln(n)-approximate). Ties break toward cameras with more capacity
// (lower full-frame latency), then lower index. It returns the chosen
// camera indices in selection order.
func MinUploadCover(cams []CameraSpec, objects []ObjectSpec) ([]int, error) {
	if err := validateInstance(cams, objects); err != nil {
		return nil, err
	}
	uncovered := make(map[int]bool, len(objects))
	coveredBy := make([][]int, len(cams))
	for i := range objects {
		o := &objects[i]
		uncovered[o.ID] = true
		for _, c := range o.Coverage {
			coveredBy[c] = append(coveredBy[c], o.ID)
		}
	}

	var chosen []int
	used := make([]bool, len(cams))
	for len(uncovered) > 0 {
		bestCam, bestGain := -1, 0
		for c := range cams {
			if used[c] {
				continue
			}
			gain := 0
			for _, id := range coveredBy[c] {
				if uncovered[id] {
					gain++
				}
			}
			if gain == 0 {
				continue
			}
			better := gain > bestGain
			if gain == bestGain && bestCam >= 0 {
				if cams[c].Profile.FullFrame < cams[bestCam].Profile.FullFrame {
					better = true
				}
			}
			if better {
				bestCam, bestGain = c, gain
			}
		}
		if bestCam == -1 {
			return nil, fmt.Errorf("core: %d objects not coverable by any camera", len(uncovered))
		}
		used[bestCam] = true
		chosen = append(chosen, bestCam)
		for _, id := range coveredBy[bestCam] {
			delete(uncovered, id)
		}
	}
	return chosen, nil
}
