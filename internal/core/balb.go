package core

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// batchState tracks a camera's open (incomplete) batches during the
// central-stage sweep: per size, how many regions the last batch holds.
type batchState struct {
	// inLast maps size -> regions in the most recent batch (0 < v <=
	// limit means the batch exists; v == limit means it is complete).
	inLast map[int]int
}

// CentralOptions tunes the central-stage algorithm.
type CentralOptions struct {
	// DisableBatching makes BALB ignore incomplete batches and charge one
	// batch per object — the batch-awareness ablation. The assignment
	// then degenerates to pure latency balancing.
	DisableBatching bool
}

// Central runs the central-stage BALB algorithm (Algorithm 1): a
// single-pass greedy assignment that considers objects in non-decreasing
// coverage-set size (least scheduling flexibility first), packs objects
// into incomplete same-size batches when possible (choosing the camera
// with the largest relative batch capacity), and otherwise opens a new
// batch on the camera with the minimum post-assignment latency.
//
// Complexity: O(N log N + M N) for N objects and M cameras.
func Central(cams []CameraSpec, objects []ObjectSpec, opts CentralOptions) (*Solution, error) {
	if err := validateInstance(cams, objects); err != nil {
		return nil, err
	}

	// L_i := t_i^full (line 1).
	lat := make([]time.Duration, len(cams))
	for i, c := range cams {
		lat[i] = c.Profile.FullFrame
	}
	batches := make([]batchState, len(cams))
	for i := range batches {
		batches[i] = batchState{inLast: make(map[int]int)}
	}

	// Reindex objects by non-decreasing |C_j|, ties in favour of larger
	// target size (line 2); final tie-break on ID keeps runs
	// deterministic.
	order := make([]int, len(objects))
	for i := range order {
		order[i] = i
	}
	maxSize := func(o *ObjectSpec) int {
		m := 0
		for _, c := range o.Coverage {
			if s := o.Size[c]; s > m {
				m = s
			}
		}
		return m
	}
	sort.SliceStable(order, func(a, b int) bool {
		oa, ob := &objects[order[a]], &objects[order[b]]
		if len(oa.Coverage) != len(ob.Coverage) {
			return len(oa.Coverage) < len(ob.Coverage)
		}
		sa, sb := maxSize(oa), maxSize(ob)
		if sa != sb {
			return sa > sb
		}
		return oa.ID < ob.ID
	})

	assign := make(Assignment, len(objects))
	for _, oi := range order {
		o := &objects[oi]

		// C'_j: cameras in the coverage set with an incomplete batch of
		// this object's target size (line 4).
		bestCam := -1
		if !opts.DisableBatching {
			bestRel := -1.0
			for _, c := range o.Coverage {
				size := o.Size[c]
				limit, err := cams[c].Profile.BatchLimitFor(size)
				if err != nil {
					return nil, fmt.Errorf("core: central: %w", err)
				}
				in := batches[c].inLast[size]
				if in == 0 || in >= limit {
					continue // no batch open, or batch complete
				}
				// Relative capacity of the incomplete batch (Definition
				// 4, normalized by the limit so heterogeneous batch
				// limits compare fairly). Ties break toward the less
				// loaded camera, then the lower index.
				rel := float64(limit-in) / float64(limit)
				if rel > bestRel || (rel == bestRel && bestCam >= 0 && lat[c] < lat[bestCam]) {
					bestRel = rel
					bestCam = c
				}
			}
		}

		if bestCam >= 0 {
			// Join the incomplete batch (lines 5-8): latency is already
			// charged for that batch.
			assign[o.ID] = bestCam
			batches[bestCam].inLast[o.Size[bestCam]]++
			continue
		}

		// Open a new batch on the camera minimizing L_i + t_i^{s_ij}
		// (lines 9-12).
		var bestLat time.Duration
		for _, c := range o.Coverage {
			size := o.Size[c]
			t, err := cams[c].Profile.BatchLatencyFor(size)
			if err != nil {
				return nil, fmt.Errorf("core: central: %w", err)
			}
			cand := lat[c] + t
			if bestCam == -1 || cand < bestLat || (cand == bestLat && c < bestCam) {
				bestCam = c
				bestLat = cand
			}
		}
		size := o.Size[bestCam]
		t, err := cams[bestCam].Profile.BatchLatencyFor(size)
		if err != nil {
			return nil, fmt.Errorf("core: central: %w", err)
		}
		assign[o.ID] = bestCam
		lat[bestCam] += t
		batches[bestCam].inLast[size] = 1
		if opts.DisableBatching {
			// Keep the batch marked complete so nothing ever joins it.
			batches[bestCam].inLast[size] = 0
		}
	}

	return &Solution{
		Assign:    assign,
		Latencies: lat,
		Priority:  priorityFromLatencies(lat),
	}, nil
}

// ErrEmptyPriority is returned by NewDistributedPolicy for an empty
// priority order: a policy over zero cameras cannot answer any
// ownership question.
var ErrEmptyPriority = errors.New("core: empty priority order")

// DistributedPolicy is the per-horizon state each camera needs to make
// the distributed-stage decisions with zero communication: the fixed
// camera priority (from the central stage), the per-cell coverage
// sets, and — under camera faults — the shared liveness mask every
// camera consults identically so failover needs no communication
// either.
type DistributedPolicy struct {
	// Priority lists cameras highest-priority first (ascending central-
	// stage latency).
	Priority []int
	// rank[c] is camera c's position in Priority (0 = highest).
	rank []int
	// dead[c] marks camera c dead: Owner and ShouldTrack skip it, so
	// the next-priority covering camera takes over its objects
	// (docs/FAULTS.md, "Data-plane failure model"). nil = all alive.
	dead []bool
}

// NewDistributedPolicy builds the policy from a camera priority order
// (e.g. Solution.Priority). The order must be a permutation of 0..M-1;
// an empty order returns ErrEmptyPriority.
func NewDistributedPolicy(priority []int) (*DistributedPolicy, error) {
	if len(priority) == 0 {
		return nil, ErrEmptyPriority
	}
	rank := make([]int, len(priority))
	for i := range rank {
		rank[i] = -1
	}
	for pos, cam := range priority {
		if cam < 0 || cam >= len(priority) {
			return nil, fmt.Errorf("core: priority entry %d out of range", cam)
		}
		if rank[cam] != -1 {
			return nil, fmt.Errorf("core: camera %d appears twice in priority", cam)
		}
		rank[cam] = pos
	}
	return &DistributedPolicy{Priority: append([]int(nil), priority...), rank: rank}, nil
}

// NewScopedPolicy builds a policy over a camera *subset*: priority
// lists distinct global camera indices (a shard's roster) from highest
// to lowest priority; cameras outside the roster are unknown — Owner
// and ShouldTrack skip them, exactly as they skip out-of-range
// indices. This is the per-shard half of sharded ownership: a camera
// node handed a shard-scoped Assignment builds one of these from
// (Assignment.Priority), and NewShardedPolicy composes one per shard.
// An empty priority returns ErrEmptyPriority.
func NewScopedPolicy(priority []int) (*DistributedPolicy, error) {
	if len(priority) == 0 {
		return nil, ErrEmptyPriority
	}
	maxCam := 0
	for _, cam := range priority {
		if cam < 0 {
			return nil, fmt.Errorf("core: priority entry %d out of range", cam)
		}
		if cam > maxCam {
			maxCam = cam
		}
	}
	rank := make([]int, maxCam+1)
	for i := range rank {
		rank[i] = -1
	}
	for pos, cam := range priority {
		if rank[cam] != -1 {
			return nil, fmt.Errorf("core: camera %d appears twice in priority", cam)
		}
		rank[cam] = pos
	}
	return &DistributedPolicy{Priority: append([]int(nil), priority...), rank: rank}, nil
}

// SetDead installs the shared liveness mask: dead[c] == true removes
// camera c from every subsequent Owner/ShouldTrack decision, so the
// next-priority covering camera takes over its objects. A nil or empty
// mask clears all dead marks. The mask is copied; extra entries beyond
// the roster are ignored. Not safe to call concurrently with
// Owner/ShouldTrack — callers update it in the sequential section
// between frames.
func (p *DistributedPolicy) SetDead(dead []bool) {
	any := false
	for _, d := range dead {
		any = any || d
	}
	if !any {
		p.dead = nil
		return
	}
	if len(p.dead) != len(p.rank) {
		p.dead = make([]bool, len(p.rank))
	}
	copy(p.dead, dead)
	for i := len(dead); i < len(p.dead); i++ {
		p.dead[i] = false
	}
}

// Dead reports whether cam is marked dead by SetDead. Out-of-range
// cameras are not dead (they are simply unknown).
func (p *DistributedPolicy) Dead(cam int) bool {
	return p.dead != nil && cam >= 0 && cam < len(p.dead) && p.dead[cam]
}

// Owner returns the camera responsible for a new object whose coverage
// set is cover: the highest-priority *live* camera that can see it. The
// boolean is false — with camera 0 as a dummy value — when the coverage
// set is empty, contains only out-of-range cameras, or every covering
// camera is dead: the object is orphaned and no camera should track it.
func (p *DistributedPolicy) Owner(cover []int) (int, bool) {
	best := -1
	for _, c := range cover {
		if c < 0 || c >= len(p.rank) || p.rank[c] < 0 {
			continue // out of range, or outside a scoped policy's roster
		}
		if p.Dead(c) {
			continue
		}
		if best == -1 || p.rank[c] < p.rank[best] {
			best = c
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// ShouldTrack reports whether camera cam must start tracking an object
// with the given coverage set — i.e. cam is the highest-priority camera
// seeing it. Every camera evaluates this identically from shared state,
// which is what makes the stage communication-free.
func (p *DistributedPolicy) ShouldTrack(cam int, cover []int) bool {
	owner, ok := p.Owner(cover)
	return ok && owner == cam
}

// Rank returns cam's priority rank (0 = highest) or an error for an
// unknown camera.
func (p *DistributedPolicy) Rank(cam int) (int, error) {
	if cam < 0 || cam >= len(p.rank) {
		return 0, fmt.Errorf("core: camera %d out of range", cam)
	}
	return p.rank[cam], nil
}
