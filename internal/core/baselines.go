package core

import (
	"fmt"
	"time"
)

// IndependentLatencies computes per-camera latencies when every camera
// independently tracks everything it sees (the BALB-Ind baseline: slicing
// and batching but no cross-camera workload sharing). Objects in
// overlapped regions are inspected redundantly by every covering camera.
func IndependentLatencies(cams []CameraSpec, objects []ObjectSpec, includeFull bool) ([]time.Duration, error) {
	if err := validateInstance(cams, objects); err != nil {
		return nil, err
	}
	counts := make([]map[int]int, len(cams))
	for i := range counts {
		counts[i] = make(map[int]int)
	}
	for i := range objects {
		o := &objects[i]
		for _, c := range o.Coverage {
			counts[c][o.Size[c]]++
		}
	}
	out := make([]time.Duration, len(cams))
	for i, cam := range cams {
		lat, err := scheduledLatency(counts[i], cam)
		if err != nil {
			return nil, err
		}
		out[i] = lat
		if includeFull {
			out[i] += cam.Profile.FullFrame
		}
	}
	return out, nil
}

func scheduledLatency(counts map[int]int, cam CameraSpec) (time.Duration, error) {
	var total time.Duration
	for size, n := range counts {
		if n <= 0 {
			continue
		}
		limit, err := cam.Profile.BatchLimitFor(size)
		if err != nil {
			return 0, fmt.Errorf("core: camera %d: %w", cam.Index, err)
		}
		t, err := cam.Profile.BatchLatencyFor(size)
		if err != nil {
			return 0, fmt.Errorf("core: camera %d: %w", cam.Index, err)
		}
		batches := (n + limit - 1) / limit
		total += t * time.Duration(batches)
	}
	return total, nil
}

// CapacityWeights derives the static-partitioning capacity weight of each
// camera as the inverse of its full-frame inspection time, normalized to
// sum to 1 — faster hardware takes a proportionally larger share of the
// overlap region.
func CapacityWeights(cams []CameraSpec) ([]float64, error) {
	if len(cams) == 0 {
		return nil, fmt.Errorf("core: no cameras")
	}
	weights := make([]float64, len(cams))
	var sum float64
	for i, c := range cams {
		if c.Profile == nil || c.Profile.FullFrame <= 0 {
			return nil, fmt.Errorf("core: camera %d has no usable profile", i)
		}
		weights[i] = 1 / float64(c.Profile.FullFrame)
		sum += weights[i]
	}
	for i := range weights {
		weights[i] /= sum
	}
	return weights, nil
}

// WeightedPartition deterministically assigns each unit (a cell or an
// object, described by its coverage set) to one covering camera,
// splitting units that share a coverage signature proportionally to the
// capacity weights. This is the offline rule of the Static Partitioning
// (SP) baseline: "a fixed policy that partitions the overlap regions
// among cameras in offline according to their processing power".
//
// The split uses smooth weighted round-robin per coverage signature: each
// unit goes to the covering camera with the largest accumulated deficit,
// which converges to the weight proportions without randomness.
func WeightedPartition(units [][]int, weights []float64) ([]int, error) {
	owners := make([]int, len(units))
	type sigState struct {
		deficit map[int]float64
	}
	states := make(map[string]*sigState)
	for ui, cover := range units {
		if len(cover) == 0 {
			return nil, fmt.Errorf("core: unit %d has empty coverage", ui)
		}
		var localSum float64
		for _, c := range cover {
			if c < 0 || c >= len(weights) {
				return nil, fmt.Errorf("core: unit %d covers camera %d out of range", ui, c)
			}
			localSum += weights[c]
		}
		if localSum <= 0 {
			return nil, fmt.Errorf("core: unit %d has zero total weight", ui)
		}
		key := sigKey(cover)
		st, ok := states[key]
		if !ok {
			st = &sigState{deficit: make(map[int]float64)}
			states[key] = st
		}
		best := -1
		for _, c := range cover {
			st.deficit[c] += weights[c] / localSum
			if best == -1 || st.deficit[c] > st.deficit[best] ||
				(st.deficit[c] == st.deficit[best] && c < best) {
				best = c
			}
		}
		st.deficit[best]--
		owners[ui] = best
	}
	return owners, nil
}

func sigKey(cover []int) string {
	// Coverage sets are short (<= #cameras); a simple byte encoding is
	// fine and avoids sorting copies (callers pass sorted sets, but the
	// key must not depend on order, so sort defensively if needed).
	buf := make([]byte, 0, len(cover)*2)
	sorted := true
	for i := 1; i < len(cover); i++ {
		if cover[i] < cover[i-1] {
			sorted = false
			break
		}
	}
	cc := cover
	if !sorted {
		cc = append([]int(nil), cover...)
		insertionSort(cc)
	}
	for _, c := range cc {
		buf = append(buf, byte(c>>8), byte(c))
	}
	return string(buf)
}

func insertionSort(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// StaticPartition computes the SP baseline assignment for a set of
// objects: each object goes to the camera its coverage signature's
// weighted split dictates, regardless of current load. It returns a
// Solution so SP plugs into the same evaluation path as BALB.
func StaticPartition(cams []CameraSpec, objects []ObjectSpec) (*Solution, error) {
	if err := validateInstance(cams, objects); err != nil {
		return nil, err
	}
	weights, err := CapacityWeights(cams)
	if err != nil {
		return nil, err
	}
	units := make([][]int, len(objects))
	for i := range objects {
		units[i] = objects[i].Coverage
	}
	owners, err := WeightedPartition(units, weights)
	if err != nil {
		return nil, err
	}
	assign := make(Assignment, len(objects))
	for i := range objects {
		assign[objects[i].ID] = owners[i]
	}
	lat, err := CameraLatencies(cams, objects, assign, true)
	if err != nil {
		return nil, err
	}
	return &Solution{Assign: assign, Latencies: lat, Priority: priorityFromLatencies(lat)}, nil
}
