package core

import "fmt"

// Policy is the distributed-stage decision surface: who owns a new
// object given its coverage set, whether a particular camera should
// start tracking it, and the shared liveness mask behind both answers.
// *DistributedPolicy implements it for a single global priority order;
// *ShardedPolicy implements it by composing one shard-scoped policy
// per overlap group. Every camera evaluating the same Policy from the
// same state reaches the same decision — the communication-free
// property the distributed stage depends on.
type Policy interface {
	// Owner returns the camera responsible for a new object with the
	// given coverage set, or (0, false) when no live known camera
	// covers it.
	Owner(cover []int) (int, bool)
	// ShouldTrack reports whether cam is the owner for the coverage
	// set.
	ShouldTrack(cam int, cover []int) bool
	// Dead reports whether cam is marked dead by the liveness mask.
	Dead(cam int) bool
	// SetDead installs the shared liveness mask (nil/all-false
	// clears). Not safe to call concurrently with the query methods.
	SetDead(dead []bool)
}

var (
	_ Policy = (*DistributedPolicy)(nil)
	_ Policy = (*ShardedPolicy)(nil)
)

// ShardedPolicy composes per-shard scoped policies into one fleet-wide
// ownership rule. Each shard runs its own central stage and publishes
// a priority order over only its own cameras; cameras resolve
// ownership of an object by first picking the *owning shard* — the
// lowest-ID shard with a live camera covering the object — and then
// delegating to that shard's scoped policy. The rule is deterministic
// and needs no cross-shard communication: every camera knows the full
// shard map and every shard's priority order for the current horizon.
//
// For an object covered by a single shard this reduces exactly to
// that shard's scoped decision, which (because a shard's priority is
// the restriction of the global priority when shards do not interact)
// is what makes sharded and global runs bit-identical on scenarios
// with zero cross-shard traffic. For a boundary object seen by two
// shards, the lower-ID shard owns it and the higher-ID shard demotes
// its local boxes to shadows — the hand-off rule in
// cluster.ShardedScheduler.
type ShardedPolicy struct {
	shardOf []int
	shards  []*DistributedPolicy
}

// NewShardedPolicy builds the composite policy. shardOf maps each
// global camera index to its shard; priorities[s] is shard s's
// priority order listing *global* camera indices, highest first.
// Every camera must appear exactly once, in its own shard's order.
func NewShardedPolicy(shardOf []int, priorities [][]int) (*ShardedPolicy, error) {
	if len(shardOf) == 0 {
		return nil, ErrEmptyPriority
	}
	shards := make([]*DistributedPolicy, len(priorities))
	counted := 0
	for s, prio := range priorities {
		for _, cam := range prio {
			if cam < 0 || cam >= len(shardOf) {
				return nil, fmt.Errorf("core: shard %d priority entry %d out of range", s, cam)
			}
			if shardOf[cam] != s {
				return nil, fmt.Errorf("core: camera %d listed in shard %d but mapped to shard %d", cam, s, shardOf[cam])
			}
		}
		p, err := NewScopedPolicy(prio)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, err)
		}
		shards[s] = p
		counted += len(prio)
	}
	if counted != len(shardOf) {
		return nil, fmt.Errorf("core: shard priorities cover %d cameras, want %d", counted, len(shardOf))
	}
	for cam, s := range shardOf {
		if s < 0 || s >= len(shards) {
			return nil, fmt.Errorf("core: camera %d mapped to unknown shard %d", cam, s)
		}
	}
	return &ShardedPolicy{
		shardOf: append([]int(nil), shardOf...),
		shards:  shards,
	}, nil
}

// Owner picks the owning shard — the lowest-ID shard with a live
// camera in cover — and returns that shard's scoped owner. (0, false)
// means the object is orphaned: no live known camera covers it in any
// shard.
func (p *ShardedPolicy) Owner(cover []int) (int, bool) {
	owning := -1
	for _, c := range cover {
		if c < 0 || c >= len(p.shardOf) {
			continue
		}
		s := p.shardOf[c]
		if p.shards[s].Dead(c) {
			continue
		}
		if owning == -1 || s < owning {
			owning = s
		}
	}
	if owning < 0 {
		return 0, false
	}
	return p.shards[owning].Owner(cover)
}

// ShouldTrack reports whether cam is the fleet-wide owner for cover.
func (p *ShardedPolicy) ShouldTrack(cam int, cover []int) bool {
	owner, ok := p.Owner(cover)
	return ok && owner == cam
}

// Dead reports whether cam is marked dead in its shard's policy.
// Out-of-range cameras are not dead (they are simply unknown).
func (p *ShardedPolicy) Dead(cam int) bool {
	if cam < 0 || cam >= len(p.shardOf) {
		return false
	}
	return p.shards[p.shardOf[cam]].Dead(cam)
}

// SetDead installs the fleet-wide liveness mask, fanned out to every
// shard's scoped policy (each ignores entries outside its roster).
func (p *ShardedPolicy) SetDead(dead []bool) {
	for _, sp := range p.shards {
		sp.SetDead(dead)
	}
}

// Shard returns camera cam's shard ID, or an error for an unknown
// camera.
func (p *ShardedPolicy) Shard(cam int) (int, error) {
	if cam < 0 || cam >= len(p.shardOf) {
		return 0, fmt.Errorf("core: camera %d out of range", cam)
	}
	return p.shardOf[cam], nil
}
