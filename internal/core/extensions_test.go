package core

import (
	"math/rand"
	"testing"
	"time"

	"mvs/internal/profile"
)

func TestCentralRedundantDegeneratesToCentral(t *testing.T) {
	cs := cams(profile.JetsonXavier, profile.JetsonNano)
	objects := []ObjectSpec{obj(1, 64, 0, 1), obj(2, 128, 0)}
	base, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sol, extra, err := CentralRedundant(cs, objects, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(extra) != 0 {
		t.Fatalf("extra = %v", extra)
	}
	if sol.System() != base.System() {
		t.Fatalf("system = %v want %v", sol.System(), base.System())
	}
}

func TestCentralRedundantAddsSecondTracker(t *testing.T) {
	// Two idle Xaviers, one shared object: redundancy 2 with generous
	// slack should add the second camera.
	cs := cams(profile.JetsonXavier, profile.JetsonXavier)
	objects := []ObjectSpec{obj(1, 128, 0, 1)}
	sol, extra, err := CentralRedundant(cs, objects, 2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(extra[1]) != 1 {
		t.Fatalf("extra = %v", extra)
	}
	if extra[1][0] == sol.Assign[1] {
		t.Fatal("extra tracker duplicates the primary")
	}
	// Both cameras now carry one batch.
	p := cs[0].Profile
	for i, l := range sol.Latencies {
		if l != p.FullFrame+p.BatchLatency[128] {
			t.Fatalf("camera %d latency %v", i, l)
		}
	}
}

func TestCentralRedundantRespectsBudget(t *testing.T) {
	// slack 1.0: only free additions (incomplete batches) are allowed.
	// A single object on camera 0 would need a new batch on camera 1, so
	// nothing is added.
	cs := cams(profile.JetsonXavier, profile.JetsonNano)
	objects := []ObjectSpec{obj(1, 256, 0, 1)}
	sol, extra, err := CentralRedundant(cs, objects, 2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Primary lands on the Xavier; the Nano addition would cost a 256
	// batch (~50ms) pushing it over its own full-frame-only latency...
	// but the budget is max-latency-bound: Nano full frame (470ms) is
	// already the system latency, so a <=0-cost addition is fine and a
	// new Nano batch exceeding 470ms is not possible here. Verify the
	// invariant directly instead of the specific outcome:
	base, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.System() > base.System() {
		t.Fatalf("slack 1.0 raised system latency: %v > %v", sol.System(), base.System())
	}
	_ = extra
}

func TestCentralRedundantCapsAtCoverage(t *testing.T) {
	cs := cams(profile.JetsonXavier, profile.JetsonXavier)
	objects := []ObjectSpec{obj(1, 64, 0, 1)}
	_, extra, err := CentralRedundant(cs, objects, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage is 2 cameras: at most 1 extra.
	if len(extra[1]) > 1 {
		t.Fatalf("extra = %v", extra)
	}
}

func TestCentralQualityAwareLambdaZeroMatchesLatencyFocus(t *testing.T) {
	cs := cams(profile.JetsonNano, profile.JetsonXavier)
	objects := []ObjectSpec{obj(1, 256, 0, 1)}
	sol, err := CentralQualityAware(cs, objects, QualityOptions{Lambda: 0})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[1] != 1 { // Xavier: cheaper
		t.Fatalf("assign = %v", sol.Assign)
	}
}

func TestCentralQualityAwarePrefersLargerView(t *testing.T) {
	// The object appears at 512 on the slow Nano and 64 on the fast
	// Xavier. Pure latency picks the Xavier; pure quality picks the
	// Nano.
	cs := cams(profile.JetsonNano, profile.JetsonXavier)
	o := ObjectSpec{ID: 1, Coverage: []int{0, 1}, Size: map[int]int{0: 512, 1: 64}}
	lat0, err := CentralQualityAware(cs, []ObjectSpec{o}, QualityOptions{Lambda: 0})
	if err != nil {
		t.Fatal(err)
	}
	if lat0.Assign[1] != 1 {
		t.Fatalf("lambda 0 assign = %v", lat0.Assign)
	}
	qual, err := CentralQualityAware(cs, []ObjectSpec{o}, QualityOptions{Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if qual.Assign[1] != 0 {
		t.Fatalf("lambda 1 assign = %v", qual.Assign)
	}
	mean0, err := MeanAssignedSize([]ObjectSpec{o}, lat0.Assign)
	if err != nil {
		t.Fatal(err)
	}
	mean1, err := MeanAssignedSize([]ObjectSpec{o}, qual.Assign)
	if err != nil {
		t.Fatal(err)
	}
	if mean1 <= mean0 {
		t.Fatalf("quality lambda did not raise mean size: %v vs %v", mean1, mean0)
	}
}

func TestCentralQualityAwareTradeoffCurve(t *testing.T) {
	// Across random instances, raising lambda must not decrease mean
	// assigned size and must not decrease system latency below the pure
	// latency solution.
	rng := rand.New(rand.NewSource(12))
	sizes := []int{64, 128, 256, 512}
	cs := cams(profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier)
	var objects []ObjectSpec
	for i := 0; i < 25; i++ {
		k := 1 + rng.Intn(3)
		perm := rng.Perm(3)[:k]
		sz := make(map[int]int, k)
		for _, c := range perm {
			sz[c] = sizes[rng.Intn(4)]
		}
		objects = append(objects, ObjectSpec{ID: i + 1, Coverage: perm, Size: sz})
	}
	var prevSize float64 = -1
	for _, lambda := range []float64{0, 0.5, 1} {
		sol, err := CentralQualityAware(cs, objects, QualityOptions{Lambda: lambda})
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckFeasible(objects, sol.Assign); err != nil {
			t.Fatal(err)
		}
		mean, err := MeanAssignedSize(objects, sol.Assign)
		if err != nil {
			t.Fatal(err)
		}
		if mean < prevSize-1e-9 {
			t.Fatalf("mean size fell from %v to %v at lambda %v", prevSize, mean, lambda)
		}
		prevSize = mean
	}
}

func TestCentralQualityAwareValidation(t *testing.T) {
	cs := cams(profile.JetsonXavier)
	if _, err := CentralQualityAware(cs, nil, QualityOptions{Lambda: -0.1}); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := CentralQualityAware(cs, nil, QualityOptions{Lambda: 1.1}); err == nil {
		t.Fatal("lambda > 1 accepted")
	}
}

func TestMeanAssignedSize(t *testing.T) {
	objects := []ObjectSpec{obj(1, 64, 0), obj(2, 256, 0)}
	mean, err := MeanAssignedSize(objects, Assignment{1: 0, 2: 0})
	if err != nil || mean != 160 {
		t.Fatalf("mean = %v, %v", mean, err)
	}
	if _, err := MeanAssignedSize(objects, Assignment{1: 0}); err == nil {
		t.Fatal("unassigned accepted")
	}
	if m, err := MeanAssignedSize(nil, nil); err != nil || m != 0 {
		t.Fatalf("empty = %v, %v", m, err)
	}
}

func TestMinTotalLoadBeatsBalanceOnSum(t *testing.T) {
	// Everything visible everywhere: MinTotalLoad should stack objects on
	// the cheapest device and never exceed BALB's total.
	cs := cams(profile.JetsonNano, profile.JetsonXavier)
	var objects []ObjectSpec
	for i := 0; i < 20; i++ {
		objects = append(objects, obj(i+1, 128, 0, 1))
	}
	minSum, err := MinTotalLoad(cs, objects)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFeasible(objects, minSum.Assign); err != nil {
		t.Fatal(err)
	}
	balb, err := Central(cs, objects, CentralOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if TotalLoad(minSum.Latencies) > TotalLoad(balb.Latencies) {
		t.Fatalf("MinTotalLoad sum %v above BALB %v",
			TotalLoad(minSum.Latencies), TotalLoad(balb.Latencies))
	}
	// And everything should be on the Xavier (cheapest marginal).
	for id, cam := range minSum.Assign {
		if cam != 1 {
			t.Fatalf("object %d on camera %d", id, cam)
		}
	}
}

func TestTotalLoad(t *testing.T) {
	if TotalLoad(nil) != 0 {
		t.Fatal("empty != 0")
	}
	if got := TotalLoad([]time.Duration{2, 3}); got != 5 {
		t.Fatalf("sum = %v", got)
	}
}

func TestMinUploadCoverGreedy(t *testing.T) {
	cs := cams(profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier)
	objects := []ObjectSpec{
		obj(1, 64, 0, 2),
		obj(2, 64, 1, 2),
		obj(3, 64, 2),
	}
	chosen, err := MinUploadCover(cs, objects)
	if err != nil {
		t.Fatal(err)
	}
	// Camera 2 covers everything alone.
	if len(chosen) != 1 || chosen[0] != 2 {
		t.Fatalf("chosen = %v", chosen)
	}
}

func TestMinUploadCoverNeedsSeveral(t *testing.T) {
	cs := cams(profile.JetsonNano, profile.JetsonXavier)
	objects := []ObjectSpec{obj(1, 64, 0), obj(2, 64, 1)}
	chosen, err := MinUploadCover(cs, objects)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 2 {
		t.Fatalf("chosen = %v", chosen)
	}
}

func TestMinUploadCoverTieBreaksByCapacity(t *testing.T) {
	// Both cameras cover the single object; the faster one wins the tie.
	cs := cams(profile.JetsonNano, profile.JetsonXavier)
	objects := []ObjectSpec{obj(1, 64, 0, 1)}
	chosen, err := MinUploadCover(cs, objects)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("chosen = %v", chosen)
	}
}

func TestMinUploadCoverEmpty(t *testing.T) {
	cs := cams(profile.JetsonXavier)
	chosen, err := MinUploadCover(cs, nil)
	if err != nil || len(chosen) != 0 {
		t.Fatalf("empty = %v, %v", chosen, err)
	}
}

func TestMinUploadCoverCoversEverythingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		m := 2 + rng.Intn(4)
		classes := []profile.DeviceClass{profile.JetsonNano, profile.JetsonTX2, profile.JetsonXavier}
		cs := make([]CameraSpec, m)
		for i := range cs {
			cs[i] = CameraSpec{Index: i, Profile: profile.Derived(classes[rng.Intn(3)])}
		}
		n := 1 + rng.Intn(15)
		objects := make([]ObjectSpec, n)
		for i := range objects {
			k := 1 + rng.Intn(m)
			perm := rng.Perm(m)[:k]
			sz := make(map[int]int, k)
			for _, c := range perm {
				sz[c] = 64
			}
			objects[i] = ObjectSpec{ID: i + 1, Coverage: perm, Size: sz}
		}
		chosen, err := MinUploadCover(cs, objects)
		if err != nil {
			t.Fatal(err)
		}
		set := make(map[int]bool, len(chosen))
		for _, c := range chosen {
			if set[c] {
				t.Fatalf("camera %d chosen twice", c)
			}
			set[c] = true
		}
		for i := range objects {
			covered := false
			for _, c := range objects[i].Coverage {
				if set[c] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: object %d uncovered by %v", trial, objects[i].ID, chosen)
			}
		}
	}
}
