package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mvs/internal/assoc"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/scene"
	"mvs/internal/workload"
)

// recordSmallRun records a small sealed S2 run (four frame segments)
// and returns everything a recovery test needs to damage it and
// re-drive the recovered prefix.
func recordSmallRun(t *testing.T) (dir string, snaps []byte, replayPrefix func(t *testing.T) []byte) {
	t.Helper()
	const (
		scenario = "S2"
		seed     = int64(9)
		frames   = 120
	)
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := s.World.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		t.Fatal(err)
	}
	roster, err := scene.MarshalCameras(test.Cameras)
	if err != nil {
		t.Fatal(err)
	}
	dir = filepath.Join(t.TempDir(), "run")
	w, err := Create(dir, Manifest{
		Scenario: scenario, Seed: seed, TraceFrames: frames,
		Mode: pipeline.BALB.String(), Horizon: 10,
		SegmentSize: 16, Cameras: roster,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.NewConfig(pipeline.BALB, seed)
	cfg.Obs.Sink = w
	eng, err := pipeline.NewEngine(w.Tee(pipeline.NewTraceSource(test)), s.Profiles(), model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps, err = run.SnapshotsRaw()
	if err != nil {
		t.Fatal(err)
	}

	// replayPrefix re-drives whatever the (possibly recovered) store now
	// holds under the recorded configuration and returns the replay's
	// snapshot JSONL — the mvreplay -verify comparison.
	replayPrefix = func(t *testing.T) []byte {
		t.Helper()
		run, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		src, err := run.Source()
		if err != nil {
			t.Fatal(err)
		}
		var log bytes.Buffer
		cfg2 := pipeline.NewConfig(pipeline.BALB, seed)
		cfg2.Obs.Sink = metrics.NewJSONLSink(&log)
		eng, err := pipeline.NewEngine(src, s.Profiles(), model, cfg2)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return log.Bytes()
	}
	return dir, snaps, replayPrefix
}

// prefixLines returns the first n lines of a JSONL blob.
func prefixLines(data []byte, n int) []byte {
	lines := bytes.SplitAfter(data, []byte("\n"))
	var out []byte
	for i := 0; i < n && i < len(lines); i++ {
		out = append(out, lines[i]...)
	}
	return out
}

// TestRecoverTornTail is the crash-safety acceptance test: a run whose
// writer was killed mid-record — torn tail on the last frame segment,
// torn tail on the snapshot log, no frame index — recovers to a
// consistent prefix that replays byte-identically against the recovered
// snapshot log.
func TestRecoverTornTail(t *testing.T) {
	dir, snaps, replayPrefix := recordSmallRun(t)

	// Simulate the SIGKILL: the index never hit disk, the last segment
	// and the snapshot log both end mid-record.
	if err := os.Remove(filepath.Join(dir, framesDir, indexFile)); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, framesDir, "seg-000003.jsonl")
	seg, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(segPath, seg[:len(seg)-37], 0o644); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapshotsFile)
	if err := os.WriteFile(snapPath, prefixLines(mustRead(t, snapPath), 55)[:len(prefixLines(mustRead(t, snapPath), 55))-11], 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Frames == 0 || rec.Frames != rec.Snapshots {
		t.Fatalf("recovery did not align frames and snapshots: %+v", rec)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatalf("recovery truncated nothing despite torn tails: %+v", rec)
	}
	// 54 clean snapshot lines survive the torn 55th; the frame log holds
	// 16*3 = 48.. 63 frames, so the common prefix is at most 54.
	if rec.Frames > 54 {
		t.Fatalf("recovered %d frames from a 54-snapshot log", rec.Frames)
	}

	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Manifest().Recovered {
		t.Fatal("recovered manifest not marked Recovered")
	}
	got, err := run.SnapshotsRaw()
	if err != nil {
		t.Fatal(err)
	}
	want := prefixLines(snaps, rec.Frames)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered snapshot log is not the recorded %d-line prefix", rec.Frames)
	}
	if replayed := replayPrefix(t); !bytes.Equal(replayed, got) {
		t.Fatalf("recovered prefix does not replay byte-identically (%d vs %d bytes)",
			len(replayed), len(got))
	}
}

// TestRecoverChecksumCorruption pins the CRC path: one flipped byte in
// a middle segment ends the recoverable chain at the record before it —
// later segments cannot follow the gap — and the survivors still
// replay.
func TestRecoverChecksumCorruption(t *testing.T) {
	dir, snaps, replayPrefix := recordSmallRun(t)
	segPath := filepath.Join(dir, framesDir, "seg-000001.jsonl")
	seg := mustRead(t, segPath)
	lines := bytes.SplitAfter(seg, []byte("\n"))
	// Flip one JSON byte inside the 6th record, leaving its CRC stale.
	line := lines[5]
	line[len(line)/2] ^= 0x01
	if err := os.WriteFile(segPath, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Segment 0 (16 frames) + 5 clean records of segment 1.
	if rec.Frames != 21 {
		t.Fatalf("recovered %d frames, want 21 (16 + 5 before the corrupt record)", rec.Frames)
	}
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.SnapshotsRaw()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, prefixLines(snaps, 21)) {
		t.Fatal("recovered snapshot log is not the 21-line prefix")
	}
	if replayed := replayPrefix(t); !bytes.Equal(replayed, got) {
		t.Fatal("post-corruption recovered prefix does not replay byte-identically")
	}
}

// TestRecoverDroppedFrames covers the other alignment direction: frame
// records whose snapshots never hit disk are excluded from the index
// (they cannot be part of a byte-verifiable prefix).
func TestRecoverDroppedFrames(t *testing.T) {
	dir, _, _ := recordSmallRun(t)
	snapPath := filepath.Join(dir, snapshotsFile)
	full := mustRead(t, snapPath)
	if err := os.WriteFile(snapPath, prefixLines(full, 40), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Frames != 40 || rec.Snapshots != 40 {
		t.Fatalf("alignment: %+v, want 40/40", rec)
	}
	if rec.DroppedFrames != 20 {
		t.Fatalf("dropped %d frames, want 20 (60 recorded - 40 snapshotted)", rec.DroppedFrames)
	}
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src, err := run.Source()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := src.Next(); err != nil {
			break
		}
		n++
	}
	if n != 40 {
		t.Fatalf("recovered replay yields %d frames, want 40", n)
	}
}

// TestRecoverIdempotent: recovering a healthy sealed run (and
// re-recovering a recovered one) drops nothing new and keeps the same
// prefix.
func TestRecoverIdempotent(t *testing.T) {
	dir, snaps, _ := recordSmallRun(t)
	first, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if first.TruncatedBytes != 0 || first.DroppedFrames != 0 {
		t.Fatalf("recovering a sealed run damaged it: %+v", first)
	}
	if first.Frames != 60 || first.Snapshots != 60 {
		t.Fatalf("sealed run recovery: %+v, want 60/60", first)
	}
	second, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if *second != *first {
		t.Fatalf("second recovery diverged: %+v vs %+v", second, first)
	}
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := run.SnapshotsRaw()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, snaps) {
		t.Fatal("idempotent recovery changed the snapshot log")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParseLineVersions pins the record format: version-2 lines carry a
// crc32 prefix, version-1 lines pass through, and tampering fails.
func TestParseLineVersions(t *testing.T) {
	body := []byte(`{"a":1}`)
	line := checksumLine(body)
	got, err := parseLine(bytes.TrimSuffix(line, []byte("\n")), 2)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("v2 round-trip: %q, %v", got, err)
	}
	if _, err := parseLine(body, 1); err != nil {
		t.Fatalf("v1 passthrough: %v", err)
	}
	bad := bytes.Replace(line, []byte(`1`), []byte(`2`), 1)
	if _, err := parseLine(bytes.TrimSuffix(bad, []byte("\n")), 2); err == nil {
		t.Fatal("tampered v2 record verified")
	}
	if _, err := parseLine([]byte("short"), 2); err == nil {
		t.Fatal("v2 record without checksum prefix verified")
	}
	if !strings.Contains(string(line), " ") || line[8] != ' ' {
		t.Fatalf("v2 record format: %q", line)
	}
}
