package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"mvs/internal/geom"
	"mvs/internal/metrics"
	"mvs/internal/scene"
)

// testRoster builds a small valid roster and its wire form.
func testRoster(t *testing.T, n int) ([]*scene.Camera, []byte) {
	t.Helper()
	cams := make([]*scene.Camera, n)
	for i := range cams {
		cams[i] = &scene.Camera{
			Name: fmt.Sprintf("cam%d", i), Pos: geom.Point{X: float64(i) * 30},
			Height: 8, Pitch: 0.4, Focal: 800, ImageW: 1280, ImageH: 704, MaxRange: 60,
		}
	}
	raw, err := scene.MarshalCameras(cams)
	if err != nil {
		t.Fatal(err)
	}
	return cams, raw
}

// randomFrames builds synthetic ground truth in wire-normal form (nil
// slices where the decoder would produce nil), so a write→read round
// trip can be compared with reflect.DeepEqual.
func randomFrames(rng *rand.Rand, numCams, numFrames int) []scene.FrameTruth {
	frames := make([]scene.FrameTruth, numFrames)
	for fi := range frames {
		f := scene.FrameTruth{Index: fi, PerCamera: make([][]scene.Observation, numCams)}
		for id := 1; id <= rng.Intn(4); id++ {
			f.Objects = append(f.Objects, scene.ObjectState{
				ID: fi*10 + id, Pos: geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 20},
				Heading: rng.Float64(), Speed: 5 + rng.Float64(),
				Dims: scene.Dims{W: 1.8, L: 4.2, H: 1.5},
			})
		}
		for ci := 0; ci < numCams; ci++ {
			for _, o := range f.Objects {
				if rng.Intn(2) == 0 {
					continue
				}
				x, y := rng.Float64()*1000, rng.Float64()*500
				f.PerCamera[ci] = append(f.PerCamera[ci], scene.Observation{
					ObjectID: o.ID,
					Box:      geom.Rect{MinX: x, MinY: y, MaxX: x + 40, MaxY: y + 30},
				})
			}
		}
		frames[fi] = f
	}
	return frames
}

// TestFrameLogRoundTrip is the store's property test: random frame
// streams written through AppendFrame come back bit-identical through
// Replay, across segment sizes that land the stream on and off segment
// boundaries.
func TestFrameLogRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		numCams := 1 + rng.Intn(4)
		numFrames := 1 + rng.Intn(40)
		segSize := 1 + rng.Intn(8)
		_, roster := testRoster(t, numCams)
		frames := randomFrames(rng, numCams, numFrames)

		dir := filepath.Join(t.TempDir(), "run")
		w, err := Create(dir, Manifest{Mode: "BALB", SegmentSize: segSize, Cameras: roster})
		if err != nil {
			t.Fatal(err)
		}
		for fi := range frames {
			if err := w.AppendFrame(&frames[fi]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		run, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if run.NumFrames() != numFrames {
			t.Fatalf("trial %d: index says %d frames, wrote %d", trial, run.NumFrames(), numFrames)
		}
		src, err := run.Source()
		if err != nil {
			t.Fatal(err)
		}
		for fi := range frames {
			got, err := src.Next()
			if err != nil {
				t.Fatalf("trial %d frame %d: %v", trial, fi, err)
			}
			if !reflect.DeepEqual(&frames[fi], got) {
				t.Fatalf("trial %d (cams=%d seg=%d): frame %d diverged after round trip:\nwant %+v\ngot  %+v",
					trial, numCams, segSize, fi, frames[fi], got)
			}
		}
		if _, err := src.Next(); err != io.EOF {
			t.Fatalf("trial %d: want io.EOF after %d frames, got %v", trial, numFrames, err)
		}
	}
}

func TestCreateRefusesOverwrite(t *testing.T) {
	_, roster := testRoster(t, 2)
	dir := filepath.Join(t.TempDir(), "run")
	w, err := Create(dir, Manifest{Mode: "Full", Cameras: roster})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, Manifest{Mode: "Full", Cameras: roster}); err == nil {
		t.Fatal("Create over an existing run must refuse")
	}
	if _, err := Create(t.TempDir(), Manifest{Mode: "Full"}); err == nil {
		t.Fatal("Create without cameras must refuse")
	}
}

func TestCaptureOnlyRun(t *testing.T) {
	_, roster := testRoster(t, 2)
	dir := filepath.Join(t.TempDir(), "run")
	w, err := Create(dir, Manifest{Label: "shard0", Mode: "BALB", Scenario: "S2", Seed: 11, Cameras: roster})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent records, as sharded emitters produce them.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				w.RecordFrame(metrics.Snapshot{Source: metrics.SourcePipeline, Seq: g*25 + i})
				w.RecordRound(metrics.Round{Source: metrics.SourceScheduler, Seq: g*25 + i})
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.HasFrames() {
		t.Fatal("capture-only run claims a frame log")
	}
	if _, err := run.Source(); err == nil {
		t.Fatal("Source on a capture-only run must error")
	}
	snaps, err := run.Snapshots()
	if err != nil {
		t.Fatal(err)
	}
	rounds, err := run.Rounds()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 100 || len(rounds) != 100 {
		t.Fatalf("got %d snapshots, %d rounds, want 100 each", len(snaps), len(rounds))
	}
	if m := run.Manifest(); m.Label != "shard0" || m.Scenario != "S2" || m.Seed != 11 {
		t.Fatalf("manifest mangled: %+v", m)
	}
}

// errSource fails mid-stream; used to check Tee propagates both source
// and store errors.
type errSource struct {
	cams   []*scene.Camera
	frames []scene.FrameTruth
	i      int
	err    error
}

func (s *errSource) Cameras() []*scene.Camera { return s.cams }
func (s *errSource) Next() (*scene.FrameTruth, error) {
	if s.i >= len(s.frames) {
		return nil, s.err
	}
	f := &s.frames[s.i]
	s.i++
	return f, nil
}

func TestTeeRecordsAndPropagates(t *testing.T) {
	cams, roster := testRoster(t, 2)
	frames := randomFrames(rand.New(rand.NewSource(5)), 2, 9)
	dir := filepath.Join(t.TempDir(), "run")
	w, err := Create(dir, Manifest{Mode: "BALB", SegmentSize: 4, Cameras: roster})
	if err != nil {
		t.Fatal(err)
	}
	srcErr := errors.New("link down")
	tee := w.Tee(&errSource{cams: cams, frames: frames, err: srcErr})
	if got := tee.Cameras(); len(got) != 2 {
		t.Fatalf("tee roster has %d cameras", len(got))
	}
	n := 0
	for {
		_, err := tee.Next()
		if err != nil {
			if !errors.Is(err, srcErr) {
				t.Fatalf("tee surfaced %v, want source error", err)
			}
			break
		}
		n++
	}
	if n != len(frames) {
		t.Fatalf("tee passed %d frames, want %d", n, len(frames))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.NumFrames() != len(frames) {
		t.Fatalf("recorded %d frames, want %d", run.NumFrames(), len(frames))
	}

	// A frame whose width disagrees with the roster must fail the stream
	// through the tee (the store error path).
	w2, err := Create(filepath.Join(t.TempDir(), "run2"), Manifest{Mode: "BALB", Cameras: roster})
	if err != nil {
		t.Fatal(err)
	}
	bad := []scene.FrameTruth{{PerCamera: make([][]scene.Observation, 5)}}
	tee2 := w2.Tee(&errSource{cams: cams, frames: bad, err: io.EOF})
	if _, err := tee2.Next(); err == nil {
		t.Fatal("tee must surface the store's width check")
	}
	if err := w2.AppendFrame(&frames[0]); err == nil {
		t.Fatal("append after a sticky store error must keep failing")
	}
	w2.Close()
}

func TestAppendAfterCloseFails(t *testing.T) {
	_, roster := testRoster(t, 2)
	w, err := Create(filepath.Join(t.TempDir(), "run"), Manifest{Mode: "Full", Cameras: roster})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f := scene.FrameTruth{PerCamera: make([][]scene.Observation, 2)}
	if err := w.AppendFrame(&f); err == nil {
		t.Fatal("AppendFrame after Close must fail")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close must stay clean, got %v", err)
	}
}

func TestOpenRejectsBadRuns(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("Open on a missing directory must error")
	}
	_, roster := testRoster(t, 2)
	dir := filepath.Join(t.TempDir(), "run")
	w, err := Create(dir, Manifest{Mode: "Full", Cameras: roster})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if raw, err := run.SnapshotsRaw(); err != nil || raw != nil {
		t.Fatalf("run without snapshots: raw=%v err=%v", raw, err)
	}
	if rounds, err := run.Rounds(); err != nil || rounds != nil {
		t.Fatalf("run without rounds: %v %v", rounds, err)
	}
}

// TestReplayTruncationDetected corrupts a segment and checks the replay
// fails instead of silently ending early.
func TestReplayTruncationDetected(t *testing.T) {
	_, roster := testRoster(t, 2)
	frames := randomFrames(rand.New(rand.NewSource(8)), 2, 10)
	dir := filepath.Join(t.TempDir(), "run")
	w, err := Create(dir, Manifest{Mode: "BALB", SegmentSize: 100, Cameras: roster})
	if err != nil {
		t.Fatal(err)
	}
	for fi := range frames {
		if err := w.AppendFrame(&frames[fi]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the single segment with only its first half of the lines.
	segPath := filepath.Join(dir, "frames", "seg-000000.jsonl")
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if err := os.WriteFile(segPath, bytes.Join(lines[:5], nil), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := run.Source()
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < len(frames)+1; i++ {
		if _, lastErr = src.Next(); lastErr != nil {
			break
		}
	}
	if lastErr == nil || lastErr == io.EOF {
		t.Fatalf("truncated segment must fail the replay, got %v", lastErr)
	}
}
