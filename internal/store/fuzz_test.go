package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mvs/internal/scene"
	"mvs/internal/workload"
)

// FuzzStoreReader hammers the reader and recovery paths with arbitrary
// run-directory contents: whatever bytes land in the frame segment, the
// snapshot log, and the frame index, Open / SnapshotsRaw / Snapshots /
// Rounds / Source+drain / Recover must return data or errors — never
// panic, never loop forever. This is the disk-side twin of the ingest
// wire fuzzing: a run store surviving a crash is only trustworthy if a
// half-written or bit-rotted file cannot take the reader down.
func FuzzStoreReader(f *testing.F) {
	s, err := workload.ByName("S2", 1)
	if err != nil {
		f.Fatal(err)
	}
	trace, err := s.World.Run(8)
	if err != nil {
		f.Fatal(err)
	}
	roster, err := scene.MarshalCameras(trace.Cameras)
	if err != nil {
		f.Fatal(err)
	}
	frameLine, err := scene.MarshalFrame(&trace.Frames[0])
	if err != nil {
		f.Fatal(err)
	}
	validSeg := checksumLine(frameLine)
	validIdx, err := json.Marshal(frameIndex{
		Frames:   1,
		Segments: []Segment{{File: "seg-000000.jsonl", First: 0, Count: 1}},
	})
	if err != nil {
		f.Fatal(err)
	}
	validSnap := []byte(`{"frame":0}` + "\n")

	// A healthy record, torn tails, stale checksums, lying indexes, and
	// plain garbage.
	f.Add(validSeg, validSnap, validIdx)
	f.Add(validSeg[:len(validSeg)/2], validSnap[:3], validIdx)
	f.Add(append([]byte("00000000 "), frameLine...), validSnap, validIdx)
	f.Add(validSeg, validSnap, []byte(`{"frames":99,"segments":[{"file":"seg-000000.jsonl","first":0,"count":99}]}`))
	f.Add(validSeg, validSnap, []byte(`{"frames":1,"segments":[{"file":"../../etc/passwd","first":0,"count":1}]}`))
	f.Add([]byte("\x00\xff\n\n"), []byte("{"), []byte("not json"))
	f.Add([]byte(nil), []byte(nil), []byte(nil))

	man, err := json.Marshal(Manifest{
		Version: Version, Scenario: "S2", Seed: 1, TraceFrames: 8,
		Mode: "balb", Horizon: 10, SegmentSize: 16, Cameras: roster,
	})
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, seg, snaps, idx []byte) {
		dir := t.TempDir()
		fdir := filepath.Join(dir, framesDir)
		if err := os.MkdirAll(fdir, 0o755); err != nil {
			t.Fatal(err)
		}
		for path, data := range map[string][]byte{
			filepath.Join(dir, manifestFile):        man,
			filepath.Join(dir, snapshotsFile):       snaps,
			filepath.Join(fdir, "seg-000000.jsonl"): seg,
			filepath.Join(fdir, indexFile):          idx,
		} {
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		drain := func() {
			run, err := Open(dir)
			if err != nil {
				return
			}
			run.SnapshotsRaw()
			run.Snapshots()
			run.Rounds()
			src, err := run.Source()
			if err != nil {
				return
			}
			for i := 0; i < 1<<12; i++ {
				if _, err := src.Next(); err != nil {
					break
				}
			}
		}
		drain()
		if _, err := Recover(dir); err != nil {
			return // unrecoverable inputs are fine, panics are not
		}
		drain() // a recovered run must still be readable
	})
}
