// Package store is the durable half of the streaming engine: an
// append-only, pure-Go run store that persists what a run *was* — the
// frames it consumed, the per-frame metrics snapshots it emitted, and
// the per-round scheduling decisions it took — so an incident can be
// audited after the fact or re-driven under a different scheduler
// (cmd/mvreplay, docs/STREAMING.md).
//
// A run is a directory:
//
//	manifest.json         identity + regeneration recipe (scenario, seed,
//	                      mode, fault spec, camera roster)
//	snapshots.jsonl       one metrics.Snapshot per frame (OBSERVABILITY.md schema)
//	rounds.jsonl          one metrics.Round per scheduling round
//	frames/seg-NNNNNN.jsonl  frame ground truth, SegmentSize frames per segment
//	frames/index.json     segment directory, written on Close
//
// Everything is JSON Lines over plain files — no external database.
// The layout is deliberately SQLite-shaped (docs/STREAMING.md gives the
// equivalent schema) so a future cgo-enabled build can swap the backend
// without changing the Store interface. Frame segments are optional: a
// *capture* run (snapshots + rounds only) records what happened; a
// *full* run also records frames and is replayable bit-for-bit.
//
// Determinism: the store never writes wall-clock timestamps or
// host-dependent values, so a recorded run is a pure function of the
// run that produced it, and a replayed run's snapshot log is
// byte-identical to the recorded one (TestReplayByteIdentical).
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mvs/internal/metrics"
	"mvs/internal/scene"
)

const (
	manifestFile  = "manifest.json"
	snapshotsFile = "snapshots.jsonl"
	roundsFile    = "rounds.jsonl"
	framesDir     = "frames"
	indexFile     = "index.json"

	// Version is the on-disk format version written to new manifests.
	Version = 1
	// DefaultSegmentSize is the frames-per-segment bound when the
	// manifest does not set one.
	DefaultSegmentSize = 256
)

// Manifest identifies a recorded run and carries the recipe for
// regenerating everything the frame stream does not contain: the
// scenario and seed rebuild the world (training half included), the
// fault spec rebuilds the outage schedule, and the camera roster
// validates that a replay is fed to the fleet it was recorded from.
type Manifest struct {
	// Version is the on-disk format version (currently 1).
	Version int `json:"version"`
	// Label tags the run (defaults to the mode name at record time).
	Label string `json:"label,omitempty"`
	// Scenario and Seed name the workload (workload.ByName) the run was
	// generated from, so a replayer can regenerate the training half and
	// re-train the association model.
	Scenario string `json:"scenario,omitempty"`
	Seed     int64  `json:"seed"`
	// TraceFrames is the full world-run length in frames (training half
	// included); the recorded frame segments hold the evaluation half.
	TraceFrames int `json:"trace_frames,omitempty"`
	// Mode is the scheduling mode the run used (pipeline.Mode.String()).
	Mode string `json:"mode"`
	// Horizon is the scheduling horizon T.
	Horizon int `json:"horizon,omitempty"`
	// CamFaults is the -cam-faults spec string (camfault.ParseSpec
	// syntax) the run injected; empty means fault-free. The spec — not
	// the expanded schedule — is stored because camfault.Generate is
	// deterministic in it.
	CamFaults string `json:"cam_faults,omitempty"`
	// HealthK is the health-tracker silence threshold the run used.
	HealthK int `json:"health_k,omitempty"`
	// SegmentSize is the frames-per-segment bound of this run's frame
	// segments (0 means DefaultSegmentSize).
	SegmentSize int `json:"segment_size,omitempty"`
	// Cameras is the roster in scene.MarshalCameras wire form.
	Cameras json.RawMessage `json:"cameras"`
}

// Source is the frame-stream shape the store consumes (Writer.Tee) and
// produces (Run.Source). It structurally matches pipeline.Source, so a
// Replay plugs into pipeline.NewEngine without either package importing
// the other.
type Source interface {
	Cameras() []*scene.Camera
	Next() (*scene.FrameTruth, error)
}

// Store is the writer side of a run: a metrics.Sink for per-frame
// snapshots, a metrics.RoundSink for scheduling decisions, an
// append-only frame log, and a Close that seals the directory.
type Store interface {
	metrics.Sink
	metrics.RoundSink
	// AppendFrame appends one frame to the run's frame log, making the
	// run replayable. Capture-only runs never call it.
	AppendFrame(*scene.FrameTruth) error
	// Close flushes and seals the run (writes the frame index). The run
	// must not be written to afterwards.
	Close() error
}

// Segment locates one frame-log segment file.
type Segment struct {
	// File is the segment's name inside the frames/ directory.
	File string `json:"file"`
	// First is the stream index of the segment's first frame.
	First int `json:"first"`
	// Count is the number of frames in the segment.
	Count int `json:"count"`
}

// frameIndex is the frames/index.json document.
type frameIndex struct {
	Frames   int       `json:"frames"`
	Segments []Segment `json:"segments"`
}

// Writer appends a run to a directory. All record methods are safe for
// concurrent use and follow the sink error model (docs/OBSERVABILITY.md):
// write errors are sticky, later records are discarded, and the first
// error is reported by Flush/Close.
type Writer struct {
	dir     string
	man     Manifest
	numCams int
	segSize int

	mu       sync.Mutex
	err      error
	closed   bool
	snaps    *jsonlWriter
	rounds   *jsonlWriter
	seg      *os.File
	segBuf   *bufio.Writer
	segments []Segment
	frames   int
}

var _ Store = (*Writer)(nil)

// Create starts a new run in dir (created if needed; refused if it
// already holds a manifest — runs are append-only, never overwritten).
// The manifest's Version and SegmentSize are filled with defaults when
// zero; Cameras must parse as a valid roster.
func Create(dir string, man Manifest) (*Writer, error) {
	cams, err := scene.UnmarshalCameras(man.Cameras)
	if err != nil {
		return nil, fmt.Errorf("store: manifest cameras: %w", err)
	}
	if len(cams) == 0 {
		return nil, fmt.Errorf("store: manifest has no cameras")
	}
	if man.Version == 0 {
		man.Version = Version
	}
	if man.Version != Version {
		return nil, fmt.Errorf("store: unsupported format version %d (want %d)", man.Version, Version)
	}
	if man.SegmentSize <= 0 {
		man.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	mpath := filepath.Join(dir, manifestFile)
	if _, err := os.Stat(mpath); err == nil {
		return nil, fmt.Errorf("store: %s already holds a run (refusing to overwrite)", dir)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := os.WriteFile(mpath, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Writer{dir: dir, man: man, numCams: len(cams), segSize: man.SegmentSize}, nil
}

// Manifest returns the manifest the run was created with (defaults
// filled in).
func (w *Writer) Manifest() Manifest { return w.man }

// jsonlWriter is a lazily-opened buffered JSONL file.
type jsonlWriter struct {
	f   *os.File
	bw  *bufio.Writer
	enc *json.Encoder
}

func openJSONL(path string) (*jsonlWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	bw := bufio.NewWriter(f)
	return &jsonlWriter{f: f, bw: bw, enc: json.NewEncoder(bw)}, nil
}

func (j *jsonlWriter) close() error {
	err := j.bw.Flush()
	if cerr := j.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// RecordFrame appends one snapshot line (metrics.Sink).
func (w *Writer) RecordFrame(snap metrics.Snapshot) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return
	}
	if w.snaps == nil {
		w.snaps, w.err = openJSONL(filepath.Join(w.dir, snapshotsFile))
		if w.err != nil {
			return
		}
	}
	w.err = w.snaps.enc.Encode(snap)
}

// RecordRound appends one round line (metrics.RoundSink).
func (w *Writer) RecordRound(round metrics.Round) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return
	}
	if w.rounds == nil {
		w.rounds, w.err = openJSONL(filepath.Join(w.dir, roundsFile))
		if w.err != nil {
			return
		}
	}
	w.err = w.rounds.enc.Encode(round)
}

// AppendFrame appends one frame to the run's frame log, rolling to a
// new segment every SegmentSize frames. Unlike the record methods it
// returns its error eagerly — a frame the store cannot persist breaks
// the replay contract, so the caller (Writer.Tee) must stop the stream.
func (w *Writer) AppendFrame(f *scene.FrameTruth) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: AppendFrame after Close")
	}
	if w.err != nil {
		return w.err
	}
	if len(f.PerCamera) != w.numCams {
		w.err = fmt.Errorf("store: frame %d has %d camera lists, roster has %d",
			f.Index, len(f.PerCamera), w.numCams)
		return w.err
	}
	if w.frames%w.segSize == 0 {
		if err := w.rollSegment(); err != nil {
			w.err = err
			return err
		}
	}
	line, err := scene.MarshalFrame(f)
	if err != nil {
		w.err = err
		return err
	}
	if _, err := w.segBuf.Write(append(line, '\n')); err != nil {
		w.err = err
		return err
	}
	w.frames++
	w.segments[len(w.segments)-1].Count++
	return nil
}

// rollSegment flushes the open segment (if any) and opens the next one.
// Caller holds w.mu.
func (w *Writer) rollSegment() error {
	if w.seg != nil {
		if err := w.closeSegment(); err != nil {
			return err
		}
	}
	if len(w.segments) == 0 {
		if err := os.MkdirAll(filepath.Join(w.dir, framesDir), 0o755); err != nil {
			return err
		}
	}
	name := fmt.Sprintf("seg-%06d.jsonl", len(w.segments))
	f, err := os.OpenFile(filepath.Join(w.dir, framesDir, name), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	w.seg, w.segBuf = f, bufio.NewWriter(f)
	w.segments = append(w.segments, Segment{File: name, First: w.frames})
	return nil
}

// closeSegment flushes and closes the open segment. Caller holds w.mu.
func (w *Writer) closeSegment() error {
	err := w.segBuf.Flush()
	if cerr := w.seg.Close(); cerr != nil && err == nil {
		err = cerr
	}
	w.seg, w.segBuf = nil, nil
	return err
}

// Flush persists buffered snapshots, rounds, and frame lines, and
// reports the sticky error, if any (metrics.Sink).
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	flush := func(bw *bufio.Writer) {
		if bw != nil {
			if err := bw.Flush(); err != nil && w.err == nil {
				w.err = err
			}
		}
	}
	if w.snaps != nil {
		flush(w.snaps.bw)
	}
	if w.rounds != nil {
		flush(w.rounds.bw)
	}
	flush(w.segBuf)
	return w.err
}

// Close flushes everything, writes the frame index, and seals the run.
// Idempotent; later record calls are discarded.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	firstErr := func(err error) {
		if err != nil && w.err == nil {
			w.err = err
		}
	}
	if w.snaps != nil {
		firstErr(w.snaps.close())
		w.snaps = nil
	}
	if w.rounds != nil {
		firstErr(w.rounds.close())
		w.rounds = nil
	}
	if w.seg != nil {
		firstErr(w.closeSegment())
	}
	if len(w.segments) > 0 {
		idx := frameIndex{Frames: w.frames, Segments: w.segments}
		data, err := json.MarshalIndent(idx, "", "  ")
		if err == nil {
			err = os.WriteFile(filepath.Join(w.dir, framesDir, indexFile), append(data, '\n'), 0o644)
		}
		firstErr(err)
	}
	return w.err
}

// Tee wraps a frame source so every frame flowing to the engine is also
// appended to this run's frame log — how a live run records itself. A
// frame the store cannot persist fails the stream (the source returns
// the store error), keeping "recorded" and "processed" in lockstep.
func (w *Writer) Tee(src Source) Source { return &tee{src: src, w: w} }

type tee struct {
	src Source
	w   *Writer
}

func (t *tee) Cameras() []*scene.Camera { return t.src.Cameras() }

func (t *tee) Next() (*scene.FrameTruth, error) {
	f, err := t.src.Next()
	if err != nil {
		return nil, err
	}
	if err := t.w.AppendFrame(f); err != nil {
		return nil, err
	}
	return f, nil
}
