// Package store is the durable half of the streaming engine: an
// append-only, pure-Go run store that persists what a run *was* — the
// frames it consumed, the per-frame metrics snapshots it emitted, and
// the per-round scheduling decisions it took — so an incident can be
// audited after the fact or re-driven under a different scheduler
// (cmd/mvreplay, docs/STREAMING.md).
//
// A run is a directory:
//
//	manifest.json         identity + regeneration recipe (scenario, seed,
//	                      mode, fault spec, camera roster)
//	snapshots.jsonl       one metrics.Snapshot per frame (OBSERVABILITY.md schema)
//	rounds.jsonl          one metrics.Round per scheduling round
//	frames/seg-NNNNNN.jsonl  frame ground truth, SegmentSize frames per segment
//	frames/index.json     segment directory, written on Close
//
// Everything is JSON Lines over plain files — no external database.
// The layout is deliberately SQLite-shaped (docs/STREAMING.md gives the
// equivalent schema) so a future cgo-enabled build can swap the backend
// without changing the Store interface. Frame segments are optional: a
// *capture* run (snapshots + rounds only) records what happened; a
// *full* run also records frames and is replayable bit-for-bit.
//
// Determinism: the store never writes wall-clock timestamps or
// host-dependent values, so a recorded run is a pure function of the
// run that produced it, and a replayed run's snapshot log is
// byte-identical to the recorded one (TestReplayByteIdentical).
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"mvs/internal/clock"
	"mvs/internal/metrics"
	"mvs/internal/scene"
)

const (
	manifestFile  = "manifest.json"
	snapshotsFile = "snapshots.jsonl"
	roundsFile    = "rounds.jsonl"
	framesDir     = "frames"
	indexFile     = "index.json"

	// Version is the on-disk format version written to new manifests.
	// Version 2 prefixes every JSONL record (snapshots, rounds, frame
	// segments) with a CRC32 checksum so a torn or corrupted tail is
	// detectable byte-for-byte (docs/STREAMING.md §5); version 1 runs
	// (no checksums) remain readable.
	Version = 2
	// legacyVersion is the oldest on-disk format Open still reads.
	legacyVersion = 1
	// DefaultSegmentSize is the frames-per-segment bound when the
	// manifest does not set one.
	DefaultSegmentSize = 256
)

// FsyncPolicy controls when the writer forces records to stable storage
// — the durability/throughput dial for -record under crash risk
// (docs/STREAMING.md §5).
type FsyncPolicy int

const (
	// FsyncNever (the default) leaves durability to the OS page cache:
	// fastest, and a crash can lose everything since the last flush.
	FsyncNever FsyncPolicy = iota
	// FsyncInterval syncs each log file every FsyncEvery records:
	// bounded loss at bounded cost.
	FsyncInterval
	// FsyncEveryRecord syncs after every record: at most one torn line
	// lost, at full fsync cost per record.
	FsyncEveryRecord
)

// String returns the -store-fsync flag name of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncNever:
		return "never"
	case FsyncInterval:
		return "interval"
	case FsyncEveryRecord:
		return "every-record"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsync maps a -store-fsync flag name to its policy.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "never", "":
		return FsyncNever, nil
	case "interval":
		return FsyncInterval, nil
	case "every-record":
		return FsyncEveryRecord, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want never, interval, every-record)", s)
	}
}

// Options tunes a Writer beyond the manifest (CreateWith). The zero
// value matches Create: no fsync, unlimited retention.
type Options struct {
	// Fsync is the durability policy for all three logs.
	Fsync FsyncPolicy
	// FsyncEvery is the records-per-sync interval for FsyncInterval
	// (<= 0 defaults to 64).
	FsyncEvery int
	// KeepSegments, when > 0, bounds the frame log to the newest N
	// segments: each roll past the bound deletes the oldest segment
	// file (retention for long-running recordings). A retained run
	// replays only its surviving window, so mvreplay -verify refuses it.
	KeepSegments int
	// KeepDuration, when > 0, bounds the frame log by age: each roll
	// deletes closed segments whose first frame arrived more than
	// KeepDuration ago (by Clock). Shares the pruning path with
	// KeepSegments — both bounds apply when both are set — and carries
	// the same -verify refusal. Segment birth times live only in writer
	// memory; the on-disk format stays free of wall-clock values.
	KeepDuration time.Duration
	// Clock supplies segment birth times for KeepDuration (nil =
	// clock.System). Inject a clock.Fake to test retention without
	// real waiting.
	Clock clock.Clock
}

// checksumLine returns the version-2 wire form of one JSONL record:
// an 8-hex-digit CRC32 (IEEE) of the JSON bytes, a space, the JSON,
// a newline.
func checksumLine(body []byte) []byte {
	out := make([]byte, 0, len(body)+10)
	out = fmt.Appendf(out, "%08x ", crc32.ChecksumIEEE(body))
	out = append(out, body...)
	return append(out, '\n')
}

// parseLine validates and strips one record line (trailing newline
// removed) according to the format version: version 2 checks and strips
// the checksum prefix, version 1 lines pass through.
func parseLine(line []byte, version int) ([]byte, error) {
	line = bytes.TrimSuffix(line, []byte("\n"))
	if version < 2 {
		return line, nil
	}
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("store: record missing checksum prefix")
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return nil, fmt.Errorf("store: bad checksum prefix: %w", err)
	}
	body := line[9:]
	if got := crc32.ChecksumIEEE(body); got != uint32(want) {
		return nil, fmt.Errorf("store: checksum mismatch (record says %08x, bytes hash to %08x)", uint32(want), got)
	}
	return body, nil
}

// Manifest identifies a recorded run and carries the recipe for
// regenerating everything the frame stream does not contain: the
// scenario and seed rebuild the world (training half included), the
// fault spec rebuilds the outage schedule, and the camera roster
// validates that a replay is fed to the fleet it was recorded from.
type Manifest struct {
	// Version is the on-disk format version (see the Version constant).
	Version int `json:"version"`
	// Label tags the run (defaults to the mode name at record time).
	Label string `json:"label,omitempty"`
	// Scenario and Seed name the workload (workload.ByName) the run was
	// generated from, so a replayer can regenerate the training half and
	// re-train the association model.
	Scenario string `json:"scenario,omitempty"`
	Seed     int64  `json:"seed"`
	// TraceFrames is the full world-run length in frames (training half
	// included); the recorded frame segments hold the evaluation half.
	TraceFrames int `json:"trace_frames,omitempty"`
	// Mode is the scheduling mode the run used (pipeline.Mode.String()).
	Mode string `json:"mode"`
	// Horizon is the scheduling horizon T.
	Horizon int `json:"horizon,omitempty"`
	// CamFaults is the -cam-faults spec string (camfault.ParseSpec
	// syntax) the run injected; empty means fault-free. The spec — not
	// the expanded schedule — is stored because camfault.Generate is
	// deterministic in it.
	CamFaults string `json:"cam_faults,omitempty"`
	// HealthK is the health-tracker silence threshold the run used.
	HealthK int `json:"health_k,omitempty"`
	// SegmentSize is the frames-per-segment bound of this run's frame
	// segments (0 means DefaultSegmentSize).
	SegmentSize int `json:"segment_size,omitempty"`
	// Fsync records the durability policy the run was written under
	// (FsyncPolicy.String; empty means never).
	Fsync string `json:"fsync,omitempty"`
	// KeepSegments records the frame-log retention bound (0 = unlimited).
	// A retained run replays only its surviving window, so -verify
	// refuses it.
	KeepSegments int `json:"keep_segments,omitempty"`
	// KeepDuration records the age-based frame-log retention bound
	// (time.Duration string; empty = unlimited). Like KeepSegments, a
	// duration-retained run replays only its surviving window, so
	// -verify refuses it.
	KeepDuration string `json:"keep_duration,omitempty"`
	// Adapt is the -adapt control-loop spec string (adapt.ParseSpec
	// syntax) the run degraded under; empty means no controller. The
	// spec — not the level trace — is stored because the controller is
	// deterministic in it plus the modeled window state, so a replay
	// regenerating the controller from this spec reproduces the same
	// ladder walk (docs/FAULTS.md §10).
	Adapt string `json:"adapt,omitempty"`
	// Ingest, when set, is the -ingest-addr the run's frames arrived on.
	// Live arrivals shed by wall-clock load, so an ingest-recorded run's
	// snapshot counters are not a pure function of its frame log and
	// -verify refuses it; the frame log itself still replays.
	Ingest string `json:"ingest,omitempty"`
	// Recovered marks a run rewritten by Recover after a crash: the logs
	// are the validated prefix of the original run (docs/STREAMING.md §5).
	Recovered bool `json:"recovered,omitempty"`
	// Cameras is the roster in scene.MarshalCameras wire form.
	Cameras json.RawMessage `json:"cameras"`
}

// Source is the frame-stream shape the store consumes (Writer.Tee) and
// produces (Run.Source). It structurally matches pipeline.Source, so a
// Replay plugs into pipeline.NewEngine without either package importing
// the other.
type Source interface {
	Cameras() []*scene.Camera
	Next() (*scene.FrameTruth, error)
}

// Store is the writer side of a run: a metrics.Sink for per-frame
// snapshots, a metrics.RoundSink for scheduling decisions, an
// append-only frame log, and a Close that seals the directory.
type Store interface {
	metrics.Sink
	metrics.RoundSink
	// AppendFrame appends one frame to the run's frame log, making the
	// run replayable. Capture-only runs never call it.
	AppendFrame(*scene.FrameTruth) error
	// Close flushes and seals the run (writes the frame index). The run
	// must not be written to afterwards.
	Close() error
}

// Segment locates one frame-log segment file.
type Segment struct {
	// File is the segment's name inside the frames/ directory.
	File string `json:"file"`
	// First is the stream index of the segment's first frame.
	First int `json:"first"`
	// Count is the number of frames in the segment.
	Count int `json:"count"`
}

// frameIndex is the frames/index.json document.
type frameIndex struct {
	Frames   int       `json:"frames"`
	Segments []Segment `json:"segments"`
}

// Writer appends a run to a directory. All record methods are safe for
// concurrent use and follow the sink error model (docs/OBSERVABILITY.md):
// write errors are sticky, later records are discarded, and the first
// error is reported by Flush/Close.
type Writer struct {
	dir     string
	man     Manifest
	opts    Options
	numCams int
	segSize int

	mu       sync.Mutex
	err      error
	closed   bool
	snaps    *jsonlWriter
	rounds   *jsonlWriter
	seg      *jsonlWriter
	segments []Segment
	births   []time.Time // per-segment birth times (memory only; never on disk)
	segSeq   int         // next segment file ordinal (monotonic under retention)
	frames   int
}

var _ Store = (*Writer)(nil)

// Create starts a new run in dir with default Options (no fsync,
// unlimited retention). See CreateWith.
func Create(dir string, man Manifest) (*Writer, error) {
	return CreateWith(dir, man, Options{})
}

// CreateWith starts a new run in dir (created if needed; refused if it
// already holds a manifest — runs are append-only, never overwritten).
// The manifest's Version and SegmentSize are filled with defaults when
// zero and its Fsync/KeepSegments fields are stamped from opts; Cameras
// must parse as a valid roster.
func CreateWith(dir string, man Manifest, opts Options) (*Writer, error) {
	cams, err := scene.UnmarshalCameras(man.Cameras)
	if err != nil {
		return nil, fmt.Errorf("store: manifest cameras: %w", err)
	}
	if len(cams) == 0 {
		return nil, fmt.Errorf("store: manifest has no cameras")
	}
	if man.Version == 0 {
		man.Version = Version
	}
	if man.Version != Version {
		return nil, fmt.Errorf("store: unsupported format version %d (want %d)", man.Version, Version)
	}
	if man.SegmentSize <= 0 {
		man.SegmentSize = DefaultSegmentSize
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 64
	}
	if opts.Fsync != FsyncNever {
		man.Fsync = opts.Fsync.String()
	}
	if opts.KeepSegments > 0 {
		man.KeepSegments = opts.KeepSegments
	}
	if opts.KeepDuration > 0 {
		man.KeepDuration = opts.KeepDuration.String()
	}
	if opts.Clock == nil {
		opts.Clock = clock.System{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	mpath := filepath.Join(dir, manifestFile)
	if _, err := os.Stat(mpath); err == nil {
		return nil, fmt.Errorf("store: %s already holds a run (refusing to overwrite)", dir)
	}
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := os.WriteFile(mpath, append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Writer{dir: dir, man: man, opts: opts, numCams: len(cams), segSize: man.SegmentSize}, nil
}

// Manifest returns the manifest the run was created with (defaults
// filled in).
func (w *Writer) Manifest() Manifest { return w.man }

// jsonlWriter is a lazily-opened buffered JSONL file writing
// checksummed records under the writer's fsync policy.
type jsonlWriter struct {
	f     *os.File
	bw    *bufio.Writer
	fsync FsyncPolicy
	every int
	n     int // records since the last sync
}

func openJSONL(path string, opts Options) (*jsonlWriter, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &jsonlWriter{f: f, bw: bufio.NewWriter(f), fsync: opts.Fsync, every: opts.FsyncEvery}, nil
}

// record appends one checksummed line and applies the fsync policy.
func (j *jsonlWriter) record(body []byte) error {
	if _, err := j.bw.Write(checksumLine(body)); err != nil {
		return err
	}
	j.n++
	switch j.fsync {
	case FsyncEveryRecord:
		return j.sync()
	case FsyncInterval:
		if j.n >= j.every {
			return j.sync()
		}
	}
	return nil
}

// sync flushes the buffer and forces the file to stable storage.
func (j *jsonlWriter) sync() error {
	if err := j.bw.Flush(); err != nil {
		return err
	}
	j.n = 0
	return j.f.Sync()
}

func (j *jsonlWriter) close() error {
	err := j.bw.Flush()
	if err == nil && j.fsync != FsyncNever {
		err = j.f.Sync()
	}
	if cerr := j.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// RecordFrame appends one snapshot line (metrics.Sink).
func (w *Writer) RecordFrame(snap metrics.Snapshot) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return
	}
	if w.snaps == nil {
		w.snaps, w.err = openJSONL(filepath.Join(w.dir, snapshotsFile), w.opts)
		if w.err != nil {
			return
		}
	}
	var body []byte
	if body, w.err = json.Marshal(snap); w.err == nil {
		w.err = w.snaps.record(body)
	}
}

// RecordRound appends one round line (metrics.RoundSink).
func (w *Writer) RecordRound(round metrics.Round) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return
	}
	if w.rounds == nil {
		w.rounds, w.err = openJSONL(filepath.Join(w.dir, roundsFile), w.opts)
		if w.err != nil {
			return
		}
	}
	var body []byte
	if body, w.err = json.Marshal(round); w.err == nil {
		w.err = w.rounds.record(body)
	}
}

// AppendFrame appends one frame to the run's frame log, rolling to a
// new segment every SegmentSize frames. Unlike the record methods it
// returns its error eagerly — a frame the store cannot persist breaks
// the replay contract, so the caller (Writer.Tee) must stop the stream.
func (w *Writer) AppendFrame(f *scene.FrameTruth) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("store: AppendFrame after Close")
	}
	if w.err != nil {
		return w.err
	}
	if len(f.PerCamera) != w.numCams {
		w.err = fmt.Errorf("store: frame %d has %d camera lists, roster has %d",
			f.Index, len(f.PerCamera), w.numCams)
		return w.err
	}
	if w.frames%w.segSize == 0 {
		if err := w.rollSegment(); err != nil {
			w.err = err
			return err
		}
	}
	line, err := scene.MarshalFrame(f)
	if err != nil {
		w.err = err
		return err
	}
	if err := w.seg.record(line); err != nil {
		w.err = err
		return err
	}
	w.frames++
	w.segments[len(w.segments)-1].Count++
	return nil
}

// rollSegment flushes the open segment (if any), opens the next one,
// and applies the retention bounds — count (KeepSegments) and age
// (KeepDuration) share this one pruning path. Caller holds w.mu.
func (w *Writer) rollSegment() error {
	if w.seg != nil {
		if err := w.closeSegment(); err != nil {
			return err
		}
	}
	if w.segSeq == 0 {
		if err := os.MkdirAll(filepath.Join(w.dir, framesDir), 0o755); err != nil {
			return err
		}
	}
	name := fmt.Sprintf("seg-%06d.jsonl", w.segSeq)
	w.segSeq++
	seg, err := openJSONL(filepath.Join(w.dir, framesDir, name), w.opts)
	if err != nil {
		return err
	}
	w.seg = seg
	var now time.Time
	if w.opts.KeepDuration > 0 {
		now = w.opts.Clock.Now()
	}
	w.segments = append(w.segments, Segment{File: name, First: w.frames})
	w.births = append(w.births, now)
	// Prune closed segments from the front; the just-opened segment is
	// always kept, so the log never shrinks below one segment.
	for len(w.segments) > 1 {
		tooMany := w.opts.KeepSegments > 0 && len(w.segments) > w.opts.KeepSegments
		tooOld := w.opts.KeepDuration > 0 && now.Sub(w.births[0]) > w.opts.KeepDuration
		if !tooMany && !tooOld {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, framesDir, w.segments[0].File)); err != nil {
			return err
		}
		w.segments = append(w.segments[:0], w.segments[1:]...)
		w.births = append(w.births[:0], w.births[1:]...)
	}
	return nil
}

// closeSegment flushes and closes the open segment. Caller holds w.mu.
func (w *Writer) closeSegment() error {
	err := w.seg.close()
	w.seg = nil
	return err
}

// Flush persists buffered snapshots, rounds, and frame lines, and
// reports the sticky error, if any (metrics.Sink).
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	flush := func(j *jsonlWriter) {
		if j != nil {
			if err := j.bw.Flush(); err != nil && w.err == nil {
				w.err = err
			}
		}
	}
	flush(w.snaps)
	flush(w.rounds)
	flush(w.seg)
	return w.err
}

// Close flushes everything, writes the frame index, and seals the run.
// Idempotent; later record calls are discarded.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.err
	}
	w.closed = true
	firstErr := func(err error) {
		if err != nil && w.err == nil {
			w.err = err
		}
	}
	if w.snaps != nil {
		firstErr(w.snaps.close())
		w.snaps = nil
	}
	if w.rounds != nil {
		firstErr(w.rounds.close())
		w.rounds = nil
	}
	if w.seg != nil {
		firstErr(w.closeSegment())
	}
	if len(w.segments) > 0 {
		idx := frameIndex{Frames: w.frames, Segments: w.segments}
		data, err := json.MarshalIndent(idx, "", "  ")
		if err == nil {
			err = os.WriteFile(filepath.Join(w.dir, framesDir, indexFile), append(data, '\n'), 0o644)
		}
		firstErr(err)
	}
	return w.err
}

// Tee wraps a frame source so every frame flowing to the engine is also
// appended to this run's frame log — how a live run records itself. A
// frame the store cannot persist fails the stream (the source returns
// the store error), keeping "recorded" and "processed" in lockstep.
func (w *Writer) Tee(src Source) Source { return &tee{src: src, w: w} }

type tee struct {
	src Source
	w   *Writer
}

func (t *tee) Cameras() []*scene.Camera { return t.src.Cameras() }

func (t *tee) Next() (*scene.FrameTruth, error) {
	f, err := t.src.Next()
	if err != nil {
		return nil, err
	}
	if err := t.w.AppendFrame(f); err != nil {
		return nil, err
	}
	return f, nil
}
