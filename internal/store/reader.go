package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mvs/internal/metrics"
	"mvs/internal/scene"
)

// Run is the reader side of a recorded run directory.
type Run struct {
	dir   string
	man   Manifest
	cams  []*scene.Camera
	index *frameIndex // nil when the run recorded no frames (capture-only)
}

// Open reads a run directory's manifest (and frame index, when
// present). It does not load snapshots, rounds, or frames — those
// stream on demand.
func Open(dir string) (*Run, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("store: decode manifest: %w", err)
	}
	if man.Version < legacyVersion || man.Version > Version {
		return nil, fmt.Errorf("store: unsupported format version %d (want %d..%d)", man.Version, legacyVersion, Version)
	}
	cams, err := scene.UnmarshalCameras(man.Cameras)
	if err != nil {
		return nil, fmt.Errorf("store: manifest cameras: %w", err)
	}
	if len(cams) == 0 {
		return nil, fmt.Errorf("store: manifest has no cameras")
	}
	r := &Run{dir: dir, man: man, cams: cams}
	idxData, err := os.ReadFile(filepath.Join(dir, framesDir, indexFile))
	switch {
	case err == nil:
		var idx frameIndex
		if err := json.Unmarshal(idxData, &idx); err != nil {
			return nil, fmt.Errorf("store: decode frame index: %w", err)
		}
		r.index = &idx
	case os.IsNotExist(err):
		// Capture-only run, or a writer that was never closed: no frame
		// index means no replayable frame log.
	default:
		return nil, fmt.Errorf("store: %w", err)
	}
	return r, nil
}

// Manifest returns the recorded manifest.
func (r *Run) Manifest() Manifest { return r.man }

// Cameras returns the recorded roster (decoded once at Open).
func (r *Run) Cameras() []*scene.Camera { return r.cams }

// HasFrames reports whether the run recorded a replayable frame log.
func (r *Run) HasFrames() bool { return r.index != nil }

// NumFrames returns the recorded frame count (0 for capture-only runs).
func (r *Run) NumFrames() int {
	if r.index == nil {
		return 0
	}
	return r.index.Frames
}

// SnapshotsRaw returns the recorded snapshot log as plain JSONL — the
// byte-exact form mvreplay -verify compares a re-run's JSONL sink
// output against. Version-2 checksum prefixes are verified and
// stripped, so the result is checksum-free regardless of format
// version. Missing file means the run recorded no snapshots (nil, no
// error).
func (r *Run) SnapshotsRaw() ([]byte, error) {
	data, err := os.ReadFile(filepath.Join(r.dir, snapshotsFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out bytes.Buffer
	out.Grow(len(data))
	if err := decodeLines(data, r.man.Version, func(line []byte) error {
		out.Write(line)
		out.WriteByte('\n')
		return nil
	}); err != nil {
		return nil, fmt.Errorf("store: snapshots: %w", err)
	}
	return out.Bytes(), nil
}

// Snapshots decodes the recorded per-frame snapshot log.
func (r *Run) Snapshots() ([]metrics.Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(r.dir, snapshotsFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []metrics.Snapshot
	if err := decodeLines(data, r.man.Version, func(line []byte) error {
		var s metrics.Snapshot
		if err := json.Unmarshal(line, &s); err != nil {
			return err
		}
		out = append(out, s)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("store: decode snapshots: %w", err)
	}
	return out, nil
}

// Rounds decodes the recorded scheduling-round log.
func (r *Run) Rounds() ([]metrics.Round, error) {
	data, err := os.ReadFile(filepath.Join(r.dir, roundsFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []metrics.Round
	if err := decodeLines(data, r.man.Version, func(line []byte) error {
		var rd metrics.Round
		if err := json.Unmarshal(line, &rd); err != nil {
			return err
		}
		out = append(out, rd)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("store: decode rounds: %w", err)
	}
	return out, nil
}

// decodeLines walks a log's records, validating and stripping each
// line's checksum per the format version before handing it to fn.
func decodeLines(data []byte, version int, fn func([]byte) error) error {
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		body, err := parseLine(line, version)
		if err != nil {
			return err
		}
		if err := fn(body); err != nil {
			return err
		}
	}
	return nil
}

// Source opens the recorded frame log as a streaming frame source (a
// Replay), ready to feed pipeline.NewEngine. Errors when the run is
// capture-only.
func (r *Run) Source() (*Replay, error) {
	if r.index == nil {
		return nil, fmt.Errorf("store: run in %s recorded no frames (capture-only run, not replayable)", r.dir)
	}
	// The readable frame count is the sum of the surviving segments'
	// counts: equal to index.Frames unless retention deleted old
	// segments, in which case only the window replays.
	want := 0
	for _, seg := range r.index.Segments {
		want += seg.Count
	}
	return &Replay{dir: r.dir, cams: r.cams, ver: r.man.Version, segs: r.index.Segments, want: want}, nil
}

// Replay streams a recorded frame log segment by segment. It satisfies
// pipeline.Source: Next returns frames in recorded order and io.EOF
// after the last, and the frame count is checked against the index so a
// truncated segment fails loudly instead of ending a replay early.
type Replay struct {
	dir  string
	cams []*scene.Camera
	ver  int
	segs []Segment
	want int

	si   int // next segment to open
	f    *os.File
	br   *bufio.Reader
	left int // frames remaining in the open segment
	read int
}

// Cameras returns the recorded roster.
func (r *Replay) Cameras() []*scene.Camera { return r.cams }

// Next returns the next recorded frame, or io.EOF after the last.
func (r *Replay) Next() (*scene.FrameTruth, error) {
	for r.left == 0 {
		if r.f != nil {
			if err := r.f.Close(); err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
			r.f, r.br = nil, nil
		}
		if r.si >= len(r.segs) {
			if r.read != r.want {
				return nil, fmt.Errorf("store: frame log ended after %d frames, index promises %d", r.read, r.want)
			}
			return nil, io.EOF
		}
		seg := r.segs[r.si]
		r.si++
		if seg.Count == 0 {
			continue
		}
		f, err := os.Open(filepath.Join(r.dir, framesDir, seg.File))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		r.f, r.br, r.left = f, bufio.NewReader(f), seg.Count
	}
	line, err := r.br.ReadBytes('\n')
	if err == io.EOF && len(line) > 0 {
		err = nil // final line without trailing newline
	}
	if err != nil {
		return nil, fmt.Errorf("store: segment truncated at frame %d: %w", r.read, err)
	}
	body, err := parseLine(line, r.ver)
	if err != nil {
		return nil, fmt.Errorf("store: frame %d: %w", r.read, err)
	}
	frame, err := scene.UnmarshalFrame(body, len(r.cams))
	if err != nil {
		return nil, err
	}
	r.left--
	r.read++
	return frame, nil
}

// Close releases the open segment file, if any. Draining the replay to
// io.EOF closes it implicitly; Close is for abandoning a replay early.
func (r *Replay) Close() error {
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f, r.br = nil, nil
	return err
}
