package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mvs/internal/clock"
)

// segFiles lists the surviving segment files of a run directory.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, framesDir))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if e.Name() != indexFile {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestKeepSegmentsPrunesOldest drives the count-based retention bound:
// the frame log never holds more than KeepSegments files, the deleted
// ones are the oldest, and the surviving window still replays.
func TestKeepSegmentsPrunesOldest(t *testing.T) {
	dir := t.TempDir()
	_, roster := testRoster(t, 2)
	w, err := CreateWith(dir, Manifest{Mode: "balb", SegmentSize: 4, Cameras: roster},
		Options{KeepSegments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Manifest().KeepSegments != 2 {
		t.Fatalf("manifest KeepSegments = %d, want 2", w.Manifest().KeepSegments)
	}
	rng := rand.New(rand.NewSource(7))
	frames := randomFrames(rng, 2, 20) // 5 segments of 4
	for i := range frames {
		if err := w.AppendFrame(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got := segFiles(t, dir)
	if len(got) != 2 || got[0] != "seg-000003.jsonl" || got[1] != "seg-000004.jsonl" {
		t.Fatalf("surviving segments = %v, want the newest two (seg-000003, seg-000004)", got)
	}
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	src, err := run.Source()
	if err != nil {
		t.Fatal(err)
	}
	f, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Index != 12 {
		t.Fatalf("first surviving frame index = %d, want 12 (window start)", f.Index)
	}
}

// TestKeepDurationPrunesByAge drives the age-based retention bound with
// a fake clock: segments older than KeepDuration are deleted at the
// next roll, newer ones survive, and the manifest records the bound so
// mvreplay -verify can refuse the windowed run.
func TestKeepDurationPrunesByAge(t *testing.T) {
	dir := t.TempDir()
	_, roster := testRoster(t, 2)
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	w, err := CreateWith(dir, Manifest{Mode: "balb", SegmentSize: 2, Cameras: roster},
		Options{KeepDuration: 10 * time.Minute, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Manifest().KeepDuration; got != "10m0s" {
		t.Fatalf("manifest KeepDuration = %q, want \"10m0s\"", got)
	}
	rng := rand.New(rand.NewSource(9))
	frames := randomFrames(rng, 2, 8) // 4 segments of 2
	// Two segments 6 minutes apart: both inside the 10-minute window.
	for i := 0; i < 4; i++ {
		if i == 2 {
			fake.Advance(6 * time.Minute)
		}
		if err := w.AppendFrame(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(segFiles(t, dir)); n != 2 {
		t.Fatalf("segments inside the window = %d, want 2", n)
	}
	// 11 more minutes age the first segment past the bound (17m) while
	// the second stays inside it (11m... also past). Advance enough that
	// only the first two segments expire relative to the third's birth.
	fake.Advance(5 * time.Minute) // seg0 is now 11m old, seg1 5m old
	if err := w.AppendFrame(&frames[4]); err != nil {
		t.Fatal(err)
	}
	got := segFiles(t, dir)
	if len(got) != 2 || got[0] != "seg-000001.jsonl" || got[1] != "seg-000002.jsonl" {
		t.Fatalf("surviving segments = %v, want seg-000001 and seg-000002", got)
	}
	// Fill the open segment, then a long quiet period expires everything
	// closed; the segment opened at the next roll always survives.
	if err := w.AppendFrame(&frames[5]); err != nil {
		t.Fatal(err)
	}
	fake.Advance(time.Hour)
	if err := w.AppendFrame(&frames[6]); err != nil {
		t.Fatal(err)
	}
	got = segFiles(t, dir)
	if len(got) != 1 || got[0] != "seg-000003.jsonl" {
		t.Fatalf("after an hour idle, surviving segments = %v, want only the open seg-000003", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.Manifest().KeepDuration == "" {
		t.Fatal("reopened manifest lost KeepDuration")
	}
	src, err := run.Source()
	if err != nil {
		t.Fatal(err)
	}
	f, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if f.Index != 6 {
		t.Fatalf("first surviving frame index = %d, want 6", f.Index)
	}
}

// TestKeepBoundsShareOnePath sets both bounds at once: whichever bites
// first prunes, through the same rollSegment path.
func TestKeepBoundsShareOnePath(t *testing.T) {
	dir := t.TempDir()
	_, roster := testRoster(t, 1)
	fake := clock.NewFake(time.Unix(1_700_000_000, 0))
	w, err := CreateWith(dir, Manifest{Mode: "balb", SegmentSize: 1, Cameras: roster},
		Options{KeepSegments: 3, KeepDuration: time.Hour, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	frames := randomFrames(rng, 1, 6)
	// No time passes: only the count bound bites.
	for i := 0; i < 5; i++ {
		if err := w.AppendFrame(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(segFiles(t, dir)); n != 3 {
		t.Fatalf("count-bounded segments = %d, want 3", n)
	}
	// Two hours idle: the age bound now prunes everything closed.
	fake.Advance(2 * time.Hour)
	if err := w.AppendFrame(&frames[5]); err != nil {
		t.Fatal(err)
	}
	if n := len(segFiles(t, dir)); n != 1 {
		t.Fatalf("age-bounded segments = %d, want 1 (the open one)", n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
