package store

import (
	"bytes"
	"io"
	"path/filepath"
	"reflect"
	"testing"

	"mvs/internal/assoc"
	"mvs/internal/camfault"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/scene"
	"mvs/internal/workload"
)

// TestReplayByteIdentical is the golden replay test (the tentpole's
// acceptance): a 16-camera corridor run with camera faults is recorded
// through the store, then re-driven from the recorded frame log — and
// the replay's snapshot JSONL is byte-for-byte the recorded one.
func TestReplayByteIdentical(t *testing.T) {
	const (
		scenario  = "C16"
		seed      = int64(9)
		frames    = 200
		faultSpec = "seed=7,rate=0.05,mean=10"
		healthK   = 3
	)
	s, err := workload.ByName(scenario, seed)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := s.World.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		t.Fatal(err)
	}
	fcfg, err := camfault.ParseSpec(faultSpec)
	if err != nil {
		t.Fatal(err)
	}
	faults, err := camfault.Generate(fcfg, len(test.Cameras), len(test.Frames))
	if err != nil {
		t.Fatal(err)
	}

	// Record: the run streams through the store's tee, with the store as
	// both frame sink and round sink.
	roster, err := scene.MarshalCameras(test.Cameras)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	w, err := Create(dir, Manifest{
		Scenario: scenario, Seed: seed, TraceFrames: frames,
		Mode: pipeline.BALB.String(), Horizon: 10,
		CamFaults: faultSpec, HealthK: healthK,
		SegmentSize: 32, Cameras: roster,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.NewConfig(pipeline.BALB, seed)
	cfg.Fault.CamFaults = faults
	cfg.Fault.HealthK = healthK
	cfg.Obs.Sink = w
	cfg.Obs.Rounds = w
	eng, err := pipeline.NewEngine(w.Tee(pipeline.NewTraceSource(test)), s.Profiles(), model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	recorded, err := eng.Report()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: same configuration, frames from the store instead of the
	// simulator, snapshots into a buffer.
	run, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if run.NumFrames() != len(test.Frames) {
		t.Fatalf("recorded %d frames, trace has %d", run.NumFrames(), len(test.Frames))
	}
	src, err := run.Source()
	if err != nil {
		t.Fatal(err)
	}
	var replayLog bytes.Buffer
	sink := metrics.NewJSONLSink(&replayLog)
	cfg2 := cfg
	cfg2.Obs.Sink = sink
	cfg2.Obs.Rounds = nil
	eng2, err := pipeline.NewEngine(src, s.Profiles(), model, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err != nil {
		t.Fatal(err)
	}
	replayed, err := eng2.Report()
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(recorded.Modeled(), replayed.Modeled()) {
		t.Fatalf("replayed report diverged from recorded run:\nrec:    %+v\nreplay: %+v",
			recorded.Modeled(), replayed.Modeled())
	}
	want, err := run.SnapshotsRaw()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("recorded run has no snapshot log")
	}
	if !bytes.Equal(want, replayLog.Bytes()) {
		t.Fatalf("replay snapshot log is not byte-identical to the recorded one (%d vs %d bytes)",
			len(replayLog.Bytes()), len(want))
	}

	// The recorded rounds cover every scheduling horizon, gap-free.
	rounds, err := run.Rounds()
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := (len(test.Frames) + 9) / 10
	if len(rounds) != wantRounds {
		t.Fatalf("recorded %d rounds, want %d", len(rounds), wantRounds)
	}
	for i, rd := range rounds {
		if rd.Seq != i || rd.Frame != i*10 {
			t.Fatalf("round %d out of order: %+v", i, rd)
		}
	}

	// Cross-scheduler replay: the same recorded incident re-driven under
	// StaticPartition — the mvreplay -mode path.
	src2, err := run.Source()
	if err != nil {
		t.Fatal(err)
	}
	spCfg := pipeline.NewConfig(pipeline.StaticPartition, seed)
	spCfg.Fault.CamFaults = faults
	spCfg.Fault.HealthK = healthK
	eng3, err := pipeline.NewEngine(src2, s.Profiles(), model, spCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng3.Run(); err != nil {
		t.Fatal(err)
	}
	spRep, err := eng3.Report()
	if err != nil {
		t.Fatal(err)
	}
	if spRep.Frames != len(test.Frames) {
		t.Fatalf("cross-mode replay processed %d frames, want %d", spRep.Frames, len(test.Frames))
	}
	if spRep.Recall <= 0 {
		t.Fatalf("cross-mode replay recall %v", spRep.Recall)
	}

	// A drained replay is exhausted.
	if _, err := src2.Next(); err != io.EOF {
		t.Fatalf("drained replay returned %v, want io.EOF", err)
	}
}
