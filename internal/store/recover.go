package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mvs/internal/scene"
)

// Recovery reports what Recover salvaged from a crashed run.
type Recovery struct {
	// Frames is the replayable frame count after recovery.
	Frames int
	// Snapshots and Rounds are the surviving record counts.
	Snapshots int
	Rounds    int
	// TruncatedBytes is the total torn-tail bytes cut across all logs.
	TruncatedBytes int64
	// DroppedFrames counts valid frame records excluded from the index
	// to align the frame log with the snapshot log (a frame whose
	// snapshot never hit disk cannot be part of a verifiable prefix).
	DroppedFrames int
}

// Recover repairs a run directory after a crash (docs/STREAMING.md §5):
// it validates every log line against its CRC32 (format version 2;
// version-1 lines are validated as JSON only), physically truncates each
// log's torn tail to the last valid record, aligns the frame index to
// the longest prefix covered by both the frame log and the snapshot
// log, writes frames/index.json (which a killed writer never got to),
// and rewrites the manifest with Recovered set. After Recover, Open
// sees a sealed run and mvreplay -verify passes on the recovered
// prefix. Recover is idempotent: on a healthy sealed run it validates
// and rewrites the index without dropping anything.
func Recover(dir string) (*Recovery, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("store: decode manifest: %w", err)
	}
	if man.Version < legacyVersion || man.Version > Version {
		return nil, fmt.Errorf("store: unsupported format version %d (want %d..%d)", man.Version, legacyVersion, Version)
	}
	cams, err := scene.UnmarshalCameras(man.Cameras)
	if err != nil {
		return nil, fmt.Errorf("store: manifest cameras: %w", err)
	}
	segSize := man.SegmentSize
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}

	rec := &Recovery{}

	// Frame segments: walk in ordinal order, keep the longest valid
	// chain of records, truncate the first torn tail, ignore anything
	// after it.
	segs, err := recoverSegments(dir, man.Version, len(cams), segSize, rec)
	if err != nil {
		return nil, err
	}
	frames := 0
	for _, s := range segs {
		frames += s.Count
	}

	// Snapshots and rounds: truncate each to its valid prefix.
	snapPath := filepath.Join(dir, snapshotsFile)
	snaps, err := truncateLog(snapPath, man.Version, -1, rec)
	if err != nil {
		return nil, err
	}
	rounds, err := truncateLog(filepath.Join(dir, roundsFile), man.Version, -1, rec)
	if err != nil {
		return nil, err
	}
	rec.Rounds = rounds

	// Align frame index and snapshot log on their common prefix: a
	// frame without its snapshot (or vice versa) cannot be part of a
	// byte-verifiable replay.
	if len(segs) > 0 && snaps > 0 {
		if snaps > frames {
			if _, err := truncateLog(snapPath, man.Version, frames, rec); err != nil {
				return nil, err
			}
			snaps = frames
		} else if frames > snaps {
			rec.DroppedFrames = frames - snaps
			segs = capSegments(segs, snaps)
			frames = snaps
		}
	}
	rec.Frames = frames
	rec.Snapshots = snaps

	if len(segs) > 0 {
		total := segs[len(segs)-1].First + segs[len(segs)-1].Count
		idx := frameIndex{Frames: total, Segments: segs}
		data, err := json.MarshalIndent(idx, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("store: encode frame index: %w", err)
		}
		if err := os.WriteFile(filepath.Join(dir, framesDir, indexFile), append(data, '\n'), 0o644); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}

	man.Recovered = true
	data, err = json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, manifestFile), append(data, '\n'), 0o644); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return rec, nil
}

// recoverSegments scans frames/seg-*.jsonl in ordinal order and returns
// the surviving segment directory. The writer rolls exactly every
// segSize frames with monotonic ordinals, so segment k starts at stream
// frame k*segSize even when retention deleted earlier files; a torn or
// short segment ends the chain (later segments cannot follow a gap).
func recoverSegments(dir string, version, numCams, segSize int, rec *Recovery) ([]Segment, error) {
	fdir := filepath.Join(dir, framesDir)
	entries, err := os.ReadDir(fdir)
	if os.IsNotExist(err) {
		return nil, nil // capture-only run
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type segFile struct {
		name string
		ord  int
	}
	var files []segFile
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".jsonl") {
			continue
		}
		ord, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".jsonl"))
		if err != nil {
			continue
		}
		files = append(files, segFile{name: name, ord: ord})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].ord < files[j].ord })

	var segs []Segment
	prevOrd := -1
	for _, sf := range files {
		if prevOrd >= 0 && sf.ord != prevOrd+1 {
			break // ordinal gap: the chain ends at the last contiguous segment
		}
		valid, clean, err := truncateFile(filepath.Join(fdir, sf.name), func(line []byte) bool {
			body, err := parseLine(line, version)
			if err != nil {
				return false
			}
			_, err = scene.UnmarshalFrame(body, numCams)
			return err == nil
		}, rec)
		if err != nil {
			return nil, err
		}
		if valid > 0 {
			segs = append(segs, Segment{File: sf.name, First: sf.ord * segSize, Count: valid})
		}
		prevOrd = sf.ord
		// A torn or short segment ends the chain: a later segment would
		// leave a hole in the stream.
		if !clean || valid < segSize {
			break
		}
	}
	return segs, nil
}

// capSegments trims the segment directory so the total count is at most
// keep frames, dropping later segments entirely (Replay honors Count,
// so surplus valid lines need no physical removal).
func capSegments(segs []Segment, keep int) []Segment {
	out := segs[:0]
	for _, s := range segs {
		if keep <= 0 {
			break
		}
		if s.Count > keep {
			s.Count = keep
		}
		keep -= s.Count
		out = append(out, s)
	}
	return out
}

// truncateLog truncates a JSONL log to its valid prefix — and, when
// maxLines >= 0, to at most that many lines — returning the surviving
// line count. A missing file is zero lines, no error.
func truncateLog(path string, version, maxLines int, rec *Recovery) (int, error) {
	valid, _, err := truncateFileN(path, func(line []byte) bool {
		body, err := parseLine(line, version)
		if err != nil {
			return false
		}
		return json.Valid(body)
	}, maxLines, rec)
	return valid, err
}

// truncateFile is truncateFileN without a line bound.
func truncateFile(path string, ok func([]byte) bool, rec *Recovery) (int, bool, error) {
	return truncateFileN(path, ok, -1, rec)
}

// truncateFileN scans path line by line, counts the prefix of lines
// accepted by ok (at most maxLines when >= 0), and physically truncates
// the file right after that prefix. It returns the surviving line count
// and whether the whole file survived.
func truncateFileN(path string, ok func([]byte) bool, maxLines int, rec *Recovery) (int, bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, true, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	valid, off := 0, 0
	for off < len(data) {
		if maxLines >= 0 && valid >= maxLines {
			break
		}
		nl := bytes.IndexByte(data[off:], '\n')
		var line []byte
		var next int
		if nl < 0 {
			line, next = data[off:], len(data)
		} else {
			line, next = data[off:off+nl], off+nl+1
		}
		if len(bytes.TrimSpace(line)) == 0 || !ok(line) {
			break
		}
		valid++
		off = next
	}
	if off == len(data) {
		return valid, true, nil
	}
	rec.TruncatedBytes += int64(len(data) - off)
	if err := os.Truncate(path, int64(off)); err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	return valid, false, nil
}
