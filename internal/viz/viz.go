// Package viz renders the simulated deployments and experiment results
// as standalone SVG files, using only the standard library. Three views
// are provided:
//
//   - a world map: roads, camera positions/orientations, and each
//     camera's ground-visibility footprint — the fastest way to sanity-
//     check a scenario's overlap structure;
//   - a workload chart: the per-camera object-count series of Fig. 2;
//   - a latency bar chart: the per-algorithm comparison of Fig. 13.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"mvs/internal/geom"
	"mvs/internal/scene"
)

// palette are the series colours, chosen to stay distinguishable when
// printed.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

func color(i int) string { return palette[i%len(palette)] }

// svgWriter accumulates SVG elements with an error latch so call sites
// stay linear.
type svgWriter struct {
	sb   strings.Builder
	w, h float64
}

func newSVG(w, h float64) *svgWriter {
	s := &svgWriter{w: w, h: h}
	fmt.Fprintf(&s.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&s.sb, `<rect width="%.0f" height="%.0f" fill="white"/>`+"\n", w, h)
	return s
}

func (s *svgWriter) line(x1, y1, x2, y2 float64, stroke string, width float64) {
	fmt.Fprintf(&s.sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="%.1f"/>`+"\n",
		x1, y1, x2, y2, stroke, width)
}

func (s *svgWriter) circle(x, y, r float64, fill string) {
	fmt.Fprintf(&s.sb, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

func (s *svgWriter) polygon(points []geom.Point, fill string, opacity float64) {
	var pts []string
	for _, p := range points {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", p.X, p.Y))
	}
	fmt.Fprintf(&s.sb, `<polygon points="%s" fill="%s" fill-opacity="%.2f"/>`+"\n",
		strings.Join(pts, " "), fill, opacity)
}

func (s *svgWriter) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&s.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		x, y, w, h, fill)
}

func (s *svgWriter) rectOp(x, y, w, h float64, fill string, opacity float64) {
	fmt.Fprintf(&s.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n",
		x, y, w, h, fill, opacity)
}

func (s *svgWriter) text(x, y float64, size float64, fill, anchor, msg string) {
	fmt.Fprintf(&s.sb, `<text x="%.1f" y="%.1f" font-size="%.0f" font-family="sans-serif" fill="%s" text-anchor="%s">%s</text>`+"\n",
		x, y, size, fill, anchor, escape(msg))
}

func (s *svgWriter) polyline(points []geom.Point, stroke string, width float64) {
	var pts []string
	for _, p := range points {
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", p.X, p.Y))
	}
	fmt.Fprintf(&s.sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%.1f"/>`+"\n",
		strings.Join(pts, " "), stroke, width)
}

func (s *svgWriter) flush(w io.Writer) error {
	s.sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, s.sb.String())
	return err
}

func escape(msg string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(msg)
}

// WorldMap renders the deployment's ground plane: routes as grey
// polylines, cameras as coloured dots with heading arrows, and each
// camera's visibility footprint (sampled on a ground grid) as a
// translucent region.
func WorldMap(w io.Writer, world *scene.World) error {
	if err := world.Validate(); err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	// World bounds: all route waypoints and camera positions, padded.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	grow := func(p geom.Point) {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	for _, r := range world.Routes {
		for d := 0.0; d <= r.Path.Length(); d += r.Path.Length() / 16 {
			if p, _, ok := r.Path.PosAt(d); ok {
				grow(p)
			}
		}
	}
	for _, c := range world.Cameras {
		grow(c.Pos)
	}
	pad := 15.0
	minX -= pad
	minY -= pad
	maxX += pad
	maxY += pad

	const size = 720.0
	scale := size / math.Max(maxX-minX, maxY-minY)
	// SVG y grows downward; world y grows up. Flip.
	toSVG := func(p geom.Point) geom.Point {
		return geom.Point{X: (p.X - minX) * scale, Y: (maxY - p.Y) * scale}
	}

	svg := newSVG((maxX-minX)*scale, (maxY-minY)*scale)

	// Visibility footprints: sample a ground grid per camera.
	step := (maxX - minX) / 90
	for ci, cam := range world.Cameras {
		var cells []geom.Point
		for x := minX; x < maxX; x += step {
			for y := minY; y < maxY; y += step {
				if cam.SeesGround(geom.Point{X: x, Y: y}) {
					cells = append(cells, geom.Point{X: x, Y: y})
				}
			}
		}
		for _, c := range cells {
			p := toSVG(c)
			svg.rectOp(p.X, p.Y-step*scale, step*scale, step*scale, color(ci), 0.10)
		}
	}

	// Routes.
	for _, r := range world.Routes {
		var pts []geom.Point
		n := int(r.Path.Length())
		if n < 2 {
			n = 2
		}
		for i := 0; i <= n; i++ {
			d := r.Path.Length() * float64(i) / float64(n)
			if p, _, ok := r.Path.PosAt(d); ok {
				pts = append(pts, toSVG(p))
			}
		}
		svg.polyline(pts, "#333333", 3)
	}

	// Cameras.
	for ci, cam := range world.Cameras {
		p := toSVG(cam.Pos)
		svg.circle(p.X, p.Y, 7, color(ci))
		dir := geom.Point{X: math.Cos(cam.Yaw), Y: math.Sin(cam.Yaw)}
		tip := toSVG(cam.Pos.Add(dir.Scale(12)))
		svg.line(p.X, p.Y, tip.X, tip.Y, color(ci), 3)
		svg.text(p.X+10, p.Y-8, 14, "#000000", "start", cam.Name)
	}
	svg.text(10, 20, 16, "#000000", "start", "deployment map (shaded = camera visibility footprints)")
	return svg.flush(w)
}

// WorkloadChart renders the Fig. 2 per-camera object-count series.
func WorkloadChart(w io.Writer, names []string, counts [][]int, sampleEverySec float64) error {
	if len(counts) == 0 || len(counts[0]) == 0 {
		return fmt.Errorf("viz: empty workload series")
	}
	const width, height, margin = 860.0, 360.0, 50.0
	svg := newSVG(width, height)

	maxCount := 1
	for _, series := range counts {
		for _, v := range series {
			if v > maxCount {
				maxCount = v
			}
		}
	}
	plotW := width - 2*margin
	plotH := height - 2*margin
	x := func(i int) float64 {
		return margin + plotW*float64(i)/float64(len(counts[0])-1)
	}
	y := func(v int) float64 {
		return height - margin - plotH*float64(v)/float64(maxCount)
	}

	// Axes.
	svg.line(margin, height-margin, width-margin, height-margin, "#000000", 1)
	svg.line(margin, margin, margin, height-margin, "#000000", 1)
	svg.text(width/2, height-10, 13, "#000000", "middle",
		fmt.Sprintf("time (1 sample = %.0f s)", sampleEverySec))
	svg.text(14, height/2, 13, "#000000", "middle", "objects")
	for v := 0; v <= maxCount; v += maxInt(1, maxCount/5) {
		svg.text(margin-8, y(v)+4, 11, "#555555", "end", fmt.Sprintf("%d", v))
		svg.line(margin, y(v), width-margin, y(v), "#eeeeee", 1)
	}

	for ci, series := range counts {
		var pts []geom.Point
		for i, v := range series {
			pts = append(pts, geom.Point{X: x(i), Y: y(v)})
		}
		svg.polyline(pts, color(ci), 2)
		label := fmt.Sprintf("cam %d", ci)
		if ci < len(names) {
			label = names[ci]
		}
		svg.text(width-margin+4, margin+float64(ci)*16, 12, color(ci), "start", label)
	}
	svg.text(margin, 24, 15, "#000000", "start", "per-camera object workload (Fig. 2)")
	return svg.flush(w)
}

// LatencyBars renders the Fig. 13 per-algorithm latency comparison.
func LatencyBars(w io.Writer, labels []string, latencies []time.Duration) error {
	if len(labels) != len(latencies) || len(labels) == 0 {
		return fmt.Errorf("viz: %d labels for %d latencies", len(labels), len(latencies))
	}
	const width, height, margin = 640.0, 360.0, 60.0
	svg := newSVG(width, height)

	var maxLat time.Duration = 1
	for _, l := range latencies {
		if l > maxLat {
			maxLat = l
		}
	}
	plotW := width - 2*margin
	plotH := height - 2*margin
	barW := plotW / float64(len(labels)) * 0.6
	gap := plotW / float64(len(labels))

	svg.line(margin, height-margin, width-margin, height-margin, "#000000", 1)
	for i, l := range latencies {
		h := plotH * float64(l) / float64(maxLat)
		x := margin + gap*float64(i) + (gap-barW)/2
		svg.rect(x, height-margin-h, barW, h, color(i))
		svg.text(x+barW/2, height-margin+16, 12, "#000000", "middle", labels[i])
		svg.text(x+barW/2, height-margin-h-6, 11, "#333333", "middle",
			fmt.Sprintf("%.0fms", float64(l)/1e6))
	}
	svg.text(margin, 24, 15, "#000000", "start", "per-frame inference latency, slowest camera (Fig. 13)")
	return svg.flush(w)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
