package viz

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mvs/internal/workload"
)

func TestWorldMapProducesSVG(t *testing.T) {
	s := workload.S2(1)
	var buf bytes.Buffer
	if err := WorldMap(&buf, s.World); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	// Both cameras must be labelled.
	for _, cam := range s.World.Cameras {
		if !strings.Contains(out, cam.Name) {
			t.Errorf("camera %q missing from map", cam.Name)
		}
	}
	if !strings.Contains(out, "<polyline") {
		t.Error("no route polylines")
	}
	if !strings.Contains(out, "fill-opacity") {
		t.Error("no visibility footprints")
	}
}

func TestWorldMapRejectsInvalidWorld(t *testing.T) {
	s := workload.S2(1)
	s.World.Cameras = nil
	if err := WorldMap(&bytes.Buffer{}, s.World); err == nil {
		t.Fatal("invalid world accepted")
	}
}

func TestWorkloadChart(t *testing.T) {
	var buf bytes.Buffer
	counts := [][]int{{1, 3, 5, 2}, {0, 2, 4, 6}}
	if err := WorkloadChart(&buf, []string{"a", "b"}, counts, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Error("series labels missing")
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("polylines = %d", strings.Count(out, "<polyline"))
	}
}

func TestWorkloadChartRejectsEmpty(t *testing.T) {
	if err := WorkloadChart(&bytes.Buffer{}, nil, nil, 2); err == nil {
		t.Fatal("empty series accepted")
	}
	if err := WorkloadChart(&bytes.Buffer{}, nil, [][]int{{}}, 2); err == nil {
		t.Fatal("zero-length series accepted")
	}
}

func TestLatencyBars(t *testing.T) {
	var buf bytes.Buffer
	labels := []string{"Full", "BALB"}
	lats := []time.Duration{470 * time.Millisecond, 48 * time.Millisecond}
	if err := LatencyBars(&buf, labels, lats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Full") || !strings.Contains(out, "BALB") {
		t.Error("bar labels missing")
	}
	if !strings.Contains(out, "470ms") || !strings.Contains(out, "48ms") {
		t.Error("value annotations missing")
	}
}

func TestLatencyBarsValidation(t *testing.T) {
	if err := LatencyBars(&bytes.Buffer{}, []string{"x"}, nil); err == nil {
		t.Fatal("mismatched inputs accepted")
	}
	if err := LatencyBars(&bytes.Buffer{}, nil, nil); err == nil {
		t.Fatal("empty inputs accepted")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a<b&c>d`); got != "a&lt;b&amp;c&gt;d" {
		t.Fatalf("escape = %q", got)
	}
}
