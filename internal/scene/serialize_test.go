package scene

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	trace, err := testWorld(4).Run(50)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.FPS != trace.FPS {
		t.Fatalf("fps = %v want %v", back.FPS, trace.FPS)
	}
	if len(back.Cameras) != len(trace.Cameras) {
		t.Fatalf("cameras = %d", len(back.Cameras))
	}
	for i, c := range back.Cameras {
		o := trace.Cameras[i]
		if c.Name != o.Name || c.Pos != o.Pos || c.Focal != o.Focal ||
			c.Height != o.Height || c.Yaw != o.Yaw || c.Pitch != o.Pitch ||
			c.ImageW != o.ImageW || c.MaxRange != o.MaxRange {
			t.Fatalf("camera %d differs: %+v vs %+v", i, c, o)
		}
	}
	if len(back.Frames) != len(trace.Frames) {
		t.Fatalf("frames = %d", len(back.Frames))
	}
	for fi := range trace.Frames {
		a, b := &trace.Frames[fi], &back.Frames[fi]
		if a.Index != b.Index || len(a.Objects) != len(b.Objects) {
			t.Fatalf("frame %d metadata differs", fi)
		}
		for oi := range a.Objects {
			if a.Objects[oi] != b.Objects[oi] {
				t.Fatalf("frame %d object %d differs: %+v vs %+v",
					fi, oi, a.Objects[oi], b.Objects[oi])
			}
		}
		for ci := range a.PerCamera {
			if len(a.PerCamera[ci]) != len(b.PerCamera[ci]) {
				t.Fatalf("frame %d camera %d obs count differs", fi, ci)
			}
			for oi := range a.PerCamera[ci] {
				if a.PerCamera[ci][oi] != b.PerCamera[ci][oi] {
					t.Fatalf("frame %d camera %d obs %d differs", fi, ci, oi)
				}
			}
		}
	}
}

func TestTraceRoundTripPreservesProjection(t *testing.T) {
	// A replayed trace's cameras must still project/unproject: the
	// GroundFromPixel path is needed for masks.
	trace, err := testWorld(5).Run(10)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cam := back.Cameras[0]
	if err := cam.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"fps_milli":0,"cameras":[]}`)); err == nil {
		t.Fatal("zero fps accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"fps_milli":10000,"cameras":[]}`)); err == nil {
		t.Fatal("no cameras accepted")
	}
	// A camera that fails validation.
	bad := `{"fps_milli":10000,"cameras":[{"name":"x","height":0,"pitch":0.4,"focal":100,"image_w":10,"image_h":10}]}`
	if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
		t.Fatal("invalid camera accepted")
	}
	// Frame with wrong camera-list count.
	mismatch := `{"fps_milli":10000,"cameras":[{"name":"x","height":5,"pitch":0.4,"focal":100,"image_w":10,"image_h":10}],` +
		`"frames":[{"index":0,"per_camera":[[],[]]}]}`
	if _, err := ReadTrace(strings.NewReader(mismatch)); err == nil {
		t.Fatal("camera-count mismatch accepted")
	}
}
