package scene

import (
	"math"
	"math/rand"
	"testing"

	"mvs/internal/geom"
)

// testCamera returns a camera at the origin looking along +X, mounted
// high enough to see a long stretch of road.
func testCamera() *Camera {
	return &Camera{
		Name:   "c0",
		Pos:    geom.Point{X: 0, Y: 0},
		Height: 8,
		Yaw:    0,
		Pitch:  0.45,
		Focal:  1000,
		ImageW: 1280, ImageH: 704,
		MaxRange: 120,
	}
}

func carAt(x, y float64) ObjectState {
	return ObjectState{
		ID:      1,
		Pos:     geom.Point{X: x, Y: y},
		Heading: 0,
		Dims:    Dims{W: 1.8, L: 4.5, H: 1.5},
	}
}

func TestCameraValidate(t *testing.T) {
	good := testCamera()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Camera){
		func(c *Camera) { c.Height = 0 },
		func(c *Camera) { c.Pitch = 0 },
		func(c *Camera) { c.Pitch = math.Pi },
		func(c *Camera) { c.Focal = 0 },
		func(c *Camera) { c.ImageW = 0 },
	}
	for i, mutate := range cases {
		c := testCamera()
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid camera accepted", i)
		}
	}
}

func TestProjectPointBasics(t *testing.T) {
	c := testCamera()
	// A point straight ahead on the ground projects to the vertical
	// centreline, below the horizon.
	px, ok := c.ProjectPoint(geom.Point{X: 20, Y: 0}, 0)
	if !ok {
		t.Fatal("point ahead not visible")
	}
	if math.Abs(px.X-c.ImageW/2) > 1e-9 {
		t.Fatalf("straight-ahead point off centreline: %v", px)
	}
	horizonY := c.ImageH/2 - c.Focal*math.Tan(c.Pitch)
	if px.Y <= horizonY {
		t.Fatalf("ground point above horizon (%v): %v", horizonY, px)
	}
	// A point behind the camera does not project.
	if _, ok := c.ProjectPoint(geom.Point{X: -20, Y: 0}, 0); ok {
		t.Fatal("point behind camera projected")
	}
	// Nearer points project lower in the image.
	near, _ := c.ProjectPoint(geom.Point{X: 10, Y: 0}, 0)
	far, _ := c.ProjectPoint(geom.Point{X: 60, Y: 0}, 0)
	if near.Y <= far.Y {
		t.Fatalf("near %v not below far %v", near.Y, far.Y)
	}
	// A point to the left (positive Y with yaw 0) projects left of centre.
	left, _ := c.ProjectPoint(geom.Point{X: 20, Y: 5}, 0)
	right, _ := c.ProjectPoint(geom.Point{X: 20, Y: -5}, 0)
	if left.X == right.X {
		t.Fatal("lateral offset not visible in projection")
	}
}

func TestProjectBoxVisible(t *testing.T) {
	c := testCamera()
	box, ok := c.ProjectBox(carAt(25, 0))
	if !ok {
		t.Fatal("car ahead not visible")
	}
	if box.Empty() {
		t.Fatal("empty box for visible car")
	}
	if !c.Frame().ContainsRect(box) {
		t.Fatalf("box %v escapes frame", box)
	}
	// Farther car must be smaller.
	far, ok := c.ProjectBox(carAt(55, 0))
	if !ok {
		t.Fatal("far car not visible")
	}
	if far.Area() >= box.Area() {
		t.Fatalf("far car (%v) not smaller than near (%v)", far.Area(), box.Area())
	}
}

func TestProjectBoxInvisibleCases(t *testing.T) {
	c := testCamera()
	if _, ok := c.ProjectBox(carAt(-30, 0)); ok {
		t.Fatal("car behind camera visible")
	}
	if _, ok := c.ProjectBox(carAt(200, 0)); ok {
		t.Fatal("car beyond MaxRange visible")
	}
	if _, ok := c.ProjectBox(carAt(25, 100)); ok {
		t.Fatal("car far off-axis visible")
	}
}

func TestGroundFromPixelRoundTrip(t *testing.T) {
	c := testCamera()
	for _, p := range []geom.Point{{X: 15, Y: 0}, {X: 40, Y: 8}, {X: 70, Y: -12}, {X: 10, Y: 3}} {
		px, ok := c.ProjectPoint(p, 0)
		if !ok {
			t.Fatalf("point %v not visible", p)
		}
		back, ok := c.GroundFromPixel(px)
		if !ok {
			t.Fatalf("pixel %v not invertible", px)
		}
		if back.Dist(p) > 1e-6 {
			t.Fatalf("round trip %v -> %v -> %v", p, px, back)
		}
	}
}

func TestGroundFromPixelHorizon(t *testing.T) {
	// Use a gentler pitch so the horizon line (v = cy − f·tanP) falls
	// inside the image; pixels above it must not unproject.
	c := testCamera()
	c.Pitch = 0.2 // horizon at v ≈ 352 − 203 = 149
	if _, ok := c.GroundFromPixel(geom.Point{X: 640, Y: 0}); ok {
		t.Fatal("above-horizon pixel hit the ground")
	}
	if _, ok := c.GroundFromPixel(geom.Point{X: 640, Y: 600}); !ok {
		t.Fatal("below-horizon pixel missed the ground")
	}
}

func TestGroundFromPixelYawInvariance(t *testing.T) {
	// Rotating the camera must rotate the unprojected point accordingly.
	c := testCamera()
	c.Yaw = math.Pi / 2 // looking along +Y
	px, ok := c.ProjectPoint(geom.Point{X: 0, Y: 30}, 0)
	if !ok {
		t.Fatal("point along view dir not visible")
	}
	back, ok := c.GroundFromPixel(px)
	if !ok || back.Dist(geom.Point{X: 0, Y: 30}) > 1e-6 {
		t.Fatalf("yawed round trip = %v, %v", back, ok)
	}
}

func TestSeesGround(t *testing.T) {
	c := testCamera()
	if !c.SeesGround(geom.Point{X: 30, Y: 0}) {
		t.Fatal("ground point ahead not seen")
	}
	if c.SeesGround(geom.Point{X: -30, Y: 0}) {
		t.Fatal("ground point behind seen")
	}
}

func TestPathBasics(t *testing.T) {
	p, err := NewPath(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0}, geom.Point{X: 10, Y: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Length() != 20 {
		t.Fatalf("length = %v", p.Length())
	}
	pos, heading, ok := p.PosAt(5)
	if !ok || pos != (geom.Point{X: 5, Y: 0}) || heading != 0 {
		t.Fatalf("PosAt(5) = %v %v %v", pos, heading, ok)
	}
	pos, heading, ok = p.PosAt(15)
	if !ok || pos != (geom.Point{X: 10, Y: 5}) || math.Abs(heading-math.Pi/2) > 1e-9 {
		t.Fatalf("PosAt(15) = %v %v %v", pos, heading, ok)
	}
	if _, _, ok := p.PosAt(25); ok {
		t.Fatal("beyond end should be done")
	}
	if _, _, ok := p.PosAt(-1); ok {
		t.Fatal("negative dist should be invalid")
	}
}

func TestPathErrors(t *testing.T) {
	if _, err := NewPath(geom.Point{}); err == nil {
		t.Fatal("single waypoint accepted")
	}
	if _, err := NewPath(geom.Point{X: 1}, geom.Point{X: 1}); err == nil {
		t.Fatal("zero segment accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustPath did not panic")
		}
	}()
	MustPath(geom.Point{})
}

func TestPoissonArrivalsRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Poisson{RatePerSec: 2}
	total := 0
	frames := 10000
	fps := 10.0
	for f := 0; f < frames; f++ {
		total += p.Arrivals(f, fps, rng)
	}
	// Expect ~2 arrivals/sec * 1000 sec = 2000, allow 10%.
	if total < 1800 || total > 2200 {
		t.Fatalf("total arrivals = %d, want ~2000", total)
	}
}

func TestTrafficLightGatesArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tl := TrafficLight{RatePerSec: 5, PeriodSec: 10, GreenStartSec: 0, GreenDurSec: 3}
	fps := 10.0
	greenTotal, redTotal := 0, 0
	for f := 0; f < 20000; f++ {
		sec := math.Mod(float64(f)/fps, 10)
		n := tl.Arrivals(f, fps, rng)
		if sec < 3 {
			greenTotal += n
		} else {
			redTotal += n
		}
	}
	if redTotal != 0 {
		t.Fatalf("arrivals during red: %d", redTotal)
	}
	if greenTotal == 0 {
		t.Fatal("no arrivals during green")
	}
}

func TestTrafficLightOffsetPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tl := TrafficLight{RatePerSec: 5, PeriodSec: 10, GreenStartSec: 7, GreenDurSec: 5}
	fps := 10.0
	// Green wraps the period boundary: [7, 10) and [0, 2).
	for f := 0; f < 2000; f++ {
		sec := math.Mod(float64(f)/fps, 10)
		n := tl.Arrivals(f, fps, rng)
		inGreen := sec >= 7 || sec < 2
		if n > 0 && !inGreen {
			t.Fatalf("arrival at sec %v outside wrapped green", sec)
		}
	}
}

func TestBurst(t *testing.T) {
	b := Burst{Frame: 5, Count: 3}
	if b.Arrivals(5, 10, nil) != 3 {
		t.Fatal("burst frame wrong")
	}
	if b.Arrivals(4, 10, nil) != 0 || b.Arrivals(6, 10, nil) != 0 {
		t.Fatal("non-burst frame spawned")
	}
}

func testWorld(seed int64) *World {
	road := MustPath(geom.Point{X: 5, Y: -40}, geom.Point{X: 5, Y: 40})
	camA := &Camera{
		Name: "a", Pos: geom.Point{X: 0, Y: -50}, Height: 8, Yaw: math.Pi / 2,
		Pitch: 0.4, Focal: 1000, ImageW: 1280, ImageH: 704, MaxRange: 100,
	}
	camB := &Camera{
		Name: "b", Pos: geom.Point{X: 0, Y: 50}, Height: 8, Yaw: -math.Pi / 2,
		Pitch: 0.4, Focal: 1000, ImageW: 1280, ImageH: 704, MaxRange: 100,
	}
	return &World{
		Routes: []Route{{
			Path: road, Speed: 8, Arrivals: Poisson{RatePerSec: 0.5},
		}},
		Cameras: []*Camera{camA, camB},
		FPS:     10,
		Seed:    seed,
	}
}

func TestWorldRunProducesTraffic(t *testing.T) {
	w := testWorld(1)
	trace, err := w.Run(600)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Frames) != 600 {
		t.Fatalf("frames = %d", len(trace.Frames))
	}
	totalObjects := 0
	totalObs := 0
	for _, f := range trace.Frames {
		totalObjects += len(f.Objects)
		for _, obs := range f.PerCamera {
			totalObs += len(obs)
		}
	}
	if totalObjects == 0 {
		t.Fatal("no objects simulated")
	}
	if totalObs == 0 {
		t.Fatal("no observations projected")
	}
}

func TestWorldDeterministic(t *testing.T) {
	t1, err := testWorld(7).Run(200)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := testWorld(7).Run(200)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1.Frames {
		if len(t1.Frames[i].Objects) != len(t2.Frames[i].Objects) {
			t.Fatalf("frame %d differs", i)
		}
		for j := range t1.Frames[i].Objects {
			if t1.Frames[i].Objects[j] != t2.Frames[i].Objects[j] {
				t.Fatalf("frame %d object %d differs", i, j)
			}
		}
	}
	t3, err := testWorld(8).Run(200)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1.Frames {
		if len(t1.Frames[i].Objects) != len(t3.Frames[i].Objects) {
			same = false
			break
		}
	}
	if same {
		t.Log("warning: different seeds produced same object counts (possible, unlikely)")
	}
}

func TestWorldObjectsMoveAndLeave(t *testing.T) {
	w := testWorld(3)
	w.Routes[0].Arrivals = Burst{Frame: 0, Count: 1}
	trace, err := w.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Frames[0].Objects) != 1 {
		t.Fatalf("frame 0 objects = %d", len(trace.Frames[0].Objects))
	}
	first := trace.Frames[0].Objects[0]
	later := trace.Frames[10].Objects
	if len(later) != 1 {
		t.Fatalf("object vanished early")
	}
	if later[0].Pos == first.Pos {
		t.Fatal("object did not move")
	}
	// Path is 80m at ~8 m/s => gone by frame ~110.
	if len(trace.Frames[399].Objects) != 0 {
		t.Fatal("object did not leave the world")
	}
}

func TestWorldValidate(t *testing.T) {
	w := testWorld(1)
	w.FPS = 0
	if _, err := w.Run(10); err == nil {
		t.Fatal("zero fps accepted")
	}
	w = testWorld(1)
	w.Routes = nil
	if _, err := w.Run(10); err == nil {
		t.Fatal("no routes accepted")
	}
	w = testWorld(1)
	w.Cameras = nil
	if _, err := w.Run(10); err == nil {
		t.Fatal("no cameras accepted")
	}
	w = testWorld(1)
	if _, err := w.Run(0); err == nil {
		t.Fatal("zero frames accepted")
	}
	w = testWorld(1)
	w.Routes[0].Speed = 0
	if _, err := w.Run(10); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestOverlappingViewsShareObjects(t *testing.T) {
	// Both cameras face the road from opposite ends; mid-road objects
	// should be visible to both.
	w := testWorld(5)
	w.Routes[0].Arrivals = Burst{Frame: 0, Count: 1}
	trace, err := w.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, f := range trace.Frames {
		if len(f.PerCamera[0]) > 0 && len(f.PerCamera[1]) > 0 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no frame had the object visible from both cameras")
	}
}

func TestSplitTrain(t *testing.T) {
	trace, err := testWorld(1).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trace.SplitTrain()
	if len(train.Frames) != 50 || len(test.Frames) != 50 {
		t.Fatalf("split = %d/%d", len(train.Frames), len(test.Frames))
	}
	if test.Frames[0].Index != 50 {
		t.Fatalf("test starts at frame %d", test.Frames[0].Index)
	}
}

func TestObjectCounts(t *testing.T) {
	trace, err := testWorld(2).Run(100)
	if err != nil {
		t.Fatal(err)
	}
	counts := trace.ObjectCounts(20)
	if len(counts) != 2 {
		t.Fatalf("cameras = %d", len(counts))
	}
	if len(counts[0]) != 5 {
		t.Fatalf("samples = %d", len(counts[0]))
	}
	// sampleEvery <= 0 defaults to 1.
	all := trace.ObjectCounts(0)
	if len(all[0]) != 100 {
		t.Fatalf("default sampling = %d", len(all[0]))
	}
}

func TestVisibleObjectIDs(t *testing.T) {
	f := FrameTruth{
		PerCamera: [][]Observation{
			{{ObjectID: 1}, {ObjectID: 2}},
			{{ObjectID: 2}, {ObjectID: 3}},
		},
	}
	ids := f.VisibleObjectIDs()
	if len(ids) != 3 || !ids[1] || !ids[2] || !ids[3] {
		t.Fatalf("ids = %v", ids)
	}
}

func TestHeadwayPreventsStacking(t *testing.T) {
	w := testWorld(9)
	w.Routes[0].Arrivals = Burst{Frame: 0, Count: 5}
	w.Routes[0].HeadwayMin = 8
	trace, err := w.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	// At every frame, vehicles on the route must be >= ~headway apart.
	for _, f := range trace.Frames {
		for i := 0; i < len(f.Objects); i++ {
			for j := i + 1; j < len(f.Objects); j++ {
				d := f.Objects[i].Pos.Dist(f.Objects[j].Pos)
				if d < 4 { // allow some slack for speed jitter catching up
					t.Fatalf("frame %d: vehicles %d apart", f.Index, int(d))
				}
			}
		}
	}
}

func TestOcclusionHidesFartherObject(t *testing.T) {
	w := testWorld(11)
	w.OcclusionFrac = 0.5
	// Two vehicles in single file along the road toward camera A.
	w.Routes[0].Arrivals = Burst{Frame: 0, Count: 2}
	w.Routes[0].HeadwayMin = 7
	w.Routes[0].SpeedJitter = 0.001
	withOcc, err := w.Run(150)
	if err != nil {
		t.Fatal(err)
	}
	w2 := testWorld(11)
	w2.Routes[0].Arrivals = Burst{Frame: 0, Count: 2}
	w2.Routes[0].HeadwayMin = 7
	w2.Routes[0].SpeedJitter = 0.001
	noOcc, err := w2.Run(150)
	if err != nil {
		t.Fatal(err)
	}
	// Camera A looks straight down the road: the trailing vehicle must
	// be hidden in at least some frames that the occlusion-free world
	// shows it in.
	hiddenFrames := 0
	for fi := range withOcc.Frames {
		if len(noOcc.Frames[fi].PerCamera[0]) > len(withOcc.Frames[fi].PerCamera[0]) {
			hiddenFrames++
		}
	}
	if hiddenFrames == 0 {
		t.Fatal("occlusion never hid anything in a single-file convoy")
	}
}

func TestOcclusionDisabledByDefault(t *testing.T) {
	w := testWorld(12)
	if w.OcclusionFrac != 0 {
		t.Fatal("occlusion enabled by default")
	}
}

func TestOcclusionNeverHidesNearest(t *testing.T) {
	w := testWorld(13)
	w.OcclusionFrac = 0.3
	w.Routes[0].Arrivals = Burst{Frame: 0, Count: 3}
	trace, err := w.Run(120)
	if err != nil {
		t.Fatal(err)
	}
	// In every frame where the occlusion-free projection would show
	// something, the nearest visible object must survive occlusion
	// filtering (only strictly closer objects can hide).
	for fi := range trace.Frames {
		f := &trace.Frames[fi]
		if len(f.Objects) == 0 {
			continue
		}
		for ci, cam := range trace.Cameras {
			// Find the nearest object that projects at all.
			nearestID := -1
			nearestDist := 1e18
			for _, s := range f.Objects {
				if _, ok := cam.ProjectBox(s); !ok {
					continue
				}
				if d := s.Pos.Dist(cam.Pos); d < nearestDist {
					nearestDist = d
					nearestID = s.ID
				}
			}
			if nearestID == -1 {
				continue
			}
			found := false
			for _, o := range f.PerCamera[ci] {
				if o.ObjectID == nearestID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("frame %d cam %d: nearest object %d occluded", fi, ci, nearestID)
			}
		}
	}
}

func BenchmarkProjectBox(b *testing.B) {
	c := testCamera()
	s := carAt(30, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.ProjectBox(s); !ok {
			b.Fatal("not visible")
		}
	}
}

func BenchmarkWorldRun100Frames(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := testWorld(int64(i)).Run(100); err != nil {
			b.Fatal(err)
		}
	}
}
