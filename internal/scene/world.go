package scene

import (
	"fmt"
	"math"
	"math/rand"

	"mvs/internal/geom"
)

// Path is a polyline route through the world, parameterized by arc
// length.
type Path struct {
	waypoints []geom.Point
	cumLen    []float64
}

// NewPath builds a path from at least two waypoints.
func NewPath(waypoints ...geom.Point) (*Path, error) {
	if len(waypoints) < 2 {
		return nil, fmt.Errorf("scene: path needs >= 2 waypoints, got %d", len(waypoints))
	}
	p := &Path{waypoints: waypoints, cumLen: make([]float64, len(waypoints))}
	for i := 1; i < len(waypoints); i++ {
		seg := waypoints[i].Dist(waypoints[i-1])
		if seg <= 0 {
			return nil, fmt.Errorf("scene: path has zero-length segment at %d", i)
		}
		p.cumLen[i] = p.cumLen[i-1] + seg
	}
	return p, nil
}

// MustPath is NewPath that panics on error, for static scenario tables.
func MustPath(waypoints ...geom.Point) *Path {
	p, err := NewPath(waypoints...)
	if err != nil {
		panic(err)
	}
	return p
}

// Length returns the total path length in metres.
func (p *Path) Length() float64 { return p.cumLen[len(p.cumLen)-1] }

// PosAt returns the position and heading at the given arc length. The
// boolean is false when dist is beyond the end of the path (the object
// has left the world).
func (p *Path) PosAt(dist float64) (geom.Point, float64, bool) {
	if dist < 0 || dist > p.Length() {
		return geom.Point{}, 0, false
	}
	// Find the segment containing dist.
	seg := 1
	for seg < len(p.cumLen)-1 && p.cumLen[seg] < dist {
		seg++
	}
	a, b := p.waypoints[seg-1], p.waypoints[seg]
	segStart := p.cumLen[seg-1]
	segLen := p.cumLen[seg] - segStart
	t := (dist - segStart) / segLen
	pos := a.Lerp(b, t)
	heading := math.Atan2(b.Y-a.Y, b.X-a.X)
	return pos, heading, true
}

// ArrivalProcess decides how many new objects enter a route at each
// frame.
type ArrivalProcess interface {
	// Arrivals returns the number of objects spawning at the given frame
	// index. fps converts frames to seconds; rng provides determinism.
	Arrivals(frame int, fps float64, rng *rand.Rand) int
}

// Poisson is a memoryless arrival process with a constant rate, used for
// the sparse residential scenario (S2).
type Poisson struct {
	// RatePerSec is the expected arrivals per second.
	RatePerSec float64
}

// Arrivals implements ArrivalProcess by Knuth's Poisson sampling with
// mean RatePerSec/fps.
func (p Poisson) Arrivals(_ int, fps float64, rng *rand.Rand) int {
	return samplePoisson(p.RatePerSec/fps, rng)
}

// TrafficLight gates a Poisson process with a periodic green phase,
// producing the platooned, periodic workload of a signalized intersection
// (S1): "regular traffic patterns are observed caused by the traffic
// lights".
type TrafficLight struct {
	// RatePerSec is the arrival rate during green.
	RatePerSec float64
	// PeriodSec is the full light cycle length in seconds.
	PeriodSec float64
	// GreenStartSec is when the green phase begins within the cycle.
	GreenStartSec float64
	// GreenDurSec is the green phase duration.
	GreenDurSec float64
}

// Arrivals implements ArrivalProcess.
func (t TrafficLight) Arrivals(frame int, fps float64, rng *rand.Rand) int {
	sec := math.Mod(float64(frame)/fps, t.PeriodSec)
	phase := sec - t.GreenStartSec
	if phase < 0 {
		phase += t.PeriodSec
	}
	if phase >= t.GreenDurSec {
		return 0
	}
	return samplePoisson(t.RatePerSec/fps, rng)
}

// Burst spawns a fixed number of objects at one specific frame — useful
// for tests and for stressing the distributed stage with synchronized
// arrivals.
type Burst struct {
	// Frame is the spawn frame index.
	Frame int
	// Count is how many objects appear.
	Count int
}

// Arrivals implements ArrivalProcess.
func (b Burst) Arrivals(frame int, _ float64, _ *rand.Rand) int {
	if frame == b.Frame {
		return b.Count
	}
	return 0
}

func samplePoisson(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's algorithm; mean is << 1 per frame in all our workloads.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Route is a path plus its traffic: objects spawn per the arrival process
// and travel the path at a per-object randomized speed.
type Route struct {
	// Path is the route geometry.
	Path *Path
	// Speed is the nominal travel speed (m/s).
	Speed float64
	// SpeedJitter is the relative std-dev of per-object speed (default
	// 0.1).
	SpeedJitter float64
	// Arrivals drives object spawning.
	Arrivals ArrivalProcess
	// HeadwayMin is the minimum spawn gap in metres to the previous
	// vehicle on the route (default 6).
	HeadwayMin float64
}

// vehicleTypes are the sampled physical classes (car, SUV, truck) with
// rough AIC21-like proportions.
var vehicleTypes = []struct {
	dims   Dims
	weight float64
}{
	{Dims{W: 1.8, L: 4.5, H: 1.5}, 0.65}, // car
	{Dims{W: 2.0, L: 5.0, H: 1.9}, 0.25}, // SUV / van
	{Dims{W: 2.5, L: 8.0, H: 3.2}, 0.10}, // truck / bus
}

func sampleDims(rng *rand.Rand) Dims {
	r := rng.Float64()
	for _, vt := range vehicleTypes {
		if r < vt.weight {
			d := vt.dims
			j := 1 + rng.NormFloat64()*0.05
			return Dims{W: d.W * j, L: d.L * j, H: d.H * j}
		}
		r -= vt.weight
	}
	return vehicleTypes[0].dims
}

// World is the full simulated deployment: routes, cameras, and timing.
type World struct {
	// Routes carry the traffic.
	Routes []Route
	// Cameras observe the scene.
	Cameras []*Camera
	// FPS is the camera sampling rate (the paper uses 10).
	FPS float64
	// Seed drives all stochastic choices.
	Seed int64
	// OcclusionFrac enables dynamic occlusions: an object whose projected
	// box is covered at least this fraction by a closer object's box is
	// invisible to that camera. 0 disables occlusion (the default); the
	// paper's §V "dynamic occlusion" experiments use ~0.6.
	OcclusionFrac float64
}

// Validate checks the world configuration.
func (w *World) Validate() error {
	if len(w.Routes) == 0 {
		return fmt.Errorf("scene: world has no routes")
	}
	if len(w.Cameras) == 0 {
		return fmt.Errorf("scene: world has no cameras")
	}
	if w.FPS <= 0 {
		return fmt.Errorf("scene: fps %v must be positive", w.FPS)
	}
	for i, r := range w.Routes {
		if r.Path == nil {
			return fmt.Errorf("scene: route %d has nil path", i)
		}
		if r.Speed <= 0 {
			return fmt.Errorf("scene: route %d speed %v must be positive", i, r.Speed)
		}
		if r.Arrivals == nil {
			return fmt.Errorf("scene: route %d has nil arrival process", i)
		}
	}
	for _, c := range w.Cameras {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Observation is one camera's view of one object at one frame.
type Observation struct {
	// ObjectID is the world-unique object identity (ground truth; the
	// analytics pipeline must not use it for matching, only for scoring).
	ObjectID int
	// Box is the projected pixel bounding box.
	Box geom.Rect
}

// FrameTruth is the full ground truth for a single frame.
type FrameTruth struct {
	// Index is the frame number.
	Index int
	// Objects are all live objects, whether or not any camera sees them.
	Objects []ObjectState
	// PerCamera has, for each camera (same order as World.Cameras), the
	// objects visible to it with their pixel boxes.
	PerCamera [][]Observation
}

// VisibleObjectIDs returns the set of objects visible to at least one
// camera this frame — the denominator of the paper's object recall.
func (f *FrameTruth) VisibleObjectIDs() map[int]bool {
	out := make(map[int]bool)
	for _, obs := range f.PerCamera {
		for _, o := range obs {
			out[o.ObjectID] = true
		}
	}
	return out
}

// Trace is a completed simulation: per-frame ground truth plus the camera
// roster that produced it.
type Trace struct {
	// FPS is the frame rate the trace was generated at.
	FPS float64
	// Cameras are the world's cameras, for projection bookkeeping.
	Cameras []*Camera
	// Frames are the per-frame ground truths, in order.
	Frames []FrameTruth
}

// vehicle is the internal per-object simulation state.
type vehicle struct {
	id         int
	route      int
	spawnFrame int
	speed      float64
	dims       Dims
	offset     float64 // initial arc-length offset (headway stacking)
}

// Run simulates numFrames frames and returns the trace. It is
// deterministic for a fixed (world, numFrames) pair.
func (w *World) Run(numFrames int) (*Trace, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if numFrames <= 0 {
		return nil, fmt.Errorf("scene: numFrames %d must be positive", numFrames)
	}
	rng := rand.New(rand.NewSource(w.Seed*6364136223846793005 + 1442695040888963407))

	trace := &Trace{FPS: w.FPS, Cameras: w.Cameras, Frames: make([]FrameTruth, 0, numFrames)}
	var live []*vehicle
	nextID := 1
	// lastSpawnDist tracks per-route the most recent spawn's current
	// distance, to enforce headway.
	for frame := 0; frame < numFrames; frame++ {
		// Spawns.
		for ri := range w.Routes {
			r := &w.Routes[ri]
			n := r.Arrivals.Arrivals(frame, w.FPS, rng)
			for k := 0; k < n; k++ {
				jitter := r.SpeedJitter
				if jitter <= 0 {
					jitter = 0.1
				}
				speed := r.Speed * (1 + rng.NormFloat64()*jitter)
				if speed < r.Speed*0.3 {
					speed = r.Speed * 0.3
				}
				headway := r.HeadwayMin
				if headway <= 0 {
					headway = 6
				}
				v := &vehicle{
					id:         nextID,
					route:      ri,
					spawnFrame: frame,
					speed:      speed,
					dims:       sampleDims(rng),
				}
				// Enforce headway: if another vehicle on this route is
				// still near the route start, hold this one back by
				// spawning it with a negative offset (it enters later).
				for _, u := range live {
					if u.route != ri {
						continue
					}
					ud := u.distAt(frame, w.FPS)
					if ud-v.offset < headway {
						v.offset = ud - headway
					}
				}
				nextID++
				live = append(live, v)
			}
		}

		// Advance and collect states.
		ft := FrameTruth{Index: frame}
		survivors := live[:0]
		for _, v := range live {
			d := v.distAt(frame, w.FPS)
			if d < 0 {
				// Held back by headway; not yet in the world.
				survivors = append(survivors, v)
				continue
			}
			pos, heading, ok := w.Routes[v.route].Path.PosAt(d)
			if !ok {
				continue // left the world
			}
			survivors = append(survivors, v)
			ft.Objects = append(ft.Objects, ObjectState{
				ID:      v.id,
				Pos:     pos,
				Heading: heading,
				Speed:   v.speed,
				Dims:    v.dims,
			})
		}
		live = survivors

		// Project per camera, applying occlusion if modelled.
		ft.PerCamera = make([][]Observation, len(w.Cameras))
		for ci, cam := range w.Cameras {
			type proj struct {
				obs  Observation
				dist float64
			}
			var projs []proj
			for _, s := range ft.Objects {
				if box, ok := cam.ProjectBox(s); ok {
					projs = append(projs, proj{
						obs:  Observation{ObjectID: s.ID, Box: box},
						dist: s.Pos.Dist(cam.Pos),
					})
				}
			}
			if w.OcclusionFrac > 0 {
				// Nearer objects can hide farther ones: an object is
				// dropped when a strictly closer box covers enough of it.
				for i := 0; i < len(projs); i++ {
					a := &projs[i]
					hidden := false
					for j := range projs {
						b := &projs[j]
						if i == j || b.dist >= a.dist {
							continue
						}
						area := a.obs.Box.Area()
						if area <= 0 {
							continue
						}
						if a.obs.Box.Intersect(b.obs.Box).Area()/area >= w.OcclusionFrac {
							hidden = true
							break
						}
					}
					if !hidden {
						ft.PerCamera[ci] = append(ft.PerCamera[ci], a.obs)
					}
				}
			} else {
				for _, p := range projs {
					ft.PerCamera[ci] = append(ft.PerCamera[ci], p.obs)
				}
			}
		}
		trace.Frames = append(trace.Frames, ft)
	}
	return trace, nil
}

// distAt returns the vehicle's arc-length position at the given frame.
func (v *vehicle) distAt(frame int, fps float64) float64 {
	return v.offset + v.speed*float64(frame-v.spawnFrame)/fps
}

// SplitTrain splits the trace into train/test halves, following the
// paper's protocol ("we use half length of the video to train the
// cross-camera object association model ... and use the remaining half
// for testing").
func (t *Trace) SplitTrain() (train, test *Trace) {
	mid := len(t.Frames) / 2
	train = &Trace{FPS: t.FPS, Cameras: t.Cameras, Frames: t.Frames[:mid]}
	test = &Trace{FPS: t.FPS, Cameras: t.Cameras, Frames: t.Frames[mid:]}
	return train, test
}

// ObjectCounts returns, per camera, the time series of visible-object
// counts sampled every sampleEvery frames — the data behind the paper's
// Fig. 2.
func (t *Trace) ObjectCounts(sampleEvery int) [][]int {
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	out := make([][]int, len(t.Cameras))
	for fi := 0; fi < len(t.Frames); fi += sampleEvery {
		for ci := range t.Cameras {
			out[ci] = append(out[ci], len(t.Frames[fi].PerCamera[ci]))
		}
	}
	return out
}

// CoObservation returns the pairwise co-observation counts of the
// trace: counts[i][j] is the number of (frame, object) pairs observed
// by both camera i and camera j in the same frame. The matrix is
// symmetric with a zero diagonal. It is the ground-truth input to the
// fleet's overlap graph (shard.FromCoObservation): two cameras that
// never co-observe an object never need to share a scheduling round.
func (t *Trace) CoObservation() [][]int {
	n := len(t.Cameras)
	counts := make([][]int, n)
	for i := range counts {
		counts[i] = make([]int, n)
	}
	for fi := range t.Frames {
		f := &t.Frames[fi]
		// seen[id] lists the cameras observing object id this frame.
		seen := make(map[int][]int)
		for ci := range f.PerCamera {
			for _, o := range f.PerCamera[ci] {
				seen[o.ObjectID] = append(seen[o.ObjectID], ci)
			}
		}
		for _, cams := range seen {
			for a := 0; a < len(cams); a++ {
				for b := a + 1; b < len(cams); b++ {
					counts[cams[a]][cams[b]]++
					counts[cams[b]][cams[a]]++
				}
			}
		}
	}
	return counts
}
