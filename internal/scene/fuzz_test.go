package scene

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace feeds arbitrary JSON to the trace decoder: it must never
// panic, and anything it accepts must round-trip through Save.
func FuzzReadTrace(f *testing.F) {
	trace, err := testWorld(1).Run(5)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := trace.Save(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(`{"fps_milli":10000,"cameras":[]}`)
	f.Add(`{"fps_milli":-1}`)
	f.Add(`garbage`)
	f.Add(`{"fps_milli":10000,"cameras":[{"name":"x","height":5,"pitch":0.4,"focal":100,"image_w":10,"image_h":10}],"frames":[{"index":0,"per_camera":[[]]}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces must re-serialize and re-parse losslessly.
		var buf bytes.Buffer
		if err := got.Save(&buf); err != nil {
			t.Fatalf("accepted trace failed to save: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("own encoding rejected: %v", err)
		}
		if len(again.Frames) != len(got.Frames) || len(again.Cameras) != len(got.Cameras) {
			t.Fatal("round trip changed shape")
		}
	})
}
