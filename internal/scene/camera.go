// Package scene simulates the multi-camera world that stands in for the
// AI City Challenge dataset: vehicles follow road paths through a
// monitored area while statically mounted cameras with partially
// overlapping fields of view project them to per-camera pixel bounding
// boxes.
//
// The camera model is a full pinhole projection of 3D vehicle boxes (not
// a planar map), so the pixel-space mapping of a bounding box between two
// cameras is genuinely non-linear in the box coordinates — the property
// that makes the paper's KNN association outperform homography (Fig. 11).
package scene

import (
	"fmt"
	"math"

	"mvs/internal/geom"
)

// Dims is the physical size of an object in metres.
type Dims struct {
	// W is width (across the heading), L length (along it), H height.
	W, L, H float64
}

// ObjectState is the ground truth for one object at one frame.
type ObjectState struct {
	// ID is a world-unique object identifier.
	ID int
	// Pos is the ground-plane position of the object's centre (metres).
	Pos geom.Point
	// Heading is the travel direction in radians.
	Heading float64
	// Speed is the current speed in metres/second.
	Speed float64
	// Dims is the physical bounding box.
	Dims Dims
}

// Camera is a statically mounted pinhole camera observing the ground
// plane.
type Camera struct {
	// Name labels the camera in experiment output.
	Name string
	// Pos is the ground position of the mount (metres).
	Pos geom.Point
	// Height is the mount height above ground (metres).
	Height float64
	// Yaw is the viewing direction in the ground plane (radians).
	Yaw float64
	// Pitch is the downward tilt (radians, positive = down).
	Pitch float64
	// Focal is the focal length in pixels.
	Focal float64
	// ImageW, ImageH are the image dimensions in pixels.
	ImageW, ImageH float64
	// MaxRange is the furthest ground distance (metres) at which objects
	// are still visible; 0 means unlimited.
	MaxRange float64
	// MinPixelArea is the smallest projected box area still considered
	// visible (objects smaller than this are below detector resolution).
	MinPixelArea float64
}

// Validate checks the camera parameters.
func (c *Camera) Validate() error {
	if c.Height <= 0 {
		return fmt.Errorf("scene: camera %q height %v must be positive", c.Name, c.Height)
	}
	if c.Pitch <= 0 || c.Pitch >= math.Pi/2 {
		return fmt.Errorf("scene: camera %q pitch %v must be in (0, pi/2)", c.Name, c.Pitch)
	}
	if c.Focal <= 0 {
		return fmt.Errorf("scene: camera %q focal %v must be positive", c.Name, c.Focal)
	}
	if c.ImageW <= 0 || c.ImageH <= 0 {
		return fmt.Errorf("scene: camera %q image %vx%v must be positive", c.Name, c.ImageW, c.ImageH)
	}
	return nil
}

// Frame returns the camera's image rectangle in pixels.
func (c *Camera) Frame() geom.Rect {
	return geom.Rect{MinX: 0, MinY: 0, MaxX: c.ImageW, MaxY: c.ImageH}
}

// nearPlane is the minimum forward distance (metres) for a point to
// project; anything closer is behind or degenerate.
const nearPlane = 0.5

// camCoords converts a world point at height z to (right, down, forward)
// camera coordinates.
func (c *Camera) camCoords(p geom.Point, z float64) (x, y, zc float64) {
	d := p.Sub(c.Pos)
	cosT, sinT := math.Cos(c.Yaw), math.Sin(c.Yaw)
	forward := d.X*cosT + d.Y*sinT
	lateral := -d.X*sinT + d.Y*cosT
	cosP, sinP := math.Cos(c.Pitch), math.Sin(c.Pitch)
	x = lateral
	y = (c.Height-z)*cosP - forward*sinP
	zc = forward*cosP + (c.Height-z)*sinP
	return x, y, zc
}

// ProjectPoint projects a world point at height z to pixel coordinates.
// The boolean is false when the point is behind the near plane.
func (c *Camera) ProjectPoint(p geom.Point, z float64) (geom.Point, bool) {
	x, y, zc := c.camCoords(p, z)
	if zc < nearPlane {
		return geom.Point{}, false
	}
	return geom.Point{
		X: c.ImageW/2 + c.Focal*x/zc,
		Y: c.ImageH/2 + c.Focal*y/zc,
	}, true
}

// ProjectBox projects the 3D bounding box of an object state to its 2D
// pixel bounding box, clipped to the image. The boolean reports
// visibility: every corner in front of the camera, the ground centre
// within range, and enough projected area inside the frame.
func (c *Camera) ProjectBox(s ObjectState) (geom.Rect, bool) {
	if c.MaxRange > 0 && s.Pos.Dist(c.Pos) > c.MaxRange {
		return geom.Rect{}, false
	}
	cosH, sinH := math.Cos(s.Heading), math.Sin(s.Heading)
	fwd := geom.Point{X: cosH, Y: sinH}
	side := geom.Point{X: -sinH, Y: cosH}

	box := geom.Rect{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
	for _, df := range []float64{-s.Dims.L / 2, s.Dims.L / 2} {
		for _, ds := range []float64{-s.Dims.W / 2, s.Dims.W / 2} {
			corner := s.Pos.Add(fwd.Scale(df)).Add(side.Scale(ds))
			for _, z := range []float64{0, s.Dims.H} {
				px, ok := c.ProjectPoint(corner, z)
				if !ok {
					return geom.Rect{}, false
				}
				box.MinX = math.Min(box.MinX, px.X)
				box.MinY = math.Min(box.MinY, px.Y)
				box.MaxX = math.Max(box.MaxX, px.X)
				box.MaxY = math.Max(box.MaxY, px.Y)
			}
		}
	}
	clipped := box.Clamp(c.Frame())
	minArea := c.MinPixelArea
	if minArea <= 0 {
		minArea = 64 // ~8x8 px, below typical detector resolution
	}
	if clipped.Area() < minArea {
		return geom.Rect{}, false
	}
	// Require the object centre to be within the frame: objects sliced in
	// half at the border are not reliably trackable.
	centre, ok := c.ProjectPoint(s.Pos, s.Dims.H/2)
	if !ok || !c.Frame().Contains(centre) {
		return geom.Rect{}, false
	}
	return clipped, true
}

// GroundFromPixel inverts the projection for ground-plane points: it
// returns the world point whose z=0 projection is the given pixel. The
// boolean is false for pixels on or above the horizon line, which never
// meet the ground in front of the camera.
//
// Derivation: with normalized coordinates a = (u-cx)/f, b = (v-cy)/f and
// ground points (z=0) at horizontal forward distance zf,
//
//	b = (h cosP − zf sinP) / (zf cosP + h sinP)
//	=> zf = h (cosP − b sinP) / (b cosP + sinP)
//
// where ground pixels satisfy b cosP + sinP > 0 (below the horizon,
// b → −tanP as zf → ∞).
func (c *Camera) GroundFromPixel(px geom.Point) (geom.Point, bool) {
	a := (px.X - c.ImageW/2) / c.Focal
	b := (px.Y - c.ImageH/2) / c.Focal
	cosP, sinP := math.Cos(c.Pitch), math.Sin(c.Pitch)
	den := b*cosP + sinP
	if den <= 1e-9 {
		return geom.Point{}, false
	}
	forward := c.Height * (cosP - b*sinP) / den
	if forward <= nearPlane {
		return geom.Point{}, false
	}
	zc := forward*cosP + c.Height*sinP
	if zc < nearPlane {
		return geom.Point{}, false
	}
	lateral := a * zc
	cosT, sinT := math.Cos(c.Yaw), math.Sin(c.Yaw)
	fwdVec := geom.Point{X: cosT, Y: sinT}
	sideVec := geom.Point{X: -sinT, Y: cosT}
	return c.Pos.Add(fwdVec.Scale(forward)).Add(sideVec.Scale(lateral)), true
}

// SeesGround reports whether the camera would see a small reference
// object (a 1.8x4.5x1.5 m car) centred at the given ground point. The
// distributed-stage mask computation uses this to build per-cell coverage
// sets.
func (c *Camera) SeesGround(p geom.Point) bool {
	_, ok := c.ProjectBox(ObjectState{
		Pos:     p,
		Heading: 0,
		Dims:    Dims{W: 1.8, L: 4.5, H: 1.5},
	})
	return ok
}
