package scene

import (
	"encoding/json"
	"fmt"
	"io"

	"mvs/internal/geom"
)

// The wire representation of a trace, decoupled from the runtime structs
// so the on-disk format stays stable if internals evolve.

type traceJSON struct {
	FPS     int64        `json:"fps_milli"` // FPS x 1000, to avoid float drift
	Cameras []cameraJSON `json:"cameras"`
	Frames  []frameJSON  `json:"frames"`
}

type cameraJSON struct {
	Name         string  `json:"name"`
	PosX         float64 `json:"pos_x"`
	PosY         float64 `json:"pos_y"`
	Height       float64 `json:"height"`
	Yaw          float64 `json:"yaw"`
	Pitch        float64 `json:"pitch"`
	Focal        float64 `json:"focal"`
	ImageW       float64 `json:"image_w"`
	ImageH       float64 `json:"image_h"`
	MaxRange     float64 `json:"max_range,omitempty"`
	MinPixelArea float64 `json:"min_pixel_area,omitempty"`
}

type frameJSON struct {
	Index     int          `json:"index"`
	Objects   []objectJSON `json:"objects,omitempty"`
	PerCamera [][]obsJSON  `json:"per_camera"`
}

type objectJSON struct {
	ID      int     `json:"id"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	Heading float64 `json:"heading"`
	Speed   float64 `json:"speed"`
	W       float64 `json:"w"`
	L       float64 `json:"l"`
	H       float64 `json:"h"`
}

type obsJSON struct {
	ID  int        `json:"id"`
	Box [4]float64 `json:"box"`
}

func toCameraJSON(c *Camera) cameraJSON {
	return cameraJSON{
		Name: c.Name, PosX: c.Pos.X, PosY: c.Pos.Y,
		Height: c.Height, Yaw: c.Yaw, Pitch: c.Pitch, Focal: c.Focal,
		ImageW: c.ImageW, ImageH: c.ImageH,
		MaxRange: c.MaxRange, MinPixelArea: c.MinPixelArea,
	}
}

func fromCameraJSON(c cameraJSON) (*Camera, error) {
	cam := &Camera{
		Name: c.Name, Pos: geom.Point{X: c.PosX, Y: c.PosY},
		Height: c.Height, Yaw: c.Yaw, Pitch: c.Pitch, Focal: c.Focal,
		ImageW: c.ImageW, ImageH: c.ImageH,
		MaxRange: c.MaxRange, MinPixelArea: c.MinPixelArea,
	}
	if err := cam.Validate(); err != nil {
		return nil, err
	}
	return cam, nil
}

func toFrameJSON(f *FrameTruth) frameJSON {
	jf := frameJSON{Index: f.Index, PerCamera: make([][]obsJSON, len(f.PerCamera))}
	for _, o := range f.Objects {
		jf.Objects = append(jf.Objects, objectJSON{
			ID: o.ID, X: o.Pos.X, Y: o.Pos.Y, Heading: o.Heading,
			Speed: o.Speed, W: o.Dims.W, L: o.Dims.L, H: o.Dims.H,
		})
	}
	for ci, obs := range f.PerCamera {
		for _, o := range obs {
			jf.PerCamera[ci] = append(jf.PerCamera[ci], obsJSON{
				ID:  o.ObjectID,
				Box: [4]float64{o.Box.MinX, o.Box.MinY, o.Box.MaxX, o.Box.MaxY},
			})
		}
	}
	return jf
}

func fromFrameJSON(jf frameJSON, numCameras int) (*FrameTruth, error) {
	if len(jf.PerCamera) != numCameras {
		return nil, fmt.Errorf("scene: frame %d has %d camera lists, want %d",
			jf.Index, len(jf.PerCamera), numCameras)
	}
	f := &FrameTruth{Index: jf.Index, PerCamera: make([][]Observation, numCameras)}
	for _, o := range jf.Objects {
		f.Objects = append(f.Objects, ObjectState{
			ID: o.ID, Pos: geom.Point{X: o.X, Y: o.Y},
			Heading: o.Heading, Speed: o.Speed,
			Dims: Dims{W: o.W, L: o.L, H: o.H},
		})
	}
	for ci, obs := range jf.PerCamera {
		for _, o := range obs {
			f.PerCamera[ci] = append(f.PerCamera[ci], Observation{
				ObjectID: o.ID,
				Box:      geom.Rect{MinX: o.Box[0], MinY: o.Box[1], MaxX: o.Box[2], MaxY: o.Box[3]},
			})
		}
	}
	return f, nil
}

// MarshalCameras returns the wire JSON for a camera roster — the same
// schema Save embeds in a trace — so other packages (the run store's
// manifest) can persist cameras without coupling to runtime structs.
func MarshalCameras(cams []*Camera) (json.RawMessage, error) {
	out := make([]cameraJSON, 0, len(cams))
	for _, c := range cams {
		out = append(out, toCameraJSON(c))
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("scene: encode cameras: %w", err)
	}
	return data, nil
}

// UnmarshalCameras parses a roster written by MarshalCameras, validating
// each camera.
func UnmarshalCameras(data json.RawMessage) ([]*Camera, error) {
	var in []cameraJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("scene: decode cameras: %w", err)
	}
	cams := make([]*Camera, 0, len(in))
	for _, c := range in {
		cam, err := fromCameraJSON(c)
		if err != nil {
			return nil, err
		}
		cams = append(cams, cam)
	}
	return cams, nil
}

// MarshalFrame returns one frame's wire JSON (one line of a run-store
// frame segment; the same schema Save uses inside a trace).
func MarshalFrame(f *FrameTruth) ([]byte, error) {
	data, err := json.Marshal(toFrameJSON(f))
	if err != nil {
		return nil, fmt.Errorf("scene: encode frame: %w", err)
	}
	return data, nil
}

// UnmarshalFrame parses a frame written by MarshalFrame, checking it
// carries exactly numCameras observation lists.
func UnmarshalFrame(data []byte, numCameras int) (*FrameTruth, error) {
	var jf frameJSON
	if err := json.Unmarshal(data, &jf); err != nil {
		return nil, fmt.Errorf("scene: decode frame: %w", err)
	}
	return fromFrameJSON(jf, numCameras)
}

// MarshalObservations returns the wire JSON for one camera's
// observation list — the per-camera element of MarshalFrame's schema —
// so a live ingest protocol can ship a frame camera by camera without
// coupling to runtime structs. The float64 round-trip is exact, like
// the whole-frame codec's.
func MarshalObservations(obs []Observation) (json.RawMessage, error) {
	out := make([]obsJSON, 0, len(obs))
	for _, o := range obs {
		out = append(out, obsJSON{
			ID:  o.ObjectID,
			Box: [4]float64{o.Box.MinX, o.Box.MinY, o.Box.MaxX, o.Box.MaxY},
		})
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("scene: encode observations: %w", err)
	}
	return data, nil
}

// UnmarshalObservations parses a list written by MarshalObservations.
func UnmarshalObservations(data json.RawMessage) ([]Observation, error) {
	var in []obsJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("scene: decode observations: %w", err)
	}
	obs := make([]Observation, 0, len(in))
	for _, o := range in {
		obs = append(obs, Observation{
			ObjectID: o.ID,
			Box:      geom.Rect{MinX: o.Box[0], MinY: o.Box[1], MaxX: o.Box[2], MaxY: o.Box[3]},
		})
	}
	return obs, nil
}

// MarshalObjects returns the wire JSON for a ground-truth object list —
// the objects element of MarshalFrame's schema.
func MarshalObjects(objs []ObjectState) (json.RawMessage, error) {
	out := make([]objectJSON, 0, len(objs))
	for _, o := range objs {
		out = append(out, objectJSON{
			ID: o.ID, X: o.Pos.X, Y: o.Pos.Y, Heading: o.Heading,
			Speed: o.Speed, W: o.Dims.W, L: o.Dims.L, H: o.Dims.H,
		})
	}
	data, err := json.Marshal(out)
	if err != nil {
		return nil, fmt.Errorf("scene: encode objects: %w", err)
	}
	return data, nil
}

// UnmarshalObjects parses a list written by MarshalObjects.
func UnmarshalObjects(data json.RawMessage) ([]ObjectState, error) {
	var in []objectJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("scene: decode objects: %w", err)
	}
	objs := make([]ObjectState, 0, len(in))
	for _, o := range in {
		objs = append(objs, ObjectState{
			ID: o.ID, Pos: geom.Point{X: o.X, Y: o.Y},
			Heading: o.Heading, Speed: o.Speed,
			Dims: Dims{W: o.W, L: o.L, H: o.H},
		})
	}
	return objs, nil
}

// Save serializes the trace as JSON, so a generated workload can be
// archived and replayed (e.g. shipped to camera nodes instead of
// regenerating from a seed).
func (t *Trace) Save(w io.Writer) error {
	out := traceJSON{FPS: int64(t.FPS * 1000)}
	for _, c := range t.Cameras {
		out.Cameras = append(out.Cameras, toCameraJSON(c))
	}
	for fi := range t.Frames {
		out.Frames = append(out.Frames, toFrameJSON(&t.Frames[fi]))
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("scene: encode trace: %w", err)
	}
	return nil
}

// ReadTrace deserializes a trace written by Save.
func ReadTrace(r io.Reader) (*Trace, error) {
	var in traceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("scene: decode trace: %w", err)
	}
	if in.FPS <= 0 {
		return nil, fmt.Errorf("scene: trace has non-positive fps")
	}
	if len(in.Cameras) == 0 {
		return nil, fmt.Errorf("scene: trace has no cameras")
	}
	t := &Trace{FPS: float64(in.FPS) / 1000}
	for _, c := range in.Cameras {
		cam, err := fromCameraJSON(c)
		if err != nil {
			return nil, err
		}
		t.Cameras = append(t.Cameras, cam)
	}
	for _, jf := range in.Frames {
		f, err := fromFrameJSON(jf, len(t.Cameras))
		if err != nil {
			return nil, err
		}
		t.Frames = append(t.Frames, *f)
	}
	return t, nil
}
