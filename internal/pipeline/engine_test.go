package pipeline

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"mvs/internal/metrics"
	"mvs/internal/scene"
)

// TestEngineMatchesRun is the API-redesign acceptance test: draining an
// Engine over a TraceSource produces a Report bit-identical (modeled
// projection) to the batch Run wrapper, and a push-driven ChannelSource
// fed from another goroutine matches too — streaming is a packaging
// change, not an algorithm change.
func TestEngineMatchesRun(t *testing.T) {
	e := getEnv(t)
	for _, mode := range []Mode{Full, Independent, CentralOnly, BALB, StaticPartition} {
		batch, err := Run(e.test, e.profiles, e.model, NewConfig(mode, 5))
		if err != nil {
			t.Fatalf("%v batch: %v", mode, err)
		}

		eng, err := NewEngine(NewTraceSource(e.test), e.profiles, e.model, NewConfig(mode, 5))
		if err != nil {
			t.Fatalf("%v engine: %v", mode, err)
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("%v engine run: %v", mode, err)
		}
		streamed, err := eng.Report()
		if err != nil {
			t.Fatalf("%v engine report: %v", mode, err)
		}
		if !reflect.DeepEqual(batch.Modeled(), streamed.Modeled()) {
			t.Fatalf("%v: streamed report diverged from batch:\nbatch:  %+v\nstream: %+v",
				mode, batch.Modeled(), streamed.Modeled())
		}

		src := NewChannelSource(e.test.Cameras, 4)
		go func() {
			for i := range e.test.Frames {
				src.Push(&e.test.Frames[i])
			}
			src.Close()
		}()
		eng2, err := NewEngine(src, e.profiles, e.model, NewConfig(mode, 5))
		if err != nil {
			t.Fatalf("%v channel engine: %v", mode, err)
		}
		if err := eng2.Run(); err != nil {
			t.Fatalf("%v channel run: %v", mode, err)
		}
		pushed, err := eng2.Report()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch.Modeled(), pushed.Modeled()) {
			t.Fatalf("%v: channel-sourced report diverged from batch", mode)
		}
	}
}

// TestEngineMidStreamReport checks Report is callable mid-stream
// without perturbing the run: stepping k frames reports exactly what a
// batch run over the k-frame prefix reports, and the stream then
// continues to the full-trace result.
func TestEngineMidStreamReport(t *testing.T) {
	e := getEnv(t)
	const k = 25 // mid-horizon on purpose: exercises the partial-horizon fold

	eng, err := NewEngine(NewTraceSource(e.test), e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Report(); err == nil {
		t.Fatal("Report before any frame must error")
	}
	for i := 0; i < k; i++ {
		ok, err := eng.Step()
		if err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	mid, err := eng.Report()
	if err != nil {
		t.Fatal(err)
	}

	prefix := &scene.Trace{FPS: e.test.FPS, Cameras: e.test.Cameras, Frames: e.test.Frames[:k]}
	want, err := Run(prefix, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Modeled(), mid.Modeled()) {
		t.Fatalf("mid-stream report diverged from %d-frame batch run:\nbatch: %+v\nmid:   %+v",
			k, want.Modeled(), mid.Modeled())
	}

	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Frames() != len(e.test.Frames) {
		t.Fatalf("engine processed %d frames, want %d", eng.Frames(), len(e.test.Frames))
	}
	full, err := Run(e.test, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Modeled(), got.Modeled()) {
		t.Fatal("post-drain report diverged from batch run after a mid-stream Report call")
	}
}

// flushFailSink records nothing and fails its Flush: the sink-error
// propagation fixture.
type flushFailSink struct{ err error }

func (s *flushFailSink) RecordFrame(metrics.Snapshot) {}
func (s *flushFailSink) Flush() error                 { return s.err }

// TestEngineSinkErrorPropagates pins the satellite fix: a failing sink
// flush surfaces through Engine.Err/Run and through the batch Run
// wrapper — it is no longer silently dropped.
func TestEngineSinkErrorPropagates(t *testing.T) {
	e := getEnv(t)
	sinkErr := errors.New("disk full")
	cfg := NewConfig(BALB, 5)
	cfg.Obs.Sink = &flushFailSink{err: sinkErr}

	eng, err := NewEngine(NewTraceSource(e.test), e.profiles, e.model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); !errors.Is(err, sinkErr) {
		t.Fatalf("engine Run returned %v, want wrapped %v", err, sinkErr)
	}
	if err := eng.Err(); !errors.Is(err, sinkErr) {
		t.Fatalf("Err() = %v, want wrapped %v", err, sinkErr)
	}
	// The stream still completed: the report over the processed frames
	// stays available even though the flush failed.
	if eng.Frames() != len(e.test.Frames) {
		t.Fatalf("engine processed %d frames, want %d", eng.Frames(), len(e.test.Frames))
	}

	if _, err := Run(e.test, e.profiles, e.model, cfg); !errors.Is(err, sinkErr) {
		t.Fatalf("batch Run returned %v, want wrapped %v", err, sinkErr)
	}
}

// failSource errors after a few frames.
type failSource struct {
	cams []*scene.Camera
	n    int
}

func (s *failSource) Cameras() []*scene.Camera { return s.cams }
func (s *failSource) Next() (*scene.FrameTruth, error) {
	if s.n <= 0 {
		return nil, fmt.Errorf("camera link dropped")
	}
	s.n--
	return &scene.FrameTruth{PerCamera: make([][]scene.Observation, len(s.cams))}, nil
}

// TestEngineSourceValidation covers the streaming-only error paths: a
// failing source, a frame with the wrong camera count, and Step after
// the stream ended.
func TestEngineSourceValidation(t *testing.T) {
	e := getEnv(t)

	eng, err := NewEngine(&failSource{cams: e.test.Cameras, n: 3}, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err == nil {
		t.Fatal("engine over a failing source must error")
	}
	if eng.Frames() != 3 {
		t.Fatalf("engine processed %d frames before the source failed, want 3", eng.Frames())
	}
	if ok, err := eng.Step(); ok || err == nil {
		t.Fatal("Step after a terminal error must keep returning (false, err)")
	}

	src := NewChannelSource(e.test.Cameras, 1)
	go func() {
		src.Push(&scene.FrameTruth{PerCamera: make([][]scene.Observation, 1)}) // wrong width
		src.Close()
	}()
	eng2, err := NewEngine(src, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng2.Run(); err == nil {
		t.Fatal("frame with wrong per-camera width must error")
	}

	if _, err := NewEngine(NewChannelSource(nil, 1), nil, nil, NewConfig(Full, 0)); err == nil {
		t.Fatal("source with no cameras must be rejected")
	}
}

// roundRecorder captures emitted rounds.
type roundRecorder struct{ rounds []metrics.Round }

func (r *roundRecorder) RecordRound(round metrics.Round) { r.rounds = append(r.rounds, round) }

// TestEngineEmitsRounds checks the engine's round stream: one Round per
// key frame in model-driven modes, gap-free Seq, fleet-wide Assigned,
// and a priority permutation of the fleet.
func TestEngineEmitsRounds(t *testing.T) {
	e := getEnv(t)
	rec := &roundRecorder{}
	cfg := NewConfig(BALB, 5)
	cfg.Obs.Rounds = rec

	rep, err := Run(e.test, e.profiles, e.model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := (len(e.test.Frames) + rep.Horizon - 1) / rep.Horizon
	if len(rec.rounds) != wantRounds {
		t.Fatalf("got %d rounds for %d frames at horizon %d, want %d",
			len(rec.rounds), len(e.test.Frames), rep.Horizon, wantRounds)
	}
	numCams := len(e.test.Cameras)
	for i, r := range rec.rounds {
		if r.Seq != i {
			t.Fatalf("round %d has seq %d", i, r.Seq)
		}
		if r.Frame != i*rep.Horizon {
			t.Fatalf("round %d anchored at frame %d, want %d", i, r.Frame, i*rep.Horizon)
		}
		if r.Source != metrics.SourcePipeline || r.Label != "BALB" {
			t.Fatalf("round %d mislabelled: %+v", i, r)
		}
		if len(r.Assigned) != numCams {
			t.Fatalf("round %d Assigned has %d entries, want %d", i, len(r.Assigned), numCams)
		}
		if len(r.Priority) != numCams {
			t.Fatalf("round %d Priority has %d entries, want %d", i, len(r.Priority), numCams)
		}
		seen := make(map[int]bool)
		for _, c := range r.Priority {
			if c < 0 || c >= numCams || seen[c] {
				t.Fatalf("round %d priority %v is not a fleet permutation", i, r.Priority)
			}
			seen[c] = true
		}
	}

	// Full mode runs no central stage: no rounds.
	rec2 := &roundRecorder{}
	cfg2 := NewConfig(Full, 5)
	cfg2.Obs.Rounds = rec2
	if _, err := Run(e.test, e.profiles, nil, cfg2); err != nil {
		t.Fatal(err)
	}
	if len(rec2.rounds) != 0 {
		t.Fatalf("Full mode emitted %d rounds, want 0", len(rec2.rounds))
	}
}
