package pipeline

import (
	"sync"
	"testing"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/workload"
)

// testEnv is built once per test binary: a moderate S2 run with a trained
// association model (training KNN models is the slow part).
type testEnv struct {
	scenario *workload.Scenario
	test     *scene.Trace
	model    *assoc.Model
	profiles []*profile.Profile
}

var (
	envOnce sync.Once
	env     testEnv
)

func getEnv(t *testing.T) *testEnv {
	t.Helper()
	envOnce.Do(func() {
		s := workload.S2(11)
		trace, err := s.World.Run(800)
		if err != nil {
			t.Fatal(err)
		}
		train, test := trace.SplitTrain()
		model, err := assoc.Train(train, assoc.Factories{})
		if err != nil {
			t.Fatal(err)
		}
		env = testEnv{scenario: s, test: test, model: model, profiles: s.Profiles()}
	})
	if env.test == nil {
		t.Fatal("environment failed to initialize")
	}
	return &env
}

func runMode(t *testing.T, mode Mode) *Report {
	t.Helper()
	e := getEnv(t)
	rep, err := Run(e.test, e.profiles, e.model, NewConfig(mode, 5))
	if err != nil {
		t.Fatalf("%v: %v", mode, err)
	}
	return rep
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		Full: "Full", Independent: "BALB-Ind", CentralOnly: "BALB-Cen",
		BALB: "BALB", StaticPartition: "SP",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q want %q", m, got, want)
		}
	}
	if Mode(42).String() != "mode(42)" {
		t.Error("unknown mode string")
	}
}

func TestFullModeIsUpperBound(t *testing.T) {
	rep := runMode(t, Full)
	if rep.Recall < 0.98 {
		t.Fatalf("full recall = %v", rep.Recall)
	}
	// Every frame costs exactly the slowest camera's full-frame latency.
	want := profile.TrueFullFrameLatency(profile.JetsonNano)
	if rep.MeanSlowest != want {
		t.Fatalf("slowest = %v want %v", rep.MeanSlowest, want)
	}
}

func TestBALBFasterThanIndependentFasterThanFull(t *testing.T) {
	full := runMode(t, Full)
	ind := runMode(t, Independent)
	balb := runMode(t, BALB)
	if !(balb.MeanSlowest < ind.MeanSlowest && ind.MeanSlowest < full.MeanSlowest) {
		t.Fatalf("latency ordering violated: balb=%v ind=%v full=%v",
			balb.MeanSlowest, ind.MeanSlowest, full.MeanSlowest)
	}
	// The paper's range: multiplicative speedups of at least 2x.
	if full.MeanSlowest < 2*balb.MeanSlowest {
		t.Fatalf("BALB speedup below 2x: %v vs %v", full.MeanSlowest, balb.MeanSlowest)
	}
}

func TestBALBBeatsStaticPartitioning(t *testing.T) {
	balb := runMode(t, BALB)
	sp := runMode(t, StaticPartition)
	if balb.MeanSlowest >= sp.MeanSlowest {
		t.Fatalf("BALB %v not faster than SP %v", balb.MeanSlowest, sp.MeanSlowest)
	}
	if balb.Recall < sp.Recall-0.05 {
		t.Fatalf("BALB recall %v far below SP %v", balb.Recall, sp.Recall)
	}
}

func TestRecallOrdering(t *testing.T) {
	full := runMode(t, Full)
	ind := runMode(t, Independent)
	cen := runMode(t, CentralOnly)
	balb := runMode(t, BALB)
	// Tracking-based slicing shows almost no degradation (Fig. 12):
	// BALB-Ind within a point of Full.
	if ind.Recall < full.Recall-0.02 {
		t.Fatalf("BALB-Ind recall %v below Full %v", ind.Recall, full.Recall)
	}
	// The distributed stage helps over central-only.
	if balb.Recall < cen.Recall {
		t.Fatalf("BALB recall %v below BALB-Cen %v", balb.Recall, cen.Recall)
	}
	if balb.Recall < 0.9 {
		t.Fatalf("BALB recall too low: %v", balb.Recall)
	}
}

func TestCentralOverheadReported(t *testing.T) {
	balb := runMode(t, BALB)
	if balb.CentralPerFrame <= 0 {
		t.Fatal("no central overhead recorded")
	}
	if balb.TrackingPerFrame <= 0 {
		t.Fatal("no tracking overhead recorded")
	}
	if balb.OverheadTotal() < balb.CentralPerFrame {
		t.Fatal("OverheadTotal inconsistent")
	}
	// Framework overhead must stay far below the GPU latency it saves
	// (Table II's point: ~30 ms overhead vs hundreds saved).
	if balb.OverheadTotal() > 50*time.Millisecond {
		t.Fatalf("overhead implausibly high: %v", balb.OverheadTotal())
	}
	full := runMode(t, Full)
	if full.CentralPerFrame != 0 {
		t.Fatal("Full mode has central overhead")
	}
}

func TestPerCameraMeansPopulated(t *testing.T) {
	rep := runMode(t, BALB)
	if len(rep.PerCameraMean) != 2 {
		t.Fatalf("per-camera = %v", rep.PerCameraMean)
	}
	for i, m := range rep.PerCameraMean {
		if m <= 0 {
			t.Fatalf("camera %d mean %v", i, m)
		}
	}
}

func TestHorizonOneIsAllKeyFrames(t *testing.T) {
	e := getEnv(t)
	rep, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB, Horizon: 1}, Sim: Sim{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// Every frame is a key frame: latency equals full-frame cost on the
	// slowest camera.
	want := profile.TrueFullFrameLatency(profile.JetsonNano)
	if rep.MeanSlowest != want {
		t.Fatalf("slowest = %v want %v", rep.MeanSlowest, want)
	}
	if rep.Recall < 0.95 {
		t.Fatalf("recall = %v", rep.Recall)
	}
}

func TestLongerHorizonIsFasterButLowerRecall(t *testing.T) {
	e := getEnv(t)
	short, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB, Horizon: 2}, Sim: Sim{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB, Horizon: 40}, Sim: Sim{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if long.MeanSlowest >= short.MeanSlowest {
		t.Fatalf("long horizon %v not faster than short %v", long.MeanSlowest, short.MeanSlowest)
	}
	if long.Recall > short.Recall+0.01 {
		t.Fatalf("long horizon recall %v above short %v", long.Recall, short.Recall)
	}
}

func TestRunValidation(t *testing.T) {
	e := getEnv(t)
	empty := &scene.Trace{FPS: 10, Cameras: e.test.Cameras}
	if _, err := Run(empty, e.profiles, e.model, Config{}); err == nil {
		t.Fatal("empty trace accepted")
	}
	if _, err := Run(e.test, e.profiles[:1], e.model, Config{}); err == nil {
		t.Fatal("profile count mismatch accepted")
	}
	if _, err := Run(e.test, e.profiles, nil, Config{Sched: Sched{Mode: BALB}}); err == nil {
		t.Fatal("BALB without model accepted")
	}
	if _, err := Run(e.test, e.profiles, nil, Config{Sched: Sched{Mode: Full}}); err != nil {
		t.Fatalf("Full without model rejected: %v", err)
	}
	// Model/camera-count mismatch.
	s3 := workload.S3(1)
	tr3, err := s3.World.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := assoc.Train(tr3, assoc.Factories{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e.test, e.profiles, m3, Config{Sched: Sched{Mode: BALB}}); err == nil {
		t.Fatal("camera-count mismatch accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := runMode(t, BALB)
	e := getEnv(t)
	b, err := Run(e.test, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Recall != b.Recall || a.MeanSlowest != b.MeanSlowest || a.TP != b.TP {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a.Recall, a.MeanSlowest, b.Recall, b.MeanSlowest)
	}
}

func TestReportMetadata(t *testing.T) {
	rep := runMode(t, CentralOnly)
	if rep.Mode != CentralOnly {
		t.Fatalf("mode = %v", rep.Mode)
	}
	e := getEnv(t)
	if rep.Frames != len(e.test.Frames) {
		t.Fatalf("frames = %d", rep.Frames)
	}
	if rep.Horizon != 10 {
		t.Fatalf("horizon = %d", rep.Horizon)
	}
	if rep.TP+rep.FN == 0 {
		t.Fatal("no recall counts")
	}
}

// trainAssoc is a helper for tests that need a model on a custom trace.
func trainAssoc(t *testing.T, train *scene.Trace) (*assoc.Model, error) {
	t.Helper()
	return assoc.Train(train, assoc.Factories{})
}

func TestTailLatencyReported(t *testing.T) {
	rep := runMode(t, BALB)
	if rep.MaxSlowest <= 0 || rep.P95Slowest <= 0 {
		t.Fatalf("tail stats missing: p95=%v max=%v", rep.P95Slowest, rep.MaxSlowest)
	}
	if rep.P95Slowest > rep.MaxSlowest {
		t.Fatalf("p95 %v above max %v", rep.P95Slowest, rep.MaxSlowest)
	}
	// The per-horizon key frame is the tail: max must be at least the
	// slowest camera's full-frame time.
	if rep.MaxSlowest < profile.TrueFullFrameLatency(profile.JetsonNano) {
		t.Fatalf("max %v below a key frame's cost", rep.MaxSlowest)
	}
}
