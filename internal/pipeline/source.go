package pipeline

import (
	"context"
	"io"
	"sync"

	"mvs/internal/scene"
)

// Source yields the timestamped frame observations an Engine consumes:
// a fixed camera roster plus an ordered stream of ground-truth frames
// (each carrying the per-camera observations the detectors will see).
// The simulator (TraceSource), a recorded run (the store's Replay), and
// tests (ChannelSource) all speak this interface; live socket ingest is
// the intended fourth implementation.
//
// Contract: Cameras is constant for the life of the source and every
// frame's PerCamera has exactly one list per camera; Next returns
// frames in stream order and io.EOF — and only io.EOF — once the
// stream is exhausted. The engine never mutates returned frames and
// does not retain them past the CameraLag window, so a source may
// recycle storage older than max(CameraLag)+1 frames.
type Source interface {
	// Cameras is the fixed camera roster of the stream.
	Cameras() []*scene.Camera
	// Next returns the next frame, or io.EOF at end of stream. Next may
	// block until a frame is available.
	Next() (*scene.FrameTruth, error)
}

// TraceSource adapts a pre-generated scene.Trace to the Source
// interface: the batch path. Not safe for concurrent Next calls.
type TraceSource struct {
	trace *scene.Trace
	i     int
}

// NewTraceSource wraps a trace; the trace is only read.
func NewTraceSource(t *scene.Trace) *TraceSource {
	return &TraceSource{trace: t}
}

// Cameras returns the trace's camera roster.
func (s *TraceSource) Cameras() []*scene.Camera { return s.trace.Cameras }

// Next returns the next trace frame, io.EOF past the end.
func (s *TraceSource) Next() (*scene.FrameTruth, error) {
	if s.i >= len(s.trace.Frames) {
		return nil, io.EOF
	}
	f := &s.trace.Frames[s.i]
	s.i++
	return f, nil
}

// ChannelSource is a push-driven Source for tests and in-process
// producers: frames Pushed on one goroutine are consumed by the
// engine's Next on another. Close ends the stream; Next drains the
// buffer first, then reports io.EOF.
type ChannelSource struct {
	cams []*scene.Camera
	ch   chan *scene.FrameTruth
	once sync.Once
}

// NewChannelSource builds a source for a fixed camera roster with the
// given frame buffer (buffer <= 0 defaults to 1).
func NewChannelSource(cams []*scene.Camera, buffer int) *ChannelSource {
	if buffer <= 0 {
		buffer = 1
	}
	return &ChannelSource{cams: cams, ch: make(chan *scene.FrameTruth, buffer)}
}

// Cameras returns the roster given at construction.
func (s *ChannelSource) Cameras() []*scene.Camera { return s.cams }

// Push appends one frame to the stream, blocking while the buffer is
// full. A producer that must survive a consumer that has stopped
// draining (an engine that hit an error, or was never started) should
// use TryPush or PushCtx instead — Push blocks forever in that case.
// Push must not be called after Close.
func (s *ChannelSource) Push(f *scene.FrameTruth) { s.ch <- f }

// TryPush appends one frame if the buffer has room and reports whether
// it did. It never blocks, so a producer can shed instead of stalling
// when the engine has stopped consuming. TryPush must not be called
// after Close.
func (s *ChannelSource) TryPush(f *scene.FrameTruth) bool {
	select {
	case s.ch <- f:
		return true
	default:
		return false
	}
}

// PushCtx appends one frame, blocking while the buffer is full until
// ctx is done; it returns ctx.Err() when the wait was abandoned and nil
// when the frame was accepted. PushCtx must not be called after Close.
func (s *ChannelSource) PushCtx(ctx context.Context, f *scene.FrameTruth) error {
	select {
	case s.ch <- f:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close ends the stream: after the buffer drains, Next reports io.EOF.
// Close is idempotent.
func (s *ChannelSource) Close() { s.once.Do(func() { close(s.ch) }) }

// Next blocks for the next pushed frame, io.EOF once closed and
// drained.
func (s *ChannelSource) Next() (*scene.FrameTruth, error) {
	f, ok := <-s.ch
	if !ok {
		return nil, io.EOF
	}
	return f, nil
}
