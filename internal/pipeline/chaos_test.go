package pipeline

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mvs/internal/camfault"
	"mvs/internal/metrics"
)

// chaosModel builds the shared 10%-outage fault schedule for the test
// trace; cached because the environment is too.
var (
	chaosOnce  sync.Once
	chaosFault *camfault.Model
)

func chaosEnv(t *testing.T) (*testEnv, *camfault.Model) {
	t.Helper()
	e := getEnv(t)
	chaosOnce.Do(func() {
		m, err := camfault.Generate(camfault.Config{
			Seed: 23, Rate: 0.10, MeanOutage: 20, BootDelay: 2,
		}, len(e.test.Cameras), len(e.test.Frames))
		if err != nil {
			t.Fatal(err)
		}
		chaosFault = m
	})
	if chaosFault == nil {
		t.Fatal("fault schedule failed to initialize")
	}
	return e, chaosFault
}

// TestChaosFailoverBeatsNoFailover is the ISSUE acceptance criterion:
// at a 10% outage rate, BALB with health tracking + failover keeps
// recall strictly above the same schedule with the feature off.
func TestChaosFailoverBeatsNoFailover(t *testing.T) {
	e, faults := chaosEnv(t)
	run := func(healthK int) *Report {
		rep, err := Run(e.test, e.profiles, e.model, Config{
			Sched: Sched{Mode: BALB}, Sim: Sim{Seed: 5},
			Fault: Fault{CamFaults: faults, HealthK: healthK},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	fo := run(3)
	off := run(0)
	if fo.OutageFrames == 0 || fo.OutageFrames != off.OutageFrames {
		t.Fatalf("outage frames: fo=%d off=%d (same schedule, must match and be > 0)",
			fo.OutageFrames, off.OutageFrames)
	}
	if fo.Recall <= off.Recall {
		t.Fatalf("failover recall %.4f not above no-failover %.4f", fo.Recall, off.Recall)
	}
	if fo.Reassignments == 0 {
		t.Fatal("failover run performed no reassignments")
	}
	if off.Reassignments != 0 || off.OrphanedObjects != 0 {
		t.Fatalf("no-failover run counted failovers: reassigned=%d orphaned=%d",
			off.Reassignments, off.OrphanedObjects)
	}
	t.Logf("recall: failover %.4f vs off %.4f; outage=%d reassigned=%d orphaned=%d",
		fo.Recall, off.Recall, fo.OutageFrames, fo.Reassignments, fo.OrphanedObjects)
}

// TestChaosFaultFreeBitIdentical pins the zero-overhead guarantee: a
// nil CamFaults run and a run with an all-clear fault schedule produce
// bit-identical modelled reports, and neither emits any fault counter
// on the JSONL wire.
func TestChaosFaultFreeBitIdentical(t *testing.T) {
	e := getEnv(t)
	clear, err := camfault.Generate(camfault.Config{Seed: 1},
		len(e.test.Cameras), len(e.test.Frames))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := metrics.NewJSONLSink(&buf)
	base, err := Run(e.test, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	withModel, err := Run(e.test, e.profiles, e.model, Config{
		Sched: Sched{Mode: BALB}, Sim: Sim{Seed: 5},
		Fault: Fault{CamFaults: clear, HealthK: 3}, Obs: Obs{Sink: sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Modeled(), withModel.Modeled()) {
		t.Fatalf("all-clear fault schedule perturbed the run:\nbase %+v\nwith %+v",
			base.Modeled(), withModel.Modeled())
	}
	for _, key := range []string{"outage_frames", "orphaned_objects", "reassignments"} {
		if strings.Contains(buf.String(), key) {
			t.Fatalf("fault-free run leaked %q on the wire", key)
		}
	}
}

// TestChaosDeterministicAcrossWorkers extends the determinism contract
// to faulty runs: the same fault schedule yields bit-identical modelled
// reports at every worker count.
func TestChaosDeterministicAcrossWorkers(t *testing.T) {
	e, faults := chaosEnv(t)
	var base *Report
	for _, workers := range []int{1, 2, 4} {
		rep, err := Run(e.test, e.profiles, e.model, Config{
			Sched: Sched{Mode: BALB, Workers: workers}, Sim: Sim{Seed: 5},
			Fault: Fault{CamFaults: faults, HealthK: 3},
		})
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rep
			continue
		}
		got, want := rep.Modeled(), base.Modeled()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged:\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}

// TestChaosSnapshotCounters checks the streamed counters match the
// report totals on the final frame.
func TestChaosSnapshotCounters(t *testing.T) {
	e, faults := chaosEnv(t)
	sink := metrics.NewChannelSink(1, len(e.test.Frames))
	rep, err := Run(e.test, e.profiles, e.model, Config{
		Sched: Sched{Mode: BALB}, Sim: Sim{Seed: 5},
		Fault: Fault{CamFaults: faults, HealthK: 3}, Obs: Obs{Sink: sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	var last metrics.Snapshot
	for snap := range sink.Snapshots() {
		last = snap
	}
	if last.OutageFrames != rep.OutageFrames ||
		last.OrphanedObjects != rep.OrphanedObjects ||
		last.Reassignments != rep.Reassignments {
		t.Fatalf("final snapshot counters (%d,%d,%d) != report (%d,%d,%d)",
			last.OutageFrames, last.OrphanedObjects, last.Reassignments,
			rep.OutageFrames, rep.OrphanedObjects, rep.Reassignments)
	}
}

// TestChaosModelValidation covers the dimension checks.
func TestChaosModelValidation(t *testing.T) {
	e := getEnv(t)
	short, err := camfault.Generate(camfault.Config{Seed: 1}, len(e.test.Cameras), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB}, Sim: Sim{Seed: 5}, Fault: Fault{CamFaults: short}}); err == nil {
		t.Fatal("accepted a fault schedule shorter than the trace")
	}
	wrongCams, err := camfault.Generate(camfault.Config{Seed: 1}, 1, len(e.test.Frames))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB}, Sim: Sim{Seed: 5}, Fault: Fault{CamFaults: wrongCams}}); err == nil {
		t.Fatal("accepted a fault schedule with the wrong roster size")
	}
}
