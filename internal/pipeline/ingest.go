package pipeline

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"mvs/internal/clock"
	"mvs/internal/scene"
)

// This file is the live ingest front-end (docs/STREAMING.md §6): an
// IngestSource accepts per-camera frame parts — over TCP in
// length-prefixed JSON, or in-process through Offer — admits them into
// bounded per-camera queues under a deterministic shed policy, and
// assembles them into the scene.FrameTruth stream the Engine consumes
// through the ordinary Source interface.
//
// The shedding determinism contract: every admission decision is a pure
// function of (the incoming part's frame index, the frame indices
// already queued for that camera, the queue capacity, the policy). No
// wall-clock time, no consumer state, no randomness — so the same
// offered sequence sheds the same set of parts at every worker count
// and on every host, and a recorded shed run replays bit-identically.
// The watchdog is the one wall-clock element, and it only ever turns a
// hang into a typed error; it never influences which frames are shed.

// ShedPolicy selects what an over-offered admission queue drops.
type ShedPolicy int

const (
	// ShedDropOldest evicts the queue head (the oldest waiting frame)
	// when a new part arrives at a full queue: bounded delay, FIFO bias.
	ShedDropOldest ShedPolicy = iota
	// ShedFreshest clears the whole queue when a new part arrives at a
	// full queue, keeping only the newest frame: minimal staleness at
	// maximal drop cost (freshest-frame-wins).
	ShedFreshest
	// ShedStale prunes, on every offer, queued parts more than the
	// staleness cutoff behind the incoming frame, then falls back to
	// drop-oldest if the queue is still full.
	ShedStale
)

// String returns the -shed-policy flag name of the policy.
func (p ShedPolicy) String() string {
	switch p {
	case ShedDropOldest:
		return "drop-oldest"
	case ShedFreshest:
		return "freshest"
	case ShedStale:
		return "stale"
	default:
		return fmt.Sprintf("ShedPolicy(%d)", int(p))
	}
}

// ParseShedPolicy maps a -shed-policy flag name to its policy.
func ParseShedPolicy(s string) (ShedPolicy, error) {
	switch s {
	case "drop-oldest", "":
		return ShedDropOldest, nil
	case "freshest":
		return ShedFreshest, nil
	case "stale":
		return ShedStale, nil
	default:
		return 0, fmt.Errorf("unknown shed policy %q (want drop-oldest, freshest, stale)", s)
	}
}

// FramePart is one camera's contribution to one stream frame — the unit
// a live producer pushes. Frame indices must be strictly ascending per
// camera (an out-of-order or duplicate part is shed). Objects optionally
// carries the frame's ground-truth object list for recall scoring; the
// first part to deliver it for a frame wins, so producers send it on one
// camera only. EOS marks the end of this camera's stream: once every
// camera has sent EOS and the queues drain, Next reports io.EOF.
type FramePart struct {
	Cam     int
	Frame   int
	Obs     []scene.Observation
	Objects []scene.ObjectState
	EOS     bool
}

// StallError is the typed degraded state the watchdog surfaces when the
// producer side goes quiet past the deadline while the engine is
// waiting in Next: instead of hanging forever on a half-dead source,
// Next returns this (wrapped by the engine, so errors.As sees it
// through Engine.Err).
type StallError struct {
	// Idle is how long the source had made no progress when the watchdog
	// fired.
	Idle time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("ingest stalled: no frame assembled for %v (producer gone quiet?)", e.Idle)
}

// IngestCounters is a point-in-time reading of an IngestSource's
// admission counters. Ingested and Shed are cumulative part counts;
// QueueDepth is the total parts currently queued across cameras.
type IngestCounters struct {
	Ingested   int
	Shed       int
	QueueDepth int
}

// IngestMeter exposes live admission counters for per-frame snapshot
// stamping (Config.Obs.Ingest).
type IngestMeter interface {
	Counters() IngestCounters
}

// IngestConfig tunes an IngestSource. The zero value is usable:
// drop-oldest shedding, default queue capacity, watchdog disabled.
type IngestConfig struct {
	// Queue is the per-camera admission queue capacity in frame parts
	// (<= 0 defaults to 16).
	Queue int
	// Policy selects the overflow shed policy.
	Policy ShedPolicy
	// Staleness is the ShedStale cutoff in frames (<= 0 defaults to
	// 2 x Queue): a queued part more than this far behind the incoming
	// frame is pruned.
	Staleness int
	// Stall arms the watchdog: when > 0 and a Next call has been waiting
	// with no frame assembled for at least this long, Next returns a
	// *StallError instead of blocking forever. 0 disables.
	Stall time.Duration
	// Clock is the watchdog's time source (nil = system). Tests inject
	// clock.Fake to drive the deadline without real sleeps.
	Clock clock.Clock
}

// IngestSource is a live, push-driven Source: producers Offer per-camera
// FrameParts (directly, or over TCP via Serve), a bounded per-camera
// admission queue sheds overload deterministically, and Next assembles
// the queued parts into whole frames for the engine. Offer never blocks
// the producer; Next blocks until a frame is assemblable, the stream
// ends, or the watchdog declares a stall.
type IngestSource struct {
	cams      []*scene.Camera
	queueCap  int
	policy    ShedPolicy
	staleness int
	stall     time.Duration
	clk       clock.Clock

	mu       sync.Mutex
	cond     *sync.Cond
	queues   [][]queuedPart
	eos      []bool
	objects  map[int][]scene.ObjectState
	closed   bool
	waiting  int
	stallErr error
	last     time.Time // last assembly progress (watchdog reference)

	ingested int
	shed     int

	ln    net.Listener
	conns map[net.Conn]struct{}
}

type queuedPart struct {
	frame int
	obs   []scene.Observation
}

// NewIngestSource builds an in-process ingest source for a fixed roster.
// Call Serve to additionally accept TCP producers. The watchdog
// goroutine (when cfg.Stall > 0) runs until Close or the first stall.
func NewIngestSource(cams []*scene.Camera, cfg IngestConfig) (*IngestSource, error) {
	if len(cams) == 0 {
		return nil, fmt.Errorf("pipeline: ingest: no cameras")
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 16
	}
	if cfg.Staleness <= 0 {
		cfg.Staleness = 2 * cfg.Queue
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	s := &IngestSource{
		cams:      cams,
		queueCap:  cfg.Queue,
		policy:    cfg.Policy,
		staleness: cfg.Staleness,
		stall:     cfg.Stall,
		clk:       cfg.Clock,
		queues:    make([][]queuedPart, len(cams)),
		eos:       make([]bool, len(cams)),
		objects:   make(map[int][]scene.ObjectState),
		conns:     make(map[net.Conn]struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.last = s.clk.Now()
	if s.stall > 0 {
		go s.watchdog()
	}
	return s, nil
}

// Cameras returns the roster given at construction.
func (s *IngestSource) Cameras() []*scene.Camera { return s.cams }

// Counters returns a point-in-time reading of the admission counters.
func (s *IngestSource) Counters() IngestCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := IngestCounters{Ingested: s.ingested, Shed: s.shed}
	for _, q := range s.queues {
		c.QueueDepth += len(q)
	}
	return c
}

// Offer admits one frame part (or records a camera's EOS). It never
// blocks: when the camera's queue is full the shed policy decides what
// drops, deterministically in the queue contents and the part's frame
// index alone. Errors are reserved for misuse (bad camera index, offer
// after Close) — a shed part is not an error.
func (s *IngestSource) Offer(p FramePart) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("pipeline: ingest: Offer after Close")
	}
	if p.Cam < 0 || p.Cam >= len(s.queues) {
		return fmt.Errorf("pipeline: ingest: camera %d out of range [0,%d)", p.Cam, len(s.queues))
	}
	if p.EOS {
		if !s.eos[p.Cam] {
			s.eos[p.Cam] = true
			s.cond.Broadcast()
		}
		return nil
	}
	if s.eos[p.Cam] {
		s.shed++ // a part after the camera's own EOS can never be emitted
		return nil
	}
	q := s.queues[p.Cam]
	// Per-camera frames must ascend strictly; duplicates and reordered
	// stragglers are shed rather than corrupting assembly order.
	if n := len(q); n > 0 && p.Frame <= q[n-1].frame {
		s.shed++
		return nil
	}
	if s.policy == ShedStale {
		cut := p.Frame - s.staleness
		for len(q) > 0 && q[0].frame < cut {
			q = q[1:]
			s.shed++
		}
	}
	if len(q) >= s.queueCap {
		if s.policy == ShedFreshest {
			s.shed += len(q)
			q = q[:0]
		} else {
			q = q[1:]
			s.shed++
		}
	}
	s.queues[p.Cam] = append(q, queuedPart{frame: p.Frame, obs: p.Obs})
	s.ingested++
	if p.Objects != nil {
		if _, ok := s.objects[p.Frame]; !ok {
			s.objects[p.Frame] = p.Objects
		}
	}
	s.cond.Broadcast()
	return nil
}

// Next assembles and returns the next frame: once every camera is ready
// (has a queued part, sent EOS, or the source is closed), the lowest
// queued frame index is emitted — cameras holding exactly that frame
// contribute their observations, cameras already past it contribute
// none (they shed it, an outage-shaped gap). Next blocks while any
// camera is silent, returns io.EOF once every stream ended and the
// queues drained, and returns a *StallError when the watchdog deadline
// passes with no assembly progress.
func (s *IngestSource) Next() (*scene.FrameTruth, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stallErr != nil {
			return nil, s.stallErr
		}
		if s.readyLocked() {
			if !s.anyQueuedLocked() {
				return nil, io.EOF
			}
			return s.assembleLocked(), nil
		}
		s.waiting++
		s.cond.Wait()
		s.waiting--
	}
}

// readyLocked reports whether every camera can contribute a decision:
// a queued part, its EOS, or a closed source.
func (s *IngestSource) readyLocked() bool {
	for i, q := range s.queues {
		if len(q) == 0 && !s.eos[i] && !s.closed {
			return false
		}
	}
	return true
}

func (s *IngestSource) anyQueuedLocked() bool {
	for _, q := range s.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// assembleLocked pops the lowest queued frame index into a FrameTruth.
func (s *IngestSource) assembleLocked() *scene.FrameTruth {
	next := -1
	for _, q := range s.queues {
		if len(q) > 0 && (next < 0 || q[0].frame < next) {
			next = q[0].frame
		}
	}
	per := make([][]scene.Observation, len(s.queues))
	for i, q := range s.queues {
		if len(q) > 0 && q[0].frame == next {
			per[i] = q[0].obs
			s.queues[i] = q[1:]
		}
	}
	f := &scene.FrameTruth{Index: next, Objects: s.objects[next], PerCamera: per}
	for k := range s.objects {
		if k <= next {
			delete(s.objects, k)
		}
	}
	s.last = s.clk.Now()
	return f
}

// watchdog turns a producer that went quiet into a typed error: it
// wakes periodically on the injected clock and, when a Next call has
// been waiting past the stall deadline with no assembly progress and
// the stream has not legitimately ended, fails the source.
func (s *IngestSource) watchdog() {
	interval := s.stall / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	for {
		s.clk.Sleep(interval)
		s.mu.Lock()
		if s.closed || s.stallErr != nil {
			s.mu.Unlock()
			return
		}
		if s.waiting > 0 {
			if idle := s.clk.Now().Sub(s.last); idle >= s.stall {
				s.stallErr = &StallError{Idle: idle}
				s.cond.Broadcast()
				s.mu.Unlock()
				return
			}
		}
		s.mu.Unlock()
	}
}

// Serve starts accepting TCP producers on ln (pass it through
// faults.Injector.Listener to put the ingest path under chaos). Each
// connection carries a stream of length-prefixed FramePart messages;
// decode errors close that connection only. Serve returns immediately;
// Close stops the accept loop and open connections.
func (s *IngestSource) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			go s.serveConn(conn)
		}
	}()
}

func (s *IngestSource) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		p, err := DecodeFramePart(conn)
		if err != nil {
			return
		}
		if err := s.Offer(p); err != nil {
			return
		}
	}
}

// Close ends the stream: the listener and open connections shut down,
// later Offers error, and Next drains what is queued before reporting
// io.EOF. Idempotent.
func (s *IngestSource) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln, conns := s.ln, s.conns
	s.conns = map[net.Conn]struct{}{}
	s.cond.Broadcast()
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for c := range conns {
		c.Close()
	}
	return nil
}

// The wire protocol: each message is a 4-byte big-endian length followed
// by that many bytes of JSON — one FramePart, observation and object
// lists in the scene wire schema (exact float64 round-trip).
type wirePart struct {
	Cam     int             `json:"cam"`
	Frame   int             `json:"frame"`
	Obs     json.RawMessage `json:"obs,omitempty"`
	Objects json.RawMessage `json:"objects,omitempty"`
	EOS     bool            `json:"eos,omitempty"`
}

// maxWirePart bounds a single message so a corrupt length prefix cannot
// force an absurd allocation.
const maxWirePart = 16 << 20

// EncodeFramePart writes one length-prefixed FramePart message.
func EncodeFramePart(w io.Writer, p FramePart) error {
	wp := wirePart{Cam: p.Cam, Frame: p.Frame, EOS: p.EOS}
	var err error
	if !p.EOS {
		if wp.Obs, err = scene.MarshalObservations(p.Obs); err != nil {
			return err
		}
	}
	if len(p.Objects) > 0 {
		if wp.Objects, err = scene.MarshalObjects(p.Objects); err != nil {
			return err
		}
	}
	body, err := json.Marshal(wp)
	if err != nil {
		return fmt.Errorf("pipeline: encode frame part: %w", err)
	}
	if len(body) > maxWirePart {
		return fmt.Errorf("pipeline: frame part message is %d bytes (max %d)", len(body), maxWirePart)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// DecodeFramePart reads one length-prefixed FramePart message.
func DecodeFramePart(r io.Reader) (FramePart, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return FramePart{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxWirePart {
		return FramePart{}, fmt.Errorf("pipeline: frame part length %d out of range (0,%d]", n, maxWirePart)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return FramePart{}, err
	}
	var wp wirePart
	if err := json.Unmarshal(body, &wp); err != nil {
		return FramePart{}, fmt.Errorf("pipeline: decode frame part: %w", err)
	}
	p := FramePart{Cam: wp.Cam, Frame: wp.Frame, EOS: wp.EOS}
	var err error
	if wp.Obs != nil {
		if p.Obs, err = scene.UnmarshalObservations(wp.Obs); err != nil {
			return FramePart{}, err
		}
	}
	if wp.Objects != nil {
		if p.Objects, err = scene.UnmarshalObjects(wp.Objects); err != nil {
			return FramePart{}, err
		}
	}
	return p, nil
}
