// Package pipeline wires every substrate into the end-to-end system of
// Fig. 5: per-camera full-frame inspection at key frames, cross-camera
// association and central BALB scheduling on key frames, tracking-based
// slicing with batched partial inspection on regular frames, and the
// distributed BALB stage (camera masks) handling object dynamics in
// between — plus the evaluation baselines the paper compares against.
//
// Time is two-layered, as in the paper's evaluation: GPU inference
// latencies are *modelled* from the device profiles (the quantity the
// scheduler optimizes, Fig. 13), while framework overheads — tracking,
// association, scheduling, batching — are *measured* wall-clock costs of
// this implementation (Table II).
//
// # Execution model
//
// The paper's cameras are independent devices, and Run mirrors that:
// within each frame the per-camera work (detection, tracking, slicing,
// batched GPU execution, distributed-stage decisions) fans out across a
// bounded worker pool sized by Options.Workers (default: GOMAXPROCS,
// capped at the camera count). Each camera's mutable state — its RNG,
// tracker, executor, shadows — lives in its cameraState and is touched
// by exactly one goroutine per frame; per-camera outputs are collected
// into camFrame shards and merged in fixed camera order, so the modelled
// results are bit-identical for every worker count (the determinism
// contract, docs/CONCURRENCY.md). The key-frame central stage runs
// between per-camera fan-outs, as the paper's central scheduler is a
// single node, but is not purely sequential: its pairwise association
// fans out per camera pair on the same Workers bound
// (assoc.AssociateWorkers), with the union-find merge applied in
// deterministic pair order; only the BALB solve and the SP ownership
// pass remain inline. Workers=1 runs everything — fan-outs included —
// inline on the calling goroutine.
//
// Run itself is safe to call concurrently from multiple goroutines as
// long as each call gets its own profiles slice (trace and model are
// only read).
package pipeline

import (
	"fmt"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/camfault"
	"mvs/internal/core"
	"mvs/internal/flow"
	"mvs/internal/geom"
	"mvs/internal/gpu"
	"mvs/internal/metrics"
	"mvs/internal/pool"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/shard"
	"mvs/internal/vision"
)

// Mode selects the scheduling algorithm under evaluation.
type Mode int

const (
	// Full runs full-frame detection on every frame of every camera (the
	// paper's recall upper bound and latency worst case).
	Full Mode = iota
	// Independent is BALB-Ind: slicing and batching per camera, no
	// cross-camera sharing.
	Independent
	// CentralOnly is BALB-Cen: the central stage alone, no distributed
	// stage between key frames.
	CentralOnly
	// BALB is the complete two-stage algorithm.
	BALB
	// StaticPartition is the SP baseline: overlap cells partitioned
	// offline by processing power.
	StaticPartition
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Full:
		return "Full"
	case Independent:
		return "BALB-Ind"
	case CentralOnly:
		return "BALB-Cen"
	case BALB:
		return "BALB"
	case StaticPartition:
		return "SP"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Options configures a pipeline run.
type Options struct {
	// Mode is the algorithm under test.
	Mode Mode
	// Horizon is T, the frames per scheduling horizon (default 10).
	Horizon int
	// Seed drives detector noise.
	Seed int64
	// GridCols, GridRows shape the per-camera cell grid for masks
	// (default 16 x 9).
	GridCols, GridRows int
	// Detector tunes the simulated DNN.
	Detector vision.Config
	// AssocMinIoU is the association matching threshold (default 0.1).
	AssocMinIoU float64
	// Redundancy, when > 1, makes the central stage keep up to this many
	// trackers per object (latency budget permitting) — the paper's §V
	// occlusion-hedging extension. Only meaningful in BALB/CentralOnly
	// modes; 0 or 1 is standard single-tracker BALB.
	Redundancy int
	// RedundancySlack bounds the extra trackers' latency cost as a
	// multiple of the base system latency (default 1.2).
	RedundancySlack float64
	// CameraLag models imperfect synchronization (the paper's §V): when
	// non-nil, camera i processes the scene as it was CameraLag[i] frames
	// ago ("while some cameras are processing the 'current' scene, others
	// might still be working on older versions"). Recall is still scored
	// against the current frame, so lag shows up as handoff anomalies.
	CameraLag []int
	// Workers bounds the goroutines used for per-camera work within a
	// frame, for the central stage's per-pair association fan-out at key
	// frames, and for the per-cell coverage precomputation: 1 forces the
	// sequential reference path, 0 (the default) selects GOMAXPROCS, and
	// any value is capped at the item count of each fan-out. The
	// modelled report fields are identical for every value (see
	// Report.Modeled and docs/CONCURRENCY.md).
	Workers int
	// Sink, when non-nil, receives one metrics.Snapshot per frame —
	// assembled in fixed camera order after the per-camera merge, from
	// modelled fields only, so attaching a sink never perturbs the
	// determinism contract (docs/OBSERVABILITY.md). The sink must accept
	// concurrent RecordFrame calls if the same instance is shared by
	// several runs. Run does not Flush the sink; the owner does.
	Sink metrics.Sink
	// Label tags this run's snapshots (Snapshot.Label); empty defaults
	// to the mode name. Experiment harnesses use it to demultiplex
	// snapshot streams from concurrent runs.
	Label string
	// CamFaults, when non-nil, injects the data-plane fault schedule: a
	// camera that is down for a frame produces no observations and runs
	// no inspection (its tracker, executor, and shadows freeze). The
	// model must cover every roster camera and at least the trace
	// length. nil runs fault-free — bit-identical to a build without
	// this feature (docs/FAULTS.md, "Data-plane failure model").
	CamFaults *camfault.Model
	// HealthK is the health-tracker silence threshold: a camera silent
	// for K consecutive frames is marked dead, the central stage
	// reschedules over the healthy subset, and the distributed stage's
	// ownership masks skip it (failover). 0 disables health tracking —
	// faults still drop frames, but scheduling stays oblivious (the
	// no-failover ablation). Only meaningful with CamFaults set.
	HealthK int
	// Shards, when non-nil, runs the central stage sharded: one
	// association + BALB solve per shard over that shard's cameras only
	// (on an assoc.Model.Subset), composed into a core.ShardedPolicy
	// for the distributed stage. This is the in-process analogue of
	// cluster.ShardedScheduler — no fleet-wide O(N²) association, no
	// data structure spanning shards — usable at 64+ cameras without
	// sockets. Only valid for BALB and CentralOnly modes. On a scenario
	// with zero cross-shard coverage the modelled results are
	// bit-identical to the unsharded run (see docs/ARCHITECTURE.md,
	// determinism contract); with boundary traffic, ownership of
	// straddling objects follows the lowest covering shard.
	Shards *shard.Map
}

func (o Options) withDefaults() Options {
	if o.Horizon <= 0 {
		o.Horizon = 10
	}
	if o.GridCols <= 0 {
		o.GridCols = 16
	}
	if o.GridRows <= 0 {
		o.GridRows = 9
	}
	if o.AssocMinIoU <= 0 {
		o.AssocMinIoU = 0.1
	}
	if o.Redundancy < 1 {
		o.Redundancy = 1
	}
	if o.RedundancySlack <= 0 {
		o.RedundancySlack = 1.2
	}
	return o
}

// Report is the outcome of a pipeline run.
type Report struct {
	// Mode echoes the algorithm evaluated.
	Mode Mode
	// Frames is the number of frames processed.
	Frames int
	// Horizon echoes T.
	Horizon int
	// Recall is the paper's object recall (Fig. 12).
	Recall float64
	// TP, FN are the recall counts.
	TP, FN int
	// MeanSlowest is the Fig. 13 metric: per horizon, each camera's mean
	// per-frame inference latency is computed, the slowest camera taken,
	// and the result averaged across horizons.
	MeanSlowest time.Duration
	// PerCameraMean is each camera's mean per-frame inference latency.
	PerCameraMean []time.Duration
	// CentralPerFrame is the measured central-stage overhead (association
	// + central BALB), amortized per frame (Table II).
	CentralPerFrame time.Duration
	// TrackingPerFrame is the measured per-frame tracking overhead,
	// maximum across cameras, averaged over frames (Table II).
	TrackingPerFrame time.Duration
	// DistributedPerFrame is the measured distributed-stage overhead
	// (Table II).
	DistributedPerFrame time.Duration
	// BatchingPerFrame is the measured batch-formation overhead
	// (Table II).
	BatchingPerFrame time.Duration
	// P95Slowest, P99Slowest and MaxSlowest summarize the tail of the
	// per-frame system latency (max across cameras per frame): the
	// paper's motivation is responsiveness, so the tail matters as much
	// as the mean.
	P95Slowest time.Duration
	P99Slowest time.Duration
	MaxSlowest time.Duration
	// OutageFrames counts camera-frames lost to the fault schedule;
	// OrphanedObjects counts shadows dropped because no live camera
	// covered them; Reassignments counts failover ownership transfers
	// (shadow promotions after the owner died). All zero in fault-free
	// runs; all modelled (deterministic), so Modeled() keeps them.
	OutageFrames    int
	OrphanedObjects int
	Reassignments   int
}

// OverheadTotal returns the summed per-frame framework overhead.
func (r *Report) OverheadTotal() time.Duration {
	return r.CentralPerFrame + r.TrackingPerFrame + r.DistributedPerFrame + r.BatchingPerFrame
}

// Modeled returns the deterministic projection of the report: every
// field derived from the simulation model (recall counts, modelled GPU
// latencies, tail statistics), with the wall-clock-measured overhead
// fields (CentralPerFrame, TrackingPerFrame, DistributedPerFrame,
// BatchingPerFrame) zeroed out. The determinism contract — the same
// (trace, profiles, model, Options modulo Workers) produces identical
// results — holds exactly for this projection; the measured overheads
// are timings of this host and vary run to run even sequentially.
func (r *Report) Modeled() Report {
	out := *r
	out.CentralPerFrame = 0
	out.TrackingPerFrame = 0
	out.DistributedPerFrame = 0
	out.BatchingPerFrame = 0
	out.PerCameraMean = append([]time.Duration(nil), r.PerCameraMean...)
	return out
}

// shadow is a camera's knowledge of an object assigned to another camera:
// its last known box here, coasting on the key-frame velocity, so the
// camera can take over tracking without communication if the object
// leaves its assigned camera's view.
type shadow struct {
	box      geom.Rect
	vel      geom.Point
	truthID  int
	assigned int
	size     int
}

// cameraState is all per-camera runtime state.
type cameraState struct {
	index    int
	cam      *scene.Camera
	exec     *gpu.Executor
	det      *vision.Detector
	tracker  *flow.Tracker
	grid     geom.Grid
	coverage [][]int // static per-cell coverage sets (BALB modes)
	spOwner  []int   // static per-cell owners (SP mode)
	shadows  []*shadow
}

// Run executes the pipeline over a pre-generated trace. The association
// model may be nil for Full and Independent modes; every other mode
// requires one trained on a disjoint (earlier) part of the deployment.
func Run(trace *scene.Trace, profiles []*profile.Profile, model *assoc.Model, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if len(trace.Frames) == 0 {
		return nil, fmt.Errorf("pipeline: empty trace")
	}
	if len(profiles) != len(trace.Cameras) {
		return nil, fmt.Errorf("pipeline: %d profiles for %d cameras", len(profiles), len(trace.Cameras))
	}
	needsModel := opts.Mode == CentralOnly || opts.Mode == BALB || opts.Mode == StaticPartition
	if needsModel {
		if model == nil {
			return nil, fmt.Errorf("pipeline: mode %v requires an association model", opts.Mode)
		}
		if model.NumCameras() != len(trace.Cameras) {
			return nil, fmt.Errorf("pipeline: model trained for %d cameras, trace has %d",
				model.NumCameras(), len(trace.Cameras))
		}
	}

	var subModels []*assoc.Model
	if opts.Shards != nil {
		if opts.Mode != BALB && opts.Mode != CentralOnly {
			return nil, fmt.Errorf("pipeline: Shards requires BALB or CentralOnly mode, got %v", opts.Mode)
		}
		if err := opts.Shards.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		if opts.Shards.NumCameras() != len(trace.Cameras) {
			return nil, fmt.Errorf("pipeline: shard map covers %d cameras, trace has %d",
				opts.Shards.NumCameras(), len(trace.Cameras))
		}
		subModels = make([]*assoc.Model, opts.Shards.NumShards())
		for s, roster := range opts.Shards.Shards {
			sub, err := model.Subset(roster)
			if err != nil {
				return nil, fmt.Errorf("pipeline: shard %d model: %w", s, err)
			}
			subModels[s] = sub
		}
	}

	cams, err := buildCameraStates(trace, profiles, model, opts)
	if err != nil {
		return nil, err
	}
	label := opts.Label
	if label == "" {
		label = opts.Mode.String()
	}
	coreCams := make([]core.CameraSpec, len(cams))
	for i := range cams {
		coreCams[i] = core.CameraSpec{Index: i, Profile: profiles[i]}
	}

	var (
		recall       metrics.RecallAccumulator
		perCamTotal  = make([]time.Duration, len(cams))
		horizonCam   = make([]time.Duration, len(cams))
		horizonLen   int
		slowestSum   time.Duration
		horizons     int
		centralTotal time.Duration
		breakdown    = metrics.NewBreakdown()
		policy       core.Policy
		frameSeries  metrics.LatencySeries
		prevBusy     = make([]time.Duration, len(cams))
	)

	// Default policy (before the first central stage): priority by index
	// — sharded runs compose the same index order per shard, so the
	// pre-key-frame decisions match the unsharded ones on single-shard
	// coverage sets.
	if needsModel || opts.Mode == Independent {
		if opts.Shards != nil {
			prios := make([][]int, opts.Shards.NumShards())
			for s, roster := range opts.Shards.Shards {
				prios[s] = append([]int(nil), roster...)
			}
			policy, err = core.NewShardedPolicy(opts.Shards.ShardOf, prios)
		} else {
			idx := make([]int, len(cams))
			for i := range idx {
				idx[i] = i
			}
			policy, err = core.NewDistributedPolicy(idx)
		}
		if err != nil {
			return nil, err
		}
	}

	flushHorizon := func() {
		if horizonLen == 0 {
			return
		}
		var slowest time.Duration
		for i := range horizonCam {
			mean := horizonCam[i] / time.Duration(horizonLen)
			if mean > slowest {
				slowest = mean
			}
			horizonCam[i] = 0
		}
		slowestSum += slowest
		horizons++
		horizonLen = 0
	}

	if opts.CameraLag != nil && len(opts.CameraLag) != len(cams) {
		return nil, fmt.Errorf("pipeline: CameraLag has %d entries for %d cameras",
			len(opts.CameraLag), len(cams))
	}
	if opts.CamFaults != nil {
		if opts.CamFaults.NumCameras() != len(cams) {
			return nil, fmt.Errorf("pipeline: fault schedule for %d cameras, trace has %d",
				opts.CamFaults.NumCameras(), len(cams))
		}
		if opts.CamFaults.NumFrames() < len(trace.Frames) {
			return nil, fmt.Errorf("pipeline: fault schedule covers %d frames, trace has %d",
				opts.CamFaults.NumFrames(), len(trace.Frames))
		}
	}
	// Health tracking: mark cameras dead after HealthK silent frames and
	// feed the mask into the ownership policy so the distributed stage
	// fails over and the central stage reschedules over the survivors.
	var (
		health       *camfault.Tracker
		deadMask     []bool
		outageFrames int
		orphaned     int
		reassigned   int
	)
	if opts.CamFaults != nil && opts.HealthK > 0 && policy != nil {
		health = camfault.NewTracker(len(cams), opts.HealthK)
	}

	for fi := range trace.Frames {
		frame := &trace.Frames[fi]
		// Each camera sees the scene as of its own (possibly lagged)
		// frame — the paper's imperfect-synchronization model. A camera
		// down per the fault schedule sees nothing and does no work this
		// frame; its state freezes until it recovers.
		obs := make([][]scene.Observation, len(cams))
		var down []bool
		for i := range cams {
			if opts.CamFaults.Down(i, fi) {
				if down == nil {
					down = make([]bool, len(cams))
				}
				down[i] = true
				outageFrames++
				continue
			}
			src := fi
			if opts.CameraLag != nil && opts.CameraLag[i] > 0 {
				src = fi - opts.CameraLag[i]
				if src < 0 {
					src = 0
				}
			}
			obs[i] = trace.Frames[src].PerCamera[i]
		}
		if health != nil {
			for i := range cams {
				health.Observe(i, down == nil || !down[i])
			}
			deadMask, _ = health.DeadMask(deadMask)
			policy.SetDead(deadMask) // all-false mask clears
		}
		isKey := fi%opts.Horizon == 0
		detectedIDs := make(map[int]bool)
		results := make([]camFrame, len(cams))

		if isKey {
			flushHorizon()
			if err := runKeyFrame(cams, obs, down, detectedIDs, breakdown, horizonCam, results, opts); err != nil {
				return nil, err
			}
			if needsModel {
				start := time.Now()
				newPolicy, err := centralStage(cams, coreCams, model, subModels, deadMask, opts)
				if err != nil {
					return nil, err
				}
				centralTotal += time.Since(start)
				if newPolicy != nil {
					policy = newPolicy
					policy.SetDead(deadMask)
				}
			}
		} else {
			if err := runRegularFrame(cams, obs, down, detectedIDs, breakdown, horizonCam, results, policy, opts); err != nil {
				return nil, err
			}
		}

		breakdown.EndFrame()
		horizonLen++
		recall.Observe(frame.VisibleObjectIDs(), detectedIDs)
		for i := range results {
			reassigned += results[i].reassigned
			orphaned += results[i].orphaned
		}

		// Per-frame system latency (max across cameras) for tail stats.
		var frameMax time.Duration
		for i, c := range cams {
			busy := c.exec.Stats().BusyTime
			if d := busy - prevBusy[i]; d > frameMax {
				frameMax = d
			}
			prevBusy[i] = busy
		}
		frameSeries.Add(frameMax)

		// Live export: one snapshot per frame, fixed camera order,
		// modelled fields only — the sink sees exactly what Modeled()
		// would report for the frames so far, so attaching one cannot
		// perturb the determinism contract.
		if opts.Sink != nil {
			emitFrameSnapshot(opts.Sink, label, fi, &recall, frameMax, cams, results,
				outageFrames, orphaned, reassigned)
		}
	}
	flushHorizon()

	for i, c := range cams {
		perCamTotal[i] = c.exec.Stats().BusyTime / time.Duration(len(trace.Frames))
	}

	rep := &Report{
		Mode:                opts.Mode,
		Frames:              len(trace.Frames),
		Horizon:             opts.Horizon,
		Recall:              recall.Recall(),
		PerCameraMean:       perCamTotal,
		CentralPerFrame:     centralTotal / time.Duration(len(trace.Frames)),
		TrackingPerFrame:    breakdown.MeanOf("tracking"),
		DistributedPerFrame: breakdown.MeanOf("distributed"),
		BatchingPerFrame:    breakdown.MeanOf("batching"),
	}
	rep.TP, rep.FN = recall.Counts()
	if horizons > 0 {
		rep.MeanSlowest = slowestSum / time.Duration(horizons)
	}
	rep.MaxSlowest = frameSeries.Max()
	p95, err := frameSeries.Percentile(95)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	rep.P95Slowest = p95
	p99, err := frameSeries.Percentile(99)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	rep.P99Slowest = p99
	rep.OutageFrames = outageFrames
	rep.OrphanedObjects = orphaned
	rep.Reassignments = reassigned
	return rep, nil
}

func buildCameraStates(trace *scene.Trace, profiles []*profile.Profile, model *assoc.Model, opts Options) ([]*cameraState, error) {
	cams := make([]*cameraState, len(trace.Cameras))
	for i, sc := range trace.Cameras {
		exec, err := gpu.NewExecutor(profiles[i])
		if err != nil {
			return nil, fmt.Errorf("pipeline: camera %d: %w", i, err)
		}
		tracker, err := flow.NewTracker(sc.Frame(), flow.Config{})
		if err != nil {
			return nil, fmt.Errorf("pipeline: camera %d: %w", i, err)
		}
		cs := &cameraState{
			index:   i,
			cam:     sc,
			exec:    exec,
			det:     vision.NewDetector(opts.Seed+int64(i)*101, opts.Detector),
			tracker: tracker,
			grid:    geom.NewGrid(sc.Frame(), opts.GridCols, opts.GridRows),
		}
		cams[i] = cs
	}

	// Static precomputation: cell coverage sets (the cameras are
	// statically mounted, so this happens once, as in the paper).
	if opts.Mode == CentralOnly || opts.Mode == BALB || opts.Mode == StaticPartition {
		for _, cs := range cams {
			cover, err := model.CellCoverageWorkers(cs.index, cs.grid, opts.Workers)
			if err != nil {
				return nil, fmt.Errorf("pipeline: camera %d coverage: %w", cs.index, err)
			}
			cs.coverage = cover
		}
	}
	if opts.Mode == StaticPartition {
		if err := computeStaticOwners(cams, profiles); err != nil {
			return nil, err
		}
	}
	return cams, nil
}

// computeStaticOwners implements the SP baseline's offline step: all
// cells across all cameras are partitioned by capacity-weighted
// round-robin over their coverage sets.
func computeStaticOwners(cams []*cameraState, profiles []*profile.Profile) error {
	specs := make([]core.CameraSpec, len(profiles))
	for i, p := range profiles {
		specs[i] = core.CameraSpec{Index: i, Profile: p}
	}
	weights, err := core.CapacityWeights(specs)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	for _, cs := range cams {
		owners, err := core.WeightedPartition(cs.coverage, weights)
		if err != nil {
			return fmt.Errorf("pipeline: camera %d owners: %w", cs.index, err)
		}
		cs.spOwner = owners
	}
	return nil
}

// camFrame is one camera's contribution to a frame, produced by exactly
// one worker goroutine and merged into the shared accumulators (detected
// set, horizon latencies, overhead breakdown) in fixed camera order —
// the mechanism that keeps parallel runs bit-identical to sequential
// ones. The batch counters feed the per-frame observability snapshot;
// like latency they are modelled quantities, deterministic per camera.
type camFrame struct {
	latency   time.Duration
	truthIDs  []int
	sample    metrics.CameraSample
	batches   int
	images    int
	occupancy float64
	// reassigned counts shadow promotions because the owning camera is
	// dead; orphaned counts shadows dropped with no live covering
	// camera. Both stay zero in fault-free runs.
	reassigned int
	orphaned   int
}

// mergeCamFrames folds per-camera frame shards into the run accumulators
// in camera-index order.
func mergeCamFrames(results []camFrame, detected map[int]bool,
	breakdown *metrics.Breakdown, horizonCam []time.Duration) {
	for i := range results {
		r := &results[i]
		horizonCam[i] += r.latency
		for _, id := range r.truthIDs {
			detected[id] = true
		}
		breakdown.Absorb(&r.sample)
	}
}

// emitFrameSnapshot assembles and records one frame's observability
// snapshot: cumulative recall, this frame's modelled system latency, and
// the per-camera latency/batch figures, in ascending camera order. Every
// field is modelled (deterministic); the snapshot is built from the same
// merged camFrame shards the report accumulators consume.
func emitFrameSnapshot(sink metrics.Sink, label string, frame int,
	recall *metrics.RecallAccumulator, frameMax time.Duration,
	cams []*cameraState, results []camFrame,
	outageFrames, orphaned, reassigned int) {
	tp, fn := recall.Counts()
	snap := metrics.Snapshot{
		Source:          metrics.SourcePipeline,
		Label:           label,
		Seq:             frame,
		Frame:           frame,
		TP:              tp,
		FN:              fn,
		Recall:          recall.Recall(),
		OutageFrames:    outageFrames,
		OrphanedObjects: orphaned,
		Reassignments:   reassigned,
		FrameLatency:    frameMax,
		Cameras:         make([]metrics.CameraSnapshot, len(cams)),
	}
	for i, cs := range cams {
		snap.Cameras[i] = metrics.CameraSnapshot{
			Camera:         i,
			Latency:        results[i].latency,
			Batches:        results[i].batches,
			Images:         results[i].images,
			BatchOccupancy: results[i].occupancy,
			Tracks:         cs.tracker.Len(),
			Shadows:        len(cs.shadows),
		}
	}
	sink.RecordFrame(snap)
}

// runKeyFrame performs the full-frame inspections, fanned out per
// camera. results must hold one zeroed camFrame per camera; it carries
// the per-camera shards out to the caller for snapshot assembly. A
// non-nil down mask skips those cameras entirely (their shard stays
// zero and their state freezes).
func runKeyFrame(cams []*cameraState, obs [][]scene.Observation, down []bool, detected map[int]bool,
	breakdown *metrics.Breakdown, horizonCam []time.Duration, results []camFrame, opts Options) error {
	err := pool.Do(opts.Workers, len(cams), func(i int) error {
		if down != nil && down[i] {
			return nil
		}
		return cams[i].keyFrame(obs[i], &results[i])
	})
	if err != nil {
		return err
	}
	mergeCamFrames(results, detected, breakdown, horizonCam)

	// SP keeps only tracks in owned cells; Full/Independent/Central modes
	// keep everything (the central stage reassigns right after).
	if opts.Mode == StaticPartition {
		for _, cs := range cams {
			if down != nil && down[cs.index] {
				continue
			}
			for _, t := range cs.tracker.Tracks() {
				cell, _ := cs.grid.CellIndex(t.Box.Center())
				if cs.spOwner[cell] != cs.index {
					cs.tracker.Remove(t.ID)
				}
			}
		}
	}
	return nil
}

// keyFrame is one camera's share of a key frame: full-frame inspection
// plus track refresh. It touches only this camera's state and its own
// camFrame shard.
func (cs *cameraState) keyFrame(obs []scene.Observation, out *camFrame) error {
	out.latency = cs.exec.RunFullFrame()
	dets := cs.det.DetectFull(obs)
	for _, d := range dets {
		out.truthIDs = append(out.truthIDs, d.TruthID)
	}
	start := time.Now()
	if _, err := cs.tracker.Update(dets); err != nil {
		return fmt.Errorf("pipeline: camera %d key-frame tracking: %w", cs.index, err)
	}
	cs.tracker.RefreshSizes()
	out.sample.Observe("tracking", time.Since(start))
	cs.shadows = cs.shadows[:0]
	return nil
}

// centralStage runs association plus the central-stage scheduler and
// applies the assignment: unassigned members become shadows. The
// pairwise association — the stage's O(N^2) term — fans out per camera
// pair on opts.Workers (assoc.AssociateWorkers); the BALB solve and the
// shadow bookkeeping stay inline. For SP the association is skipped
// (its partition is static), so the stage only reconciles track
// ownership by cell owner, which key-frame handling already did — it
// returns a nil policy to keep the previous one.
//
// With opts.Shards set the stage runs once per shard over that shard's
// cameras only (subModels[s] is the model restricted to the shard's
// roster), and the per-shard priorities compose into a
// core.ShardedPolicy; no association pair, MVS instance, or priority
// order ever spans two shards.
//
// A non-nil dead mask excludes those cameras' (stale, frozen) tracks
// from association, so the MVS instance is built over the healthy
// subset only and every orphaned object is implicitly reassigned to a
// live covering camera by Central.
func centralStage(cams []*cameraState, coreCams []core.CameraSpec, model *assoc.Model,
	subModels []*assoc.Model, dead []bool, opts Options) (core.Policy, error) {
	if opts.Mode == StaticPartition {
		return nil, nil
	}
	if opts.Shards == nil {
		prio, err := centralShard(cams, coreCams, model, dead, nil, opts)
		if err != nil {
			return nil, err
		}
		policy, err := core.NewDistributedPolicy(prio)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		return policy, nil
	}
	priorities := make([][]int, opts.Shards.NumShards())
	for s, roster := range opts.Shards.Shards {
		prio, err := centralShard(cams, coreCams, subModels[s], dead, roster, opts)
		if err != nil {
			return nil, fmt.Errorf("pipeline: shard %d: %w", s, err)
		}
		priorities[s] = prio
	}
	policy, err := core.NewShardedPolicy(opts.Shards.ShardOf, priorities)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	return policy, nil
}

// centralShard runs one central-stage round over a camera roster (nil
// = the whole fleet, with local index == global index) and returns the
// resulting priority order in *global* camera indices. The model must
// be scoped to the roster (assoc.Model.Subset); boxes, coverage sets,
// and the BALB instance all use local (roster) indices internally, and
// only the applied shadows and the returned priority are translated
// back to global.
func centralShard(cams []*cameraState, coreCams []core.CameraSpec, model *assoc.Model,
	dead []bool, roster []int, opts Options) ([]int, error) {
	n := len(cams)
	if roster != nil {
		n = len(roster)
	}
	glob := func(li int) int {
		if roster == nil {
			return li
		}
		return roster[li]
	}

	// Gather per-camera track boxes (live cameras only), local order.
	boxes := make([][]geom.Rect, n)
	trackIDs := make([][]int, n)
	for li := 0; li < n; li++ {
		g := glob(li)
		if dead != nil && g < len(dead) && dead[g] {
			continue
		}
		for _, t := range cams[g].tracker.Tracks() {
			boxes[li] = append(boxes[li], t.Box)
			trackIDs[li] = append(trackIDs[li], t.ID)
		}
	}
	groups, err := model.AssociateWorkers(boxes, opts.AssocMinIoU, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("pipeline: association: %w", err)
	}

	// Build the MVS instance: one object per associated group, coverage
	// in local indices.
	objects := make([]core.ObjectSpec, 0, len(groups))
	for gi, g := range groups {
		spec := core.ObjectSpec{ID: gi + 1, Size: make(map[int]int)}
		for _, ref := range g.Members {
			cs := cams[glob(ref.Cam)]
			track := cs.tracker.Get(trackIDs[ref.Cam][ref.Index])
			if track == nil {
				continue
			}
			if _, seen := spec.Size[ref.Cam]; !seen {
				spec.Coverage = append(spec.Coverage, ref.Cam)
			}
			if track.QuantSize > spec.Size[ref.Cam] {
				spec.Size[ref.Cam] = track.QuantSize
			}
		}
		if len(spec.Coverage) > 0 {
			objects = append(objects, spec)
		}
	}

	localCore := make([]core.CameraSpec, n)
	for li := range localCore {
		localCore[li] = core.CameraSpec{Index: li, Profile: coreCams[glob(li)].Profile}
	}
	var sol *core.Solution
	extra := map[int][]int{}
	if opts.Redundancy > 1 {
		var err error
		sol, extra, err = core.CentralRedundant(localCore, objects, opts.Redundancy, opts.RedundancySlack)
		if err != nil {
			return nil, fmt.Errorf("pipeline: redundant central BALB: %w", err)
		}
	} else {
		var err error
		sol, err = core.Central(localCore, objects, core.CentralOptions{})
		if err != nil {
			return nil, fmt.Errorf("pipeline: central BALB: %w", err)
		}
	}

	// Apply: members on non-assigned (and non-redundant) cameras become
	// shadows, with the assignment recorded in global indices.
	for gi, g := range groups {
		assignedCam, ok := sol.Assign[gi+1]
		if !ok {
			continue // group with no live members
		}
		for _, ref := range g.Members {
			if ref.Cam == assignedCam || containsCam(extra[gi+1], ref.Cam) {
				continue
			}
			cs := cams[glob(ref.Cam)]
			id := trackIDs[ref.Cam][ref.Index]
			track := cs.tracker.Get(id)
			if track == nil {
				continue
			}
			cs.shadows = append(cs.shadows, &shadow{
				box:      track.Box,
				vel:      track.Velocity,
				truthID:  track.TruthID,
				assigned: glob(assignedCam),
				size:     track.QuantSize,
			})
			cs.tracker.Remove(id)
		}
	}

	prio := make([]int, len(sol.Priority))
	for k, li := range sol.Priority {
		prio[k] = glob(li)
	}
	return prio, nil
}

func containsCam(cams []int, cam int) bool {
	for _, c := range cams {
		if c == cam {
			return true
		}
	}
	return false
}

// runRegularFrame performs sliced, batched partial inspection plus the
// distributed stage, fanned out per camera. The shared policy is only
// read by the workers; every write stays inside one camera's state and
// camFrame shard.
func runRegularFrame(cams []*cameraState, obs [][]scene.Observation, down []bool, detected map[int]bool,
	breakdown *metrics.Breakdown, horizonCam []time.Duration, results []camFrame,
	policy core.Policy, opts Options) error {
	var err error
	if opts.Mode == Full {
		err = pool.Do(opts.Workers, len(cams), func(i int) error {
			if down != nil && down[i] {
				return nil
			}
			cams[i].fullFrame(obs[i], &results[i])
			return nil
		})
	} else {
		err = pool.Do(opts.Workers, len(cams), func(i int) error {
			if down != nil && down[i] {
				return nil
			}
			return cams[i].regularFrame(obs[i], policy, opts, &results[i])
		})
	}
	if err != nil {
		return err
	}
	mergeCamFrames(results, detected, breakdown, horizonCam)
	return nil
}

// fullFrame is one camera's share of a Full-mode regular frame.
func (cs *cameraState) fullFrame(obs []scene.Observation, out *camFrame) {
	out.latency = cs.exec.RunFullFrame()
	for _, d := range cs.det.DetectFull(obs) {
		out.truthIDs = append(out.truthIDs, d.TruthID)
	}
}

// regularFrame is one camera's share of a non-Full regular frame:
// shadow advance, slicing, new-region proposals, batched GPU execution,
// tracking update, and the distributed-stage ownership decisions.
func (cs *cameraState) regularFrame(obs []scene.Observation, policy core.Policy,
	opts Options, out *camFrame) error {
	useDistributed := opts.Mode == BALB || opts.Mode == Independent || opts.Mode == StaticPartition

	// --- Tracking: advance shadows, slice regions. ---
	trackStart := time.Now()
	alive := cs.shadows[:0]
	for _, sh := range cs.shadows {
		sh.box = sh.box.Translate(sh.vel)
		if cs.cam.Frame().Contains(sh.box.Center()) {
			alive = append(alive, sh)
		}
	}
	cs.shadows = alive

	tracks := cs.tracker.Tracks()
	regions := make([]geom.Rect, 0, len(tracks))
	tasks := make([]gpu.Task, 0, len(tracks))
	predicted := make([]geom.Rect, 0, len(tracks))
	for _, t := range tracks {
		r := cs.tracker.Region(t)
		regions = append(regions, r)
		tasks = append(tasks, gpu.Task{ObjectID: t.ID, Size: t.QuantSize})
		predicted = append(predicted, t.Predicted())
	}
	out.sample.Observe("tracking", time.Since(trackStart))

	// --- Distributed stage part 1: new-region proposals. ---
	var newRegions []geom.Rect
	if useDistributed {
		distStart := time.Now()
		moving := make([]geom.Rect, 0, len(obs))
		for _, o := range obs {
			moving = append(moving, o.Box)
		}
		explained := predicted
		for _, sh := range cs.shadows {
			explained = append(explained, sh.box)
		}
		newRegions = flow.NewRegions(moving, explained, 0)
		for _, nr := range newRegions {
			// The camera masks filter *before* inspection: a camera
			// never spends GPU time on new regions another camera is
			// responsible for (Fig. 8).
			if !cs.keepNewTrack(nr.Center(), policy, opts) {
				continue
			}
			q, size := geom.QuantizeRect(nr, cs.cam.Frame(), nil)
			regions = append(regions, q)
			tasks = append(tasks, gpu.Task{ObjectID: -1, Size: size})
		}
		out.sample.Observe("distributed", time.Since(distStart))
	}

	// --- Batched GPU execution. ---
	batchStart := time.Now()
	res, err := cs.exec.RunFrame(tasks)
	if err != nil {
		return fmt.Errorf("pipeline: camera %d inspection: %w", cs.index, err)
	}
	out.sample.Observe("batching", time.Since(batchStart))
	out.latency = res.Latency
	out.batches = len(res.Batches)
	out.images = res.Images
	out.occupancy = gpu.BatchOccupancy(res.Batches, cs.exec.Profile())

	dets, err := cs.det.DetectRegions(regions, obs)
	if err != nil {
		return fmt.Errorf("pipeline: camera %d detect: %w", cs.index, err)
	}
	for _, d := range dets {
		out.truthIDs = append(out.truthIDs, d.TruthID)
	}

	// --- Tracking update. ---
	trackStart = time.Now()
	created, err := cs.tracker.Update(dets)
	if err != nil {
		return fmt.Errorf("pipeline: camera %d tracking: %w", cs.index, err)
	}
	out.sample.Observe("tracking", time.Since(trackStart))

	// --- Distributed stage part 2: ownership decisions. ---
	distStart := time.Now()
	for _, id := range created {
		t := cs.tracker.Get(id)
		if t == nil {
			continue
		}
		if !cs.keepNewTrack(t.Box.Center(), policy, opts) {
			cs.tracker.Remove(id)
		}
	}
	if opts.Mode == BALB {
		cs.takeoverCheck(policy, out)
	}
	out.sample.Observe("distributed", time.Since(distStart))
	return nil
}

// keepNewTrack decides whether this camera keeps a freshly spawned track,
// by mode: Independent keeps all; SP keeps tracks in its owned cells;
// BALB keeps tracks whose cell it owns under the latency-priority masks;
// CentralOnly never spawns between key frames (no distributed stage).
func (cs *cameraState) keepNewTrack(centre geom.Point, policy core.Policy, opts Options) bool {
	switch opts.Mode {
	case Independent:
		return true
	case StaticPartition:
		cell, _ := cs.grid.CellIndex(centre)
		return cs.spOwner[cell] == cs.index
	case BALB:
		cell, _ := cs.grid.CellIndex(centre)
		return policy.ShouldTrack(cs.index, cs.coverage[cell])
	default:
		return false
	}
}

// takeoverCheck implements the second distributed-stage rule: when a
// shadowed object's assigned camera can no longer see it — it lost
// coverage per the static cell masks, or it is marked dead by the
// health tracker — the highest-priority live camera still covering it
// takes over, without any communication, because every camera evaluates
// the same masks and the same shared dead set.
func (cs *cameraState) takeoverCheck(policy core.Policy, out *camFrame) {
	alive := cs.shadows[:0]
	for _, sh := range cs.shadows {
		cell, inside := cs.grid.CellIndex(sh.box.Center())
		if !inside {
			continue // left this camera's view; drop the shadow
		}
		cover := cs.coverage[cell]
		assignedSees := false
		for _, c := range cover {
			if c == sh.assigned {
				assignedSees = true
				break
			}
		}
		deadOwner := assignedSees && policy.Dead(sh.assigned)
		if assignedSees && !deadOwner {
			alive = append(alive, sh)
			continue
		}
		// Assigned camera lost it (coverage or death): does this camera
		// take over?
		if policy.ShouldTrack(cs.index, cover) {
			if deadOwner {
				out.reassigned++
			}
			cs.tracker.Spawn(vision.Detection{Box: sh.box, Score: 0.5, TruthID: sh.truthID})
			continue // shadow promoted to active track
		}
		if owner, ok := policy.Owner(cover); ok {
			sh.assigned = owner // another camera takes it; keep shadowing
			alive = append(alive, sh)
		} else if deadOwner {
			out.orphaned++ // no live camera covers it; the object is lost
		}
	}
	cs.shadows = alive
}
