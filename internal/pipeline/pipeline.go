// Package pipeline wires every substrate into the end-to-end system of
// Fig. 5: per-camera full-frame inspection at key frames, cross-camera
// association and central BALB scheduling on key frames, tracking-based
// slicing with batched partial inspection on regular frames, and the
// distributed BALB stage (camera masks) handling object dynamics in
// between — plus the evaluation baselines the paper compares against.
//
// The package's public shape is streaming-first (docs/STREAMING.md): a
// Source yields timestamped frames (simulator trace, test channel, or
// the run store's deterministic replay), an Engine built from a grouped
// Config consumes them one at a time and emits per-frame
// metrics.Snapshot and per-round metrics.Round records, and the batch
// Run helper is a thin wrapper — build a TraceSource, drain the engine,
// return its Report.
//
// Time is two-layered, as in the paper's evaluation: GPU inference
// latencies are *modelled* from the device profiles (the quantity the
// scheduler optimizes, Fig. 13), while framework overheads — tracking,
// association, scheduling, batching — are *measured* wall-clock costs of
// this implementation (Table II).
//
// # Execution model
//
// The paper's cameras are independent devices, and the engine mirrors
// that: within each frame the per-camera work (detection, tracking,
// slicing, batched GPU execution, distributed-stage decisions) fans out
// across a bounded worker pool sized by Config.Sched.Workers (default:
// GOMAXPROCS, capped at the camera count). Each camera's mutable state —
// its RNG, tracker, executor, shadows — lives in its cameraState and is
// touched by exactly one goroutine per frame; per-camera outputs are
// collected into camFrame shards and merged in fixed camera order, so
// the modelled results are bit-identical for every worker count (the
// determinism contract, docs/CONCURRENCY.md). The key-frame central
// stage runs between per-camera fan-outs, as the paper's central
// scheduler is a single node, but is not purely sequential: its pairwise
// association fans out per camera pair on the same Workers bound
// (assoc.AssociateWorkers), with the union-find merge applied in
// deterministic pair order; only the BALB solve and the SP ownership
// pass remain inline. Workers=1 runs everything — fan-outs included —
// inline on the calling goroutine.
//
// Run is safe to call concurrently from multiple goroutines as long as
// each call gets its own profiles slice (trace and model are only
// read); each call owns a private Engine.
package pipeline

import (
	"fmt"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/core"
	"mvs/internal/flow"
	"mvs/internal/geom"
	"mvs/internal/gpu"
	"mvs/internal/metrics"
	"mvs/internal/pool"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/vision"
)

// Mode selects the scheduling algorithm under evaluation.
type Mode int

const (
	// Full runs full-frame detection on every frame of every camera (the
	// paper's recall upper bound and latency worst case).
	Full Mode = iota
	// Independent is BALB-Ind: slicing and batching per camera, no
	// cross-camera sharing.
	Independent
	// CentralOnly is BALB-Cen: the central stage alone, no distributed
	// stage between key frames.
	CentralOnly
	// BALB is the complete two-stage algorithm.
	BALB
	// StaticPartition is the SP baseline: overlap cells partitioned
	// offline by processing power.
	StaticPartition
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Full:
		return "Full"
	case Independent:
		return "BALB-Ind"
	case CentralOnly:
		return "BALB-Cen"
	case BALB:
		return "BALB"
	case StaticPartition:
		return "SP"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Report is the outcome of a pipeline run.
type Report struct {
	// Mode echoes the algorithm evaluated.
	Mode Mode
	// Frames is the number of frames processed.
	Frames int
	// Horizon echoes T.
	Horizon int
	// Recall is the paper's object recall (Fig. 12).
	Recall float64
	// TP, FN are the recall counts.
	TP, FN int
	// MeanSlowest is the Fig. 13 metric: per horizon, each camera's mean
	// per-frame inference latency is computed, the slowest camera taken,
	// and the result averaged across horizons.
	MeanSlowest time.Duration
	// PerCameraMean is each camera's mean per-frame inference latency.
	PerCameraMean []time.Duration
	// CentralPerFrame is the measured central-stage overhead (association
	// + central BALB), amortized per frame (Table II).
	CentralPerFrame time.Duration
	// TrackingPerFrame is the measured per-frame tracking overhead,
	// maximum across cameras, averaged over frames (Table II).
	TrackingPerFrame time.Duration
	// DistributedPerFrame is the measured distributed-stage overhead
	// (Table II).
	DistributedPerFrame time.Duration
	// BatchingPerFrame is the measured batch-formation overhead
	// (Table II).
	BatchingPerFrame time.Duration
	// P95Slowest, P99Slowest and MaxSlowest summarize the tail of the
	// per-frame system latency (max across cameras per frame): the
	// paper's motivation is responsiveness, so the tail matters as much
	// as the mean.
	P95Slowest time.Duration
	P99Slowest time.Duration
	MaxSlowest time.Duration
	// OutageFrames counts camera-frames lost to the fault schedule;
	// OrphanedObjects counts shadows dropped because no live camera
	// covered them; Reassignments counts failover ownership transfers
	// (shadow promotions after the owner died). All zero in fault-free
	// runs; all modelled (deterministic), so Modeled() keeps them.
	OutageFrames    int
	OrphanedObjects int
	Reassignments   int
	// AdaptLevel is the degradation-ladder rung in force at the end of
	// the run, AdaptTransitions the number of level changes, and
	// SLOViolations the number of frames whose modelled latency exceeded
	// the configured SLO (Config.Adapt). All zero with the controller
	// disabled; all modelled (deterministic), so Modeled() keeps them.
	AdaptLevel       int
	AdaptTransitions int
	SLOViolations    int
	// Tenant echoes Config.Serve.Tenant, and the Exec* counters mirror
	// the shared executor pool's final per-tenant figures
	// (pipeline.ExecStats): batches shared with other tenants, tasks
	// dropped by pool admission control, and epochs priced over this
	// tenant's SLO. All zero without a serve executor; all modelled
	// (deterministic), so Modeled() keeps them (docs/SERVING.md).
	Tenant            string
	ExecSharedBatches int
	ExecShedTasks     int
	ExecSLOViolations int
}

// OverheadTotal returns the summed per-frame framework overhead.
func (r *Report) OverheadTotal() time.Duration {
	return r.CentralPerFrame + r.TrackingPerFrame + r.DistributedPerFrame + r.BatchingPerFrame
}

// Modeled returns the deterministic projection of the report: every
// field derived from the simulation model (recall counts, modelled GPU
// latencies, tail statistics), with the wall-clock-measured overhead
// fields (CentralPerFrame, TrackingPerFrame, DistributedPerFrame,
// BatchingPerFrame) zeroed out. The determinism contract — the same
// (source, profiles, model, Config modulo Sched.Workers) produces
// identical results — holds exactly for this projection; the measured
// overheads are timings of this host and vary run to run even
// sequentially.
func (r *Report) Modeled() Report {
	out := *r
	out.CentralPerFrame = 0
	out.TrackingPerFrame = 0
	out.DistributedPerFrame = 0
	out.BatchingPerFrame = 0
	out.PerCameraMean = append([]time.Duration(nil), r.PerCameraMean...)
	return out
}

// shadow is a camera's knowledge of an object assigned to another camera:
// its last known box here, coasting on the key-frame velocity, so the
// camera can take over tracking without communication if the object
// leaves its assigned camera's view.
type shadow struct {
	box      geom.Rect
	vel      geom.Point
	truthID  int
	assigned int
	size     int
}

// cameraState is all per-camera runtime state.
type cameraState struct {
	index    int
	cam      *scene.Camera
	exec     *gpu.Executor
	det      *vision.Detector
	tracker  *flow.Tracker
	grid     geom.Grid
	coverage [][]int // static per-cell coverage sets (BALB modes)
	spOwner  []int   // static per-cell owners (SP mode)
	shadows  []*shadow
	// remote defers GPU pricing to Config.Serve.Executor: the per-camera
	// fan-out collects inspection requests into the camFrame shard
	// instead of running them on the private executor, and the engine
	// resolves them at a barrier after the fan-out (resolveServe).
	remote bool
}

// Run executes the pipeline over a pre-generated trace: it builds a
// TraceSource, drains a private Engine, and returns its Report. The
// association model may be nil for Full and Independent modes; every
// other mode requires one trained on a disjoint (earlier) part of the
// deployment. Sink errors surface here even though the trace is fully
// consumed on success — the engine flushes the sink at end of stream
// and Run propagates the result.
func Run(trace *scene.Trace, profiles []*profile.Profile, model *assoc.Model, cfg Config) (*Report, error) {
	if len(trace.Frames) == 0 {
		return nil, fmt.Errorf("pipeline: empty trace")
	}
	if cfg.Fault.CamFaults != nil && cfg.Fault.CamFaults.NumFrames() < len(trace.Frames) {
		return nil, fmt.Errorf("pipeline: fault schedule covers %d frames, trace has %d",
			cfg.Fault.CamFaults.NumFrames(), len(trace.Frames))
	}
	e, err := NewEngine(NewTraceSource(trace), profiles, model, cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Run(); err != nil {
		return nil, err
	}
	return e.Report()
}

func buildCameraStates(cameras []*scene.Camera, profiles []*profile.Profile, model *assoc.Model, cfg Config) ([]*cameraState, error) {
	cams := make([]*cameraState, len(cameras))
	for i, sc := range cameras {
		exec, err := gpu.NewExecutor(profiles[i])
		if err != nil {
			return nil, fmt.Errorf("pipeline: camera %d: %w", i, err)
		}
		tracker, err := flow.NewTracker(sc.Frame(), flow.Config{})
		if err != nil {
			return nil, fmt.Errorf("pipeline: camera %d: %w", i, err)
		}
		cs := &cameraState{
			index:   i,
			cam:     sc,
			exec:    exec,
			det:     vision.NewDetector(cfg.Sim.Seed+int64(i)*101, cfg.Sim.Detector),
			tracker: tracker,
			grid:    geom.NewGrid(sc.Frame(), cfg.Sim.GridCols, cfg.Sim.GridRows),
			remote:  cfg.Serve.Executor != nil,
		}
		cams[i] = cs
	}

	// Static precomputation: cell coverage sets (the cameras are
	// statically mounted, so this happens once, as in the paper).
	if cfg.Sched.Mode == CentralOnly || cfg.Sched.Mode == BALB || cfg.Sched.Mode == StaticPartition {
		for _, cs := range cams {
			cover, err := model.CellCoverageWorkers(cs.index, cs.grid, cfg.Sched.Workers)
			if err != nil {
				return nil, fmt.Errorf("pipeline: camera %d coverage: %w", cs.index, err)
			}
			cs.coverage = cover
		}
	}
	if cfg.Sched.Mode == StaticPartition {
		if err := computeStaticOwners(cams, profiles); err != nil {
			return nil, err
		}
	}
	return cams, nil
}

// computeStaticOwners implements the SP baseline's offline step: all
// cells across all cameras are partitioned by capacity-weighted
// round-robin over their coverage sets.
func computeStaticOwners(cams []*cameraState, profiles []*profile.Profile) error {
	specs := make([]core.CameraSpec, len(profiles))
	for i, p := range profiles {
		specs[i] = core.CameraSpec{Index: i, Profile: p}
	}
	weights, err := core.CapacityWeights(specs)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	for _, cs := range cams {
		owners, err := core.WeightedPartition(cs.coverage, weights)
		if err != nil {
			return fmt.Errorf("pipeline: camera %d owners: %w", cs.index, err)
		}
		cs.spOwner = owners
	}
	return nil
}

// camFrame is one camera's contribution to a frame, produced by exactly
// one worker goroutine and merged into the shared accumulators (detected
// set, horizon latencies, overhead breakdown) in fixed camera order —
// the mechanism that keeps parallel runs bit-identical to sequential
// ones. The batch counters feed the per-frame observability snapshot;
// like latency they are modelled quantities, deterministic per camera.
type camFrame struct {
	latency   time.Duration
	truthIDs  []int
	sample    metrics.CameraSample
	batches   int
	images    int
	occupancy float64
	// reassigned counts shadow promotions because the owning camera is
	// dead; orphaned counts shadows dropped with no live covering
	// camera. Both stay zero in fault-free runs.
	reassigned int
	orphaned   int
	// tasks and full carry the camera's deferred GPU work when pricing
	// is delegated to Config.Serve.Executor (cameraState.remote): the
	// partial-region tasks of a regular frame, or a full-frame
	// inspection marker. resolveServe fills latency/batches/images/
	// occupancy from the executor's reply before the merge.
	tasks []gpu.Task
	full  bool
}

// mergeCamFrames folds per-camera frame shards into the run accumulators
// in camera-index order.
func mergeCamFrames(results []camFrame, detected map[int]bool,
	breakdown *metrics.Breakdown, horizonCam []time.Duration) {
	for i := range results {
		r := &results[i]
		horizonCam[i] += r.latency
		for _, id := range r.truthIDs {
			detected[id] = true
		}
		breakdown.Absorb(&r.sample)
	}
}

// emitFrameSnapshot assembles and records one frame's observability
// snapshot: cumulative recall, this frame's modelled system latency, and
// the per-camera latency/batch figures, in ascending camera order. Every
// field is modelled (deterministic); the snapshot is built from the same
// merged camFrame shards the report accumulators consume.
func emitFrameSnapshot(sink metrics.Sink, label string, frame int,
	recall *metrics.RecallAccumulator, frameMax time.Duration,
	cams []*cameraState, results []camFrame,
	outageFrames, orphaned, reassigned int,
	adaptLevel, adaptTransitions, sloViolations int, ingest IngestMeter,
	tenant string, exec ExecStats) {
	tp, fn := recall.Counts()
	snap := metrics.Snapshot{
		Source:            metrics.SourcePipeline,
		Label:             label,
		Seq:               frame,
		Frame:             frame,
		TP:                tp,
		FN:                fn,
		Recall:            recall.Recall(),
		OutageFrames:      outageFrames,
		OrphanedObjects:   orphaned,
		Reassignments:     reassigned,
		AdaptLevel:        adaptLevel,
		AdaptTransitions:  adaptTransitions,
		SLOViolations:     sloViolations,
		Tenant:            tenant,
		ExecQueueDepth:    exec.QueueDepth,
		ExecSharedBatches: exec.SharedBatches,
		ExecShedTasks:     exec.ShedTasks,
		ExecSLOViolations: exec.SLOViolations,
		FrameLatency:      frameMax,
		Cameras:           make([]metrics.CameraSnapshot, len(cams)),
	}
	if ingest != nil {
		c := ingest.Counters()
		snap.IngestedFrames = c.Ingested
		snap.ShedFrames = c.Shed
		snap.QueueDepth = c.QueueDepth
	}
	for i, cs := range cams {
		snap.Cameras[i] = metrics.CameraSnapshot{
			Camera:         i,
			Latency:        results[i].latency,
			Batches:        results[i].batches,
			Images:         results[i].images,
			BatchOccupancy: results[i].occupancy,
			Tracks:         cs.tracker.Len(),
			Shadows:        len(cs.shadows),
		}
	}
	sink.RecordFrame(snap)
}

// runKeyFrame performs the full-frame inspections, fanned out per
// camera. results must hold one zeroed camFrame per camera; it carries
// the per-camera shards out to the caller, which resolves any deferred
// GPU pricing and merges them in camera order. A non-nil down mask
// skips those cameras entirely (their shard stays zero and their state
// freezes).
func runKeyFrame(cams []*cameraState, obs [][]scene.Observation, down []bool,
	results []camFrame, cfg Config) error {
	return pool.Do(cfg.Sched.Workers, len(cams), func(i int) error {
		if down != nil && down[i] {
			return nil
		}
		return cams[i].keyFrame(obs[i], &results[i])
	})
}

// pruneStaticPartition applies SP's key-frame ownership rule: each
// camera keeps only tracks in cells it owns. Full/Independent/Central
// modes keep everything (the central stage reassigns right after).
func pruneStaticPartition(cams []*cameraState, down []bool, cfg Config) {
	if cfg.Sched.Mode != StaticPartition {
		return
	}
	for _, cs := range cams {
		if down != nil && down[cs.index] {
			continue
		}
		for _, t := range cs.tracker.Tracks() {
			cell, _ := cs.grid.CellIndex(t.Box.Center())
			if cs.spOwner[cell] != cs.index {
				cs.tracker.Remove(t.ID)
			}
		}
	}
}

// keyFrame is one camera's share of a key frame: full-frame inspection
// plus track refresh. It touches only this camera's state and its own
// camFrame shard.
func (cs *cameraState) keyFrame(obs []scene.Observation, out *camFrame) error {
	if cs.remote {
		out.full = true
	} else {
		out.latency = cs.exec.RunFullFrame()
	}
	dets := cs.det.DetectFull(obs)
	for _, d := range dets {
		out.truthIDs = append(out.truthIDs, d.TruthID)
	}
	start := time.Now()
	if _, err := cs.tracker.Update(dets); err != nil {
		return fmt.Errorf("pipeline: camera %d key-frame tracking: %w", cs.index, err)
	}
	cs.tracker.RefreshSizes()
	out.sample.Observe("tracking", time.Since(start))
	cs.shadows = cs.shadows[:0]
	return nil
}

// roundInfo is one central-stage round's decision summary, feeding the
// metrics.Round record the engine emits (Config.Obs.Rounds): the
// composed priority order (global camera indices), per-camera assigned
// object counts, and the scheduled object-group count.
type roundInfo struct {
	objects  int
	priority []int
	assigned []int
}

// centralStage runs association plus the central-stage scheduler and
// applies the assignment: unassigned members become shadows. The
// pairwise association — the stage's O(N^2) term — fans out per camera
// pair on Sched.Workers (assoc.AssociateWorkers); the BALB solve and the
// shadow bookkeeping stay inline. For SP the association is skipped
// (its partition is static), so the stage only reconciles track
// ownership by cell owner, which key-frame handling already did — it
// returns a nil policy (keep the previous one) and a nil round.
//
// With Sched.Shards set the stage runs once per shard over that shard's
// cameras only (subModels[s] is the model restricted to the shard's
// roster), and the per-shard priorities compose into a
// core.ShardedPolicy; no association pair, MVS instance, or priority
// order ever spans two shards.
//
// A non-nil dead mask excludes those cameras' (stale, frozen) tracks
// from association, so the MVS instance is built over the healthy
// subset only and every orphaned object is implicitly reassigned to a
// live covering camera by Central.
func centralStage(cams []*cameraState, coreCams []core.CameraSpec, model *assoc.Model,
	subModels []*assoc.Model, dead []bool, cfg Config) (core.Policy, *roundInfo, error) {
	if cfg.Sched.Mode == StaticPartition {
		return nil, nil, nil
	}
	info := &roundInfo{assigned: make([]int, len(cams))}
	if cfg.Sched.Shards == nil {
		prio, objects, err := centralShard(cams, coreCams, model, dead, nil, cfg, info.assigned)
		if err != nil {
			return nil, nil, err
		}
		policy, err := core.NewDistributedPolicy(prio)
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: %w", err)
		}
		info.priority = prio
		info.objects = objects
		return policy, info, nil
	}
	priorities := make([][]int, cfg.Sched.Shards.NumShards())
	for s, roster := range cfg.Sched.Shards.Shards {
		prio, objects, err := centralShard(cams, coreCams, subModels[s], dead, roster, cfg, info.assigned)
		if err != nil {
			return nil, nil, fmt.Errorf("pipeline: shard %d: %w", s, err)
		}
		priorities[s] = prio
		info.priority = append(info.priority, prio...)
		info.objects += objects
	}
	policy, err := core.NewShardedPolicy(cfg.Sched.Shards.ShardOf, priorities)
	if err != nil {
		return nil, nil, fmt.Errorf("pipeline: %w", err)
	}
	return policy, info, nil
}

// centralShard runs one central-stage round over a camera roster (nil
// = the whole fleet, with local index == global index) and returns the
// resulting priority order in *global* camera indices plus the number
// of object groups scheduled. The model must be scoped to the roster
// (assoc.Model.Subset); boxes, coverage sets, and the BALB instance all
// use local (roster) indices internally, and only the applied shadows,
// the returned priority, and the assigned counts (incremented into the
// fleet-indexed assigned slice) are translated back to global.
func centralShard(cams []*cameraState, coreCams []core.CameraSpec, model *assoc.Model,
	dead []bool, roster []int, cfg Config, assigned []int) ([]int, int, error) {
	n := len(cams)
	if roster != nil {
		n = len(roster)
	}
	glob := func(li int) int {
		if roster == nil {
			return li
		}
		return roster[li]
	}

	// Gather per-camera track boxes (live cameras only), local order.
	boxes := make([][]geom.Rect, n)
	trackIDs := make([][]int, n)
	for li := 0; li < n; li++ {
		g := glob(li)
		if dead != nil && g < len(dead) && dead[g] {
			continue
		}
		for _, t := range cams[g].tracker.Tracks() {
			boxes[li] = append(boxes[li], t.Box)
			trackIDs[li] = append(trackIDs[li], t.ID)
		}
	}
	groups, err := model.AssociateWorkers(boxes, cfg.Sched.AssocMinIoU, cfg.Sched.Workers)
	if err != nil {
		return nil, 0, fmt.Errorf("pipeline: association: %w", err)
	}

	// Build the MVS instance: one object per associated group, coverage
	// in local indices.
	objects := make([]core.ObjectSpec, 0, len(groups))
	for gi, g := range groups {
		spec := core.ObjectSpec{ID: gi + 1, Size: make(map[int]int)}
		for _, ref := range g.Members {
			cs := cams[glob(ref.Cam)]
			track := cs.tracker.Get(trackIDs[ref.Cam][ref.Index])
			if track == nil {
				continue
			}
			if _, seen := spec.Size[ref.Cam]; !seen {
				spec.Coverage = append(spec.Coverage, ref.Cam)
			}
			if track.QuantSize > spec.Size[ref.Cam] {
				spec.Size[ref.Cam] = track.QuantSize
			}
		}
		if len(spec.Coverage) > 0 {
			objects = append(objects, spec)
		}
	}

	localCore := make([]core.CameraSpec, n)
	for li := range localCore {
		localCore[li] = core.CameraSpec{Index: li, Profile: coreCams[glob(li)].Profile}
	}
	var sol *core.Solution
	extra := map[int][]int{}
	if cfg.Sched.Redundancy > 1 {
		var err error
		sol, extra, err = core.CentralRedundant(localCore, objects, cfg.Sched.Redundancy, cfg.Sched.RedundancySlack)
		if err != nil {
			return nil, 0, fmt.Errorf("pipeline: redundant central BALB: %w", err)
		}
	} else {
		var err error
		sol, err = core.Central(localCore, objects, core.CentralOptions{})
		if err != nil {
			return nil, 0, fmt.Errorf("pipeline: central BALB: %w", err)
		}
	}

	// Apply: members on non-assigned (and non-redundant) cameras become
	// shadows, with the assignment recorded in global indices.
	for gi, g := range groups {
		assignedCam, ok := sol.Assign[gi+1]
		if !ok {
			continue // group with no live members
		}
		assigned[glob(assignedCam)]++
		for _, ec := range extra[gi+1] {
			assigned[glob(ec)]++
		}
		for _, ref := range g.Members {
			if ref.Cam == assignedCam || containsCam(extra[gi+1], ref.Cam) {
				continue
			}
			cs := cams[glob(ref.Cam)]
			id := trackIDs[ref.Cam][ref.Index]
			track := cs.tracker.Get(id)
			if track == nil {
				continue
			}
			cs.shadows = append(cs.shadows, &shadow{
				box:      track.Box,
				vel:      track.Velocity,
				truthID:  track.TruthID,
				assigned: glob(assignedCam),
				size:     track.QuantSize,
			})
			cs.tracker.Remove(id)
		}
	}

	prio := make([]int, len(sol.Priority))
	for k, li := range sol.Priority {
		prio[k] = glob(li)
	}
	return prio, len(objects), nil
}

func containsCam(cams []int, cam int) bool {
	for _, c := range cams {
		if c == cam {
			return true
		}
	}
	return false
}

// runRegularFrame performs sliced, batched partial inspection plus the
// distributed stage, fanned out per camera. The shared policy is only
// read by the workers; every write stays inside one camera's state and
// camFrame shard.
func runRegularFrame(cams []*cameraState, obs [][]scene.Observation, down []bool,
	results []camFrame, policy core.Policy, cfg Config) error {
	if cfg.Sched.Mode == Full {
		return pool.Do(cfg.Sched.Workers, len(cams), func(i int) error {
			if down != nil && down[i] {
				return nil
			}
			cams[i].fullFrame(obs[i], &results[i])
			return nil
		})
	}
	return pool.Do(cfg.Sched.Workers, len(cams), func(i int) error {
		if down != nil && down[i] {
			return nil
		}
		return cams[i].regularFrame(obs[i], policy, cfg, &results[i])
	})
}

// fullFrame is one camera's share of a Full-mode regular frame.
func (cs *cameraState) fullFrame(obs []scene.Observation, out *camFrame) {
	if cs.remote {
		out.full = true
	} else {
		out.latency = cs.exec.RunFullFrame()
	}
	for _, d := range cs.det.DetectFull(obs) {
		out.truthIDs = append(out.truthIDs, d.TruthID)
	}
}

// regularFrame is one camera's share of a non-Full regular frame:
// shadow advance, slicing, new-region proposals, batched GPU execution,
// tracking update, and the distributed-stage ownership decisions.
func (cs *cameraState) regularFrame(obs []scene.Observation, policy core.Policy,
	cfg Config, out *camFrame) error {
	useDistributed := cfg.Sched.Mode == BALB || cfg.Sched.Mode == Independent || cfg.Sched.Mode == StaticPartition

	// --- Tracking: advance shadows, slice regions. ---
	trackStart := time.Now()
	alive := cs.shadows[:0]
	for _, sh := range cs.shadows {
		sh.box = sh.box.Translate(sh.vel)
		if cs.cam.Frame().Contains(sh.box.Center()) {
			alive = append(alive, sh)
		}
	}
	cs.shadows = alive

	tracks := cs.tracker.Tracks()
	regions := make([]geom.Rect, 0, len(tracks))
	tasks := make([]gpu.Task, 0, len(tracks))
	predicted := make([]geom.Rect, 0, len(tracks))
	for _, t := range tracks {
		r := cs.tracker.Region(t)
		regions = append(regions, r)
		tasks = append(tasks, gpu.Task{ObjectID: t.ID, Size: t.QuantSize})
		predicted = append(predicted, t.Predicted())
	}
	out.sample.Observe("tracking", time.Since(trackStart))

	// --- Distributed stage part 1: new-region proposals. ---
	var newRegions []geom.Rect
	if useDistributed {
		distStart := time.Now()
		moving := make([]geom.Rect, 0, len(obs))
		for _, o := range obs {
			moving = append(moving, o.Box)
		}
		explained := predicted
		for _, sh := range cs.shadows {
			explained = append(explained, sh.box)
		}
		newRegions = flow.NewRegions(moving, explained, 0)
		for _, nr := range newRegions {
			// The camera masks filter *before* inspection: a camera
			// never spends GPU time on new regions another camera is
			// responsible for (Fig. 8).
			if !cs.keepNewTrack(nr.Center(), policy, cfg) {
				continue
			}
			// Quantize against the tracker's (possibly capped) size set
			// so new-region proposals degrade with the ladder too.
			q, size := geom.QuantizeRect(nr, cs.cam.Frame(), cs.tracker.Sizes())
			regions = append(regions, q)
			tasks = append(tasks, gpu.Task{ObjectID: -1, Size: size})
		}
		out.sample.Observe("distributed", time.Since(distStart))
	}

	// --- Batched GPU execution (deferred to the serving pool when the
	// camera is remote; the engine prices the tasks after the fan-out). ---
	batchStart := time.Now()
	if cs.remote {
		out.tasks = tasks
	} else {
		res, err := cs.exec.RunFrame(tasks)
		if err != nil {
			return fmt.Errorf("pipeline: camera %d inspection: %w", cs.index, err)
		}
		out.latency = res.Latency
		out.batches = len(res.Batches)
		out.images = res.Images
		out.occupancy = gpu.BatchOccupancy(res.Batches, cs.exec.Profile())
	}
	out.sample.Observe("batching", time.Since(batchStart))

	dets, err := cs.det.DetectRegions(regions, obs)
	if err != nil {
		return fmt.Errorf("pipeline: camera %d detect: %w", cs.index, err)
	}
	for _, d := range dets {
		out.truthIDs = append(out.truthIDs, d.TruthID)
	}

	// --- Tracking update. ---
	trackStart = time.Now()
	created, err := cs.tracker.Update(dets)
	if err != nil {
		return fmt.Errorf("pipeline: camera %d tracking: %w", cs.index, err)
	}
	out.sample.Observe("tracking", time.Since(trackStart))

	// --- Distributed stage part 2: ownership decisions. ---
	distStart := time.Now()
	for _, id := range created {
		t := cs.tracker.Get(id)
		if t == nil {
			continue
		}
		if !cs.keepNewTrack(t.Box.Center(), policy, cfg) {
			cs.tracker.Remove(id)
		}
	}
	if cfg.Sched.Mode == BALB {
		cs.takeoverCheck(policy, out)
	}
	out.sample.Observe("distributed", time.Since(distStart))
	return nil
}

// keepNewTrack decides whether this camera keeps a freshly spawned track,
// by mode: Independent keeps all; SP keeps tracks in its owned cells;
// BALB keeps tracks whose cell it owns under the latency-priority masks;
// CentralOnly never spawns between key frames (no distributed stage).
func (cs *cameraState) keepNewTrack(centre geom.Point, policy core.Policy, cfg Config) bool {
	switch cfg.Sched.Mode {
	case Independent:
		return true
	case StaticPartition:
		cell, _ := cs.grid.CellIndex(centre)
		return cs.spOwner[cell] == cs.index
	case BALB:
		cell, _ := cs.grid.CellIndex(centre)
		return policy.ShouldTrack(cs.index, cs.coverage[cell])
	default:
		return false
	}
}

// takeoverCheck implements the second distributed-stage rule: when a
// shadowed object's assigned camera can no longer see it — it lost
// coverage per the static cell masks, or it is marked dead by the
// health tracker — the highest-priority live camera still covering it
// takes over, without any communication, because every camera evaluates
// the same masks and the same shared dead set.
func (cs *cameraState) takeoverCheck(policy core.Policy, out *camFrame) {
	alive := cs.shadows[:0]
	for _, sh := range cs.shadows {
		cell, inside := cs.grid.CellIndex(sh.box.Center())
		if !inside {
			continue // left this camera's view; drop the shadow
		}
		cover := cs.coverage[cell]
		assignedSees := false
		for _, c := range cover {
			if c == sh.assigned {
				assignedSees = true
				break
			}
		}
		deadOwner := assignedSees && policy.Dead(sh.assigned)
		if assignedSees && !deadOwner {
			alive = append(alive, sh)
			continue
		}
		// Assigned camera lost it (coverage or death): does this camera
		// take over?
		if policy.ShouldTrack(cs.index, cover) {
			if deadOwner {
				out.reassigned++
			}
			cs.tracker.Spawn(vision.Detection{Box: sh.box, Score: 0.5, TruthID: sh.truthID})
			continue // shadow promoted to active track
		}
		if owner, ok := policy.Owner(cover); ok {
			sh.assigned = owner // another camera takes it; keep shadowing
			alive = append(alive, sh)
		} else if deadOwner {
			out.orphaned++ // no live camera covers it; the object is lost
		}
	}
	cs.shadows = alive
}
