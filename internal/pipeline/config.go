package pipeline

import (
	"mvs/internal/adapt"
	"mvs/internal/camfault"
	"mvs/internal/metrics"
	"mvs/internal/shard"
	"mvs/internal/vision"
)

// Config configures an Engine (and the batch Run wrapper around it),
// grouped by concern: Sim shapes the simulated world and sensing, Sched
// selects and tunes the scheduling algorithm, Fault arms the data-plane
// failure model, Adapt arms the graceful-degradation control loop,
// Serve couples the engine to a shared executor pool, and Obs attaches
// observability. The zero value is a
// valid fault-free Full-mode run; NewConfig fills the two knobs every
// caller sets. Defaults (Horizon 10, 16x9 grid, IoU 0.1, redundancy 1,
// slack 1.2) are applied when the engine is built.
//
// Every field except Sched.Workers is part of the determinism contract:
// the same (source, profiles, model, Config modulo Workers) produces
// bit-identical modelled results (docs/CONCURRENCY.md,
// docs/ARCHITECTURE.md). Serve extends the contract across tenants:
// with a shared serve.Pool as the executor, the tenant *set* and
// registration order join the inputs (docs/SERVING.md).
type Config struct {
	Sim   Sim
	Sched Sched
	Fault Fault
	Adapt Adapt
	Serve Serve
	Obs   Obs
}

// NewConfig returns a Config with the two universally-set knobs filled
// in; everything else keeps its zero value and picks up defaults when
// the engine is built.
func NewConfig(mode Mode, seed int64) Config {
	return Config{Sched: Sched{Mode: mode}, Sim: Sim{Seed: seed}}
}

// Sim is the simulated-world half of the configuration: how cameras
// sense the scene, independent of how work is scheduled.
type Sim struct {
	// Seed drives detector noise.
	Seed int64
	// GridCols, GridRows shape the per-camera cell grid for masks
	// (default 16 x 9).
	GridCols, GridRows int
	// Detector tunes the simulated DNN.
	Detector vision.Config
	// CameraLag models imperfect synchronization (the paper's §V): when
	// non-nil, camera i processes the scene as it was CameraLag[i] frames
	// ago ("while some cameras are processing the 'current' scene, others
	// might still be working on older versions"). Recall is still scored
	// against the current frame, so lag shows up as handoff anomalies.
	// The streaming engine keeps a bounded ring buffer of the last
	// max(CameraLag)+1 frames to serve lagged views.
	CameraLag []int
}

// Sched selects and tunes the scheduling algorithm under evaluation.
type Sched struct {
	// Mode is the algorithm under test.
	Mode Mode
	// Horizon is T, the frames per scheduling horizon (default 10).
	Horizon int
	// AssocMinIoU is the association matching threshold (default 0.1).
	AssocMinIoU float64
	// Redundancy, when > 1, makes the central stage keep up to this many
	// trackers per object (latency budget permitting) — the paper's §V
	// occlusion-hedging extension. Only meaningful in BALB/CentralOnly
	// modes; 0 or 1 is standard single-tracker BALB.
	Redundancy int
	// RedundancySlack bounds the extra trackers' latency cost as a
	// multiple of the base system latency (default 1.2).
	RedundancySlack float64
	// Workers bounds the goroutines used for per-camera work within a
	// frame, for the central stage's per-pair association fan-out at key
	// frames, and for the per-cell coverage precomputation: 1 forces the
	// sequential reference path, 0 (the default) selects GOMAXPROCS, and
	// any value is capped at the item count of each fan-out. The
	// modelled report fields are identical for every value (see
	// Report.Modeled and docs/CONCURRENCY.md).
	Workers int
	// Shards, when non-nil, runs the central stage sharded: one
	// association + BALB solve per shard over that shard's cameras only
	// (on an assoc.Model.Subset), composed into a core.ShardedPolicy
	// for the distributed stage. This is the in-process analogue of
	// cluster.ShardedScheduler — no fleet-wide O(N²) association, no
	// data structure spanning shards — usable at 64+ cameras without
	// sockets. Only valid for BALB and CentralOnly modes. On a scenario
	// with zero cross-shard coverage the modelled results are
	// bit-identical to the unsharded run (see docs/ARCHITECTURE.md,
	// determinism contract); with boundary traffic, ownership of
	// straddling objects follows the lowest covering shard.
	Shards *shard.Map
}

// Fault arms the data-plane failure model (docs/FAULTS.md).
type Fault struct {
	// CamFaults, when non-nil, injects the data-plane fault schedule: a
	// camera that is down for a frame produces no observations and runs
	// no inspection (its tracker, executor, and shadows freeze). The
	// model must cover every roster camera and the full stream length.
	// nil runs fault-free — bit-identical to a build without this
	// feature (docs/FAULTS.md, "Data-plane failure model").
	CamFaults *camfault.Model
	// HealthK is the health-tracker silence threshold: a camera silent
	// for K consecutive frames is marked dead, the central stage
	// reschedules over the healthy subset, and the distributed stage's
	// ownership masks skip it (failover). 0 disables health tracking —
	// faults still drop frames, but scheduling stays oblivious (the
	// no-failover ablation). Only meaningful with CamFaults set.
	HealthK int
}

// Adapt arms the graceful-degradation control loop (docs/FAULTS.md §10):
// an adapt.Controller ticking between association horizons, degrading the
// key-frame interval and per-object inspection sizes to hold the SLO
// under overload or fault pressure, and recovering when it clears.
type Adapt struct {
	// Policy configures the controller; a disabled policy (SLO == 0, the
	// zero value) runs no controller at all — the frame stream, the
	// snapshots, and the report are bit-identical to a build without this
	// feature. With the controller enabled but never provoked (no rung
	// ever engaged), the modelled output is likewise bit-identical to a
	// disabled run: level 0 applies no cap and no stretch.
	//
	// The controller is part of the determinism contract: its decisions
	// are a pure function of modelled window state (frame latency,
	// dead-camera count, association drift) plus the policy. The one
	// exception mirrors Obs.Ingest: live queue-depth samples reflect
	// arrival timing, so a queue-provoked degradation is only as
	// reproducible as the arrivals — trace and replay runs observe
	// queue depth 0.
	Policy adapt.Policy
}

// Obs attaches observability to a run. Sinks observe without
// perturbing: every emitted field is modelled, so attaching one never
// changes the run's results. Ownership rule (stated here once, see
// docs/STREAMING.md): whoever opens a sink closes it; the engine
// Flushes the frame sink exactly once at end of stream and reports the
// first sink error through Engine.Err.
type Obs struct {
	// Sink, when non-nil, receives one metrics.Snapshot per frame —
	// assembled in fixed camera order after the per-camera merge, from
	// modelled fields only. The sink must accept concurrent RecordFrame
	// calls if the same instance is shared by several runs.
	Sink metrics.Sink
	// Rounds, when non-nil, receives one metrics.Round per central-stage
	// scheduling round (key frames of BALB/CentralOnly/SP-with-model
	// runs): the decision record the run store persists for replay and
	// audit. Never flushed by the engine — Round sinks buffer at the
	// owner's discretion.
	Rounds metrics.RoundSink
	// Label tags this run's snapshots and rounds; empty defaults to the
	// mode name. Experiment harnesses use it to demultiplex streams
	// from concurrent runs.
	Label string
	// Ingest, when non-nil, is read once per frame to stamp the live
	// admission counters (ingested/shed/queue depth) into each snapshot.
	// NewEngine fills it automatically when the source itself is an
	// IngestMeter; set it explicitly when the meter is hidden behind a
	// wrapper (e.g. a store.Writer.Tee around an IngestSource). Counters
	// reflect live arrival timing, so they are exempt from the
	// determinism contract — trace and replay runs leave this nil and
	// their snapshots carry none of the ingest keys.
	Ingest IngestMeter
}

func (c Config) withDefaults() Config {
	if c.Sched.Horizon <= 0 {
		c.Sched.Horizon = 10
	}
	if c.Sim.GridCols <= 0 {
		c.Sim.GridCols = 16
	}
	if c.Sim.GridRows <= 0 {
		c.Sim.GridRows = 9
	}
	if c.Sched.AssocMinIoU <= 0 {
		c.Sched.AssocMinIoU = 0.1
	}
	if c.Sched.Redundancy < 1 {
		c.Sched.Redundancy = 1
	}
	if c.Sched.RedundancySlack <= 0 {
		c.Sched.RedundancySlack = 1.2
	}
	return c
}

// label resolves the stream label: explicit Obs.Label, else mode name.
func (c Config) label() string {
	if c.Obs.Label != "" {
		return c.Obs.Label
	}
	return c.Sched.Mode.String()
}
