package pipeline

import (
	"context"
	"errors"
	"io"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"mvs/internal/clock"
	"mvs/internal/faults"
	"mvs/internal/scene"
)

// offerFrame pushes one trace frame's parts (truth objects on camera 0,
// as over the wire).
func offerFrame(t *testing.T, src *IngestSource, fi int, f *scene.FrameTruth) {
	t.Helper()
	for cam, obs := range f.PerCamera {
		p := FramePart{Cam: cam, Frame: fi, Obs: obs}
		if cam == 0 {
			p.Objects = f.Objects
		}
		if err := src.Offer(p); err != nil {
			t.Fatalf("offer frame %d cam %d: %v", fi, cam, err)
		}
	}
}

// TestIngestMatchesTraceSource checks the no-overload baseline: parts
// offered in lockstep with the engine (one frame per step) produce the
// identical modeled report a TraceSource run does — live ingest is a
// packaging change, not an algorithm change.
func TestIngestMatchesTraceSource(t *testing.T) {
	e := getEnv(t)
	batch, err := Run(e.test, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}

	src, err := NewIngestSource(e.test.Cameras, IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	eng, err := NewEngine(src, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	fi, eos := 0, false
	for {
		if fi < len(e.test.Frames) {
			offerFrame(t, src, fi, &e.test.Frames[fi])
			fi++
		} else if !eos {
			eos = true
			for cam := range e.test.Cameras {
				if err := src.Offer(FramePart{Cam: cam, EOS: true}); err != nil {
					t.Fatal(err)
				}
			}
		}
		more, err := eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			break
		}
	}
	live, err := eng.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch.Modeled(), live.Modeled()) {
		t.Fatalf("paced live ingest diverged from batch:\nbatch: %+v\nlive:  %+v",
			batch.Modeled(), live.Modeled())
	}
	c := src.Counters()
	if c.Shed != 0 || c.Ingested != len(e.test.Frames)*len(e.test.Cameras) {
		t.Fatalf("paced run counters: %+v (want 0 shed, all parts ingested)", c)
	}
}

// TestIngestShedDeterminism is the overload acceptance criterion: the
// same over-offered part sequence sheds the same set at every engine
// worker count, and repeats bit-identically. Load 3x with queue 4
// forces constant shedding.
func TestIngestShedDeterminism(t *testing.T) {
	e := getEnv(t)
	type result struct {
		counters IngestCounters
		modeled  interface{}
	}
	runOnce := func(workers int, policy ShedPolicy) result {
		src, err := NewIngestSource(e.test.Cameras, IngestConfig{Queue: 4, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		cfg := NewConfig(BALB, 5)
		cfg.Sched.Workers = workers
		eng, err := NewEngine(src, e.profiles, e.model, cfg)
		if err != nil {
			t.Fatal(err)
		}
		fi, eos := 0, false
		for {
			for b := 0; b < 3 && fi < len(e.test.Frames); b++ {
				offerFrame(t, src, fi, &e.test.Frames[fi])
				fi++
			}
			if fi >= len(e.test.Frames) && !eos {
				eos = true
				for cam := range e.test.Cameras {
					if err := src.Offer(FramePart{Cam: cam, EOS: true}); err != nil {
						t.Fatal(err)
					}
				}
			}
			more, err := eng.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !more {
				break
			}
		}
		rep, err := eng.Report()
		if err != nil {
			t.Fatal(err)
		}
		return result{counters: src.Counters(), modeled: rep.Modeled()}
	}
	for _, policy := range []ShedPolicy{ShedDropOldest, ShedFreshest, ShedStale} {
		base := runOnce(1, policy)
		if base.counters.Shed == 0 {
			t.Fatalf("%v: 3x load shed nothing — overload not reached", policy)
		}
		for _, workers := range []int{1, 4, 0} {
			got := runOnce(workers, policy)
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("%v: workers=%d diverged from workers=1:\nbase: %+v\ngot:  %+v",
					policy, workers, base, got)
			}
		}
	}
}

// TestIngestShedPolicies pins each policy's admission decisions on a
// hand-checkable single-camera sequence.
func TestIngestShedPolicies(t *testing.T) {
	cams := getEnv(t).test.Cameras[:1]
	offer := func(src *IngestSource, frames ...int) {
		for _, fi := range frames {
			if err := src.Offer(FramePart{Cam: 0, Frame: fi}); err != nil {
				t.Fatal(err)
			}
		}
	}
	drain := func(src *IngestSource) []int {
		if err := src.Offer(FramePart{Cam: 0, EOS: true}); err != nil {
			t.Fatal(err)
		}
		var got []int
		for {
			f, err := src.Next()
			if err == io.EOF {
				return got
			}
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, f.Index)
		}
	}
	cases := []struct {
		name     string
		cfg      IngestConfig
		frames   []int
		want     []int
		wantShed int
	}{
		// Queue 4, frames 0..5: head drops twice.
		{"drop-oldest", IngestConfig{Queue: 4}, []int{0, 1, 2, 3, 4, 5}, []int{2, 3, 4, 5}, 2},
		// Queue 4: frame 4 finds the queue full and clears it, 5 joins.
		{"freshest", IngestConfig{Queue: 4, Policy: ShedFreshest}, []int{0, 1, 2, 3, 4, 5}, []int{4, 5}, 4},
		// Staleness 3: offering 5 prunes queued frames < 2 (0 and 1).
		{"stale", IngestConfig{Queue: 8, Policy: ShedStale, Staleness: 3}, []int{0, 1, 2, 5}, []int{2, 5}, 2},
		// Duplicates and reordered stragglers shed at admission.
		{"monotonic", IngestConfig{Queue: 8}, []int{0, 2, 2, 1, 3}, []int{0, 2, 3}, 2},
	}
	for _, tc := range cases {
		src, err := NewIngestSource(cams, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		offer(src, tc.frames...)
		got := drain(src)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: emitted %v, want %v", tc.name, got, tc.want)
		}
		if c := src.Counters(); c.Shed != tc.wantShed {
			t.Errorf("%s: shed %d, want %d", tc.name, c.Shed, tc.wantShed)
		}
		src.Close()
	}
}

// TestIngestOfferNeverBlocks pins the producer-side guarantee: a
// producer can offer far past the queue bound with no consumer at all,
// synchronously, and the bounded queue sheds the overflow.
func TestIngestOfferNeverBlocks(t *testing.T) {
	cams := getEnv(t).test.Cameras[:1]
	src, err := NewIngestSource(cams, IngestConfig{Queue: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for fi := 0; fi < 1000; fi++ {
		if err := src.Offer(FramePart{Cam: 0, Frame: fi}); err != nil {
			t.Fatal(err)
		}
	}
	c := src.Counters()
	if c.QueueDepth != 2 || c.Shed != 998 || c.Ingested != 1000 {
		t.Fatalf("counters after 1000 unconsumed offers: %+v", c)
	}
}

// TestIngestWatchdogStall drives the watchdog on a fake clock: a Next
// call with no producer progress past the deadline returns a typed
// *StallError — directly, and wrapped through the engine so errors.As
// sees it via Engine.Run.
func TestIngestWatchdogStall(t *testing.T) {
	e := getEnv(t)
	fake := clock.NewFake(time.Unix(0, 0))
	src, err := NewIngestSource(e.test.Cameras, IngestConfig{Stall: time.Minute, Clock: fake})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// One camera offers; the others stay silent, so Next must wait — and
	// then fail typed instead of hanging forever.
	if err := src.Offer(FramePart{Cam: 0, Frame: 0}); err != nil {
		t.Fatal(err)
	}
	_, err = src.Next()
	var stalled *StallError
	if !errors.As(err, &stalled) {
		t.Fatalf("Next returned %v, want *StallError", err)
	}
	if stalled.Idle < time.Minute {
		t.Fatalf("stall fired after %v, before the %v deadline", stalled.Idle, time.Minute)
	}
	// The degraded state is sticky.
	if _, err := src.Next(); !errors.As(err, &stalled) {
		t.Fatalf("second Next returned %v, want the sticky *StallError", err)
	}

	// Through the engine: Run wraps the source error, errors.As still
	// finds the typed state.
	src2, err := NewIngestSource(e.test.Cameras, IngestConfig{Stall: time.Minute, Clock: clock.NewFake(time.Unix(0, 0))})
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	eng, err := NewEngine(src2, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); !errors.As(err, &stalled) {
		t.Fatalf("Engine.Run returned %v, want a wrapped *StallError", err)
	}
}

// TestIngestTCPRoundTrip pushes frame parts through the real wire
// protocol and checks the assembled stream matches the trace, truth
// objects included.
func TestIngestTCPRoundTrip(t *testing.T) {
	e := getEnv(t)
	const n = 8
	src, err := NewIngestSource(e.test.Cameras, IngestConfig{Queue: n + 1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	src.Serve(ln)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for fi := 0; fi < n; fi++ {
		f := &e.test.Frames[fi]
		for cam, obs := range f.PerCamera {
			p := FramePart{Cam: cam, Frame: fi, Obs: obs}
			if cam == 0 {
				p.Objects = f.Objects
			}
			if err := EncodeFramePart(conn, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	for cam := range e.test.Cameras {
		if err := EncodeFramePart(conn, FramePart{Cam: cam, EOS: true}); err != nil {
			t.Fatal(err)
		}
	}

	for fi := 0; fi < n; fi++ {
		got, err := src.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", fi, err)
		}
		want := &e.test.Frames[fi]
		if got.Index != fi {
			t.Fatalf("frame %d assembled with index %d", fi, got.Index)
		}
		if !reflect.DeepEqual(got.PerCamera, want.PerCamera) {
			t.Fatalf("frame %d observations diverged over the wire", fi)
		}
		if !reflect.DeepEqual(got.Objects, want.Objects) {
			t.Fatalf("frame %d truth objects diverged over the wire", fi)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after EOS: %v, want io.EOF", err)
	}
}

// TestIngestChaosListener serves ingest through the fault injector's
// listener: connections die mid-stream, the producer redials and
// resumes (parts in flight are lost — an outage-shaped gap, not an
// error), and the source keeps assembling a strictly ascending frame
// stream without ever blocking the producer or wedging Next.
func TestIngestChaosListener(t *testing.T) {
	e := getEnv(t)
	const n = 40
	src, err := NewIngestSource(e.test.Cameras, IngestConfig{Queue: n + 8})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// reset kills server-side reads (the only operation an ingest server
	// performs); at 8% per read most connections die within a few frames.
	spec, err := faults.ParseSpec("seed=7,reset=0.08")
	if err != nil {
		t.Fatal(err)
	}
	src.Serve(faults.New(spec).Listener(ln))

	// One connection per 4-frame batch: a reset loses that batch's tail
	// (at-most-once delivery — the producer cannot know what the server
	// read before the kill), the next batch redials fresh.
	const batch = 4
	dials := 0
	for start := 0; start < n; start += batch {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		dials++
	push:
		for fi := start; fi < start+batch && fi < n; fi++ {
			f := &e.test.Frames[fi]
			for cam, obs := range f.PerCamera {
				if err := EncodeFramePart(conn, FramePart{Cam: cam, Frame: fi, Obs: obs}); err != nil {
					break push // connection killed; the batch tail is lost
				}
			}
		}
		conn.Close()
	}
	// Wait for the server side to drain what it will get, then end the
	// stream in-process (reliable EOS; the wire parts raced it are shed).
	prev := IngestCounters{}
	for stable := 0; stable < 3; {
		c := src.Counters()
		if c == prev {
			stable++
		} else {
			stable, prev = 0, c
		}
		time.Sleep(10 * time.Millisecond)
	}
	for cam := range e.test.Cameras {
		if err := src.Offer(FramePart{Cam: cam, EOS: true}); err != nil {
			t.Fatal(err)
		}
	}

	last, emitted := -1, 0
	for {
		f, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Index <= last || f.Index >= n {
			t.Fatalf("emitted frame %d after %d (must ascend strictly within [0,%d))", f.Index, last, n)
		}
		last = f.Index
		emitted++
	}
	if emitted == 0 {
		t.Fatal("no frames survived the chaos run")
	}
	t.Logf("chaos: %d/%d frames assembled over %d dials, counters %+v", emitted, n, dials, src.Counters())
}

// TestChannelSourceProducerSurvivesShutdown is the satellite acceptance
// test: a producer feeding a ChannelSource through PushCtx/TryPush
// outlives an engine that stopped consuming, instead of blocking
// forever in Push.
func TestChannelSourceProducerSurvivesShutdown(t *testing.T) {
	e := getEnv(t)
	src := NewChannelSource(e.test.Cameras, 1)

	// Fill the buffer with no consumer: TryPush must shed, not block.
	if !src.TryPush(&e.test.Frames[0]) {
		t.Fatal("TryPush into an empty buffer failed")
	}
	if src.TryPush(&e.test.Frames[1]) {
		t.Fatal("TryPush into a full buffer succeeded")
	}

	// A producer blocked in PushCtx unblocks when the consumer's context
	// ends — the "engine shut down mid-stream" shape.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	pushErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		for i := 1; i < len(e.test.Frames); i++ {
			if err := src.PushCtx(ctx, &e.test.Frames[i]); err != nil {
				pushErr <- err
				return
			}
		}
		pushErr <- nil
	}()

	// Consume two frames, then stop consuming and cancel — as an engine
	// torn down mid-run would.
	for i := 0; i < 2; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	wg.Wait()
	if err := <-pushErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("producer exited with %v, want context.Canceled", err)
	}
}
