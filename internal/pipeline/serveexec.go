package pipeline

import (
	"time"

	"mvs/internal/gpu"
)

// TenantExecutor is the engine's seam to a shared GPU serving layer
// (internal/serve): when Config.Serve.Executor is set, the engine stops
// pricing GPU work on its private per-camera executors and instead
// submits each frame's inspection requests — one per live camera, in
// ascending camera order — to the executor, which returns the modelled
// latency and batch figures after scheduling the work (possibly
// consolidated with other tenants' requests into shared batches).
//
// The engine can defer pricing this way because modelled GPU latency is
// purely observational inside a frame: detection and tracking consume
// the region geometry, never the executor's result, so collecting the
// requests during the per-camera fan-out and resolving them at a
// barrier afterwards is bit-identical to pricing them inline
// (docs/SERVING.md, determinism contract).
//
// SubmitFrame blocks until the work is priced — for the multi-tenant
// pool, until every active tenant has submitted its frame for the same
// epoch — and must return one ExecResult per request, in request order.
// Implementations must be safe for concurrent SubmitFrame calls from
// different tenants (each engine calls from its own goroutine).
type TenantExecutor interface {
	SubmitFrame(frame int, reqs []ExecRequest) ([]ExecResult, ExecStats, error)
}

// ExecRequest is one camera's inspection work for one frame: either a
// full-frame inspection (Full, key frames and Full mode) or a batch of
// partial-region tasks (regular frames). Tasks may be empty — an idle
// camera still submits, so the executor's epoch accounting sees every
// live camera.
type ExecRequest struct {
	// Cam is the tenant-local camera index.
	Cam int
	// Full marks a full-frame inspection; Tasks is ignored when set.
	Full bool
	// Tasks are the partial-region inspection tasks, in slicing order.
	Tasks []gpu.Task
}

// ExecResult prices one request. For full-frame requests only Latency
// is set, matching the engine's local path (batch counters describe
// partial-inspection batches only).
type ExecResult struct {
	// Latency is the camera's modelled inspection latency for the frame,
	// including any executor queueing delay.
	Latency time.Duration
	// Batches and Images count the batches the camera's tasks landed in
	// and the tasks actually inspected (after any admission shedding).
	Batches int
	Images  int
	// Occupancy is the mean fill fraction of those batches.
	Occupancy float64
	// Shed counts this camera's tasks dropped by admission control.
	Shed int
}

// ExecStats carries the executor's cumulative per-tenant counters,
// restated with every reply so the engine can stamp them into frame
// snapshots and its final Report.
type ExecStats struct {
	// QueueDepth is the number of batches still executing past the end
	// of the epoch the reply priced — the executor backlog behind this
	// tenant's frame.
	QueueDepth int
	// SharedBatches is the cumulative count of batches this tenant
	// shared with at least one other tenant.
	SharedBatches int
	// ShedTasks is the cumulative count of this tenant's tasks dropped
	// by admission control.
	ShedTasks int
	// SLOViolations is the cumulative count of epochs whose priced
	// latency exceeded this tenant's SLO.
	SLOViolations int
}

// Serve couples an engine to a shared executor pool. The zero value —
// no executor — runs GPU work on the engine's private per-camera
// executors, exactly as before the serving layer existed.
type Serve struct {
	// Tenant labels this engine's snapshots with its tenant identity
	// (the metrics "tenant" key). Empty leaves the key absent.
	Tenant string
	// Executor, when non-nil, receives every frame's inspection work.
	// The pool implementation is serve.Pool; serve.NewLocal provides a
	// bit-identical single-tenant passthrough.
	Executor TenantExecutor
}
