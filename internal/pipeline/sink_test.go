package pipeline

import (
	"reflect"
	"runtime"
	"testing"

	"mvs/internal/metrics"
)

// TestSinkDeterministic is the observability half of the determinism
// contract: attaching any sink, at any worker count, leaves the
// modelled report bit-identical to a sink-less sequential run. The
// JSONL sink also exercises snapshot serialization under the
// concurrent fan-out.
func TestSinkDeterministic(t *testing.T) {
	e := getEnv(t)
	base, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB, Workers: 1}, Sim: Sim{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	sinks := map[string]func() metrics.Sink{
		"nop":     func() metrics.Sink { return metrics.NopSink{} },
		"channel": func() metrics.Sink { return metrics.NewChannelSink(1, 4) }, // tiny buffer: drops must not matter
		"jsonl": func() metrics.Sink {
			s, err := metrics.OpenJSONL(t.TempDir() + "/snaps.jsonl")
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		},
	}
	for name, mk := range sinks {
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			rep, err := Run(e.test, e.profiles, e.model, Config{
				Sched: Sched{Mode: BALB, Workers: workers},
				Sim:   Sim{Seed: 5}, Obs: Obs{Sink: mk()},
			})
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(base.Modeled(), rep.Modeled()) {
				t.Errorf("%s/workers=%d diverged from sink-less run:\nbase: %+v\ngot:  %+v",
					name, workers, base.Modeled(), rep.Modeled())
			}
		}
	}
}

// TestSinkSnapshotStream checks the shape of the pipeline's snapshot
// stream: one snapshot per frame, gap-free ascending Seq, cameras in
// fixed index order, and cumulative counters that agree with the final
// report.
func TestSinkSnapshotStream(t *testing.T) {
	e := getEnv(t)
	frames := len(e.test.Frames)
	sink := metrics.NewChannelSink(1, frames+1)
	rep, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB}, Sim: Sim{Seed: 5}, Obs: Obs{Sink: sink}})
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	if sink.Dropped() != 0 {
		t.Fatalf("dropped %d snapshots with a full-size buffer", sink.Dropped())
	}

	var snaps []metrics.Snapshot
	for snap := range sink.Snapshots() {
		snaps = append(snaps, snap)
	}
	if len(snaps) != frames {
		t.Fatalf("snapshots = %d, want one per frame (%d)", len(snaps), frames)
	}
	var maxLatency int64
	for i, snap := range snaps {
		if snap.Seq != i || snap.Frame != i {
			t.Fatalf("snapshot %d: seq=%d frame=%d", i, snap.Seq, snap.Frame)
		}
		if snap.Source != metrics.SourcePipeline {
			t.Fatalf("snapshot %d: source = %q", i, snap.Source)
		}
		if snap.Label != "BALB" {
			t.Fatalf("snapshot %d: label = %q, want mode name default", i, snap.Label)
		}
		if len(snap.Cameras) != len(e.profiles) {
			t.Fatalf("snapshot %d: %d cameras, want %d", i, len(snap.Cameras), len(e.profiles))
		}
		for ci, cs := range snap.Cameras {
			if cs.Camera != ci {
				t.Fatalf("snapshot %d: cameras out of order: %d at index %d", i, cs.Camera, ci)
			}
			if cs.Latency > snap.FrameLatency {
				t.Fatalf("snapshot %d: camera %d latency %v exceeds frame latency %v",
					i, ci, cs.Latency, snap.FrameLatency)
			}
		}
		if int64(snap.FrameLatency) > maxLatency {
			maxLatency = int64(snap.FrameLatency)
		}
	}
	last := snaps[len(snaps)-1]
	if last.TP != rep.TP || last.FN != rep.FN {
		t.Fatalf("final snapshot counters tp=%d fn=%d, report tp=%d fn=%d",
			last.TP, last.FN, rep.TP, rep.FN)
	}
	if last.Recall != rep.Recall {
		t.Fatalf("final snapshot recall %v != report recall %v", last.Recall, rep.Recall)
	}
	if maxLatency != int64(rep.MaxSlowest) {
		t.Fatalf("max snapshot latency %d != report MaxSlowest %d", maxLatency, int64(rep.MaxSlowest))
	}
}

// TestSinkLabelOverride checks Obs.Label replaces the mode-name
// default (the experiments layer relies on this to tag fan-out runs).
func TestSinkLabelOverride(t *testing.T) {
	e := getEnv(t)
	sink := metrics.NewChannelSink(len(e.test.Frames), 4) // just the first snapshot
	_, err := Run(e.test, e.profiles, e.model, Config{
		Sched: Sched{Mode: BALB}, Sim: Sim{Seed: 5},
		Obs: Obs{Sink: sink, Label: "modes/BALB"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	snap, ok := <-sink.Snapshots()
	if !ok {
		t.Fatal("no snapshot delivered")
	}
	if snap.Label != "modes/BALB" {
		t.Fatalf("label = %q", snap.Label)
	}
}
