package pipeline

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"mvs/internal/adapt"
	"mvs/internal/metrics"
)

// TestAdaptNeverEngagedBitIdentical pins the zero-overhead guarantee of
// the degradation control loop: a run with the controller armed but
// never triggered (an unreachable SLO, no queue bound, no faults) is
// bit-identical to a controller-disabled run, and emits no adapt key on
// the JSONL wire.
func TestAdaptNeverEngagedBitIdentical(t *testing.T) {
	e := getEnv(t)
	base, err := Run(e.test, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := metrics.NewJSONLSink(&buf)
	cfg := NewConfig(BALB, 5)
	cfg.Adapt.Policy = adapt.Policy{SLO: time.Hour}
	cfg.Obs.Sink = sink
	armed, err := Run(e.test, e.profiles, e.model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Modeled(), armed.Modeled()) {
		t.Fatalf("idle controller perturbed the run:\nbase %+v\nwith %+v",
			base.Modeled(), armed.Modeled())
	}
	if armed.AdaptLevel != 0 || armed.AdaptTransitions != 0 || armed.SLOViolations != 0 {
		t.Fatalf("idle controller reported activity: level=%d transitions=%d violations=%d",
			armed.AdaptLevel, armed.AdaptTransitions, armed.SLOViolations)
	}
	for _, key := range []string{"adapt_level", "adapt_transitions", "slo_violations"} {
		if strings.Contains(buf.String(), key) {
			t.Fatalf("idle controller leaked %q on the wire", key)
		}
	}
}

// TestChaosAdaptDegradesWhileCameraDeadAndRecovers drives the full
// ladder cycle through the data plane: a camera-outage schedule with
// health-tracked failover forces the controller onto rung >= 1 while a
// camera is dead, and once the fleet is healthy again the controller
// walks back to level 0. The Chaos name opts this test into CI's
// race-enabled chaos step.
func TestChaosAdaptDegradesWhileCameraDeadAndRecovers(t *testing.T) {
	e, faults := chaosEnv(t)
	sink := metrics.NewChannelSink(1, len(e.test.Frames))
	rep, err := Run(e.test, e.profiles, e.model, Config{
		Sched: Sched{Mode: BALB}, Sim: Sim{Seed: 5},
		Fault: Fault{CamFaults: faults, HealthK: 3},
		// An unreachable SLO isolates the dead-camera rung: every level
		// change in this run is attributable to camera health.
		Adapt: Adapt{Policy: adapt.Policy{SLO: time.Hour, Cooldown: 1}},
		Obs:   Obs{Sink: sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	sink.Close()
	degraded, recovered := false, false
	for snap := range sink.Snapshots() {
		if snap.AdaptLevel >= 1 {
			degraded = true
		} else if degraded {
			recovered = true
		}
	}
	if !degraded {
		t.Fatal("no snapshot showed adapt level >= 1 despite dead cameras")
	}
	if !recovered {
		t.Fatal("controller never recovered to level 0 after outages cleared")
	}
	if rep.AdaptTransitions < 2 {
		t.Fatalf("expected a full degrade+recover cycle, got %d transitions", rep.AdaptTransitions)
	}
	t.Logf("outage=%d frames, transitions=%d, final level=%d",
		rep.OutageFrames, rep.AdaptTransitions, rep.AdaptLevel)
}

// TestAdaptDeterministicAcrossWorkers extends the determinism contract
// to actively degrading runs: with an SLO tight enough that the ladder
// climbs, the modelled report is bit-identical at every worker count.
func TestAdaptDeterministicAcrossWorkers(t *testing.T) {
	e := getEnv(t)
	pol := adapt.Policy{SLO: 10 * time.Millisecond, Window: 10, Cooldown: 1}
	var base *Report
	for _, workers := range []int{1, 4, 8} {
		rep, err := Run(e.test, e.profiles, e.model, Config{
			Sched: Sched{Mode: BALB, Workers: workers}, Sim: Sim{Seed: 5},
			Adapt: Adapt{Policy: pol},
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.AdaptLevel == 0 && rep.AdaptTransitions == 0 {
			t.Fatal("10ms SLO did not engage the controller — the test is vacuous")
		}
		if base == nil {
			base = rep
			continue
		}
		got, want := rep.Modeled(), base.Modeled()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d diverged:\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
	if base.SLOViolations == 0 {
		t.Fatal("10ms SLO counted no violations")
	}
}

// TestAdaptStretchedCadenceStillSchedules checks a degraded run keeps
// scheduling: with the ladder pinned high by an impossible SLO, key
// frames thin out to every Horizon*stretch frames but never stop, and
// the run completes with sane outputs.
func TestAdaptStretchedCadenceStillSchedules(t *testing.T) {
	e := getEnv(t)
	cfg := NewConfig(BALB, 5)
	cfg.Adapt.Policy = adapt.Policy{SLO: time.Nanosecond, Window: 5, Cooldown: 1, MaxLevel: 3}
	rep, err := Run(e.test, e.profiles, e.model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdaptLevel != 3 {
		t.Fatalf("impossible SLO should pin the ladder at max level 3, got %d", rep.AdaptLevel)
	}
	if rep.Frames != len(e.test.Frames) {
		t.Fatalf("degraded run processed %d/%d frames", rep.Frames, len(e.test.Frames))
	}
	if rep.Recall <= 0.5 {
		t.Fatalf("degraded run collapsed: recall %.3f", rep.Recall)
	}
}
