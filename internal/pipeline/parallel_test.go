package pipeline

import (
	"reflect"
	"sync"
	"testing"

	"mvs/internal/assoc"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/workload"
)

// parallelEnv is an S1 (5-camera) fixture: enough cameras that the
// per-camera fan-out actually interleaves, unlike the 2-camera S2 env.
type parallelEnv struct {
	scenario *workload.Scenario
	test     *scene.Trace
	model    *assoc.Model
	profiles []*profile.Profile
}

var (
	parOnce sync.Once
	parEnv  parallelEnv
)

func getParallelEnv(t *testing.T) *parallelEnv {
	t.Helper()
	parOnce.Do(func() {
		s := workload.S1(17)
		trace, err := s.World.Run(400)
		if err != nil {
			t.Fatal(err)
		}
		train, test := trace.SplitTrain()
		model, err := assoc.Train(train, assoc.Factories{})
		if err != nil {
			t.Fatal(err)
		}
		parEnv = parallelEnv{scenario: s, test: test, model: model, profiles: s.Profiles()}
	})
	if parEnv.test == nil {
		t.Fatal("parallel environment failed to initialize")
	}
	return &parEnv
}

// TestWorkersDeterministic is the determinism contract: for every
// scheduling mode, the modelled report is bit-identical whether the
// per-camera work and the central stage's per-pair association fan-out
// run sequentially (Workers=1) or across several goroutines. Run on
// both the 5-camera S1 and 2-camera S2 fixtures.
func TestWorkersDeterministic(t *testing.T) {
	type fixture struct {
		name     string
		test     *scene.Trace
		model    *assoc.Model
		profiles []*profile.Profile
		seed     int64
	}
	p := getParallelEnv(t)
	e := getEnv(t)
	fixtures := []fixture{
		{"S1", p.test, p.model, p.profiles, 17},
		{"S2", e.test, e.model, e.profiles, 5},
	}
	modes := []Mode{Full, Independent, CentralOnly, BALB, StaticPartition}
	for _, f := range fixtures {
		for _, mode := range modes {
			seq, err := Run(f.test, f.profiles, f.model, Config{Sched: Sched{Mode: mode, Workers: 1}, Sim: Sim{Seed: f.seed}})
			if err != nil {
				t.Fatalf("%s/%v sequential: %v", f.name, mode, err)
			}
			for _, workers := range []int{2, 4, 8, 0} {
				par, err := Run(f.test, f.profiles, f.model, Config{Sched: Sched{Mode: mode, Workers: workers}, Sim: Sim{Seed: f.seed}})
				if err != nil {
					t.Fatalf("%s/%v workers=%d: %v", f.name, mode, workers, err)
				}
				if !reflect.DeepEqual(seq.Modeled(), par.Modeled()) {
					t.Errorf("%s/%v workers=%d diverged from sequential:\nseq: %+v\npar: %+v",
						f.name, mode, workers, seq.Modeled(), par.Modeled())
				}
			}
		}
	}
}

// TestWorkersExceedingCameras verifies that a worker bound above the
// camera count is harmless (pool caps it) and still deterministic.
func TestWorkersExceedingCameras(t *testing.T) {
	e := getEnv(t)
	seq, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB, Workers: 1}, Sim: Sim{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB, Workers: 64}, Sim: Sim{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Modeled(), wide.Modeled()) {
		t.Fatalf("workers=64 diverged:\nseq: %+v\nwide: %+v", seq.Modeled(), wide.Modeled())
	}
}

// TestConcurrentRuns drives several whole pipeline runs at once over the
// same trace, model, and options — the RunModes shape — and checks they
// all agree. Under -race this also proves the shared inputs (trace,
// association model) are never written during a run.
func TestConcurrentRuns(t *testing.T) {
	p := getParallelEnv(t)
	const n = 4
	reports := make([]*Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Fresh profiles per run: executors accumulate stats.
			reports[i], errs[i] = Run(p.test, p.scenario.Profiles(), p.model,
				Config{Sched: Sched{Mode: BALB, Workers: 2}, Sim: Sim{Seed: 17}})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
	}
	want := reports[0].Modeled()
	for i := 1; i < n; i++ {
		if got := reports[i].Modeled(); !reflect.DeepEqual(want, got) {
			t.Fatalf("concurrent run %d diverged:\nwant %+v\ngot  %+v", i, want, got)
		}
	}
}

func TestModeledProjection(t *testing.T) {
	rep := runMode(t, BALB)
	m := rep.Modeled()
	if m.CentralPerFrame != 0 || m.TrackingPerFrame != 0 ||
		m.DistributedPerFrame != 0 || m.BatchingPerFrame != 0 {
		t.Fatalf("measured fields survived the projection: %+v", m)
	}
	if m.Recall != rep.Recall || m.TP != rep.TP || m.FN != rep.FN ||
		m.MeanSlowest != rep.MeanSlowest || m.P95Slowest != rep.P95Slowest ||
		m.MaxSlowest != rep.MaxSlowest {
		t.Fatalf("modelled fields altered: %+v vs %+v", m, rep)
	}
	if len(m.PerCameraMean) != len(rep.PerCameraMean) {
		t.Fatal("per-camera means dropped")
	}
	// The projection must be a copy: mutating it cannot touch the
	// original report.
	if len(m.PerCameraMean) > 0 {
		m.PerCameraMean[0]++
		if m.PerCameraMean[0] == rep.PerCameraMean[0] {
			t.Fatal("PerCameraMean aliases the original report")
		}
	}
}
