package pipeline

import (
	"errors"
	"fmt"
	"io"
	"time"

	"mvs/internal/adapt"
	"mvs/internal/assoc"
	"mvs/internal/camfault"
	"mvs/internal/core"
	"mvs/internal/metrics"
	"mvs/internal/profile"
	"mvs/internal/scene"
)

// Engine is the long-running streaming form of the pipeline: it
// consumes frames one at a time from a Source, runs the BALB central
// and distributed stages incrementally per horizon, and emits the same
// per-frame metrics.Snapshot stream as the batch Run wrapper — which is
// now just "build a TraceSource, drain the engine". Every modelled
// field is bit-identical between the two paths at every worker count:
// the engine holds exactly the state the batch loop held across
// iterations, nothing about the algorithm changed shape.
//
// Lifecycle: NewEngine validates and builds per-camera state, Step
// processes one frame (or reports end of stream), Run drains the
// source, Report summarizes the frames processed so far (it may be
// called mid-stream; it never mutates engine state), and Err returns
// the terminal error after the stream ends. At end of stream — clean
// or not — the engine Flushes the frame sink exactly once and folds
// the first sink error into Err (the sink ownership rule, Config.Obs).
//
// An Engine is not safe for concurrent use; run one goroutine through
// Step/Run. Distinct engines are independent (they share only
// read-only inputs: trace frames, profiles slice elements, model).
type Engine struct {
	src   Source
	cfg   Config
	label string

	needsModel bool
	model      *assoc.Model
	subModels  []*assoc.Model

	cams     []*cameraState
	coreCams []core.CameraSpec

	policy   core.Policy
	health   *camfault.Tracker
	deadMask []bool

	recall       metrics.RecallAccumulator
	horizonCam   []time.Duration
	horizonLen   int
	slowestSum   time.Duration
	horizons     int
	centralTotal time.Duration
	breakdown    *metrics.Breakdown
	frameSeries  metrics.LatencySeries

	// busy accumulates each camera's modelled inspection latency across
	// frames (Report.PerCameraMean). It is fed from the merged camFrame
	// shards rather than the private executors so the same accounting
	// covers both local pricing and a shared serve pool. lastExec holds
	// the serving pool's cumulative per-tenant counters as of the latest
	// priced frame (zero without Config.Serve.Executor).
	busy     []time.Duration
	lastExec ExecStats

	outageFrames int
	orphaned     int
	reassigned   int

	// Degradation control loop (Config.Adapt): the controller observes
	// every frame and ticks at key frames, before the key frame runs, so
	// a new rung's size cap applies to that frame's RefreshSizes and its
	// stretch to the following interval. nextKey replaces the fixed
	// fi%Horizon == 0 cadence — with no controller (or at level 0) it
	// advances by exactly Horizon, reproducing the fixed cadence
	// bit-identically. lastDrift remembers the orphan+reassignment total
	// at the previous frame so each Sample carries the per-frame delta.
	ctrl      *adapt.Controller
	nextKey   int
	lastDrift int

	// hist is the bounded ring buffer serving lagged camera views
	// (Sim.CameraLag): slot fi % (maxLag+1) holds frame fi, so the last
	// maxLag+1 frames are always addressable.
	hist   []*scene.FrameTruth
	maxLag int

	fi       int // frames processed so far
	roundSeq int
	done     bool
	err      error
}

// NewEngine builds a streaming engine over a source. The association
// model may be nil for Full and Independent modes; every other mode
// requires one trained on a disjoint (earlier) part of the deployment.
func NewEngine(src Source, profiles []*profile.Profile, model *assoc.Model, cfg Config) (*Engine, error) {
	cfg = cfg.withDefaults()
	cameras := src.Cameras()
	if len(cameras) == 0 {
		return nil, fmt.Errorf("pipeline: source has no cameras")
	}
	if len(profiles) != len(cameras) {
		return nil, fmt.Errorf("pipeline: %d profiles for %d cameras", len(profiles), len(cameras))
	}
	needsModel := cfg.Sched.Mode == CentralOnly || cfg.Sched.Mode == BALB || cfg.Sched.Mode == StaticPartition
	if needsModel {
		if model == nil {
			return nil, fmt.Errorf("pipeline: mode %v requires an association model", cfg.Sched.Mode)
		}
		if model.NumCameras() != len(cameras) {
			return nil, fmt.Errorf("pipeline: model trained for %d cameras, trace has %d",
				model.NumCameras(), len(cameras))
		}
	}

	var subModels []*assoc.Model
	if cfg.Sched.Shards != nil {
		if cfg.Sched.Mode != BALB && cfg.Sched.Mode != CentralOnly {
			return nil, fmt.Errorf("pipeline: Shards requires BALB or CentralOnly mode, got %v", cfg.Sched.Mode)
		}
		if err := cfg.Sched.Shards.Validate(); err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		if cfg.Sched.Shards.NumCameras() != len(cameras) {
			return nil, fmt.Errorf("pipeline: shard map covers %d cameras, trace has %d",
				cfg.Sched.Shards.NumCameras(), len(cameras))
		}
		subModels = make([]*assoc.Model, cfg.Sched.Shards.NumShards())
		for s, roster := range cfg.Sched.Shards.Shards {
			sub, err := model.Subset(roster)
			if err != nil {
				return nil, fmt.Errorf("pipeline: shard %d model: %w", s, err)
			}
			subModels[s] = sub
		}
	}

	if cfg.Sim.CameraLag != nil && len(cfg.Sim.CameraLag) != len(cameras) {
		return nil, fmt.Errorf("pipeline: CameraLag has %d entries for %d cameras",
			len(cfg.Sim.CameraLag), len(cameras))
	}
	if cfg.Fault.CamFaults != nil && cfg.Fault.CamFaults.NumCameras() != len(cameras) {
		return nil, fmt.Errorf("pipeline: fault schedule for %d cameras, trace has %d",
			cfg.Fault.CamFaults.NumCameras(), len(cameras))
	}

	cams, err := buildCameraStates(cameras, profiles, model, cfg)
	if err != nil {
		return nil, err
	}
	coreCams := make([]core.CameraSpec, len(cams))
	for i := range cams {
		coreCams[i] = core.CameraSpec{Index: i, Profile: profiles[i]}
	}

	e := &Engine{
		src:        src,
		cfg:        cfg,
		label:      cfg.label(),
		needsModel: needsModel,
		model:      model,
		subModels:  subModels,
		cams:       cams,
		coreCams:   coreCams,
		horizonCam: make([]time.Duration, len(cams)),
		breakdown:  metrics.NewBreakdown(),
		busy:       make([]time.Duration, len(cams)),
	}
	for _, lag := range cfg.Sim.CameraLag {
		if lag > e.maxLag {
			e.maxLag = lag
		}
	}
	e.hist = make([]*scene.FrameTruth, e.maxLag+1)

	// Default policy (before the first central stage): priority by index
	// — sharded runs compose the same index order per shard, so the
	// pre-key-frame decisions match the unsharded ones on single-shard
	// coverage sets.
	if needsModel || cfg.Sched.Mode == Independent {
		if cfg.Sched.Shards != nil {
			prios := make([][]int, cfg.Sched.Shards.NumShards())
			for s, roster := range cfg.Sched.Shards.Shards {
				prios[s] = append([]int(nil), roster...)
			}
			e.policy, err = core.NewShardedPolicy(cfg.Sched.Shards.ShardOf, prios)
		} else {
			idx := make([]int, len(cams))
			for i := range idx {
				idx[i] = i
			}
			e.policy, err = core.NewDistributedPolicy(idx)
		}
		if err != nil {
			return nil, err
		}
	}

	// A live ingest source meters its own admissions; pick the meter up
	// so every snapshot carries the shed/queued/ingested counters
	// (Config.Obs.Ingest overrides for wrapped sources).
	if e.cfg.Obs.Ingest == nil {
		if m, ok := src.(IngestMeter); ok {
			e.cfg.Obs.Ingest = m
		}
	}

	// Health tracking: mark cameras dead after HealthK silent frames and
	// feed the mask into the ownership policy so the distributed stage
	// fails over and the central stage reschedules over the survivors.
	if cfg.Fault.CamFaults != nil && cfg.Fault.HealthK > 0 && e.policy != nil {
		e.health = camfault.NewTracker(len(cams), cfg.Fault.HealthK)
	}
	if cfg.Adapt.Policy.Enabled() {
		e.ctrl = adapt.NewController(cfg.Adapt.Policy)
	}
	return e, nil
}

// Step pulls and processes one frame. It returns (true, nil) after a
// processed frame, (false, nil) at clean end of stream, and
// (false, err) when the source, the frame, or the end-of-stream sink
// flush failed. Once it has returned false, every further call returns
// (false, Err()).
func (e *Engine) Step() (bool, error) {
	if e.done {
		return false, e.err
	}
	frame, err := e.src.Next()
	if errors.Is(err, io.EOF) {
		e.finish(nil)
		return false, e.err
	}
	if err != nil {
		e.finish(fmt.Errorf("pipeline: source: %w", err))
		return false, e.err
	}
	if err := e.process(frame); err != nil {
		e.finish(err)
		return false, e.err
	}
	return true, nil
}

// Run drains the source: Step until end of stream. It returns Err().
func (e *Engine) Run() error {
	for {
		ok, err := e.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// Err returns the engine's terminal error: nil while streaming and
// after a clean end of stream, otherwise the first source, processing,
// or sink-flush error.
func (e *Engine) Err() error { return e.err }

// Frames returns the number of frames processed so far.
func (e *Engine) Frames() int { return e.fi }

// finish seals the stream and flushes the frame sink exactly once,
// folding the first sink error into Err (Config.Obs ownership rule).
func (e *Engine) finish(err error) {
	e.done = true
	e.err = err
	if e.cfg.Obs.Sink != nil {
		if ferr := e.cfg.Obs.Sink.Flush(); ferr != nil && e.err == nil {
			e.err = fmt.Errorf("pipeline: sink flush: %w", ferr)
		}
	}
}

// process runs one frame through the two-stage pipeline — the body of
// the old batch loop, with e.fi as the stream index.
func (e *Engine) process(frame *scene.FrameTruth) error {
	fi := e.fi
	cams := e.cams
	if len(frame.PerCamera) != len(cams) {
		return fmt.Errorf("pipeline: frame %d has %d camera lists, want %d",
			fi, len(frame.PerCamera), len(cams))
	}
	if e.cfg.Fault.CamFaults != nil && fi >= e.cfg.Fault.CamFaults.NumFrames() {
		return fmt.Errorf("pipeline: fault schedule covers %d frames, stream reached frame %d",
			e.cfg.Fault.CamFaults.NumFrames(), fi)
	}
	e.hist[fi%len(e.hist)] = frame

	// Each camera sees the scene as of its own (possibly lagged) frame —
	// the paper's imperfect-synchronization model, served from the ring
	// buffer. A camera down per the fault schedule sees nothing and does
	// no work this frame; its state freezes until it recovers.
	obs := make([][]scene.Observation, len(cams))
	var down []bool
	for i := range cams {
		if e.cfg.Fault.CamFaults.Down(i, fi) {
			if down == nil {
				down = make([]bool, len(cams))
			}
			down[i] = true
			e.outageFrames++
			continue
		}
		src := fi
		if e.cfg.Sim.CameraLag != nil && e.cfg.Sim.CameraLag[i] > 0 {
			src = fi - e.cfg.Sim.CameraLag[i]
			if src < 0 {
				src = 0
			}
		}
		obs[i] = e.hist[src%len(e.hist)].PerCamera[i]
	}
	if e.health != nil {
		for i := range cams {
			e.health.Observe(i, down == nil || !down[i])
		}
		e.deadMask, _ = e.health.DeadMask(e.deadMask)
		e.policy.SetDead(e.deadMask) // all-false mask clears
	}
	isKey := fi == e.nextKey
	if isKey {
		// Tick the control loop between horizons, before this key frame
		// runs: a freshly engaged rung caps this frame's RefreshSizes
		// and stretches the interval to the next key.
		stretch := 1
		if e.ctrl != nil {
			e.ctrl.Tick()
			sizeCap := e.ctrl.SizeCap()
			for _, cs := range cams {
				cs.tracker.SetSizeCap(sizeCap)
			}
			stretch = e.ctrl.Stretch()
		}
		e.nextKey = fi + e.cfg.Sched.Horizon*stretch
	}
	detectedIDs := make(map[int]bool)
	results := make([]camFrame, len(cams))

	if isKey {
		e.flushHorizon()
		if err := runKeyFrame(cams, obs, down, results, e.cfg); err != nil {
			return err
		}
	} else {
		if err := runRegularFrame(cams, obs, down, results, e.policy, e.cfg); err != nil {
			return err
		}
	}

	// Price any deferred GPU work at the post-fan-out barrier, then fold
	// the per-camera shards into the run accumulators in camera order —
	// the same merge point whether the work ran on private executors
	// during the fan-out or on the shared serving pool just now.
	if err := e.resolveServe(results, down); err != nil {
		return err
	}
	mergeCamFrames(results, detectedIDs, e.breakdown, e.horizonCam)

	if isKey {
		pruneStaticPartition(cams, down, e.cfg)
		if e.needsModel {
			start := time.Now()
			newPolicy, round, err := centralStage(cams, e.coreCams, e.model, e.subModels, e.deadMask, e.cfg)
			if err != nil {
				return err
			}
			e.centralTotal += time.Since(start)
			if newPolicy != nil {
				e.policy = newPolicy
				e.policy.SetDead(e.deadMask)
			}
			if round != nil && e.cfg.Obs.Rounds != nil {
				e.emitRound(fi, round)
			}
		}
	}

	e.breakdown.EndFrame()
	e.horizonLen++
	e.recall.Observe(frame.VisibleObjectIDs(), detectedIDs)
	for i := range results {
		e.reassigned += results[i].reassigned
		e.orphaned += results[i].orphaned
	}

	// Per-frame system latency (max across cameras) for tail stats, and
	// the per-camera busy accumulators behind Report.PerCameraMean. With
	// a serve executor the shard latencies include pool queueing delay,
	// so overload at the shared GPU surfaces in the same tail statistics
	// (and the same adapt samples) as local overload.
	var frameMax time.Duration
	for i := range results {
		e.busy[i] += results[i].latency
		if results[i].latency > frameMax {
			frameMax = results[i].latency
		}
	}
	e.frameSeries.Add(frameMax)

	// Feed the control loop one sample per frame: the frame's modelled
	// latency, the live queue depth behind it (0 for trace sources), the
	// current dead-camera count, and this frame's association-drift
	// events.
	if e.ctrl != nil {
		drift := e.orphaned + e.reassigned - e.lastDrift
		e.lastDrift = e.orphaned + e.reassigned
		var queueDepth, dead int
		if e.cfg.Obs.Ingest != nil {
			queueDepth = e.cfg.Obs.Ingest.Counters().QueueDepth
		}
		for _, d := range e.deadMask {
			if d {
				dead++
			}
		}
		e.ctrl.Observe(adapt.Sample{
			Latency: frameMax, QueueDepth: queueDepth, DeadCameras: dead, Drift: drift,
		})
	}

	// Live export: one snapshot per frame, fixed camera order, modelled
	// fields only — the sink sees exactly what Modeled() would report
	// for the frames so far, so attaching one cannot perturb the
	// determinism contract.
	if e.cfg.Obs.Sink != nil {
		var level, transitions, violations int
		if e.ctrl != nil {
			level = e.ctrl.Level()
			transitions = e.ctrl.Transitions()
			violations = e.ctrl.SLOViolations()
		}
		emitFrameSnapshot(e.cfg.Obs.Sink, e.label, fi, &e.recall, frameMax, cams, results,
			e.outageFrames, e.orphaned, e.reassigned, level, transitions, violations,
			e.cfg.Obs.Ingest, e.cfg.Serve.Tenant, e.lastExec)
	}
	e.fi++
	return nil
}

// resolveServe prices the frame's deferred GPU work on the shared
// executor (Config.Serve.Executor): it submits one ExecRequest per live
// camera in ascending camera order — including cameras with no tasks,
// so the pool's epoch barrier sees every active tenant every frame —
// blocks until the pool has priced the epoch, and writes the replies
// back into the camFrame shards. A no-op without a serve executor.
func (e *Engine) resolveServe(results []camFrame, down []bool) error {
	if e.cfg.Serve.Executor == nil {
		return nil
	}
	reqs := make([]ExecRequest, 0, len(results))
	for i := range results {
		if down != nil && down[i] {
			continue
		}
		reqs = append(reqs, ExecRequest{Cam: i, Full: results[i].full, Tasks: results[i].tasks})
	}
	res, stats, err := e.cfg.Serve.Executor.SubmitFrame(e.fi, reqs)
	if err != nil {
		return fmt.Errorf("pipeline: serve executor: %w", err)
	}
	if len(res) != len(reqs) {
		return fmt.Errorf("pipeline: serve executor returned %d results for %d requests",
			len(res), len(reqs))
	}
	for k := range reqs {
		out := &results[reqs[k].Cam]
		out.latency = res[k].Latency
		out.batches = res[k].Batches
		out.images = res[k].Images
		out.occupancy = res[k].Occupancy
	}
	e.lastExec = stats
	return nil
}

// emitRound records one central-stage decision (docs/STREAMING.md).
func (e *Engine) emitRound(fi int, round *roundInfo) {
	r := metrics.Round{
		Source:        metrics.SourcePipeline,
		Label:         e.label,
		Seq:           e.roundSeq,
		Frame:         fi,
		Objects:       round.objects,
		Priority:      round.priority,
		Assigned:      round.assigned,
		Reassignments: e.reassigned,
		Orphaned:      e.orphaned,
	}
	if e.cfg.Sched.Shards != nil {
		r.Shards = e.cfg.Sched.Shards.NumShards()
	}
	e.cfg.Obs.Rounds.RecordRound(r)
	e.roundSeq++
}

// flushHorizon seals the current scheduling horizon into the Fig. 13
// accumulator: per camera the mean per-frame latency over the horizon,
// the slowest camera taken, summed for the cross-horizon average.
func (e *Engine) flushHorizon() {
	if e.horizonLen == 0 {
		return
	}
	var slowest time.Duration
	for i := range e.horizonCam {
		mean := e.horizonCam[i] / time.Duration(e.horizonLen)
		if mean > slowest {
			slowest = mean
		}
		e.horizonCam[i] = 0
	}
	e.slowestSum += slowest
	e.horizons++
	e.horizonLen = 0
}

// Report summarizes the frames processed so far. It may be called
// mid-stream — the pending partial horizon is folded into MeanSlowest
// on a copy, so engine state is never mutated — and any number of
// times. It errors until at least one frame has been processed.
func (e *Engine) Report() (*Report, error) {
	if e.fi == 0 {
		return nil, fmt.Errorf("pipeline: no frames processed")
	}
	frames := time.Duration(e.fi)
	perCam := make([]time.Duration, len(e.cams))
	for i := range e.cams {
		perCam[i] = e.busy[i] / frames
	}
	rep := &Report{
		Mode:                e.cfg.Sched.Mode,
		Frames:              e.fi,
		Horizon:             e.cfg.Sched.Horizon,
		Recall:              e.recall.Recall(),
		PerCameraMean:       perCam,
		CentralPerFrame:     e.centralTotal / frames,
		TrackingPerFrame:    e.breakdown.MeanOf("tracking"),
		DistributedPerFrame: e.breakdown.MeanOf("distributed"),
		BatchingPerFrame:    e.breakdown.MeanOf("batching"),
	}
	rep.TP, rep.FN = e.recall.Counts()
	// Fold the pending partial horizon without mutating engine state.
	slowestSum, horizons := e.slowestSum, e.horizons
	if e.horizonLen > 0 {
		var slowest time.Duration
		for i := range e.horizonCam {
			mean := e.horizonCam[i] / time.Duration(e.horizonLen)
			if mean > slowest {
				slowest = mean
			}
		}
		slowestSum += slowest
		horizons++
	}
	if horizons > 0 {
		rep.MeanSlowest = slowestSum / time.Duration(horizons)
	}
	rep.MaxSlowest = e.frameSeries.Max()
	p95, err := e.frameSeries.Percentile(95)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	rep.P95Slowest = p95
	p99, err := e.frameSeries.Percentile(99)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	rep.P99Slowest = p99
	rep.OutageFrames = e.outageFrames
	rep.OrphanedObjects = e.orphaned
	rep.Reassignments = e.reassigned
	if e.ctrl != nil {
		rep.AdaptLevel = e.ctrl.Level()
		rep.AdaptTransitions = e.ctrl.Transitions()
		rep.SLOViolations = e.ctrl.SLOViolations()
	}
	rep.Tenant = e.cfg.Serve.Tenant
	rep.ExecSharedBatches = e.lastExec.SharedBatches
	rep.ExecShedTasks = e.lastExec.ShedTasks
	rep.ExecSLOViolations = e.lastExec.SLOViolations
	return rep, nil
}
