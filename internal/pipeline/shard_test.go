package pipeline

import (
	"reflect"
	"testing"

	"mvs/internal/assoc"
	"mvs/internal/geom"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/shard"
	"mvs/internal/workload"
)

// buildScenarioEnv generates, splits, and trains a scenario for the
// sharded tests.
func buildScenarioEnv(t *testing.T, s *workload.Scenario, frames int) (*scene.Trace, *assoc.Model, []*profile.Profile) {
	t.Helper()
	trace, err := s.World.Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		t.Fatal(err)
	}
	return test, model, s.Profiles()
}

// islandShardMap partitions the scenario by ground-truth co-observation
// and sanity-checks the expected shard count.
func islandShardMap(t *testing.T, trace *scene.Trace, wantShards int) *shard.Map {
	t.Helper()
	g, err := shard.FromCoObservation(trace.CoObservation(), 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.Partition(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != wantShards {
		t.Fatalf("partition found %d shards, want %d (map %v)", m.NumShards(), wantShards, m.String())
	}
	if len(m.Boundary) != 0 {
		t.Fatalf("islands must have no boundary edges, got %v", m.Boundary)
	}
	return m
}

// TestShardedMatchesGlobalOnIslands is the determinism acceptance test:
// on a scenario whose coverage graph is block-diagonal (two disjoint
// corridor islands, so zero cross-shard traffic is structural, not
// lucky), a sharded run must be bit-identical to the global run — same
// recall counts, same modelled latencies, same tail statistics.
func TestShardedMatchesGlobalOnIslands(t *testing.T) {
	s, err := workload.Islands(2, 3, 29)
	if err != nil {
		t.Fatal(err)
	}
	test, model, profiles := buildScenarioEnv(t, s, 600)
	m := islandShardMap(t, test, 2)

	for _, mode := range []Mode{BALB, CentralOnly} {
		opts := NewConfig(mode, 7)
		global, err := Run(test, profiles, model, opts)
		if err != nil {
			t.Fatalf("%v global: %v", mode, err)
		}
		opts.Sched.Shards = m
		sharded, err := Run(test, profiles, model, opts)
		if err != nil {
			t.Fatalf("%v sharded: %v", mode, err)
		}
		g, sh := global.Modeled(), sharded.Modeled()
		if !reflect.DeepEqual(g, sh) {
			t.Fatalf("%v: sharded run diverged from global:\nglobal:  %+v\nsharded: %+v", mode, g, sh)
		}
		if sharded.Recall <= 0 {
			t.Fatalf("%v: degenerate run, recall %v", mode, sharded.Recall)
		}
	}
}

// TestShardedDeterministicAcrossWorkers checks the sharded mode keeps
// the Workers-independence half of the determinism contract.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	s, err := workload.Islands(2, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	test, model, profiles := buildScenarioEnv(t, s, 400)
	m := islandShardMap(t, test, 2)

	base, err := Run(test, profiles, model, Config{Sched: Sched{Mode: BALB, Shards: m, Workers: 1}, Sim: Sim{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		rep, err := Run(test, profiles, model, Config{Sched: Sched{Mode: BALB, Shards: m, Workers: workers}, Sim: Sim{Seed: 3}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base.Modeled(), rep.Modeled()) {
			t.Fatalf("workers=%d diverged from sequential run", workers)
		}
	}
}

// TestShardedCorridorSmoke runs a corridor under a max-shard split —
// real boundary edges, objects crossing shard cuts — and checks the
// run stays healthy: no orphaned objects in the fault-free case.
func TestShardedCorridorSmoke(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 8
	}
	s, err := workload.Corridor(n, 17)
	if err != nil {
		t.Fatal(err)
	}
	test, model, profiles := buildScenarioEnv(t, s, 400)

	adj, err := model.OverlapAdjacency(frameRects(s), 16, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := shard.FromAdjacency(adj)
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() < 2 {
		t.Fatalf("corridor with max-shard 4 must split, got %v", m.String())
	}

	rep, err := Run(test, profiles, model, Config{Sched: Sched{Mode: BALB, Shards: m}, Sim: Sim{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall < 0.5 {
		t.Fatalf("sharded corridor recall = %v, want >= 0.5", rep.Recall)
	}
	if rep.OrphanedObjects != 0 {
		t.Fatalf("fault-free sharded run orphaned %d objects", rep.OrphanedObjects)
	}
}

func frameRects(s *workload.Scenario) []geom.Rect {
	out := make([]geom.Rect, len(s.World.Cameras))
	for i, c := range s.World.Cameras {
		out[i] = c.Frame()
	}
	return out
}

func TestShardedOptionValidation(t *testing.T) {
	e := getEnv(t)
	m, err := shard.Single(2)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong mode.
	if _, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: Independent, Shards: m}, Sim: Sim{Seed: 1}}); err == nil {
		t.Fatal("Shards with Independent mode must fail")
	}
	// Wrong fleet size.
	wrong, err := shard.Single(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB, Shards: wrong}, Sim: Sim{Seed: 1}}); err == nil {
		t.Fatal("Shards over the wrong fleet size must fail")
	}
	// Single shard over the right fleet works (degenerate sharding).
	rep, err := Run(e.test, e.profiles, e.model, Config{Sched: Sched{Mode: BALB, Shards: m}, Sim: Sim{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(e.test, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base.Modeled(), rep.Modeled()) {
		t.Fatal("single-shard run diverged from global run")
	}
}
