package pipeline

import (
	"math/rand"
	"testing"
	"time"

	"mvs/internal/profile"
	"mvs/internal/vision"
	"mvs/internal/workload"
)

// TestDegradedDetectorStillRuns injects a very unreliable detector
// (30% base miss rate) and checks the pipeline degrades gracefully:
// lower recall, no crashes, latency still far below full-frame.
func TestDegradedDetectorStillRuns(t *testing.T) {
	e := getEnv(t)
	rep, err := Run(e.test, e.profiles, e.model, Config{
		Sched: Sched{Mode: BALB},
		Sim:   Sim{Seed: 5, Detector: vision.Config{MissBase: 0.3, NoiseFrac: 0.08}},
	})
	if err != nil {
		t.Fatal(err)
	}
	clean := runMode(t, BALB)
	if rep.Recall >= clean.Recall {
		t.Fatalf("degraded detector recall %v not below clean %v", rep.Recall, clean.Recall)
	}
	if rep.Recall < 0.5 {
		t.Fatalf("recall collapsed: %v", rep.Recall)
	}
	if rep.MeanSlowest >= profile.TrueFullFrameLatency(profile.JetsonNano) {
		t.Fatalf("latency %v at full-frame level", rep.MeanSlowest)
	}
}

// TestSevereNoiseDoesNotWedgeTracking injects heavy localization noise;
// association quality drops but every frame must still process.
func TestSevereNoiseDoesNotWedgeTracking(t *testing.T) {
	e := getEnv(t)
	rep, err := Run(e.test, e.profiles, e.model, Config{
		Sched: Sched{Mode: BALB},
		Sim:   Sim{Seed: 6, Detector: vision.Config{NoiseFrac: 0.15}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Frames != len(e.test.Frames) {
		t.Fatalf("frames = %d", rep.Frames)
	}
}

// TestTakeoverKeepsRecallWhenObjectsMigrate builds a world where every
// object crosses from one camera's exclusive zone through the shared
// zone into the other camera's exclusive zone: the only way to keep
// recall high after the handoff is the distributed takeover rule.
func TestTakeoverKeepsRecallWhenObjectsMigrate(t *testing.T) {
	// In S2, objects traverse the road end to end, so every object
	// eventually leaves its first assigned camera's view. Compare BALB
	// (with takeover) against CentralOnly (without): BALB must recover a
	// significant share of the per-object frames Central loses late in an
	// object's life.
	balb := runMode(t, BALB)
	cen := runMode(t, CentralOnly)
	if balb.Recall-cen.Recall < 0.01 {
		t.Fatalf("takeover contribution too small: balb=%v cen=%v", balb.Recall, cen.Recall)
	}
}

// TestStaticPartitionUsesCapacityWeights verifies SP's defining property
// on a fresh asymmetric deployment: the faster camera ends up owning
// more of the shared cells and carrying more of the load.
func TestStaticPartitionUsesCapacityWeights(t *testing.T) {
	e := getEnv(t)
	rep, err := Run(e.test, e.profiles, e.model, NewConfig(StaticPartition, 5))
	if err != nil {
		t.Fatal(err)
	}
	// S2: camera 0 is the Xavier, camera 1 the Nano. The Xavier must do
	// more than half the per-frame work in proportion to capacity.
	xavierShare := float64(rep.PerCameraMean[0])
	nanoShare := float64(rep.PerCameraMean[1])
	// The Nano's full-frame key frames dominate its mean; compare
	// regular-frame shares indirectly by bounding the Nano's mean by the
	// Full-mode cost.
	if nanoShare >= float64(profile.TrueFullFrameLatency(profile.JetsonNano)) {
		t.Fatalf("SP did not reduce the Nano's load at all: %v", time.Duration(nanoShare))
	}
	_ = xavierShare
}

// TestHeterogeneousVsHomogeneousFleet swaps S2's Nano for a second
// Xavier: system latency must improve, and BALB must adapt without any
// configuration change.
func TestHeterogeneousVsHomogeneousFleet(t *testing.T) {
	e := getEnv(t)
	hetero, err := Run(e.test, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	homo := []*profile.Profile{
		profile.Derived(profile.JetsonXavier),
		profile.Derived(profile.JetsonXavier),
	}
	upgraded, err := Run(e.test, homo, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if upgraded.MeanSlowest >= hetero.MeanSlowest {
		t.Fatalf("upgrading the Nano did not help: %v vs %v",
			upgraded.MeanSlowest, hetero.MeanSlowest)
	}
}

// TestEmptyScene runs the pipeline over a trace with no traffic at all:
// nothing to track, no crashes, perfect (vacuous) recall, latency equal
// to the amortized key-frame cost.
func TestEmptyScene(t *testing.T) {
	s := workload.S2(99)
	for ri := range s.World.Routes {
		s.World.Routes[ri].Arrivals = nopArrivals{}
	}
	trace, err := s.World.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	e := getEnv(t)
	rep, err := Run(trace, s.Profiles(), e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recall != 1 {
		t.Fatalf("vacuous recall = %v", rep.Recall)
	}
	// Per horizon: 1 key frame (470ms on the Nano) + 9 empty regular
	// frames.
	want := profile.TrueFullFrameLatency(profile.JetsonNano) / 10
	if rep.MeanSlowest != want {
		t.Fatalf("slowest = %v want %v", rep.MeanSlowest, want)
	}
}

type nopArrivals struct{}

func (nopArrivals) Arrivals(int, float64, *rand.Rand) int { return 0 }

// TestRedundancyImprovesOcclusionRecall enables dynamic occlusions and
// checks redundancy-2 BALB recovers recall over single-tracker BALB at a
// bounded latency premium.
func TestRedundancyImprovesOcclusionRecall(t *testing.T) {
	s := workload.S2(31)
	s.World.OcclusionFrac = 0.55
	trace, err := s.World.Run(700)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trace.SplitTrain()
	e := getEnv(t)
	_ = e
	model, err := trainAssoc(t, train)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(test, s.Profiles(), model, NewConfig(BALB, 9))
	if err != nil {
		t.Fatal(err)
	}
	double, err := Run(test, s.Profiles(), model, Config{
		Sched: Sched{Mode: BALB, Redundancy: 2, RedundancySlack: 1.4},
		Sim:   Sim{Seed: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if double.Recall < single.Recall {
		t.Fatalf("redundancy lowered recall: %v vs %v", double.Recall, single.Recall)
	}
	if double.MeanSlowest > 2*single.MeanSlowest {
		t.Fatalf("redundancy latency unbounded: %v vs %v", double.MeanSlowest, single.MeanSlowest)
	}
}

// TestCameraLagDegradesRecallGracefully models the §V imperfect-
// synchronization anomaly: one camera runs several frames behind. Recall
// must drop (handoffs misfire) but the system must neither crash nor
// collapse.
func TestCameraLagDegradesRecallGracefully(t *testing.T) {
	e := getEnv(t)
	sync0, err := Run(e.test, e.profiles, e.model, NewConfig(BALB, 5))
	if err != nil {
		t.Fatal(err)
	}
	lagged, err := Run(e.test, e.profiles, e.model, Config{
		Sched: Sched{Mode: BALB},
		Sim:   Sim{Seed: 5, CameraLag: []int{0, 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if lagged.Recall > sync0.Recall+0.005 {
		t.Fatalf("lag improved recall: %v vs %v", lagged.Recall, sync0.Recall)
	}
	if lagged.Recall < 0.5 {
		t.Fatalf("lag collapsed recall: %v", lagged.Recall)
	}
}

func TestCameraLagValidation(t *testing.T) {
	e := getEnv(t)
	if _, err := Run(e.test, e.profiles, e.model, Config{
		Sched: Sched{Mode: BALB},
		Sim:   Sim{Seed: 5, CameraLag: []int{1}},
	}); err == nil {
		t.Fatal("wrong-length CameraLag accepted")
	}
}
