// Package gpu models the task-batching execution of partial-frame DNN
// inspections on a camera's onboard GPU. Only regions with the same
// quantized spatial size can share a batch; a camera's per-frame latency
// is the sum of its batches' execution latencies, executed sequentially
// without preemption (Definition 1 in the paper).
//
// Two latency views coexist, mirroring the paper:
//
//   - the *scheduler's* view charges every batch the profiled latency
//     t_i^s measured at the batch limit (the paper's conservative
//     operating point);
//   - the *hardware's* view charges the true latency curve at the actual
//     fill level, which is what the simulated executor reports.
package gpu

import (
	"fmt"
	"sort"
	"time"

	"mvs/internal/profile"
)

// Task is one partial-region inspection request: find object ObjectID in
// a region whose quantized side length is Size pixels.
type Task struct {
	// ObjectID identifies the tracked object this region belongs to.
	ObjectID int
	// Size is the quantized side length of the region in pixels.
	Size int
}

// Batch is a set of same-size tasks executed in one GPU launch.
type Batch struct {
	// Size is the shared quantized side length of all tasks.
	Size int
	// Tasks are the regions in the batch, at most the device's batch
	// limit for Size.
	Tasks []Task
}

// FormBatches greedily packs tasks into the minimum number of batches:
// tasks are grouped by size and each group is split into ceil(n/B) full
// batches. The paper notes this greedy packing is optimal because each
// target size batches independently. Batches are ordered by ascending
// size, then formation order, giving a deterministic schedule.
func FormBatches(tasks []Task, prof *profile.Profile) ([]Batch, error) {
	bySize := make(map[int][]Task)
	for _, t := range tasks {
		if _, err := prof.BatchLimitFor(t.Size); err != nil {
			return nil, fmt.Errorf("gpu: task for object %d: %w", t.ObjectID, err)
		}
		bySize[t.Size] = append(bySize[t.Size], t)
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	var batches []Batch
	for _, s := range sizes {
		limit, err := prof.BatchLimitFor(s)
		if err != nil {
			return nil, err
		}
		group := bySize[s]
		for start := 0; start < len(group); start += limit {
			end := start + limit
			if end > len(group) {
				end = len(group)
			}
			batches = append(batches, Batch{Size: s, Tasks: group[start:end]})
		}
	}
	return batches, nil
}

// BatchOccupancy returns the mean fill fraction of formed batches: each
// batch contributes len(tasks)/limit(size), averaged over batches. 1.0
// means every launch ran at the device's batch limit; 0 means no batches
// ran. This is the live "batch occupancy" figure the observability layer
// exports per camera.
func BatchOccupancy(batches []Batch, prof *profile.Profile) float64 {
	if len(batches) == 0 {
		return 0
	}
	var sum float64
	for _, b := range batches {
		limit, err := prof.BatchLimitFor(b.Size)
		if err != nil || limit <= 0 {
			continue // unprofiled size: FormBatches would have rejected it
		}
		sum += float64(len(b.Tasks)) / float64(limit)
	}
	return sum / float64(len(batches))
}

// NumBatchesBySize returns, for a task multiset described as size ->
// count, the number of batches each size needs on the profiled device.
// This is the counting the BALB scheduler does without materializing
// tasks.
func NumBatchesBySize(counts map[int]int, prof *profile.Profile) (map[int]int, error) {
	out := make(map[int]int, len(counts))
	for size, n := range counts {
		if n <= 0 {
			continue
		}
		limit, err := prof.BatchLimitFor(size)
		if err != nil {
			return nil, fmt.Errorf("gpu: %w", err)
		}
		out[size] = (n + limit - 1) / limit
	}
	return out, nil
}

// ScheduledLatency is the scheduler's estimate of a frame's inspection
// latency: number of batches per size times the profiled batch latency
// t_i^s.
func ScheduledLatency(counts map[int]int, prof *profile.Profile) (time.Duration, error) {
	batches, err := NumBatchesBySize(counts, prof)
	if err != nil {
		return 0, err
	}
	var total time.Duration
	for size, nb := range batches {
		lat, err := prof.BatchLatencyFor(size)
		if err != nil {
			return 0, err
		}
		total += lat * time.Duration(nb)
	}
	return total, nil
}

// FrameResult reports the execution of one frame's batches on the
// simulated device.
type FrameResult struct {
	// Batches lists the executed batches in order.
	Batches []Batch
	// Latency is the true (hardware-view) total execution latency.
	Latency time.Duration
	// ScheduledLatency is what the scheduler's profile-based estimate
	// would have predicted for the same batches.
	ScheduledLatency time.Duration
	// Images is the total number of regions inspected.
	Images int
}

// Executor simulates one camera's GPU. The zero value is unusable; create
// with NewExecutor. Executor is not safe for concurrent use — each camera
// owns one and frames are strictly sequential, matching the no-preemption
// execution model.
type Executor struct {
	prof  *profile.Profile
	stats Stats
}

// Stats accumulates executor counters across frames.
type Stats struct {
	// Frames is the number of RunFrame calls.
	Frames int
	// Batches is the total batches launched.
	Batches int
	// Images is the total regions inspected.
	Images int
	// BusyTime is the cumulative true execution latency.
	BusyTime time.Duration
	// FullFrames is the number of full-frame inspections executed.
	FullFrames int
}

// NewExecutor builds an executor over a validated profile.
func NewExecutor(prof *profile.Profile) (*Executor, error) {
	if prof == nil {
		return nil, fmt.Errorf("gpu: nil profile")
	}
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("gpu: %w", err)
	}
	return &Executor{prof: prof}, nil
}

// Profile returns the executor's device profile.
func (e *Executor) Profile() *profile.Profile { return e.prof }

// RunFrame batches and "executes" the given partial-region tasks,
// returning the formed batches and both latency views.
func (e *Executor) RunFrame(tasks []Task) (FrameResult, error) {
	batches, err := FormBatches(tasks, e.prof)
	if err != nil {
		return FrameResult{}, err
	}
	res := FrameResult{Batches: batches}
	for _, b := range batches {
		res.Latency += profile.TrueBatchLatency(e.prof.Class, b.Size, len(b.Tasks))
		sched, err := e.prof.BatchLatencyFor(b.Size)
		if err != nil {
			return FrameResult{}, err
		}
		res.ScheduledLatency += sched
		res.Images += len(b.Tasks)
	}
	e.stats.Frames++
	e.stats.Batches += len(batches)
	e.stats.Images += res.Images
	e.stats.BusyTime += res.Latency
	return res, nil
}

// RunFullFrame "executes" a full-frame inspection and returns its
// latency.
func (e *Executor) RunFullFrame() time.Duration {
	lat := profile.TrueFullFrameLatency(e.prof.Class)
	e.stats.Frames++
	e.stats.FullFrames++
	e.stats.BusyTime += lat
	return lat
}

// Stats returns a copy of the accumulated counters.
func (e *Executor) Stats() Stats { return e.stats }
