package gpu

import (
	"testing"

	"mvs/internal/profile"
)

// TestPackerMatchesFormBatches feeds a mixed-size task list through a
// Packer and requires the same per-size batch count and fill levels
// FormBatches produces — the streaming packing is the same packing,
// only the inter-size emission order differs.
func TestPackerMatchesFormBatches(t *testing.T) {
	prof := profile.Derived(profile.JetsonXavier)
	var tasks []Task
	for i := 0; i < 37; i++ {
		tasks = append(tasks, Task{ObjectID: i, Size: []int{64, 128, 256, 512}[i%4]})
	}

	want, err := FormBatches(tasks, prof)
	if err != nil {
		t.Fatalf("FormBatches: %v", err)
	}

	pk, err := NewPacker(prof)
	if err != nil {
		t.Fatalf("NewPacker: %v", err)
	}
	var got []Batch
	for _, task := range tasks {
		sealed, full, err := pk.Add(task)
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		if full {
			got = append(got, sealed)
		}
	}
	got = append(got, pk.Flush()...)
	if pk.Pending() != 0 {
		t.Errorf("pending %d tasks after Flush", pk.Pending())
	}

	count := func(batches []Batch) (perSize map[int][]int, total int) {
		perSize = map[int][]int{}
		for _, b := range batches {
			perSize[b.Size] = append(perSize[b.Size], len(b.Tasks))
			total += len(b.Tasks)
		}
		return perSize, total
	}
	wantSizes, wantTotal := count(want)
	gotSizes, gotTotal := count(got)
	if gotTotal != wantTotal || gotTotal != len(tasks) {
		t.Fatalf("packed %d tasks, FormBatches %d, fed %d", gotTotal, wantTotal, len(tasks))
	}
	for size, wantFills := range wantSizes {
		gotFills := gotSizes[size]
		if len(gotFills) != len(wantFills) {
			t.Errorf("size %d: %d batches, want %d", size, len(gotFills), len(wantFills))
			continue
		}
		// Both pack greedily in arrival order, so fill levels match
		// batch for batch within a size.
		for i := range wantFills {
			if gotFills[i] != wantFills[i] {
				t.Errorf("size %d batch %d: fill %d, want %d", size, i, gotFills[i], wantFills[i])
			}
		}
	}
}

// TestPackerRejectsUnknownSize mirrors FormBatches' validation.
func TestPackerRejectsUnknownSize(t *testing.T) {
	pk, err := NewPacker(profile.Derived(profile.JetsonXavier))
	if err != nil {
		t.Fatalf("NewPacker: %v", err)
	}
	if _, _, err := pk.Add(Task{ObjectID: 1, Size: 100}); err == nil {
		t.Error("unprofiled size accepted")
	}
}
