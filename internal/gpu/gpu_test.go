package gpu

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mvs/internal/profile"
)

func xavier() *profile.Profile { return profile.Derived(profile.JetsonXavier) }
func nano() *profile.Profile   { return profile.Derived(profile.JetsonNano) }

func makeTasks(sizes ...int) []Task {
	tasks := make([]Task, len(sizes))
	for i, s := range sizes {
		tasks[i] = Task{ObjectID: i, Size: s}
	}
	return tasks
}

func TestFormBatchesGroupsBySize(t *testing.T) {
	// Xavier: limit(64)=16, limit(512)=2.
	tasks := makeTasks(64, 512, 64, 512, 512)
	batches, err := FormBatches(tasks, xavier())
	if err != nil {
		t.Fatal(err)
	}
	// 64s fit in one batch; 512s need ceil(3/2)=2 batches.
	if len(batches) != 3 {
		t.Fatalf("batches = %d: %+v", len(batches), batches)
	}
	if batches[0].Size != 64 || len(batches[0].Tasks) != 2 {
		t.Fatalf("first batch = %+v", batches[0])
	}
	if batches[1].Size != 512 || len(batches[1].Tasks) != 2 {
		t.Fatalf("second batch = %+v", batches[1])
	}
	if batches[2].Size != 512 || len(batches[2].Tasks) != 1 {
		t.Fatalf("third batch = %+v", batches[2])
	}
}

func TestFormBatchesRespectsLimit(t *testing.T) {
	prof := nano() // limit(64)=4
	sizes := make([]int, 10)
	for i := range sizes {
		sizes[i] = 64
	}
	batches, err := FormBatches(makeTasks(sizes...), prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 { // ceil(10/4)
		t.Fatalf("batches = %d", len(batches))
	}
	for _, b := range batches {
		if len(b.Tasks) > 4 {
			t.Fatalf("batch over limit: %d", len(b.Tasks))
		}
	}
}

func TestFormBatchesEmptyAndUnknownSize(t *testing.T) {
	batches, err := FormBatches(nil, xavier())
	if err != nil || len(batches) != 0 {
		t.Fatalf("empty = %v, %v", batches, err)
	}
	if _, err := FormBatches(makeTasks(100), xavier()); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestFormBatchesPreservesAllTasks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		std := []int{64, 128, 256, 512}
		tasks := make([]Task, n)
		for i := range tasks {
			tasks[i] = Task{ObjectID: i, Size: std[rng.Intn(4)]}
		}
		batches, err := FormBatches(tasks, nano())
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, b := range batches {
			limit, _ := nano().BatchLimitFor(b.Size)
			if len(b.Tasks) == 0 || len(b.Tasks) > limit {
				return false
			}
			for _, task := range b.Tasks {
				if task.Size != b.Size || seen[task.ObjectID] {
					return false
				}
				seen[task.ObjectID] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNumBatchesBySize(t *testing.T) {
	counts := map[int]int{64: 17, 512: 2, 128: 0}
	nb, err := NumBatchesBySize(counts, xavier())
	if err != nil {
		t.Fatal(err)
	}
	if nb[64] != 2 { // ceil(17/16)
		t.Fatalf("nb[64] = %d", nb[64])
	}
	if nb[512] != 1 {
		t.Fatalf("nb[512] = %d", nb[512])
	}
	if _, ok := nb[128]; ok {
		t.Fatal("zero count produced a batch entry")
	}
	if _, err := NumBatchesBySize(map[int]int{99: 1}, xavier()); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestScheduledLatencyMatchesHandComputation(t *testing.T) {
	prof := xavier()
	counts := map[int]int{64: 17, 512: 3}
	got, err := ScheduledLatency(counts, prof)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*prof.BatchLatency[64] + 2*prof.BatchLatency[512]
	if got != want {
		t.Fatalf("latency = %v want %v", got, want)
	}
}

func TestScheduledLatencyEmpty(t *testing.T) {
	got, err := ScheduledLatency(nil, xavier())
	if err != nil || got != 0 {
		t.Fatalf("empty = %v, %v", got, err)
	}
}

func TestExecutorRunFrame(t *testing.T) {
	ex, err := NewExecutor(xavier())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ex.RunFrame(makeTasks(64, 64, 128))
	if err != nil {
		t.Fatal(err)
	}
	if res.Images != 3 || len(res.Batches) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.Latency <= 0 || res.ScheduledLatency <= 0 {
		t.Fatalf("latencies = %v / %v", res.Latency, res.ScheduledLatency)
	}
	// Scheduler's estimate (batch-limit pricing) is conservative: >= true.
	if res.ScheduledLatency < res.Latency {
		t.Fatalf("scheduled %v < true %v", res.ScheduledLatency, res.Latency)
	}
	st := ex.Stats()
	if st.Frames != 1 || st.Images != 3 || st.Batches != 2 || st.BusyTime != res.Latency {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExecutorFullFrame(t *testing.T) {
	ex, err := NewExecutor(nano())
	if err != nil {
		t.Fatal(err)
	}
	lat := ex.RunFullFrame()
	if lat != profile.TrueFullFrameLatency(profile.JetsonNano) {
		t.Fatalf("lat = %v", lat)
	}
	if ex.Stats().FullFrames != 1 {
		t.Fatalf("stats = %+v", ex.Stats())
	}
}

func TestExecutorErrors(t *testing.T) {
	if _, err := NewExecutor(nil); err == nil {
		t.Fatal("nil profile accepted")
	}
	bad := xavier()
	bad.FullFrame = 0
	if _, err := NewExecutor(bad); err == nil {
		t.Fatal("invalid profile accepted")
	}
	ex, err := NewExecutor(xavier())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.RunFrame(makeTasks(99)); err == nil {
		t.Fatal("unknown size accepted")
	}
}

func TestBatchingBeatsSerialEndToEnd(t *testing.T) {
	// The core speedup mechanism: running 8 size-64 regions on a Xavier
	// batched must be far cheaper than 8 single-image frames.
	ex, err := NewExecutor(xavier())
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int, 8)
	for i := range sizes {
		sizes[i] = 64
	}
	res, err := ex.RunFrame(makeTasks(sizes...))
	if err != nil {
		t.Fatal(err)
	}
	var serial time.Duration
	for i := 0; i < 8; i++ {
		serial += profile.TrueBatchLatency(profile.JetsonXavier, 64, 1)
	}
	if res.Latency*2 >= serial {
		t.Fatalf("batched %v not ≥2x cheaper than serial %v", res.Latency, serial)
	}
}

func BenchmarkFormBatches(b *testing.B) {
	prof := xavier()
	rng := rand.New(rand.NewSource(1))
	std := []int{64, 128, 256, 512}
	tasks := make([]Task, 50)
	for i := range tasks {
		tasks[i] = Task{ObjectID: i, Size: std[rng.Intn(4)]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FormBatches(tasks, prof); err != nil {
			b.Fatal(err)
		}
	}
}
