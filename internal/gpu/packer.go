package gpu

import (
	"fmt"
	"sort"

	"mvs/internal/profile"
)

// Packer is the streaming form of FormBatches: tasks are added one at a
// time and a batch is sealed the moment a size group reaches the
// device's batch limit, in arrival order rather than size order. It
// exists for schedulers that interleave tasks from several independent
// producers — the multi-tenant serving pool (internal/serve) feeds
// tenants' tasks through one Packer in fair-queue order, so a batch
// fills with whichever tenant's work arrives next — while a single
// producer feeding all its tasks up front gets exactly the FormBatches
// packing (same per-size batch count and fill levels; only the
// inter-size emission order differs).
//
// A Packer is not safe for concurrent use; the pool serializes Add
// calls under its own lock.
type Packer struct {
	prof *profile.Profile
	open map[int][]Task
}

// NewPacker builds a packer over a validated profile.
func NewPacker(prof *profile.Profile) (*Packer, error) {
	if prof == nil {
		return nil, fmt.Errorf("gpu: nil profile")
	}
	if err := prof.Validate(); err != nil {
		return nil, fmt.Errorf("gpu: %w", err)
	}
	return &Packer{prof: prof, open: make(map[int][]Task)}, nil
}

// Add appends one task to its size group and, when the group reaches
// the device's batch limit, seals and returns the full batch (ok =
// true). Tasks with unprofiled sizes are rejected, mirroring
// FormBatches.
func (p *Packer) Add(t Task) (Batch, bool, error) {
	limit, err := p.prof.BatchLimitFor(t.Size)
	if err != nil {
		return Batch{}, false, fmt.Errorf("gpu: task for object %d: %w", t.ObjectID, err)
	}
	group := append(p.open[t.Size], t)
	if len(group) >= limit {
		delete(p.open, t.Size)
		return Batch{Size: t.Size, Tasks: group}, true, nil
	}
	p.open[t.Size] = group
	return Batch{}, false, nil
}

// Flush seals every non-empty size group into a partial batch, in
// ascending size order (the FormBatches tail order), and resets the
// packer for the next round.
func (p *Packer) Flush() []Batch {
	if len(p.open) == 0 {
		return nil
	}
	sizes := make([]int, 0, len(p.open))
	for s := range p.open {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	batches := make([]Batch, 0, len(sizes))
	for _, s := range sizes {
		batches = append(batches, Batch{Size: s, Tasks: p.open[s]})
	}
	p.open = make(map[int][]Task)
	return batches
}

// Pending returns the number of tasks buffered in open (unsealed)
// groups.
func (p *Packer) Pending() int {
	n := 0
	for _, g := range p.open {
		n += len(g)
	}
	return n
}
