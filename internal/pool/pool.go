// Package pool is the repository's single bounded worker-pool
// abstraction. Both hot loops of the system — per-camera work inside a
// pipeline frame and independent experiment points in the harness — fan
// out through pool.Do, so the execution model documented in
// docs/CONCURRENCY.md is implemented in exactly one place.
//
// The contract callers rely on:
//
//   - fn(i) runs exactly once for every i in [0, n), regardless of
//     worker count (the parallel path never short-circuits; see Do for
//     the error rule);
//   - workers == 1 degenerates to a plain inline loop on the calling
//     goroutine — the deterministic sequential reference path;
//   - the returned error is the lowest-index failure, so error
//     reporting is independent of goroutine interleaving.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0) (use the hardware), and the result is capped at
// n, the number of independent work items.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Do runs fn(0), ..., fn(n-1) on at most Workers(workers, n) goroutines
// and returns the error of the lowest failing index, or nil.
//
// With one worker the calls run inline, in index order, and stop at the
// first error — byte-for-byte the behaviour of the loop it replaces.
// With more workers all n calls are executed (work items must therefore
// tolerate siblings failing); indices are handed out in order but may
// complete in any order, so fn must confine its writes to per-index
// state and leave shared merging to the caller.
func Do(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
