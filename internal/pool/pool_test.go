package pool

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	cases := []struct{ workers, n, wantMax int }{
		{1, 10, 1},
		{4, 10, 4},
		{4, 2, 2},   // capped at item count
		{0, 0, 1},   // never below one
		{-3, 5, 5},  // <=0 means GOMAXPROCS, capped at n
		{100, 3, 3}, // capped at n
	}
	for _, c := range cases {
		got := Workers(c.workers, c.n)
		if got < 1 || got > c.wantMax {
			t.Errorf("Workers(%d, %d) = %d, want in [1, %d]", c.workers, c.n, got, c.wantMax)
		}
	}
}

func TestDoRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 100
		counts := make([]atomic.Int32, n)
		err := Do(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: fn(%d) ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoEmpty(t *testing.T) {
	if err := Do(4, 0, func(int) error { return errors.New("called") }); err != nil {
		t.Fatal(err)
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{2, 5} {
		err := Do(workers, 20, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: err = %v, want fail-3", workers, err)
		}
	}
}

func TestDoSequentialStopsAtFirstError(t *testing.T) {
	var ran int
	err := Do(1, 10, func(i int) error {
		ran++
		if i == 4 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if ran != 5 {
		t.Fatalf("sequential path ran %d items after an error, want 5", ran)
	}
}

func TestDoParallelRunsAllDespiteError(t *testing.T) {
	var ran atomic.Int32
	err := Do(4, 10, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got := ran.Load(); got != 10 {
		t.Fatalf("parallel path ran %d items, want all 10", got)
	}
}

// TestDoConcurrentWrites verifies that per-index writes from worker
// goroutines are safe without extra synchronization (exercised by the
// -race CI run).
func TestDoConcurrentWrites(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	if err := Do(8, n, func(i int) error {
		out[i] = i * i
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
