// Sink is the streaming half of the metrics package: where the
// accumulators (RecallAccumulator, LatencySeries, Breakdown) summarize a
// run after it finishes, a Sink observes the run while it happens. The
// pipeline, the cluster scheduler, and camera nodes emit one Snapshot per
// frame (or per scheduling round); long-running deployments attach a sink
// to expose live recall/latency without stopping.
//
// The determinism contract (docs/CONCURRENCY.md) is preserved by
// construction: every Snapshot field emitted by the pipeline is derived
// from the simulation model — the same fields Report.Modeled() keeps —
// assembled in fixed camera order after the per-camera merge. Attaching
// any sink never changes a run's modelled results; the scheduler-side
// RoundLatency field is the only measured (wall-clock) quantity, and only
// the cluster scheduler (not under the contract) sets it.
//
// Sink implementations shipped here are safe for concurrent RecordFrame
// calls: one sink may be shared by several concurrent pipeline runs (the
// experiments fan-out) or scheduler rounds. Lifecycle: RecordFrame any
// number of times, then Flush (durable sinks persist buffered snapshots),
// then — for sinks that own resources — Close, after which RecordFrame
// must not be called again. See docs/OBSERVABILITY.md.
package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Snapshot source labels.
const (
	// SourcePipeline marks per-frame snapshots from an in-process
	// pipeline.Run.
	SourcePipeline = "pipeline"
	// SourceScheduler marks per-round snapshots from the cluster's
	// central scheduler.
	SourceScheduler = "scheduler"
	// SourceNode marks per-frame snapshots from a single camera node
	// runtime.
	SourceNode = "node"
)

// CameraSnapshot is one camera's share of a Snapshot.
type CameraSnapshot struct {
	// Camera is the camera index.
	Camera int `json:"camera"`
	// Latency is the camera's modelled inference latency: this frame's
	// (pipeline/node sources) or the scheduled per-horizon-frame latency
	// of the round's assignment (scheduler source).
	Latency time.Duration `json:"latency_ns"`
	// Batches and Images count the partial-inspection batches launched
	// and regions inspected (this frame, or implied by the round's
	// assignment).
	Batches int `json:"batches,omitempty"`
	Images  int `json:"images,omitempty"`
	// BatchOccupancy is the mean fill fraction of the launched batches
	// (1.0 = every batch at its device limit), 0 when no batches ran.
	BatchOccupancy float64 `json:"batch_occupancy,omitempty"`
	// Assignments is the number of objects the central stage assigned to
	// this camera (scheduler source only).
	Assignments int `json:"assignments,omitempty"`
	// Tracks and Shadows are the camera's live track and shadow counts
	// after the frame (pipeline/node sources).
	Tracks  int `json:"tracks,omitempty"`
	Shadows int `json:"shadows,omitempty"`
}

// Snapshot is one live observation of a running system: a frame of the
// in-process pipeline, a frame of a camera node, or a completed
// scheduling round of the cluster scheduler. Cameras are always in
// ascending camera-index order.
type Snapshot struct {
	// Source is one of SourcePipeline, SourceScheduler, SourceNode.
	Source string `json:"source"`
	// Label identifies the emitting run (e.g. the scheduling mode, an
	// experiment point, or "camera3").
	Label string `json:"label,omitempty"`
	// Seq numbers the snapshots of one emitter from 0, gap-free even
	// when a downstream sink drops snapshots.
	Seq int `json:"seq"`
	// Frame is the frame index (pipeline/node) or the round's key-frame
	// index (scheduler).
	Frame int `json:"frame"`
	// TP, FN and Recall are the cumulative object-recall counters so far
	// (pipeline source; zero elsewhere — nodes cannot see the
	// cross-camera truth denominator).
	TP     int     `json:"tp,omitempty"`
	FN     int     `json:"fn,omitempty"`
	Recall float64 `json:"recall,omitempty"`
	// Detected is the cumulative count of distinct ground-truth objects
	// this emitter has detected (node source).
	Detected int `json:"detected,omitempty"`
	// DegradedFrames is the cumulative count of frames this node has
	// processed in degraded mode — no scheduler assignment, inspecting
	// all of its own tracks under its last-known priority order and
	// masks (node source; see docs/FAULTS.md).
	DegradedFrames int `json:"degraded_frames,omitempty"`
	// Reconnects is the cumulative count of successful scheduler
	// reconnections by this node's client (node source).
	Reconnects int `json:"reconnects,omitempty"`
	// OutageFrames is the cumulative count of camera-frames lost to
	// data-plane faults: frames where a camera was down and produced no
	// observation (pipeline/node), or dead camera-rounds (scheduler).
	// Zero — and absent on the wire — in fault-free runs
	// (docs/FAULTS.md, "Data-plane failure model").
	OutageFrames int `json:"outage_frames,omitempty"`
	// OrphanedObjects is the cumulative count of objects dropped because
	// their owner died and no live camera covers them (pipeline/node).
	OrphanedObjects int `json:"orphaned_objects,omitempty"`
	// Reassignments is the cumulative count of failover ownership
	// transfers: shadow promotions because the owning camera is dead
	// (pipeline/node), or objects re-scheduled away from lease-expired
	// cameras (scheduler).
	Reassignments int `json:"reassignments,omitempty"`
	// IngestedFrames, ShedFrames, and QueueDepth describe a live ingest
	// front-end feeding the engine (pipeline source driven by a
	// pipeline.IngestSource; docs/STREAMING.md §6): the cumulative
	// per-camera frame parts admitted into the bounded queues, the
	// cumulative parts the shed policy dropped, and the total parts still
	// queued after this frame. Zero — and absent on the wire — for trace
	// and replay sources, so recorded fault-free output is unchanged.
	IngestedFrames int `json:"ingested_frames,omitempty"`
	ShedFrames     int `json:"shed_frames,omitempty"`
	QueueDepth     int `json:"queue_depth,omitempty"`
	// AdaptLevel is the degradation-ladder rung in force after this
	// frame or round, AdaptTransitions the cumulative level changes, and
	// SLOViolations the cumulative frames whose modelled latency
	// exceeded the configured SLO (docs/FAULTS.md §10). All zero — and
	// absent on the wire — when the adapt controller is disabled or
	// never engaged, so pre-adapt recorded output is unchanged.
	AdaptLevel       int `json:"adapt_level,omitempty"`
	AdaptTransitions int `json:"adapt_transitions,omitempty"`
	SLOViolations    int `json:"slo_violations,omitempty"`
	// Tenant identifies the serving-pool tenant behind a pipeline
	// snapshot when the engine is coupled to a shared executor pool
	// (pipeline.Config.Serve; docs/SERVING.md). Empty — and absent on
	// the wire — for engines running on private executors, so pre-serve
	// recorded output is unchanged.
	Tenant string `json:"tenant,omitempty"`
	// ExecQueueDepth, ExecSharedBatches, ExecShedTasks, and
	// ExecSLOViolations mirror the shared executor pool's per-tenant
	// counters as of this frame: the batch backlog left past the frame's
	// epoch, the cumulative batches shared with other tenants, the
	// cumulative tasks dropped by pool admission control, and the
	// cumulative epochs priced over this tenant's SLO. All zero — and
	// absent on the wire — without a serve executor.
	ExecQueueDepth    int `json:"exec_queue_depth,omitempty"`
	ExecSharedBatches int `json:"exec_shared_batches,omitempty"`
	ExecShedTasks     int `json:"exec_shed_tasks,omitempty"`
	ExecSLOViolations int `json:"exec_slo_violations,omitempty"`
	// FrameLatency is the frame's modelled system latency: the slowest
	// camera this frame (pipeline/node), or the assignment's scheduled
	// system latency L = max_i L_i (scheduler).
	FrameLatency time.Duration `json:"frame_latency_ns"`
	// RoundLatency is the measured wall-clock cost of the scheduling
	// round — association plus central BALB (scheduler source only).
	// This is the one non-modelled field; it varies host to host.
	RoundLatency time.Duration `json:"round_latency_ns,omitempty"`
	// Objects is the number of associated object groups the round
	// scheduled (scheduler source only).
	Objects int `json:"objects,omitempty"`
	// Partial marks a scheduling round completed without reports from
	// every roster camera — round timeout, lease expiry, disconnect, or
	// a camera that never joined (scheduler source only).
	Partial bool `json:"partial,omitempty"`
	// Cameras holds the per-camera breakdown, ascending camera index.
	Cameras []CameraSnapshot `json:"cameras"`
}

// Sink consumes a stream of snapshots. Implementations must tolerate
// concurrent RecordFrame calls: a single sink may be attached to several
// concurrent pipeline runs. RecordFrame must not block on slow consumers
// — a sink that cannot keep up drops rather than stalls the emitter.
type Sink interface {
	// RecordFrame observes one snapshot. It must be cheap and
	// non-blocking; it must not retain snap.Cameras past the call unless
	// it copies it (emitters hand over a fresh slice per call, so
	// retaining is in fact safe for the emitters in this repository, but
	// sinks should not rely on callers guaranteeing that).
	RecordFrame(snap Snapshot)
	// Flush persists anything buffered and reports the first write error
	// encountered since the previous Flush.
	Flush() error
}

// NopSink discards every snapshot. It is the zero cost default: emitters
// may hold one instead of nil-checking.
type NopSink struct{}

// RecordFrame discards snap.
func (NopSink) RecordFrame(Snapshot) {}

// Flush reports no error.
func (NopSink) Flush() error { return nil }

// ChannelSink forwards periodic snapshots over a channel for a live
// consumer (a dashboard goroutine, a test). Sends never block: when the
// buffer is full the snapshot is dropped and counted, so a stalled
// consumer cannot stall the pipeline.
type ChannelSink struct {
	every   int
	ch      chan Snapshot
	seen    atomic.Int64
	dropped atomic.Int64
	once    sync.Once
}

// NewChannelSink builds a sink that forwards every every-th snapshot
// (every <= 1 forwards all) through a channel with the given buffer
// (buffer <= 0 defaults to 16).
func NewChannelSink(every, buffer int) *ChannelSink {
	if every < 1 {
		every = 1
	}
	if buffer <= 0 {
		buffer = 16
	}
	return &ChannelSink{every: every, ch: make(chan Snapshot, buffer)}
}

// RecordFrame forwards snap if it falls on the sink's period and the
// buffer has room; otherwise it is dropped (and counted, for periods
// that matched).
func (s *ChannelSink) RecordFrame(snap Snapshot) {
	n := s.seen.Add(1)
	if (n-1)%int64(s.every) != 0 {
		return
	}
	select {
	case s.ch <- snap:
	default:
		s.dropped.Add(1)
	}
}

// Flush reports no error; channel sends are synchronous or dropped.
func (s *ChannelSink) Flush() error { return nil }

// Snapshots is the consumer side of the sink.
func (s *ChannelSink) Snapshots() <-chan Snapshot { return s.ch }

// Dropped returns how many period-matching snapshots were discarded
// because the buffer was full.
func (s *ChannelSink) Dropped() int64 { return s.dropped.Load() }

// Close closes the channel, signalling the consumer that no more
// snapshots will arrive. The emitter must have stopped calling
// RecordFrame first (the sink lifecycle, docs/OBSERVABILITY.md).
func (s *ChannelSink) Close() { s.once.Do(func() { close(s.ch) }) }

// JSONLSink appends snapshots to a writer as JSON Lines — one snapshot
// object per line, the schema of docs/OBSERVABILITY.md. Writes are
// buffered; Flush (or Close) persists them. Write errors are sticky:
// after the first failure subsequent snapshots are discarded and the
// error is reported by the next Flush.
type JSONLSink struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewJSONLSink wraps an open writer. The caller keeps ownership of the
// writer; Close only flushes.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	return &JSONLSink{bw: bw, enc: json.NewEncoder(bw)}
}

// OpenJSONL opens (appending, creating if needed) a snapshot log file.
// The returned sink owns the file; Close flushes and closes it.
func OpenJSONL(path string) (*JSONLSink, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metrics: open jsonl: %w", err)
	}
	s := NewJSONLSink(f)
	s.c = f
	return s, nil
}

// RecordFrame appends one JSON line.
func (s *JSONLSink) RecordFrame(snap Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(snap)
}

// Flush writes buffered lines through and returns the sticky error, if
// any.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}

// Close flushes and, when the sink owns its file (OpenJSONL), closes it.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.c != nil {
		if cerr := s.c.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.c = nil
	}
	return err
}

// Multi fans every snapshot out to all given sinks (nils are skipped).
// Flush flushes all and returns the first error.
func Multi(sinks ...Sink) Sink {
	kept := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		return NopSink{}
	}
	if len(kept) == 1 {
		return kept[0]
	}
	return kept
}

type multiSink []Sink

func (m multiSink) RecordFrame(snap Snapshot) {
	for _, s := range m {
		s.RecordFrame(snap)
	}
}

func (m multiSink) Flush() error {
	var first error
	for _, s := range m {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
