package metrics

import "time"

// Round is one scheduling round's decision record: the central stage's
// priority order and per-camera assignment counts at a key frame. Where
// a Snapshot reports *outcomes* (recall, latency), a Round persists the
// *decision* that produced them, so a recorded run can be audited or
// re-driven under a different scheduler (docs/STREAMING.md). Rounds are
// emitted by the in-process engine (pipeline source) and by the cluster
// scheduler (scheduler source, one per shard round loop).
type Round struct {
	// Source is SourcePipeline or SourceScheduler.
	Source string `json:"source"`
	// Label identifies the emitting run (mode name, or "shard<N>").
	Label string `json:"label,omitempty"`
	// Seq numbers the rounds of one emitter from 0.
	Seq int `json:"seq"`
	// Frame is the round's key-frame index (pipeline: trace index;
	// scheduler: wire frame index).
	Frame int `json:"frame"`
	// Objects is the number of associated object groups scheduled.
	Objects int `json:"objects,omitempty"`
	// Shards is the shard count when the round was composed from a
	// sharded central stage (0 = unsharded).
	Shards int `json:"shards,omitempty"`
	// Priority is the distributed stage's ownership-claim order for the
	// horizon: global camera indices, highest priority first.
	Priority []int `json:"priority"`
	// Assigned is the number of objects assigned to each camera, indexed
	// by global camera index. Its length is the emitter's roster extent:
	// the fleet size for the pipeline engine, the highest camera index a
	// shard saw plus one for a (possibly sharded) scheduler.
	Assigned []int `json:"assigned,omitempty"`
	// Partial marks a round completed without reports from every roster
	// camera (scheduler source only).
	Partial bool `json:"partial,omitempty"`
	// Reassignments and Orphaned are the emitter's cumulative failover
	// counters as of this round (see Snapshot for their definitions).
	Reassignments int `json:"reassignments,omitempty"`
	Orphaned      int `json:"orphaned_objects,omitempty"`
	// RoundLatency is the measured wall-clock cost of the round
	// (scheduler source only; never set by the deterministic engine).
	RoundLatency time.Duration `json:"round_latency_ns,omitempty"`
}

// RoundSink consumes a stream of round records. Implementations must
// tolerate concurrent RecordRound calls (sharded schedulers emit from
// one goroutine per shard) and must not block on slow consumers.
type RoundSink interface {
	RecordRound(Round)
}
