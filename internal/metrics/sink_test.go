package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// testSnapshot builds a fully populated snapshot so round-trip tests
// cover every field.
func testSnapshot(seq int) Snapshot {
	return Snapshot{
		Source:       SourcePipeline,
		Label:        "modes/BALB",
		Seq:          seq,
		Frame:        seq,
		TP:           10,
		FN:           2,
		Recall:       10.0 / 12.0,
		FrameLatency: 42 * time.Millisecond,
		Cameras: []CameraSnapshot{
			{Camera: 0, Latency: 42 * time.Millisecond, Batches: 3, Images: 7, BatchOccupancy: 0.6, Tracks: 5, Shadows: 1},
			{Camera: 1, Latency: 17 * time.Millisecond, Batches: 1, Images: 2, BatchOccupancy: 0.25, Tracks: 2},
		},
	}
}

func TestChannelSinkForwardsAll(t *testing.T) {
	s := NewChannelSink(1, 8)
	for i := 0; i < 5; i++ {
		s.RecordFrame(testSnapshot(i))
	}
	s.Close()
	var got []int
	for snap := range s.Snapshots() {
		got = append(got, snap.Seq)
	}
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("seqs = %v", got)
	}
	if s.Dropped() != 0 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
}

func TestChannelSinkPeriod(t *testing.T) {
	s := NewChannelSink(10, 8)
	for i := 0; i < 25; i++ {
		s.RecordFrame(testSnapshot(i))
	}
	s.Close()
	var got []int
	for snap := range s.Snapshots() {
		got = append(got, snap.Seq)
	}
	if !reflect.DeepEqual(got, []int{0, 10, 20}) {
		t.Fatalf("seqs = %v", got)
	}
}

func TestChannelSinkDropsWhenFull(t *testing.T) {
	s := NewChannelSink(1, 2)
	for i := 0; i < 5; i++ {
		s.RecordFrame(testSnapshot(i)) // no consumer: only 2 fit
	}
	if s.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", s.Dropped())
	}
	s.Close()
	n := 0
	for range s.Snapshots() {
		n++
	}
	if n != 2 {
		t.Fatalf("delivered = %d, want 2", n)
	}
	s.Close() // idempotent
}

func TestChannelSinkConcurrentRecord(t *testing.T) {
	s := NewChannelSink(1, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.RecordFrame(testSnapshot(g*100 + i))
			}
		}(g)
	}
	wg.Wait()
	s.Close()
	n := int64(0)
	for range s.Snapshots() {
		n++
	}
	if n+s.Dropped() != 800 {
		t.Fatalf("delivered %d + dropped %d != 800", n, s.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	want := []Snapshot{testSnapshot(0), testSnapshot(1)}
	for _, snap := range want {
		s.RecordFrame(snap)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, line := range lines {
		var got Snapshot
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("line %d round-trip:\ngot  %+v\nwant %+v", i, got, want[i])
		}
	}
}

// TestJSONLSchemaGolden pins the wire schema: field names and duration
// encoding (integer nanoseconds) are a contract with external consumers
// — changing them silently would break dashboards reading the log.
func TestJSONLSchemaGolden(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.RecordFrame(Snapshot{
		Source:       SourceScheduler,
		Label:        "S2",
		Seq:          3,
		Frame:        40,
		FrameLatency: 5 * time.Millisecond,
		RoundLatency: 250 * time.Microsecond,
		Objects:      9,
		Cameras: []CameraSnapshot{
			{Camera: 0, Latency: 5 * time.Millisecond, Batches: 2, Images: 5, BatchOccupancy: 0.625, Assignments: 5},
		},
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"source":"scheduler","label":"S2","seq":3,"frame":40,"frame_latency_ns":5000000,"round_latency_ns":250000,"objects":9,"cameras":[{"camera":0,"latency_ns":5000000,"batches":2,"images":5,"batch_occupancy":0.625,"assignments":5}]}`
	if got := strings.TrimSpace(buf.String()); got != want {
		t.Fatalf("schema drifted:\ngot  %s\nwant %s", got, want)
	}
}

// TestJSONLSchemaGoldenResilience pins the fault-tolerance fields added
// alongside degraded mode: they are omitempty, so the legacy golden line
// above stays bit-identical when faults never fire, and they serialize
// under these exact names when they do.
func TestJSONLSchemaGoldenResilience(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.RecordFrame(Snapshot{
		Source:         SourceNode,
		Label:          "camera1",
		Seq:            2,
		Frame:          11,
		Detected:       4,
		DegradedFrames: 6,
		Reconnects:     2,
		FrameLatency:   3 * time.Millisecond,
		Partial:        true,
		Cameras: []CameraSnapshot{
			{Camera: 1, Latency: 3 * time.Millisecond, Tracks: 4},
		},
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"source":"node","label":"camera1","seq":2,"frame":11,"detected":4,"degraded_frames":6,"reconnects":2,"frame_latency_ns":3000000,"partial":true,"cameras":[{"camera":1,"latency_ns":3000000,"tracks":4}]}`
	if got := strings.TrimSpace(buf.String()); got != want {
		t.Fatalf("schema drifted:\ngot  %s\nwant %s", got, want)
	}
}

// TestJSONLSchemaGoldenCamFaults pins the data-plane fault counters
// (PR "camera outages"): omitempty, so the fault-free golden lines in
// the two tests above stay bit-identical — asserted explicitly here —
// and these exact names appear when faults fire.
func TestJSONLSchemaGoldenCamFaults(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.RecordFrame(Snapshot{
		Source:          SourcePipeline,
		Label:           "chaos/r=0.1/fo",
		Seq:             7,
		Frame:           30,
		TP:              12,
		FN:              3,
		Recall:          0.8,
		OutageFrames:    5,
		OrphanedObjects: 1,
		Reassignments:   2,
		FrameLatency:    4 * time.Millisecond,
		Cameras: []CameraSnapshot{
			{Camera: 0, Latency: 4 * time.Millisecond, Tracks: 3},
		},
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"source":"pipeline","label":"chaos/r=0.1/fo","seq":7,"frame":30,"tp":12,"fn":3,"recall":0.8,"outage_frames":5,"orphaned_objects":1,"reassignments":2,"frame_latency_ns":4000000,"cameras":[{"camera":0,"latency_ns":4000000,"tracks":3}]}`
	if got := strings.TrimSpace(buf.String()); got != want {
		t.Fatalf("schema drifted:\ngot  %s\nwant %s", got, want)
	}

	// Fault-free runs must emit none of the fault keys: re-encode the
	// golden snapshots from the two tests above and scan for them.
	buf.Reset()
	s2 := NewJSONLSink(&buf)
	s2.RecordFrame(Snapshot{
		Source: SourceScheduler, Label: "S2", Seq: 3, Frame: 40,
		FrameLatency: 5 * time.Millisecond, RoundLatency: 250 * time.Microsecond, Objects: 9,
		Cameras: []CameraSnapshot{{Camera: 0, Latency: 5 * time.Millisecond}},
	})
	s2.RecordFrame(Snapshot{
		Source: SourceNode, Label: "camera1", Seq: 2, Frame: 11, Detected: 4,
		FrameLatency: 3 * time.Millisecond,
		Cameras:      []CameraSnapshot{{Camera: 1, Latency: 3 * time.Millisecond}},
	})
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"outage_frames", "orphaned_objects", "reassignments"} {
		if strings.Contains(buf.String(), key) {
			t.Fatalf("fault-free snapshot leaked %q:\n%s", key, buf.String())
		}
	}
}

// TestJSONLSchemaGoldenIngest pins the live-ingest counters
// (docs/STREAMING.md §6): omitempty, so trace- and replay-driven runs —
// including every golden line in the tests above — stay bit-identical,
// and these exact names appear when an IngestSource feeds the engine.
func TestJSONLSchemaGoldenIngest(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.RecordFrame(Snapshot{
		Source:         SourcePipeline,
		Label:          "ingest/drop-oldest",
		Seq:            5,
		Frame:          20,
		TP:             8,
		FN:             2,
		Recall:         0.8,
		IngestedFrames: 64,
		ShedFrames:     16,
		QueueDepth:     4,
		FrameLatency:   2 * time.Millisecond,
		Cameras: []CameraSnapshot{
			{Camera: 0, Latency: 2 * time.Millisecond, Tracks: 2},
		},
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"source":"pipeline","label":"ingest/drop-oldest","seq":5,"frame":20,"tp":8,"fn":2,"recall":0.8,"ingested_frames":64,"shed_frames":16,"queue_depth":4,"frame_latency_ns":2000000,"cameras":[{"camera":0,"latency_ns":2000000,"tracks":2}]}`
	if got := strings.TrimSpace(buf.String()); got != want {
		t.Fatalf("schema drifted:\ngot  %s\nwant %s", got, want)
	}

	// Non-ingest (trace/replay) runs must emit none of the ingest keys:
	// re-encode a representative fault-free pipeline snapshot and scan.
	buf.Reset()
	s2 := NewJSONLSink(&buf)
	s2.RecordFrame(Snapshot{
		Source: SourcePipeline, Label: "balb", Seq: 1, Frame: 1,
		TP: 4, FN: 1, Recall: 0.8, FrameLatency: 2 * time.Millisecond,
		Cameras: []CameraSnapshot{{Camera: 0, Latency: 2 * time.Millisecond}},
	})
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ingested_frames", "shed_frames", "queue_depth"} {
		if strings.Contains(buf.String(), key) {
			t.Fatalf("non-ingest snapshot leaked %q:\n%s", key, buf.String())
		}
	}
}

// TestJSONLSchemaGoldenAdapt pins the degradation-control-loop fields
// (docs/FAULTS.md §10): omitempty, so runs with the controller disabled
// or never engaged — including every golden line in the tests above —
// stay bit-identical, and these exact names appear once the ladder
// moves off level 0.
func TestJSONLSchemaGoldenAdapt(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.RecordFrame(Snapshot{
		Source:           SourcePipeline,
		Label:            "adapt/on/load=4",
		Seq:              9,
		Frame:            50,
		TP:               6,
		FN:               2,
		Recall:           0.75,
		QueueDepth:       72,
		AdaptLevel:       2,
		AdaptTransitions: 3,
		SLOViolations:    5,
		FrameLatency:     6 * time.Millisecond,
		Cameras: []CameraSnapshot{
			{Camera: 0, Latency: 6 * time.Millisecond, Tracks: 2},
		},
	})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"source":"pipeline","label":"adapt/on/load=4","seq":9,"frame":50,"tp":6,"fn":2,"recall":0.75,"queue_depth":72,"adapt_level":2,"adapt_transitions":3,"slo_violations":5,"frame_latency_ns":6000000,"cameras":[{"camera":0,"latency_ns":6000000,"tracks":2}]}`
	if got := strings.TrimSpace(buf.String()); got != want {
		t.Fatalf("schema drifted:\ngot  %s\nwant %s", got, want)
	}

	// Undegraded runs must emit none of the adapt keys: re-encode a
	// representative level-0 pipeline snapshot and scan.
	buf.Reset()
	s2 := NewJSONLSink(&buf)
	s2.RecordFrame(Snapshot{
		Source: SourcePipeline, Label: "balb", Seq: 1, Frame: 1,
		TP: 4, FN: 1, Recall: 0.8, FrameLatency: 2 * time.Millisecond,
		Cameras: []CameraSnapshot{{Camera: 0, Latency: 2 * time.Millisecond}},
	})
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"adapt_level", "adapt_transitions", "slo_violations"} {
		if strings.Contains(buf.String(), key) {
			t.Fatalf("undegraded snapshot leaked %q:\n%s", key, buf.String())
		}
	}
}

func TestJSONLOpenAppendClose(t *testing.T) {
	path := t.TempDir() + "/snaps.jsonl"
	for round := 0; round < 2; round++ {
		s, err := OpenJSONL(path)
		if err != nil {
			t.Fatal(err)
		}
		s.RecordFrame(testSnapshot(round))
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := OpenJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("appended lines = %d, want 2", len(lines))
	}
}

func TestMulti(t *testing.T) {
	if _, ok := Multi().(NopSink); !ok {
		t.Fatal("Multi() should collapse to NopSink")
	}
	if _, ok := Multi(nil, nil).(NopSink); !ok {
		t.Fatal("Multi(nil, nil) should collapse to NopSink")
	}
	one := NewChannelSink(1, 4)
	if Multi(nil, one) != Sink(one) {
		t.Fatal("Multi with one sink should return it unwrapped")
	}
	two := NewChannelSink(1, 4)
	m := Multi(one, two)
	m.RecordFrame(testSnapshot(0))
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	one.Close()
	two.Close()
	if n := len(one.Snapshots()); n != 1 {
		t.Fatalf("first sink got %d snapshots", n)
	}
	if n := len(two.Snapshots()); n != 1 {
		t.Fatalf("second sink got %d snapshots", n)
	}
}

func TestLatestSinkHTTP(t *testing.T) {
	latest := &LatestSink{}
	rec := httptest.NewRecorder()
	latest.ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != 404 {
		t.Fatalf("empty sink status = %d, want 404", rec.Code)
	}

	want := testSnapshot(7)
	latest.RecordFrame(testSnapshot(3))
	latest.RecordFrame(want) // only the latest is retained
	if err := latest.Flush(); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	latest.ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("served snapshot:\ngot  %+v\nwant %+v", got, want)
	}
	if snap, ok := latest.Latest(); !ok || snap.Seq != 7 {
		t.Fatalf("Latest() = %+v, %v", snap, ok)
	}
}

func TestOpenExport(t *testing.T) {
	// Zero config: a NopSink and a no-op Close.
	e, err := OpenExport("", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Sink.(NopSink); !ok {
		t.Fatalf("zero-config sink = %T, want NopSink", e.Sink)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	path := t.TempDir() + "/export.jsonl"
	e, err = OpenExport("127.0.0.1:0", path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Addr == "" {
		t.Fatal("no bound address reported")
	}
	e.Sink.RecordFrame(testSnapshot(0))
	if snap, ok := e.Latest.Latest(); !ok || snap.Seq != 0 {
		t.Fatalf("latest = %+v, %v", snap, ok)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"source":"pipeline"`) {
		t.Fatalf("jsonl file missing snapshot: %q", raw)
	}
}

func TestNopSink(t *testing.T) {
	var s NopSink
	s.RecordFrame(testSnapshot(0))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
}
