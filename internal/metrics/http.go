package metrics

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// LatestSink retains the most recent snapshot and serves it as JSON over
// HTTP — the /metricsz endpoint of the long-running binaries. It is safe
// for concurrent RecordFrame and ServeHTTP calls.
type LatestSink struct {
	mu     sync.RWMutex
	latest Snapshot
	ok     bool
}

// RecordFrame replaces the retained snapshot.
func (s *LatestSink) RecordFrame(snap Snapshot) {
	s.mu.Lock()
	s.latest = snap
	s.ok = true
	s.mu.Unlock()
}

// Flush reports no error; the latest snapshot needs no persistence.
func (s *LatestSink) Flush() error { return nil }

// Latest returns the retained snapshot and whether one has arrived yet.
func (s *LatestSink) Latest() (Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.latest, s.ok
}

// ServeHTTP writes the latest snapshot as a JSON document, or 404 until
// the first snapshot arrives.
func (s *LatestSink) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap, ok := s.Latest()
	if !ok {
		http.Error(w, "no snapshot recorded yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// Export is the live-metrics stack a binary assembles from its
// -metrics-addr / -metrics-jsonl flags: a LatestSink served at
// <addr>/metricsz, a JSONL append log, either, or neither. Sink is never
// nil — with both flags empty it is a NopSink, so callers attach it
// unconditionally.
type Export struct {
	// Sink fans out to every configured destination.
	Sink Sink
	// Latest backs the HTTP endpoint; nil unless an address was given.
	Latest *LatestSink
	// Addr is the bound address of the HTTP server ("" when disabled) —
	// useful when the caller asked for port 0.
	Addr string

	srv   *http.Server
	jsonl *JSONLSink
}

// OpenExport builds the export stack. httpAddr != "" starts an HTTP
// server on that address serving the latest snapshot at /metricsz;
// jsonlPath != "" appends every snapshot to that file. Close releases
// both.
func OpenExport(httpAddr, jsonlPath string) (*Export, error) {
	e := &Export{}
	var sinks []Sink
	if jsonlPath != "" {
		js, err := OpenJSONL(jsonlPath)
		if err != nil {
			return nil, err
		}
		e.jsonl = js
		sinks = append(sinks, js)
	}
	if httpAddr != "" {
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			if e.jsonl != nil {
				_ = e.jsonl.Close()
			}
			return nil, fmt.Errorf("metrics: listen %s: %w", httpAddr, err)
		}
		e.Latest = &LatestSink{}
		mux := http.NewServeMux()
		mux.Handle("/metricsz", e.Latest)
		e.srv = &http.Server{Handler: mux}
		e.Addr = ln.Addr().String()
		go func() { _ = e.srv.Serve(ln) }()
		sinks = append(sinks, e.Latest)
	}
	e.Sink = Multi(sinks...)
	return e, nil
}

// Close flushes and closes the JSONL log and shuts the HTTP server down.
// It is safe on a zero-config export.
func (e *Export) Close() error {
	var first error
	if e.jsonl != nil {
		if err := e.jsonl.Close(); err != nil {
			first = err
		}
	}
	if e.srv != nil {
		if err := e.srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
