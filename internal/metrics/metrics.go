// Package metrics implements the evaluation quantities the paper
// reports: object recall (Fig. 12), per-frame inference latency on the
// slowest camera (Fig. 13), speedups, overhead breakdowns (Table II),
// and simple descriptive statistics over time series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// RecallAccumulator computes the paper's object recall: "at every
// timestamp, for each groundtruth object, as long as there is at least
// one camera detects it, then it is counted as a true positive" — the
// denominator being objects visible to at least one camera.
type RecallAccumulator struct {
	tp int
	fn int
}

// Observe records one frame: truth is the set of objects visible to at
// least one camera; detected is the set of objects tracked/detected by at
// least one camera this frame.
func (r *RecallAccumulator) Observe(truth map[int]bool, detected map[int]bool) {
	for id := range truth {
		if detected[id] {
			r.tp++
		} else {
			r.fn++
		}
	}
}

// Recall returns TP / (TP + FN), or 1 when nothing was ever visible.
func (r *RecallAccumulator) Recall() float64 {
	if r.tp+r.fn == 0 {
		return 1
	}
	return float64(r.tp) / float64(r.tp+r.fn)
}

// Counts returns the raw true-positive / false-negative counts.
func (r *RecallAccumulator) Counts() (tp, fn int) { return r.tp, r.fn }

// LatencySeries accumulates a per-frame latency series (one value per
// frame: the slowest camera's inference latency).
type LatencySeries struct {
	values []time.Duration
}

// Add appends one frame's latency.
func (l *LatencySeries) Add(d time.Duration) { l.values = append(l.values, d) }

// Len returns the number of recorded frames.
func (l *LatencySeries) Len() int { return len(l.values) }

// Mean returns the average latency, or 0 when empty.
func (l *LatencySeries) Mean() time.Duration {
	if len(l.values) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range l.values {
		sum += v
	}
	return sum / time.Duration(len(l.values))
}

// Max returns the maximum latency, or 0 when empty.
func (l *LatencySeries) Max() time.Duration {
	var max time.Duration
	for _, v := range l.values {
		if v > max {
			max = v
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 < p <= 100) by
// nearest-rank, or 0 when empty.
func (l *LatencySeries) Percentile(p float64) (time.Duration, error) {
	if p <= 0 || p > 100 {
		return 0, fmt.Errorf("metrics: percentile %v out of (0,100]", p)
	}
	if len(l.values) == 0 {
		return 0, nil
	}
	sorted := append([]time.Duration(nil), l.values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank], nil
}

// Values returns a copy of the recorded series.
func (l *LatencySeries) Values() []time.Duration {
	return append([]time.Duration(nil), l.values...)
}

// Speedup returns baseline/improved as a multiplicative factor (e.g.
// full-frame latency over BALB latency), or an error when improved is
// non-positive.
func Speedup(baseline, improved time.Duration) (float64, error) {
	if improved <= 0 {
		return 0, fmt.Errorf("metrics: non-positive improved latency %v", improved)
	}
	return float64(baseline) / float64(improved), nil
}

// Breakdown accumulates the per-frame overhead of named framework
// components (Table II): for each component, the maximum across cameras
// is recorded per frame, then averaged across frames.
type Breakdown struct {
	perFrame map[string][]time.Duration
	current  map[string]time.Duration
}

// NewBreakdown returns an empty breakdown accumulator.
func NewBreakdown() *Breakdown {
	return &Breakdown{
		perFrame: make(map[string][]time.Duration),
		current:  make(map[string]time.Duration),
	}
}

// ObserveCamera records component's cost on one camera in the current
// frame; the per-frame figure keeps the maximum across cameras.
func (b *Breakdown) ObserveCamera(component string, d time.Duration) {
	if d > b.current[component] {
		b.current[component] = d
	}
}

// EndFrame seals the current frame: every component observed this frame
// contributes its cross-camera maximum to the running series.
func (b *Breakdown) EndFrame() {
	for comp, d := range b.current {
		b.perFrame[comp] = append(b.perFrame[comp], d)
	}
	b.current = make(map[string]time.Duration)
}

// CameraSample holds one camera's component observations for a single
// frame. It is the per-worker shard of a Breakdown: a goroutine running
// one camera's share of a frame records into its own CameraSample with
// no synchronization, and the pipeline folds the samples into the
// Breakdown afterwards, in fixed camera order, with Absorb. A
// CameraSample must not be shared across goroutines.
type CameraSample struct {
	durations map[string]time.Duration
}

// Observe records one component cost on this camera; repeated
// observations of the same component within the frame keep the maximum,
// matching Breakdown.ObserveCamera.
func (s *CameraSample) Observe(component string, d time.Duration) {
	if s.durations == nil {
		s.durations = make(map[string]time.Duration)
	}
	if d > s.durations[component] {
		s.durations[component] = d
	}
}

// Absorb folds a camera's frame sample into the current frame, exactly
// as if ObserveCamera had been called for each component. Absorb (like
// every Breakdown method) must be called from a single goroutine; the
// concurrency boundary is the CameraSample, not the Breakdown.
func (b *Breakdown) Absorb(s *CameraSample) {
	if s == nil {
		return
	}
	for comp, d := range s.durations {
		b.ObserveCamera(comp, d)
	}
}

// MeanOf returns the mean per-frame overhead of a component, or 0 if it
// was never observed.
func (b *Breakdown) MeanOf(component string) time.Duration {
	vs := b.perFrame[component]
	if len(vs) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range vs {
		sum += v
	}
	return sum / time.Duration(len(vs))
}

// Components returns the observed component names, sorted.
func (b *Breakdown) Components() []string {
	out := make([]string, 0, len(b.perFrame))
	for c := range b.perFrame {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Total returns the sum of all component means.
func (b *Breakdown) Total() time.Duration {
	var sum time.Duration
	for _, c := range b.Components() {
		sum += b.MeanOf(c)
	}
	return sum
}
