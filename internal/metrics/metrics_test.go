package metrics

import (
	"testing"
	"time"
)

func TestRecallAccumulator(t *testing.T) {
	var r RecallAccumulator
	r.Observe(map[int]bool{1: true, 2: true}, map[int]bool{1: true})
	r.Observe(map[int]bool{1: true}, map[int]bool{1: true})
	tp, fn := r.Counts()
	if tp != 2 || fn != 1 {
		t.Fatalf("tp=%d fn=%d", tp, fn)
	}
	if got := r.Recall(); got < 0.66 || got > 0.67 {
		t.Fatalf("recall = %v", got)
	}
}

func TestRecallEmptyIsPerfect(t *testing.T) {
	var r RecallAccumulator
	if r.Recall() != 1 {
		t.Fatalf("empty recall = %v", r.Recall())
	}
	r.Observe(nil, nil)
	if r.Recall() != 1 {
		t.Fatal("no-truth frames should not hurt recall")
	}
}

func TestRecallIgnoresExtraDetections(t *testing.T) {
	var r RecallAccumulator
	// Detections for objects not in truth (e.g. ghosts) do not help or
	// hurt recall.
	r.Observe(map[int]bool{1: true}, map[int]bool{1: true, 99: true})
	if r.Recall() != 1 {
		t.Fatalf("recall = %v", r.Recall())
	}
}

func TestLatencySeriesStats(t *testing.T) {
	var l LatencySeries
	if l.Mean() != 0 || l.Max() != 0 || l.Len() != 0 {
		t.Fatal("empty series not zero")
	}
	for _, v := range []time.Duration{10, 20, 30} {
		l.Add(v * time.Millisecond)
	}
	if l.Mean() != 20*time.Millisecond {
		t.Fatalf("mean = %v", l.Mean())
	}
	if l.Max() != 30*time.Millisecond {
		t.Fatalf("max = %v", l.Max())
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
	vs := l.Values()
	vs[0] = 0
	if l.Mean() != 20*time.Millisecond {
		t.Fatal("Values aliases internal slice")
	}
}

func TestPercentile(t *testing.T) {
	var l LatencySeries
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i))
	}
	p50, err := l.Percentile(50)
	if err != nil || p50 != 50 {
		t.Fatalf("p50 = %v %v", p50, err)
	}
	p99, err := l.Percentile(99)
	if err != nil || p99 != 99 {
		t.Fatalf("p99 = %v %v", p99, err)
	}
	p100, err := l.Percentile(100)
	if err != nil || p100 != 100 {
		t.Fatalf("p100 = %v %v", p100, err)
	}
	if _, err := l.Percentile(0); err == nil {
		t.Fatal("p0 accepted")
	}
	if _, err := l.Percentile(101); err == nil {
		t.Fatal("p101 accepted")
	}
	var empty LatencySeries
	if v, err := empty.Percentile(50); err != nil || v != 0 {
		t.Fatalf("empty percentile = %v %v", v, err)
	}
}

func TestSpeedup(t *testing.T) {
	s, err := Speedup(600*time.Millisecond, 100*time.Millisecond)
	if err != nil || s != 6 {
		t.Fatalf("speedup = %v %v", s, err)
	}
	if _, err := Speedup(time.Second, 0); err == nil {
		t.Fatal("zero improved accepted")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown()
	// Frame 1: tracking costs 10ms on cam A, 20ms on cam B -> max 20.
	b.ObserveCamera("tracking", 10*time.Millisecond)
	b.ObserveCamera("tracking", 20*time.Millisecond)
	b.ObserveCamera("batching", 5*time.Millisecond)
	b.EndFrame()
	// Frame 2: tracking 30ms.
	b.ObserveCamera("tracking", 30*time.Millisecond)
	b.EndFrame()
	if got := b.MeanOf("tracking"); got != 25*time.Millisecond {
		t.Fatalf("tracking mean = %v", got)
	}
	if got := b.MeanOf("batching"); got != 5*time.Millisecond {
		t.Fatalf("batching mean = %v", got)
	}
	if got := b.MeanOf("absent"); got != 0 {
		t.Fatalf("absent mean = %v", got)
	}
	comps := b.Components()
	if len(comps) != 2 || comps[0] != "batching" || comps[1] != "tracking" {
		t.Fatalf("components = %v", comps)
	}
	if b.Total() != 30*time.Millisecond {
		t.Fatalf("total = %v", b.Total())
	}
}

// TestCameraSampleAbsorb checks the per-worker shard path is equivalent
// to calling ObserveCamera directly: max within a camera's frame, max
// across cameras, mean across frames.
func TestCameraSampleAbsorb(t *testing.T) {
	direct := NewBreakdown()
	direct.ObserveCamera("tracking", 4*time.Millisecond)
	direct.ObserveCamera("tracking", 2*time.Millisecond)
	direct.ObserveCamera("batching", 1*time.Millisecond)
	direct.ObserveCamera("tracking", 6*time.Millisecond)
	direct.EndFrame()

	sharded := NewBreakdown()
	var cam0, cam1 CameraSample
	cam0.Observe("tracking", 4*time.Millisecond)
	cam0.Observe("tracking", 2*time.Millisecond) // within-camera max, not sum
	cam0.Observe("batching", 1*time.Millisecond)
	cam1.Observe("tracking", 6*time.Millisecond)
	sharded.Absorb(&cam0)
	sharded.Absorb(&cam1)
	sharded.EndFrame()

	for _, comp := range []string{"tracking", "batching"} {
		if got, want := sharded.MeanOf(comp), direct.MeanOf(comp); got != want {
			t.Errorf("%s: sharded %v != direct %v", comp, got, want)
		}
	}
	if got := sharded.MeanOf("tracking"); got != 6*time.Millisecond {
		t.Errorf("tracking mean = %v, want 6ms", got)
	}
}

func TestAbsorbEmptyAndNil(t *testing.T) {
	b := NewBreakdown()
	b.Absorb(nil)
	b.Absorb(&CameraSample{})
	b.EndFrame()
	if got := b.Components(); len(got) != 0 {
		t.Fatalf("components = %v, want none", got)
	}
}
