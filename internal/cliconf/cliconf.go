// Package cliconf holds the flag groups shared by the mv* commands, so
// every binary exposes the identical -workers / -metrics-addr /
// -metrics-jsonl / -cam-faults / -health-k / -record matrix instead of
// four hand-rolled copies (the README flag table is the source of
// truth). Each command registers the shared group once, parses, and
// turns the values into the config objects of the layer it drives:
// metrics.OpenExport for the observability flags, camfault.Generate for
// the fault flags, store.Create for -record, and ParseMode for the
// scheduler-mode names.
package cliconf

import (
	"flag"
	"fmt"
	"net"
	"time"

	"mvs/internal/adapt"
	"mvs/internal/camfault"
	"mvs/internal/metrics"
	"mvs/internal/pipeline"
	"mvs/internal/scene"
	"mvs/internal/store"
)

// Shared is the flag matrix common to mvsim, mvexp, mvscheduler, and
// mvnode; mvserve registers the RegisterCore subset and mvreplay a
// hand-rolled one. Fields are filled by fs.Parse after Register.
type Shared struct {
	// Workers bounds each binary's fan-outs (0 = GOMAXPROCS,
	// 1 = sequential); modelled results are identical for every value
	// (docs/CONCURRENCY.md, docs/SCALING.md).
	Workers int
	// MetricsAddr and MetricsJSONL are the live-export knobs
	// (docs/OBSERVABILITY.md).
	MetricsAddr  string
	MetricsJSONL string
	// CamFaults is the camera-outage schedule spec (docs/FAULTS.md);
	// empty disables injection. HealthK is the dead-camera silence
	// threshold (0 disables failover).
	CamFaults string
	HealthK   int
	// Record is the run-store directory (docs/STREAMING.md); empty
	// disables recording.
	Record string
	// StoreFsync, StoreKeep, and StoreKeepDur tune the -record store's
	// durability and retention (store.Options; docs/STREAMING.md §5).
	// Count and age bounds share one pruning path; both apply when both
	// are set.
	StoreFsync   string
	StoreKeep    int
	StoreKeepDur time.Duration
	// Adapt is the degradation-control-loop spec (adapt.ParseSpec
	// syntax, docs/FAULTS.md §10); empty disables the controller.
	Adapt string
	// IngestAddr, when set, makes the binary listen for live frame
	// parts (pipeline.IngestSource) instead of generating a trace;
	// ShedPolicy picks what its admission queues drop under overload
	// (docs/STREAMING.md §6).
	IngestAddr string
	ShedPolicy string
}

// Register installs the shared matrix on fs. workersHelp tailors the
// -workers usage line to the binary's fan-outs ("per-camera",
// "experiment/camera", ...).
func Register(fs *flag.FlagSet, workersHelp string) *Shared {
	s := RegisterCore(fs, workersHelp)
	fs.StringVar(&s.Record, "record", "", "record this run into a run-store directory (see docs/STREAMING.md)")
	fs.StringVar(&s.StoreFsync, "store-fsync", "never", "-record durability policy: never, interval, every-record")
	fs.IntVar(&s.StoreKeep, "store-keep-segments", 0, "-record frame-log retention: keep only the newest N segments (0 = unlimited)")
	fs.DurationVar(&s.StoreKeepDur, "store-keep-duration", 0, "-record frame-log retention by age: drop segments older than this (0 = unlimited)")
	fs.StringVar(&s.IngestAddr, "ingest-addr", "", "listen for live length-prefixed frame parts on this address instead of generating a trace (e.g. :7100; push with mvingest)")
	fs.StringVar(&s.ShedPolicy, "shed-policy", "drop-oldest", "ingest overload shedding: drop-oldest, freshest, stale")
	return s
}

// RegisterCore installs only the core subset of the matrix — -workers,
// the -metrics-* export pair, the -cam-faults / -health-k fault pair,
// and -adapt — for binaries with no run-store or live-ingest surface
// (mvserve). Register builds on it.
func RegisterCore(fs *flag.FlagSet, workersHelp string) *Shared {
	s := &Shared{}
	fs.IntVar(&s.Workers, "workers", 0, workersHelp+" worker bound (0 = GOMAXPROCS, 1 = sequential)")
	fs.StringVar(&s.MetricsAddr, "metrics-addr", "", "serve live /metricsz snapshots on this address (e.g. :8080)")
	fs.StringVar(&s.MetricsJSONL, "metrics-jsonl", "", "append metrics snapshots to this JSONL file")
	fs.StringVar(&s.CamFaults, "cam-faults", "", "camera-fault schedule, e.g. seed=7,rate=0.1,mean=20 (see docs/FAULTS.md)")
	fs.IntVar(&s.HealthK, "health-k", 3, "frames of silence before a camera is declared dead (0 disables failover)")
	fs.StringVar(&s.Adapt, "adapt", "", "degradation control loop, e.g. slo=500ms,window=40,cooldown=2,max=3 (see docs/FAULTS.md)")
	return s
}

// OpenExport builds the metrics export stack from the -metrics-* flags.
// The export is always non-nil (a zero-config export closes cleanly);
// ExportEnabled reports whether a sink should actually be attached.
func (s *Shared) OpenExport() (*metrics.Export, error) {
	return metrics.OpenExport(s.MetricsAddr, s.MetricsJSONL)
}

// ExportEnabled reports whether any -metrics-* flag was given.
func (s *Shared) ExportEnabled() bool {
	return s.MetricsAddr != "" || s.MetricsJSONL != ""
}

// FaultModel materialises the -cam-faults spec for a roster of numCams
// cameras over numFrames frames. It returns (nil, nil) when the flag is
// unset.
func (s *Shared) FaultModel(numCams, numFrames int) (*camfault.Model, error) {
	if s.CamFaults == "" {
		return nil, nil
	}
	cfg, err := camfault.ParseSpec(s.CamFaults)
	if err != nil {
		return nil, err
	}
	return camfault.Generate(cfg, numCams, numFrames)
}

// StoreOptions materialises the -store-fsync / -store-keep-segments /
// -store-keep-duration flags as store.Options.
func (s *Shared) StoreOptions() (store.Options, error) {
	fsync, err := store.ParseFsync(s.StoreFsync)
	if err != nil {
		return store.Options{}, err
	}
	if s.StoreKeep < 0 {
		return store.Options{}, fmt.Errorf("-store-keep-segments must be >= 0, got %d", s.StoreKeep)
	}
	if s.StoreKeepDur < 0 {
		return store.Options{}, fmt.Errorf("-store-keep-duration must be >= 0, got %v", s.StoreKeepDur)
	}
	return store.Options{Fsync: fsync, KeepSegments: s.StoreKeep, KeepDuration: s.StoreKeepDur}, nil
}

// AdaptPolicy materialises the -adapt spec as an adapt.Policy. The zero
// policy (flag unset) leaves the controller disabled.
func (s *Shared) AdaptPolicy() (adapt.Policy, error) {
	if s.Adapt == "" {
		return adapt.Policy{}, nil
	}
	return adapt.ParseSpec(s.Adapt)
}

// OpenRecorder creates the -record run store under the -store-* options,
// stamping the fault and ingest flags into the manifest so a replay can
// regenerate the identical schedule (and -verify can refuse runs whose
// snapshots are not a pure function of the frame log). It returns
// (nil, nil) when -record is unset; callers own the writer's Close.
func (s *Shared) OpenRecorder(man store.Manifest) (*store.Writer, error) {
	if s.Record == "" {
		return nil, nil
	}
	if man.CamFaults == "" && s.CamFaults != "" {
		man.CamFaults = s.CamFaults
		man.HealthK = s.HealthK
	}
	if man.Ingest == "" && s.IngestAddr != "" {
		man.Ingest = s.IngestAddr
	}
	if man.Adapt == "" && s.Adapt != "" {
		// Store the canonical spec so a replay regenerates the identical
		// controller (adapt.Policy.Spec round-trips through ParseSpec).
		pol, err := s.AdaptPolicy()
		if err != nil {
			return nil, err
		}
		man.Adapt = pol.Spec()
	}
	opts, err := s.StoreOptions()
	if err != nil {
		return nil, err
	}
	return store.CreateWith(s.Record, man, opts)
}

// OpenIngest builds and serves the -ingest-addr live source for a fixed
// roster, under the -shed-policy admission policy and a watchdog with
// the given stall deadline. It returns (nil, nil) when -ingest-addr is
// unset; callers own the source's Close.
func (s *Shared) OpenIngest(cams []*scene.Camera, stall time.Duration) (*pipeline.IngestSource, error) {
	if s.IngestAddr == "" {
		return nil, nil
	}
	policy, err := pipeline.ParseShedPolicy(s.ShedPolicy)
	if err != nil {
		return nil, err
	}
	src, err := pipeline.NewIngestSource(cams, pipeline.IngestConfig{Policy: policy, Stall: stall})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", s.IngestAddr)
	if err != nil {
		src.Close()
		return nil, err
	}
	src.Serve(ln)
	return src, nil
}

// ParseMode maps a mode name to its pipeline mode. It accepts both the
// CLI short names (mvsim -mode, mvreplay -mode) and the canonical
// Mode.String() forms a run-store manifest records.
func ParseMode(s string) (pipeline.Mode, error) {
	switch s {
	case "full", pipeline.Full.String():
		return pipeline.Full, nil
	case "ind", pipeline.Independent.String():
		return pipeline.Independent, nil
	case "cen", pipeline.CentralOnly.String():
		return pipeline.CentralOnly, nil
	case "balb", pipeline.BALB.String():
		return pipeline.BALB, nil
	case "sp", pipeline.StaticPartition.String():
		return pipeline.StaticPartition, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want full, ind, cen, balb, sp)", s)
	}
}
