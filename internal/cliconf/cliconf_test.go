package cliconf

import (
	"flag"
	"path/filepath"
	"testing"

	"mvs/internal/pipeline"
	"mvs/internal/scene"
	"mvs/internal/store"
	"mvs/internal/workload"
)

func TestRegisterMatrix(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	s := Register(fs, "per-camera")
	err := fs.Parse([]string{
		"-workers", "4", "-metrics-jsonl", "run.jsonl",
		"-cam-faults", "seed=7,rate=0.1", "-health-k", "5",
		"-record", "/tmp/rec",
		"-store-fsync", "interval", "-store-keep-segments", "3",
		"-ingest-addr", "localhost:7100", "-shed-policy", "freshest",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := Shared{
		Workers: 4, MetricsJSONL: "run.jsonl",
		CamFaults: "seed=7,rate=0.1", HealthK: 5, Record: "/tmp/rec",
		StoreFsync: "interval", StoreKeep: 3,
		IngestAddr: "localhost:7100", ShedPolicy: "freshest",
	}
	if *s != want {
		t.Fatalf("parsed %+v, want %+v", *s, want)
	}

	// Unset flags keep the documented defaults (durability off, ingest
	// off, drop-oldest shedding).
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	d := Register(fs2, "per-camera")
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if d.StoreFsync != "never" || d.StoreKeep != 0 || d.IngestAddr != "" || d.ShedPolicy != "drop-oldest" {
		t.Fatalf("defaults: %+v", *d)
	}
	if !s.ExportEnabled() {
		t.Fatal("-metrics-jsonl must enable the export")
	}
	if (&Shared{}).ExportEnabled() {
		t.Fatal("zero flags must not enable the export")
	}
}

func TestFaultModel(t *testing.T) {
	s := &Shared{}
	if m, err := s.FaultModel(4, 100); m != nil || err != nil {
		t.Fatalf("empty spec: %v %v", m, err)
	}
	s.CamFaults = "seed=7,rate=0.1,mean=5"
	m, err := s.FaultModel(4, 100)
	if err != nil || m == nil {
		t.Fatalf("valid spec: %v %v", m, err)
	}
	if m.NumCameras() != 4 || m.NumFrames() != 100 {
		t.Fatalf("model shape %dx%d", m.NumCameras(), m.NumFrames())
	}
	s.CamFaults = "rate=banana"
	if _, err := s.FaultModel(4, 100); err == nil {
		t.Fatal("bad spec must error")
	}
}

func TestOpenRecorderStampsFaults(t *testing.T) {
	s := &Shared{}
	if w, err := s.OpenRecorder(store.Manifest{}); w != nil || err != nil {
		t.Fatalf("unset -record: %v %v", w, err)
	}

	sc, err := workload.ByName("S1", 1)
	if err != nil {
		t.Fatal(err)
	}
	roster, err := scene.MarshalCameras(sc.World.Cameras)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "run")
	s = &Shared{Record: dir, CamFaults: "seed=7,rate=0.1", HealthK: 2}
	w, err := s.OpenRecorder(store.Manifest{Scenario: "S1", Seed: 1, Mode: "BALB", Cameras: roster})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	run, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := run.Manifest()
	if man.CamFaults != "seed=7,rate=0.1" || man.HealthK != 2 {
		t.Fatalf("fault flags not stamped into manifest: %+v", man)
	}
}

func TestStoreOptions(t *testing.T) {
	s := &Shared{StoreFsync: "never"}
	opts, err := s.StoreOptions()
	if err != nil || opts.Fsync != store.FsyncNever || opts.KeepSegments != 0 {
		t.Fatalf("defaults: %+v, %v", opts, err)
	}
	s = &Shared{StoreFsync: "every-record", StoreKeep: 2}
	opts, err = s.StoreOptions()
	if err != nil || opts.Fsync != store.FsyncEveryRecord || opts.KeepSegments != 2 {
		t.Fatalf("every-record: %+v, %v", opts, err)
	}
	if _, err := (&Shared{StoreFsync: "sometimes"}).StoreOptions(); err == nil {
		t.Fatal("bad -store-fsync must error")
	}
	if _, err := (&Shared{StoreFsync: "never", StoreKeep: -1}).StoreOptions(); err == nil {
		t.Fatal("negative -store-keep-segments must error")
	}
}

func TestOpenIngest(t *testing.T) {
	sc, err := workload.ByName("S1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if src, err := (&Shared{}).OpenIngest(sc.World.Cameras, 0); src != nil || err != nil {
		t.Fatalf("unset -ingest-addr: %v %v", src, err)
	}
	if _, err := (&Shared{IngestAddr: "localhost:0", ShedPolicy: "banana"}).OpenIngest(sc.World.Cameras, 0); err == nil {
		t.Fatal("bad -shed-policy must error")
	}
	s := &Shared{IngestAddr: "127.0.0.1:0", ShedPolicy: "stale"}
	src, err := s.OpenIngest(sc.World.Cameras, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if got := len(src.Cameras()); got != len(sc.World.Cameras) {
		t.Fatalf("roster: %d cameras, want %d", got, len(sc.World.Cameras))
	}
}

func TestParseMode(t *testing.T) {
	cases := map[string]pipeline.Mode{
		"full": pipeline.Full, "ind": pipeline.Independent,
		"cen": pipeline.CentralOnly, "balb": pipeline.BALB,
		"sp": pipeline.StaticPartition,
	}
	for name, want := range cases {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMode("turbo"); err == nil {
		t.Fatal("unknown mode must error")
	}
}
