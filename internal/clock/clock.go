// Package clock abstracts wall time for retry and backoff logic. The
// cluster's reconnecting client sleeps between attempts; injecting a
// Clock lets tests drive the full backoff schedule without real sleeps
// (the Fake clock advances instantly and records every requested
// delay).
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time surface retry logic needs.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d (or, for fakes, advances time by d).
	Sleep(d time.Duration)
}

// System is the real wall clock.
type System struct{}

// Now returns time.Now().
func (System) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (System) Sleep(d time.Duration) { time.Sleep(d) }

// Fake is a manual clock for tests. Sleep returns immediately: it
// advances the fake time by the requested duration and records it, so a
// test can assert an entire backoff schedule synchronously.
type Fake struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

// NewFake returns a fake clock whose current time is start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep advances the fake time by d and records the requested duration.
// Negative durations are recorded but do not move time backwards.
func (f *Fake) Sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sleeps = append(f.sleeps, d)
	if d > 0 {
		f.now = f.now.Add(d)
	}
}

// Advance moves the fake time forward by d without recording a sleep.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Sleeps returns a copy of every duration passed to Sleep, in order.
func (f *Fake) Sleeps() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}
