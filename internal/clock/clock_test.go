package clock

import (
	"testing"
	"time"
)

func TestSystemClock(t *testing.T) {
	var c Clock = System{}
	before := time.Now()
	if c.Now().Before(before) {
		t.Fatal("System.Now went backwards")
	}
	c.Sleep(time.Millisecond) // smoke: returns
}

func TestFakeClockSleepAdvancesAndRecords(t *testing.T) {
	start := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	f.Sleep(100 * time.Millisecond)
	f.Sleep(200 * time.Millisecond)
	f.Sleep(-time.Second) // recorded, but time never moves backwards
	if got := f.Now(); !got.Equal(start.Add(300 * time.Millisecond)) {
		t.Fatalf("now = %v", got)
	}
	sleeps := f.Sleeps()
	if len(sleeps) != 3 || sleeps[0] != 100*time.Millisecond ||
		sleeps[1] != 200*time.Millisecond || sleeps[2] != -time.Second {
		t.Fatalf("sleeps = %v", sleeps)
	}
}

func TestFakeClockAdvance(t *testing.T) {
	start := time.Date(2022, 7, 1, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	f.Advance(5 * time.Second)
	if got := f.Now(); !got.Equal(start.Add(5 * time.Second)) {
		t.Fatalf("now = %v", got)
	}
	if len(f.Sleeps()) != 0 {
		t.Fatal("Advance recorded a sleep")
	}
}
