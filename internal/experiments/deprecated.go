// Deprecated entry points retained for one release while callers move
// to the Options-based API. This file is the only place the old names
// may appear; CI greps for new callers elsewhere and fails the build.
package experiments

import "mvs/internal/pipeline"

// RunModesWorkers runs the five scheduling modes with an explicit
// workers bound.
//
// Deprecated: call RunModes with Options{Workers: workers}. The
// Workers/plain pairs doubled every experiment's surface; the Options
// struct carries the same knob plus the metrics sink without further
// signature growth. Retained for one release; CI rejects new callers.
func RunModesWorkers(s *Setup, horizon, workers int) (map[pipeline.Mode]*pipeline.Report, error) {
	return RunModes(s, horizon, Options{Workers: workers})
}

// Fig14Workers sweeps the scheduling horizon with an explicit workers
// bound.
//
// Deprecated: call Fig14 with Options{Workers: workers}. See
// RunModesWorkers for the rationale. Retained for one release; CI
// rejects new callers.
func Fig14Workers(s *Setup, horizons []int, workers int) ([]HorizonPoint, error) {
	return Fig14(s, horizons, Options{Workers: workers})
}

// ArrivalSweepWorkers runs the arrival-rate sweep with an explicit
// workers bound.
//
// Deprecated: call ArrivalSweep with Options{Workers: workers}. See
// RunModesWorkers for the rationale. Retained for one release; CI
// rejects new callers.
func ArrivalSweepWorkers(name string, seed int64, frames int, scales []float64, workers int) ([]ArrivalPoint, error) {
	return ArrivalSweep(name, seed, frames, scales, Options{Workers: workers})
}
