package experiments

import (
	"reflect"
	"sync"
	"testing"

	"mvs/internal/metrics"
	"mvs/internal/pipeline"
)

var (
	s2Once sync.Once
	s2     *Setup
	s2Err  error
)

func setupS2(t *testing.T) *Setup {
	t.Helper()
	s2Once.Do(func() {
		s2, s2Err = Prepare("S2", 13, 600)
	})
	if s2Err != nil {
		t.Fatal(s2Err)
	}
	return s2
}

func TestPrepareSplitsTrace(t *testing.T) {
	s := setupS2(t)
	if len(s.Train.Frames) != 300 || len(s.Test.Frames) != 300 {
		t.Fatalf("split = %d/%d", len(s.Train.Frames), len(s.Test.Frames))
	}
	if s.Model == nil || s.Model.NumCameras() != 2 {
		t.Fatal("model not trained")
	}
	if s.Scenario.Name != "S2" {
		t.Fatalf("scenario = %s", s.Scenario.Name)
	}
}

func TestPrepareRejectsUnknown(t *testing.T) {
	if _, err := Prepare("S9", 1, 100); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestFig2Shape(t *testing.T) {
	s := setupS2(t)
	res := Fig2(s)
	if len(res.Counts) != 2 || len(res.CameraNames) != 2 {
		t.Fatalf("cams = %d/%d", len(res.Counts), len(res.CameraNames))
	}
	// 300 test frames at 10 FPS sampled every 2 s -> 15 samples.
	if len(res.Counts[0]) != 15 {
		t.Fatalf("samples = %d", len(res.Counts[0]))
	}
	if res.SampleEverySec != 2 {
		t.Fatalf("interval = %v", res.SampleEverySec)
	}
}

func TestTableIMatchesPaper(t *testing.T) {
	rows := TableI(1)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := map[string]int{"S1": 5, "S2": 2, "S3": 3}
	for _, r := range rows {
		if len(r.Devices) != want[r.Scenario] {
			t.Errorf("%s has %d devices, want %d", r.Scenario, len(r.Devices), want[r.Scenario])
		}
	}
}

func TestFig10AllModelsReported(t *testing.T) {
	s := setupS2(t)
	rows, err := Fig10(s)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]ClassifierResult)
	for _, r := range rows {
		seen[r.Model] = r
		if r.Precision < 0 || r.Precision > 1 || r.Recall < 0 || r.Recall > 1 {
			t.Errorf("%s out of range: %+v", r.Model, r)
		}
	}
	for _, m := range []string{"knn", "svm", "logistic", "tree"} {
		if _, ok := seen[m]; !ok {
			t.Errorf("model %s missing", m)
		}
	}
	// The paper's key claim: KNN precision at or near the top.
	knn := seen["knn"].Precision
	for name, r := range seen {
		if r.Precision > knn+0.05 {
			t.Errorf("%s precision %.3f clearly above knn %.3f", name, r.Precision, knn)
		}
	}
}

func TestFig11HomographyWorst(t *testing.T) {
	s := setupS2(t)
	rows, err := Fig11(s)
	if err != nil {
		t.Fatal(err)
	}
	maes := make(map[string]float64)
	for _, r := range rows {
		if r.MAE <= 0 {
			t.Errorf("%s MAE %v", r.Model, r.MAE)
		}
		maes[r.Model] = r.MAE
	}
	if maes["knn"] >= maes["homography"] {
		t.Errorf("knn %.1f not below homography %.1f", maes["knn"], maes["homography"])
	}
	if maes["knn"] >= maes["linear"] {
		t.Errorf("knn %.1f not below linear %.1f", maes["knn"], maes["linear"])
	}
}

func TestRunModesCoversAll(t *testing.T) {
	s := setupS2(t)
	reports, err := RunModes(s, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 5 {
		t.Fatalf("reports = %d", len(reports))
	}
	full := reports[pipeline.Full]
	balb := reports[pipeline.BALB]
	if balb.MeanSlowest >= full.MeanSlowest {
		t.Fatalf("BALB %v not faster than Full %v", balb.MeanSlowest, full.MeanSlowest)
	}
}

// TestRunModesDeterministic asserts the harness-level determinism
// contract: the concurrent mode fan-out produces modelled reports
// bit-identical to the fully sequential harness. Run under -race this
// also exercises concurrent pipeline runs over one shared Setup.
func TestRunModesDeterministic(t *testing.T) {
	s := setupS2(t)
	seq, err := RunModes(s, 10, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunModes(s, 10, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("reports = %d vs %d", len(par), len(seq))
	}
	for mode, a := range seq {
		b, ok := par[mode]
		if !ok {
			t.Fatalf("mode %v missing from parallel reports", mode)
		}
		if !reflect.DeepEqual(a.Modeled(), b.Modeled()) {
			t.Errorf("mode %v diverged:\nseq: %+v\npar: %+v", mode, a.Modeled(), b.Modeled())
		}
	}
}

// TestFig14Deterministic checks the sweep-point fan-out keeps
// point order and values.
func TestFig14Deterministic(t *testing.T) {
	s := setupS2(t)
	seq, err := Fig14(s, []int{2, 10, 20}, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Fig14(s, []int{2, 10, 20}, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("horizon sweep diverged:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestFig14Monotonicity(t *testing.T) {
	s := setupS2(t)
	points, err := Fig14(s, []int{2, 20}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].MeanSlowest >= points[0].MeanSlowest {
		t.Fatalf("latency did not fall with T: %v -> %v", points[0].MeanSlowest, points[1].MeanSlowest)
	}
	if points[1].CenRecall > points[0].CenRecall+0.01 {
		t.Fatalf("central-only recall rose with T: %v -> %v", points[0].CenRecall, points[1].CenRecall)
	}
}

func TestTableIIOverheadSmall(t *testing.T) {
	s := setupS2(t)
	row, err := TableII(s)
	if err != nil {
		t.Fatal(err)
	}
	if row.Scenario != "S2" {
		t.Fatalf("scenario = %s", row.Scenario)
	}
	if row.Total != row.Central+row.Tracking+row.Distributed+row.Batching {
		t.Fatal("total inconsistent")
	}
	// Framework overhead must be a tiny fraction of a 100 ms frame
	// budget.
	if row.Total.Milliseconds() > 50 {
		t.Fatalf("overhead = %v", row.Total)
	}
}

// TestRunModesSinkLabels checks the observability wiring of the
// experiments fan-out: one shared sink receives every run's per-frame
// snapshots, tagged with a per-mode label so concurrent streams stay
// distinguishable.
func TestRunModesSinkLabels(t *testing.T) {
	s := setupS2(t)
	frames := len(s.Test.Frames)
	sink := metrics.NewChannelSink(1, 5*frames+1)
	if _, err := RunModes(s, 10, Options{Workers: 4, Sink: sink}); err != nil {
		t.Fatal(err)
	}
	sink.Close()
	if sink.Dropped() != 0 {
		t.Fatalf("dropped %d snapshots with a full-size buffer", sink.Dropped())
	}
	perLabel := make(map[string]int)
	for snap := range sink.Snapshots() {
		if snap.Source != metrics.SourcePipeline {
			t.Fatalf("source = %q", snap.Source)
		}
		perLabel[snap.Label]++
	}
	if len(perLabel) != len(Modes()) {
		t.Fatalf("labels = %v, want one per mode", perLabel)
	}
	for _, mode := range Modes() {
		label := "modes/" + mode.String()
		if perLabel[label] != frames {
			t.Fatalf("label %q got %d snapshots, want %d", label, perLabel[label], frames)
		}
	}
}

// TestShardSweepSmall runs the shard-count sweep on a small corridor and
// checks its structural invariants: the global point leads, shard counts
// grow as the max-shard bound falls, and sharding does not collapse
// recall.
func TestShardSweepSmall(t *testing.T) {
	points, err := ShardSweep(8, 7, 240, []int{4, 2}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	if points[0].MaxShard != 0 || points[0].Shards != 1 {
		t.Fatalf("global point = %+v", points[0])
	}
	for i, p := range points {
		if p.CentralPerFrame <= 0 {
			t.Fatalf("point %d: central cost %v", i, p.CentralPerFrame)
		}
		if p.Recall < 0.5 {
			t.Fatalf("point %d (max=%d): recall %v", i, p.MaxShard, p.Recall)
		}
	}
	if points[1].Shards < 2 || points[2].Shards < points[1].Shards {
		t.Fatalf("shard counts %d, %d do not grow as max falls", points[1].Shards, points[2].Shards)
	}
	if diff := points[0].Recall - points[2].Recall; diff > 0.1 {
		t.Fatalf("sharding cost %.3f recall", diff)
	}
}
