package experiments

import (
	"reflect"
	"testing"
)

func TestChaosSweepGracefulDegradation(t *testing.T) {
	s := setupS2(t)
	points, err := ChaosSweep(s, []float64{0.1}, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	p := points[0]
	if p.Rate != 0.1 {
		t.Fatalf("rate = %v", p.Rate)
	}
	if p.OutageFrames == 0 {
		t.Fatal("schedule injected no outages")
	}
	// The acceptance criterion: at 10% outage rate, failover keeps
	// recall strictly above the feature-off arm of the same schedule.
	if p.FailoverRecall <= p.NoFailoverRecall {
		t.Fatalf("failover recall %.4f not above no-failover %.4f",
			p.FailoverRecall, p.NoFailoverRecall)
	}
	if p.FailoverP99 <= 0 || p.NoFailoverP99 <= 0 {
		t.Fatalf("missing tail latencies: %+v", p)
	}
	t.Logf("rate=%.2f outage=%d recall fo=%.4f off=%.4f reassigned=%d orphaned=%d",
		p.Rate, p.OutageFrames, p.FailoverRecall, p.NoFailoverRecall,
		p.Reassignments, p.Orphaned)
}

func TestChaosSweepDeterministic(t *testing.T) {
	s := setupS2(t)
	a, err := ChaosSweep(s, []float64{0.05}, 3, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChaosSweep(s, []float64{0.05}, 3, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep not deterministic across workers:\n%+v\n%+v", a, b)
	}
}
