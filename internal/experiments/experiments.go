// Package experiments reproduces every table and figure of the paper's
// evaluation section on the simulated testbed. Each experiment is a pure
// function from a prepared Setup to structured results, shared by the
// mvexp command and the repository benchmarks so that both always report
// the same quantities.
//
// # Execution model
//
// A prepared Setup is read-only, so independent experiment points —
// the five scheduling modes of RunModes, the horizon points of Fig14,
// the rate-scale points of ArrivalSweep — run concurrently on the
// shared internal/pool worker pool. Every experiment takes an Options
// struct whose Workers knob (0 = GOMAXPROCS, 1 = fully sequential)
// bounds the outer point-level fan-out and, via
// pipeline.Config.Sched.Workers, the per-camera fan-out inside each pipeline
// run plus its central stage's per-pair association fan-out; points
// that retrain an association model (ArrivalSweep) reuse the bound for
// assoc.Factories.Workers too. Results are assembled positionally, and
// the pipeline's determinism contract (docs/CONCURRENCY.md) guarantees
// the numbers are identical for every Workers value — and for every
// Sink, which observes runs without influencing them
// (docs/OBSERVABILITY.md).
//
// # Experiment index
//
// See DESIGN.md for the full mapping:
//
//	Fig2    — temporal variation of per-camera object workload
//	TableI  — hardware configuration per scenario
//	Fig10   — association classifier comparison (precision/recall)
//	Fig11   — association regressor comparison (MAE)
//	Fig12   — object recall per scheduling algorithm
//	Fig13   — per-frame inference latency per scheduling algorithm
//	Fig14   — scheduling-horizon length sweep
//	TableII — per-frame framework overhead breakdown
package experiments

import (
	"fmt"
	"sort"
	"time"

	"mvs/internal/adapt"
	"mvs/internal/assoc"
	"mvs/internal/camfault"
	"mvs/internal/geom"
	"mvs/internal/metrics"
	"mvs/internal/ml"
	"mvs/internal/pipeline"
	"mvs/internal/pool"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/shard"
	"mvs/internal/workload"
)

// Setup is a prepared scenario: the generated trace split into the
// training half (association models) and the evaluation half, as in the
// paper ("we use half length of the video to train the cross-camera
// object association model ... and use the remaining half for testing").
type Setup struct {
	// Scenario is the deployment under test.
	Scenario *workload.Scenario
	// Train is the first half of the trace.
	Train *scene.Trace
	// Test is the second half, used by all experiments.
	Test *scene.Trace
	// Model is the deployed (KNN) association model trained on Train.
	Model *assoc.Model
	// Seed is carried into pipeline runs.
	Seed int64
}

// Prepare generates the scenario trace and trains the deployed
// association model. frames <= 0 defaults to 1200 (two minutes at
// 10 FPS).
func Prepare(name string, seed int64, frames int) (*Setup, error) {
	if frames <= 0 {
		frames = 1200
	}
	s, err := workload.ByName(name, seed)
	if err != nil {
		return nil, err
	}
	trace, err := s.World.Run(frames)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		return nil, fmt.Errorf("experiments: %s association training: %w", name, err)
	}
	return &Setup{Scenario: s, Train: train, Test: test, Model: model, Seed: seed}, nil
}

// Options bounds an experiment's execution and attaches observability
// without changing its results (the pipeline's determinism contract
// covers both knobs).
type Options struct {
	// Workers bounds the point-level fan-out and, through it, each
	// pipeline run's per-camera fan-out, its central stage's per-pair
	// association fan-out, and (for experiments that retrain, like
	// ArrivalSweep) the per-pair training fan-out: 0 means GOMAXPROCS,
	// 1 fully sequential.
	Workers int
	// Sink, when non-nil, receives every pipeline run's per-frame
	// snapshots. Runs are labelled per experiment point (for example
	// "modes/BALB" or "fig14/T=20") so one sink can serve concurrent
	// runs; the bundled sinks are all safe for concurrent RecordFrame.
	// Experiments never Flush the sink — its lifecycle belongs to the
	// caller.
	Sink metrics.Sink
	// Rounds, when non-nil, receives every RunModes run's scheduling-round
	// decisions (pipeline.Config.Obs.Rounds) — the stream mvexp -record
	// persists. Like Sink, its lifecycle belongs to the caller.
	Rounds metrics.RoundSink
	// CamFaults, when non-empty, is a camfault spec (docs/FAULTS.md)
	// applied to every RunModes run: all modes share the identical
	// outage schedule, so Figs. 12/13 and Table II compare the
	// algorithms under the same incident. HealthK arms failover for
	// those runs (0 = no failover, the ablation).
	CamFaults string
	HealthK   int
}

// Fig2Result is the per-camera object-count time series.
type Fig2Result struct {
	// CameraNames labels the series.
	CameraNames []string
	// SampleEverySec is the sampling interval (the paper samples once
	// every 2 seconds).
	SampleEverySec float64
	// Counts[c][k] is camera c's visible-object count at sample k.
	Counts [][]int
}

// Fig2 reproduces the workload-variation plot: per-camera object counts
// sampled every two seconds.
func Fig2(s *Setup) *Fig2Result {
	every := int(2 * s.Test.FPS)
	res := &Fig2Result{SampleEverySec: 2, Counts: s.Test.ObjectCounts(every)}
	for _, c := range s.Test.Cameras {
		res.CameraNames = append(res.CameraNames, c.Name)
	}
	return res
}

// TableIRow describes one scenario's hardware roster.
type TableIRow struct {
	Scenario string
	Devices  []profile.DeviceClass
}

// TableI reproduces the hardware-configuration table.
func TableI(seed int64) []TableIRow {
	rows := make([]TableIRow, 0, 3)
	for _, s := range workload.All(seed) {
		rows = append(rows, TableIRow{Scenario: s.Name, Devices: s.Devices})
	}
	return rows
}

// ClassifierResult is one model's micro-averaged precision/recall over
// all ordered camera pairs of a scenario.
type ClassifierResult struct {
	Model     string
	Precision float64
	Recall    float64
}

// classifierFactories lists the Fig. 10 contenders.
func classifierFactories() map[string]func() ml.Classifier {
	return map[string]func() ml.Classifier{
		"knn":      func() ml.Classifier { return &ml.KNNClassifier{K: 5} },
		"svm":      func() ml.Classifier { return &ml.SVMClassifier{} },
		"logistic": func() ml.Classifier { return &ml.LogisticClassifier{} },
		"tree":     func() ml.Classifier { return &ml.TreeClassifier{} },
	}
}

// Fig10 reproduces the classification-module comparison: every model is
// trained per ordered camera pair on the training half and evaluated on
// the test half; true/false positives are micro-averaged across pairs.
func Fig10(s *Setup) ([]ClassifierResult, error) {
	numCams := len(s.Test.Cameras)
	type agg struct{ tp, fp, fn, tn int }
	totals := make(map[string]*agg)
	for name := range classifierFactories() {
		totals[name] = &agg{}
	}

	for src := 0; src < numCams; src++ {
		for dst := 0; dst < numCams; dst++ {
			if src == dst {
				continue
			}
			trainS, err := assoc.BuildPairSamples(s.Train, src, dst)
			if err != nil {
				return nil, err
			}
			testS, err := assoc.BuildPairSamples(s.Test, src, dst)
			if err != nil {
				return nil, err
			}
			if len(trainS) == 0 || len(testS) == 0 {
				continue
			}
			trainX, trainY := assoc.ClassificationData(trainS)
			testX, testY := assoc.ClassificationData(testS)
			for name, factory := range classifierFactories() {
				clf := factory()
				if err := clf.Fit(trainX, trainY); err != nil {
					return nil, fmt.Errorf("experiments: fig10 %s pair (%d,%d): %w", name, src, dst, err)
				}
				m, err := ml.EvaluateClassifier(clf, testX, testY)
				if err != nil {
					return nil, err
				}
				t := totals[name]
				t.tp += m.TP
				t.fp += m.FP
				t.fn += m.FN
				t.tn += m.TN
			}
		}
	}

	var out []ClassifierResult
	for name, t := range totals {
		r := ClassifierResult{Model: name}
		if t.tp+t.fp > 0 {
			r.Precision = float64(t.tp) / float64(t.tp+t.fp)
		}
		if t.tp+t.fn > 0 {
			r.Recall = float64(t.tp) / float64(t.tp+t.fn)
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out, nil
}

// RegressorResult is one model's mean absolute error over all ordered
// camera pairs (pixels).
type RegressorResult struct {
	Model string
	MAE   float64
}

func regressorFactories() map[string]func() ml.Regressor {
	return map[string]func() ml.Regressor{
		"knn":        func() ml.Regressor { return &ml.KNNRegressor{K: 5} },
		"linear":     func() ml.Regressor { return &ml.LinearRegressor{} },
		"ransac":     func() ml.Regressor { return &ml.RANSACRegressor{Seed: 1} },
		"homography": func() ml.Regressor { return &ml.HomographyRegressor{} },
	}
}

// Fig11 reproduces the regression-module comparison: each model is
// trained on the co-visible pairs of the training half and scored by MAE
// on the test half, sample-weighted across camera pairs.
func Fig11(s *Setup) ([]RegressorResult, error) {
	numCams := len(s.Test.Cameras)
	sums := make(map[string]float64)
	counts := make(map[string]int)

	for src := 0; src < numCams; src++ {
		for dst := 0; dst < numCams; dst++ {
			if src == dst {
				continue
			}
			trainS, err := assoc.BuildPairSamples(s.Train, src, dst)
			if err != nil {
				return nil, err
			}
			testS, err := assoc.BuildPairSamples(s.Test, src, dst)
			if err != nil {
				return nil, err
			}
			trainX, trainY := assoc.RegressionData(trainS)
			testX, testY := assoc.RegressionData(testS)
			if len(trainX) < 8 || len(testX) == 0 {
				continue // too few co-visible cases for a fair comparison
			}
			for name, factory := range regressorFactories() {
				reg := factory()
				if err := reg.Fit(trainX, trainY); err != nil {
					return nil, fmt.Errorf("experiments: fig11 %s pair (%d,%d): %w", name, src, dst, err)
				}
				mae, err := ml.EvaluateRegressor(reg, testX, testY)
				if err != nil {
					return nil, err
				}
				sums[name] += mae * float64(len(testX))
				counts[name] += len(testX)
			}
		}
	}

	var out []RegressorResult
	for name, sum := range sums {
		out = append(out, RegressorResult{Model: name, MAE: sum / float64(counts[name])})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out, nil
}

// Modes lists the scheduling algorithms of Figs. 12 and 13, in the
// paper's presentation order.
func Modes() []pipeline.Mode {
	return []pipeline.Mode{
		pipeline.Full, pipeline.Independent, pipeline.CentralOnly,
		pipeline.BALB, pipeline.StaticPartition,
	}
}

// RunModes executes the pipeline once per scheduling algorithm and
// returns the reports keyed by mode. Figs. 12 and 13 and Table II all
// read from these. The five modes run on at most opts.Workers
// goroutines, and each pipeline run reuses the same bound for its
// per-camera fan-out; Options{} reproduces the default (GOMAXPROCS)
// harness, Options{Workers: 1} the fully sequential one. Snapshots are
// labelled "modes/<mode>".
func RunModes(s *Setup, horizon int, opts Options) (map[pipeline.Mode]*pipeline.Report, error) {
	var faults *camfault.Model
	if opts.CamFaults != "" {
		fcfg, err := camfault.ParseSpec(opts.CamFaults)
		if err != nil {
			return nil, err
		}
		faults, err = camfault.Generate(fcfg, len(s.Test.Cameras), len(s.Test.Frames))
		if err != nil {
			return nil, err
		}
	}
	modes := Modes()
	reports := make([]*pipeline.Report, len(modes))
	err := pool.Do(opts.Workers, len(modes), func(i int) error {
		rep, err := pipeline.Run(s.Test, s.Scenario.Profiles(), s.Model, pipeline.Config{
			Sched: pipeline.Sched{Mode: modes[i], Horizon: horizon, Workers: opts.Workers},
			Sim:   pipeline.Sim{Seed: s.Seed},
			Fault: pipeline.Fault{CamFaults: faults, HealthK: opts.HealthK},
			Obs:   pipeline.Obs{Sink: opts.Sink, Rounds: opts.Rounds, Label: "modes/" + modes[i].String()},
		})
		if err != nil {
			return fmt.Errorf("experiments: mode %v: %w", modes[i], err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[pipeline.Mode]*pipeline.Report, len(modes))
	for i, mode := range modes {
		out[mode] = reports[i]
	}
	return out, nil
}

// HorizonPoint is one point of the Fig. 14 sweep.
type HorizonPoint struct {
	// Horizon is T, the frames per scheduling horizon.
	Horizon int
	// Recall is BALB's attained object recall.
	Recall float64
	// MeanSlowest is BALB's Fig. 13 latency metric at this horizon.
	MeanSlowest time.Duration
	// CenRecall is BALB-Cen's recall at the same horizon — the ablation
	// that shows how strongly recall couples to T without the
	// distributed stage.
	CenRecall float64
}

// Fig14 sweeps the scheduling-horizon length for the full BALB algorithm
// (and the central-only ablation). horizons nil defaults to the
// paper-style sweep {2, 5, 10, 20, 30, 50}. opts.Workers bounds the
// point-level fan-out (and, through it, the per-camera fan-out of each
// run). Snapshots are labelled "fig14/T=<h>" (BALB) and
// "fig14/T=<h>/cen" (the ablation).
func Fig14(s *Setup, horizons []int, opts Options) ([]HorizonPoint, error) {
	if len(horizons) == 0 {
		horizons = []int{2, 5, 10, 20, 30, 50}
	}
	out := make([]HorizonPoint, len(horizons))
	err := pool.Do(opts.Workers, len(horizons), func(i int) error {
		h := horizons[i]
		rep, err := pipeline.Run(s.Test, s.Scenario.Profiles(), s.Model, pipeline.Config{
			Sched: pipeline.Sched{Mode: pipeline.BALB, Horizon: h, Workers: opts.Workers},
			Sim:   pipeline.Sim{Seed: s.Seed},
			Obs:   pipeline.Obs{Sink: opts.Sink, Label: fmt.Sprintf("fig14/T=%d", h)},
		})
		if err != nil {
			return fmt.Errorf("experiments: horizon %d: %w", h, err)
		}
		cen, err := pipeline.Run(s.Test, s.Scenario.Profiles(), s.Model, pipeline.Config{
			Sched: pipeline.Sched{Mode: pipeline.CentralOnly, Horizon: h, Workers: opts.Workers},
			Sim:   pipeline.Sim{Seed: s.Seed},
			Obs:   pipeline.Obs{Sink: opts.Sink, Label: fmt.Sprintf("fig14/T=%d/cen", h)},
		})
		if err != nil {
			return fmt.Errorf("experiments: horizon %d (central-only): %w", h, err)
		}
		out[i] = HorizonPoint{
			Horizon: h, Recall: rep.Recall, MeanSlowest: rep.MeanSlowest,
			CenRecall: cen.Recall,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TableII extracts the overhead breakdown from a BALB run.
type TableIIRow struct {
	Scenario    string
	Central     time.Duration
	Tracking    time.Duration
	Distributed time.Duration
	Batching    time.Duration
	Total       time.Duration
}

// TableII runs BALB and reports the measured per-frame framework
// overheads.
func TableII(s *Setup) (*TableIIRow, error) {
	rep, err := pipeline.Run(s.Test, s.Scenario.Profiles(), s.Model, pipeline.NewConfig(pipeline.BALB, s.Seed))
	if err != nil {
		return nil, err
	}
	return &TableIIRow{
		Scenario:    s.Scenario.Name,
		Central:     rep.CentralPerFrame,
		Tracking:    rep.TrackingPerFrame,
		Distributed: rep.DistributedPerFrame,
		Batching:    rep.BatchingPerFrame,
		Total:       rep.OverheadTotal(),
	}, nil
}

// ArrivalPoint is one point of the arrival-rate ablation sweep: how much
// the distributed stage matters as object churn grows.
type ArrivalPoint struct {
	// RateScale multiplies the scenario's nominal arrival rates.
	RateScale float64
	// BALBRecall and CenRecall are the recalls with and without the
	// distributed stage.
	BALBRecall float64
	CenRecall  float64
	// BALBLatency is the Fig. 13 latency metric for full BALB.
	BALBLatency time.Duration
}

// ArrivalSweep regenerates the scenario at several arrival-rate scales
// and compares BALB with BALB-Cen: the distributed stage's recall
// contribution should grow with churn (DESIGN.md's ablation index). It
// rebuilds the world per point, so it is the most expensive experiment
// — and the one that profits most from the concurrent points (each one
// regenerates a trace and trains an association model from scratch).
// opts.Workers bounds the point-level fan-out. Snapshots are labelled
// "sweep/x<scale>" (BALB) and "sweep/x<scale>/cen" (the ablation).
func ArrivalSweep(name string, seed int64, frames int, scales []float64, opts Options) ([]ArrivalPoint, error) {
	if len(scales) == 0 {
		scales = []float64{0.5, 1, 2}
	}
	if frames <= 0 {
		frames = 800
	}
	out := make([]ArrivalPoint, len(scales))
	err := pool.Do(opts.Workers, len(scales), func(i int) error {
		scale := scales[i]
		s, err := workload.ByName(name, seed)
		if err != nil {
			return err
		}
		for ri := range s.World.Routes {
			r := &s.World.Routes[ri]
			switch a := r.Arrivals.(type) {
			case scene.Poisson:
				r.Arrivals = scene.Poisson{RatePerSec: a.RatePerSec * scale}
			case scene.TrafficLight:
				a.RatePerSec *= scale
				r.Arrivals = a
			}
		}
		trace, err := s.World.Run(frames)
		if err != nil {
			return fmt.Errorf("experiments: arrival sweep %v: %w", scale, err)
		}
		train, test := trace.SplitTrain()
		model, err := assoc.Train(train, assoc.Factories{Workers: opts.Workers})
		if err != nil {
			return fmt.Errorf("experiments: arrival sweep %v: %w", scale, err)
		}
		balb, err := pipeline.Run(test, s.Profiles(), model, pipeline.Config{
			Sched: pipeline.Sched{Mode: pipeline.BALB, Workers: opts.Workers},
			Sim:   pipeline.Sim{Seed: seed},
			Obs:   pipeline.Obs{Sink: opts.Sink, Label: fmt.Sprintf("sweep/x%g", scale)},
		})
		if err != nil {
			return err
		}
		cen, err := pipeline.Run(test, s.Profiles(), model, pipeline.Config{
			Sched: pipeline.Sched{Mode: pipeline.CentralOnly, Workers: opts.Workers},
			Sim:   pipeline.Sim{Seed: seed},
			Obs:   pipeline.Obs{Sink: opts.Sink, Label: fmt.Sprintf("sweep/x%g/cen", scale)},
		})
		if err != nil {
			return err
		}
		out[i] = ArrivalPoint{
			RateScale:   scale,
			BALBRecall:  balb.Recall,
			CenRecall:   cen.Recall,
			BALBLatency: balb.MeanSlowest,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ShardPoint is one point of the shard-count scaling sweep.
type ShardPoint struct {
	// MaxShard is the -shard-max bound the partition was built with
	// (0 = no sharding, the global round).
	MaxShard int
	// Shards is the resulting shard count (1 for the global round).
	Shards int
	// CentralPerFrame is the measured central-stage cost (association +
	// BALB across all shards), amortized per frame — the quantity
	// docs/SCALING.md §3's cost model prices.
	CentralPerFrame time.Duration
	// Recall and MeanSlowest check the quality side: sharding must not
	// tank the scheduling quality it is accelerating.
	Recall      float64
	MeanSlowest time.Duration
}

// ShardSweep prices overlap-group sharding on a large corridor fleet:
// the same trace and association model run once globally and once per
// max-shard bound, under pipeline.Config.Sched.Shards (the in-process
// analogue of cluster.ShardedScheduler). cams <= 0 defaults to 64,
// frames <= 0 to 400, maxShards nil to {16, 8, 4}. The global point
// runs first; sweep points then run concurrently under opts.Workers.
// Snapshots are labelled "shard/global" and "shard/max=<k>".
func ShardSweep(cams int, seed int64, frames int, maxShards []int, opts Options) ([]ShardPoint, error) {
	if cams <= 0 {
		cams = 64
	}
	if frames <= 0 {
		frames = 400
	}
	if len(maxShards) == 0 {
		maxShards = []int{16, 8, 4}
	}
	s, err := workload.Corridor(cams, seed)
	if err != nil {
		return nil, err
	}
	trace, err := s.World.Run(frames)
	if err != nil {
		return nil, fmt.Errorf("experiments: shard sweep: %w", err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{Workers: opts.Workers})
	if err != nil {
		return nil, fmt.Errorf("experiments: shard sweep training: %w", err)
	}
	rects := make([]geom.Rect, len(s.World.Cameras))
	for i, c := range s.World.Cameras {
		rects[i] = c.Frame()
	}
	adj, err := model.OverlapAdjacency(rects, 16, 9, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: shard sweep: %w", err)
	}
	g, err := shard.FromAdjacency(adj)
	if err != nil {
		return nil, fmt.Errorf("experiments: shard sweep: %w", err)
	}

	global, err := pipeline.Run(test, s.Profiles(), model, pipeline.Config{
		Sched: pipeline.Sched{Mode: pipeline.BALB, Workers: opts.Workers},
		Sim:   pipeline.Sim{Seed: seed},
		Obs:   pipeline.Obs{Sink: opts.Sink, Label: "shard/global"},
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: shard sweep global: %w", err)
	}
	out := make([]ShardPoint, 1+len(maxShards))
	out[0] = ShardPoint{
		MaxShard: 0, Shards: 1,
		CentralPerFrame: global.CentralPerFrame,
		Recall:          global.Recall,
		MeanSlowest:     global.MeanSlowest,
	}
	err = pool.Do(opts.Workers, len(maxShards), func(i int) error {
		k := maxShards[i]
		m, err := shard.Partition(g, k)
		if err != nil {
			return fmt.Errorf("experiments: shard sweep max=%d: %w", k, err)
		}
		rep, err := pipeline.Run(test, s.Profiles(), model, pipeline.Config{
			Sched: pipeline.Sched{Mode: pipeline.BALB, Workers: opts.Workers, Shards: m},
			Sim:   pipeline.Sim{Seed: seed},
			Obs:   pipeline.Obs{Sink: opts.Sink, Label: fmt.Sprintf("shard/max=%d", k)},
		})
		if err != nil {
			return fmt.Errorf("experiments: shard sweep max=%d: %w", k, err)
		}
		out[1+i] = ShardPoint{
			MaxShard: k, Shards: m.NumShards(),
			CentralPerFrame: rep.CentralPerFrame,
			Recall:          rep.Recall,
			MeanSlowest:     rep.MeanSlowest,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ShedPoint is one point of the ingest-overload shed sweep: one
// admission policy at one offered-load multiple.
type ShedPoint struct {
	// Policy is the admission policy's name (pipeline.ShedPolicy).
	Policy string
	// Load is the offered-load multiple: frames pushed per camera per
	// engine step. 1 is real time (no overload); L > 1 offers L× what
	// the engine drains, forcing the bounded queues to shed.
	Load int
	// Offered is the pushed part count (frames x cameras). Ingested and
	// Shed are the source's cumulative admission counters: a part
	// admitted then evicted by a later overflow counts in both, so
	// Offered - Shed parts survived to assembly.
	Offered  int
	Ingested int
	Shed     int
	// Recall and P99Slowest score the frames that survived admission —
	// the quality/latency trade each policy makes under overload.
	Recall     float64
	P99Slowest time.Duration
}

// ShedSweep measures what each ingest admission policy preserves under
// overload: the prepared scenario's evaluation frames are offered to a
// pipeline.IngestSource at a multiple of the engine's drain rate —
// lockstep, in process, no sockets — and the BALB pipeline consumes
// whatever survives the bounded per-camera queues. Every admission
// decision is a pure function of queue state (docs/STREAMING.md §6),
// so the sweep is deterministic for every Workers value. loads nil
// defaults to {1, 2, 4, 8}; all three policies run at every load.
// Snapshots are labelled "shed/<policy>/load=<L>".
func ShedSweep(setup *Setup, loads []int, opts Options) ([]ShedPoint, error) {
	if len(loads) == 0 {
		loads = []int{1, 2, 4, 8}
	}
	policies := []pipeline.ShedPolicy{pipeline.ShedDropOldest, pipeline.ShedFreshest, pipeline.ShedStale}
	out := make([]ShedPoint, len(policies)*len(loads))
	err := pool.Do(opts.Workers, len(out), func(i int) error {
		policy, load := policies[i/len(loads)], loads[i%len(loads)]
		label := fmt.Sprintf("shed/%s/load=%d", policy, load)
		src, err := pipeline.NewIngestSource(setup.Test.Cameras, pipeline.IngestConfig{Policy: policy})
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", label, err)
		}
		defer src.Close()
		cfg := pipeline.NewConfig(pipeline.BALB, setup.Seed)
		cfg.Sched.Workers = opts.Workers
		cfg.Obs.Sink = opts.Sink
		cfg.Obs.Label = label
		eng, err := pipeline.NewEngine(src, setup.Scenario.Profiles(), setup.Model, cfg)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", label, err)
		}
		// Lockstep overload: offer `load` frames' parts per camera, then
		// let the engine drain exactly one assembled frame. Ground-truth
		// objects ride on camera 0's part, as over the wire.
		fi, eos := 0, false
		for {
			for b := 0; b < load && fi < len(setup.Test.Frames); b++ {
				frame := setup.Test.Frames[fi]
				for cam, obs := range frame.PerCamera {
					p := pipeline.FramePart{Cam: cam, Frame: fi, Obs: obs}
					if cam == 0 {
						p.Objects = frame.Objects
					}
					if err := src.Offer(p); err != nil {
						return fmt.Errorf("experiments: %s: %w", label, err)
					}
				}
				fi++
			}
			if fi >= len(setup.Test.Frames) && !eos {
				eos = true
				for cam := range setup.Test.Cameras {
					if err := src.Offer(pipeline.FramePart{Cam: cam, EOS: true}); err != nil {
						return fmt.Errorf("experiments: %s: %w", label, err)
					}
				}
			}
			more, err := eng.Step()
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", label, err)
			}
			if !more {
				break
			}
		}
		rep, err := eng.Report()
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", label, err)
		}
		c := src.Counters()
		out[i] = ShedPoint{
			Policy: policy.String(), Load: load,
			Offered: len(setup.Test.Frames) * len(setup.Test.Cameras), Ingested: c.Ingested, Shed: c.Shed,
			Recall: rep.Recall, P99Slowest: rep.P99Slowest,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AdaptPoint is one point of the degradation-control-loop sweep: the
// same offered-load multiple run twice — once with the adapt controller
// armed, once shed-only — so the gap quantifies what the ladder buys
// under overload (docs/FAULTS.md §10).
type AdaptPoint struct {
	// Load is the offered-load multiple (ShedPoint.Load semantics).
	Load int
	// Offered is the pushed part count (frames x cameras), identical in
	// both arms.
	Offered int
	// OffRecall/OffP99/OffShed/OffFrames score the shed-only baseline:
	// the bounded queues drop parts, the pipeline runs undegraded.
	// Frames counts the frames that survived to assembly, so
	// Recall*Frames/trace-frames is the effective recall over the whole
	// offered trace (shed frames are total misses).
	OffRecall float64
	OffP99    time.Duration
	OffShed   int
	OffFrames int
	// OnRecall/OnP99/OnShed/OnFrames score the controller arm: the
	// ladder caps inspection sizes and stretches the key-frame cadence,
	// cutting modeled per-frame latency — and arrivals accrue per unit
	// of modeled processing time, so a degraded pipeline outruns the
	// offered load and sheds less.
	OnRecall float64
	OnP99    time.Duration
	OnShed   int
	OnFrames int
	// FinalLevel, Transitions, and SLOViolations are the controller
	// arm's ladder telemetry (pipeline.Report fields).
	FinalLevel    int
	Transitions   int
	SLOViolations int
}

// adaptFramePeriod is the camera frame period the adapt sweep's arrival
// model assumes (10 FPS, as everywhere in the testbed).
const adaptFramePeriod = 100 * time.Millisecond

// latestLatency captures the most recent frame's modeled latency from
// the snapshot stream — the adapt sweep's arrival model reads it after
// every engine step. The engine emits snapshots synchronously inside
// Step, so no locking is needed in the single-threaded drive loop.
type latestLatency struct {
	lat time.Duration
}

func (l *latestLatency) RecordFrame(snap metrics.Snapshot) { l.lat = snap.FrameLatency }
func (l *latestLatency) Flush() error                      { return nil }

// runAdaptArm drives one latency-coupled overload pipeline run with the
// given adapt policy (zero = disabled) and returns its report plus the
// ingest counters. Unlike ShedSweep's fixed offer/drain lockstep, the
// arrival model here accrues load*latency/framePeriod new frames per
// engine step — arrivals pile up while the modeled pipeline is busy —
// so a controller that cuts modeled latency genuinely drains faster and
// sheds less. Everything is a pure function of modeled state, so the
// arm is deterministic for every Workers value.
func runAdaptArm(setup *Setup, pol adapt.Policy, load int, label string, opts Options) (*pipeline.Report, pipeline.IngestCounters, error) {
	var zero pipeline.IngestCounters
	src, err := pipeline.NewIngestSource(setup.Test.Cameras, pipeline.IngestConfig{Policy: pipeline.ShedDropOldest})
	if err != nil {
		return nil, zero, fmt.Errorf("experiments: %s: %w", label, err)
	}
	defer src.Close()
	lat := &latestLatency{lat: adaptFramePeriod}
	cfg := pipeline.NewConfig(pipeline.BALB, setup.Seed)
	cfg.Sched.Workers = opts.Workers
	cfg.Obs.Sink = metrics.Sink(lat)
	if opts.Sink != nil {
		cfg.Obs.Sink = metrics.Multi(opts.Sink, lat)
	}
	cfg.Obs.Label = label
	cfg.Adapt.Policy = pol
	eng, err := pipeline.NewEngine(src, setup.Scenario.Profiles(), setup.Model, cfg)
	if err != nil {
		return nil, zero, fmt.Errorf("experiments: %s: %w", label, err)
	}
	offer := func(fi int) error {
		frame := setup.Test.Frames[fi]
		for cam, obs := range frame.PerCamera {
			p := pipeline.FramePart{Cam: cam, Frame: fi, Obs: obs}
			if cam == 0 {
				p.Objects = frame.Objects
			}
			if err := src.Offer(p); err != nil {
				return fmt.Errorf("experiments: %s: %w", label, err)
			}
		}
		return nil
	}
	fi, eos, backlog := 0, false, 0.0
	for {
		// New arrivals since the last drain: load frames per frame
		// period of modeled processing time.
		backlog += float64(load) * float64(lat.lat) / float64(adaptFramePeriod)
		n := int(backlog)
		if n == 0 && src.Counters().QueueDepth == 0 {
			// Queue empty and nothing due: the engine is outrunning the
			// feed, so it waits for the next arrival (arrival-paced).
			n = 1
		}
		backlog -= float64(n)
		if backlog < 0 {
			backlog = 0
		}
		for b := 0; b < n && fi < len(setup.Test.Frames); b++ {
			if err := offer(fi); err != nil {
				return nil, zero, err
			}
			fi++
		}
		if fi >= len(setup.Test.Frames) && !eos {
			eos = true
			for cam := range setup.Test.Cameras {
				if err := src.Offer(pipeline.FramePart{Cam: cam, EOS: true}); err != nil {
					return nil, zero, fmt.Errorf("experiments: %s: %w", label, err)
				}
			}
		}
		more, err := eng.Step()
		if err != nil {
			return nil, zero, fmt.Errorf("experiments: %s: %w", label, err)
		}
		if !more {
			break
		}
	}
	rep, err := eng.Report()
	if err != nil {
		return nil, zero, fmt.Errorf("experiments: %s: %w", label, err)
	}
	return rep, src.Counters(), nil
}

// AdaptSweep measures what the degradation control loop buys under
// ingest overload: the evaluation frames arrive at a multiple of real
// time against a drain rate set by the engine's own modeled per-frame
// latency (runAdaptArm; drop-oldest admission), with the adapt
// controller on and off. All admission and ladder decisions are pure
// functions of queue and modeled window state, so the sweep is
// deterministic for every Workers value. pol's
// zero value defaults to slo=500ms, window=20, cooldown=2, max=3 with
// QueueHigh at half the fleet's total queue capacity; loads nil
// defaults to {1, 2, 4, 8}. Snapshots are labelled
// "adapt/<on|off>/load=<L>".
func AdaptSweep(setup *Setup, pol adapt.Policy, loads []int, opts Options) ([]AdaptPoint, error) {
	if len(loads) == 0 {
		loads = []int{1, 2, 4, 8}
	}
	if !pol.Enabled() {
		pol = adapt.Policy{
			SLO: 500 * time.Millisecond, Window: 20, Cooldown: 2, MaxLevel: 3,
			QueueHigh: 8 * len(setup.Test.Cameras),
		}
	}
	out := make([]AdaptPoint, len(loads))
	// Both arms of point i write disjoint fields of out[i], so the
	// fan-out is race-free.
	err := pool.Do(opts.Workers, 2*len(loads), func(k int) error {
		i, arm := k/2, k%2
		load := loads[i]
		armPol, armName := adapt.Policy{}, "off"
		if arm == 0 {
			armPol, armName = pol, "on"
		}
		label := fmt.Sprintf("adapt/%s/load=%d", armName, load)
		rep, c, err := runAdaptArm(setup, armPol, load, label, opts)
		if err != nil {
			return err
		}
		p := &out[i]
		if arm == 0 {
			p.Load = load
			p.Offered = len(setup.Test.Frames) * len(setup.Test.Cameras)
			p.OnRecall = rep.Recall
			p.OnP99 = rep.P99Slowest
			p.OnShed = c.Shed
			p.OnFrames = rep.Frames
			p.FinalLevel = rep.AdaptLevel
			p.Transitions = rep.AdaptTransitions
			p.SLOViolations = rep.SLOViolations
		} else {
			p.OffRecall = rep.Recall
			p.OffP99 = rep.P99Slowest
			p.OffShed = c.Shed
			p.OffFrames = rep.Frames
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ChaosPoint is one point of the camera-fault chaos sweep: the same
// deterministic outage schedule run twice — once with health tracking
// and failover on, once with the feature off — so the gap quantifies
// graceful degradation.
type ChaosPoint struct {
	// Rate is the configured long-run camera-frame outage fraction.
	Rate float64
	// OutageFrames is the realized number of camera-frames lost
	// (identical in both arms, by construction).
	OutageFrames int
	// FailoverRecall and NoFailoverRecall compare BALB recall with the
	// health tracker on (HealthK > 0) and off.
	FailoverRecall   float64
	NoFailoverRecall float64
	// FailoverP99 and NoFailoverP99 are the per-frame system-latency
	// P99s of the two arms.
	FailoverP99   time.Duration
	NoFailoverP99 time.Duration
	// Reassignments and Orphaned are the failover arm's ownership
	// transfers and lost objects.
	Reassignments int
	Orphaned      int
}

// ChaosSweep runs BALB under seeded camera-fault schedules of
// increasing outage rate (rates nil defaults to {0.05, 0.1, 0.2}),
// with and without health-tracked failover (healthK <= 0 defaults to
// 3), and reports recall plus tail latency per point. The two arms of
// a point share the identical fault schedule, so every difference is
// attributable to the failover machinery. Snapshots are labelled
// "chaos/r=<rate>/fo" and "chaos/r=<rate>/off".
func ChaosSweep(s *Setup, rates []float64, healthK int, opts Options) ([]ChaosPoint, error) {
	if len(rates) == 0 {
		rates = []float64{0.05, 0.1, 0.2}
	}
	if healthK <= 0 {
		healthK = 3
	}
	out := make([]ChaosPoint, len(rates))
	// Both arms of point i regenerate the identical schedule from the
	// same derived seed; the arms write disjoint fields of out[i], so
	// the fan-out is race-free.
	err := pool.Do(opts.Workers, 2*len(rates), func(k int) error {
		i, arm := k/2, k%2
		faults, err := camfault.Generate(camfault.Config{
			Seed: s.Seed + int64(i)*7919, Rate: rates[i], MeanOutage: 20, BootDelay: 2,
		}, len(s.Test.Cameras), len(s.Test.Frames))
		if err != nil {
			return fmt.Errorf("experiments: chaos rate %g: %w", rates[i], err)
		}
		popts := pipeline.Config{
			Sched: pipeline.Sched{Mode: pipeline.BALB, Workers: opts.Workers},
			Sim:   pipeline.Sim{Seed: s.Seed},
			Obs:   pipeline.Obs{Sink: opts.Sink},
			Fault: pipeline.Fault{CamFaults: faults},
		}
		if arm == 0 {
			popts.Fault.HealthK = healthK
			popts.Obs.Label = fmt.Sprintf("chaos/r=%g/fo", rates[i])
		} else {
			popts.Obs.Label = fmt.Sprintf("chaos/r=%g/off", rates[i])
		}
		rep, err := pipeline.Run(s.Test, s.Scenario.Profiles(), s.Model, popts)
		if err != nil {
			return fmt.Errorf("experiments: chaos rate %g: %w", rates[i], err)
		}
		p := &out[i]
		if arm == 0 {
			p.Rate = rates[i]
			p.OutageFrames = rep.OutageFrames
			p.FailoverRecall = rep.Recall
			p.FailoverP99 = rep.P99Slowest
			p.Reassignments = rep.Reassignments
			p.Orphaned = rep.OrphanedObjects
		} else {
			p.NoFailoverRecall = rep.Recall
			p.NoFailoverP99 = rep.P99Slowest
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// OcclusionResult compares recall with dynamic occlusions for standard
// BALB against redundancy-2 BALB — the paper's §V occlusion-hedging
// proposal ("assigning objects to multiple cameras with sufficiently
// different vantage points can also reduce occlusion-related failures").
type OcclusionResult struct {
	// BALBRecall is single-tracker BALB's recall under occlusion.
	BALBRecall float64
	// RedundantRecall is redundancy-2 BALB's recall under occlusion.
	RedundantRecall float64
	// BALBLatency and RedundantLatency are the Fig. 13 latency metrics.
	BALBLatency      time.Duration
	RedundantLatency time.Duration
}

// OcclusionStudy regenerates the scenario with dynamic occlusions
// enabled (occlusionFrac <= 0 defaults to 0.6) and measures how much
// redundancy-2 assignment recovers.
func OcclusionStudy(name string, seed int64, frames int, occlusionFrac float64) (*OcclusionResult, error) {
	if occlusionFrac <= 0 {
		occlusionFrac = 0.6
	}
	if frames <= 0 {
		frames = 800
	}
	s, err := workload.ByName(name, seed)
	if err != nil {
		return nil, err
	}
	s.World.OcclusionFrac = occlusionFrac
	trace, err := s.World.Run(frames)
	if err != nil {
		return nil, fmt.Errorf("experiments: occlusion study: %w", err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		return nil, fmt.Errorf("experiments: occlusion study: %w", err)
	}
	balb, err := pipeline.Run(test, s.Profiles(), model, pipeline.NewConfig(pipeline.BALB, seed))
	if err != nil {
		return nil, err
	}
	red, err := pipeline.Run(test, s.Profiles(), model, pipeline.Config{
		Sched: pipeline.Sched{Mode: pipeline.BALB, Redundancy: 2, RedundancySlack: 1.3},
		Sim:   pipeline.Sim{Seed: seed},
	})
	if err != nil {
		return nil, err
	}
	return &OcclusionResult{
		BALBRecall:       balb.Recall,
		RedundantRecall:  red.Recall,
		BALBLatency:      balb.MeanSlowest,
		RedundantLatency: red.MeanSlowest,
	}, nil
}
