package experiments

import (
	"fmt"
	"time"

	"mvs/internal/adapt"
	"mvs/internal/pipeline"
	"mvs/internal/profile"
	"mvs/internal/serve"
	"mvs/internal/workload"
)

// TenantArm summarizes one serving discipline at one tenant count:
// consolidated (cross-tenant shared batches) or dedicated (identical
// scheduling, batches sealed at tenant boundaries) at equal aggregate
// GPU capacity.
type TenantArm struct {
	// WorstP99 is the highest per-tenant P99 frame latency (queueing
	// included); MeanRecall averages tenant recalls.
	WorstP99   time.Duration
	MeanRecall float64
	// SLOViolations counts (tenant, epoch) pairs the pool priced over
	// the SLO; ShedTasks counts tasks its admission control dropped.
	SLOViolations int
	ShedTasks     int
	// Batches, SharedBatches and MeanOccupancy describe the packing:
	// launches, cross-tenant launches, and mean fill fraction.
	Batches       int
	SharedBatches int
	MeanOccupancy float64
	// Throughput is partial-region inspections per modeled second of
	// serving time.
	Throughput float64
}

// TenantPoint is one tenant count measured under both disciplines.
type TenantPoint struct {
	// Tenants is the number of independent pipeline engines sharing the
	// pool.
	Tenants      int
	Consolidated TenantArm
	Dedicated    TenantArm
}

// TenantSweep measures multi-tenant consolidated serving (docs/
// SERVING.md): for each tenant count it runs that many independent
// Independent-mode engines — same scenario trace, per-tenant detector
// seeds, each with its own adapt controller at the serving SLO —
// against a shared executor pool, once consolidating cross-tenant
// batches and once with dedicated per-tenant batch sealing at the same
// aggregate capacity. frames <= 0 defaults to 240, executors <= 0 to 4
// Xavier-class devices, slo <= 0 to 150ms, an empty counts to
// {1, 2, 4, 8, 16}. Arms run sequentially (each already fans out one
// goroutine per tenant); Options.Workers is deliberately not applied
// inside tenant engines, whose per-camera fan-out stays sequential.
func TenantSweep(name string, seed int64, frames, executors int, slo time.Duration, counts []int, opts Options) ([]TenantPoint, error) {
	if frames <= 0 {
		frames = 240
	}
	if executors <= 0 {
		executors = 4
	}
	if slo <= 0 {
		slo = 150 * time.Millisecond
	}
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	s, err := workload.ByName(name, seed)
	if err != nil {
		return nil, err
	}
	trace, err := s.World.Run(frames)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", name, err)
	}

	out := make([]TenantPoint, len(counts))
	for i, tenants := range counts {
		out[i].Tenants = tenants
		for arm, armName := range []string{"con", "ded"} {
			pool, err := serve.NewPool(serve.Config{
				Executors:   executors,
				Profile:     profile.Derived(profile.JetsonXavier),
				Consolidate: arm == 0,
				DefaultSLO:  slo,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: tenants=%d: %w", tenants, err)
			}
			specs := make([]serve.TenantSpec, tenants)
			for ti := range specs {
				cfg := pipeline.NewConfig(pipeline.Independent, seed+int64(ti)*31)
				cfg.Sched.Workers = 1
				cfg.Adapt.Policy = adapt.Policy{SLO: slo}
				cfg.Obs.Sink = opts.Sink
				cfg.Obs.Label = fmt.Sprintf("tenants/%d/%s/t%d", tenants, armName, ti)
				specs[ti] = serve.TenantSpec{
					ID:       fmt.Sprintf("t%d", ti),
					SLO:      slo,
					Source:   pipeline.NewTraceSource(trace),
					Profiles: s.Profiles(),
					Config:   cfg,
				}
			}
			results, err := serve.Run(pool, specs)
			if err != nil {
				return nil, fmt.Errorf("experiments: tenants=%d/%s: %w", tenants, armName, err)
			}
			stats := pool.Stats()
			a := TenantArm{
				SLOViolations: stats.SLOViolations,
				ShedTasks:     stats.ShedTasks,
				Batches:       stats.Batches,
				SharedBatches: stats.SharedBatches,
				MeanOccupancy: stats.MeanOccupancy,
			}
			if stats.Epochs > 0 {
				modeled := time.Duration(stats.Epochs) * serve.DefaultPeriod
				a.Throughput = float64(stats.Images) / modeled.Seconds()
			}
			for _, r := range results {
				if r.Report.P99Slowest > a.WorstP99 {
					a.WorstP99 = r.Report.P99Slowest
				}
				a.MeanRecall += r.Report.Recall / float64(tenants)
			}
			if arm == 0 {
				out[i].Consolidated = a
			} else {
				out[i].Dedicated = a
			}
		}
	}
	return out, nil
}
