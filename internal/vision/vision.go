// Package vision simulates the object detection DNN (the paper's YOLOv5)
// as a statistical black box: given the ground-truth objects present in
// an inspected area, it returns noisy detections with a size-dependent
// miss probability. This preserves the properties the scheduling
// framework actually depends on — small/distant objects are less
// reliably detected, localization is imprecise, partial-region inspection
// sees only what lies in the region — without running a neural network.
//
// Detections carry the ground-truth object ID *for scoring only*; no
// pipeline component may branch on it except metrics code, mirroring how
// a real evaluation matches detections to labels afterwards.
package vision

import (
	"fmt"
	"math"
	"math/rand"

	"mvs/internal/geom"
	"mvs/internal/scene"
)

// Detection is one detector output box.
type Detection struct {
	// Box is the detected bounding box in pixels.
	Box geom.Rect
	// Score is the detector confidence in (0, 1].
	Score float64
	// TruthID is the ground-truth object identity — for scoring only.
	TruthID int
}

// Config tunes the detector's statistical behaviour.
type Config struct {
	// MissBase is the miss probability for large, well-resolved objects
	// (default 0.02).
	MissBase float64
	// NoiseFrac is the per-coordinate localization noise as a fraction of
	// the box side (default 0.02).
	NoiseFrac float64
	// MinSide is the side length (pixels, sqrt of area) below which
	// detection probability decays linearly to zero (default 20).
	MinSide float64
	// RegionBonus multiplies the miss probability for partial-region
	// inspections, which centre the object and use native resolution
	// (default 0.5, i.e. partial inspection halves misses).
	RegionBonus float64
	// MinCoverage is the fraction of an object's box a partial region
	// must contain for the detector to recognize it (default 0.5): a
	// crop showing only a corner of a vehicle does not classify. This is
	// what makes stale quantized sizes costly over long scheduling
	// horizons (Fig. 14).
	MinCoverage float64
}

func (c Config) withDefaults() Config {
	if c.MissBase <= 0 {
		c.MissBase = 0.02
	}
	if c.NoiseFrac <= 0 {
		c.NoiseFrac = 0.02
	}
	if c.MinSide <= 0 {
		c.MinSide = 20
	}
	if c.RegionBonus <= 0 {
		c.RegionBonus = 0.5
	}
	if c.MinCoverage <= 0 {
		c.MinCoverage = 0.5
	}
	return c
}

// Detector is a simulated detection model. It is not safe for concurrent
// use; each camera owns one.
type Detector struct {
	cfg Config
	rng *rand.Rand
}

// NewDetector builds a detector with the given noise seed.
func NewDetector(seed int64, cfg Config) *Detector {
	return &Detector{
		cfg: cfg.withDefaults(),
		rng: rand.New(rand.NewSource(seed*0x9E3779B9 + 0x7F4A7C15)),
	}
}

// detectProb returns the probability of detecting a box of the given
// pixel area, with missScale scaling the miss rate (1 for full frames,
// RegionBonus for partial regions).
func (d *Detector) detectProb(area float64, missScale float64) float64 {
	side := math.Sqrt(area)
	base := 1 - d.cfg.MissBase*missScale
	if side >= d.cfg.MinSide {
		return base
	}
	return base * side / d.cfg.MinSide
}

// noisyBox perturbs a ground-truth box with localization noise.
func (d *Detector) noisyBox(box geom.Rect) geom.Rect {
	sx := box.W() * d.cfg.NoiseFrac
	sy := box.H() * d.cfg.NoiseFrac
	return geom.Rect{
		MinX: box.MinX + d.rng.NormFloat64()*sx,
		MinY: box.MinY + d.rng.NormFloat64()*sy,
		MaxX: box.MaxX + d.rng.NormFloat64()*sx,
		MaxY: box.MaxY + d.rng.NormFloat64()*sy,
	}
}

// DetectFull runs a simulated full-frame inspection over the camera's
// visible objects.
func (d *Detector) DetectFull(objs []scene.Observation) []Detection {
	return d.detect(objs, nil, 1)
}

// DetectRegion runs a simulated partial-region inspection: only objects
// whose box centre lies inside the region are candidates, and the miss
// probability is reduced by the region bonus.
func (d *Detector) DetectRegion(region geom.Rect, objs []scene.Observation) ([]Detection, error) {
	if region.Empty() {
		return nil, fmt.Errorf("vision: empty inspection region")
	}
	return d.detect(objs, &region, d.cfg.RegionBonus), nil
}

// DetectRegions runs partial-region inspections over a batch of regions,
// deduplicating objects that fall in several regions (the detector would
// return them once after non-max suppression).
func (d *Detector) DetectRegions(regions []geom.Rect, objs []scene.Observation) ([]Detection, error) {
	seen := make(map[int]bool)
	var out []Detection
	for _, r := range regions {
		dets, err := d.DetectRegion(r, objs)
		if err != nil {
			return nil, err
		}
		for _, det := range dets {
			if seen[det.TruthID] {
				continue
			}
			seen[det.TruthID] = true
			out = append(out, det)
		}
	}
	return out, nil
}

func (d *Detector) detect(objs []scene.Observation, region *geom.Rect, missScale float64) []Detection {
	var out []Detection
	for _, o := range objs {
		if region != nil {
			if !region.Contains(o.Box.Center()) {
				continue
			}
			if a := o.Box.Area(); a > 0 && region.Intersect(o.Box).Area()/a < d.cfg.MinCoverage {
				continue // crop shows too little of the object to classify
			}
		}
		p := d.detectProb(o.Box.Area(), missScale)
		if d.rng.Float64() > p {
			continue // missed
		}
		out = append(out, Detection{
			Box:     d.noisyBox(o.Box),
			Score:   0.5 + 0.5*p*d.rng.Float64(),
			TruthID: o.ObjectID,
		})
	}
	return out
}
