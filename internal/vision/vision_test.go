package vision

import (
	"testing"

	"mvs/internal/geom"
	"mvs/internal/scene"
)

func bigObs(id int) scene.Observation {
	return scene.Observation{
		ObjectID: id,
		Box:      geom.Rect{MinX: 100, MinY: 100, MaxX: 200, MaxY: 180},
	}
}

func tinyObs(id int) scene.Observation {
	return scene.Observation{
		ObjectID: id,
		Box:      geom.Rect{MinX: 100, MinY: 100, MaxX: 105, MaxY: 105},
	}
}

func TestDetectFullFindsLargeObjects(t *testing.T) {
	d := NewDetector(1, Config{})
	hits := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if len(d.DetectFull([]scene.Observation{bigObs(1)})) == 1 {
			hits++
		}
	}
	// MissBase 0.02 -> ~980 hits.
	if hits < 950 || hits > 1000 {
		t.Fatalf("hits = %d / %d", hits, trials)
	}
}

func TestDetectFullMissesTinyObjectsOften(t *testing.T) {
	d := NewDetector(2, Config{})
	hits := 0
	const trials = 1000
	for i := 0; i < trials; i++ {
		if len(d.DetectFull([]scene.Observation{tinyObs(1)})) == 1 {
			hits++
		}
	}
	// side 5 / MinSide 20 -> p ~= 0.245.
	if hits < 150 || hits > 350 {
		t.Fatalf("tiny hits = %d / %d", hits, trials)
	}
}

func TestDetectionNoiseIsBounded(t *testing.T) {
	d := NewDetector(3, Config{NoiseFrac: 0.02})
	obs := bigObs(1)
	for i := 0; i < 200; i++ {
		dets := d.DetectFull([]scene.Observation{obs})
		if len(dets) == 0 {
			continue
		}
		if iou := dets[0].Box.IoU(obs.Box); iou < 0.7 {
			t.Fatalf("noisy box drifted too far: IoU %v", iou)
		}
		if dets[0].Score <= 0 || dets[0].Score > 1 {
			t.Fatalf("score = %v", dets[0].Score)
		}
		if dets[0].TruthID != 1 {
			t.Fatalf("truth id = %d", dets[0].TruthID)
		}
	}
}

func TestDetectRegionFiltersByCenter(t *testing.T) {
	d := NewDetector(4, Config{MissBase: 0.001})
	objs := []scene.Observation{
		{ObjectID: 1, Box: geom.Rect{MinX: 10, MinY: 10, MaxX: 60, MaxY: 60}},     // centre (35,35)
		{ObjectID: 2, Box: geom.Rect{MinX: 300, MinY: 300, MaxX: 360, MaxY: 360}}, // centre (330,330)
	}
	region := geom.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	found1, found2 := 0, 0
	for i := 0; i < 100; i++ {
		dets, err := d.DetectRegion(region, objs)
		if err != nil {
			t.Fatal(err)
		}
		for _, det := range dets {
			switch det.TruthID {
			case 1:
				found1++
			case 2:
				found2++
			}
		}
	}
	if found1 < 95 {
		t.Fatalf("in-region object found %d/100", found1)
	}
	if found2 != 0 {
		t.Fatalf("out-of-region object found %d times", found2)
	}
}

func TestDetectRegionEmptyRegion(t *testing.T) {
	d := NewDetector(5, Config{})
	if _, err := d.DetectRegion(geom.Rect{}, nil); err == nil {
		t.Fatal("empty region accepted")
	}
}

func TestRegionBonusImprovesRecall(t *testing.T) {
	// With a high base miss rate, partial-region inspection must find the
	// object noticeably more often than full-frame inspection.
	cfg := Config{MissBase: 0.3, RegionBonus: 0.3}
	obs := bigObs(1)
	region := geom.Rect{MinX: 50, MinY: 50, MaxX: 250, MaxY: 250}

	dFull := NewDetector(6, cfg)
	dRegion := NewDetector(6, cfg)
	full, reg := 0, 0
	for i := 0; i < 2000; i++ {
		if len(dFull.DetectFull([]scene.Observation{obs})) == 1 {
			full++
		}
		dets, err := dRegion.DetectRegion(region, []scene.Observation{obs})
		if err != nil {
			t.Fatal(err)
		}
		if len(dets) == 1 {
			reg++
		}
	}
	if reg <= full {
		t.Fatalf("region recall %d not better than full %d", reg, full)
	}
}

func TestDetectRegionsDeduplicates(t *testing.T) {
	d := NewDetector(7, Config{MissBase: 0.001})
	obj := bigObs(1) // centre (150,140)
	regions := []geom.Rect{
		{MinX: 100, MinY: 100, MaxX: 200, MaxY: 200},
		{MinX: 120, MinY: 100, MaxX: 220, MaxY: 200}, // overlapping, same centre inside
	}
	dets, err := d.DetectRegions(regions, []scene.Observation{obj})
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("dedup failed: %d detections", len(dets))
	}
}

func TestDetectRegionsPropagatesError(t *testing.T) {
	d := NewDetector(8, Config{})
	if _, err := d.DetectRegions([]geom.Rect{{}}, nil); err == nil {
		t.Fatal("empty region in batch accepted")
	}
}

func TestDetectorDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) int {
		d := NewDetector(seed, Config{})
		total := 0
		for i := 0; i < 500; i++ {
			total += len(d.DetectFull([]scene.Observation{tinyObs(1)}))
		}
		return total
	}
	if run(42) != run(42) {
		t.Fatal("same seed differed")
	}
	if run(42) == run(43) {
		t.Log("note: different seeds coincided (possible but unlikely)")
	}
}

func TestDetectFullEmpty(t *testing.T) {
	d := NewDetector(9, Config{})
	if dets := d.DetectFull(nil); len(dets) != 0 {
		t.Fatalf("detections from nothing: %v", dets)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.MissBase != 0.02 || c.NoiseFrac != 0.02 || c.MinSide != 20 || c.RegionBonus != 0.5 {
		t.Fatalf("defaults = %+v", c)
	}
	custom := Config{MissBase: 0.1, NoiseFrac: 0.05, MinSide: 10, RegionBonus: 0.8}.withDefaults()
	if custom.MissBase != 0.1 || custom.MinSide != 10 {
		t.Fatalf("custom overridden: %+v", custom)
	}
}
