package adapt

import (
	"testing"
	"time"

	"mvs/internal/clock"
)

func testPolicy() Policy {
	return Policy{
		SLO:       100 * time.Millisecond,
		Window:    4,
		LowerFrac: 0.7,
		Cooldown:  2,
		MaxLevel:  3,
		QueueHigh: 64,
		DriftHigh: 8,
		Clock:     clock.NewFake(time.Unix(0, 0)),
	}
}

// feed pushes n identical samples.
func feed(c *Controller, n int, s Sample) {
	for i := 0; i < n; i++ {
		c.Observe(s)
	}
}

func TestDisabledControllerInert(t *testing.T) {
	c := NewController(Policy{})
	feed(c, 100, Sample{Latency: time.Hour, QueueDepth: 1 << 20, DeadCameras: 5})
	for i := 0; i < 10; i++ {
		if lvl, changed := c.Tick(); lvl != 0 || changed {
			t.Fatalf("disabled controller moved: level %d changed %v", lvl, changed)
		}
	}
	if c.SLOViolations() != 0 || c.Transitions() != 0 {
		t.Errorf("disabled controller counted: %d violations, %d transitions",
			c.SLOViolations(), c.Transitions())
	}
}

func TestDegradeAndRecoverFullCycle(t *testing.T) {
	c := NewController(testPolicy())
	// Sustained overload walks down one rung per cooldown expiry until
	// MaxLevel.
	over := Sample{Latency: 150 * time.Millisecond}
	prev := 0
	for tick := 0; tick < 20 && c.Level() < 3; tick++ {
		feed(c, 4, over)
		lvl, changed := c.Tick()
		if changed && lvl != prev+1 {
			t.Fatalf("tick %d: jumped %d -> %d (must move one rung)", tick, prev, lvl)
		}
		if changed {
			prev = lvl
		}
	}
	if c.Level() != 3 {
		t.Fatalf("sustained overload stopped at level %d", c.Level())
	}
	feed(c, 4, over)
	if lvl, _ := c.Tick(); lvl != 3 {
		t.Fatalf("exceeded MaxLevel: %d", lvl)
	}
	if c.SizeCap() != 64 || c.Stretch() != 8 {
		t.Fatalf("level 3 actuation: cap %d stretch %d", c.SizeCap(), c.Stretch())
	}

	// Pressure clears: recovery steps back to 0, one rung at a time.
	calm := Sample{Latency: 30 * time.Millisecond}
	for tick := 0; tick < 20 && c.Level() > 0; tick++ {
		feed(c, 4, calm)
		c.Tick()
	}
	if c.Level() != 0 {
		t.Fatalf("did not recover to level 0: %d", c.Level())
	}
	if c.SizeCap() != 0 || c.Stretch() != 1 {
		t.Fatalf("level 0 actuation: cap %d stretch %d", c.SizeCap(), c.Stretch())
	}
	if c.Transitions() != 6 {
		t.Errorf("transitions = %d want 6 (3 down + 3 up)", c.Transitions())
	}
}

func TestHysteresisBandHoldsLevel(t *testing.T) {
	// Latency inside the band (LowerFrac·SLO .. SLO) must neither
	// degrade nor recover: that dead zone is what stops oscillation
	// when load sits exactly at a boundary.
	c := NewController(testPolicy())
	feed(c, 4, Sample{Latency: 150 * time.Millisecond})
	c.Tick()
	if c.Level() != 1 {
		t.Fatalf("setup: level %d", c.Level())
	}
	// 85ms is between 70ms (recover edge) and 100ms (degrade edge).
	band := Sample{Latency: 85 * time.Millisecond}
	for tick := 0; tick < 12; tick++ {
		feed(c, 4, band)
		if lvl, changed := c.Tick(); changed || lvl != 1 {
			t.Fatalf("tick %d: moved to %d inside the hysteresis band", tick, lvl)
		}
	}
}

func TestCooldownPreventsFlappingAtBoundary(t *testing.T) {
	// Load alternating exactly across the SLO boundary every tick: the
	// cooldown must hold each level for ≥ Cooldown ticks, bounding the
	// transition rate to 1 per cooldown period rather than 1 per tick.
	pol := testPolicy()
	pol.Window = 2
	pol.Cooldown = 3
	c := NewController(pol)
	over := Sample{Latency: 101 * time.Millisecond} // just above SLO
	calm := Sample{Latency: 30 * time.Millisecond}  // well below recover edge
	ticks := 30
	for i := 0; i < ticks; i++ {
		if i%2 == 0 {
			feed(c, 2, over)
		} else {
			feed(c, 2, calm)
		}
		c.Tick()
	}
	// Without a cooldown this workload flips every tick (~30
	// transitions); with Cooldown=3 at most one change per 3 ticks.
	if max := ticks/pol.Cooldown + 1; c.Transitions() > max {
		t.Errorf("flapping: %d transitions in %d ticks (cooldown %d allows ≤ %d)",
			c.Transitions(), ticks, pol.Cooldown, max)
	}
	if c.Transitions() == 0 {
		t.Error("controller never moved under boundary load")
	}
}

func TestDeadCameraForcesAndHoldsRungOne(t *testing.T) {
	c := NewController(testPolicy())
	// A dead camera degrades even with latency and queues healthy.
	feed(c, 4, Sample{Latency: 20 * time.Millisecond, DeadCameras: 1})
	if lvl, changed := c.Tick(); !changed || lvl != 1 {
		t.Fatalf("dead camera did not force rung 1: level %d changed %v", lvl, changed)
	}
	// And holds rung 1 for as long as the camera stays dead.
	for tick := 0; tick < 10; tick++ {
		feed(c, 4, Sample{Latency: 20 * time.Millisecond, DeadCameras: 1})
		if lvl, _ := c.Tick(); lvl != 1 {
			t.Fatalf("tick %d: level %d while camera dead", tick, lvl)
		}
	}
	// Camera recovers: the ladder releases back to 0.
	for tick := 0; tick < 10 && c.Level() > 0; tick++ {
		feed(c, 4, Sample{Latency: 20 * time.Millisecond})
		c.Tick()
	}
	if c.Level() != 0 {
		t.Fatalf("did not release after camera recovery: level %d", c.Level())
	}
}

func TestQueuePressureDegrades(t *testing.T) {
	c := NewController(testPolicy())
	feed(c, 4, Sample{Latency: 20 * time.Millisecond, QueueDepth: 100})
	if lvl, _ := c.Tick(); lvl != 1 {
		t.Fatalf("queue pressure ignored: level %d", lvl)
	}
	// Queue must drain below QueueHigh/2 before recovery.
	for i := 0; i < 6; i++ {
		feed(c, 4, Sample{Latency: 20 * time.Millisecond, QueueDepth: 40})
		if lvl, _ := c.Tick(); lvl != 1 {
			t.Fatalf("recovered with queue at 40 (> high/2): level %d", lvl)
		}
	}
	feed(c, 4, Sample{Latency: 20 * time.Millisecond, QueueDepth: 0})
	c.Tick()
	feed(c, 4, Sample{Latency: 20 * time.Millisecond, QueueDepth: 0})
	if lvl, _ := c.Tick(); lvl != 0 {
		t.Fatalf("did not recover after drain: level %d", lvl)
	}
}

func TestDriftShrinksStretch(t *testing.T) {
	c := NewController(testPolicy())
	feed(c, 4, Sample{Latency: 150 * time.Millisecond})
	c.Tick()
	c.Tick()
	feed(c, 4, Sample{Latency: 150 * time.Millisecond})
	c.Tick() // level 2 after cooldown
	if c.Level() != 2 || c.Stretch() != 4 {
		t.Fatalf("setup: level %d stretch %d", c.Level(), c.Stretch())
	}
	// High association drift halves the stretch without changing level.
	feed(c, 4, Sample{Latency: 85 * time.Millisecond, Drift: 3}) // sum 12 > 8
	c.Tick()
	if c.Level() != 2 || c.Stretch() != 2 {
		t.Errorf("drift guard: level %d stretch %d want level 2 stretch 2",
			c.Level(), c.Stretch())
	}
	// Drift clears: stretch restores.
	feed(c, 4, Sample{Latency: 85 * time.Millisecond})
	c.Tick()
	if c.Stretch() != 4 {
		t.Errorf("stretch did not restore: %d", c.Stretch())
	}
}

func TestSLOViolationCounting(t *testing.T) {
	c := NewController(testPolicy())
	c.Observe(Sample{Latency: 101 * time.Millisecond})
	c.Observe(Sample{Latency: 100 * time.Millisecond}) // equal is not a violation
	c.Observe(Sample{Latency: 99 * time.Millisecond})
	if got := c.SLOViolations(); got != 1 {
		t.Errorf("violations = %d want 1", got)
	}
}

func TestControllerDeterministic(t *testing.T) {
	run := func() []int {
		c := NewController(testPolicy())
		var levels []int
		for tick := 0; tick < 50; tick++ {
			lat := 30 * time.Millisecond
			if tick%7 < 4 {
				lat = 180 * time.Millisecond
			}
			feed(c, 4, Sample{Latency: lat, QueueDepth: tick % 90, Drift: tick % 3})
			lvl, _ := c.Tick()
			levels = append(levels, lvl)
		}
		return levels
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tick %d: level %d vs %d", i, a[i], b[i])
		}
	}
}

func TestHistoryStamped(t *testing.T) {
	pol := testPolicy()
	fake := clock.NewFake(time.Unix(100, 0))
	pol.Clock = fake
	c := NewController(pol)
	feed(c, 4, Sample{Latency: 200 * time.Millisecond})
	c.Tick()
	h := c.History()
	if len(h) != 1 || h[0].Level != 1 || h[0].Tick != 1 {
		t.Fatalf("history = %+v", h)
	}
	if !h[0].At.Equal(time.Unix(100, 0)) {
		t.Errorf("history not stamped from injected clock: %v", h[0].At)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	pol := Policy{SLO: 500 * time.Millisecond, Window: 20, LowerFrac: 0.6,
		Cooldown: 4, MaxLevel: 2, QueueHigh: 32, DriftHigh: 5, Seed: 9}
	spec := pol.Spec()
	got, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	got.Clock = nil
	want := pol
	if got != want {
		t.Errorf("round trip: %+v != %+v (spec %q)", got, want, spec)
	}
	if (Policy{}).Spec() != "" {
		t.Error("disabled policy has a non-empty spec")
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"slo",               // no value
		"slo=0s",            // non-positive SLO
		"slo=500ms,lower=2", // lower out of range
		"slo=500ms,window=0",
		"slo=500ms,bogus=1",
		"window=10", // enables nothing
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
	if p, err := ParseSpec(""); err != nil || p.Enabled() {
		t.Errorf("empty spec: %+v, %v", p, err)
	}
}

func TestLadderTables(t *testing.T) {
	wantCap := map[int]int{-1: 0, 0: 0, 1: 256, 2: 128, 3: 64, 4: 64, 9: 64}
	for lvl, cap := range wantCap {
		if got := SizeCapFor(lvl); got != cap {
			t.Errorf("SizeCapFor(%d) = %d want %d", lvl, got, cap)
		}
	}
	wantStretch := map[int]int{-1: 1, 0: 1, 1: 2, 2: 4, 3: 8, 6: 64, 9: 64}
	for lvl, st := range wantStretch {
		if got := StretchFor(lvl); got != st {
			t.Errorf("StretchFor(%d) = %d want %d", lvl, got, st)
		}
	}
}

func BenchmarkAdaptController(b *testing.B) {
	pol := testPolicy()
	pol.Window = 40
	c := NewController(pol)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(Sample{
			Latency:    time.Duration(i%200) * time.Millisecond,
			QueueDepth: i % 128,
			Drift:      i % 3,
		})
		if i%10 == 0 {
			c.Tick()
		}
	}
}
