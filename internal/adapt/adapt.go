// Package adapt closes the configuration loop the paper leaves open: a
// deterministic controller that watches a sliding window of modeled
// per-frame latency, ingest queue depth, and camera-health state, and
// walks a graceful-degradation ladder to keep frame latency inside an
// SLO when offered load or fault pressure exceeds capacity.
//
// The ladder has three actuators, one per rung family:
//
//  1. batch limits come from the profiler's measured latency inflection
//     point (profile.Derived / Profiler.Measure) rather than static
//     constants, so the controller's latency model tracks the hardware;
//  2. the key-frame association interval stretches under load
//     (1<<level) and shrinks back when association drift — orphaned
//     objects and ownership reassignments — says tracking is decaying;
//  3. per-object inspection input sizes are capped (512 → 256 → 128 →
//     64) so regular-frame inspection work shrinks with each rung.
//
// Hysteresis and a cooldown keep the ladder from flapping: the
// controller degrades when the window-high latency exceeds the SLO (or
// queues back up, or a camera dies) and recovers only when it falls
// below LowerFrac·SLO with queues drained, with at least Cooldown ticks
// between any two level changes.
//
// Determinism contract (docs/ARCHITECTURE.md): the controller is a pure
// function of the observed sample window and the policy (including its
// seed) — wall-clock time never influences a decision, so the same
// trace and policy produce the same level sequence at every worker
// count, and recorded runs replay byte-identically. The injected Clock
// is used only to stamp the human-facing transition history.
package adapt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"mvs/internal/clock"
)

// Standard ladder tables. Level 0 is the undegraded baseline; rungs
// deepen monotonically. MaxLevel clamps how deep a controller may walk.
var sizeCaps = []int{0, 256, 128, 64}

// StretchFor returns the key-frame interval multiplier at a ladder
// level: 1, 2, 4, 8, ... — the association interval stretches
// geometrically so each rung roughly halves key-frame (full-frame
// inspection) density.
func StretchFor(level int) int {
	if level < 0 {
		return 1
	}
	if level > 6 { // 64x: far past any configured MaxLevel
		level = 6
	}
	return 1 << level
}

// SizeCapFor returns the per-object inspection size cap at a ladder
// level: 0 means uncapped; deeper rungs cap the quantized input size at
// 256, 128, and finally 64 pixels.
func SizeCapFor(level int) int {
	if level < 0 {
		return 0
	}
	if level >= len(sizeCaps) {
		return sizeCaps[len(sizeCaps)-1]
	}
	return sizeCaps[level]
}

// Policy configures a Controller. The zero value is a disabled
// controller (SLO == 0); NewController fills the remaining defaults.
type Policy struct {
	// SLO is the modeled per-frame latency objective. 0 disables the
	// controller entirely: it observes nothing and stays at level 0.
	SLO time.Duration
	// Window is the sliding-window length in frames over which latency,
	// queue depth, and drift are aggregated (default 40).
	Window int
	// LowerFrac positions the recovery edge of the hysteresis band: the
	// controller steps back up only when the window-high latency is
	// below LowerFrac·SLO (default 0.7).
	LowerFrac float64
	// Cooldown is the minimum number of ticks between two level
	// changes, in either direction (default 2).
	Cooldown int
	// MaxLevel is the deepest ladder rung (default 3).
	MaxLevel int
	// QueueHigh is the mean ingest queue depth that forces degradation;
	// recovery additionally requires the mean to drain below half of
	// it. 0 (the default) ignores queue depth.
	QueueHigh int
	// DriftHigh is the window sum of association-drift events (orphaned
	// objects + reassignments) past which the key-frame stretch is
	// halved so association re-anchors sooner. 0 (the default) ignores
	// drift.
	DriftHigh int
	// Seed feeds any stochastic policy extension. The built-in ladder
	// is deterministic without it, but the seed is part of the recorded
	// spec so a replayed run reconstructs an identical controller.
	Seed int64
	// Clock stamps the transition history (observability only — never a
	// decision input). Defaults to clock.System.
	Clock clock.Clock `json:"-"`
}

// Enabled reports whether the policy actually engages the controller.
func (p Policy) Enabled() bool { return p.SLO > 0 }

func (p Policy) withDefaults() Policy {
	if p.Window <= 0 {
		p.Window = 40
	}
	if p.LowerFrac <= 0 || p.LowerFrac >= 1 {
		p.LowerFrac = 0.7
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2
	}
	if p.MaxLevel <= 0 {
		p.MaxLevel = 3
	}
	if p.QueueHigh < 0 {
		p.QueueHigh = 0
	}
	if p.DriftHigh < 0 {
		p.DriftHigh = 0
	}
	if p.Clock == nil {
		p.Clock = clock.System{}
	}
	return p
}

// Spec serializes the policy in the -adapt flag syntax, canonical key
// order, so a run's manifest can reconstruct the exact controller.
func (p Policy) Spec() string {
	if !p.Enabled() {
		return ""
	}
	p = p.withDefaults()
	parts := []string{
		"slo=" + p.SLO.String(),
		"window=" + strconv.Itoa(p.Window),
		"lower=" + strconv.FormatFloat(p.LowerFrac, 'g', -1, 64),
		"cooldown=" + strconv.Itoa(p.Cooldown),
		"max=" + strconv.Itoa(p.MaxLevel),
		"queue=" + strconv.Itoa(p.QueueHigh),
		"drift=" + strconv.Itoa(p.DriftHigh),
	}
	if p.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatInt(p.Seed, 10))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses the -adapt flag syntax: comma-separated key=value
// pairs. Keys: slo (duration, required to enable), window, lower,
// cooldown, max, queue, drift, seed:
//
//	slo=500ms,window=40,lower=0.7,cooldown=2,max=3,queue=64,drift=8
//
// An empty spec returns a disabled policy.
func ParseSpec(spec string) (Policy, error) {
	var p Policy
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("adapt: bad field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "slo":
			p.SLO, err = time.ParseDuration(val)
			if err == nil && p.SLO <= 0 {
				err = fmt.Errorf("slo %v must be positive", p.SLO)
			}
		case "window":
			p.Window, err = parsePositive(val)
		case "lower":
			p.LowerFrac, err = strconv.ParseFloat(val, 64)
			if err == nil && (p.LowerFrac <= 0 || p.LowerFrac >= 1) {
				err = fmt.Errorf("lower %v out of (0,1)", p.LowerFrac)
			}
		case "cooldown":
			p.Cooldown, err = parsePositive(val)
		case "max":
			p.MaxLevel, err = parsePositive(val)
		case "queue":
			p.QueueHigh, err = strconv.Atoi(val)
		case "drift":
			p.DriftHigh, err = strconv.Atoi(val)
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			return p, fmt.Errorf("adapt: unknown key %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("adapt: field %q: %w", field, err)
		}
	}
	if !p.Enabled() {
		return p, fmt.Errorf("adapt: spec %q sets no slo", spec)
	}
	return p, nil
}

func parsePositive(val string) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("%d must be positive", n)
	}
	return n, nil
}

// Sample is one frame's worth of controller input, all modeled
// quantities: the frame's modeled latency, the ingest queue depth
// behind it (0 for trace sources), the number of cameras currently
// marked dead, and the association-drift events (orphaned objects +
// reassignments) charged on this frame.
type Sample struct {
	Latency     time.Duration
	QueueDepth  int
	DeadCameras int
	Drift       int
}

// Transition is one recorded level change, for the human-facing
// history. At comes from the injected clock and is never a decision
// input.
type Transition struct {
	Tick  int
	Level int
	At    time.Time
}

// Controller walks the degradation ladder. Observe feeds it one sample
// per frame; Tick, called between association horizons, re-evaluates
// the window and moves at most one rung. Not safe for concurrent use —
// the engine and scheduler drive it from their round loops.
type Controller struct {
	pol Policy

	win  []Sample
	n    int // samples in window (≤ len(win))
	next int // ring write index

	level   int
	cool    int // ticks until another change is allowed
	ticks   int
	stretch int

	transitions   int
	sloViolations int
	history       []Transition
}

// NewController builds a controller for the policy. A disabled policy
// (SLO == 0) yields a controller that is inert but safe to drive.
func NewController(pol Policy) *Controller {
	pol = pol.withDefaults()
	return &Controller{
		pol:     pol,
		win:     make([]Sample, pol.Window),
		stretch: 1,
	}
}

// Policy returns the controller's normalized policy.
func (c *Controller) Policy() Policy { return c.pol }

// Observe records one frame's sample and charges an SLO violation if
// the frame's modeled latency exceeded the objective.
func (c *Controller) Observe(s Sample) {
	if !c.pol.Enabled() {
		return
	}
	c.win[c.next] = s
	c.next = (c.next + 1) % len(c.win)
	if c.n < len(c.win) {
		c.n++
	}
	if s.Latency > c.pol.SLO {
		c.sloViolations++
	}
}

// window aggregates the current sample window: the high-water latency,
// mean queue depth, drift-event sum, and the most recent dead-camera
// count.
func (c *Controller) window() (hi time.Duration, queueMean float64, drift, dead int) {
	if c.n == 0 {
		return 0, 0, 0, 0
	}
	var queueSum int
	for i := 0; i < c.n; i++ {
		s := c.win[i]
		if s.Latency > hi {
			hi = s.Latency
		}
		queueSum += s.QueueDepth
		drift += s.Drift
	}
	last := (c.next - 1 + len(c.win)) % len(c.win)
	dead = c.win[last].DeadCameras
	return hi, float64(queueSum) / float64(c.n), drift, dead
}

// Tick re-evaluates the window and moves the ladder at most one rung,
// returning the level now in force and whether it changed. The engine
// calls it once per association horizon, before the key frame applies
// the level's stretch and size cap.
func (c *Controller) Tick() (level int, changed bool) {
	c.ticks++
	if c.cool > 0 {
		c.cool--
	}
	if !c.pol.Enabled() || c.n == 0 {
		return c.level, false
	}
	hi, queueMean, drift, dead := c.window()

	overQueue := c.pol.QueueHigh > 0 && queueMean > float64(c.pol.QueueHigh)
	degrade := hi > c.pol.SLO || overQueue || (dead > 0 && c.level < 1)
	lowLatency := hi < time.Duration(float64(c.pol.SLO)*c.pol.LowerFrac)
	queueDrained := c.pol.QueueHigh == 0 || queueMean <= float64(c.pol.QueueHigh)/2
	// A dead camera holds the ladder at rung ≥ 1 (inspection-size
	// relief for the fleet absorbing its objects) until it recovers.
	recover := lowLatency && queueDrained && (c.level > 1 || dead == 0)

	if c.cool == 0 {
		switch {
		case degrade && c.level < c.pol.MaxLevel:
			c.level++
			changed = true
		case !degrade && recover && c.level > 0:
			c.level--
			changed = true
		}
		if changed {
			c.cool = c.pol.Cooldown
			c.transitions++
			c.history = append(c.history, Transition{
				Tick: c.ticks, Level: c.level, At: c.pol.Clock.Now(),
			})
		}
	}

	// The load rung sets the stretch; association drift shrinks it so
	// key-frame re-association happens sooner when tracking decays.
	st := StretchFor(c.level)
	if c.pol.DriftHigh > 0 && drift > c.pol.DriftHigh && st > 1 {
		st >>= 1
	}
	c.stretch = st
	return c.level, changed
}

// Level returns the rung currently in force.
func (c *Controller) Level() int { return c.level }

// Stretch returns the key-frame interval multiplier currently in force
// (computed at the last Tick; 1 at level 0 or before any tick).
func (c *Controller) Stretch() int { return c.stretch }

// SizeCap returns the per-object inspection size cap currently in
// force (0 = uncapped).
func (c *Controller) SizeCap() int { return SizeCapFor(c.level) }

// Transitions returns the total number of level changes so far.
func (c *Controller) Transitions() int { return c.transitions }

// SLOViolations returns the number of observed frames whose modeled
// latency exceeded the SLO.
func (c *Controller) SLOViolations() int { return c.sloViolations }

// History returns the recorded transitions, oldest first. The slice is
// sorted by tick already; it is copied so callers can keep it.
func (c *Controller) History() []Transition {
	h := append([]Transition(nil), c.history...)
	sort.SliceStable(h, func(i, j int) bool { return h[i].Tick < h[j].Tick })
	return h
}
