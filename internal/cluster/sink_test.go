package cluster

import (
	"bytes"
	"log"
	"net"
	"sync"
	"testing"
	"time"

	"mvs/internal/metrics"
)

func TestSchedulerOptions(t *testing.T) {
	model, profiles := testModel(t)

	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	sink := metrics.NewChannelSink(1, 4)
	s, err := NewScheduler(model, profiles, 0, WithLogger(logger), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if s.logger != logger {
		t.Fatal("WithLogger not applied")
	}
	if s.sink != metrics.Sink(sink) {
		t.Fatal("WithSink not applied")
	}

	// nil options keep the safe defaults rather than installing nils.
	s2, err := NewScheduler(model, profiles, 0, WithLogger(nil), WithSink(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s2.logger == nil {
		t.Fatal("WithLogger(nil) removed the default logger")
	}
	if _, ok := s2.sink.(metrics.NopSink); !ok {
		t.Fatalf("WithSink(nil) sink = %T, want NopSink", s2.sink)
	}
}

// startSchedulerWithSink mirrors startScheduler but attaches a sink and
// returns the Serve error channel so shutdown tests can assert on it.
func startSchedulerWithSink(t *testing.T, sink metrics.Sink) (*Scheduler, string, chan error) {
	t.Helper()
	model, profiles := testModel(t)
	s, err := NewScheduler(model, profiles, 0, WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	t.Cleanup(s.Close)
	return s, ln.Addr().String(), serveErr
}

func TestSchedulerRoundSnapshots(t *testing.T) {
	sink := metrics.NewChannelSink(1, 16)
	_, addr, _ := startSchedulerWithSink(t, sink)

	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	for round := 0; round < 2; round++ {
		frame := round * 10
		var wg sync.WaitGroup
		var e0, e1 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, e0 = c0.KeyFrame(frame, []TrackReport{
				{TrackID: frame + 1, Box: [4]float64{600, 300, 700, 380}, Size: 128},
			}, 5*time.Second)
		}()
		go func() {
			defer wg.Done()
			_, e1 = c1.KeyFrame(frame, nil, 5*time.Second)
		}()
		wg.Wait()
		if e0 != nil || e1 != nil {
			t.Fatalf("round %d: %v / %v", round, e0, e1)
		}
	}

	for round := 0; round < 2; round++ {
		var snap metrics.Snapshot
		select {
		case snap = <-sink.Snapshots():
		case <-time.After(5 * time.Second):
			t.Fatalf("no snapshot for round %d", round)
		}
		if snap.Source != metrics.SourceScheduler {
			t.Fatalf("source = %q", snap.Source)
		}
		if snap.Seq != round || snap.Frame != round*10 {
			t.Fatalf("round %d: seq=%d frame=%d", round, snap.Seq, snap.Frame)
		}
		if snap.RoundLatency <= 0 {
			t.Fatalf("round %d: RoundLatency = %v", round, snap.RoundLatency)
		}
		if len(snap.Cameras) != 2 {
			t.Fatalf("round %d: %d cameras", round, len(snap.Cameras))
		}
		if snap.Objects < 1 {
			t.Fatalf("round %d: objects = %d", round, snap.Objects)
		}
		assigned := 0
		for ci, cs := range snap.Cameras {
			if cs.Camera != ci {
				t.Fatalf("round %d: cameras out of order: %v", round, snap.Cameras)
			}
			assigned += cs.Assignments
			if cs.Assignments > 0 && cs.Batches < 1 {
				t.Fatalf("round %d: camera %d has %d assignments but no batches",
					round, ci, cs.Assignments)
			}
			if cs.BatchOccupancy < 0 || cs.BatchOccupancy > 1 {
				t.Fatalf("round %d: occupancy = %v", round, cs.BatchOccupancy)
			}
		}
		if assigned != snap.Objects {
			t.Fatalf("round %d: %d assignments for %d objects", round, assigned, snap.Objects)
		}
	}
}

// roundLog is a concurrency-safe metrics.RoundSink.
type roundLog struct {
	mu     sync.Mutex
	rounds []metrics.Round
}

func (l *roundLog) RecordRound(r metrics.Round) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rounds = append(l.rounds, r)
}

func (l *roundLog) snapshot() []metrics.Round {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]metrics.Round(nil), l.rounds...)
}

// TestSchedulerRoundDecisions drives two scheduling rounds and checks
// the WithRounds decision stream: gap-free Seq, the round's priority
// order as a fleet permutation, and assignment counts consistent with
// the object count.
func TestSchedulerRoundDecisions(t *testing.T) {
	model, profiles := testModel(t)
	rec := &roundLog{}
	s, err := NewScheduler(model, profiles, 0, WithRounds(rec))
	if err != nil {
		t.Fatal(err)
	}
	if s2, err := NewScheduler(model, profiles, 0, WithRounds(nil)); err != nil || s2.roundSink != nil {
		t.Fatalf("WithRounds(nil) must keep the disabled default (err=%v)", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(s.Close)
	addr := ln.Addr().String()

	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	for round := 0; round < 2; round++ {
		frame := round * 10
		var wg sync.WaitGroup
		var e0, e1 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, e0 = c0.KeyFrame(frame, []TrackReport{
				{TrackID: frame + 1, Box: [4]float64{600, 300, 700, 380}, Size: 128},
			}, 5*time.Second)
		}()
		go func() {
			defer wg.Done()
			_, e1 = c1.KeyFrame(frame, nil, 5*time.Second)
		}()
		wg.Wait()
		if e0 != nil || e1 != nil {
			t.Fatalf("round %d: %v / %v", round, e0, e1)
		}
	}

	rounds := rec.snapshot()
	if len(rounds) != 2 {
		t.Fatalf("recorded %d rounds, want 2", len(rounds))
	}
	for i, rd := range rounds {
		if rd.Source != metrics.SourceScheduler {
			t.Fatalf("round %d source = %q", i, rd.Source)
		}
		if rd.Seq != i || rd.Frame != i*10 {
			t.Fatalf("round %d: seq=%d frame=%d", i, rd.Seq, rd.Frame)
		}
		if rd.RoundLatency <= 0 {
			t.Fatalf("round %d: RoundLatency = %v", i, rd.RoundLatency)
		}
		if len(rd.Priority) != 2 {
			t.Fatalf("round %d priority %v, want a 2-camera order", i, rd.Priority)
		}
		seen := map[int]bool{}
		for _, c := range rd.Priority {
			if c < 0 || c > 1 || seen[c] {
				t.Fatalf("round %d priority %v is not a fleet permutation", i, rd.Priority)
			}
			seen[c] = true
		}
		total := 0
		for _, n := range rd.Assigned {
			total += n
		}
		if total != rd.Objects || rd.Objects < 1 {
			t.Fatalf("round %d: %d assigned for %d objects", i, total, rd.Objects)
		}
	}
}

func TestCloseUnblocksServe(t *testing.T) {
	s, addr, serveErr := startSchedulerWithSink(t, metrics.NopSink{})

	// A connected camera keeps a handler goroutine alive; Close must
	// still bring Serve down.
	c, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	s.Close()
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v on clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}

	// Serve after Close declines immediately and closes the listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(ln); err != nil {
		t.Fatalf("Serve after Close = %v", err)
	}
	if _, err := ln.Accept(); err == nil {
		t.Fatal("listener left open by post-Close Serve")
	}
}

// closedTrackingSink fails the test if a snapshot arrives after the
// owner declared the scheduler closed — the Close contract.
type closedTrackingSink struct {
	t *testing.T

	mu     sync.Mutex
	closed bool
	n      int
}

func (s *closedTrackingSink) RecordFrame(metrics.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.t.Error("snapshot recorded after Close returned")
	}
	s.n++
}

func (s *closedTrackingSink) Flush() error { return nil }

func (s *closedTrackingSink) markClosed() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}

// TestNoSnapshotAfterClose closes the scheduler while a round is in
// flight. Whatever the round's fate, no snapshot may reach the sink
// after Close has returned. Run with -race this also exercises the
// Serve/handle/Close shutdown paths for data races.
func TestNoSnapshotAfterClose(t *testing.T) {
	sink := &closedTrackingSink{t: t}
	s, addr, serveErr := startSchedulerWithSink(t, sink)

	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Fire a round and immediately race Close against its completion.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = c0.KeyFrame(0, []TrackReport{
			{TrackID: 1, Box: [4]float64{600, 300, 700, 380}, Size: 128},
		}, 2*time.Second)
	}()
	go func() {
		defer wg.Done()
		_, _ = c1.KeyFrame(0, nil, 2*time.Second)
	}()

	s.Close()
	sink.markClosed()
	wg.Wait()

	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v on clean shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Recording anything more now would be a bug whichever way the race
	// went; give late goroutines (there should be none) a beat to trip
	// the check before the test ends.
	time.Sleep(50 * time.Millisecond)
}
