// Package cluster implements the testbed's communication layer: camera
// nodes connect to a central scheduler over TCP (the paper uses "TCP
// socket programming for reliable data communication between the edge
// devices and the central scheduler"). At each key frame every camera
// uploads its detected-object list; the scheduler associates them across
// cameras, runs the central-stage BALB algorithm, and replies to each
// camera with the tracks it keeps, the tracks it shadows (with their
// assigned camera), and the horizon's camera priority order.
//
// Messages are length-prefixed JSON for debuggability; frames are small
// (tens of boxes), so the codec favours clarity over compactness.
//
// Two scheduler services share the protocol. Scheduler runs one global
// round loop over the whole fleet — the paper's shape. ShardedScheduler
// partitions the fleet into overlap groups (internal/shard) and runs
// one independent Scheduler round loop per shard, coordinated only
// through an in-memory boundary hand-off bus; a node cannot tell which
// it is talking to, except that shard-scoped assignments carry their
// camera roster (Assignment.Roster). docs/ARCHITECTURE.md §2 has the
// design, docs/SCALING.md §3 the measured effect.
package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxMessageSize bounds a single message to protect against corrupt
// length prefixes.
const MaxMessageSize = 4 << 20

// Message types. Receivers must skip types they do not understand (see
// Client.KeyFrame and the scheduler's handle loop), so new types can be
// added without breaking older peers.
const (
	TypeHello      = "hello"
	TypeDetections = "detections"
	TypeAssignment = "assignment"
	TypeError      = "error"
	// TypePing and TypePong are lightweight liveness heartbeats: a node
	// pings between key frames, the scheduler echoes a pong and refreshes
	// the camera's liveness lease (docs/FAULTS.md).
	TypePing = "ping"
	TypePong = "pong"
)

// Heartbeat is the ping/pong payload. Seq lets a sender match pongs to
// pings; the scheduler echoes it untouched.
type Heartbeat struct {
	// Camera is the pinging node's index.
	Camera int `json:"camera"`
	// Seq is a sender-local heartbeat counter.
	Seq int `json:"seq,omitempty"`
}

// Hello registers a camera with the scheduler.
type Hello struct {
	// Camera is the node's index in the deployment roster.
	Camera int `json:"camera"`
	// FrameW, FrameH are the camera's image dimensions in pixels; the
	// scheduler uses them to compute the node's cell grid. Zero means
	// the node does not need masks (protocol tests, probes).
	FrameW float64 `json:"frame_w,omitempty"`
	FrameH float64 `json:"frame_h,omitempty"`
}

// HelloAck is the scheduler's registration reply. The per-cell coverage
// sets are static (cameras are fixed), so they are shipped once here;
// the per-horizon priority order arrives with every Assignment.
type HelloAck struct {
	// Camera echoes the registered index.
	Camera int `json:"camera"`
	// GridCols, GridRows shape the camera's cell grid.
	GridCols int `json:"grid_cols,omitempty"`
	GridRows int `json:"grid_rows,omitempty"`
	// Coverage[cell] lists the cameras predicted to see an average
	// object centred in that cell (always includes this camera).
	Coverage [][]int `json:"coverage,omitempty"`
}

// TrackReport is one tracked object as reported by a camera at a key
// frame.
type TrackReport struct {
	// TrackID is the camera-local track identifier.
	TrackID int `json:"track_id"`
	// Box is the pixel bounding box [minX, minY, maxX, maxY].
	Box [4]float64 `json:"box"`
	// Size is the quantized target size for this horizon.
	Size int `json:"size"`
}

// Detections is a camera's key-frame upload.
type Detections struct {
	// Camera is the sender's index.
	Camera int `json:"camera"`
	// Frame is the key-frame index (used to align rounds).
	Frame int `json:"frame"`
	// Tracks are the camera's current tracks.
	Tracks []TrackReport `json:"tracks"`
}

// ShadowOrder tells a camera to stop inspecting a track and shadow it.
type ShadowOrder struct {
	// TrackID is the camera-local track to shadow.
	TrackID int `json:"track_id"`
	// AssignedCamera is the camera now responsible for the object.
	AssignedCamera int `json:"assigned_camera"`
}

// Assignment is the scheduler's key-frame reply to one camera.
type Assignment struct {
	// Frame echoes the round's key-frame index.
	Frame int `json:"frame"`
	// Keep lists track IDs the camera keeps inspecting.
	Keep []int `json:"keep"`
	// Shadows lists tracks reassigned to other cameras.
	Shadows []ShadowOrder `json:"shadows"`
	// Priority is the horizon's camera priority order (highest first),
	// which drives the distributed stage.
	Priority []int `json:"priority"`
	// Dead lists roster cameras the scheduler's liveness leases declare
	// dead this round (ascending). Every node installs the identical
	// set into its DistributedPolicy, so failover ownership stays
	// communication-free. Omitted when every camera is live — and
	// always when leases are off — so the legacy wire format is
	// unchanged in fault-free deployments.
	Dead []int `json:"dead,omitempty"`
	// Roster, when present, marks this as a shard-scoped assignment
	// from a ShardedScheduler round: it lists the shard's cameras
	// (ascending global indices), and Priority orders exactly those
	// cameras rather than a 0..M-1 permutation. Nodes build a scoped
	// ownership policy (core.NewScopedPolicy) from it, which skips
	// foreign-shard cameras in coverage sets. Omitted by the global
	// scheduler, keeping the legacy wire format unchanged.
	Roster []int `json:"roster,omitempty"`
	// AdaptLevel is the degradation-ladder rung the scheduler's adapt
	// controller (WithAdapt) holds this horizon: nodes cap their
	// inspection input sizes at adapt.SizeCapFor(level) and stretch
	// their key-frame cadence by adapt.StretchFor(level). Omitted at
	// level 0 — and always without WithAdapt — so the legacy wire format
	// is unchanged for undegraded deployments (docs/FAULTS.md §10).
	AdaptLevel int `json:"adapt_level,omitempty"`
}

// Envelope is the wire message union: Type names which single payload
// pointer is set (TypeHello carries Hello, TypeError only the Error
// string, and so on); all other fields are nil/empty on the wire.
type Envelope struct {
	// Type is one of the Type* constants and selects the payload.
	Type string `json:"type"`
	// Exactly one payload field matches Type; the rest are omitted.
	Hello      *Hello      `json:"hello,omitempty"`
	Ack        *HelloAck   `json:"ack,omitempty"`
	Detections *Detections `json:"detections,omitempty"`
	Assignment *Assignment `json:"assignment,omitempty"`
	Heartbeat  *Heartbeat  `json:"heartbeat,omitempty"`
	// Error carries a TypeError message's human-readable reason.
	Error string `json:"error,omitempty"`
}

// WriteMessage frames and writes one envelope: 4-byte big-endian length,
// then the JSON body, issued as a single Write. One write per envelope
// means concurrent writers sharing a conn (each envelope guarded by its
// own lock) cannot interleave a torn header/body pair, and each message
// costs one syscall instead of two.
func WriteMessage(w io.Writer, env *Envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("cluster: encode: %w", err)
	}
	if len(body) > MaxMessageSize {
		return fmt.Errorf("cluster: message %d bytes exceeds limit", len(body))
	}
	frame := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(body)))
	copy(frame[4:], body)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("cluster: write message: %w", err)
	}
	return nil
}

// ReadMessage reads one framed envelope.
func ReadMessage(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxMessageSize {
		return nil, fmt.Errorf("cluster: bad message length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("cluster: read body: %w", err)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return nil, fmt.Errorf("cluster: decode: %w", err)
	}
	return &env, nil
}
