package cluster

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"mvs/internal/flow"
)

// countingConn wraps a net.Conn with byte counters, so nodes can report
// their uplink/downlink usage against the testbed's budget (the paper's
// wired links were 100 Mbps down / 20 Mbps up).
type countingConn struct {
	net.Conn
	sent, received atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.received.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.sent.Add(int64(n))
	return n, err
}

// Client is a camera node's connection to the central scheduler. It is
// single-owner: one goroutine drives KeyFrame/Ping at a time. For a
// client that survives connection loss, wrap the dial in a
// ReconnectClient.
type Client struct {
	camera int
	conn   *countingConn
	ack    *HelloAck
	io     time.Duration
	pings  int
}

// Dial connects to the scheduler and performs the hello handshake. When
// frameW and frameH are positive, the returned client carries the
// scheduler-computed cell-coverage masks (see Ack).
func Dial(addr string, camera int, timeout time.Duration, frameW, frameH float64) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return NewClientConn(raw, camera, timeout, frameW, frameH)
}

// NewClientConn performs the hello handshake over an established
// connection (e.g. one wrapped by a fault injector or custom dialer) and
// returns the registered client. On error the connection is closed. The
// handshake — write and ack read — is bounded by timeout.
func NewClientConn(raw net.Conn, camera int, timeout time.Duration, frameW, frameH float64) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn := &countingConn{Conn: raw}
	c := &Client{camera: camera, conn: conn}
	hello := &Hello{Camera: camera, FrameW: frameW, FrameH: frameH}
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: set deadline: %w", err)
	}
	if err := WriteMessage(conn, &Envelope{Type: TypeHello, Hello: hello}); err != nil {
		conn.Close()
		return nil, err
	}
	// Wait for the registration ack so a successful handshake means the
	// scheduler has accepted this camera index.
	ack, err := ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake: %w", err)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: clear deadline: %w", err)
	}
	switch ack.Type {
	case TypeHello:
		c.ack = ack.Ack
		return c, nil
	case TypeError:
		conn.Close()
		return nil, fmt.Errorf("cluster: registration rejected: %s", ack.Error)
	default:
		conn.Close()
		return nil, fmt.Errorf("cluster: unexpected handshake reply %q", ack.Type)
	}
}

// Camera returns the node's camera index.
func (c *Client) Camera() int { return c.camera }

// BytesSent returns the uplink bytes written so far (detection uploads).
func (c *Client) BytesSent() int64 { return c.conn.sent.Load() }

// BytesReceived returns the downlink bytes read so far (assignments and
// masks).
func (c *Client) BytesReceived() int64 { return c.conn.received.Load() }

// Ack returns the scheduler's registration reply (grid dimensions and
// static cell-coverage masks), or nil when the handshake carried no
// frame size.
func (c *Client) Ack() *HelloAck { return c.ack }

// SetIOTimeout bounds each subsequent message write with a deadline
// (zero disables, the default). A peer that stops draining its socket
// then fails the writer within d instead of blocking it forever.
func (c *Client) SetIOTimeout(d time.Duration) { c.io = d }

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }

// write sends one envelope under the per-message write deadline.
func (c *Client) write(env *Envelope) error {
	if c.io > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.io)); err != nil {
			return fmt.Errorf("cluster: set write deadline: %w", err)
		}
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	return WriteMessage(c.conn, env)
}

// ReportTracks converts live tracks to wire form.
func ReportTracks(tracks []*flow.Track) []TrackReport {
	out := make([]TrackReport, len(tracks))
	for i, t := range tracks {
		out[i] = TrackReport{
			TrackID: t.ID,
			Box:     [4]float64{t.Box.MinX, t.Box.MinY, t.Box.MaxX, t.Box.MaxY},
			Size:    t.QuantSize,
		}
	}
	return out
}

// KeyFrame uploads the camera's track list for a key frame and blocks
// until the scheduler replies with this round's assignment (or an
// error). deadline bounds the wait; zero means 10 seconds.
//
// While waiting, messages other than this round's assignment — stale
// assignments from earlier rounds, pongs, pings, and any type this
// client version does not know — are skipped, so protocol additions and
// reconnect races never fail a round.
func (c *Client) KeyFrame(frame int, tracks []TrackReport, deadline time.Duration) (*Assignment, error) {
	if deadline <= 0 {
		deadline = 10 * time.Second
	}
	env := &Envelope{
		Type:       TypeDetections,
		Detections: &Detections{Camera: c.camera, Frame: frame, Tracks: tracks},
	}
	if err := c.write(env); err != nil {
		return nil, err
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(deadline)); err != nil {
		return nil, fmt.Errorf("cluster: set deadline: %w", err)
	}
	defer c.conn.SetReadDeadline(time.Time{})
	for {
		reply, err := ReadMessage(c.conn)
		if err != nil {
			return nil, fmt.Errorf("cluster: camera %d await assignment: %w", c.camera, err)
		}
		switch reply.Type {
		case TypeAssignment:
			if reply.Assignment == nil {
				return nil, fmt.Errorf("cluster: empty assignment")
			}
			if reply.Assignment.Frame != frame {
				// A stale round (e.g. reconnect race); keep waiting.
				continue
			}
			return reply.Assignment, nil
		case TypeError:
			return nil, fmt.Errorf("cluster: scheduler error: %s", reply.Error)
		default:
			// Heartbeats and unknown (newer-protocol) types are not this
			// round's business; skip them.
			continue
		}
	}
}

// Ping sends a heartbeat and waits for the scheduler's pong, skipping
// unrelated messages (a stale assignment in flight is discardable — the
// round it answered has already been given up on). timeout bounds the
// whole exchange; zero means 2 seconds. A nil error means the scheduler
// is alive and this camera's liveness lease has been refreshed.
func (c *Client) Ping(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	c.pings++
	seq := c.pings
	env := &Envelope{Type: TypePing, Heartbeat: &Heartbeat{Camera: c.camera, Seq: seq}}
	if err := c.write(env); err != nil {
		return err
	}
	if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return fmt.Errorf("cluster: set deadline: %w", err)
	}
	defer c.conn.SetReadDeadline(time.Time{})
	for {
		reply, err := ReadMessage(c.conn)
		if err != nil {
			return fmt.Errorf("cluster: camera %d await pong: %w", c.camera, err)
		}
		switch reply.Type {
		case TypePong:
			if reply.Heartbeat == nil || reply.Heartbeat.Seq == seq {
				return nil
			}
			continue // a pong for an older ping
		case TypeError:
			return fmt.Errorf("cluster: scheduler error: %s", reply.Error)
		default:
			continue
		}
	}
}
