package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"mvs/internal/assoc"
	"mvs/internal/core"
	"mvs/internal/geom"
	"mvs/internal/profile"
	"mvs/internal/shard"
)

// defaultHandoffTTL is how many frames a published hand-off claim stays
// consultable. Two scheduling horizons at the usual T=10 cadence: long
// enough to bridge shards completing the same key frame at different
// wall-clock times, short enough that a stalled shard's stale claims
// cannot demote a neighbour's objects forever.
const defaultHandoffTTL = 20

// WithHandoffTTL sets the hand-off claim lifetime in frames for a
// ShardedScheduler's boundary bus: a claim published at key frame F is
// consulted by neighbour rounds up to frame F+ttl and then pruned.
// Zero or negative keeps the default (20 frames). No effect on a
// standalone Scheduler.
func WithHandoffTTL(frames int) Option {
	return func(s *Scheduler) {
		if frames > 0 {
			s.handoffTTL = frames
		}
	}
}

// shardCtx scopes a Scheduler to one shard of a ShardedScheduler.
type shardCtx struct {
	// id is the shard's index in the shard.Map (also its hand-off
	// ownership rank: lower IDs own straddling objects).
	id int
	// roster lists the shard's cameras, ascending global indices;
	// local index i in every internal structure means roster[i].
	roster []int
	// full is the fleet-wide association model, needed to map a
	// neighbour shard's boundary boxes onto this shard's cameras (the
	// shard's own scheduling uses the roster-scoped subset model).
	full *assoc.Model
	// label tags this shard's snapshots ("shard3").
	label string
	// boundary marks this shard's boundary cameras (global indices).
	boundary map[int]bool
	// foreign maps each local boundary camera (global index) to the
	// overlapping cameras in other shards, ascending.
	foreign map[int][]int
	// shardOf is the fleet-wide camera-to-shard map.
	shardOf []int
	// bus is the hand-off claim exchange shared by all shards.
	bus *handoffBus
}

// handoffClaim is one shard's statement, for one round, that it is
// tracking an object visible on one of its boundary cameras: where the
// box is (FromCam's pixel frame) and which of its cameras owns the
// object. Neighbour shards map the box across the boundary and demote
// their matching local tracks to shadows of Owner.
type handoffClaim struct {
	// FromCam is the boundary camera that sees the box (global index).
	FromCam int
	// Box is the track's pixel box on FromCam.
	Box geom.Rect
	// Owner is the camera assigned to the object (global index).
	Owner int
}

// handoffBus is the only coordination channel between shard round
// loops: each shard publishes its boundary claims when a round
// completes, and consults neighbouring shards' claims when scheduling
// its own. Claims are keyed by key-frame index, so consulting is
// deterministic given the same claim history; the frame-based TTL
// bounds how long a stalled shard's last claims keep influencing
// neighbours.
type handoffBus struct {
	ttl int

	mu sync.Mutex
	// claims[shard][frame] is the shard's claim list for that round.
	// An empty (but present) list is meaningful: the shard completed
	// the round and claims nothing, releasing any earlier claims —
	// which is how an object whose owner died at the boundary becomes
	// claimable by the neighbour within one round.
	claims []map[int][]handoffClaim
}

func newHandoffBus(numShards, ttl int) *handoffBus {
	if ttl <= 0 {
		ttl = defaultHandoffTTL
	}
	b := &handoffBus{ttl: ttl, claims: make([]map[int][]handoffClaim, numShards)}
	for i := range b.claims {
		b.claims[i] = make(map[int][]handoffClaim)
	}
	return b
}

// publish records a shard's claims for a completed round (empty claims
// included) and prunes that shard's entries older than the TTL.
func (b *handoffBus) publish(shard, frame int, claims []handoffClaim) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.claims[shard][frame] = claims
	for f := range b.claims[shard] {
		if f < frame-b.ttl {
			delete(b.claims[shard], f)
		}
	}
}

// lookup returns the given shard's claims for frame: the exact round if
// published, otherwise the most recent earlier round still within the
// TTL, otherwise nil (the shard has said nothing relevant — no
// demotion, the conservative default).
func (b *handoffBus) lookup(shard, frame int) []handoffClaim {
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, ok := b.claims[shard][frame]; ok {
		return c
	}
	best := -1
	for f := range b.claims[shard] {
		if f < frame && f > best && f >= frame-b.ttl {
			best = f
		}
	}
	if best < 0 {
		return nil
	}
	return b.claims[shard][best]
}

// consultHandoff checks every scheduled object with a member box on a
// boundary camera against the claims of lower-ID neighbouring shards:
// if a neighbour's claimed boundary box maps onto the local box with
// IoU >= minIoU, the neighbour owns the object (lower shard ID wins the
// tie deterministically) and the object is demoted — the returned map
// gives the foreign owner per object ID. Standalone schedulers return
// nil. Iteration order (groups, members, foreign cameras, claims in
// published order) is fixed, so the same claim history always produces
// the same demotions.
func (s *Scheduler) consultHandoff(frame int, groups []assoc.Group, boxes [][]geom.Rect, sol *core.Solution) map[int]int {
	ctx := s.shard
	if ctx == nil {
		return nil
	}
	var demoted map[int]int
	for gi, g := range groups {
		if _, ok := sol.Assign[gi+1]; !ok {
			continue
		}
	memberLoop:
		for _, ref := range g.Members {
			gc := ctx.roster[ref.Cam]
			if !ctx.boundary[gc] {
				continue
			}
			local := boxes[ref.Cam][ref.Index]
			for _, f := range ctx.foreign[gc] {
				fs := ctx.shardOf[f]
				if fs >= ctx.id {
					continue // higher-ID shards defer to us, not we to them
				}
				for _, claim := range ctx.bus.lookup(fs, frame) {
					if claim.FromCam != f {
						continue
					}
					mapped, visible, err := ctx.full.MapBox(f, gc, claim.Box)
					if err != nil || !visible {
						continue
					}
					if mapped.IoU(local) >= s.minIoU {
						if demoted == nil {
							demoted = make(map[int]int)
						}
						demoted[gi+1] = claim.Owner
						s.logger.Printf("cluster: %s round %d: object %d handed off to shard %d (owner camera %d)",
							ctx.label, frame, gi+1, fs, claim.Owner)
						break memberLoop
					}
				}
			}
		}
	}
	return demoted
}

// publishHandoff publishes this round's boundary claims: every kept
// (non-demoted) object with a member box on a boundary camera, stamped
// with its owning camera. Always called on a sharded round — an empty
// claim list is itself information (nothing claimed, releasing earlier
// claims). No-op for standalone schedulers.
func (s *Scheduler) publishHandoff(frame int, groups []assoc.Group, boxes [][]geom.Rect, sol *core.Solution, demoted map[int]int) {
	ctx := s.shard
	if ctx == nil {
		return
	}
	var claims []handoffClaim
	for gi, g := range groups {
		assigned, ok := sol.Assign[gi+1]
		if !ok {
			continue
		}
		if _, isDemoted := demoted[gi+1]; isDemoted {
			continue
		}
		owner := ctx.roster[assigned]
		for _, ref := range g.Members {
			gc := ctx.roster[ref.Cam]
			if ctx.boundary[gc] {
				claims = append(claims, handoffClaim{FromCam: gc, Box: boxes[ref.Cam][ref.Index], Owner: owner})
			}
		}
	}
	ctx.bus.publish(ctx.id, frame, claims)
}

// ShardedScheduler runs one independent Scheduler round loop per shard
// of a shard.Map: each shard has its own round barrier, liveness
// leases, round timeouts, Dead broadcast, and degraded-mode story —
// configured by the same Options, applied per shard — so no barrier,
// association pass, or BALB instance ever spans more than
// Map.MaxShardSize cameras. The shards coordinate only through the
// boundary hand-off bus: when a tracked object is visible from two
// shards, the lower-ID shard owns it and the higher-ID shard demotes
// its local tracks to shadows of the foreign owner (see handoffBus).
//
// Nodes connect exactly as they would to a standalone Scheduler — same
// protocol, global camera indices — and are routed to their shard's
// scheduler by the hello handshake. Shard-scoped assignments carry the
// shard's Roster, and nodes build a scoped ownership policy from it.
//
// A shared metrics sink receives every shard's round snapshots,
// demultiplexed by Snapshot.Label ("shard0", "shard1", ...); the sink
// must therefore accept concurrent RecordFrame calls (the metrics.Sink
// contract).
type ShardedScheduler struct {
	smap   *shard.Map
	shards []*Scheduler

	shutdown  chan struct{}
	closeOnce sync.Once
	handlers  sync.WaitGroup

	mu     sync.Mutex
	ln     net.Listener
	closed bool
}

// NewShardedScheduler builds one shard-scoped Scheduler per shard of m
// over the fleet-wide model and profiles. Every Option is applied to
// every shard's scheduler; WithHandoffTTL tunes the boundary bus. The
// map must cover exactly the model's cameras.
func NewShardedScheduler(model *assoc.Model, profiles []*profile.Profile, minIoU float64, m *shard.Map, opts ...Option) (*ShardedScheduler, error) {
	if model == nil {
		return nil, errors.New("cluster: nil association model")
	}
	if m == nil {
		return nil, errors.New("cluster: nil shard map")
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if m.NumCameras() != model.NumCameras() {
		return nil, fmt.Errorf("cluster: shard map covers %d cameras, model has %d",
			m.NumCameras(), model.NumCameras())
	}
	if len(profiles) != model.NumCameras() {
		return nil, fmt.Errorf("cluster: %d profiles for model with %d cameras",
			len(profiles), model.NumCameras())
	}

	ss := &ShardedScheduler{smap: m, shutdown: make(chan struct{})}
	// The bus TTL comes from the options; probe it off a throwaway
	// scheduler config so WithHandoffTTL composes like every other
	// Option.
	probe := &Scheduler{}
	for _, opt := range opts {
		opt(probe)
	}
	bus := newHandoffBus(m.NumShards(), probe.handoffTTL)

	for sid, roster := range m.Shards {
		sub, err := model.Subset(roster)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d model: %w", sid, err)
		}
		subProfiles := make([]*profile.Profile, len(roster))
		for i, c := range roster {
			subProfiles[i] = profiles[c]
		}
		sched, err := NewScheduler(sub, subProfiles, minIoU, opts...)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", sid, err)
		}
		ctx := &shardCtx{
			id:       sid,
			roster:   roster,
			full:     model,
			label:    fmt.Sprintf("shard%d", sid),
			boundary: make(map[int]bool),
			foreign:  make(map[int][]int),
			shardOf:  m.ShardOf,
			bus:      bus,
		}
		for _, c := range m.BoundaryCameras(sid) {
			ctx.boundary[c] = true
		}
		for _, e := range m.Neighbors(sid) {
			// Neighbors yields {A: foreign, B: local} sorted by
			// (foreign, local); regrouping per local camera keeps the
			// foreign lists ascending.
			ctx.foreign[e.B] = append(ctx.foreign[e.B], e.A)
		}
		sched.shard = ctx
		ss.shards = append(ss.shards, sched)
	}
	return ss, nil
}

// NumShards returns the number of independent round loops.
func (ss *ShardedScheduler) NumShards() int { return len(ss.shards) }

// Serve accepts camera connections on ln, reads each connection's hello
// handshake, and hands the connection to the owning shard's scheduler.
// It blocks until the listener closes (or Close is called) and every
// routed connection handler has exited.
func (ss *ShardedScheduler) Serve(ln net.Listener) error {
	ss.mu.Lock()
	if ss.closed {
		ss.mu.Unlock()
		ln.Close()
		return nil
	}
	ss.ln = ln
	ss.mu.Unlock()

	var err error
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			select {
			case <-ss.shutdown:
			default:
				err = fmt.Errorf("cluster: accept: %w", aerr)
			}
			break
		}
		ss.handlers.Add(1)
		go func() {
			defer ss.handlers.Done()
			ss.route(conn)
		}()
	}
	ss.handlers.Wait()
	return err
}

// route reads a connection's hello and delegates it to the owning
// shard's scheduler, which registers the camera under its local roster
// index and runs the read loop to completion.
func (ss *ShardedScheduler) route(conn net.Conn) {
	defer conn.Close()
	env, err := ReadMessage(conn)
	if err != nil {
		ss.shards[0].logger.Printf("cluster: sharded handshake read: %v", err)
		return
	}
	if env.Type != TypeHello || env.Hello == nil {
		_ = WriteMessage(conn, &Envelope{Type: TypeError, Error: "expected hello"})
		return
	}
	cam := env.Hello.Camera
	if cam < 0 || cam >= ss.smap.NumCameras() {
		_ = WriteMessage(conn, &Envelope{Type: TypeError, Error: fmt.Sprintf("camera %d out of range", cam)})
		return
	}
	ss.shards[ss.smap.ShardOf[cam]].handleHello(conn, env)
}

// Close stops every shard's scheduler and the shared listener, then
// waits for all routed connection handlers to exit. After Close
// returns, no goroutine of this scheduler touches the sink or logger.
func (ss *ShardedScheduler) Close() {
	ss.closeOnce.Do(func() {
		close(ss.shutdown)
		ss.mu.Lock()
		ss.closed = true
		if ss.ln != nil {
			ss.ln.Close()
		}
		ss.mu.Unlock()
		for _, sched := range ss.shards {
			sched.Close()
		}
	})
	ss.handlers.Wait()
}
