package cluster

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"mvs/internal/clock"
)

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Jitter: -1} // defaults, jitter disabled
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // capped
		5 * time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	if got := b.Delay(-3); got != want[0] {
		t.Fatalf("Delay(-3) = %v, want %v", got, want[0])
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	b := Backoff{Seed: 42} // default 20% jitter
	for attempt := 0; attempt < 8; attempt++ {
		d1 := b.Delay(attempt)
		d2 := b.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", attempt, d1, d2)
		}
		nominal := Backoff{Seed: 42, Jitter: -1}.Delay(attempt)
		lo := time.Duration(float64(nominal) * 0.8)
		hi := time.Duration(float64(nominal) * 1.2)
		if d1 < lo || d1 > hi {
			t.Fatalf("Delay(%d) = %v outside jitter band [%v, %v]", attempt, d1, lo, hi)
		}
	}
	// Different seeds spread differently somewhere in the schedule.
	other := Backoff{Seed: 43}
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if b.Delay(attempt) != other.Delay(attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produce identical schedules")
	}
}

func TestReconnectClientRetriesOnFakeClock(t *testing.T) {
	// Every dial fails: the client must walk the full backoff schedule on
	// the fake clock — recording, not serving, the sleeps — and give up
	// after MaxAttempts with the dial error.
	fake := clock.NewFake(time.Unix(0, 0))
	dialErr := errors.New("synthetic dial failure")
	dials := 0
	rc := NewReconnectClient(ReconnectConfig{
		Addr: "test:0", Camera: 0,
		Backoff:     Backoff{Seed: 7},
		MaxAttempts: 4,
		Clock:       fake,
		Dial: func(string, time.Duration) (net.Conn, error) {
			dials++
			return nil, dialErr
		},
	})
	defer rc.Close()

	err := rc.Connect()
	if !errors.Is(err, dialErr) {
		t.Fatalf("Connect error = %v, want wrapped %v", err, dialErr)
	}
	if dials != 4 {
		t.Fatalf("dials = %d, want 4", dials)
	}
	sleeps := fake.Sleeps()
	if len(sleeps) != 3 {
		t.Fatalf("sleeps = %v, want 3 entries", sleeps)
	}
	b := Backoff{Seed: 7}
	for i, d := range sleeps {
		if want := b.Delay(i); d != want {
			t.Fatalf("sleep %d = %v, want %v", i, d, want)
		}
	}
}

func TestReconnectClientRecoversMidSchedule(t *testing.T) {
	// The first two dials fail, the third reaches a real scheduler: the
	// operation succeeds, two backoff delays were slept (on the fake
	// clock), and the registration ack is available.
	_, addr := startScheduler(t)
	fake := clock.NewFake(time.Unix(0, 0))
	dials := 0
	rc := NewReconnectClient(ReconnectConfig{
		Addr: addr, Camera: 0,
		Backoff:     Backoff{Seed: 1},
		MaxAttempts: 4,
		Clock:       fake,
		Dial: func(a string, timeout time.Duration) (net.Conn, error) {
			dials++
			if dials <= 2 {
				return nil, fmt.Errorf("flaky dial %d", dials)
			}
			return net.DialTimeout("tcp", a, timeout)
		},
	})
	defer rc.Close()

	if err := rc.Connect(); err != nil {
		t.Fatal(err)
	}
	if dials != 3 {
		t.Fatalf("dials = %d, want 3", dials)
	}
	if got := len(fake.Sleeps()); got != 2 {
		t.Fatalf("sleeps = %d, want 2", got)
	}
	if rc.Ack() == nil {
		t.Fatal("no registration ack after Connect")
	}
	// First successful connection is not a reconnect.
	if n := rc.Reconnects(); n != 0 {
		t.Fatalf("reconnects = %d, want 0", n)
	}
	if err := rc.Ping(0); err != nil {
		t.Fatal(err)
	}
}

func TestReconnectClientClosedFailsFast(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	rc := NewReconnectClient(ReconnectConfig{
		Addr: "test:0", Camera: 0, Clock: fake,
		Dial: func(string, time.Duration) (net.Conn, error) {
			t.Fatal("dial after Close")
			return nil, nil
		},
	})
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rc.Connect(); !errors.Is(err, errClosed) {
		t.Fatalf("Connect after Close = %v, want errClosed", err)
	}
	if len(fake.Sleeps()) != 0 {
		t.Fatal("closed client slept")
	}
}
