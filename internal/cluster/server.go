package cluster

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"mvs/internal/assoc"
	"mvs/internal/core"
	"mvs/internal/geom"
	"mvs/internal/profile"
)

// maskGridCols and maskGridRows shape every camera's cell grid for the
// distributed-stage masks.
const (
	maskGridCols = 16
	maskGridRows = 9
)

// Scheduler is the central scheduler service: it accepts one connection
// per camera, barriers each key-frame round until every camera has
// uploaded its detections, then runs association + central BALB and
// replies to all cameras.
type Scheduler struct {
	model    *assoc.Model
	cams     []core.CameraSpec
	minIoU   float64
	logger   *log.Logger
	shutdown chan struct{}

	mu      sync.Mutex
	conns   map[int]*schedConn
	rounds  map[int]*round
	started bool
}

type schedConn struct {
	camera int
	conn   net.Conn
	wmu    sync.Mutex
}

func (sc *schedConn) send(env *Envelope) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	return WriteMessage(sc.conn, env)
}

type round struct {
	reports map[int]*Detections
}

// NewScheduler builds the service for a fixed camera roster.
func NewScheduler(model *assoc.Model, profiles []*profile.Profile, minIoU float64) (*Scheduler, error) {
	if model == nil {
		return nil, errors.New("cluster: nil association model")
	}
	if len(profiles) != model.NumCameras() {
		return nil, fmt.Errorf("cluster: %d profiles for model with %d cameras",
			len(profiles), model.NumCameras())
	}
	cams := make([]core.CameraSpec, len(profiles))
	for i, p := range profiles {
		if p == nil {
			return nil, fmt.Errorf("cluster: nil profile for camera %d", i)
		}
		cams[i] = core.CameraSpec{Index: i, Profile: p}
	}
	if minIoU <= 0 {
		minIoU = 0.1
	}
	return &Scheduler{
		model:    model,
		cams:     cams,
		minIoU:   minIoU,
		logger:   log.New(logDiscard{}, "", 0),
		shutdown: make(chan struct{}),
		conns:    make(map[int]*schedConn),
		rounds:   make(map[int]*round),
	}, nil
}

type logDiscard struct{}

func (logDiscard) Write(p []byte) (int, error) { return len(p), nil }

// SetLogger installs a logger for connection events (nil restores the
// silent default).
func (s *Scheduler) SetLogger(l *log.Logger) {
	if l == nil {
		l = log.New(logDiscard{}, "", 0)
	}
	s.logger = l
}

// Serve accepts camera connections until the listener is closed. It
// blocks; run it in a goroutine and close the listener to stop.
func (s *Scheduler) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return nil
			default:
			}
			return fmt.Errorf("cluster: accept: %w", err)
		}
		go s.handle(conn)
	}
}

// Close stops the service and drops all connections.
func (s *Scheduler) Close() {
	close(s.shutdown)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.conns {
		c.conn.Close()
	}
}

func (s *Scheduler) handle(conn net.Conn) {
	defer conn.Close()
	env, err := ReadMessage(conn)
	if err != nil {
		s.logger.Printf("cluster: handshake read: %v", err)
		return
	}
	if env.Type != TypeHello || env.Hello == nil {
		_ = WriteMessage(conn, &Envelope{Type: TypeError, Error: "expected hello"})
		return
	}
	cam := env.Hello.Camera
	if cam < 0 || cam >= len(s.cams) {
		_ = WriteMessage(conn, &Envelope{Type: TypeError, Error: fmt.Sprintf("camera %d out of range", cam)})
		return
	}
	sc := &schedConn{camera: cam, conn: conn}
	s.mu.Lock()
	if _, dup := s.conns[cam]; dup {
		s.mu.Unlock()
		_ = WriteMessage(conn, &Envelope{Type: TypeError, Error: fmt.Sprintf("camera %d already connected", cam)})
		return
	}
	s.conns[cam] = sc
	s.mu.Unlock()
	s.logger.Printf("cluster: camera %d connected from %v", cam, conn.RemoteAddr())
	// Ack the handshake so Dial returns only once the camera is
	// registered (otherwise two racing hellos for the same index could
	// each believe they won). When the node announced its frame size,
	// the ack carries the static cell-coverage masks.
	ack := &HelloAck{Camera: cam}
	if env.Hello.FrameW > 0 && env.Hello.FrameH > 0 {
		grid := geom.NewGrid(geom.Rect{MaxX: env.Hello.FrameW, MaxY: env.Hello.FrameH}, maskGridCols, maskGridRows)
		cover, err := s.model.CellCoverage(cam, grid)
		if err != nil {
			s.logger.Printf("cluster: camera %d coverage: %v", cam, err)
			_ = sc.send(&Envelope{Type: TypeError, Error: fmt.Sprintf("coverage: %v", err)})
			return
		}
		ack.GridCols = maskGridCols
		ack.GridRows = maskGridRows
		ack.Coverage = cover
	}
	if err := sc.send(&Envelope{Type: TypeHello, Ack: ack}); err != nil {
		s.logger.Printf("cluster: camera %d ack: %v", cam, err)
		return
	}

	defer func() {
		s.mu.Lock()
		delete(s.conns, cam)
		ready := s.readyRoundsLocked()
		s.mu.Unlock()
		// A camera dropping out must not stall in-flight rounds: any
		// round now complete without it is scheduled immediately.
		for frame, r := range ready {
			s.completeRound(r, frame)
		}
	}()

	for {
		env, err := ReadMessage(conn)
		if err != nil {
			s.logger.Printf("cluster: camera %d read: %v", cam, err)
			return
		}
		if env.Type != TypeDetections || env.Detections == nil {
			_ = sc.send(&Envelope{Type: TypeError, Error: "expected detections"})
			continue
		}
		if env.Detections.Camera != cam {
			_ = sc.send(&Envelope{Type: TypeError, Error: "camera id mismatch"})
			continue
		}
		s.submit(env.Detections)
	}
}

// roundCompleteLocked reports whether every currently connected camera
// has reported for the round. Reports from since-disconnected cameras
// still count toward scheduling; rounds with no reports never complete.
func (s *Scheduler) roundCompleteLocked(r *round) bool {
	if len(r.reports) == 0 {
		return false
	}
	for cam := range s.conns {
		if _, ok := r.reports[cam]; !ok {
			return false
		}
	}
	return true
}

// readyRoundsLocked removes and returns every pending round that is now
// complete (used after a disconnect shrinks the barrier).
func (s *Scheduler) readyRoundsLocked() map[int]*round {
	ready := make(map[int]*round)
	for frame, r := range s.rounds {
		if s.roundCompleteLocked(r) {
			ready[frame] = r
			delete(s.rounds, frame)
		}
	}
	return ready
}

// submit records a camera's key-frame report and, once the round is
// complete (every connected camera has reported), runs the central stage
// and replies to every camera.
func (s *Scheduler) submit(det *Detections) {
	s.mu.Lock()
	r, ok := s.rounds[det.Frame]
	if !ok {
		r = &round{reports: make(map[int]*Detections)}
		s.rounds[det.Frame] = r
	}
	r.reports[det.Camera] = det
	complete := s.roundCompleteLocked(r)
	if complete {
		delete(s.rounds, det.Frame)
	}
	s.mu.Unlock()
	if !complete {
		return
	}
	s.completeRound(r, det.Frame)
}

// completeRound schedules a finished round and distributes the replies.
func (s *Scheduler) completeRound(r *round, frame int) {
	replies, err := s.schedule(r, frame)
	if err != nil {
		s.logger.Printf("cluster: scheduling frame %d: %v", frame, err)
		s.broadcastError(fmt.Sprintf("scheduling failed: %v", err))
		return
	}
	s.mu.Lock()
	conns := make([]*schedConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		reply := replies[c.camera]
		if reply == nil {
			continue
		}
		if err := c.send(&Envelope{Type: TypeAssignment, Assignment: reply}); err != nil {
			s.logger.Printf("cluster: reply to camera %d: %v", c.camera, err)
		}
	}
}

func (s *Scheduler) broadcastError(msg string) {
	s.mu.Lock()
	conns := make([]*schedConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.send(&Envelope{Type: TypeError, Error: msg})
	}
}

// schedule mirrors the pipeline's central stage over wire reports.
func (s *Scheduler) schedule(r *round, frame int) (map[int]*Assignment, error) {
	m := len(s.cams)
	boxes := make([][]geom.Rect, m)
	trackIDs := make([][]int, m)
	sizes := make([][]int, m)
	for cam := 0; cam < m; cam++ {
		rep := r.reports[cam]
		if rep == nil {
			continue // disconnected camera: schedule without its view
		}
		for _, t := range rep.Tracks {
			boxes[cam] = append(boxes[cam], geom.Rect{
				MinX: t.Box[0], MinY: t.Box[1], MaxX: t.Box[2], MaxY: t.Box[3],
			})
			trackIDs[cam] = append(trackIDs[cam], t.TrackID)
			sizes[cam] = append(sizes[cam], t.Size)
		}
	}

	groups, err := s.model.Associate(boxes, s.minIoU)
	if err != nil {
		return nil, fmt.Errorf("association: %w", err)
	}
	objects := make([]core.ObjectSpec, 0, len(groups))
	for gi, g := range groups {
		spec := core.ObjectSpec{ID: gi + 1, Size: make(map[int]int)}
		for _, ref := range g.Members {
			if _, seen := spec.Size[ref.Cam]; !seen {
				spec.Coverage = append(spec.Coverage, ref.Cam)
			}
			if sz := sizes[ref.Cam][ref.Index]; sz > spec.Size[ref.Cam] {
				spec.Size[ref.Cam] = sz
			}
		}
		objects = append(objects, spec)
	}
	sol, err := core.Central(s.cams, objects, core.CentralOptions{})
	if err != nil {
		return nil, fmt.Errorf("central BALB: %w", err)
	}

	replies := make(map[int]*Assignment, m)
	for cam := 0; cam < m; cam++ {
		replies[cam] = &Assignment{Frame: frame, Priority: sol.Priority}
	}
	for gi, g := range groups {
		assigned, ok := sol.Assign[gi+1]
		if !ok {
			continue
		}
		for _, ref := range g.Members {
			id := trackIDs[ref.Cam][ref.Index]
			if ref.Cam == assigned {
				replies[ref.Cam].Keep = append(replies[ref.Cam].Keep, id)
			} else {
				replies[ref.Cam].Shadows = append(replies[ref.Cam].Shadows, ShadowOrder{
					TrackID: id, AssignedCamera: assigned,
				})
			}
		}
	}
	return replies, nil
}
