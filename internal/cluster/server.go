package cluster

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"mvs/internal/adapt"
	"mvs/internal/assoc"
	"mvs/internal/core"
	"mvs/internal/geom"
	"mvs/internal/gpu"
	"mvs/internal/metrics"
	"mvs/internal/profile"
)

// maskGridCols and maskGridRows shape every camera's cell grid for the
// distributed-stage masks.
const (
	maskGridCols = 16
	maskGridRows = 9
)

// Scheduler is the central scheduler service: it accepts one connection
// per camera, barriers each key-frame round until every camera has
// uploaded its detections, then runs association + central BALB and
// replies to all cameras.
//
// Resilience (all opt-in, see docs/FAULTS.md): WithRoundTimeout bounds
// how long a round may wait for stragglers before being scheduled with
// the reports received so far; WithLease stops silent (dead but still
// connected) cameras from blocking the barrier, with heartbeat pings
// refreshing the lease between key frames; a camera reconnecting while
// its old connection lingers takes the registration over.
type Scheduler struct {
	model        *assoc.Model
	cams         []core.CameraSpec
	minIoU       float64
	workers      int
	logger       *log.Logger
	sink         metrics.Sink
	roundSink    metrics.RoundSink
	roundTimeout time.Duration
	lease        time.Duration
	// adaptPol arms the per-scheduler degradation controller
	// (WithAdapt); adaptCtrl is built at construction when enabled and
	// driven under mu (rounds may complete concurrently).
	// lastAdaptDrift remembers the cumulative reassignment count at the
	// previous round so each adapt sample carries the per-round delta.
	adaptPol       adapt.Policy
	adaptCtrl      *adapt.Controller
	lastAdaptDrift int
	// handoffTTL is the boundary hand-off claim lifetime in frames
	// (WithHandoffTTL); only consulted when building a
	// ShardedScheduler's bus.
	handoffTTL int
	shutdown   chan struct{}

	closeOnce sync.Once
	handlers  sync.WaitGroup
	// timers tracks in-flight round-timeout completions. Additions
	// happen under mu while !closed, so Close's Wait cannot race a
	// late Add.
	timers sync.WaitGroup

	// shard scopes this scheduler to one shard of a ShardedScheduler:
	// all internal state (cams, conns, rounds, reports) is indexed by
	// *local* roster position, and the wire boundary translates to and
	// from global camera indices. nil for a standalone global
	// scheduler, whose local and global indices coincide.
	shard *shardCtx

	mu     sync.Mutex
	ln     net.Listener
	conns  map[int]*schedConn
	rounds map[int]*round
	seq    int
	// roundSeq numbers the decision records of this emitter (guarded by
	// mu, like seq; a shard-scoped scheduler counts its own stream).
	roundSeq int
	closed   bool
	// Data-plane fault accounting, only active with WithLease (guarded
	// by mu): lastAssigned holds each camera's assignment count from
	// the previous round, so a camera declared dead can be charged for
	// the objects it orphaned; outageRounds and reassignments are the
	// cumulative Snapshot counters.
	lastAssigned  []int
	outageRounds  int
	reassignments int
}

type schedConn struct {
	camera int
	conn   net.Conn
	wmu    sync.Mutex
	// lastSeen is the arrival time of the camera's latest message
	// (hello, detections, or ping), guarded by the scheduler's mu; the
	// liveness lease compares against it.
	lastSeen time.Time
}

func (sc *schedConn) send(env *Envelope) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	return WriteMessage(sc.conn, env)
}

type round struct {
	reports map[int]*Detections
	// timer fires the round timeout; nil when WithRoundTimeout is off.
	// Stopped whenever the round is removed for completion or GC.
	timer *time.Timer
}

func (r *round) stopTimer() {
	if r.timer != nil {
		r.timer.Stop()
	}
}

// Option configures a Scheduler at construction. Observability hooks
// are injected here, not mutated after: the scheduler starts serving
// concurrently the moment Serve is called, so post-construction setters
// would race with running handlers.
type Option func(*Scheduler)

// WithLogger installs a logger for connection and scheduling events
// (nil keeps the silent default).
func WithLogger(l *log.Logger) Option {
	return func(s *Scheduler) {
		if l != nil {
			s.logger = l
		}
	}
}

// WithSink attaches a metrics sink: one Snapshot per completed
// scheduling round (SourceScheduler), carrying the measured round
// latency, the scheduled per-camera latencies and batch occupancy, and
// per-camera assignment counts. nil keeps the NopSink default. No
// snapshot is emitted after Close returns.
func WithSink(sink metrics.Sink) Option {
	return func(s *Scheduler) {
		if sink != nil {
			s.sink = sink
		}
	}
}

// WithRounds attaches a round-decision sink: one metrics.Round per
// completed scheduling round, carrying the decision a Snapshot only
// summarizes — the priority order and per-camera assignment counts —
// so a run store (internal/store) can persist the schedule for audit
// and replay. Under a ShardedScheduler the option applies per shard:
// each shard's round loop emits its own gap-free stream, labelled
// "shard<N>". The sink must tolerate concurrent RecordRound calls.
// nil disables (the default). No round is emitted after Close returns.
func WithRounds(rs metrics.RoundSink) Option {
	return func(s *Scheduler) {
		if rs != nil {
			s.roundSink = rs
		}
	}
}

// WithRoundTimeout bounds a scheduling round's barrier: a round that is
// still incomplete d after its first report is scheduled with the
// reports received so far (marked Partial in its snapshot), so one
// stalled or partitioned camera cannot stall every other camera forever.
// It also enables stale-round GC: completing round F drops pending
// rounds for earlier frames, whose reporters have long timed out and
// moved on. Zero or negative disables (the default): rounds wait
// indefinitely, the pre-fault-tolerance behaviour.
func WithRoundTimeout(d time.Duration) Option {
	return func(s *Scheduler) {
		if d > 0 {
			s.roundTimeout = d
		}
	}
}

// WithWorkers bounds the goroutines the scheduler uses for a round's
// per-pair association fan-out and for the handshake's per-cell
// coverage computation (assoc.AssociateWorkers /
// assoc.CellCoverageWorkers): 1 forces the sequential reference path,
// 0 or unset selects GOMAXPROCS. Assignments are bit-identical at
// every value — the knob trades goroutines for round latency only
// (docs/SCALING.md prices the central stage per fleet size).
func WithWorkers(n int) Option {
	return func(s *Scheduler) {
		if n > 0 {
			s.workers = n
		}
	}
}

// WithAdapt arms the graceful-degradation control loop
// (docs/FAULTS.md §10): an adapt.Controller observes every completed
// round — the solution's scheduled system latency, the round's
// dead-camera count, and its reassignment drift — and ticks once per
// round (rounds are the cluster's horizon boundaries). The rung in
// force rides every Assignment (AdaptLevel): nodes cap their inspection
// sizes and stretch their key-frame cadence accordingly, and the
// round's snapshot carries the level, transition count, and SLO
// violations. Under a ShardedScheduler the option applies per shard:
// each shard runs its own controller over its own rounds, so one
// overloaded shard degrades without dragging its neighbours down. A
// disabled policy (SLO == 0) is a no-op.
func WithAdapt(pol adapt.Policy) Option {
	return func(s *Scheduler) {
		if pol.Enabled() {
			s.adaptPol = pol
		}
	}
}

// WithLease sets the camera liveness lease: a connected camera whose
// last message (report or heartbeat ping) is older than d no longer
// blocks round barriers — its TCP connection may be half-dead without
// the OS noticing. Heartbeats between key frames keep a healthy
// camera's lease fresh. Zero or negative disables (the default): every
// connected camera blocks the barrier.
func WithLease(d time.Duration) Option {
	return func(s *Scheduler) {
		if d > 0 {
			s.lease = d
		}
	}
}

// NewScheduler builds the service for a fixed camera roster.
func NewScheduler(model *assoc.Model, profiles []*profile.Profile, minIoU float64, opts ...Option) (*Scheduler, error) {
	if model == nil {
		return nil, errors.New("cluster: nil association model")
	}
	if len(profiles) != model.NumCameras() {
		return nil, fmt.Errorf("cluster: %d profiles for model with %d cameras",
			len(profiles), model.NumCameras())
	}
	cams := make([]core.CameraSpec, len(profiles))
	for i, p := range profiles {
		if p == nil {
			return nil, fmt.Errorf("cluster: nil profile for camera %d", i)
		}
		cams[i] = core.CameraSpec{Index: i, Profile: p}
	}
	if minIoU <= 0 {
		minIoU = 0.1
	}
	s := &Scheduler{
		model:        model,
		cams:         cams,
		minIoU:       minIoU,
		logger:       log.New(logDiscard{}, "", 0),
		sink:         metrics.NopSink{},
		shutdown:     make(chan struct{}),
		conns:        make(map[int]*schedConn),
		rounds:       make(map[int]*round),
		lastAssigned: make([]int, len(cams)),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.adaptPol.Enabled() {
		s.adaptCtrl = adapt.NewController(s.adaptPol)
	}
	return s, nil
}

type logDiscard struct{}

func (logDiscard) Write(p []byte) (int, error) { return len(p), nil }

// glob translates a local camera index to its global roster index (the
// identity for a standalone scheduler).
func (s *Scheduler) glob(local int) int {
	if s.shard == nil {
		return local
	}
	return s.shard.roster[local]
}

// local translates a global camera index to this scheduler's local
// index, or (-1, false) when the camera is not in the roster.
func (s *Scheduler) local(global int) (int, bool) {
	if s.shard == nil {
		if global < 0 || global >= len(s.cams) {
			return -1, false
		}
		return global, true
	}
	for li, g := range s.shard.roster {
		if g == global {
			return li, true
		}
	}
	return -1, false
}

// Serve accepts camera connections until the listener is closed or
// Close is called. It blocks, and returns only after every connection
// handler it spawned has exited — so when Serve returns, no goroutine
// of this scheduler is still touching the sink or the logger.
func (s *Scheduler) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()

	var err error
	for {
		conn, aerr := ln.Accept()
		if aerr != nil {
			select {
			case <-s.shutdown:
			default:
				err = fmt.Errorf("cluster: accept: %w", aerr)
			}
			break
		}
		s.handlers.Add(1)
		go func() {
			defer s.handlers.Done()
			s.handle(conn)
		}()
	}
	s.handlers.Wait()
	return err
}

// Close stops the service: it closes the listener Serve is blocked on,
// drops all connections, and waits for every in-flight connection
// handler to exit. After Close returns, Serve has unblocked (or will
// return immediately if called later) and no further snapshot reaches
// the sink.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		close(s.shutdown)
		s.mu.Lock()
		s.closed = true
		if s.ln != nil {
			s.ln.Close()
		}
		for _, c := range s.conns {
			c.conn.Close()
		}
		for _, r := range s.rounds {
			r.stopTimer()
		}
		s.mu.Unlock()
	})
	s.handlers.Wait()
	// A round timeout that had already fired may still be completing;
	// wait it out so nothing touches the sink or logger after Close.
	s.timers.Wait()
}

// emit delivers a round snapshot unless the scheduler has been closed.
// Holding mu across RecordFrame makes "no snapshot after Close" exact:
// Close flips closed under the same lock, so any emission either
// completes before Close returns or is suppressed. Sinks are required to
// be cheap and non-blocking (metrics.Sink contract), so the critical
// section stays short.
func (s *Scheduler) emit(snap metrics.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	snap.Seq = s.seq
	s.seq++
	s.sink.RecordFrame(snap)
}

// emitRound mirrors emit for the round-decision stream (WithRounds):
// the same closed-check under mu makes "no round after Close" exact,
// and the record is derived from the already-assembled snapshot plus
// the round's global priority order. Assigned is indexed by global
// camera index and sized to the emitter's roster extent (the fleet for
// a standalone scheduler; a shard leaves foreign cameras at zero).
func (s *Scheduler) emitRound(snap metrics.Snapshot, prio []int) {
	if s.roundSink == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	rd := metrics.Round{
		Source:        metrics.SourceScheduler,
		Label:         snap.Label,
		Seq:           s.roundSeq,
		Frame:         snap.Frame,
		Objects:       snap.Objects,
		Priority:      prio,
		Partial:       snap.Partial,
		Reassignments: snap.Reassignments,
		RoundLatency:  snap.RoundLatency,
	}
	extent := 0
	for _, cs := range snap.Cameras {
		if cs.Camera+1 > extent {
			extent = cs.Camera + 1
		}
	}
	rd.Assigned = make([]int, extent)
	for _, cs := range snap.Cameras {
		rd.Assigned[cs.Camera] = cs.Assignments
	}
	s.roundSeq++
	s.roundSink.RecordRound(rd)
}

func (s *Scheduler) handle(conn net.Conn) {
	defer conn.Close()
	env, err := ReadMessage(conn)
	if err != nil {
		s.logger.Printf("cluster: handshake read: %v", err)
		return
	}
	s.handleHello(conn, env)
}

// handleHello registers a camera from its (already read) hello envelope
// and runs the connection's read loop. It does not close conn; the
// caller owns the connection's lifetime. Split from handle so a
// ShardedScheduler can read the hello itself, route the connection to
// the owning shard's scheduler, and delegate here.
func (s *Scheduler) handleHello(conn net.Conn, env *Envelope) {
	if env.Type != TypeHello || env.Hello == nil {
		_ = WriteMessage(conn, &Envelope{Type: TypeError, Error: "expected hello"})
		return
	}
	// The wire carries global camera indices; a shard-scoped scheduler
	// translates to its local roster position at this boundary and back
	// out in every reply.
	globalCam := env.Hello.Camera
	cam, ok := s.local(globalCam)
	if !ok {
		_ = WriteMessage(conn, &Envelope{Type: TypeError, Error: fmt.Sprintf("camera %d out of range", globalCam)})
		return
	}
	sc := &schedConn{camera: cam, conn: conn, lastSeen: time.Now()}
	s.mu.Lock()
	if s.closed {
		// Raced with Close: this connection was accepted before the
		// listener went down but must not register, or it would linger
		// unclosed (Close already swept s.conns).
		s.mu.Unlock()
		return
	}
	if old, dup := s.conns[cam]; dup {
		// A reconnecting camera takes over its registration: the old
		// connection may be half-dead (the node crashed, or a NAT ate the
		// flow) without this end noticing, and rejecting the new one
		// would lock the camera out until the OS gives up. Closing the
		// old conn makes its handler exit; its cleanup sees it has been
		// replaced and leaves the new registration alone.
		old.conn.Close()
		s.logger.Printf("cluster: camera %d reconnected, replacing previous connection from %v",
			globalCam, old.conn.RemoteAddr())
	}
	s.conns[cam] = sc
	s.mu.Unlock()
	s.logger.Printf("cluster: camera %d connected from %v", globalCam, conn.RemoteAddr())
	// Ack the handshake so Dial returns only once the camera is
	// registered (otherwise two racing hellos for the same index could
	// each believe they won). When the node announced its frame size,
	// the ack carries the static cell-coverage masks.
	ack := &HelloAck{Camera: globalCam}
	if env.Hello.FrameW > 0 && env.Hello.FrameH > 0 {
		grid := geom.NewGrid(geom.Rect{MaxX: env.Hello.FrameW, MaxY: env.Hello.FrameH}, maskGridCols, maskGridRows)
		cover, err := s.model.CellCoverageWorkers(cam, grid, s.workers)
		if err != nil {
			s.logger.Printf("cluster: camera %d coverage: %v", globalCam, err)
			_ = sc.send(&Envelope{Type: TypeError, Error: fmt.Sprintf("coverage: %v", err)})
			return
		}
		if s.shard != nil {
			// The subset model speaks local indices; nodes work in
			// global ones.
			for _, set := range cover {
				for k, c := range set {
					set[k] = s.glob(c)
				}
			}
		}
		ack.GridCols = maskGridCols
		ack.GridRows = maskGridRows
		ack.Coverage = cover
	}
	if err := sc.send(&Envelope{Type: TypeHello, Ack: ack}); err != nil {
		s.logger.Printf("cluster: camera %d ack: %v", globalCam, err)
		return
	}

	defer func() {
		s.mu.Lock()
		// Only unregister if this conn still owns the slot — a
		// reconnect may have taken it over.
		if s.conns[cam] == sc {
			delete(s.conns, cam)
		}
		ready := s.readyRoundsLocked()
		s.mu.Unlock()
		// A camera dropping out must not stall in-flight rounds: any
		// round now complete without it is scheduled immediately.
		for frame, r := range ready {
			s.completeRound(r, frame)
		}
	}()

	for {
		env, err := ReadMessage(conn)
		if err != nil {
			s.logger.Printf("cluster: camera %d read: %v", globalCam, err)
			return
		}
		switch {
		case env.Type == TypePing:
			s.touch(sc)
			_ = sc.send(&Envelope{Type: TypePong, Heartbeat: env.Heartbeat})
		case env.Type == TypeDetections && env.Detections != nil:
			if env.Detections.Camera != globalCam {
				_ = sc.send(&Envelope{Type: TypeError, Error: "camera id mismatch"})
				continue
			}
			s.touch(sc)
			// Rounds and reports are local-indexed internally.
			env.Detections.Camera = cam
			s.submit(env.Detections)
		case env.Type == TypeDetections || env.Type == TypeHello:
			// A malformed known message is a protocol error worth
			// reporting back.
			_ = sc.send(&Envelope{Type: TypeError, Error: "expected detections"})
		default:
			// Unknown (newer-protocol) types are skipped, mirroring the
			// client's tolerance, so mixed-version fleets keep running.
			s.logger.Printf("cluster: camera %d sent unknown message type %q, ignoring", globalCam, env.Type)
		}
	}
}

// touch refreshes a camera's liveness lease.
func (s *Scheduler) touch(sc *schedConn) {
	s.mu.Lock()
	sc.lastSeen = time.Now()
	s.mu.Unlock()
}

// roundCompleteLocked reports whether every currently connected, live
// camera has reported for the round. Reports from since-disconnected
// cameras still count toward scheduling; rounds with no reports never
// complete. With a lease configured, a connected camera whose last
// message is older than the lease is treated as dead and does not block.
func (s *Scheduler) roundCompleteLocked(r *round) bool {
	if len(r.reports) == 0 {
		return false
	}
	now := time.Now()
	for cam, sc := range s.conns {
		if _, ok := r.reports[cam]; ok {
			continue
		}
		if s.lease > 0 && now.Sub(sc.lastSeen) > s.lease {
			s.logger.Printf("cluster: camera %d lease expired (%v since last message), not blocking rounds",
				cam, now.Sub(sc.lastSeen).Round(time.Millisecond))
			continue
		}
		return false
	}
	return true
}

// readyRoundsLocked removes and returns every pending round that is now
// complete (used after a disconnect shrinks the barrier).
func (s *Scheduler) readyRoundsLocked() map[int]*round {
	ready := make(map[int]*round)
	for frame, r := range s.rounds {
		if s.roundCompleteLocked(r) {
			r.stopTimer()
			ready[frame] = r
			delete(s.rounds, frame)
		}
	}
	return ready
}

// submit records a camera's key-frame report and, once the round is
// complete (every connected live camera has reported), runs the central
// stage and replies to every camera. With a round timeout configured, a
// round's clock starts at its first report; on expiry the round is
// scheduled with whatever has arrived.
func (s *Scheduler) submit(det *Detections) {
	s.mu.Lock()
	r, ok := s.rounds[det.Frame]
	if !ok {
		r = &round{reports: make(map[int]*Detections)}
		s.rounds[det.Frame] = r
		if s.roundTimeout > 0 {
			frame := det.Frame
			r.timer = time.AfterFunc(s.roundTimeout, func() { s.expireRound(frame) })
		}
	}
	r.reports[det.Camera] = det
	complete := s.roundCompleteLocked(r)
	if complete {
		r.stopTimer()
		delete(s.rounds, det.Frame)
	}
	s.mu.Unlock()
	if !complete {
		return
	}
	s.completeRound(r, det.Frame)
}

// expireRound fires when a round's timeout elapses: if the round is
// still pending it is scheduled with the reports received so far, so a
// stalled camera delays its peers by at most the timeout.
func (s *Scheduler) expireRound(frame int) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	r, ok := s.rounds[frame]
	if !ok {
		s.mu.Unlock()
		return
	}
	delete(s.rounds, frame)
	// Adding under mu while !closed keeps Close's timers.Wait safe.
	s.timers.Add(1)
	s.mu.Unlock()
	defer s.timers.Done()
	s.logger.Printf("cluster: round %d timed out with %d/%d reports, scheduling partial round",
		frame, len(r.reports), len(s.cams))
	s.completeRound(r, frame)
}

// gcStaleRounds drops pending rounds older than a just-completed frame:
// their reporters have timed out client-side and moved on, so they can
// only waste memory and, on expiry, schedule assignments nobody waits
// for. Only active when round timeouts are (legacy behaviour untouched
// otherwise).
func (s *Scheduler) gcStaleRounds(completed int) {
	if s.roundTimeout <= 0 {
		return
	}
	s.mu.Lock()
	for frame, r := range s.rounds {
		if frame < completed {
			r.stopTimer()
			delete(s.rounds, frame)
			s.logger.Printf("cluster: dropping stale round %d (superseded by completed round %d)",
				frame, completed)
		}
	}
	s.mu.Unlock()
}

// deadCameras returns, ascending, the roster cameras without a report
// in the round that are disconnected or lease-expired — dead per the
// liveness model, not merely slow. nil when leases are off (WithLease
// unset), keeping the legacy wire format and snapshots bit-identical.
func (s *Scheduler) deadCameras(r *round) []int {
	if s.lease <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	var dead []int
	for cam := range s.cams {
		if _, ok := r.reports[cam]; ok {
			continue
		}
		sc, connected := s.conns[cam]
		if !connected || now.Sub(sc.lastSeen) > s.lease {
			dead = append(dead, cam)
		}
	}
	return dead
}

// noteFaults folds a round's dead set into the cumulative fault
// counters and stamps them onto the snapshot: one outage per dead
// camera-round, plus the assignments each newly dead camera held in
// the previous round (the objects the central stage just reassigned
// away from it). lastAssigned then advances to this round's counts.
func (s *Scheduler) noteFaults(snap *metrics.Snapshot, dead []int) {
	if s.lease <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.outageRounds += len(dead)
	for _, cam := range dead {
		if cam >= 0 && cam < len(s.lastAssigned) {
			s.reassignments += s.lastAssigned[cam]
		}
	}
	for i, cs := range snap.Cameras {
		if i < len(s.lastAssigned) {
			s.lastAssigned[i] = cs.Assignments
		}
	}
	snap.OutageFrames = s.outageRounds
	snap.Reassignments = s.reassignments
}

// noteAdapt drives the per-scheduler degradation controller (WithAdapt)
// one round: it observes the round's scheduled system latency, dead
// count, and reassignment drift, ticks the ladder (a round is a horizon
// boundary), stamps the rung onto the snapshot, and carries it to every
// node on the assignment replies. No-op without WithAdapt, leaving the
// snapshot and wire format byte-identical.
func (s *Scheduler) noteAdapt(snap *metrics.Snapshot, replies map[int]*Assignment, dead int) {
	if s.adaptCtrl == nil {
		return
	}
	s.mu.Lock()
	drift := s.reassignments - s.lastAdaptDrift
	s.lastAdaptDrift = s.reassignments
	s.adaptCtrl.Observe(adapt.Sample{
		Latency:     snap.FrameLatency,
		DeadCameras: dead,
		Drift:       drift,
	})
	level, _ := s.adaptCtrl.Tick()
	snap.AdaptLevel = level
	snap.AdaptTransitions = s.adaptCtrl.Transitions()
	snap.SLOViolations = s.adaptCtrl.SLOViolations()
	s.mu.Unlock()
	for _, reply := range replies {
		if reply != nil {
			reply.AdaptLevel = level
		}
	}
}

// completeRound schedules a finished round, distributes the replies,
// and emits the round's observability snapshot.
func (s *Scheduler) completeRound(r *round, frame int) {
	start := time.Now()
	replies, snap, prio, err := s.schedule(r, frame)
	if err != nil {
		s.logger.Printf("cluster: scheduling frame %d: %v", frame, err)
		s.broadcastError(fmt.Sprintf("scheduling failed: %v", err))
		return
	}
	dead := s.deadCameras(r)
	if len(dead) > 0 {
		// deadCameras speaks local indices; the wire (and the shared
		// liveness mask every node installs) is global.
		deadGlobal := make([]int, len(dead))
		for i, c := range dead {
			deadGlobal[i] = s.glob(c)
		}
		s.logger.Printf("cluster: round %d declares cameras %v dead (lease expired or disconnected)", frame, deadGlobal)
		for _, reply := range replies {
			if reply != nil {
				reply.Dead = deadGlobal
			}
		}
	}
	s.noteFaults(&snap, dead)
	s.noteAdapt(&snap, replies, len(dead))
	snap.RoundLatency = time.Since(start)
	s.emit(snap)
	s.emitRound(snap, prio)
	s.gcStaleRounds(frame)
	s.mu.Lock()
	conns := make([]*schedConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		reply := replies[c.camera]
		if reply == nil {
			continue
		}
		if err := c.send(&Envelope{Type: TypeAssignment, Assignment: reply}); err != nil {
			s.logger.Printf("cluster: reply to camera %d: %v", c.camera, err)
		}
	}
}

func (s *Scheduler) broadcastError(msg string) {
	s.mu.Lock()
	conns := make([]*schedConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.send(&Envelope{Type: TypeError, Error: msg})
	}
}

// schedule mirrors the pipeline's central stage over wire reports,
// including its per-pair association fan-out (bounded by WithWorkers).
// It also assembles the round's snapshot (sans Seq and RoundLatency,
// which the caller stamps): the scheduled per-camera latencies, the
// batch occupancy each camera's assignment implies, and assignment
// counts.
func (s *Scheduler) schedule(r *round, frame int) (map[int]*Assignment, metrics.Snapshot, []int, error) {
	m := len(s.cams)
	boxes := make([][]geom.Rect, m)
	trackIDs := make([][]int, m)
	sizes := make([][]int, m)
	for cam := 0; cam < m; cam++ {
		rep := r.reports[cam]
		if rep == nil {
			continue // disconnected camera: schedule without its view
		}
		for _, t := range rep.Tracks {
			boxes[cam] = append(boxes[cam], geom.Rect{
				MinX: t.Box[0], MinY: t.Box[1], MaxX: t.Box[2], MaxY: t.Box[3],
			})
			trackIDs[cam] = append(trackIDs[cam], t.TrackID)
			sizes[cam] = append(sizes[cam], t.Size)
		}
	}

	groups, err := s.model.AssociateWorkers(boxes, s.minIoU, s.workers)
	if err != nil {
		return nil, metrics.Snapshot{}, nil, fmt.Errorf("association: %w", err)
	}
	objects := make([]core.ObjectSpec, 0, len(groups))
	for gi, g := range groups {
		spec := core.ObjectSpec{ID: gi + 1, Size: make(map[int]int)}
		for _, ref := range g.Members {
			if _, seen := spec.Size[ref.Cam]; !seen {
				spec.Coverage = append(spec.Coverage, ref.Cam)
			}
			if sz := sizes[ref.Cam][ref.Index]; sz > spec.Size[ref.Cam] {
				spec.Size[ref.Cam] = sz
			}
		}
		objects = append(objects, spec)
	}
	sol, err := core.Central(s.cams, objects, core.CentralOptions{})
	if err != nil {
		return nil, metrics.Snapshot{}, nil, fmt.Errorf("central BALB: %w", err)
	}
	snap := s.roundSnapshot(frame, objects, sol)
	// A round missing at least one roster camera's view (timeout, lease
	// expiry, disconnect, or a camera that never joined) is partial.
	snap.Partial = len(r.reports) < m

	// The wire speaks global camera indices; translate the priority
	// order (the identity for a standalone scheduler) and stamp the
	// shard roster so nodes build a scoped ownership policy.
	prio := make([]int, len(sol.Priority))
	for k, c := range sol.Priority {
		prio[k] = s.glob(c)
	}
	var roster []int
	if s.shard != nil {
		roster = s.shard.roster
	}

	// Cross-shard hand-off: a boundary object also claimed by a
	// lower-ID shard belongs there — every local member becomes a
	// shadow of the foreign owner instead of being kept.
	demoted := s.consultHandoff(frame, groups, boxes, sol)

	replies := make(map[int]*Assignment, m)
	for cam := 0; cam < m; cam++ {
		replies[cam] = &Assignment{Frame: frame, Priority: prio, Roster: roster}
	}
	for gi, g := range groups {
		assigned, ok := sol.Assign[gi+1]
		if !ok {
			continue
		}
		if owner, isDemoted := demoted[gi+1]; isDemoted {
			for _, ref := range g.Members {
				replies[ref.Cam].Shadows = append(replies[ref.Cam].Shadows, ShadowOrder{
					TrackID: trackIDs[ref.Cam][ref.Index], AssignedCamera: owner,
				})
			}
			continue
		}
		for _, ref := range g.Members {
			id := trackIDs[ref.Cam][ref.Index]
			if ref.Cam == assigned {
				replies[ref.Cam].Keep = append(replies[ref.Cam].Keep, id)
			} else {
				replies[ref.Cam].Shadows = append(replies[ref.Cam].Shadows, ShadowOrder{
					TrackID: id, AssignedCamera: s.glob(assigned),
				})
			}
		}
	}
	s.publishHandoff(frame, groups, boxes, sol, demoted)
	return replies, snap, prio, nil
}

// roundSnapshot derives the observability record of a scheduled round:
// per camera, the solution's scheduled latency, the number of objects
// assigned, and the batch occupancy its assignment implies (images over
// the capacity of the batches BALB's packing launches, per Definition 1
// greedy same-size packing).
func (s *Scheduler) roundSnapshot(frame int, objects []core.ObjectSpec, sol *core.Solution) metrics.Snapshot {
	snap := metrics.Snapshot{
		Source:       metrics.SourceScheduler,
		Frame:        frame,
		Objects:      len(objects),
		FrameLatency: sol.System(),
		Cameras:      make([]metrics.CameraSnapshot, len(s.cams)),
	}
	if s.shard != nil {
		// Shard-scoped rounds share one sink; the label demultiplexes
		// them ("shard0", "shard1", ...), and camera indices below are
		// globalized so fleet-wide dashboards line up.
		snap.Label = s.shard.label
	}
	counts := make([]map[int]int, len(s.cams))
	assigned := make([]int, len(s.cams))
	for i := range objects {
		o := &objects[i]
		cam, ok := sol.Assign[o.ID]
		if !ok || cam < 0 || cam >= len(s.cams) {
			continue
		}
		if counts[cam] == nil {
			counts[cam] = make(map[int]int)
		}
		counts[cam][o.Size[cam]]++
		assigned[cam]++
	}
	for i := range s.cams {
		cs := metrics.CameraSnapshot{Camera: s.glob(i), Assignments: assigned[i]}
		if i < len(sol.Latencies) {
			cs.Latency = sol.Latencies[i]
		}
		if counts[i] != nil {
			if nb, err := gpu.NumBatchesBySize(counts[i], s.cams[i].Profile); err == nil {
				images, capacity := 0, 0
				for size, b := range nb {
					limit, lerr := s.cams[i].Profile.BatchLimitFor(size)
					if lerr != nil {
						continue
					}
					cs.Batches += b
					capacity += b * limit
					images += counts[i][size]
				}
				cs.Images = images
				if capacity > 0 {
					cs.BatchOccupancy = float64(images) / float64(capacity)
				}
			}
		}
		snap.Cameras[i] = cs
	}
	return snap
}
