package cluster

import (
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"mvs/internal/clock"
)

// Backoff is a capped exponential retry schedule with deterministic
// jitter. The zero value gives 100ms, 200ms, 400ms, … capped at 5s,
// with ±20% jitter drawn from Seed — deterministic per (Seed, attempt),
// so a retry schedule replays exactly in tests and chaos runs.
type Backoff struct {
	// Base is the first delay (default 100ms).
	Base time.Duration
	// Max caps every delay (default 5s).
	Max time.Duration
	// Factor multiplies the delay each attempt (default 2).
	Factor float64
	// Jitter is the fractional spread: each delay is scaled by a factor
	// uniform in [1-Jitter, 1+Jitter) (default 0.2; negative disables).
	Jitter float64
	// Seed drives the jitter PRNG.
	Seed int64
}

// Delay returns the delay before retry attempt (0-based): attempt 0 is
// the wait after the first failure.
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 5 * time.Second
	}
	factor := b.Factor
	if factor < 1 {
		factor = 2
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if attempt < 0 {
		attempt = 0
	}
	d := float64(base) * math.Pow(factor, float64(attempt))
	if d > float64(max) {
		d = float64(max)
	}
	if jitter > 0 {
		// Deterministic per (Seed, attempt): no shared PRNG state, so
		// concurrent callers and replayed schedules agree.
		rng := rand.New(rand.NewSource(b.Seed ^ int64(uint64(attempt+1)*0x9E3779B97F4A7C15)))
		d *= 1 + jitter*(2*rng.Float64()-1)
	}
	if d > float64(max) {
		d = float64(max)
	}
	return time.Duration(d)
}

// DialFunc establishes the transport a client handshakes over;
// injectable so tests and chaos runs can interpose internal/faults.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// ReconnectConfig assembles a ReconnectClient.
type ReconnectConfig struct {
	// Addr is the scheduler address.
	Addr string
	// Camera is this node's index.
	Camera int
	// FrameW, FrameH are passed to the hello handshake (positive values
	// request cell-coverage masks).
	FrameW, FrameH float64
	// DialTimeout bounds each dial + handshake attempt (default 5s).
	DialTimeout time.Duration
	// IOTimeout bounds each message write on the live connection
	// (default 10s; see Client.SetIOTimeout).
	IOTimeout time.Duration
	// Backoff schedules the delays between reconnection attempts.
	Backoff Backoff
	// MaxAttempts bounds the connection attempts per operation (default
	// 4): an operation that cannot get a working connection in that many
	// tries returns its last error so the caller can degrade.
	MaxAttempts int
	// Clock abstracts the inter-attempt sleeps (default the system
	// clock; tests inject clock.Fake so schedules run without sleeping).
	Clock clock.Clock
	// Dial establishes raw connections (default TCP).
	Dial DialFunc
	// Logger, when non-nil, receives reconnect events.
	Logger *log.Logger
}

// ReconnectClient is a Client that survives connection loss: every
// operation transparently (re)dials with capped exponential backoff and
// retries before giving up, and a connection that fails mid-operation is
// dropped so the next operation starts fresh. Like Client it is
// single-owner: one goroutine drives operations; the counters are safe
// to read from others.
type ReconnectClient struct {
	cfg ReconnectConfig

	mu            sync.Mutex
	c             *Client
	ack           *HelloAck
	everConnected bool
	reconnects    int
	closed        bool
	// Byte totals of connections already torn down; live conn adds to
	// these in BytesSent/BytesReceived.
	sentPrev, recvPrev int64
}

// NewReconnectClient builds the client without touching the network;
// the first operation (or an explicit Connect) dials.
func NewReconnectClient(cfg ReconnectConfig) *ReconnectClient {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.IOTimeout <= 0 {
		cfg.IOTimeout = 10 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(logDiscard{}, "", 0)
	}
	return &ReconnectClient{cfg: cfg}
}

// errClosed marks operations on a closed ReconnectClient.
var errClosed = errors.New("cluster: reconnect client closed")

// ensure returns a live client, dialing if necessary. It does not
// retry — the operation loop owns the backoff schedule.
func (r *ReconnectClient) ensure() (*Client, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, errClosed
	}
	if r.c != nil {
		c := r.c
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()

	raw, err := r.cfg.Dial(r.cfg.Addr, r.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", r.cfg.Addr, err)
	}
	c, err := NewClientConn(raw, r.cfg.Camera, r.cfg.DialTimeout, r.cfg.FrameW, r.cfg.FrameH)
	if err != nil {
		return nil, err
	}
	c.SetIOTimeout(r.cfg.IOTimeout)

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		c.Close()
		return nil, errClosed
	}
	r.c = c
	r.ack = c.Ack()
	if r.everConnected {
		r.reconnects++
		r.cfg.Logger.Printf("cluster: camera %d reconnected to %s (reconnect #%d)",
			r.cfg.Camera, r.cfg.Addr, r.reconnects)
	}
	r.everConnected = true
	r.mu.Unlock()
	return c, nil
}

// drop tears down a connection that failed mid-operation, so the next
// attempt re-dials. Only the currently installed connection is dropped
// (a racing Close may already have swapped it out).
func (r *ReconnectClient) drop(c *Client) {
	r.mu.Lock()
	if r.c == c {
		r.c = nil
		r.sentPrev += c.BytesSent()
		r.recvPrev += c.BytesReceived()
	}
	r.mu.Unlock()
	c.Close()
}

// do runs op with a live connection, re-dialing and retrying on failure
// under the backoff schedule. Returns the last error after MaxAttempts
// connection attempts.
func (r *ReconnectClient) do(op func(*Client) error) error {
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			r.cfg.Clock.Sleep(r.cfg.Backoff.Delay(attempt - 1))
		}
		c, err := r.ensure()
		if err != nil {
			if errors.Is(err, errClosed) {
				return err
			}
			lastErr = err
			continue
		}
		if err := op(c); err != nil {
			lastErr = err
			r.drop(c)
			continue
		}
		return nil
	}
	return lastErr
}

// Connect eagerly establishes the connection (with retries), so callers
// can fetch the registration Ack before the first round.
func (r *ReconnectClient) Connect() error {
	return r.do(func(*Client) error { return nil })
}

// KeyFrame uploads a key-frame report and waits for the round's
// assignment, transparently reconnecting on connection failure. A nil
// error means a scheduler-issued assignment; an error after all retries
// means the caller should enter degraded mode and try again next round.
func (r *ReconnectClient) KeyFrame(frame int, tracks []TrackReport, deadline time.Duration) (*Assignment, error) {
	var a *Assignment
	err := r.do(func(c *Client) error {
		got, err := c.KeyFrame(frame, tracks, deadline)
		if err != nil {
			return err
		}
		a = got
		return nil
	})
	if err != nil {
		return nil, err
	}
	return a, nil
}

// Ping sends a liveness heartbeat, reconnecting on failure. Between key
// frames this both detects a dead scheduler early and keeps this
// camera's lease fresh so the scheduler does not count it dead.
func (r *ReconnectClient) Ping(timeout time.Duration) error {
	return r.do(func(c *Client) error { return c.Ping(timeout) })
}

// Ack returns the most recent registration ack (nil before the first
// successful handshake).
func (r *ReconnectClient) Ack() *HelloAck {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ack
}

// Reconnects returns how many times the client has re-established a
// previously working connection.
func (r *ReconnectClient) Reconnects() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reconnects
}

// BytesSent returns uplink bytes across all connections so far.
func (r *ReconnectClient) BytesSent() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.sentPrev
	if r.c != nil {
		n += r.c.BytesSent()
	}
	return n
}

// BytesReceived returns downlink bytes across all connections so far.
func (r *ReconnectClient) BytesReceived() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.recvPrev
	if r.c != nil {
		n += r.c.BytesReceived()
	}
	return n
}

// Close drops the connection and fails all future operations.
func (r *ReconnectClient) Close() error {
	r.mu.Lock()
	c := r.c
	r.c = nil
	r.closed = true
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
