package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/geom"
	"mvs/internal/metrics"
	"mvs/internal/profile"
	"mvs/internal/scene"
	"mvs/internal/shard"
	"mvs/internal/workload"
)

// shardedEnv is a trained corridor world split into overlap-group
// shards, with the trace kept around so tests can report ground-truth
// boxes.
type shardedEnv struct {
	model    *assoc.Model
	profiles []*profile.Profile
	test     *scene.Trace
	m        *shard.Map
}

// buildShardedEnv trains a corridor of n cameras and partitions it by
// the model's coverage overlap with the given max shard size.
func buildShardedEnv(t *testing.T, n int, seed int64, maxShard int) *shardedEnv {
	t.Helper()
	s, err := workload.Corridor(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := s.World.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	train, test := trace.SplitTrain()
	model, err := assoc.Train(train, assoc.Factories{})
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]geom.Rect, len(s.World.Cameras))
	for i, c := range s.World.Cameras {
		frames[i] = c.Frame()
	}
	adj, err := model.OverlapAdjacency(frames, maskGridCols, maskGridRows, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := shard.FromAdjacency(adj)
	if err != nil {
		t.Fatal(err)
	}
	m, err := shard.Partition(g, maxShard)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() < 2 {
		t.Fatalf("corridor of %d with max shard %d did not split: %v", n, maxShard, m.String())
	}
	return &shardedEnv{model: model, profiles: s.Profiles(), test: test, m: m}
}

// startSharded serves a ShardedScheduler on a loopback port.
func startSharded(t *testing.T, e *shardedEnv, opts ...Option) (*ShardedScheduler, string) {
	t.Helper()
	ss, err := NewShardedScheduler(e.model, e.profiles, 0, e.m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = ss.Serve(ln) }()
	t.Cleanup(func() {
		ss.Close()
		ln.Close()
	})
	return ss, ln.Addr().String()
}

// boundaryPair picks a boundary edge (a in the lower-ID shard, b in the
// higher) plus a trace frame and object visible from both — a hand-off
// fixture whose mapped IoU clears the scheduler's matching threshold,
// so the claim is guaranteed to be consultable.
func boundaryPair(t *testing.T, e *shardedEnv) (a, b, frame, object int) {
	t.Helper()
	for _, edge := range e.m.Boundary {
		a, b := edge.A, edge.B
		if e.m.ShardOf[a] > e.m.ShardOf[b] {
			a, b = b, a
		}
		for fi := range e.test.Frames {
			ft := &e.test.Frames[fi]
			for _, oa := range ft.PerCamera[a] {
				for _, ob := range ft.PerCamera[b] {
					if oa.ObjectID != ob.ObjectID {
						continue
					}
					mapped, visible, err := e.model.MapBox(a, b, oa.Box)
					if err != nil || !visible || mapped.IoU(ob.Box) < 0.2 {
						continue
					}
					return a, b, fi, oa.ObjectID
				}
			}
		}
	}
	t.Fatal("no boundary-visible object found in trace")
	return 0, 0, 0, 0
}

// reportFor converts a camera's ground-truth observations at a trace
// frame into track reports (track ID = ground-truth object ID, which is
// camera-local enough for these tests).
func reportFor(e *shardedEnv, frame, cam int) []TrackReport {
	var out []TrackReport
	for _, o := range e.test.Frames[frame].PerCamera[cam] {
		out = append(out, TrackReport{
			TrackID: o.ObjectID,
			Box:     [4]float64{o.Box.MinX, o.Box.MinY, o.Box.MaxX, o.Box.MaxY},
			Size:    64,
		})
	}
	return out
}

// keyFrameAll drives one key-frame round for the given cameras
// concurrently and returns their assignments.
func keyFrameAll(t *testing.T, clients map[int]*Client, cams []int, wire int, reports map[int][]TrackReport) map[int]*Assignment {
	t.Helper()
	var mu sync.Mutex
	var wg sync.WaitGroup
	got := make(map[int]*Assignment)
	for _, cam := range cams {
		wg.Add(1)
		go func(cam int) {
			defer wg.Done()
			a, err := clients[cam].KeyFrame(wire, reports[cam], 10*time.Second)
			if err != nil {
				t.Errorf("camera %d key frame %d: %v", cam, wire, err)
				return
			}
			mu.Lock()
			got[cam] = a
			mu.Unlock()
		}(cam)
	}
	wg.Wait()
	return got
}

func hasKeep(a *Assignment, id int) bool {
	for _, k := range a.Keep {
		if k == id {
			return true
		}
	}
	return false
}

func shadowOf(a *Assignment, id int) (int, bool) {
	for _, sh := range a.Shadows {
		if sh.TrackID == id {
			return sh.AssignedCamera, true
		}
	}
	return 0, false
}

func TestNewShardedSchedulerValidation(t *testing.T) {
	e := buildShardedEnv(t, 4, 23, 2)
	if _, err := NewShardedScheduler(nil, e.profiles, 0, e.m); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewShardedScheduler(e.model, e.profiles, 0, nil); err == nil {
		t.Fatal("nil shard map accepted")
	}
	wrong, err := shard.Single(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedScheduler(e.model, e.profiles, 0, wrong); err == nil {
		t.Fatal("fleet-size mismatch accepted")
	}
	if _, err := NewShardedScheduler(e.model, e.profiles[:2], 0, e.m); err == nil {
		t.Fatal("profile count mismatch accepted")
	}
}

// TestShardedRoundIndependence is the no-fleet-spanning-barrier check:
// a connected-but-silent camera in one shard (which would stall a
// global scheduler's barrier, see TestKeyFrameTimeout) must not delay
// the other shard's rounds at all.
func TestShardedRoundIndependence(t *testing.T) {
	e := buildShardedEnv(t, 4, 23, 2)
	_, addr := startSharded(t, e)

	shard0 := e.m.Shards[0]
	clients := make(map[int]*Client)
	for _, cam := range shard0 {
		c, err := Dial(addr, cam, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[cam] = c
	}
	// A camera from the other shard connects and stays silent for the
	// whole test.
	other := e.m.Shards[1][0]
	silent, err := Dial(addr, other, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	reports := map[int][]TrackReport{}
	for _, cam := range shard0 {
		reports[cam] = reportFor(e, 50, cam)
	}
	got := keyFrameAll(t, clients, shard0, 0, reports)
	for _, cam := range shard0 {
		a := got[cam]
		if a == nil {
			t.Fatalf("camera %d got no assignment", cam)
		}
		// Shard-scoped replies carry the shard roster, and the priority
		// orders exactly those (global) cameras.
		if len(a.Roster) != len(shard0) {
			t.Fatalf("camera %d roster = %v, want %v", cam, a.Roster, shard0)
		}
		for i, c := range a.Roster {
			if c != shard0[i] {
				t.Fatalf("camera %d roster = %v, want %v", cam, a.Roster, shard0)
			}
		}
		if len(a.Priority) != len(shard0) {
			t.Fatalf("camera %d priority = %v", cam, a.Priority)
		}
		inRoster := func(c int) bool {
			for _, r := range shard0 {
				if r == c {
					return true
				}
			}
			return false
		}
		for _, c := range a.Priority {
			if !inRoster(c) {
				t.Fatalf("camera %d priority %v leaves the shard roster %v", cam, a.Priority, shard0)
			}
		}
	}
}

// TestShardedSnapshotLabels checks the shared sink demultiplexes shard
// rounds by label and reports global camera indices.
func TestShardedSnapshotLabels(t *testing.T) {
	e := buildShardedEnv(t, 4, 23, 2)
	sink := metrics.NewChannelSink(1, 16)
	_, addr := startSharded(t, e, WithSink(sink))

	clients := make(map[int]*Client)
	all := make([]int, e.m.NumCameras())
	for cam := range all {
		all[cam] = cam
		c, err := Dial(addr, cam, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[cam] = c
	}
	reports := map[int][]TrackReport{}
	for cam := range clients {
		reports[cam] = reportFor(e, 50, cam)
	}
	keyFrameAll(t, clients, all, 0, reports)

	labels := map[string][]int{}
	for i := 0; i < e.m.NumShards(); i++ {
		select {
		case snap := <-sink.Snapshots():
			if snap.Source != metrics.SourceScheduler {
				t.Fatalf("source = %q", snap.Source)
			}
			var cams []int
			for _, cs := range snap.Cameras {
				cams = append(cams, cs.Camera)
			}
			labels[snap.Label] = cams
		case <-time.After(5 * time.Second):
			t.Fatal("missing shard snapshot")
		}
	}
	if len(labels) != e.m.NumShards() {
		t.Fatalf("labels %v, want one per shard", labels)
	}
	for sid, roster := range e.m.Shards {
		label := ""
		for l := range labels {
			if l == "shard"+string(rune('0'+sid)) {
				label = l
			}
		}
		if label == "" {
			t.Fatalf("no snapshot labeled shard%d in %v", sid, labels)
		}
		cams := labels[label]
		if len(cams) != len(roster) {
			t.Fatalf("shard %d snapshot cameras %v, roster %v", sid, cams, roster)
		}
		for i, c := range cams {
			if c != roster[i] {
				t.Fatalf("shard %d snapshot cameras %v not globalized (roster %v)", sid, cams, roster)
			}
		}
	}
}

// TestShardedBoundaryHandoff drives an object visible across a shard
// cut through both shards' rounds: the lower-ID shard claims it, and
// the higher shard — scheduling strictly after the claim is published —
// demotes its local track to a shadow of the foreign owner instead of
// double-tracking it.
func TestShardedBoundaryHandoff(t *testing.T) {
	e := buildShardedEnv(t, 4, 23, 2)
	_, addr := startSharded(t, e)
	a, b, frame, object := boundaryPair(t, e)
	lower, higher := e.m.ShardOf[a], e.m.ShardOf[b]

	clients := make(map[int]*Client)
	for cam := 0; cam < e.m.NumCameras(); cam++ {
		c, err := Dial(addr, cam, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[cam] = c
	}
	reports := map[int][]TrackReport{}
	for cam := range clients {
		reports[cam] = reportFor(e, frame, cam)
	}

	// The lower shard's round completes (and publishes its claims)
	// before the higher shard schedules the same wire frame.
	lowGot := keyFrameAll(t, clients, e.m.Shards[lower], 0, reports)
	highGot := keyFrameAll(t, clients, e.m.Shards[higher], 0, reports)

	// The lower shard owns the object: camera a keeps it, or shadows it
	// to another camera of its own shard.
	la := lowGot[a]
	owner := a
	if !hasKeep(la, object) {
		sh, ok := shadowOf(la, object)
		if !ok {
			t.Fatalf("lower shard reply for camera %d does not account for object %d: %+v", a, object, la)
		}
		if e.m.ShardOf[sh] != lower {
			t.Fatalf("lower shard assigned object %d outside its shard (camera %d)", object, sh)
		}
		owner = sh
	}

	// The higher shard hands it off: camera b shadows the object to the
	// lower shard's owner and does not keep it.
	hb := highGot[b]
	if hasKeep(hb, object) {
		t.Fatalf("higher shard kept boundary object %d, want hand-off: %+v", object, hb)
	}
	sh, ok := shadowOf(hb, object)
	if !ok {
		t.Fatalf("higher shard reply for camera %d does not account for object %d: %+v", b, object, hb)
	}
	if sh != owner {
		t.Fatalf("higher shard shadows object %d to camera %d, want lower-shard owner %d", object, sh, owner)
	}
}

// TestChaosShardBoundaryDeath kills the owning boundary camera mid-
// hand-off: the lower shard's next round (its barrier shrunk by the
// disconnect, the camera declared dead by its lease) publishes claims
// without the object, and the higher shard re-keeps it in the same wire
// frame — the object is orphaned for zero rounds. Run under -race by
// CI's chaos smoke step.
func TestChaosShardBoundaryDeath(t *testing.T) {
	e := buildShardedEnv(t, 4, 23, 2)
	_, addr := startSharded(t, e,
		WithRoundTimeout(500*time.Millisecond),
		WithLease(50*time.Millisecond))
	a, b, frame, object := boundaryPair(t, e)
	lower, higher := e.m.ShardOf[a], e.m.ShardOf[b]

	clients := make(map[int]*Client)
	for cam := 0; cam < e.m.NumCameras(); cam++ {
		c, err := Dial(addr, cam, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[cam] = c
	}
	reports := map[int][]TrackReport{}
	for cam := range clients {
		reports[cam] = reportFor(e, frame, cam)
	}

	// Round 0 establishes the hand-off: lower shard owns, higher shadows.
	keyFrameAll(t, clients, e.m.Shards[lower], 0, reports)
	highGot := keyFrameAll(t, clients, e.m.Shards[higher], 0, reports)
	if hasKeep(highGot[b], object) {
		t.Fatalf("hand-off not established: higher shard kept object %d", object)
	}

	// The owning boundary camera dies.
	clients[a].Close()

	// Round 10: the lower shard's survivors report nothing — its round
	// completes without camera a (disconnected peers do not block the
	// barrier) and publishes an empty claim set, releasing the object.
	empty := map[int][]TrackReport{}
	var survivors []int
	for _, cam := range e.m.Shards[lower] {
		if cam != a {
			survivors = append(survivors, cam)
			empty[cam] = []TrackReport{{TrackID: 1000 + cam, Box: [4]float64{10, 10, 40, 40}, Size: 64}}
		}
	}
	lowGot := keyFrameAll(t, clients, survivors, 10, empty)
	for _, cam := range survivors {
		reply := lowGot[cam]
		if reply == nil {
			t.Fatalf("lower-shard survivor %d got no assignment after boundary death", cam)
		}
		deadListed := false
		for _, d := range reply.Dead {
			if d == a {
				deadListed = true
			}
		}
		if !deadListed {
			t.Fatalf("survivor %d reply does not declare camera %d dead: %+v", cam, a, reply)
		}
	}

	// The higher shard schedules the same wire frame after the release:
	// no foreign claim matches, so camera b keeps the object again.
	highGot = keyFrameAll(t, clients, e.m.Shards[higher], 10, reports)
	hb := highGot[b]
	if hb == nil {
		t.Fatal("higher shard round did not complete after boundary death")
	}
	if !hasKeep(hb, object) {
		if sh, ok := shadowOf(hb, object); ok && e.m.ShardOf[sh] != higher {
			t.Fatalf("object %d still shadowed to dead shard's camera %d", object, sh)
		}
	}
}

// TestSharded64CameraCorridor is the scale acceptance check: a
// 64-camera corridor fleet runs scheduling rounds under the sharded
// scheduler, every shard's barrier spans at most -shard-max cameras,
// and every camera gets a shard-scoped assignment.
func TestSharded64CameraCorridor(t *testing.T) {
	if testing.Short() {
		t.Skip("64-camera fleet in -short mode")
	}
	e := buildShardedEnv(t, 64, 17, 8)
	if e.m.MaxShardSize() > 8 {
		t.Fatalf("max shard size %d > 8", e.m.MaxShardSize())
	}
	_, addr := startSharded(t, e)

	clients := make(map[int]*Client)
	all := make([]int, e.m.NumCameras())
	for cam := range all {
		all[cam] = cam
		c, err := Dial(addr, cam, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[cam] = c
	}
	for round := 0; round < 3; round++ {
		wire := round * 10
		reports := map[int][]TrackReport{}
		for cam := range clients {
			reports[cam] = reportFor(e, 50+wire, cam)
		}
		got := keyFrameAll(t, clients, all, wire, reports)
		if len(got) != len(all) {
			t.Fatalf("round %d: %d/%d cameras got assignments", round, len(got), len(all))
		}
		for cam, a := range got {
			if len(a.Roster) == 0 || len(a.Roster) > 8 {
				t.Fatalf("round %d camera %d: roster %v", round, cam, a.Roster)
			}
			if e.m.ShardOf[a.Roster[0]] != e.m.ShardOf[cam] {
				t.Fatalf("round %d camera %d: foreign roster %v", round, cam, a.Roster)
			}
		}
	}
}
