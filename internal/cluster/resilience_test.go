package cluster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"mvs/internal/metrics"
)

// countingWriter counts Write calls, so framing tests can assert a
// message leaves in one piece.
type countingWriter struct {
	buf    bytes.Buffer
	writes int
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func TestWriteMessageSingleWrite(t *testing.T) {
	// One message must be one Write: header and body split across two
	// writes interleave when two goroutines share a conn without the
	// sender mutex, and double the syscall count on the hot path.
	var w countingWriter
	env := &Envelope{Type: TypePing, Heartbeat: &Heartbeat{Camera: 3, Seq: 9}}
	if err := WriteMessage(&w, env); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("writes = %d, want 1", w.writes)
	}
	raw := w.buf.Bytes()
	if len(raw) < 5 {
		t.Fatalf("frame too short: %d bytes", len(raw))
	}
	if got := binary.BigEndian.Uint32(raw[:4]); int(got) != len(raw)-4 {
		t.Fatalf("length prefix %d, body %d", got, len(raw)-4)
	}
	out, err := ReadMessage(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != TypePing || out.Heartbeat == nil || out.Heartbeat.Seq != 9 {
		t.Fatalf("round trip = %+v", out)
	}
}

// pipeClient builds a Client directly over one end of a net.Pipe,
// bypassing the handshake, so protocol-level behaviour can be tested
// against a hand-scripted peer.
func pipeClient(camera int) (*Client, net.Conn) {
	a, b := net.Pipe()
	return &Client{camera: camera, conn: &countingConn{Conn: a}}, b
}

func TestKeyFrameSkipsUnknownAndStaleMessages(t *testing.T) {
	c, peer := pipeClient(0)
	defer c.Close()
	defer peer.Close()

	done := make(chan error, 1)
	go func() {
		defer close(done)
		// Consume the detections upload.
		if _, err := ReadMessage(peer); err != nil {
			done <- err
			return
		}
		// Reply with noise first: an unknown (future-protocol) type, an
		// unsolicited pong, and a stale assignment from an earlier round.
		// A tolerant client skips all three.
		noise := []*Envelope{
			{Type: "gossip"},
			{Type: TypePong, Heartbeat: &Heartbeat{Seq: 1}},
			{Type: TypeAssignment, Assignment: &Assignment{Frame: 10, Priority: []int{0}}},
			{Type: TypeAssignment, Assignment: &Assignment{Frame: 20, Priority: []int{0}, Keep: []int{5}}},
		}
		for _, env := range noise {
			if err := WriteMessage(peer, env); err != nil {
				done <- err
				return
			}
		}
	}()

	a, err := c.KeyFrame(20, []TrackReport{{TrackID: 5, Size: 64}}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if a.Frame != 20 || len(a.Keep) != 1 || a.Keep[0] != 5 {
		t.Fatalf("assignment = %+v", a)
	}
	if err := <-done; err != nil && err != io.EOF {
		t.Fatal(err)
	}
}

func TestPingMatchesSequence(t *testing.T) {
	c, peer := pipeClient(2)
	defer c.Close()
	defer peer.Close()

	go func() {
		env, err := ReadMessage(peer)
		if err != nil {
			return
		}
		// An old pong first (wrong seq), then the right one.
		_ = WriteMessage(peer, &Envelope{Type: TypePong, Heartbeat: &Heartbeat{Seq: env.Heartbeat.Seq + 100}})
		_ = WriteMessage(peer, &Envelope{Type: TypePong, Heartbeat: env.Heartbeat})
	}()
	if err := c.Ping(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTimeoutSchedulesPartialRound(t *testing.T) {
	// Two cameras register, one reports: with a round timeout the round
	// must complete anyway, marked Partial in its snapshot, instead of
	// waiting on the silent camera forever.
	model, profiles := testModel(t)
	sink := metrics.NewChannelSink(1, 16)
	s, err := NewScheduler(model, profiles, 0,
		WithRoundTimeout(200*time.Millisecond), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer func() {
		s.Close()
		ln.Close()
	}()
	addr := ln.Addr().String()

	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close() // registered but never reports

	a, err := c0.KeyFrame(0, []TrackReport{{TrackID: 1, Box: [4]float64{100, 100, 150, 150}, Size: 64}}, 10*time.Second)
	if err != nil {
		t.Fatalf("partial round never scheduled: %v", err)
	}
	if a.Frame != 0 {
		t.Fatalf("assignment frame = %d", a.Frame)
	}
	select {
	case snap := <-sink.Snapshots():
		if !snap.Partial {
			t.Fatalf("snapshot not marked partial: %+v", snap)
		}
		if snap.Source != metrics.SourceScheduler {
			t.Fatalf("snapshot source = %q", snap.Source)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no round snapshot")
	}
}

func TestLeaseExpiryUnblocksBarrier(t *testing.T) {
	// With a liveness lease, a camera that has gone silent longer than
	// the lease does not block the barrier: the round completes without
	// it and no round timeout is needed.
	model, profiles := testModel(t)
	s, err := NewScheduler(model, profiles, 0, WithLease(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer func() {
		s.Close()
		ln.Close()
	}()
	addr := ln.Addr().String()

	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Let camera 1's lease lapse, then report from camera 0 only.
	time.Sleep(250 * time.Millisecond)
	if _, err := c0.KeyFrame(0, []TrackReport{{TrackID: 1, Box: [4]float64{100, 100, 150, 150}, Size: 64}}, 5*time.Second); err != nil {
		t.Fatalf("round blocked on leased-out camera: %v", err)
	}
}

func TestChaosDeadCameraBroadcast(t *testing.T) {
	// The lease-fed data-plane health model: a camera that reported in
	// round 0 (and got assignments) goes silent; the next round must
	// complete without it, declare it dead in every reply, and charge
	// its orphaned assignments to the reassignment counter.
	model, profiles := testModel(t)
	sink := metrics.NewChannelSink(1, 16)
	s, err := NewScheduler(model, profiles, 0,
		WithLease(100*time.Millisecond), WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer func() {
		s.Close()
		ln.Close()
	}()
	addr := ln.Addr().String()

	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Round 0: both cameras report disjoint tracks (no cross-camera
	// association), so each keeps its own object.
	c1done := make(chan error, 1)
	go func() {
		a, err := c1.KeyFrame(0, []TrackReport{
			{TrackID: 7, Box: [4]float64{900, 300, 980, 380}, Size: 64},
		}, 10*time.Second)
		if err == nil && len(a.Dead) > 0 {
			err = fmt.Errorf("round 0 declared %v dead", a.Dead)
		}
		c1done <- err
	}()
	a0, err := c0.KeyFrame(0, []TrackReport{
		{TrackID: 1, Box: [4]float64{100, 100, 150, 150}, Size: 64},
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(a0.Dead) > 0 {
		t.Fatalf("round 0 declared %v dead with both cameras live", a0.Dead)
	}
	if err := <-c1done; err != nil {
		t.Fatal(err)
	}
	round0 := <-sink.Snapshots()
	if round0.OutageFrames != 0 || round0.Reassignments != 0 {
		t.Fatalf("fault counters on a healthy round: %+v", round0)
	}
	if round0.Cameras[1].Assignments == 0 {
		t.Fatalf("camera 1 got no assignment in round 0: %+v", round0)
	}

	// Camera 1 goes silent past its lease; camera 0 reports round 10.
	time.Sleep(250 * time.Millisecond)
	a10, err := c0.KeyFrame(10, []TrackReport{
		{TrackID: 1, Box: [4]float64{110, 100, 160, 150}, Size: 64},
	}, 10*time.Second)
	if err != nil {
		t.Fatalf("round blocked on dead camera: %v", err)
	}
	if len(a10.Dead) != 1 || a10.Dead[0] != 1 {
		t.Fatalf("round 10 Dead = %v, want [1]", a10.Dead)
	}
	round10 := <-sink.Snapshots()
	if !round10.Partial {
		t.Fatalf("round with a dead camera not partial: %+v", round10)
	}
	if round10.OutageFrames != 1 {
		t.Fatalf("OutageFrames = %d, want 1", round10.OutageFrames)
	}
	if round10.Reassignments != round0.Cameras[1].Assignments {
		t.Fatalf("Reassignments = %d, want camera 1's prior %d assignments",
			round10.Reassignments, round0.Cameras[1].Assignments)
	}
}

func TestHeartbeatRefreshesLease(t *testing.T) {
	// White-box: a ping must advance the camera's lastSeen, which is what
	// keeps its lease fresh between key frames.
	s, addr := startScheduler(t)
	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()

	s.mu.Lock()
	before := s.conns[0].lastSeen
	s.mu.Unlock()
	time.Sleep(10 * time.Millisecond)
	if err := c0.Ping(0); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	after := s.conns[0].lastSeen
	s.mu.Unlock()
	if !after.After(before) {
		t.Fatalf("lastSeen not refreshed: %v -> %v", before, after)
	}
}
