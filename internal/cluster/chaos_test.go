package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"mvs/internal/faults"
	"mvs/internal/metrics"
)

// TestChaosReconnectUnderWriteCut drives two reconnecting clients
// through key-frame rounds while a deterministic fault schedule kills
// their connections every few writes. Liveness is the claim: every
// round either yields an assignment or fails fast enough to move on,
// the clients reconnect, and the scheduler survives to answer a final
// ping. Run under -race by CI's chaos smoke step.
func TestChaosReconnectUnderWriteCut(t *testing.T) {
	model, profiles := testModel(t)
	sink := metrics.NewChannelSink(1, 256)
	s, err := NewScheduler(model, profiles, 0,
		WithRoundTimeout(300*time.Millisecond),
		WithLease(2*time.Second),
		WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve(ln) }()
	defer func() {
		s.Close()
		ln.Close()
	}()
	addr := ln.Addr().String()

	// Grace lets the handshake through; every 4th post-grace write kills
	// the connection — deterministic, so faults are guaranteed to fire.
	inj := faults.New(faults.Config{Seed: 11, Grace: 2, WriteCut: 4})

	const rounds = 12
	runCam := func(cam int, okRounds *int, rc **ReconnectClient, wg *sync.WaitGroup) {
		defer wg.Done()
		c := NewReconnectClient(ReconnectConfig{
			Addr: addr, Camera: cam,
			DialTimeout: 2 * time.Second,
			IOTimeout:   2 * time.Second,
			Backoff:     Backoff{Base: time.Millisecond, Max: 10 * time.Millisecond, Seed: int64(cam)},
			MaxAttempts: 6,
			Dial:        DialFunc(inj.Dialer(nil)),
		})
		*rc = c
		for frame := 0; frame < rounds*10; frame += 10 {
			rep := []TrackReport{{
				TrackID: frame + cam + 1,
				Box:     [4]float64{100, 100, 150, 150},
				Size:    64,
			}}
			a, err := c.KeyFrame(frame, rep, 3*time.Second)
			if err != nil {
				continue // degraded round: the node moves on without guidance
			}
			if a.Frame != frame {
				t.Errorf("camera %d: got assignment for frame %d, want %d", cam, a.Frame, frame)
				return
			}
			*okRounds++
		}
	}

	var wg sync.WaitGroup
	var ok0, ok1 int
	var rc0, rc1 *ReconnectClient
	wg.Add(2)
	go runCam(0, &ok0, &rc0, &wg)
	go runCam(1, &ok1, &rc1, &wg)
	wg.Wait()
	defer rc0.Close()
	defer rc1.Close()

	if inj.Faults() == 0 {
		t.Fatal("no faults injected: the chaos schedule never fired")
	}
	if rc0.Reconnects()+rc1.Reconnects() == 0 {
		t.Fatal("no reconnects despite injected connection kills")
	}
	// WriteCut kills every connection after a handful of rounds, so most
	// rounds still succeed via reconnect; requiring half guards liveness
	// without racing the exact schedule.
	if ok0+ok1 < rounds {
		t.Fatalf("only %d+%d/%d×2 rounds got assignments", ok0, ok1, rounds)
	}

	// The scheduler is still alive after the storm: a fresh, un-faulted
	// client can register and ping.
	probe, err := Dial(addr, 0, 2*time.Second, 0, 0)
	if err != nil {
		t.Fatalf("scheduler dead after chaos: %v", err)
	}
	defer probe.Close()
	if err := probe.Ping(2 * time.Second); err != nil {
		t.Fatalf("scheduler unresponsive after chaos: %v", err)
	}
}
