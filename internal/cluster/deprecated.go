package cluster

import "log"

// SetLogger installs a logger for connection events (nil restores the
// silent default).
//
// Deprecated: pass WithLogger to NewScheduler instead. Observability
// hooks belong at construction — SetLogger mutates a field that running
// connection handlers read concurrently once Serve has started, so it is
// only safe before Serve, which is exactly when functional options
// apply. Retained for one release; CI rejects new callers.
func (s *Scheduler) SetLogger(l *log.Logger) {
	if l == nil {
		l = log.New(logDiscard{}, "", 0)
	}
	s.logger = l
}
