package cluster

import (
	"bytes"
	"testing"
)

// FuzzReadMessage hammers the framed-JSON decoder with arbitrary bytes:
// it must never panic and never allocate unboundedly, only return
// messages or errors.
func FuzzReadMessage(f *testing.F) {
	// Seed with a valid frame and several near-valid corruptions.
	var valid bytes.Buffer
	if err := WriteMessage(&valid, &Envelope{
		Type:       TypeDetections,
		Detections: &Detections{Camera: 1, Frame: 10, Tracks: []TrackReport{{TrackID: 1, Size: 64}}},
	}); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadMessage(bytes.NewReader(data))
		if err == nil && env == nil {
			t.Fatal("nil message without error")
		}
	})
}

// FuzzMessageRoundTrip checks that any envelope assembled from fuzzed
// fields survives an encode/decode cycle intact.
func FuzzMessageRoundTrip(f *testing.F) {
	f.Add("hello", 3, 70, int64(5))
	f.Add("detections", 0, 0, int64(-1))
	f.Fuzz(func(t *testing.T, typ string, cam, frame int, box int64) {
		in := &Envelope{
			Type: typ,
			Detections: &Detections{
				Camera: cam, Frame: frame,
				Tracks: []TrackReport{{TrackID: cam, Box: [4]float64{float64(box), 0, 1, 2}, Size: 64}},
			},
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, in); err != nil {
			t.Skip() // e.g. unencodable floats
		}
		out, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if out.Type != in.Type || out.Detections.Camera != cam || out.Detections.Frame != frame {
			t.Fatalf("round trip mutated: %+v vs %+v", out, in)
		}
	})
}
