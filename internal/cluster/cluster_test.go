package cluster

import (
	"bytes"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"mvs/internal/assoc"
	"mvs/internal/geom"
	"mvs/internal/profile"
	"mvs/internal/scene"
)

func TestMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Envelope{
		Type: TypeDetections,
		Detections: &Detections{
			Camera: 2, Frame: 30,
			Tracks: []TrackReport{{TrackID: 7, Box: [4]float64{1, 2, 3, 4}, Size: 128}},
		},
	}
	if err := WriteMessage(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != TypeDetections || out.Detections.Camera != 2 ||
		out.Detections.Tracks[0].Size != 128 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestReadMessageRejectsBadLength(t *testing.T) {
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := ReadMessage(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Fatal("huge length accepted")
	}
	if _, err := ReadMessage(bytes.NewReader([]byte{0, 0, 0, 5, '{'})); err == nil {
		t.Fatal("truncated body accepted")
	}
	if _, err := ReadMessage(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReadMessageRejectsGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("xyz")
	if _, err := ReadMessage(&buf); err == nil {
		t.Fatal("garbage JSON accepted")
	}
}

// testModel trains a small association model on a two-camera world.
func testModel(t *testing.T) (*assoc.Model, []*profile.Profile) {
	t.Helper()
	road := scene.MustPath(geom.Point{X: 5, Y: -40}, geom.Point{X: 5, Y: 40})
	camA := &scene.Camera{
		Name: "a", Pos: geom.Point{X: 0, Y: -50}, Height: 8, Yaw: math.Pi / 2,
		Pitch: 0.4, Focal: 1000, ImageW: 1280, ImageH: 704, MaxRange: 62,
	}
	camB := &scene.Camera{
		Name: "b", Pos: geom.Point{X: 0, Y: 50}, Height: 8, Yaw: -math.Pi / 2,
		Pitch: 0.4, Focal: 1000, ImageW: 1280, ImageH: 704, MaxRange: 62,
	}
	world := &scene.World{
		Routes:  []scene.Route{{Path: road, Speed: 8, Arrivals: scene.Poisson{RatePerSec: 0.6}}},
		Cameras: []*scene.Camera{camA, camB},
		FPS:     10, Seed: 21,
	}
	trace, err := world.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	model, err := assoc.Train(trace, assoc.Factories{})
	if err != nil {
		t.Fatal(err)
	}
	return model, []*profile.Profile{
		profile.Derived(profile.JetsonXavier),
		profile.Derived(profile.JetsonNano),
	}
}

// startScheduler runs a scheduler on a random loopback port.
func startScheduler(t *testing.T) (*Scheduler, string) {
	t.Helper()
	model, profiles := testModel(t)
	s, err := NewScheduler(model, profiles, 0)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = s.Serve(ln)
	}()
	t.Cleanup(func() {
		s.Close()
		ln.Close()
	})
	return s, ln.Addr().String()
}

func TestNewSchedulerValidation(t *testing.T) {
	model, profiles := testModel(t)
	if _, err := NewScheduler(nil, profiles, 0); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := NewScheduler(model, profiles[:1], 0); err == nil {
		t.Fatal("profile count mismatch accepted")
	}
	if _, err := NewScheduler(model, []*profile.Profile{nil, nil}, 0); err == nil {
		t.Fatal("nil profile accepted")
	}
}

func TestSchedulingRoundOverTCP(t *testing.T) {
	_, addr := startScheduler(t)

	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Two cameras report boxes; tracks 11 (cam0) and 21 (cam1) are at
	// locations the association model should merge or at least schedule.
	rep0 := []TrackReport{
		{TrackID: 11, Box: [4]float64{600, 300, 700, 380}, Size: 128},
		{TrackID: 12, Box: [4]float64{100, 500, 160, 560}, Size: 64},
	}
	rep1 := []TrackReport{
		{TrackID: 21, Box: [4]float64{580, 310, 690, 390}, Size: 128},
	}

	var wg sync.WaitGroup
	var a0, a1 *Assignment
	var e0, e1 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		a0, e0 = c0.KeyFrame(0, rep0, 5*time.Second)
	}()
	go func() {
		defer wg.Done()
		a1, e1 = c1.KeyFrame(0, rep1, 5*time.Second)
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("errors: %v / %v", e0, e1)
	}

	// Both replies carry the same priority permutation.
	if len(a0.Priority) != 2 || len(a1.Priority) != 2 {
		t.Fatalf("priorities = %v / %v", a0.Priority, a1.Priority)
	}
	for i := range a0.Priority {
		if a0.Priority[i] != a1.Priority[i] {
			t.Fatalf("inconsistent priorities: %v vs %v", a0.Priority, a1.Priority)
		}
	}
	// Every reported track is either kept or shadowed on its own camera.
	accounted := func(a *Assignment, id int) bool {
		for _, k := range a.Keep {
			if k == id {
				return true
			}
		}
		for _, sh := range a.Shadows {
			if sh.TrackID == id {
				return true
			}
		}
		return false
	}
	for _, tr := range rep0 {
		if !accounted(a0, tr.TrackID) {
			t.Fatalf("cam0 track %d unaccounted: %+v", tr.TrackID, a0)
		}
	}
	for _, tr := range rep1 {
		if !accounted(a1, tr.TrackID) {
			t.Fatalf("cam1 track %d unaccounted: %+v", tr.TrackID, a1)
		}
	}
	// A shadow's assigned camera must be the other one.
	for _, sh := range a0.Shadows {
		if sh.AssignedCamera != 1 {
			t.Fatalf("cam0 shadow assigned to %d", sh.AssignedCamera)
		}
	}
}

func TestMultipleRounds(t *testing.T) {
	_, addr := startScheduler(t)
	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	for frame := 0; frame < 30; frame += 10 {
		var wg sync.WaitGroup
		var err0, err1 error
		wg.Add(2)
		go func(f int) {
			defer wg.Done()
			_, err0 = c0.KeyFrame(f, []TrackReport{{TrackID: f + 1, Box: [4]float64{100, 100, 150, 150}, Size: 64}}, 5*time.Second)
		}(frame)
		go func(f int) {
			defer wg.Done()
			_, err1 = c1.KeyFrame(f, nil, 5*time.Second)
		}(frame)
		wg.Wait()
		if err0 != nil || err1 != nil {
			t.Fatalf("frame %d: %v / %v", frame, err0, err1)
		}
	}
}

func TestDuplicateCameraTakesOver(t *testing.T) {
	// A second registration for a live camera index is a reconnect: the
	// new connection takes over and the old one is closed, so a node
	// whose old socket is half-dead can rejoin without waiting for the
	// scheduler to notice the corpse.
	_, addr := startScheduler(t)
	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()

	c0again, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatalf("takeover registration rejected: %v", err)
	}
	defer c0again.Close()

	// The displaced connection is closed by the scheduler: its next read
	// fails rather than hanging.
	if err := c0.conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(c0.conn); err == nil {
		t.Fatal("displaced connection still readable, want closed")
	}

	// The new connection is live: a ping round-trips.
	if err := c0again.Ping(0); err != nil {
		t.Fatalf("ping on takeover connection: %v", err)
	}
}

func TestOutOfRangeCameraRejected(t *testing.T) {
	_, addr := startScheduler(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Envelope{Type: TypeHello, Hello: &Hello{Camera: 9}}); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestNonHelloFirstMessageRejected(t *testing.T) {
	_, addr := startScheduler(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	env := &Envelope{Type: TypeDetections, Detections: &Detections{Camera: 0}}
	if err := WriteMessage(conn, env); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestCameraIDMismatchInDetections(t *testing.T) {
	_, addr := startScheduler(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, &Envelope{Type: TypeHello, Hello: &Hello{Camera: 0}}); err != nil {
		t.Fatal(err)
	}
	ack, err := ReadMessage(conn)
	if err != nil || ack.Type != TypeHello {
		t.Fatalf("handshake ack = %+v, %v", ack, err)
	}
	env := &Envelope{Type: TypeDetections, Detections: &Detections{Camera: 1, Frame: 0}}
	if err := WriteMessage(conn, env); err != nil {
		t.Fatal(err)
	}
	reply, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != TypeError {
		t.Fatalf("reply = %+v", reply)
	}
}

func TestKeyFrameTimeout(t *testing.T) {
	// Camera 1 is connected but never reports: the round cannot complete
	// while it is alive, and the client's deadline must fire.
	_, addr := startScheduler(t)
	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := c0.KeyFrame(0, nil, 300*time.Millisecond); err == nil {
		t.Fatal("incomplete round returned an assignment")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 0, 200*time.Millisecond, 0, 0); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestReportTracksConversion(t *testing.T) {
	reports := ReportTracks(nil)
	if len(reports) != 0 {
		t.Fatal("nil tracks produced reports")
	}
}

func TestDisconnectUnblocksRound(t *testing.T) {
	// Camera 1 reports for frame 0, camera 0 never does and instead
	// disconnects. The round must complete with camera 1's view alone.
	_, addr := startScheduler(t)
	c0, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c1.KeyFrame(0, []TrackReport{
			{TrackID: 5, Box: [4]float64{100, 100, 160, 150}, Size: 64},
		}, 10*time.Second)
		done <- err
	}()
	// Give the report time to land in the pending round, then drop
	// camera 0.
	time.Sleep(200 * time.Millisecond)
	c0.Close()

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("round did not complete cleanly: %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("round stalled after disconnect")
	}
}

func TestHelloWithFrameSizeGetsCoverage(t *testing.T) {
	_, addr := startScheduler(t)
	c, err := Dial(addr, 0, 0, 1280, 704)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ack := c.Ack()
	if ack == nil {
		t.Fatal("no ack payload")
	}
	if ack.GridCols <= 0 || ack.GridRows <= 0 {
		t.Fatalf("grid = %dx%d", ack.GridCols, ack.GridRows)
	}
	if len(ack.Coverage) != ack.GridCols*ack.GridRows {
		t.Fatalf("coverage cells = %d", len(ack.Coverage))
	}
	for i, cover := range ack.Coverage {
		if len(cover) == 0 || cover[0] != 0 {
			t.Fatalf("cell %d coverage %v must start with own camera", i, cover)
		}
	}
}

func TestHelloWithoutFrameSizeOmitsCoverage(t *testing.T) {
	_, addr := startScheduler(t)
	c, err := Dial(addr, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ack := c.Ack()
	if ack == nil {
		t.Fatal("no ack payload")
	}
	if len(ack.Coverage) != 0 {
		t.Fatal("coverage sent without frame size")
	}
}

func TestBandwidthCounters(t *testing.T) {
	_, addr := startScheduler(t)
	c0, err := Dial(addr, 0, 0, 1280, 704)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := Dial(addr, 1, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if c0.BytesSent() == 0 || c0.BytesReceived() == 0 {
		t.Fatalf("handshake not counted: sent=%d recv=%d", c0.BytesSent(), c0.BytesReceived())
	}
	// Masks were shipped: the frame-sized hello must have received far
	// more than the bare one.
	if c0.BytesReceived() <= c1.BytesReceived() {
		t.Fatalf("mask payload not visible in counters: %d vs %d",
			c0.BytesReceived(), c1.BytesReceived())
	}
	before := c0.BytesSent()
	var wg sync.WaitGroup
	wg.Add(2)
	var e0, e1 error
	go func() {
		defer wg.Done()
		_, e0 = c0.KeyFrame(0, []TrackReport{{TrackID: 1, Box: [4]float64{1, 2, 3, 4}, Size: 64}}, 5*time.Second)
	}()
	go func() {
		defer wg.Done()
		_, e1 = c1.KeyFrame(0, nil, 5*time.Second)
	}()
	wg.Wait()
	if e0 != nil || e1 != nil {
		t.Fatalf("round: %v / %v", e0, e1)
	}
	if c0.BytesSent() <= before {
		t.Fatal("key-frame upload not counted")
	}
}
