package faults

import (
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// memConn is a loss-free in-memory net.Conn: writes succeed, reads
// return zeroes, Close flips a flag. It isolates injector decisions from
// real sockets.
type memConn struct {
	closed bool
}

func (c *memConn) Read(p []byte) (int, error) {
	if c.closed {
		return 0, io.EOF
	}
	return len(p), nil
}

func (c *memConn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, io.ErrClosedPipe
	}
	return len(p), nil
}

func (c *memConn) Close() error                     { c.closed = true; return nil }
func (c *memConn) LocalAddr() net.Addr              { return nil }
func (c *memConn) RemoteAddr() net.Addr             { return nil }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,drop=0.05,reset=0.02,delay=2ms,jitter=3ms,grace=4,cut=40,max=9,part=5s-8s+20s-22s")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 7, DropRate: 0.05, ResetRate: 0.02,
		Delay: 2 * time.Millisecond, Jitter: 3 * time.Millisecond,
		Grace: 4, WriteCut: 40, MaxFaults: 9,
		Partitions: []Window{{5 * time.Second, 8 * time.Second}, {20 * time.Second, 22 * time.Second}},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("cfg = %+v\nwant %+v", cfg, want)
	}
	if _, err := ParseSpec(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"drop",       // no value
		"drop=2",     // rate out of range
		"drop=-0.1",  // rate out of range
		"bogus=1",    // unknown key
		"delay=fast", // bad duration
		"part=5s",    // not a window
		"part=5s-5s", // empty window
		"seed=x",     // bad int
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

// driveWrites performs n writes on a fresh wrapped conn and returns the
// 1-based index of the first faulted write (0 if none faulted).
func driveWrites(in *Injector, n int) int {
	c := in.Conn(&memConn{})
	for i := 1; i <= n; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			return i
		}
	}
	return 0
}

func TestDeterministicDropSchedule(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.1}
	var first []int
	for run := 0; run < 2; run++ {
		in := New(cfg)
		var faultedAt []int
		for conn := 0; conn < 5; conn++ {
			faultedAt = append(faultedAt, driveWrites(in, 200))
		}
		if run == 0 {
			first = faultedAt
			continue
		}
		if !reflect.DeepEqual(first, faultedAt) {
			t.Fatalf("non-deterministic: run0 %v, run1 %v", first, faultedAt)
		}
	}
	// With drop=0.1 over 200 writes x 5 conns at this seed, at least one
	// connection must die; the test above pins exactly which.
	for _, at := range first {
		if at > 0 {
			return
		}
	}
	t.Fatalf("no faults injected at all: %v", first)
}

func TestWriteCutIsDeterministic(t *testing.T) {
	in := New(Config{Seed: 1, WriteCut: 3})
	if at := driveWrites(in, 10); at != 3 {
		t.Fatalf("first conn cut at write %d, want 3", at)
	}
	if at := driveWrites(in, 10); at != 3 {
		t.Fatalf("second conn cut at write %d, want 3", at)
	}
}

func TestKilledConnStaysDead(t *testing.T) {
	in := New(Config{Seed: 1, WriteCut: 1})
	raw := &memConn{}
	c := in.Conn(raw)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if !raw.closed {
		t.Fatal("underlying conn not closed on kill")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead conn write = %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("dead conn read = %v", err)
	}
}

func TestGraceExemptsEarlyOps(t *testing.T) {
	in := New(Config{Seed: 1, DropRate: 1, ResetRate: 1, Grace: 4})
	c := in.Conn(&memConn{})
	for i := 0; i < 4; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatalf("grace op %d faulted: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-grace op survived: %v", err)
	}
}

func TestResetRateKillsOnRead(t *testing.T) {
	in := New(Config{Seed: 1, ResetRate: 1})
	c := in.Conn(&memConn{})
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read fault = %v", err)
	}
}

func TestMaxFaultsCapsKills(t *testing.T) {
	in := New(Config{Seed: 1, WriteCut: 1, MaxFaults: 2})
	for i := 0; i < 2; i++ {
		if at := driveWrites(in, 5); at != 1 {
			t.Fatalf("conn %d cut at %d, want 1", i, at)
		}
	}
	// Budget exhausted: the third connection survives.
	if at := driveWrites(in, 5); at != 0 {
		t.Fatalf("third conn cut at %d despite max=2", at)
	}
	if in.Faults() != 2 {
		t.Fatalf("faults = %d", in.Faults())
	}
}

func TestPartitionWindow(t *testing.T) {
	in := New(Config{Seed: 1, Partitions: []Window{{100 * time.Millisecond, 200 * time.Millisecond}}})
	now := in.start
	in.now = func() time.Time { return now }

	c := in.Conn(&memConn{})
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("pre-window write: %v", err)
	}
	now = in.start.Add(150 * time.Millisecond)
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("in-window write = %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("in-window read = %v", err)
	}
	// Partitions do not kill the connection: traffic resumes after.
	now = in.start.Add(250 * time.Millisecond)
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("post-window write: %v", err)
	}
}

func TestDelayUsesSleepHook(t *testing.T) {
	in := New(Config{Seed: 1, Delay: 5 * time.Millisecond, Jitter: 5 * time.Millisecond})
	var slept []time.Duration
	in.sleep = func(d time.Duration) { slept = append(slept, d) }
	c := in.Conn(&memConn{})
	for i := 0; i < 3; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 3 {
		t.Fatalf("sleeps = %v", slept)
	}
	for _, d := range slept {
		if d < 5*time.Millisecond || d >= 10*time.Millisecond {
			t.Fatalf("delay %v out of [5ms, 10ms)", d)
		}
	}
}

func TestListenerAndDialerWrap(t *testing.T) {
	in := New(Config{Seed: 1, WriteCut: 2, Grace: 0})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	fln := in.Listener(ln)

	done := make(chan error, 1)
	go func() {
		c, err := fln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 1)
		_, err = c.Read(buf)
		done <- err
	}()

	dial := in.Dialer(nil)
	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("a")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server read: %v", err)
	}
	// Second write on the dialed conn hits the WriteCut.
	if _, err := c.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write = %v", err)
	}
	if in.Conns() != 2 {
		t.Fatalf("wrapped conns = %d, want 2 (dialed + accepted)", in.Conns())
	}
}

func TestDialerPartitioned(t *testing.T) {
	in := New(Config{Seed: 1, Partitions: []Window{{0, time.Hour}}})
	dial := in.Dialer(func(string, time.Duration) (net.Conn, error) {
		t.Fatal("base dialer reached during partition")
		return nil, nil
	})
	if _, err := dial("anywhere:1", time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned dial = %v", err)
	}
}
