// Package faults injects deterministic, seeded connection faults into
// the cluster's TCP layer for chaos testing: wrapped net.Conn values can
// drop (connection killed on write), reset (killed on read), delay
// traffic, or black-hole everything during configured partition windows.
//
// Determinism: every decision is drawn from a per-connection PRNG seeded
// from (Config.Seed, connection index), where connections are numbered
// in the order they are wrapped. For a fixed seed and a fixed sequence
// of operations per connection, the same operations fault on every run —
// which is what lets chaos tests assert exact recovery behaviour instead
// of "usually survives". The deterministic WriteCut schedule goes
// further: it needs no probabilities at all, so a test can guarantee
// that every connection dies, regardless of timing.
//
// The same Injector serves tests (wrap a listener or dialer directly)
// and manual chaos runs (the -faults flag on mvnode and mvscheduler
// parses a Spec). See docs/FAULTS.md.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected fault, so
// callers (and tests) can distinguish chaos from real network errors
// with errors.Is.
var ErrInjected = errors.New("faults: injected fault")

// Window is a half-open time interval [Start, End) relative to the
// injector's creation during which all wrapped traffic fails (a network
// partition).
type Window struct {
	Start, End time.Duration
}

// Config declares a fault schedule. The zero value injects nothing.
type Config struct {
	// Seed drives every probabilistic decision. Connections are numbered
	// in wrap order; connection i draws from a PRNG seeded with
	// (Seed, i), so runs replay given a stable connection order.
	Seed int64
	// DropRate is the per-write probability that the connection is
	// killed (underlying conn closed, write fails).
	DropRate float64
	// ResetRate is the per-read probability that the connection is
	// killed (underlying conn closed, read fails).
	ResetRate float64
	// Delay is added to every write; Jitter adds a uniform [0, Jitter)
	// on top. Sleeps use the injector's sleep hook (real time.Sleep by
	// default).
	Delay  time.Duration
	Jitter time.Duration
	// Grace exempts each connection's first Grace operations (reads +
	// writes) from injection, so handshakes can be allowed to succeed.
	Grace int
	// WriteCut, when positive, deterministically kills each connection
	// on its WriteCut-th write (counted after Grace). Unlike the rates
	// this guarantees the fault fires, which chaos tests rely on.
	WriteCut int
	// MaxFaults caps the total number of injected connection kills
	// across the whole injector (0 = unlimited).
	MaxFaults int
	// Partitions lists windows (relative to injector creation) during
	// which every wrapped read, write, and dial fails without killing
	// connections; traffic resumes when the window closes.
	Partitions []Window
}

// ParseSpec parses the -faults flag syntax: comma-separated key=value
// pairs. Keys: seed, drop, reset, delay, jitter, grace, cut, max, part.
// Durations use Go syntax; partitions are start-end pairs joined by '+':
//
//	seed=7,drop=0.05,reset=0.02,delay=2ms,jitter=3ms,grace=4,cut=40,part=5s-8s+20s-22s
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return cfg, fmt.Errorf("faults: bad field %q (want key=value)", field)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			cfg.DropRate, err = parseRate(val)
		case "reset":
			cfg.ResetRate, err = parseRate(val)
		case "delay":
			cfg.Delay, err = time.ParseDuration(val)
		case "jitter":
			cfg.Jitter, err = time.ParseDuration(val)
		case "grace":
			cfg.Grace, err = strconv.Atoi(val)
		case "cut":
			cfg.WriteCut, err = strconv.Atoi(val)
		case "max":
			cfg.MaxFaults, err = strconv.Atoi(val)
		case "part":
			cfg.Partitions, err = parseWindows(val)
		default:
			return cfg, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faults: field %q: %w", field, err)
		}
	}
	return cfg, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v out of [0,1]", r)
	}
	return r, nil
}

func parseWindows(val string) ([]Window, error) {
	var out []Window
	for _, w := range strings.Split(val, "+") {
		lo, hi, ok := strings.Cut(w, "-")
		if !ok {
			return nil, fmt.Errorf("window %q (want start-end)", w)
		}
		start, err := time.ParseDuration(lo)
		if err != nil {
			return nil, err
		}
		end, err := time.ParseDuration(hi)
		if err != nil {
			return nil, err
		}
		if end <= start {
			return nil, fmt.Errorf("window %q is empty", w)
		}
		out = append(out, Window{Start: start, End: end})
	}
	return out, nil
}

// DialFunc matches the cluster layer's injectable dialer shape.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// Injector hands out fault-wrapped connections under one shared
// schedule. Safe for concurrent use.
type Injector struct {
	cfg   Config
	start time.Time

	// Hooks, overridable in tests before any connection is wrapped.
	now   func() time.Time
	sleep func(time.Duration)

	mu     sync.Mutex
	conns  int
	faults int
}

// New builds an injector for the given schedule. The partition timeline
// starts now.
func New(cfg Config) *Injector {
	return &Injector{
		cfg:   cfg,
		start: time.Now(),
		now:   time.Now,
		sleep: time.Sleep,
	}
}

// Conn wraps a connection under the injector's schedule.
func (in *Injector) Conn(c net.Conn) net.Conn {
	in.mu.Lock()
	id := in.conns
	in.conns++
	in.mu.Unlock()
	// Per-connection PRNG: decisions on one connection are independent
	// of traffic on the others, so per-connection replay only needs the
	// wrap order to be stable.
	return &conn{
		Conn: c,
		in:   in,
		rng:  rand.New(rand.NewSource(in.cfg.Seed<<16 + int64(id))),
	}
}

// Listener wraps a listener so every accepted connection is wrapped.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// Dialer wraps a dial function so every dialed connection is wrapped
// and dials fail during partition windows. A nil base uses
// net.DialTimeout over TCP.
func (in *Injector) Dialer(base DialFunc) DialFunc {
	if base == nil {
		base = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if in.partitioned() {
			return nil, fmt.Errorf("faults: dial %s: partitioned: %w", addr, ErrInjected)
		}
		c, err := base(addr, timeout)
		if err != nil {
			return nil, err
		}
		return in.Conn(c), nil
	}
}

// Faults returns how many connection kills have been injected so far.
func (in *Injector) Faults() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.faults
}

// Conns returns how many connections have been wrapped so far.
func (in *Injector) Conns() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.conns
}

// partitioned reports whether the current moment falls inside a
// configured partition window.
func (in *Injector) partitioned() bool {
	if len(in.cfg.Partitions) == 0 {
		return false
	}
	elapsed := in.now().Sub(in.start)
	for _, w := range in.cfg.Partitions {
		if elapsed >= w.Start && elapsed < w.End {
			return true
		}
	}
	return false
}

// allowFault consumes one slot of the global fault budget.
func (in *Injector) allowFault() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.MaxFaults > 0 && in.faults >= in.cfg.MaxFaults {
		return false
	}
	in.faults++
	return true
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.Conn(c), nil
}

// conn injects faults around an underlying connection. A killed conn
// closes the underlying transport, so both ends observe the failure —
// like a RST, not a silent drop.
type conn struct {
	net.Conn
	in  *Injector
	rng *rand.Rand

	mu     sync.Mutex
	ops    int // reads + writes, for Grace
	writes int // post-grace writes, for WriteCut
	dead   bool
}

func (c *conn) Write(p []byte) (int, error) {
	if err := c.inject(true); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}

func (c *conn) Read(p []byte) (int, error) {
	if err := c.inject(false); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

// inject applies the schedule to one operation: partition check, grace
// accounting, write delay, then the kill decision (deterministic
// WriteCut first, probabilistic rates second).
func (c *conn) inject(write bool) error {
	if c.in.partitioned() {
		return fmt.Errorf("faults: partitioned: %w", ErrInjected)
	}
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return fmt.Errorf("faults: connection killed: %w", ErrInjected)
	}
	c.ops++
	inGrace := c.ops <= c.in.cfg.Grace
	var delay time.Duration
	kill := false
	if !inGrace {
		if write && c.in.cfg.Delay+c.in.cfg.Jitter > 0 {
			delay = c.in.cfg.Delay
			if c.in.cfg.Jitter > 0 {
				delay += time.Duration(c.rng.Int63n(int64(c.in.cfg.Jitter)))
			}
		}
		if write {
			c.writes++
			if c.in.cfg.WriteCut > 0 && c.writes%c.in.cfg.WriteCut == 0 {
				kill = true
			}
		}
		if !kill {
			rate := c.in.cfg.ResetRate
			if write {
				rate = c.in.cfg.DropRate
			}
			if rate > 0 && c.rng.Float64() < rate {
				kill = true
			}
		}
		if kill && !c.in.allowFault() {
			kill = false
		}
		if kill {
			c.dead = true
		}
	}
	c.mu.Unlock()

	if delay > 0 {
		c.in.sleep(delay)
	}
	if kill {
		c.Conn.Close()
		op := "read"
		if write {
			op = "write"
		}
		return fmt.Errorf("faults: connection killed on %s: %w", op, ErrInjected)
	}
	return nil
}
