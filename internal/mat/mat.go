// Package mat implements the small amount of dense linear algebra the
// framework needs: Gaussian elimination with partial pivoting, linear
// least squares via normal equations with ridge damping, and 3x3
// homography estimation by the direct linear transform (DLT). It is not a
// general-purpose matrix library; dimensions are small (tens of rows) and
// clarity is preferred over blocking or vectorization tricks.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mat: singular matrix")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows x cols zero matrix. It panics on non-positive
// dimensions.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: NewDense(%d, %d) with non-positive dims", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal,
// positive length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("mat: FromRows with empty input")
	}
	m := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("mat: FromRows ragged row %d: %d vs %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m * b as a new matrix. It panics on dimension mismatch.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += a * b.data[k*b.cols+j]
			}
		}
	}
	return out
}

// MulVec returns m * v as a new vector. It panics on dimension mismatch.
func (m *Dense) MulVec(v []float64) []float64 {
	if m.cols != len(v) {
		panic(fmt.Sprintf("mat: MulVec %dx%d by %d", m.rows, m.cols, len(v)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var sum float64
		for j := 0; j < m.cols; j++ {
			sum += m.data[i*m.cols+j] * v[j]
		}
		out[i] = sum
	}
	return out
}

// Solve solves the square linear system a*x = b by Gaussian elimination
// with partial pivoting. a and b are not modified. It returns ErrSingular
// when a has no (numerically) unique solution.
func Solve(a *Dense, b []float64) ([]float64, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("mat: Solve on non-square %dx%d matrix", a.rows, a.cols)
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: Solve rhs length %d != %d", len(b), n)
	}
	// Augmented working copy.
	w := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in this column at or below the
		// diagonal.
		pivot := col
		best := math.Abs(w.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(w.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				w.data[col*n+j], w.data[pivot*n+j] = w.data[pivot*n+j], w.data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		// Eliminate below.
		inv := 1 / w.At(col, col)
		for r := col + 1; r < n; r++ {
			f := w.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				w.data[r*n+j] -= f * w.data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= w.At(i, j) * x[j]
		}
		x[i] = sum / w.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min ||A*x - b||^2 via the normal equations
// (A'A + ridge*I) x = A'b. A small positive ridge keeps the system
// well-conditioned when A is rank-deficient; pass 0 for plain OLS.
func LeastSquares(a *Dense, b []float64, ridge float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("mat: LeastSquares %d rows vs %d rhs", a.rows, len(b))
	}
	if ridge < 0 {
		return nil, fmt.Errorf("mat: negative ridge %v", ridge)
	}
	at := a.T()
	ata := at.Mul(a)
	for i := 0; i < ata.rows; i++ {
		ata.Set(i, i, ata.At(i, i)+ridge)
	}
	atb := at.MulVec(b)
	x, err := Solve(ata, atb)
	if err != nil {
		return nil, fmt.Errorf("mat: normal equations: %w", err)
	}
	return x, nil
}

// Homography is a 3x3 projective transform of the plane, stored row-major
// with H[8] normalized to 1 where possible.
type Homography [9]float64

// Apply maps the point (x, y) through the homography and returns the
// dehomogenized image. Points near the line at infinity map to large but
// finite coordinates (the denominator is clamped away from zero).
func (h Homography) Apply(x, y float64) (float64, float64) {
	w := h[6]*x + h[7]*y + h[8]
	if math.Abs(w) < 1e-12 {
		w = math.Copysign(1e-12, w)
		if w == 0 {
			w = 1e-12
		}
	}
	return (h[0]*x + h[1]*y + h[2]) / w, (h[3]*x + h[4]*y + h[5]) / w
}

// EstimateHomography fits a homography mapping src[i] -> dst[i] using the
// direct linear transform with h22 fixed to 1 (a valid normalization for
// the camera geometries in this system, where the plane at infinity does
// not pass through the image origin). At least four point pairs are
// required.
func EstimateHomography(src, dst [][2]float64) (Homography, error) {
	var h Homography
	if len(src) != len(dst) {
		return h, fmt.Errorf("mat: homography %d src vs %d dst points", len(src), len(dst))
	}
	if len(src) < 4 {
		return h, fmt.Errorf("mat: homography needs >= 4 point pairs, got %d", len(src))
	}
	// Each correspondence yields two rows in A x = b with
	// x = [h00 h01 h02 h10 h11 h12 h20 h21] and h22 = 1:
	//   u = (h00 x + h01 y + h02) / (h20 x + h21 y + 1)
	//   v = (h10 x + h11 y + h12) / (h20 x + h21 y + 1)
	n := len(src)
	a := NewDense(2*n, 8)
	b := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		x, y := src[i][0], src[i][1]
		u, v := dst[i][0], dst[i][1]
		r := 2 * i
		a.Set(r, 0, x)
		a.Set(r, 1, y)
		a.Set(r, 2, 1)
		a.Set(r, 6, -u*x)
		a.Set(r, 7, -u*y)
		b[r] = u
		a.Set(r+1, 3, x)
		a.Set(r+1, 4, y)
		a.Set(r+1, 5, 1)
		a.Set(r+1, 6, -v*x)
		a.Set(r+1, 7, -v*y)
		b[r+1] = v
	}
	sol, err := LeastSquares(a, b, 0)
	if err != nil {
		return h, fmt.Errorf("mat: homography fit: %w", err)
	}
	copy(h[:8], sol)
	h[8] = 1
	return h, nil
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs, or 0 when xs
// has fewer than two elements.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - mu
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}
