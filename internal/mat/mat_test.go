package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatalf("At = %v", m.At(1, 2))
	}
	c := m.Clone()
	c.Set(1, 2, 7)
	if m.At(1, 2) != 5 {
		t.Fatal("Clone not deep")
	}
}

func TestDensePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero dims", func() { NewDense(0, 3) })
	mustPanic("bad index", func() { NewDense(2, 2).At(2, 0) })
	mustPanic("ragged", func() { FromRows([][]float64{{1, 2}, {3}}) })
	mustPanic("empty rows", func() { FromRows(nil) })
	mustPanic("mul mismatch", func() { NewDense(2, 3).Mul(NewDense(2, 3)) })
	mustPanic("mulvec mismatch", func() { NewDense(2, 3).MulVec([]float64{1}) })
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	mt := m.T()
	if mt.Rows() != 3 || mt.Cols() != 2 {
		t.Fatalf("T dims = %dx%d", mt.Rows(), mt.Cols())
	}
	if mt.At(2, 1) != 6 || mt.At(0, 0) != 1 {
		t.Fatal("T values wrong")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul[%d][%d] = %v want %v", i, j, c.At(i, j), want.At(i, j))
			}
		}
	}
	if got := Identity(2).Mul(b); got.At(0, 0) != 5 || got.At(1, 1) != 8 {
		t.Fatal("identity mul wrong")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	v := a.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v", v)
	}
}

func TestSolveExact(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	// x = [1, 2] -> b = [4, 7]
	x, err := Solve(a, []float64{4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveNeedsPivot(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-5) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(NewDense(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := Solve(NewDense(2, 2), []float64{1}); err == nil {
		t.Fatal("bad rhs accepted")
	}
}

func TestSolveRandomProperty(t *testing.T) {
	// For diagonally dominant random systems, Solve recovers the planted
	// solution.
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		n := 2 + int(math.Abs(float64(seed)))%6
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)*3) // dominance => nonsingular
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// Overdetermined but consistent: y = 2x + 1.
	a := FromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-8 || math.Abs(x[1]-1) > 1e-8 {
		t.Fatalf("fit = %v", x)
	}
}

func TestLeastSquaresRidge(t *testing.T) {
	// Rank-deficient design: duplicate column. Plain OLS is singular,
	// ridge succeeds.
	a := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	b := []float64{2, 4, 6}
	if _, err := LeastSquares(a, b, 0); err == nil {
		t.Fatal("rank-deficient OLS should fail")
	}
	x, err := LeastSquares(a, b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Minimum-norm-ish solution splits the weight across the two columns.
	if math.Abs(x[0]+x[1]-2) > 1e-3 {
		t.Fatalf("ridge fit = %v", x)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	a := NewDense(2, 2)
	if _, err := LeastSquares(a, []float64{1}, 0); err == nil {
		t.Fatal("shape mismatch accepted")
	}
	if _, err := LeastSquares(a, []float64{1, 2}, -1); err == nil {
		t.Fatal("negative ridge accepted")
	}
}

func TestHomographyIdentity(t *testing.T) {
	src := [][2]float64{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}}
	h, err := EstimateHomography(src, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range src {
		u, v := h.Apply(p[0], p[1])
		if math.Abs(u-p[0]) > 1e-6 || math.Abs(v-p[1]) > 1e-6 {
			t.Fatalf("identity maps %v to (%v,%v)", p, u, v)
		}
	}
}

func TestHomographyAffine(t *testing.T) {
	// Known affine map: (x, y) -> (2x + 3, -y + 1).
	src := [][2]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}, {2, 3}, {5, 4}}
	dst := make([][2]float64, len(src))
	for i, p := range src {
		dst[i] = [2]float64{2*p[0] + 3, -p[1] + 1}
	}
	h, err := EstimateHomography(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	u, v := h.Apply(10, -2)
	if math.Abs(u-23) > 1e-5 || math.Abs(v-3) > 1e-5 {
		t.Fatalf("affine maps (10,-2) to (%v,%v)", u, v)
	}
}

func TestHomographyProjective(t *testing.T) {
	// A genuinely projective map with nonzero h20/h21.
	truth := Homography{1, 0.2, 3, 0.1, 1.5, -2, 0.001, 0.002, 1}
	rng := rand.New(rand.NewSource(11))
	var src, dst [][2]float64
	for i := 0; i < 20; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		u, v := truth.Apply(x, y)
		src = append(src, [2]float64{x, y})
		dst = append(dst, [2]float64{u, v})
	}
	h, err := EstimateHomography(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		wu, wv := truth.Apply(x, y)
		gu, gv := h.Apply(x, y)
		if math.Abs(gu-wu) > 1e-4 || math.Abs(gv-wv) > 1e-4 {
			t.Fatalf("projective mismatch at (%v,%v): got (%v,%v) want (%v,%v)", x, y, gu, gv, wu, wv)
		}
	}
}

func TestHomographyErrors(t *testing.T) {
	if _, err := EstimateHomography([][2]float64{{0, 0}}, [][2]float64{{0, 0}}); err == nil {
		t.Fatal("too few points accepted")
	}
	if _, err := EstimateHomography([][2]float64{{0, 0}, {1, 1}}, [][2]float64{{0, 0}}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	// Degenerate: all points identical.
	same := [][2]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	if _, err := EstimateHomography(same, same); err == nil {
		t.Fatal("degenerate configuration accepted")
	}
}

func TestHomographyApplyNearInfinity(t *testing.T) {
	h := Homography{1, 0, 0, 0, 1, 0, 1, 0, 0} // w = x
	u, v := h.Apply(0, 5)                      // w == 0 exactly
	if math.IsNaN(u) || math.IsNaN(v) || math.IsInf(u, 0) {
		t.Fatalf("Apply at infinity = (%v,%v)", u, v)
	}
}

func TestMeanStddev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if Stddev([]float64{5}) != 0 {
		t.Fatal("Stddev single != 0")
	}
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Stddev = %v", got)
	}
}
