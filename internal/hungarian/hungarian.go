// Package hungarian implements the Kuhn–Munkres assignment algorithm in
// O(n^3). The framework uses it in two places the paper calls out
// explicitly: associating detections with predicted track locations inside
// each camera (tracking-by-detection), and matching projected bounding
// boxes to detections during cross-camera object association.
//
// The solver minimizes total cost over a rectangular cost matrix; use
// MaximizeProfit for the IoU-matching (max-profit) form. Costs of
// +Inf mark forbidden pairings.
package hungarian

import (
	"fmt"
	"math"
)

// Forbidden marks a pairing that must never be selected.
const Forbidden = math.MaxFloat64

// Solve returns, for each row of the cost matrix, the column assigned to
// it (or -1 when rows > cols and the row is unmatched), along with the
// total cost of the assignment. The matrix may be rectangular; it is
// padded internally to a square with zero-cost dummy entries. Solve
// returns an error when cost is empty or ragged, or when no feasible
// assignment exists (every complete matching uses a Forbidden pair).
func Solve(cost [][]float64) ([]int, float64, error) {
	nRows := len(cost)
	if nRows == 0 {
		return nil, 0, fmt.Errorf("hungarian: empty cost matrix")
	}
	nCols := len(cost[0])
	if nCols == 0 {
		return nil, 0, fmt.Errorf("hungarian: zero-width cost matrix")
	}
	for i, row := range cost {
		if len(row) != nCols {
			return nil, 0, fmt.Errorf("hungarian: ragged row %d: %d vs %d", i, len(row), nCols)
		}
	}
	n := nRows
	if nCols > n {
		n = nCols
	}

	// Scale Forbidden down to a large-but-safe sentinel so potentials
	// can't overflow; remember real forbidden pairs to validate at the
	// end.
	big := forbiddenCeiling(cost, n)
	// Square padded matrix, 1-indexed for the classical potential-based
	// implementation.
	a := make([][]float64, n+1)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			switch {
			case i >= nRows || j >= nCols:
				a[i+1][j+1] = 0 // dummy row/col
			case cost[i][j] == Forbidden:
				a[i+1][j+1] = big
			default:
				a[i+1][j+1] = cost[i][j]
			}
		}
	}

	// Potentials-based Hungarian algorithm (Jonker-style shortest
	// augmenting paths). u/v are row/col potentials; p[j] is the row
	// matched to column j.
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	assign := make([]int, nRows)
	for i := range assign {
		assign[i] = -1
	}
	var total float64
	for j := 1; j <= n; j++ {
		i := p[j] - 1
		if i < 0 || i >= nRows {
			continue // dummy row
		}
		if j-1 >= nCols {
			continue // dummy column: row stays unmatched
		}
		if cost[i][j-1] == Forbidden {
			// The only complete matchings route through a forbidden pair.
			// When the matrix is square this means infeasible; when
			// rectangular, treat the row as unmatched.
			if nRows == nCols {
				return nil, 0, fmt.Errorf("hungarian: no feasible assignment")
			}
			continue
		}
		assign[i] = j - 1
		total += cost[i][j-1]
	}
	// Square infeasibility check (rectangular matrices legitimately leave
	// rows unmatched through dummy columns).
	if nRows == nCols {
		for i, j := range assign {
			if j == -1 {
				return nil, 0, fmt.Errorf("hungarian: row %d has no feasible column", i)
			}
		}
	}
	return assign, total, nil
}

// forbiddenCeiling picks a sentinel larger than any feasible assignment
// cost so forbidden pairs are only chosen when unavoidable.
func forbiddenCeiling(cost [][]float64, n int) float64 {
	var maxAbs float64 = 1
	for _, row := range cost {
		for _, c := range row {
			if c == Forbidden {
				continue
			}
			if v := math.Abs(c); v > maxAbs {
				maxAbs = v
			}
		}
	}
	return maxAbs * float64(n+1) * 16
}

// MaximizeProfit solves the maximum-total-profit assignment over a profit
// matrix (e.g. IoU scores). Pairs with profit <= minProfit are treated as
// forbidden and left unmatched. The returned slice maps each row to its
// matched column or -1.
func MaximizeProfit(profit [][]float64, minProfit float64) ([]int, float64, error) {
	if len(profit) == 0 {
		return nil, 0, fmt.Errorf("hungarian: empty profit matrix")
	}
	var maxP float64
	for _, row := range profit {
		for _, p := range row {
			if p > maxP {
				maxP = p
			}
		}
	}
	// Augment with one "stay unmatched" dummy column per row, priced just
	// above the worst feasible match so real pairings are always
	// preferred. This lets any subset of rows opt out, which is exactly
	// the semantics of thresholded IoU matching.
	nRows := len(profit)
	nCols := len(profit[0])
	cost := make([][]float64, nRows)
	for i, row := range profit {
		if len(row) != nCols {
			return nil, 0, fmt.Errorf("hungarian: ragged profit row %d", i)
		}
		cost[i] = make([]float64, nCols+nRows)
		for j, p := range row {
			if p <= minProfit {
				cost[i][j] = Forbidden
			} else {
				cost[i][j] = maxP - p
			}
		}
		for k := 0; k < nRows; k++ {
			cost[i][nCols+k] = maxP + 1
		}
	}
	assign, _, err := Solve(cost)
	if err != nil {
		return nil, 0, err
	}
	var total float64
	for i, j := range assign {
		if j < 0 || j >= nCols || profit[i][j] <= minProfit {
			assign[i] = -1
			continue
		}
		total += profit[i][j]
	}
	return assign, total, nil
}
