package hungarian

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveTrivial(t *testing.T) {
	assign, total, err := Solve([][]float64{{3}})
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 0 || total != 3 {
		t.Fatalf("assign=%v total=%v", assign, total)
	}
}

func TestSolveClassic(t *testing.T) {
	// Classic 3x3 example: optimal is 1+2+1 = 4 on the anti-diagonal-ish.
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %v assign = %v", total, assign)
	}
	wantRow := []int{1, 0, 2}
	for i, j := range assign {
		if j != wantRow[i] {
			t.Fatalf("assign = %v", assign)
		}
	}
}

func TestSolveRectangularWide(t *testing.T) {
	// 2 rows, 3 cols: every row matched, best columns chosen.
	cost := [][]float64{
		{10, 2, 8},
		{7, 3, 1},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || assign[0] != 1 || assign[1] != 2 {
		t.Fatalf("assign=%v total=%v", assign, total)
	}
}

func TestSolveRectangularTall(t *testing.T) {
	// 3 rows, 2 cols: one row must stay unmatched.
	cost := [][]float64{
		{1, 9},
		{9, 1},
		{5, 5},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for _, j := range assign {
		if j >= 0 {
			matched++
		}
	}
	if matched != 2 || total != 2 {
		t.Fatalf("assign=%v total=%v", assign, total)
	}
	if assign[2] != -1 {
		t.Fatalf("expensive row should be unmatched: %v", assign)
	}
}

func TestSolveErrors(t *testing.T) {
	if _, _, err := Solve(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := Solve([][]float64{{}}); err == nil {
		t.Fatal("zero-width accepted")
	}
	if _, _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged accepted")
	}
}

func TestSolveForbidden(t *testing.T) {
	// Forbidden diagonal forces the swap.
	cost := [][]float64{
		{Forbidden, 2},
		{3, Forbidden},
	}
	assign, total, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 || assign[1] != 0 || total != 5 {
		t.Fatalf("assign=%v total=%v", assign, total)
	}
}

func TestSolveInfeasible(t *testing.T) {
	cost := [][]float64{
		{Forbidden, Forbidden},
		{3, Forbidden},
	}
	if _, _, err := Solve(cost); err == nil {
		t.Fatal("infeasible square matrix accepted")
	}
}

func bruteForceMin(cost [][]float64) float64 {
	n := len(cost)
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	best := math.Inf(1)
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			var sum float64
			feasible := true
			for i, j := range cols {
				if cost[i][j] == Forbidden {
					feasible = false
					break
				}
				sum += cost[i][j]
			}
			if feasible && sum < best {
				best = sum
			}
			return
		}
		for i := k; i < n; i++ {
			cols[k], cols[i] = cols[i], cols[k]
			permute(k + 1)
			cols[k], cols[i] = cols[i], cols[k]
		}
	}
	permute(0)
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50))
			}
		}
		want := bruteForceMin(cost)
		_, got, err := Solve(cost)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: Solve=%v brute=%v cost=%v", trial, got, want, cost)
		}
	}
}

func TestSolveAssignmentIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 100
			}
		}
		assign, _, err := Solve(cost)
		if err != nil {
			return false
		}
		seen := make(map[int]bool)
		for _, j := range assign {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaximizeProfitIoUStyle(t *testing.T) {
	// Typical IoU matrix: rows = predictions, cols = detections.
	profit := [][]float64{
		{0.9, 0.1, 0.0},
		{0.2, 0.8, 0.0},
		{0.0, 0.0, 0.05}, // below threshold
	}
	assign, total, err := MaximizeProfit(profit, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 0 || assign[1] != 1 || assign[2] != -1 {
		t.Fatalf("assign = %v", assign)
	}
	if math.Abs(total-1.7) > 1e-9 {
		t.Fatalf("total = %v", total)
	}
}

func TestMaximizeProfitPrefersGlobalOptimum(t *testing.T) {
	// Greedy would take (0,0)=0.6 then leave row 1 with 0.0; Hungarian
	// should take (0,1)=0.5 and (1,0)=0.55 for 1.05 total.
	profit := [][]float64{
		{0.6, 0.5},
		{0.55, 0.0},
	}
	assign, total, err := MaximizeProfit(profit, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign = %v", assign)
	}
	if math.Abs(total-1.05) > 1e-9 {
		t.Fatalf("total = %v", total)
	}
}

func TestMaximizeProfitAllBelowThreshold(t *testing.T) {
	profit := [][]float64{{0.01, 0.02}, {0.0, 0.01}}
	assign, total, err := MaximizeProfit(profit, 0.3)
	if err != nil {
		// Acceptable: a fully-forbidden square matrix may be reported
		// infeasible. But if it succeeds, nothing may be matched.
		return
	}
	for _, j := range assign {
		if j != -1 {
			t.Fatalf("assign = %v total = %v", assign, total)
		}
	}
}

func TestMaximizeProfitEmpty(t *testing.T) {
	if _, _, err := MaximizeProfit(nil, 0); err == nil {
		t.Fatal("nil accepted")
	}
}

func BenchmarkSolve20x20(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}
