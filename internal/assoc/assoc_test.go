package assoc

import (
	"math"
	"testing"

	"mvs/internal/geom"
	"mvs/internal/ml"
	"mvs/internal/scene"
)

// twoCamWorld builds a road observed by two cameras from opposite ends,
// giving a large co-visible stretch in the middle.
func twoCamWorld(seed int64) *scene.World {
	road := scene.MustPath(geom.Point{X: 5, Y: -40}, geom.Point{X: 5, Y: 40})
	camA := &scene.Camera{
		Name: "a", Pos: geom.Point{X: 0, Y: -50}, Height: 8, Yaw: math.Pi / 2,
		Pitch: 0.4, Focal: 1000, ImageW: 1280, ImageH: 704, MaxRange: 62,
	}
	camB := &scene.Camera{
		Name: "b", Pos: geom.Point{X: 0, Y: 50}, Height: 8, Yaw: -math.Pi / 2,
		Pitch: 0.4, Focal: 1000, ImageW: 1280, ImageH: 704, MaxRange: 62,
	}
	return &scene.World{
		Routes: []scene.Route{{
			Path: road, Speed: 8, Arrivals: scene.Poisson{RatePerSec: 0.6},
		}},
		Cameras: []*scene.Camera{camA, camB},
		FPS:     10,
		Seed:    seed,
	}
}

func runTrace(t *testing.T, seed int64, frames int) *scene.Trace {
	t.Helper()
	trace, err := twoCamWorld(seed).Run(frames)
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestBuildPairSamples(t *testing.T) {
	trace := runTrace(t, 1, 400)
	samples, err := BuildPairSamples(trace, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	pos, neg := 0, 0
	for _, s := range samples {
		if s.Visible {
			pos++
			if s.DstBox.Empty() {
				t.Fatal("visible sample with empty dst box")
			}
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate labels: pos=%d neg=%d", pos, neg)
	}
}

func TestBuildPairSamplesErrors(t *testing.T) {
	trace := runTrace(t, 1, 10)
	if _, err := BuildPairSamples(trace, 0, 0); err == nil {
		t.Fatal("same camera accepted")
	}
	if _, err := BuildPairSamples(trace, 0, 5); err == nil {
		t.Fatal("out-of-range camera accepted")
	}
}

func TestDataConversions(t *testing.T) {
	samples := []Sample{
		{SrcBox: geom.Rect{MinX: 1, MinY: 2, MaxX: 3, MaxY: 4}, Visible: true, DstBox: geom.Rect{MinX: 5, MinY: 6, MaxX: 7, MaxY: 8}},
		{SrcBox: geom.Rect{MinX: 9, MinY: 9, MaxX: 11, MaxY: 11}},
	}
	x, y := ClassificationData(samples)
	if len(x) != 2 || !y[0] || y[1] {
		t.Fatalf("classification data: %v %v", x, y)
	}
	rx, ry := RegressionData(samples)
	if len(rx) != 1 || ry[0][0] != 5 {
		t.Fatalf("regression data: %v %v", rx, ry)
	}
}

func TestTrainAndMapBox(t *testing.T) {
	trace := runTrace(t, 2, 600)
	train, test := trace.SplitTrain()
	m, err := Train(train, Factories{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCameras() != 2 {
		t.Fatalf("cams = %d", m.NumCameras())
	}

	// On held-out co-visible objects, the mapped box should be near the
	// true box most of the time.
	samples, err := BuildPairSamples(test, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	correctVis, totalVis, closeEnough := 0, 0, 0
	for _, s := range samples {
		pred, visible, err := m.MapBox(0, 1, s.SrcBox)
		if err != nil {
			t.Fatal(err)
		}
		if s.Visible {
			totalVis++
			if visible {
				correctVis++
				if pred.MAE(s.DstBox) < 120 {
					closeEnough++
				}
			}
		}
	}
	if totalVis == 0 {
		t.Fatal("no co-visible test samples")
	}
	if float64(correctVis)/float64(totalVis) < 0.7 {
		t.Fatalf("visibility recall %d/%d too low", correctVis, totalVis)
	}
	if float64(closeEnough)/float64(totalVis) < 0.5 {
		t.Fatalf("regression close only %d/%d", closeEnough, totalVis)
	}
}

func TestMapBoxSelfIsIdentity(t *testing.T) {
	trace := runTrace(t, 3, 200)
	m, err := Train(trace, Factories{})
	if err != nil {
		t.Fatal(err)
	}
	box := geom.Rect{MinX: 10, MinY: 10, MaxX: 50, MaxY: 50}
	pred, visible, err := m.MapBox(1, 1, box)
	if err != nil || !visible || pred != box {
		t.Fatalf("self map = %v %v %v", pred, visible, err)
	}
}

func TestTrainNeedsTwoCameras(t *testing.T) {
	trace := runTrace(t, 1, 10)
	solo := &scene.Trace{FPS: trace.FPS, Cameras: trace.Cameras[:1], Frames: trace.Frames}
	if _, err := Train(solo, Factories{}); err == nil {
		t.Fatal("single camera accepted")
	}
}

func TestTrainPairNoSamples(t *testing.T) {
	if _, err := TrainPair(nil, func() ml.Classifier { return &ml.KNNClassifier{} }, func() ml.Regressor { return &ml.KNNRegressor{} }); err == nil {
		t.Fatal("empty samples accepted")
	}
}

func TestTrainPairClassifierOnly(t *testing.T) {
	// All negative samples: pair trains a classifier but no regressor and
	// always answers "not visible".
	samples := make([]Sample, 20)
	for i := range samples {
		samples[i] = Sample{SrcBox: geom.Rect{MinX: float64(i), MinY: 0, MaxX: float64(i) + 10, MaxY: 10}}
	}
	pm, err := TrainPair(samples,
		func() ml.Classifier { return &ml.KNNClassifier{K: 3} },
		func() ml.Regressor { return &ml.KNNRegressor{} })
	if err != nil {
		t.Fatal(err)
	}
	_, visible, err := pm.Map(samples[0].SrcBox)
	if err != nil || visible {
		t.Fatalf("Map = %v %v", visible, err)
	}
}

func TestAssociateGroupsSharedObjects(t *testing.T) {
	trace := runTrace(t, 4, 800)
	train, test := trace.SplitTrain()
	m, err := Train(train, Factories{})
	if err != nil {
		t.Fatal(err)
	}

	// Evaluate association accuracy over the test half using ground
	// truth IDs.
	framesChecked, correctMerges, totalShared := 0, 0, 0
	for fi := range test.Frames {
		f := &test.Frames[fi]
		if len(f.PerCamera[0]) == 0 || len(f.PerCamera[1]) == 0 {
			continue
		}
		framesChecked++
		boxes := make([][]geom.Rect, 2)
		ids := make([][]int, 2)
		for c := 0; c < 2; c++ {
			for _, o := range f.PerCamera[c] {
				boxes[c] = append(boxes[c], o.Box)
				ids[c] = append(ids[c], o.ObjectID)
			}
		}
		shared := make(map[int]bool)
		for _, i0 := range ids[0] {
			for _, i1 := range ids[1] {
				if i0 == i1 {
					shared[i0] = true
				}
			}
		}
		totalShared += len(shared)

		groups, err := m.Associate(boxes, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Every box must appear in exactly one group.
		seen := make(map[Ref]bool)
		for _, g := range groups {
			for _, r := range g.Members {
				if seen[r] {
					t.Fatalf("frame %d: ref %v in two groups", f.Index, r)
				}
				seen[r] = true
			}
		}
		if len(seen) != len(boxes[0])+len(boxes[1]) {
			t.Fatalf("frame %d: %d refs grouped, want %d", f.Index, len(seen), len(boxes[0])+len(boxes[1]))
		}
		for _, g := range groups {
			if len(g.Members) < 2 {
				continue
			}
			var id0 = -1
			consistent := true
			for _, r := range g.Members {
				id := ids[r.Cam][r.Index]
				if id0 == -1 {
					id0 = id
				} else if id != id0 {
					consistent = false
				}
			}
			if consistent && shared[id0] {
				correctMerges++
			}
		}
	}
	if framesChecked == 0 || totalShared == 0 {
		t.Skip("trace produced no co-visible frames")
	}
	if float64(correctMerges)/float64(totalShared) < 0.5 {
		t.Fatalf("correct merges %d / shared %d too low", correctMerges, totalShared)
	}
}

func TestAssociateShapeErrors(t *testing.T) {
	trace := runTrace(t, 5, 200)
	m, err := Train(trace, Factories{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Associate([][]geom.Rect{{}}, 0); err == nil {
		t.Fatal("wrong camera count accepted")
	}
	// Empty inputs yield no groups.
	groups, err := m.Associate([][]geom.Rect{{}, {}}, 0)
	if err != nil || len(groups) != 0 {
		t.Fatalf("empty associate = %v %v", groups, err)
	}
}

func TestCellCoverage(t *testing.T) {
	trace := runTrace(t, 6, 600)
	train, _ := trace.SplitTrain()
	m, err := Train(train, Factories{})
	if err != nil {
		t.Fatal(err)
	}
	grid := geom.NewGrid(trace.Cameras[0].Frame(), 8, 6)
	cover, err := m.CellCoverage(0, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(cover) != grid.NumCells() {
		t.Fatalf("cells = %d", len(cover))
	}
	sharedCells := 0
	for c, set := range cover {
		if len(set) == 0 || set[0] != 0 {
			t.Fatalf("cell %d coverage %v must start with src", c, set)
		}
		if len(set) > 1 {
			sharedCells++
		}
	}
	// The two cameras face each other over the road: some cells must be
	// predicted co-visible.
	if sharedCells == 0 {
		t.Fatal("no cell predicted co-visible")
	}
	if sharedCells == grid.NumCells() {
		t.Fatal("every cell co-visible — classifier degenerate")
	}
}

func TestNominalBoxFallback(t *testing.T) {
	m := &Model{numCams: 2, pairs: map[[2]int]*PairModel{}}
	box := m.NominalBox(0, geom.Point{X: 100, Y: 100})
	if box.Empty() || box.Center() != (geom.Point{X: 100, Y: 100}) {
		t.Fatalf("fallback box = %v", box)
	}
}

func TestDSU(t *testing.T) {
	d := newDSU(5)
	d.union(0, 1)
	d.union(3, 4)
	if d.find(0) != d.find(1) || d.find(3) != d.find(4) {
		t.Fatal("union failed")
	}
	if d.find(0) == d.find(3) {
		t.Fatal("separate sets merged")
	}
	d.union(1, 3)
	if d.find(0) != d.find(4) {
		t.Fatal("transitive union failed")
	}
	if d.find(2) == d.find(0) {
		t.Fatal("singleton merged")
	}
}
