package assoc

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mvs/internal/geom"
	"mvs/internal/ml"
	"mvs/internal/scene"
)

// corridorWorld chains n cameras along a straight road, S4-style:
// adjacent cameras overlap, distant pairs see disjoint stretches, so
// the trained model mixes full pairs, classifier-only pairs, and
// untrained pairs — the shapes the per-pair fan-out must preserve.
func corridorWorld(seed int64, n int) *scene.World {
	length := 40.0*float64(n) + 40
	east := scene.MustPath(geom.Point{X: -length / 2, Y: 4}, geom.Point{X: length / 2, Y: 4})
	west := scene.MustPath(geom.Point{X: length / 2, Y: -4}, geom.Point{X: -length / 2, Y: -4})
	cams := make([]*scene.Camera, n)
	for i := range cams {
		x := -length/2 + 40 + float64(i)*40
		y, yaw := 16.0, -0.35
		if i%2 == 1 {
			y, yaw = -16.0, 0.35
		}
		cams[i] = &scene.Camera{
			Name: "c", Pos: geom.Point{X: x, Y: y}, Height: 8, Yaw: yaw,
			Pitch: 0.4, Focal: 560, ImageW: 1280, ImageH: 704, MaxRange: 68,
		}
	}
	return &scene.World{
		Routes: []scene.Route{
			{Path: east, Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.5}},
			{Path: west, Speed: 9, Arrivals: scene.Poisson{RatePerSec: 0.5}},
		},
		Cameras: cams,
		FPS:     10,
		Seed:    seed,
	}
}

// corridorTrace caches one 4-camera corridor trace for the determinism
// tests (several of them retrain on it).
var (
	corridorOnce  sync.Once
	corridorTr    *scene.Trace
	corridorTrErr error
)

func getCorridorTrace(t *testing.T) *scene.Trace {
	t.Helper()
	corridorOnce.Do(func() {
		corridorTr, corridorTrErr = corridorWorld(9, 4).Run(400)
	})
	if corridorTrErr != nil {
		t.Fatal(corridorTrErr)
	}
	return corridorTr
}

// frameBoxes extracts the per-camera box lists of one frame.
func frameBoxes(trace *scene.Trace, fi int) [][]geom.Rect {
	f := &trace.Frames[fi]
	boxes := make([][]geom.Rect, len(trace.Cameras))
	for c := range trace.Cameras {
		for _, o := range f.PerCamera[c] {
			boxes[c] = append(boxes[c], o.Box)
		}
	}
	return boxes
}

// TestTrainDeterministicAcrossWorkers asserts the tentpole contract for
// training: the model is bit-identical (reflect.DeepEqual over every
// trained pair, k-d trees included) whether the N*(N-1) pairs train
// sequentially or on 2 or 8 goroutines.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	trace := getCorridorTrace(t)
	train, _ := trace.SplitTrain()
	base, err := Train(train, Factories{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.pairs) == 0 {
		t.Fatal("no trained pairs — fixture degenerate")
	}
	for _, workers := range []int{2, 8} {
		m, err := Train(train, Factories{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.numCams != base.numCams {
			t.Fatalf("workers=%d: numCams %d != %d", workers, m.numCams, base.numCams)
		}
		if !reflect.DeepEqual(base.pairs, m.pairs) {
			t.Errorf("workers=%d: trained pair models diverged from sequential", workers)
		}
	}
}

// TestTrainErrorDeterministicAcrossWorkers asserts the pool error rule
// lifts to Train: when several pairs fail, every worker count reports
// the lowest-numbered pair.
func TestTrainErrorDeterministicAcrossWorkers(t *testing.T) {
	trace := getCorridorTrace(t)
	train, _ := trace.SplitTrain()
	f := Factories{
		NewClassifier: func() ml.Classifier { return failingClassifier{} },
	}
	var want string
	for _, workers := range []int{1, 2, 8} {
		f.Workers = workers
		_, err := Train(train, f)
		if err == nil {
			t.Fatalf("workers=%d: failing classifier accepted", workers)
		}
		if want == "" {
			want = err.Error()
			if !strings.Contains(want, "pair (0,1)") {
				t.Fatalf("sequential error is not the lowest pair: %v", err)
			}
		} else if err.Error() != want {
			t.Errorf("workers=%d: error %q != sequential %q", workers, err, want)
		}
	}
}

type failingClassifier struct{}

func (failingClassifier) Fit([][]float64, []bool) error   { return errors.New("broken") }
func (failingClassifier) Predict([]float64) (bool, error) { return false, errors.New("broken") }
func (failingClassifier) Name() string                    { return "failing" }

// TestAssociateDeterministicAcrossWorkers asserts the tentpole contract
// for matching: groups, group order, and member order are bit-identical
// at workers 1, 2, and 8 on every frame of the corridor test half.
func TestAssociateDeterministicAcrossWorkers(t *testing.T) {
	trace := getCorridorTrace(t)
	train, test := trace.SplitTrain()
	m, err := Train(train, Factories{})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for fi := range test.Frames {
		boxes := frameBoxes(test, fi)
		base, err := m.AssociateWorkers(boxes, 0, 1)
		if err != nil {
			t.Fatalf("frame %d sequential: %v", fi, err)
		}
		for _, workers := range []int{2, 8} {
			got, err := m.AssociateWorkers(boxes, 0, workers)
			if err != nil {
				t.Fatalf("frame %d workers=%d: %v", fi, workers, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("frame %d workers=%d: groups diverged\nseq: %v\npar: %v",
					fi, workers, base, got)
			}
		}
		if len(base) > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no frame produced any group — fixture degenerate")
	}
}

// TestAssociateMatchesLegacySequential pins the wrapper: Associate is
// exactly AssociateWorkers at width 1.
func TestAssociateMatchesLegacySequential(t *testing.T) {
	trace := getCorridorTrace(t)
	train, test := trace.SplitTrain()
	m, err := Train(train, Factories{})
	if err != nil {
		t.Fatal(err)
	}
	boxes := frameBoxes(test, len(test.Frames)/2)
	a, err := m.Associate(boxes, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AssociateWorkers(boxes, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Associate diverged from AssociateWorkers(.., 1):\n%v\n%v", a, b)
	}
}

// TestAssociateConcurrentCallers drives many concurrent AssociateWorkers
// calls — each internally fanned out — against one shared Model. Under
// -race this proves the model is never written after Train; the results
// must all equal the sequential baseline.
func TestAssociateConcurrentCallers(t *testing.T) {
	trace := getCorridorTrace(t)
	train, test := trace.SplitTrain()
	m, err := Train(train, Factories{})
	if err != nil {
		t.Fatal(err)
	}
	boxes := frameBoxes(test, len(test.Frames)/2)
	want, err := m.AssociateWorkers(boxes, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 8
	groups := make([][]Group, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			groups[i], errs[i] = m.AssociateWorkers(boxes, 0, 2)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(want, groups[i]) {
			t.Fatalf("caller %d diverged from sequential", i)
		}
	}
}

// TestCellCoverageDeterministicAcrossWorkers asserts the per-cell
// fan-out matches the sequential coverage sets exactly.
func TestCellCoverageDeterministicAcrossWorkers(t *testing.T) {
	trace := getCorridorTrace(t)
	train, _ := trace.SplitTrain()
	m, err := Train(train, Factories{})
	if err != nil {
		t.Fatal(err)
	}
	grid := geom.NewGrid(trace.Cameras[0].Frame(), 8, 6)
	base, err := m.CellCoverageWorkers(0, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := m.CellCoverageWorkers(0, grid, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: coverage diverged", workers)
		}
	}
}

// neverVisible answers "not visible" for every box, making every pair
// an all-zero profit matrix.
type neverVisible struct{}

func (neverVisible) Fit([][]float64, []bool) error   { return nil }
func (neverVisible) Predict([]float64) (bool, error) { return false, nil }
func (neverVisible) Name() string                    { return "never" }

// TestAssociateAllInvisiblePair is the regression test for the
// anyVisible short-circuit: a pair whose boxes are all predicted
// invisible must contribute no matches and no error — never reaching
// the Hungarian solver on an all-zero profit matrix — and empty camera
// lists must behave the same, sequentially and fanned out.
func TestAssociateAllInvisiblePair(t *testing.T) {
	m := &Model{numCams: 3, pairs: map[[2]int]*PairModel{
		{0, 1}: {clf: neverVisible{}},
		{1, 0}: {clf: neverVisible{}},
		{0, 2}: {clf: neverVisible{}},
		// (1,2)/(2,*) untrained: MapBox answers "not visible" directly.
	}}
	cases := []struct {
		name  string
		boxes [][]geom.Rect
	}{
		{"all-pairs-invisible", [][]geom.Rect{
			{{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, {MinX: 20, MinY: 0, MaxX: 30, MaxY: 10}},
			{{MinX: 5, MinY: 5, MaxX: 15, MaxY: 15}},
			{{MinX: 1, MinY: 1, MaxX: 9, MaxY: 9}},
		}},
		{"one-camera-empty", [][]geom.Rect{
			{{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}},
			nil,
			{{MinX: 1, MinY: 1, MaxX: 9, MaxY: 9}},
		}},
		{"all-empty", [][]geom.Rect{nil, nil, nil}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want []Group
			for _, workers := range []int{1, 2, 8} {
				groups, err := m.AssociateWorkers(tc.boxes, 0, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				total := 0
				for _, b := range tc.boxes {
					total += len(b)
				}
				if len(groups) != total {
					t.Fatalf("workers=%d: %d groups for %d boxes — boxes merged without a visible prediction",
						workers, len(groups), total)
				}
				for _, g := range groups {
					if len(g.Members) != 1 {
						t.Fatalf("workers=%d: non-singleton group %v", workers, g)
					}
				}
				if workers == 1 {
					want = groups
				} else if !reflect.DeepEqual(want, groups) {
					t.Fatalf("workers=%d diverged from sequential", workers)
				}
			}
		})
	}
}
