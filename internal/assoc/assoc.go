// Package assoc implements the paper's cross-camera object association
// module. For every ordered camera pair it trains two lightweight
// location-based models on a labelled half of the trace:
//
//  1. a classifier deciding whether a bounding box seen on the source
//     camera is visible on the destination camera at all, and
//  2. a regressor predicting where on the destination camera it appears.
//
// At key frames, each detection is mapped to every other camera and
// matched against that camera's detections by IoU through the Hungarian
// algorithm; matches are merged with a union-find into global object
// identities. The module is model-agnostic (the paper's Figs. 10 and 11
// swap in SVM/logistic/tree classifiers and homography/linear/RANSAC
// regressors), with KNN as the deployed default.
//
// # Execution model and determinism
//
// Both per-pair hot loops fan out on the internal/pool worker pool:
// Train over the N*(N-1) directed pairs (bounded by Factories.Workers)
// and AssociateWorkers over the N*(N-1)/2 unordered pairs. Every pair's
// computation is independent — it reads only the shared inputs and
// writes only its own slot of a per-pair result array — and the merge
// back into shared state happens sequentially after the fan-out, in
// ascending pair order. The contract callers rely on:
//
//   - Train produces a bit-identical Model at every worker count: pair
//     (src, dst) is always trained on exactly BuildPairSamples(trace,
//     src, dst), and the pair map is assembled after the fan-out;
//   - AssociateWorkers produces bit-identical groups at every worker
//     count: per-pair match lists are computed in isolation and the
//     union-find merges are applied in ascending (i, j) pair order
//     (docs/CONCURRENCY.md §5 documents why the grouping is already
//     order-invariant; the fixed order makes it checkable);
//   - errors are reported for the lowest-numbered failing pair,
//     regardless of goroutine interleaving (the pool.Do error rule);
//   - workers == 1 is the sequential reference path, byte-for-byte the
//     loop it replaced; workers <= 0 selects GOMAXPROCS.
//
// # Goroutine safety
//
// A Model is immutable after Train returns: MapBox, Associate,
// AssociateWorkers, NominalBox, CellCoverage, and CellCoverageWorkers
// only read the trained pair models (KNN k-d trees are query-only), so
// any number of goroutines may call them concurrently on one shared
// Model — including concurrent AssociateWorkers calls that each fan out
// internally. Train itself must not race with readers of the Model it
// is building; the model factories it is given are called concurrently
// from worker goroutines and must return a fresh, unshared model per
// call.
package assoc

import (
	"errors"
	"fmt"

	"mvs/internal/geom"
	"mvs/internal/hungarian"
	"mvs/internal/ml"
	"mvs/internal/pool"
	"mvs/internal/scene"
)

// Sample is one training or evaluation case for a camera pair: a box on
// the source camera, whether the same object is visible on the
// destination camera, and (when visible) its box there.
type Sample struct {
	// SrcBox is the object's box on the source camera.
	SrcBox geom.Rect
	// Visible reports whether the object appears on the destination
	// camera in the same frame.
	Visible bool
	// DstBox is the object's box on the destination camera; meaningful
	// only when Visible.
	DstBox geom.Rect
}

// BuildPairSamples extracts all (srcCam -> dstCam) samples from a trace.
func BuildPairSamples(trace *scene.Trace, srcCam, dstCam int) ([]Sample, error) {
	if srcCam == dstCam {
		return nil, fmt.Errorf("assoc: src and dst are both camera %d", srcCam)
	}
	if srcCam < 0 || dstCam < 0 || srcCam >= len(trace.Cameras) || dstCam >= len(trace.Cameras) {
		return nil, fmt.Errorf("assoc: camera pair (%d,%d) out of range [0,%d)", srcCam, dstCam, len(trace.Cameras))
	}
	var out []Sample
	for fi := range trace.Frames {
		f := &trace.Frames[fi]
		dstByID := make(map[int]geom.Rect, len(f.PerCamera[dstCam]))
		for _, o := range f.PerCamera[dstCam] {
			dstByID[o.ObjectID] = o.Box
		}
		for _, o := range f.PerCamera[srcCam] {
			s := Sample{SrcBox: o.Box}
			if dst, ok := dstByID[o.ObjectID]; ok {
				s.Visible = true
				s.DstBox = dst
			}
			out = append(out, s)
		}
	}
	return out, nil
}

// ClassificationData converts samples to the (features, labels) form the
// ml package consumes.
func ClassificationData(samples []Sample) (x [][]float64, y []bool) {
	x = make([][]float64, len(samples))
	y = make([]bool, len(samples))
	for i, s := range samples {
		x[i] = s.SrcBox.Vec4()
		y[i] = s.Visible
	}
	return x, y
}

// RegressionData converts the visible subset of samples to (features,
// targets) form.
func RegressionData(samples []Sample) (x [][]float64, y [][]float64) {
	for _, s := range samples {
		if !s.Visible {
			continue
		}
		x = append(x, s.SrcBox.Vec4())
		y = append(y, s.DstBox.Vec4())
	}
	return x, y
}

// PairModel is the trained classifier+regressor for one ordered camera
// pair.
type PairModel struct {
	clf    ml.Classifier
	reg    ml.Regressor
	hasReg bool
	// meanSrc is the mean training source-box size, used to synthesize
	// nominal boxes for cell-coverage queries.
	meanSrcW, meanSrcH float64
}

// ErrNoPositives is returned when a pair has no co-visible training
// samples, so no regressor can be trained. The pair still gets a
// classifier (which should answer "not visible").
var ErrNoPositives = errors.New("assoc: no co-visible samples for pair")

// TrainPair fits a pair model from samples using the supplied model
// factories.
func TrainPair(samples []Sample, newClf func() ml.Classifier, newReg func() ml.Regressor) (*PairModel, error) {
	if len(samples) == 0 {
		return nil, errors.New("assoc: no samples for pair")
	}
	pm := &PairModel{clf: newClf()}
	x, y := ClassificationData(samples)
	if err := pm.clf.Fit(x, y); err != nil {
		return nil, fmt.Errorf("assoc: training classifier: %w", err)
	}
	var wSum, hSum float64
	for _, s := range samples {
		wSum += s.SrcBox.W()
		hSum += s.SrcBox.H()
	}
	pm.meanSrcW = wSum / float64(len(samples))
	pm.meanSrcH = hSum / float64(len(samples))

	rx, ry := RegressionData(samples)
	if len(rx) == 0 {
		return pm, nil // classifier-only pair (disjoint views)
	}
	pm.reg = newReg()
	if err := pm.reg.Fit(rx, ry); err != nil {
		return nil, fmt.Errorf("assoc: training regressor: %w", err)
	}
	pm.hasReg = true
	return pm, nil
}

// Map predicts whether a source box is visible on the destination camera
// and, if so, where.
func (pm *PairModel) Map(box geom.Rect) (geom.Rect, bool, error) {
	visible, err := pm.clf.Predict(box.Vec4())
	if err != nil {
		return geom.Rect{}, false, fmt.Errorf("assoc: classify: %w", err)
	}
	if !visible || !pm.hasReg {
		return geom.Rect{}, false, nil
	}
	v, err := pm.reg.Predict(box.Vec4())
	if err != nil {
		return geom.Rect{}, false, fmt.Errorf("assoc: regress: %w", err)
	}
	return geom.RectFromVec4(v), true, nil
}

// Model is the full cross-camera association model: one PairModel per
// ordered camera pair. It is immutable after Train returns and safe for
// concurrent use — see the package comment's goroutine-safety contract.
type Model struct {
	numCams int
	pairs   map[[2]int]*PairModel
}

// Factories bundles the model constructors used for training, so
// experiments can swap baselines in, and bounds Train's per-pair
// fan-out.
type Factories struct {
	// NewClassifier returns a fresh untrained classifier (default KNN).
	// It is called once per directed camera pair, possibly from several
	// goroutines at once, so it must return a new, unshared model each
	// call.
	NewClassifier func() ml.Classifier
	// NewRegressor returns a fresh untrained regressor (default KNN).
	// The same concurrent-call contract as NewClassifier applies.
	NewRegressor func() ml.Regressor
	// Workers bounds the goroutines training camera pairs: 1 forces the
	// sequential reference path, <= 0 (the default) selects GOMAXPROCS,
	// and any value is capped at the pair count. The trained Model is
	// bit-identical for every value.
	Workers int
}

func (f Factories) withDefaults() Factories {
	if f.NewClassifier == nil {
		f.NewClassifier = func() ml.Classifier { return &ml.KNNClassifier{K: 5} }
	}
	if f.NewRegressor == nil {
		f.NewRegressor = func() ml.Regressor { return &ml.KNNRegressor{K: 5} }
	}
	return f
}

// directedPairs enumerates the (src, dst) camera pairs with src != dst,
// in the fixed src-major order the sequential loops used. Both the Train
// fan-out and its merge walk this slice, so the pair at index k is the
// same pair on every worker count.
func directedPairs(numCams int) [][2]int {
	out := make([][2]int, 0, numCams*(numCams-1))
	for src := 0; src < numCams; src++ {
		for dst := 0; dst < numCams; dst++ {
			if src != dst {
				out = append(out, [2]int{src, dst})
			}
		}
	}
	return out
}

// Train fits pair models for every ordered camera pair from the training
// trace. Pairs whose source camera never observes anything are left out;
// Map treats them as "not visible". The N*(N-1) pairs are independent,
// so they train on up to f.Workers goroutines (see Factories.Workers);
// each pair's model lands in its own slot and the pair map is assembled
// sequentially afterwards, so the result is bit-identical at every
// worker count.
func Train(trace *scene.Trace, f Factories) (*Model, error) {
	if len(trace.Cameras) < 2 {
		return nil, fmt.Errorf("assoc: need >= 2 cameras, got %d", len(trace.Cameras))
	}
	f = f.withDefaults()
	m := &Model{numCams: len(trace.Cameras), pairs: make(map[[2]int]*PairModel)}
	pairs := directedPairs(m.numCams)
	slots := make([]*PairModel, len(pairs))
	err := pool.Do(f.Workers, len(pairs), func(k int) error {
		src, dst := pairs[k][0], pairs[k][1]
		samples, err := BuildPairSamples(trace, src, dst)
		if err != nil {
			return err
		}
		if len(samples) == 0 {
			return nil // untrained pair: Map answers "not visible"
		}
		pm, err := TrainPair(samples, f.NewClassifier, f.NewRegressor)
		if err != nil {
			return fmt.Errorf("assoc: pair (%d,%d): %w", src, dst, err)
		}
		slots[k] = pm
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k, pm := range slots {
		if pm != nil {
			m.pairs[pairs[k]] = pm
		}
	}
	return m, nil
}

// NumCameras returns the camera count the model was trained for.
func (m *Model) NumCameras() int { return m.numCams }

// MapBox predicts visibility and location of a source-camera box on a
// destination camera. Untrained pairs answer "not visible".
func (m *Model) MapBox(src, dst int, box geom.Rect) (geom.Rect, bool, error) {
	if src == dst {
		return box, true, nil
	}
	pm, ok := m.pairs[[2]int{src, dst}]
	if !ok {
		return geom.Rect{}, false, nil
	}
	return pm.Map(box)
}

// Ref identifies one box in the per-camera input to Associate.
type Ref struct {
	// Cam is the camera index.
	Cam int
	// Index is the position in that camera's box list.
	Index int
}

// Group is one physical object as inferred by association: the set of
// per-camera boxes believed to be the same object.
type Group struct {
	// Members holds one Ref per camera observing the object.
	Members []Ref
}

// Associate clusters per-camera boxes into global objects on the
// calling goroutine — shorthand for AssociateWorkers with workers == 1,
// the sequential reference path.
func (m *Model) Associate(boxes [][]geom.Rect, minIoU float64) ([]Group, error) {
	return m.AssociateWorkers(boxes, minIoU, 1)
}

// pairMatch records one Hungarian match of a camera pair in the flat
// union-find index space.
type pairMatch struct {
	a, b int
}

// AssociateWorkers clusters per-camera boxes into global objects. For
// each camera pair (i < j), every box on i that the pair model maps
// into j is matched against j's boxes by IoU (Hungarian, threshold
// minIoU); matched pairs are merged with union-find. minIoU <= 0
// defaults to 0.1 (the paper's "preset threshold" on area overlap).
//
// The unordered pairs are matched independently on up to workers
// goroutines (<= 0 selects GOMAXPROCS, 1 runs inline) — each pair
// writes only its own match list — and the union-find merges are then
// applied sequentially in ascending (i, then j) pair order, so the
// returned groups, their order, and their member order are bit-identical
// at every worker count. A pair with an empty side, or whose boxes are
// all predicted invisible on the other camera, contributes no matches
// and never invokes the Hungarian solver, exactly as in the sequential
// path.
func (m *Model) AssociateWorkers(boxes [][]geom.Rect, minIoU float64, workers int) ([]Group, error) {
	if len(boxes) != m.numCams {
		return nil, fmt.Errorf("assoc: %d camera lists, model trained for %d", len(boxes), m.numCams)
	}
	if minIoU <= 0 {
		minIoU = 0.1
	}
	// Flat indexing for union-find.
	offsets := make([]int, len(boxes)+1)
	for i, b := range boxes {
		offsets[i+1] = offsets[i] + len(b)
	}

	// Enumerate the unordered pairs in the merge order (ascending i,
	// then j); matches[k] is pair k's private output slot.
	pairs := make([][2]int, 0, m.numCams*(m.numCams-1)/2)
	for i := 0; i < m.numCams; i++ {
		for j := i + 1; j < m.numCams; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	matches := make([][]pairMatch, len(pairs))
	err := pool.Do(workers, len(pairs), func(k int) error {
		i, j := pairs[k][0], pairs[k][1]
		if len(boxes[i]) == 0 || len(boxes[j]) == 0 {
			return nil
		}
		// Map each box on i into j; rows that aren't predicted visible
		// get zero profit everywhere.
		profit := make([][]float64, len(boxes[i]))
		anyVisible := false
		for bi, box := range boxes[i] {
			profit[bi] = make([]float64, len(boxes[j]))
			pred, visible, err := m.MapBox(i, j, box)
			if err != nil {
				return err
			}
			if !visible {
				continue
			}
			anyVisible = true
			for bj, other := range boxes[j] {
				profit[bi][bj] = pred.IoU(other)
			}
		}
		if !anyVisible {
			return nil // all-zero profit matrix: nothing to solve
		}
		assign, _, err := hungarian.MaximizeProfit(profit, minIoU)
		if err != nil {
			return fmt.Errorf("assoc: matching cameras (%d,%d): %w", i, j, err)
		}
		for bi, bj := range assign {
			if bj < 0 {
				continue
			}
			matches[k] = append(matches[k], pairMatch{a: offsets[i] + bi, b: offsets[j] + bj})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Deterministic merge: apply every pair's matches in ascending pair
	// order. (The grouping is a connected-components computation, so it
	// is invariant to this order anyway; fixing it makes the parallel
	// path checkably identical to the sequential one.)
	dsu := newDSU(offsets[len(boxes)])
	for _, ms := range matches {
		for _, pm := range ms {
			dsu.union(pm.a, pm.b)
		}
	}

	// Collect groups in deterministic order of their smallest member.
	groupIdx := make(map[int]int)
	var groups []Group
	for i := 0; i < m.numCams; i++ {
		for k := range boxes[i] {
			root := dsu.find(offsets[i] + k)
			gi, ok := groupIdx[root]
			if !ok {
				gi = len(groups)
				groupIdx[root] = gi
				groups = append(groups, Group{})
			}
			groups[gi].Members = append(groups[gi].Members, Ref{Cam: i, Index: k})
		}
	}
	return groups, nil
}

// dsu is a minimal union-find with path halving.
type dsu struct {
	parent []int
}

func newDSU(n int) *dsu {
	d := &dsu{parent: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
	}
	return d
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[rb] = ra
	}
}

// Subset extracts the sub-model over the given cameras (ascending
// global indices): a Model over len(cams) cameras whose pair (i, j) is
// the original pair (cams[i], cams[j]). Trained pair models are shared,
// not copied — a Model is immutable, so the subset and the original are
// safe to use concurrently. The sharded schedulers use this to run one
// association per overlap group instead of one over the fleet
// (docs/SCALING.md §3).
func (m *Model) Subset(cams []int) (*Model, error) {
	if len(cams) == 0 {
		return nil, errors.New("assoc: empty camera subset")
	}
	seen := make(map[int]bool, len(cams))
	for k, c := range cams {
		if c < 0 || c >= m.numCams {
			return nil, fmt.Errorf("assoc: subset camera %d out of range [0,%d)", c, m.numCams)
		}
		if seen[c] {
			return nil, fmt.Errorf("assoc: subset lists camera %d twice", c)
		}
		seen[c] = true
		if k > 0 && cams[k-1] >= c {
			return nil, fmt.Errorf("assoc: subset cameras must ascend, got %v", cams)
		}
	}
	sub := &Model{numCams: len(cams), pairs: make(map[[2]int]*PairModel)}
	for i, src := range cams {
		for j, dst := range cams {
			if i == j {
				continue
			}
			if pm, ok := m.pairs[[2]int{src, dst}]; ok {
				sub.pairs[[2]int{i, j}] = pm
			}
		}
	}
	return sub, nil
}

// OverlapAdjacency extracts the model's pairwise overlap graph: for
// each source camera, a cell grid of the given shape is laid over its
// frame and every cell's coverage set is queried
// (CellCoverageWorkers); adj[src][dst] is true when any cell of src
// predicts dst visible. frames[i] is camera i's pixel frame. The
// matrix is directed as predicted; shard.FromAdjacency symmetrizes it
// into the overlap graph that Partition consumes. Cost: one
// CellCoverage sweep per camera (N · cols·rows · (N−1) MapBox
// queries), paid once at deployment time, like the mask precomputation
// it reuses.
func (m *Model) OverlapAdjacency(frames []geom.Rect, cols, rows, workers int) ([][]bool, error) {
	if len(frames) != m.numCams {
		return nil, fmt.Errorf("assoc: %d frames for model with %d cameras", len(frames), m.numCams)
	}
	if cols <= 0 || rows <= 0 {
		return nil, fmt.Errorf("assoc: bad grid %dx%d", cols, rows)
	}
	adj := make([][]bool, m.numCams)
	for src := range adj {
		adj[src] = make([]bool, m.numCams)
		cover, err := m.CellCoverageWorkers(src, geom.NewGrid(frames[src], cols, rows), workers)
		if err != nil {
			return nil, fmt.Errorf("assoc: overlap for camera %d: %w", src, err)
		}
		for _, set := range cover {
			for _, dst := range set {
				if dst != src && dst >= 0 && dst < m.numCams {
					adj[src][dst] = true
				}
			}
		}
	}
	return adj, nil
}

// NominalBox synthesizes a box of the pair's mean training size centred
// at the given pixel point on the source camera. The distributed-stage
// mask computation uses it to ask "would an average object here be
// visible elsewhere?".
func (m *Model) NominalBox(src int, centre geom.Point) geom.Rect {
	// Use any trained pair with this source for the mean dims.
	for dst := 0; dst < m.numCams; dst++ {
		if pm, ok := m.pairs[[2]int{src, dst}]; ok {
			return geom.RectFromCenter(centre, pm.meanSrcW, pm.meanSrcH)
		}
	}
	return geom.RectFromCenter(centre, 48, 36)
}

// CellCoverage computes, for each cell of the source camera's grid, the
// set of cameras (indices, always including src) predicted to see an
// average object centred in that cell — the per-cell coverage sets behind
// the distributed stage's camera masks (Fig. 8). It runs on the calling
// goroutine; CellCoverageWorkers fans the cells out.
func (m *Model) CellCoverage(src int, grid geom.Grid) ([][]int, error) {
	return m.CellCoverageWorkers(src, grid, 1)
}

// CellCoverageWorkers is CellCoverage with the per-cell queries spread
// over up to workers goroutines (<= 0 selects GOMAXPROCS, 1 runs
// inline). Each cell's coverage set is written to its own slot, so the
// result is bit-identical at every worker count.
func (m *Model) CellCoverageWorkers(src int, grid geom.Grid, workers int) ([][]int, error) {
	out := make([][]int, grid.NumCells())
	err := pool.Do(workers, grid.NumCells(), func(c int) error {
		box := m.NominalBox(src, grid.CellCenter(c))
		cover := []int{src}
		for dst := 0; dst < m.numCams; dst++ {
			if dst == src {
				continue
			}
			_, visible, err := m.MapBox(src, dst, box)
			if err != nil {
				return fmt.Errorf("assoc: coverage cell %d: %w", c, err)
			}
			if visible {
				cover = append(cover, dst)
			}
		}
		out[c] = cover
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
