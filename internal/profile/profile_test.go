package profile

import (
	"testing"
	"testing/quick"
	"time"
)

func allClasses() []DeviceClass {
	return []DeviceClass{JetsonNano, JetsonTX2, JetsonXavier}
}

func TestDeviceClassString(t *testing.T) {
	cases := map[DeviceClass]string{
		JetsonNano: "nano", JetsonTX2: "tx2", JetsonXavier: "xavier",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q want %q", c, got, want)
		}
	}
	if got := DeviceClass(99).String(); got != "device(99)" {
		t.Errorf("unknown = %q", got)
	}
}

func TestParseDeviceClassRoundTrip(t *testing.T) {
	for _, c := range allClasses() {
		got, err := ParseDeviceClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseDeviceClass(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := ParseDeviceClass("gpu9000"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestHeterogeneityOrdering(t *testing.T) {
	// Every latency quantity must respect Nano > TX2 > Xavier.
	for _, size := range []int{64, 128, 256, 512} {
		nano := TrueBatchLatency(JetsonNano, size, 1)
		tx2 := TrueBatchLatency(JetsonTX2, size, 1)
		xavier := TrueBatchLatency(JetsonXavier, size, 1)
		if !(nano > tx2 && tx2 > xavier) {
			t.Errorf("size %d: nano=%v tx2=%v xavier=%v not ordered", size, nano, tx2, xavier)
		}
	}
	if !(TrueFullFrameLatency(JetsonNano) > TrueFullFrameLatency(JetsonTX2) &&
		TrueFullFrameLatency(JetsonTX2) > TrueFullFrameLatency(JetsonXavier)) {
		t.Error("full-frame latencies not ordered by device class")
	}
}

func TestLatencyMonotoneInSizeAndBatch(t *testing.T) {
	for _, class := range allClasses() {
		sizes := []int{64, 128, 256, 512}
		for i := 1; i < len(sizes); i++ {
			if TrueBatchLatency(class, sizes[i], 1) <= TrueBatchLatency(class, sizes[i-1], 1) {
				t.Errorf("%s: latency not increasing from size %d to %d", class, sizes[i-1], sizes[i])
			}
		}
		for n := 2; n <= 20; n++ {
			if TrueBatchLatency(class, 128, n) < TrueBatchLatency(class, 128, n-1) {
				t.Errorf("%s: latency decreased from batch %d to %d", class, n-1, n)
			}
		}
	}
}

func TestBatchingIsWorthwhileWithinLimit(t *testing.T) {
	// Within the batch limit, a batch of n must be much cheaper than n
	// serialized singles — the effect the paper exploits.
	for _, class := range allClasses() {
		p := Derived(class)
		for _, size := range p.Sizes {
			limit := p.BatchLimit[size]
			if limit < 2 {
				continue
			}
			batched := TrueBatchLatency(class, size, limit)
			serial := time.Duration(limit) * TrueBatchLatency(class, size, 1)
			if batched >= serial {
				t.Errorf("%s size %d: batch of %d (%v) not cheaper than serial (%v)",
					class, size, limit, batched, serial)
			}
		}
	}
}

func TestInflectionPastBatchLimit(t *testing.T) {
	// Past the batch limit the marginal cost per image must jump.
	p := Derived(JetsonXavier)
	size := 128
	limit := p.BatchLimit[size]
	within := TrueBatchLatency(JetsonXavier, size, limit) - TrueBatchLatency(JetsonXavier, size, limit-1)
	beyond := TrueBatchLatency(JetsonXavier, size, limit+1) - TrueBatchLatency(JetsonXavier, size, limit)
	if beyond <= within*2 {
		t.Errorf("no inflection: marginal within=%v beyond=%v", within, beyond)
	}
}

func TestZeroBatch(t *testing.T) {
	if TrueBatchLatency(JetsonNano, 64, 0) != 0 {
		t.Error("zero batch should cost nothing")
	}
	if TrueBatchLatency(JetsonNano, 64, -3) != 0 {
		t.Error("negative batch should cost nothing")
	}
}

func TestDefaultProfilesValid(t *testing.T) {
	for _, class := range allClasses() {
		p := Derived(class)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", class, err)
		}
		if p.Class != class {
			t.Errorf("class = %v want %v", p.Class, class)
		}
	}
}

func TestProfilerCloseToTruth(t *testing.T) {
	pr := &Profiler{Runs: 200, NoiseFrac: 0.05, Seed: 1}
	for _, class := range allClasses() {
		p, err := pr.Measure(class, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		truth := Derived(class)
		// Averaging 200 runs with 5% noise: mean within ~2%.
		ratio := float64(p.FullFrame) / float64(truth.FullFrame)
		if ratio < 0.97 || ratio > 1.03 {
			t.Errorf("%s full-frame ratio %v", class, ratio)
		}
		for _, s := range p.Sizes {
			r := float64(p.BatchLatency[s]) / float64(truth.BatchLatency[s])
			if r < 0.95 || r > 1.05 {
				t.Errorf("%s size %d ratio %v", class, s, r)
			}
			if p.BatchLimit[s] != truth.BatchLimit[s] {
				t.Errorf("%s size %d limit %d != %d", class, s, p.BatchLimit[s], truth.BatchLimit[s])
			}
		}
	}
}

func TestProfilerDeterministicPerSeed(t *testing.T) {
	a, err := (&Profiler{Seed: 7}).Measure(JetsonTX2, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Profiler{Seed: 7}).Measure(JetsonTX2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.FullFrame != b.FullFrame {
		t.Error("same seed produced different profiles")
	}
	c, err := (&Profiler{Seed: 8}).Measure(JetsonTX2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.FullFrame == c.FullFrame {
		t.Error("different seeds produced identical measurements")
	}
}

func TestProfileAccessors(t *testing.T) {
	p := Derived(JetsonXavier)
	lat, err := p.BatchLatencyFor(128)
	if err != nil || lat <= 0 {
		t.Fatalf("BatchLatencyFor = %v, %v", lat, err)
	}
	if _, err := p.BatchLatencyFor(100); err == nil {
		t.Error("unknown size accepted")
	}
	b, err := p.BatchLimitFor(64)
	if err != nil || b != 16 {
		t.Fatalf("BatchLimitFor = %v, %v", b, err)
	}
	if _, err := p.BatchLimitFor(100); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestProfileCloneIsDeep(t *testing.T) {
	p := Derived(JetsonNano)
	c := p.Clone()
	c.BatchLimit[64] = 99
	c.BatchLatency[64] = time.Second
	c.Sizes[0] = 1
	if p.BatchLimit[64] == 99 || p.BatchLatency[64] == time.Second || p.Sizes[0] == 1 {
		t.Error("Clone shares state")
	}
}

func TestProfileValidateRejectsBad(t *testing.T) {
	good := Derived(JetsonTX2)
	bad := good.Clone()
	bad.Sizes = nil
	if bad.Validate() == nil {
		t.Error("no sizes accepted")
	}
	bad = good.Clone()
	bad.FullFrame = 0
	if bad.Validate() == nil {
		t.Error("zero full-frame accepted")
	}
	bad = good.Clone()
	bad.Sizes = []int{128, 64}
	if bad.Validate() == nil {
		t.Error("unsorted sizes accepted")
	}
	bad = good.Clone()
	bad.BatchLimit[64] = 0
	if bad.Validate() == nil {
		t.Error("zero batch limit accepted")
	}
	bad = good.Clone()
	bad.BatchLatency[64] = 0
	if bad.Validate() == nil {
		t.Error("zero latency accepted")
	}
}

func TestInflectionLimitKnee(t *testing.T) {
	// The knee detector must stop exactly where the marginal cost
	// inflects, and fall back to 1 on degenerate curves.
	ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
	flat := []time.Duration{ms(10), ms(11), ms(12), ms(13)}
	if got := inflectionLimit(flat); got != 4 {
		t.Errorf("flat curve limit = %d want 4", got)
	}
	knee := []time.Duration{ms(10), ms(11), ms(12), ms(21), ms(30)}
	if got := inflectionLimit(knee); got != 3 {
		t.Errorf("knee curve limit = %d want 3", got)
	}
	steep := []time.Duration{ms(10), ms(19), ms(28)}
	if got := inflectionLimit(steep); got != 1 {
		t.Errorf("steep curve limit = %d want 1", got)
	}
	if got := inflectionLimit(nil); got != 1 {
		t.Errorf("empty curve limit = %d want 1", got)
	}
}

func TestDerivedLimitsAtInflectionPoint(t *testing.T) {
	// The derived batch limits must sit exactly on the ground-truth
	// latency inflection point: the marginal cost of image limit+1 jumps
	// while the marginal cost up to the limit stays shallow. This pins
	// the knee scan to the curve, not to any constant table.
	for _, class := range allClasses() {
		p := Derived(class)
		for _, s := range p.Sizes {
			limit := p.BatchLimit[s]
			single := TrueBatchLatency(class, s, 1)
			beyond := TrueBatchLatency(class, s, limit+1) - TrueBatchLatency(class, s, limit)
			if float64(beyond) < 0.4*float64(single) {
				t.Errorf("%s size %d: no inflection after derived limit %d (marginal %v, single %v)",
					class, s, limit, beyond, single)
			}
			if limit > 1 {
				within := TrueBatchLatency(class, s, limit) - TrueBatchLatency(class, s, limit-1)
				if float64(within) > 0.4*float64(single) {
					t.Errorf("%s size %d: marginal cost %v already inflected before limit %d",
						class, s, within, limit)
				}
			}
		}
	}
	// And the known operating points for the strongest class.
	want := map[int]int{64: 16, 128: 8, 256: 4, 512: 2}
	p := Derived(JetsonXavier)
	for s, lim := range want {
		if p.BatchLimit[s] != lim {
			t.Errorf("xavier size %d derived limit %d want %d", s, p.BatchLimit[s], lim)
		}
	}
}

func TestLatencyPositiveProperty(t *testing.T) {
	f := func(rawClass uint8, rawSize uint8, rawN uint8) bool {
		class := DeviceClass(rawClass % 3)
		size := []int{64, 128, 256, 512}[rawSize%4]
		n := int(rawN%32) + 1
		return TrueBatchLatency(class, size, n) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
