// Package profile models the heterogeneous edge devices of the paper's
// testbed (NVIDIA Jetson Nano, TX2, and Xavier) as detector latency
// profiles. A profile answers the three questions the BALB scheduler asks
// offline:
//
//   - t_i^full: how long does a full-frame DNN inspection take?
//   - t_i^s:    how long does a batch of partial regions of size s take
//     (evaluated at the batch limit, per the paper's footnote)?
//   - B_i^s:    how many size-s regions fit in one batch?
//
// The underlying latency curve is a synthetic stand-in for the paper's
// offline YOLO profiling (200 timed runs per configuration on each
// board): execution time grows only slightly with batch size up to the
// batch limit, then inflects upward — exactly the regime the paper
// exploits. Relative speeds between device classes follow published
// Jetson inference benchmarks (Nano ≈ 5x slower than Xavier, TX2 ≈ 2.5x).
package profile

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// DeviceClass identifies a hardware class in the testbed.
type DeviceClass int

// Device classes, ordered from weakest to strongest.
const (
	JetsonNano DeviceClass = iota
	JetsonTX2
	JetsonXavier
)

// String implements fmt.Stringer.
func (d DeviceClass) String() string {
	switch d {
	case JetsonNano:
		return "nano"
	case JetsonTX2:
		return "tx2"
	case JetsonXavier:
		return "xavier"
	default:
		return fmt.Sprintf("device(%d)", int(d))
	}
}

// ParseDeviceClass converts a device-class name (as printed by String)
// back to the class, for CLI flags and cluster configs.
func ParseDeviceClass(s string) (DeviceClass, error) {
	switch s {
	case "nano":
		return JetsonNano, nil
	case "tx2":
		return JetsonTX2, nil
	case "xavier":
		return JetsonXavier, nil
	default:
		return 0, fmt.Errorf("profile: unknown device class %q", s)
	}
}

// deviceParams are the ground-truth latency parameters for each class.
// baseLatency is the single-image inference time for a 64px region;
// sizeExp controls how latency scales with input side length (inference
// cost grows roughly with pixel count but sub-quadratically because of
// fixed per-launch overheads); batchSlope is the marginal cost per extra
// image within the batch limit; inflectSlope the much steeper cost past
// it.
type deviceParams struct {
	baseLatency  time.Duration
	sizeExp      float64
	batchSlope   float64
	inflectSlope float64
	batchLimits  map[int]int
	fullFrame    time.Duration
}

func paramsFor(class DeviceClass) deviceParams {
	switch class {
	case JetsonXavier:
		return deviceParams{
			baseLatency:  4 * time.Millisecond,
			sizeExp:      0.80,
			batchSlope:   0.06,
			inflectSlope: 0.75,
			batchLimits:  map[int]int{64: 16, 128: 8, 256: 4, 512: 2},
			fullFrame:    95 * time.Millisecond,
		}
	case JetsonTX2:
		return deviceParams{
			baseLatency:  8 * time.Millisecond,
			sizeExp:      0.88,
			batchSlope:   0.08,
			inflectSlope: 0.85,
			batchLimits:  map[int]int{64: 8, 128: 4, 256: 2, 512: 1},
			fullFrame:    240 * time.Millisecond,
		}
	default: // JetsonNano and anything unknown degrades to the weakest
		return deviceParams{
			baseLatency:  15 * time.Millisecond,
			sizeExp:      0.92,
			batchSlope:   0.12,
			inflectSlope: 1.0,
			batchLimits:  map[int]int{64: 4, 128: 2, 256: 1, 512: 1},
			fullFrame:    470 * time.Millisecond,
		}
	}
}

// TrueBatchLatency returns the ground-truth execution latency of a batch
// of n regions with side length size on the given device class. It is the
// quantity the simulated GPU "hardware" charges; the Profiler below
// estimates it with measurement noise, as offline profiling would.
func TrueBatchLatency(class DeviceClass, size, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	p := paramsFor(class)
	single := float64(p.baseLatency) * math.Pow(float64(size)/64.0, p.sizeExp)
	limit := p.batchLimits[size]
	if limit == 0 {
		limit = 1
	}
	within := n
	if within > limit {
		within = limit
	}
	lat := single * (1 + p.batchSlope*float64(within-1))
	if n > limit {
		// Past the inflection point batching stops being nearly free.
		lat += single * p.inflectSlope * float64(n-limit)
	}
	return time.Duration(lat)
}

// TrueFullFrameLatency returns the ground-truth full-frame inspection
// latency for the device class.
func TrueFullFrameLatency(class DeviceClass) time.Duration {
	return paramsFor(class).fullFrame
}

// Profile is the offline-measured latency profile the scheduler consumes:
// t_i^full, t_i^s, and B_i^s for every quantized target size.
type Profile struct {
	// Class is the device class the profile was measured on.
	Class DeviceClass
	// Sizes lists the quantized target sizes, ascending.
	Sizes []int
	// FullFrame is t_i^full, the full-frame inspection latency.
	FullFrame time.Duration
	// BatchLimit maps size -> B_i^s, the max regions per batch.
	BatchLimit map[int]int
	// BatchLatency maps size -> t_i^s, the latency of a batch executed at
	// the batch limit (the paper's operating point).
	BatchLatency map[int]time.Duration
}

// Validate checks internal consistency; a zero Profile is invalid.
func (p *Profile) Validate() error {
	if len(p.Sizes) == 0 {
		return fmt.Errorf("profile: no sizes")
	}
	if p.FullFrame <= 0 {
		return fmt.Errorf("profile: non-positive full-frame latency %v", p.FullFrame)
	}
	for i, s := range p.Sizes {
		if i > 0 && s <= p.Sizes[i-1] {
			return fmt.Errorf("profile: sizes not strictly ascending at %d", i)
		}
		if p.BatchLimit[s] <= 0 {
			return fmt.Errorf("profile: size %d has batch limit %d", s, p.BatchLimit[s])
		}
		if p.BatchLatency[s] <= 0 {
			return fmt.Errorf("profile: size %d has latency %v", s, p.BatchLatency[s])
		}
	}
	return nil
}

// BatchLatencyFor returns t_i^s for a size, or an error for an unknown
// size (a scheduling bug, since sizes come from the shared quantized set).
func (p *Profile) BatchLatencyFor(size int) (time.Duration, error) {
	lat, ok := p.BatchLatency[size]
	if !ok {
		return 0, fmt.Errorf("profile: no latency for size %d on %s", size, p.Class)
	}
	return lat, nil
}

// BatchLimitFor returns B_i^s for a size, or an error for an unknown size.
func (p *Profile) BatchLimitFor(size int) (int, error) {
	b, ok := p.BatchLimit[size]
	if !ok {
		return 0, fmt.Errorf("profile: no batch limit for size %d on %s", size, p.Class)
	}
	return b, nil
}

// Clone returns a deep copy, so callers can perturb profiles (e.g. for
// heterogeneity sweeps) without aliasing.
func (p *Profile) Clone() *Profile {
	out := &Profile{
		Class:        p.Class,
		Sizes:        append([]int(nil), p.Sizes...),
		FullFrame:    p.FullFrame,
		BatchLimit:   make(map[int]int, len(p.BatchLimit)),
		BatchLatency: make(map[int]time.Duration, len(p.BatchLatency)),
	}
	for k, v := range p.BatchLimit {
		out.BatchLimit[k] = v
	}
	for k, v := range p.BatchLatency {
		out.BatchLatency[k] = v
	}
	return out
}

// MaxSweepBatch bounds the profiler's batch-size sweep: latencies are
// measured at n = 1..MaxSweepBatch per size, enough to see past every
// plausible inflection point on the supported hardware.
const MaxSweepBatch = 32

// inflectFrac is the knee-detection threshold: the batch limit is the
// largest n whose marginal latency (over n-1) stays below this fraction
// of the single-image latency. It sits between the in-limit marginal
// slope (6–12% of a single image across the Jetson classes) and the
// post-inflection slope (75–100%), with more than ten standard
// deviations of margin to either side at the default measurement noise,
// so a 200-run average never mis-places the knee.
const inflectFrac = 0.4

// inflectionLimit finds the batch-limit knee of a measured latency
// curve: lat[n-1] is the (possibly noisy) latency of an n-image batch,
// and the limit is the last batch size before the marginal cost of one
// more image inflects. This is how batch limits are *derived* from the
// profiler's sweep — there is no static per-class limit table on the
// scheduler side of the fence; the paper's offline profiling captures
// the post-limit inflation, and the knee of that curve is the limit.
func inflectionLimit(lat []time.Duration) int {
	if len(lat) == 0 {
		return 1
	}
	threshold := float64(lat[0]) * inflectFrac
	limit := 1
	for n := 2; n <= len(lat); n++ {
		if float64(lat[n-1]-lat[n-2]) > threshold {
			break
		}
		limit = n
	}
	return limit
}

// Profiler estimates a device's latency profile by repeated timed runs,
// mirroring the paper's offline stage ("we profile the YOLO inference
// time with 200 runs on each Jetson board"). For every size it sweeps
// batch sizes 1..MaxSweepBatch and derives the batch limit from the
// measured latency inflection point (inflectionLimit) — the profile's
// limits are a property of the measured curve, not a constant table.
type Profiler struct {
	// Runs is the number of timed executions per configuration
	// (default 200).
	Runs int
	// NoiseFrac is the relative standard deviation of a single timing
	// measurement (default 0.05).
	NoiseFrac float64
	// Seed makes the measurement noise reproducible.
	Seed int64
}

// Measure produces the profile for a device class over the given sizes
// (nil means the standard set {64, 128, 256, 512}): a full batch-size
// sweep per size, with the batch limit read off the knee of the measured
// curve and the operating-point latency taken at that limit.
func (pr *Profiler) Measure(class DeviceClass, sizes []int) (*Profile, error) {
	if len(sizes) == 0 {
		sizes = []int{64, 128, 256, 512}
	}
	runs := pr.Runs
	if runs <= 0 {
		runs = 200
	}
	noise := pr.NoiseFrac
	if noise <= 0 {
		noise = 0.05
	}
	rng := rand.New(rand.NewSource(pr.Seed*2654435761 + int64(class) + 1))

	p := &Profile{
		Class:        class,
		Sizes:        append([]int(nil), sizes...),
		BatchLimit:   make(map[int]int, len(sizes)),
		BatchLatency: make(map[int]time.Duration, len(sizes)),
	}
	p.FullFrame = measured(rng, TrueFullFrameLatency(class), runs, noise)
	curve := make([]time.Duration, MaxSweepBatch)
	for _, s := range sizes {
		for n := 1; n <= MaxSweepBatch; n++ {
			curve[n-1] = measured(rng, TrueBatchLatency(class, s, n), runs, noise)
		}
		limit := inflectionLimit(curve)
		p.BatchLimit[s] = limit
		p.BatchLatency[s] = curve[limit-1]
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("profile: measurement produced invalid profile: %w", err)
	}
	return p, nil
}

// measured simulates averaging n noisy timing measurements of a true
// latency value.
func measured(rng *rand.Rand, truth time.Duration, runs int, noise float64) time.Duration {
	var sum float64
	for i := 0; i < runs; i++ {
		sum += float64(truth) * (1 + rng.NormFloat64()*noise)
	}
	mean := sum / float64(runs)
	if mean < 1 {
		mean = 1
	}
	return time.Duration(mean)
}

// Derived returns the noiseless profile for a device class: the exact
// ground-truth latency curve, with the batch limits derived from its
// inflection points by the same knee detection the noisy Profiler uses.
// Convenient for tests and deterministic experiments.
func Derived(class DeviceClass) *Profile {
	sizes := []int{64, 128, 256, 512}
	p := &Profile{
		Class:        class,
		Sizes:        sizes,
		FullFrame:    TrueFullFrameLatency(class),
		BatchLimit:   make(map[int]int, len(sizes)),
		BatchLatency: make(map[int]time.Duration, len(sizes)),
	}
	curve := make([]time.Duration, MaxSweepBatch)
	for _, s := range sizes {
		for n := 1; n <= MaxSweepBatch; n++ {
			curve[n-1] = TrueBatchLatency(class, s, n)
		}
		limit := inflectionLimit(curve)
		p.BatchLimit[s] = limit
		p.BatchLatency[s] = curve[limit-1]
	}
	return p
}
